module realisticfd

go 1.24
