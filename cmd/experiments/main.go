// Command experiments regenerates every experiment table E1–E9 (the
// executable forms of the paper's lemmas, propositions and remarks;
// see DESIGN.md §4 for the index and EXPERIMENTS.md for the recorded
// expected-vs-measured outcomes).
//
// Usage:
//
//	go run ./cmd/experiments             # all experiments, 5 seeds each
//	go run ./cmd/experiments -seeds 20   # heavier sweep
//	go run ./cmd/experiments -only E3    # a single experiment
//	go run ./cmd/experiments -parallel 1 # sequential (output is identical)
//
// Sweeps fan out across a worker pool (default GOMAXPROCS); results
// are ordered by seed, so the tables are byte-identical at any
// parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"realisticfd/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", 5, "seeds per experiment scenario")
	only := flag.String("only", "", "run a single experiment (E1..E9)")
	parallel := flag.Int("parallel", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()
	experiments.SetWorkers(*parallel)

	gens := map[string]func(int) *experiments.Table{
		"E1": experiments.E1Totality,
		"E2": experiments.E2Adversary,
		"E3": experiments.E3Reduction,
		"E4": experiments.E4TRB,
		"E5": experiments.E5Marabout,
		"E6": experiments.E6PartialPerfect,
		"E7": experiments.E7Collapse,
		"E8": experiments.E8MajorityCrossover,
		"E9": func(int) *experiments.Table { return experiments.E9QoS() },
	}

	if *only != "" {
		gen, ok := gens[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E9)\n", *only)
			os.Exit(2)
		}
		gen(*seeds).Fprint(os.Stdout)
		return
	}
	experiments.RunAll(os.Stdout, *seeds)
}
