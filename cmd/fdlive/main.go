// Command fdlive runs a live gossip heartbeat cluster in-process and
// prints a human-readable account: detection times for the scripted
// kill, false-suspicion totals, per-node gossip fan-out, and the
// membership views the §1.3 emulation derives from the suspicions.
// It is the quick demo on top of internal/cluster — the same node
// runtime cmd/fdnode runs as a real process, spawned here as
// goroutines so `go run ./cmd/fdlive` needs nothing else.
//
// Examples:
//
//	go run ./cmd/fdlive                          # 8 nodes, φ-accrual, kill node 3
//	go run ./cmd/fdlive -est fixed -timeout 300ms
//	go run ./cmd/fdlive -n 32 -kill 5 -settle 3s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"realisticfd/internal/cluster"
	"realisticfd/internal/scenario"
)

func main() {
	var (
		n        = flag.Int("n", 8, "cluster size (≥ 2)")
		est      = flag.String("est", "phi", "estimator: fixed|chen|phi")
		timeout  = flag.Duration("timeout", 0, "fixed estimator timeout (default 12×interval)")
		interval = flag.Duration("interval", 25*time.Millisecond, "gossip round period")
		fanout   = flag.Int("fanout", 0, "gossip destinations per round (0 = all overlay neighbors)")
		kill     = flag.Int("kill", 3, "node to kill (0 = none)")
		warmup   = flag.Duration("warmup", time.Second, "dissemination warmup before the kill")
		settle   = flag.Duration("settle", 2*time.Second, "observation tail after the kill")
	)
	flag.Parse()

	estSpec := scenario.LiveEstimatorSpec{}
	switch *est {
	case "fixed":
		to := *timeout
		if to <= 0 {
			to = 12 * *interval
		}
		estSpec = scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: int(to.Milliseconds())}
	case "chen":
		estSpec.Kind = scenario.LiveEstChen
	case "phi":
		estSpec.Kind = scenario.LiveEstPhi
	default:
		fmt.Fprintf(os.Stderr, "fdlive: unknown estimator %q\n", *est)
		os.Exit(2)
	}

	spec := scenario.LiveSpec{
		Name:       "fdlive",
		N:          *n,
		IntervalMs: int(interval.Milliseconds()),
		Fanout:     *fanout,
		Estimator:  estSpec,
		WarmupMs:   int(warmup.Milliseconds()),
		SettleMs:   int(settle.Milliseconds()),
	}
	if *kill > 0 {
		spec.Schedule = []scenario.LiveEventSpec{
			{AtMs: 0, Action: scenario.LiveKill, Nodes: []int{*kill}},
		}
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fdlive:", err)
		os.Exit(2)
	}

	fmt.Printf("fdlive: %d nodes, %s overlay, estimator=%s, interval=%v\n",
		*n, spec.Topology.Kind, *est, *interval)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := cluster.Run(ctx, cluster.Config{
		Spec:    spec,
		Spawner: cluster.InProcSpawner{},
		Seed:    time.Now().UnixNano(),
		Log:     os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdlive:", err)
		os.Exit(1)
	}

	fmt.Printf("\nrun %q: %d/%d nodes reported in %v\n",
		res.Name, res.Reports, res.Expected, time.Duration(res.ElapsedMs)*time.Millisecond)
	fmt.Printf("gossip fan-out: ≤ %d distinct destinations per node (overlay degree %d)\n",
		res.MaxDistinctDestinations, res.OverlayDegree)
	for _, kr := range res.Kills {
		fmt.Printf("killed node %d: detected by %d/%d observers, T_D mean %.0fms max %.0fms\n",
			kr.Target, kr.Detected, kr.Observers, kr.MeanDetectionMs, kr.MaxDetectionMs)
	}
	fmt.Printf("false suspicions on live nodes: %d (min P_A %.4f)\n",
		res.FalseSuspicionMistakes, res.MinQueryAccuracy)
	if len(res.Views) > 0 {
		fmt.Println("\nmembership views (suspicion → exclusion, the §1.3 emulation):")
		for _, v := range res.Views {
			fmt.Printf("  node %2d: view#%d excluded=%v\n", v.Node, v.ViewID, v.Excluded)
		}
	}
	if len(res.Failures) > 0 {
		fmt.Printf("\nfailures:\n")
		for _, f := range res.Failures {
			fmt.Println("  -", f)
		}
		os.Exit(1)
	}
}
