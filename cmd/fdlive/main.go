// Command fdlive runs a live heartbeat cluster over TCP on localhost:
// every node heartbeats every other, runs the chosen estimator, and
// participates in exclusion-based membership. One node can be
// scripted to die mid-run, demonstrating the §1.3 emulation of a
// Perfect detector end to end on real sockets.
//
// Examples:
//
//	go run ./cmd/fdlive                          # 5 nodes, φ-accrual, kill p3 at 1s
//	go run ./cmd/fdlive -est fixed -timeout 80ms
//	go run ./cmd/fdlive -n 7 -kill 5 -after 2s -duration 6s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"realisticfd/internal/heartbeat"
	"realisticfd/internal/membership"
	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

func main() {
	var (
		n        = flag.Int("n", 5, "cluster size (4..64)")
		est      = flag.String("est", "phi", "estimator: fixed|chen|phi")
		timeout  = flag.Duration("timeout", 100*time.Millisecond, "fixed estimator timeout")
		alpha    = flag.Duration("alpha", 60*time.Millisecond, "chen safety margin")
		phi      = flag.Float64("phi", 8, "φ-accrual threshold")
		interval = flag.Duration("interval", 10*time.Millisecond, "heartbeat interval")
		kill     = flag.Int("kill", 3, "node to kill (0 = none)")
		after    = flag.Duration("after", time.Second, "when to kill it")
		duration = flag.Duration("duration", 4*time.Second, "total run time")
	)
	flag.Parse()

	mkEst := func() heartbeat.Estimator {
		switch *est {
		case "fixed":
			return &heartbeat.FixedTimeout{Timeout: *timeout}
		case "chen":
			return &heartbeat.Chen{Window: 32, Alpha: *alpha}
		case "phi":
			return &heartbeat.PhiAccrual{Window: 128, Threshold: *phi, MinStdDev: 2 * time.Millisecond}
		default:
			fmt.Fprintf(os.Stderr, "fdlive: unknown estimator %q\n", *est)
			os.Exit(2)
		}
		return nil
	}

	nodes, err := transport.NewTCPCluster(*n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdlive:", err)
		os.Exit(1)
	}
	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := 1; q <= *n; q++ {
			if model.ProcessID(q) != self {
				out = append(out, model.ProcessID(q))
			}
		}
		return out
	}

	dets := make(map[model.ProcessID]*heartbeat.Detector, *n)
	ems := make(map[model.ProcessID]*heartbeat.Emitter, *n)
	mgrs := make(map[model.ProcessID]*membership.Manager, *n)
	for _, nd := range nodes {
		p := nd.Self()
		det := heartbeat.NewDetector(nd, peersOf(p), mkEst)
		dets[p] = det
		ems[p] = heartbeat.NewEmitter(nd, peersOf(p), *interval)
		mgrs[p] = membership.NewManager(nd, *n, det.Suspects, det.Forward(), 2**interval)
		fmt.Printf("%v up on %s\n", p, nd.Addr())
	}
	fmt.Printf("\nestimator=%s interval=%v; observing for %v\n\n", *est, *interval, *duration)

	start := time.Now()
	killed := false
	victim := model.ProcessID(*kill)
	status := time.NewTicker(500 * time.Millisecond)
	defer status.Stop()
	deadline := time.After(*duration)

loop:
	for {
		select {
		case <-status.C:
			p1 := mgrs[1]
			fmt.Printf("t=%-6s p1: suspects=%v view=%v output(P)=%v\n",
				time.Since(start).Round(100*time.Millisecond),
				dets[1].Suspects(), p1.View(), p1.Excluded())
		case <-deadline:
			break loop
		default:
			if !killed && victim >= 1 && int(victim) <= *n && time.Since(start) >= *after {
				killed = true
				fmt.Printf("\n*** killing %v ***\n\n", victim)
				ems[victim].Close()
				dets[victim].Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	fmt.Println("\nfinal state:")
	for p := model.ProcessID(1); int(p) <= *n; p++ {
		if p == victim && killed {
			fmt.Printf("  %v: (dead)\n", p)
			continue
		}
		fmt.Printf("  %v: view=%v output(P)=%v dead=%v\n", p, mgrs[p].View(), mgrs[p].Excluded(), mgrs[p].Dead())
	}

	for p := model.ProcessID(1); int(p) <= *n; p++ {
		mgrs[p].Close()
		if p == victim && killed {
			continue
		}
		ems[p].Close()
	}
	for p := model.ProcessID(1); int(p) <= *n; p++ {
		if p == victim && killed {
			continue
		}
		dets[p].Close()
	}
}
