package main

import (
	"strings"
	"testing"

	"realisticfd/internal/harness"
)

func validConfig() sweepConfig {
	return sweepConfig{
		Algo: "busy", FD: "perfect", N: 16, Horizon: 2000,
		Drop: 0, Delay: 0, Seeds: 10000, Chunk: harness.DefaultChunkSize,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mangle  func(*sweepConfig)
		wantErr string // empty = must pass
	}{
		{"defaults", func(*sweepConfig) {}, ""},
		{"sflooding+diamond-s", func(c *sweepConfig) { c.Algo = "sflooding"; c.FD = "diamond-s" }, ""},
		{"rotating", func(c *sweepConfig) { c.Algo = "rotating" }, ""},
		{"drop boundary low", func(c *sweepConfig) { c.Drop = 0 }, ""},
		{"drop boundary high", func(c *sweepConfig) { c.Drop = 100 }, ""},
		{"one seed", func(c *sweepConfig) { c.Seeds = 1 }, ""},

		{"unknown algo", func(c *sweepConfig) { c.Algo = "paxos" }, "-algo"},
		{"empty algo", func(c *sweepConfig) { c.Algo = "" }, "-algo"},
		{"unknown fd", func(c *sweepConfig) { c.FD = "psychic" }, "-fd"},
		{"drop above 100", func(c *sweepConfig) { c.Drop = 150 }, "-drop"},
		{"negative drop", func(c *sweepConfig) { c.Drop = -5 }, "-drop"},
		{"negative delay", func(c *sweepConfig) { c.Delay = -1 }, "-delay"},
		{"zero seeds", func(c *sweepConfig) { c.Seeds = 0 }, "-seeds"},
		{"negative seeds", func(c *sweepConfig) { c.Seeds = -100 }, "-seeds"},
		{"negative chunk", func(c *sweepConfig) { c.Chunk = -1 }, "-chunk"},
		{"zero chunk", func(c *sweepConfig) { c.Chunk = 0 }, "-chunk"},
		{"zero n", func(c *sweepConfig) { c.N = 0 }, "-n"},
		{"n above bitset", func(c *sweepConfig) { c.N = 400 }, "-n"},
		{"zero horizon", func(c *sweepConfig) { c.Horizon = 0 }, "-horizon"},
		{"negative horizon", func(c *sweepConfig) { c.Horizon = -7 }, "-horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mangle(&cfg)
			err := validateFlags(cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("config %+v passed validation", cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name %s", err, tc.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Errorf("error %q is not one line", err)
			}
		})
	}
}
