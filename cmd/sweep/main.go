// Command sweep runs a streaming seed campaign: millions of seeded
// runs folded into one SweepStats accumulator without ever retaining a
// trace, with an optional JSON checkpoint so an interrupted campaign
// resumes where it left off.
//
// Examples:
//
//	go run ./cmd/sweep -algo busy -n 64 -seeds 100000
//	go run ./cmd/sweep -algo rotating -fd diamond-s -drop 15 -seeds 1000000 \
//	    -checkpoint campaign.ckpt -out campaign.json
//	go run ./cmd/sweep -algo busy -n 64 -seeds 10000 -cpuprofile cpu.pprof
//
// The -cpuprofile / -memprofile flags capture pprof profiles of the
// campaign (analyze with `go tool pprof`), the hook used to find and
// verify the engine's allocation hot spots.
//
// Ctrl-C (SIGINT) stops the campaign cleanly: completed chunks are
// already persisted in the checkpoint, and re-running the identical
// command resumes from it. A finished checkpoint short-circuits — the
// stored aggregate is reprinted without executing anything. The
// checkpoint encodes the campaign identity (scenario parameters, seed
// range, chunk size); changing any of them is rejected rather than
// silently merged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/scenario"
	"realisticfd/internal/sim"
)

// sweepConfig collects every flag that shapes the campaign, so the
// validator can be exercised as a plain function.
type sweepConfig struct {
	Algo    string
	FD      string
	N       int
	Horizon int64
	Drop    int
	Delay   int64
	Seeds   int64
	Chunk   int
}

// validateFlags rejects configurations the sweep cannot honestly run —
// each with a one-line error naming the offending flag, so a typo dies
// before the first seed instead of silently sweeping garbage.
func validateFlags(c sweepConfig) error {
	switch c.Algo {
	case "busy", "sflooding", "rotating":
	default:
		return fmt.Errorf("-algo %q: want busy, sflooding or rotating", c.Algo)
	}
	switch c.FD {
	case "perfect", "diamond-s":
	default:
		return fmt.Errorf("-fd %q: want perfect or diamond-s", c.FD)
	}
	if c.N < 1 || c.N > model.MaxProcesses {
		return fmt.Errorf("-n %d: want 1..%d", c.N, model.MaxProcesses)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("-horizon %d: want ≥ 1", c.Horizon)
	}
	if c.Drop < 0 || c.Drop > 100 {
		return fmt.Errorf("-drop %d: want a percentage in 0..100", c.Drop)
	}
	if c.Delay < 0 {
		return fmt.Errorf("-delay %d: want ≥ 0", c.Delay)
	}
	if c.Seeds < 1 {
		return fmt.Errorf("-seeds %d: want ≥ 1", c.Seeds)
	}
	if c.Chunk < 1 {
		return fmt.Errorf("-chunk %d: want ≥ 1", c.Chunk)
	}
	return nil
}

func main() {
	var (
		algo       = flag.String("algo", "busy", "workload: busy|sflooding|rotating")
		oracle     = flag.String("fd", "perfect", "detector: perfect|diamond-s")
		n          = flag.Int("n", 16, "system size")
		crash      = flag.String("crash", "", "crash list, e.g. p2@40,p5@120")
		horizon    = flag.Int64("horizon", 2000, "max global-clock ticks per run")
		drop       = flag.Int("drop", 0, "message loss percentage (0..100)")
		delay      = flag.Int64("delay", 0, "max extra per-message delay (ticks)")
		from       = flag.Int64("from", 0, "first seed of the campaign")
		seeds      = flag.Int64("seeds", 10000, "number of consecutive seeds")
		chunk      = flag.Int("chunk", harness.DefaultChunkSize, "seeds per chunk (checkpoint granularity)")
		parallel   = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "JSON checkpoint path; resume by re-running the same command")
		out        = flag.String("out", "", "write the final SweepStats JSON here (default: stdout)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the campaign")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the campaign")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := sweepConfig{
		Algo: *algo, FD: *oracle, N: *n, Horizon: *horizon,
		Drop: *drop, Delay: *delay, Seeds: *seeds, Chunk: *chunk,
	}
	if err := validateFlags(cfg); err != nil {
		fatal(err)
	}
	pat, err := parsePattern(*n, *crash)
	if err != nil {
		fatal(err)
	}
	sc := harness.Scenario{
		// The name carries every campaign parameter: it is part of the
		// checkpoint identity, so resuming with different faults or a
		// different workload is rejected instead of merging garbage.
		Name: fmt.Sprintf("sweep/%s/n=%d/fd=%s/h=%d/crash=%s/drop=%d/delay=%d",
			*algo, *n, *oracle, *horizon, *crash, *drop, *delay),
		N:       *n,
		Horizon: model.Time(*horizon),
		Pattern: func() *model.FailurePattern { return pat.Clone() },
		Policy:  func() sim.Policy { return &sim.RandomFairPolicy{} },
	}
	switch *oracle {
	case "perfect":
		sc.Oracle = fd.Perfect{Delay: 2}
	case "diamond-s":
		sc.OracleFor = func(seed int64) fd.Oracle {
			return fd.EventuallyStrong{GST: 100, Delay: 3, Seed: uint64(seed), FalseRate: 10}
		}
	}
	switch *algo {
	case "busy":
		sc.Automaton = scenario.BusyAutomaton{}
	case "sflooding":
		sc.Automaton = consensus.SFlooding{Proposals: consensus.DistinctProposals(*n)}
		sc.StopWhen = func() func(*sim.Trace) bool { return sim.CorrectDecided(0) }
	case "rotating":
		sc.Automaton = consensus.Rotating{Proposals: consensus.DistinctProposals(*n)}
		sc.StopWhen = func() func(*sim.Trace) bool { return sim.CorrectDecided(0) }
	}
	if *drop > 0 || *delay > 0 {
		sc.Faults = &sim.LinkFaults{DropPct: *drop, MaxExtraDelay: model.Time(*delay)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "sweep: %s\nseeds [%d, %d), chunk %d\n", sc.Name, *from, *from+*seeds, *chunk)
	start := time.Now()
	stats, err := harness.Stream(sc, harness.SeedRange{From: *from, To: *from + *seeds},
		harness.SweepReducer(), harness.StreamOptions{
			Workers:    *parallel,
			ChunkSize:  *chunk,
			Checkpoint: *checkpoint,
			Context:    ctx,
		})
	elapsed := time.Since(start)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "sweep: interrupted after %d/%d runs (%.1fs)\n", stats.Runs, *seeds, elapsed.Seconds())
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "sweep: checkpoint saved; re-run the same command to resume: %s\n", *checkpoint)
		}
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs in %.1fs (%.0f runs/s), digest %s\n",
		stats.Runs, elapsed.Seconds(), float64(stats.Runs)/elapsed.Seconds(), short(stats.Digest))

	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", *out)
}

func short(digest string) string {
	if len(digest) > 16 {
		return digest[:16]
	}
	return digest
}

func parsePattern(n int, spec string) (*model.FailurePattern, error) {
	pat, err := model.NewFailurePattern(n)
	if err != nil {
		return nil, err
	}
	if spec == "" {
		return pat, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(part, "p"))
		pc := strings.SplitN(part, "@", 2)
		if len(pc) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want pID@time)", part)
		}
		id, err := strconv.Atoi(pc[0])
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %w", part, err)
		}
		at, err := strconv.ParseInt(pc[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %w", part, err)
		}
		if err := pat.Crash(model.ProcessID(id), model.Time(at)); err != nil {
			return nil, err
		}
	}
	return pat, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
