// Command fdsim runs one simulated execution of a chosen agreement
// algorithm under a chosen failure-detector oracle and failure
// pattern, then audits it against its specification and the paper's
// totality property.
//
// Examples:
//
//	go run ./cmd/fdsim -algo sflooding -fd perfect -crash p2@40,p5@120
//	go run ./cmd/fdsim -algo rotating -fd diamond-s -crash p1@5,p2@6,p3@7
//	go run ./cmd/fdsim -algo trb -fd perfect -crash p3@60
//	go run ./cmd/fdsim -algo partial -fd p-less -crash p1@30 -v
//
// Link faults (-faults) layer message loss, bounded extra delay and
// healing partitions onto any run:
//
//	go run ./cmd/fdsim -algo sflooding -faults delay=6,part=1+2@40-400
//	go run ./cmd/fdsim -algo rotating -faults drop=15 -runs 50 -parallel 8
//
// With -runs > 1 the run becomes a seed sweep on the parallel harness:
// seeds seed..seed+runs-1 execute across a worker pool and a compact
// audit table (ordered by seed, byte-identical at any parallelism)
// replaces the single-run report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"realisticfd/internal/abcast"
	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

func main() {
	var (
		algo     = flag.String("algo", "sflooding", "algorithm: sflooding|rotating|marabout|partial|trb|abcast")
		oracle   = flag.String("fd", "perfect", "detector: perfect|scribe|marabout|strong|diamond-s|diamond-p|p-less")
		n        = flag.Int("n", 5, "system size (4..64)")
		crash    = flag.String("crash", "", "crash list, e.g. p2@40,p5@120")
		seed     = flag.Int64("seed", 1, "scheduler seed (first seed with -runs)")
		horizon  = flag.Int64("horizon", 60000, "max global-clock ticks")
		waves    = flag.Int("waves", 2, "TRB waves (trb only)")
		faults   = flag.String("faults", "", "link faults, e.g. drop=10,delay=5,part=1+2@40-400")
		runs     = flag.Int("runs", 1, "sweep this many consecutive seeds on the harness")
		parallel = flag.Int("parallel", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "dump decisions/deliveries as they happen")
	)
	flag.Parse()

	pat, err := parsePattern(*n, *crash)
	if err != nil {
		fatal(err)
	}
	orc, err := parseOracle(*oracle)
	if err != nil {
		fatal(err)
	}
	plan, err := parseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algo=%s fd=%s n=%d seed=%d\npattern: %v\nlinks: %v\n\n", *algo, orc.Name(), *n, *seed, pat, plan)

	props := consensus.DistinctProposals(*n)
	sc := harness.Scenario{
		Name: *algo, N: *n, Oracle: orc,
		Horizon: model.Time(*horizon),
		Pattern: func() *model.FailurePattern { return pat.Clone() },
		Policy:  func() sim.Policy { return &sim.RandomFairPolicy{} },
	}
	if plan.Active() {
		sc.Faults = &plan
	}

	switch *algo {
	case "sflooding":
		sc.Automaton = consensus.SFlooding{Proposals: props}
	case "rotating":
		sc.Automaton = consensus.Rotating{Proposals: props}
	case "marabout":
		sc.Automaton = consensus.MaraboutConsensus{Proposals: props}
	case "partial":
		sc.Automaton = consensus.PartialOrder{Proposals: props}
	case "trb":
		sc.Automaton = trb.Broadcast{Waves: *waves}
	case "abcast":
		sc.Automaton = abcast.Atomic{ToBroadcast: abcastScript(*n), MaxInstances: 30}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch *algo {
	case "trb", "abcast":
	default:
		sc.StopWhen = func() func(*sim.Trace) bool { return sim.CorrectDecided(0) }
	}

	if *runs > 1 {
		sweep(sc, *algo, props, *waves, *n, *seed, *runs, *parallel)
		return
	}

	r := sc.Run(*seed)
	if r.Err != nil {
		fatal(r.Err)
	}
	tr := r.Trace
	fmt.Printf("run: %v\n\n", tr)

	switch *algo {
	case "trb":
		reportTRB(tr, *waves, *verbose)
	case "abcast":
		reportAbcast(tr, abcastScript(*n), *verbose)
	default:
		reportConsensus(tr, tr.Pattern, props, *verbose)
	}
}

// sweep fans the scenario across seeds [from, from+runs) on the
// worker pool and prints one audit line per seed plus an aggregate.
func sweep(sc harness.Scenario, algo string, props consensus.Proposals, waves, n int, from int64, runs, workers int) {
	type line struct {
		seed     int64
		events   int
		maxT     model.Time
		stopped  sim.StopReason
		decided  bool
		auditErr error
	}
	lines := harness.Map(sc, harness.SeedRange{From: from, To: from + int64(runs)}, workers, func(r harness.Result) line {
		if r.Err != nil {
			return line{seed: r.Seed, auditErr: r.Err}
		}
		return line{
			seed:     r.Seed,
			events:   len(r.Trace.Events),
			maxT:     r.Trace.MaxTime(),
			stopped:  r.Trace.Stopped,
			decided:  r.Trace.Stopped == sim.StopCondition,
			auditErr: auditTrace(algo, r.Trace, props, waves, n),
		}
	})
	fmt.Printf("%-6s  %-8s  %-8s  %-9s  %s\n", "seed", "events", "maxT", "stopped", "audit")
	decided, clean := 0, 0
	for _, l := range lines {
		audit := "✓"
		if l.auditErr != nil {
			audit = "✗ " + l.auditErr.Error()
		} else {
			clean++
		}
		if l.decided {
			decided++
		}
		fmt.Printf("%-6d  %-8d  %-8d  %-9v  %s\n", l.seed, l.events, l.maxT, l.stopped, audit)
	}
	fmt.Printf("\n%d/%d runs pass the safety audit; %d/%d reached the stop condition\n",
		clean, runs, decided, runs)
}

// auditTrace is the compact safety audit of the sweep mode: the
// properties that must hold in every run, faulty links included
// (liveness is reported via the stop column, not asserted — a lossy
// link may legitimately starve it).
func auditTrace(algo string, tr *sim.Trace, props consensus.Proposals, waves, n int) error {
	switch algo {
	case "trb":
		if err := trb.CheckAgreement(tr); err != nil {
			return err
		}
		if err := trb.CheckValidity(tr, waves, nil); err != nil {
			return err
		}
		return trb.CheckIntegrity(tr, nil)
	case "abcast":
		// CheckAgreement compares full sequence lengths and so fails on
		// mere horizon truncation; total order (prefix consistency) and
		// integrity are the safety core.
		if err := abcast.CheckTotalOrder(tr); err != nil {
			return err
		}
		return abcast.CheckIntegrity(tr, abcastScript(n))
	case "partial":
		o, err := consensus.ExtractOutcome(tr, 0)
		if err != nil {
			return err
		}
		if err := o.CheckAgreementAmongCorrect(tr.Pattern); err != nil {
			return err
		}
		return o.CheckValidity(props)
	default:
		o, err := consensus.ExtractOutcome(tr, 0)
		if err != nil {
			return err
		}
		if err := o.CheckUniformAgreement(); err != nil {
			return err
		}
		return o.CheckValidity(props)
	}
}

// parseFaults parses the -faults spec: comma-separated items among
// drop=<pct>, delay=<ticks>, and part=<id>+<id>+...@<from>-<until>
// (repeatable).
func parseFaults(spec string) (sim.LinkFaults, error) {
	var lf sim.LinkFaults
	if spec == "" {
		return lf, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		key, val, found := strings.Cut(item, "=")
		if !found {
			return lf, fmt.Errorf("bad fault item %q (want key=value)", item)
		}
		switch key {
		case "drop":
			pct, err := strconv.Atoi(val)
			if err != nil || pct < 0 || pct > 100 {
				return lf, fmt.Errorf("bad drop percentage %q", val)
			}
			lf.DropPct = pct
		case "delay":
			d, err := strconv.ParseInt(val, 10, 64)
			if err != nil || d < 0 {
				return lf, fmt.Errorf("bad delay bound %q", val)
			}
			lf.MaxExtraDelay = model.Time(d)
		case "part":
			pt, err := parsePartition(val)
			if err != nil {
				return lf, err
			}
			lf.Partitions = append(lf.Partitions, pt)
		default:
			return lf, fmt.Errorf("unknown fault %q (want drop|delay|part)", key)
		}
	}
	return lf, nil
}

// parsePartition parses "1+2@40-400": processes 1 and 2 split off
// from time 40 until the heal at 400.
func parsePartition(val string) (sim.Partition, error) {
	var pt sim.Partition
	side, window, found := strings.Cut(val, "@")
	if !found {
		return pt, fmt.Errorf("bad partition %q (want ids@from-until)", val)
	}
	for _, idStr := range strings.Split(side, "+") {
		id, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSpace(idStr), "p"))
		if err != nil {
			return pt, fmt.Errorf("bad process %q in partition", idStr)
		}
		pt.Side = pt.Side.Add(model.ProcessID(id))
	}
	fromStr, untilStr, found := strings.Cut(window, "-")
	if !found {
		return pt, fmt.Errorf("bad partition window %q (want from-until)", window)
	}
	from, err := strconv.ParseInt(fromStr, 10, 64)
	if err != nil {
		return pt, fmt.Errorf("bad partition start %q", fromStr)
	}
	until, err := strconv.ParseInt(untilStr, 10, 64)
	if err != nil {
		return pt, fmt.Errorf("bad partition heal time %q", untilStr)
	}
	pt.From, pt.Until = model.Time(from), model.Time(until)
	return pt, nil
}

// abcastScript gives each process two messages to broadcast.
func abcastScript(n int) map[model.ProcessID][]string {
	sc := make(map[model.ProcessID][]string, n)
	for p := 1; p <= n; p++ {
		id := model.ProcessID(p)
		sc[id] = []string{
			fmt.Sprintf("%v/update-0", id),
			fmt.Sprintf("%v/update-1", id),
		}
	}
	return sc
}

func reportAbcast(tr *sim.Trace, sc map[model.ProcessID][]string, verbose bool) {
	report("total order", abcast.CheckTotalOrder(tr))
	report("agreement", abcast.CheckAgreement(tr))
	report("validity", abcast.CheckValidity(tr, sc))
	report("integrity", abcast.CheckIntegrity(tr, sc))
	if verbose {
		for p, seq := range abcast.Sequences(tr) {
			fmt.Printf("\n%v delivered:", p)
			for _, d := range seq {
				fmt.Printf(" %v", d.ID)
			}
		}
		fmt.Println()
	}
}

func reportConsensus(tr *sim.Trace, pat *model.FailurePattern, props consensus.Proposals, verbose bool) {
	o, err := consensus.ExtractOutcome(tr, 0)
	if err != nil {
		fatal(err)
	}
	for p := model.ProcessID(1); int(p) <= tr.N; p++ {
		if v, ok := o.Decided[p]; ok {
			fmt.Printf("  %v decided %q at t=%d\n", p, v, o.DecidedAt[p])
		} else if pat.Correct().Has(p) {
			fmt.Printf("  %v did not decide (blocked)\n", p)
		} else {
			fmt.Printf("  %v crashed undecided\n", p)
		}
	}
	fmt.Println()
	report("termination", o.CheckTermination(pat))
	report("uniform agreement", o.CheckUniformAgreement())
	report("validity", o.CheckValidity(props))
	if v := core.CheckTotality(tr, 0); v == nil {
		fmt.Println("  totality (§4.2)     ✓ every decision consulted every live process")
	} else {
		fmt.Printf("  totality (§4.2)     ✗ %v\n", v)
	}
	if verbose {
		fmt.Println("\ndecision events:")
		for _, d := range tr.Decisions(0) {
			fmt.Printf("  t=%5d %v → %v (causal contributors %v)\n",
				d.T, d.P, d.Value, tr.Contributors(d.EventIndex))
		}
	}
}

func reportTRB(tr *sim.Trace, waves int, verbose bool) {
	report("termination", trb.CheckTermination(tr, waves))
	report("agreement", trb.CheckAgreement(tr))
	report("validity", trb.CheckValidity(tr, waves, nil))
	report("integrity", trb.CheckIntegrity(tr, nil))
	report("nil-accuracy", trb.CheckNilAccuracy(tr))
	if verbose {
		fmt.Println("\ndeliveries at p1:")
		for id, m := range trb.Deliveries(tr) {
			init, k := trb.SplitInstanceID(id)
			if d, ok := m[1]; ok {
				fmt.Printf("  (%v,%d) → %q\n", init, k, d.Value)
			}
		}
	}
}

func report(name string, err error) {
	if err != nil {
		fmt.Printf("  %-19s ✗ %v\n", name, err)
		return
	}
	fmt.Printf("  %-19s ✓\n", name)
}

func parsePattern(n int, spec string) (*model.FailurePattern, error) {
	pat, err := model.NewFailurePattern(n)
	if err != nil {
		return nil, err
	}
	if spec == "" {
		return pat, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(part, "p"))
		pc := strings.SplitN(part, "@", 2)
		if len(pc) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want pID@time)", part)
		}
		id, err := strconv.Atoi(pc[0])
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %w", part, err)
		}
		at, err := strconv.ParseInt(pc[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %w", part, err)
		}
		if err := pat.Crash(model.ProcessID(id), model.Time(at)); err != nil {
			return nil, err
		}
	}
	return pat, nil
}

func parseOracle(name string) (fd.Oracle, error) {
	switch name {
	case "perfect":
		return fd.Perfect{Delay: 2}, nil
	case "scribe":
		return fd.Scribe{}, nil
	case "marabout":
		return fd.Marabout{}, nil
	case "strong":
		return fd.RealisticStrong{BaseDelay: 1, Seed: 7, JitterMax: 4}, nil
	case "diamond-s":
		return fd.EventuallyStrong{GST: 100, Delay: 3, Seed: 7, FalseRate: 10}, nil
	case "diamond-p":
		return fd.EventuallyPerfect{GST: 100, Delay: 3, Seed: 7, FalseRate: 10}, nil
	case "p-less":
		return fd.PartiallyPerfect{Delay: 2}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdsim:", err)
	os.Exit(1)
}
