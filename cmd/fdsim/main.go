// Command fdsim runs one simulated execution of a chosen agreement
// algorithm under a chosen failure-detector oracle and failure
// pattern, then audits it against its specification and the paper's
// totality property.
//
// Examples:
//
//	go run ./cmd/fdsim -algo sflooding -fd perfect -crash p2@40,p5@120
//	go run ./cmd/fdsim -algo rotating -fd diamond-s -crash p1@5,p2@6,p3@7
//	go run ./cmd/fdsim -algo trb -fd perfect -crash p3@60
//	go run ./cmd/fdsim -algo partial -fd p-less -crash p1@30 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"realisticfd/internal/abcast"
	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

func main() {
	var (
		algo    = flag.String("algo", "sflooding", "algorithm: sflooding|rotating|marabout|partial|trb|abcast")
		oracle  = flag.String("fd", "perfect", "detector: perfect|scribe|marabout|strong|diamond-s|diamond-p|p-less")
		n       = flag.Int("n", 5, "system size (4..64)")
		crash   = flag.String("crash", "", "crash list, e.g. p2@40,p5@120")
		seed    = flag.Int64("seed", 1, "scheduler seed")
		horizon = flag.Int64("horizon", 60000, "max global-clock ticks")
		waves   = flag.Int("waves", 2, "TRB waves (trb only)")
		verbose = flag.Bool("v", false, "dump decisions/deliveries as they happen")
	)
	flag.Parse()

	pat, err := parsePattern(*n, *crash)
	if err != nil {
		fatal(err)
	}
	orc, err := parseOracle(*oracle)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algo=%s fd=%s n=%d seed=%d\npattern: %v\n\n", *algo, orc.Name(), *n, *seed, pat)

	cfg := sim.Config{
		N: *n, Oracle: orc, Pattern: pat,
		Horizon: model.Time(*horizon), Seed: *seed,
		Policy: &sim.RandomFairPolicy{},
	}
	props := consensus.DistinctProposals(*n)

	switch *algo {
	case "sflooding":
		cfg.Automaton = consensus.SFlooding{Proposals: props}
		cfg.StopWhen = sim.CorrectDecided(0)
	case "rotating":
		cfg.Automaton = consensus.Rotating{Proposals: props}
		cfg.StopWhen = sim.CorrectDecided(0)
	case "marabout":
		cfg.Automaton = consensus.MaraboutConsensus{Proposals: props}
		cfg.StopWhen = sim.CorrectDecided(0)
	case "partial":
		cfg.Automaton = consensus.PartialOrder{Proposals: props}
		cfg.StopWhen = sim.CorrectDecided(0)
	case "trb":
		cfg.Automaton = trb.Broadcast{Waves: *waves}
	case "abcast":
		cfg.Automaton = abcast.Atomic{ToBroadcast: abcastScript(*n), MaxInstances: 30}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	tr, err := sim.Execute(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("run: %v\n\n", tr)

	switch *algo {
	case "trb":
		reportTRB(tr, *waves, *verbose)
	case "abcast":
		reportAbcast(tr, abcastScript(*n), *verbose)
	default:
		reportConsensus(tr, pat, props, *verbose)
	}
}

// abcastScript gives each process two messages to broadcast.
func abcastScript(n int) map[model.ProcessID][]string {
	sc := make(map[model.ProcessID][]string, n)
	for p := 1; p <= n; p++ {
		id := model.ProcessID(p)
		sc[id] = []string{
			fmt.Sprintf("%v/update-0", id),
			fmt.Sprintf("%v/update-1", id),
		}
	}
	return sc
}

func reportAbcast(tr *sim.Trace, sc map[model.ProcessID][]string, verbose bool) {
	report("total order", abcast.CheckTotalOrder(tr))
	report("agreement", abcast.CheckAgreement(tr))
	report("validity", abcast.CheckValidity(tr, sc))
	report("integrity", abcast.CheckIntegrity(tr, sc))
	if verbose {
		for p, seq := range abcast.Sequences(tr) {
			fmt.Printf("\n%v delivered:", p)
			for _, d := range seq {
				fmt.Printf(" %v", d.ID)
			}
		}
		fmt.Println()
	}
}

func reportConsensus(tr *sim.Trace, pat *model.FailurePattern, props consensus.Proposals, verbose bool) {
	o, err := consensus.ExtractOutcome(tr, 0)
	if err != nil {
		fatal(err)
	}
	for p := model.ProcessID(1); int(p) <= tr.N; p++ {
		if v, ok := o.Decided[p]; ok {
			fmt.Printf("  %v decided %q at t=%d\n", p, v, o.DecidedAt[p])
		} else if pat.Correct().Has(p) {
			fmt.Printf("  %v did not decide (blocked)\n", p)
		} else {
			fmt.Printf("  %v crashed undecided\n", p)
		}
	}
	fmt.Println()
	report("termination", o.CheckTermination(pat))
	report("uniform agreement", o.CheckUniformAgreement())
	report("validity", o.CheckValidity(props))
	if v := core.CheckTotality(tr, 0); v == nil {
		fmt.Println("  totality (§4.2)     ✓ every decision consulted every live process")
	} else {
		fmt.Printf("  totality (§4.2)     ✗ %v\n", v)
	}
	if verbose {
		fmt.Println("\ndecision events:")
		for _, d := range tr.Decisions(0) {
			fmt.Printf("  t=%5d %v → %v (causal contributors %v)\n",
				d.T, d.P, d.Value, tr.Contributors(d.EventIndex))
		}
	}
}

func reportTRB(tr *sim.Trace, waves int, verbose bool) {
	report("termination", trb.CheckTermination(tr, waves))
	report("agreement", trb.CheckAgreement(tr))
	report("validity", trb.CheckValidity(tr, waves, nil))
	report("integrity", trb.CheckIntegrity(tr, nil))
	report("nil-accuracy", trb.CheckNilAccuracy(tr))
	if verbose {
		fmt.Println("\ndeliveries at p1:")
		for id, m := range trb.Deliveries(tr) {
			init, k := trb.SplitInstanceID(id)
			if d, ok := m[1]; ok {
				fmt.Printf("  (%v,%d) → %q\n", init, k, d.Value)
			}
		}
	}
}

func report(name string, err error) {
	if err != nil {
		fmt.Printf("  %-19s ✗ %v\n", name, err)
		return
	}
	fmt.Printf("  %-19s ✓\n", name)
}

func parsePattern(n int, spec string) (*model.FailurePattern, error) {
	pat, err := model.NewFailurePattern(n)
	if err != nil {
		return nil, err
	}
	if spec == "" {
		return pat, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(part, "p"))
		pc := strings.SplitN(part, "@", 2)
		if len(pc) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want pID@time)", part)
		}
		id, err := strconv.Atoi(pc[0])
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %w", part, err)
		}
		at, err := strconv.ParseInt(pc[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time in %q: %w", part, err)
		}
		if err := pat.Crash(model.ProcessID(id), model.Time(at)); err != nil {
			return nil, err
		}
	}
	return pat, nil
}

func parseOracle(name string) (fd.Oracle, error) {
	switch name {
	case "perfect":
		return fd.Perfect{Delay: 2}, nil
	case "scribe":
		return fd.Scribe{}, nil
	case "marabout":
		return fd.Marabout{}, nil
	case "strong":
		return fd.RealisticStrong{BaseDelay: 1, Seed: 7, JitterMax: 4}, nil
	case "diamond-s":
		return fd.EventuallyStrong{GST: 100, Delay: 3, Seed: 7, FalseRate: 10}, nil
	case "diamond-p":
		return fd.EventuallyPerfect{GST: 100, Delay: 3, Seed: 7, FalseRate: 10}, nil
	case "p-less":
		return fd.PartiallyPerfect{Delay: 2}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdsim:", err)
	os.Exit(1)
}
