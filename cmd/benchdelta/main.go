// Command benchdelta compares two bench reports (the JSON emitted by
// cmd/bench) and prints a per-benchmark delta table for ns/op, B/op
// and allocs/op. It is informational: the exit status is non-zero only
// for IO or parse errors, never for a regression, so the CI step that
// runs it annotates the PR without ever blocking it — benchmark noise
// on shared runners is too high for a hard gate.
//
// Usage:
//
//	go run ./cmd/benchdelta -new BENCH_PR8.json [-old BENCH_PR6.json]
//
// When -old is omitted the tool picks the previous report committed in
// the working tree: the BENCH_PR<k>.json with the highest k that is
// not the -new file itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

type result struct {
	Name        string  `json:"name"`
	Seeds       int     `json:"seeds,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Schema  string   `json:"schema"`
	Results []result `json:"results"`
}

var reportName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// previousReport finds the highest-numbered BENCH_PR<k>.json in dir
// that is not the excluded file.
func previousReport(dir, exclude string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestK := "", -1
	for _, e := range entries {
		m := reportName.FindStringSubmatch(e.Name())
		if m == nil || e.Name() == filepath.Base(exclude) {
			continue
		}
		k, _ := strconv.Atoi(m[1])
		if k > bestK {
			best, bestK = filepath.Join(dir, e.Name()), k
		}
	}
	if best == "" {
		return "", fmt.Errorf("no previous BENCH_PR*.json found in %s", dir)
	}
	return best, nil
}

func load(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// pct renders a signed percentage change, or "new" when there is no
// baseline to compare against.
func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	oldPath := flag.String("old", "", "baseline report (default: highest previous BENCH_PR*.json)")
	newPath := flag.String("new", "", "report to compare (required)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdelta: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" {
		p, err := previousReport(filepath.Dir(*newPath), *newPath)
		if err != nil {
			fatal(err)
		}
		*oldPath = p
	}

	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	// Names are unique within a report (worker counts live in a field,
	// not the name), so joining on the name keeps rows comparable even
	// when a report adds or changes the workers annotation.
	base := make(map[string]result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		base[r.Name] = r
	}

	fmt.Printf("benchmark deltas: %s -> %s\n\n", *oldPath, *newPath)
	fmt.Printf("%-32s %14s %9s %12s %9s %12s %9s\n",
		"name", "ns/op", "Δ", "B/op", "Δ", "allocs/op", "Δ")
	for _, r := range newRep.Results {
		old, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-32s %14.0f %9s %12d %9s %12d %9s\n",
				displayName(r), r.NsPerOp, "new", r.BytesPerOp, "new", r.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-32s %14.0f %9s %12d %9s %12d %9s\n",
			displayName(r), r.NsPerOp, pct(old.NsPerOp, r.NsPerOp),
			r.BytesPerOp, pct(float64(old.BytesPerOp), float64(r.BytesPerOp)),
			r.AllocsPerOp, pct(float64(old.AllocsPerOp), float64(r.AllocsPerOp)))
	}
	for _, r := range oldRep.Results {
		found := false
		for _, n := range newRep.Results {
			if n.Name == r.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-32s (removed)\n", displayName(r))
		}
	}
	fmt.Println("\n(informational only; seed counts and worker shapes may differ between reports)")
}

func displayName(r result) string {
	if r.Workers > 0 {
		return fmt.Sprintf("%s (w=%d)", r.Name, r.Workers)
	}
	return r.Name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdelta:", err)
	os.Exit(1)
}
