// Command bench runs the repository's benchmark suite in-process and
// emits a machine-readable JSON report (BENCH_PR10.json by default),
// the artifact the CI benchmark job uploads per PR so the perf
// trajectory of the simulator is tracked commit over commit.
//
// The suite mirrors the per-package -bench benchmarks (engine stepping,
// consensus/TRB/abcast protocol runs, trace queries, the E8 experiment
// table) and adds the large-scale configurations the ROADMAP points at:
// an n=64 many-seed streaming sweep, measured both single-worker and at
// NumCPU workers so parallel scaling is tracked too. Benchmark names
// are stable across flag settings — parameters that vary (like the
// sweep's seed count under -quick, or the worker count) live in JSON
// fields, not in the name, so trajectory tooling can join on the name
// across reports.
//
// Run with:
//
//	go run ./cmd/bench [-out BENCH_PR10.json] [-quick]
//	    [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The profiles cover the whole suite; analyze with `go tool pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"realisticfd/internal/abcast"
	"realisticfd/internal/consensus"
	"realisticfd/internal/experiments"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/scenario"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// result is one benchmark's measurement. Seeds is set only for
// sweep-shaped benchmarks whose workload size varies with -quick; the
// name itself never encodes it.
type result struct {
	Name        string  `json:"name"`
	Seeds       int     `json:"seeds,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the emitted JSON document.
type report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

func abcastScript(n, per int) map[model.ProcessID][]string {
	out := make(map[model.ProcessID][]string, n)
	for p := 1; p <= n; p++ {
		msgs := make([]string, per)
		for i := range msgs {
			msgs[i] = fmt.Sprintf("m-%d-%d", p, i)
		}
		out[model.ProcessID(p)] = msgs
	}
	return out
}

// mustRun executes one seeded run and asserts it finished by StopWhen.
// Failures panic with a named diagnostic: testing.B instances built by
// testing.Benchmark outside a test binary have no runner, so b.Fatal
// would die in a bare nil-pointer panic instead of reporting anything.
func mustRun(cfg sim.Config, wantCondition bool) *sim.Trace {
	tr, err := sim.Execute(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: run failed: %v", err))
	}
	if wantCondition && tr.Stopped != sim.StopCondition {
		panic(fmt.Sprintf("bench: run did not reach its stop condition: %v", tr))
	}
	return tr
}

// benchmark is one suite entry; seeds and workers are non-zero only
// for sweep-shaped entries and are echoed into the JSON row.
type benchmark struct {
	name    string
	seeds   int
	workers int
	fn      func(*testing.B)
}

// sweepN64 returns the flagship n=64 streaming-sweep body at a fixed
// worker count; the single-worker and NumCPU-worker suite rows share
// it so the pair differs only in parallelism.
func sweepN64(seeds, workers int) func(*testing.B) {
	return func(b *testing.B) {
		sc := harness.Scenario{
			Name: "bench-n64", N: 64,
			Automaton: scenario.BusyAutomaton{},
			Oracle:    fd.Perfect{Delay: 2},
			Horizon:   2000,
			Pattern: func() *model.FailurePattern {
				return model.MustPattern(64).MustCrash(7, 300).MustCrash(21, 900)
			},
			Policy: func() sim.Policy { return &sim.RandomFairPolicy{} },
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := harness.Reduce(sc, harness.Seeds(seeds), workers, harness.SweepReducer())
			if st.Runs != int64(seeds) || st.Errors != 0 {
				panic(fmt.Sprintf("bench: sweep folded %d runs (%d errors), want %d clean",
					st.Runs, st.Errors, seeds))
			}
		}
	}
}

// suite returns the named benchmark bodies in report order. The
// engine/consensus/trb configurations deliberately mirror the
// per-package *_test.go benchmarks (BenchmarkEngineSteps,
// BenchmarkSFloodingRun, BenchmarkRotatingRun, BenchmarkTRBWave) so
// the JSON trajectory stays comparable to `go test -bench` numbers —
// change them together or the tracked history breaks.
func suite(quick bool) []benchmark {
	sweepSeeds := 256
	if quick {
		sweepSeeds = 32
	}
	return []benchmark{
		{name: "sim/engine-steps-n8", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRun(sim.Config{
					N: 8, Automaton: scenario.BusyAutomaton{}, Oracle: fd.Perfect{Delay: 2},
					Horizon: 2000, Seed: int64(i), Policy: &sim.RandomFairPolicy{},
				}, false)
			}
		}},
		{name: "sim/causal-past", fn: func(b *testing.B) {
			tr := func() *sim.Trace {
				tr, err := sim.Execute(sim.Config{
					N: 8, Automaton: scenario.BusyAutomaton{}, Oracle: fd.Perfect{},
					Horizon: 4000, Seed: 3, Policy: &sim.RandomFairPolicy{},
				})
				if err != nil {
					panic(err)
				}
				return tr
			}()
			last := len(tr.Events) - 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tr.CausalPast(last)
			}
		}},
		{name: "consensus/sflooding-run", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRun(sim.Config{
					N:         5,
					Automaton: consensus.SFlooding{Proposals: consensus.DistinctProposals(5)},
					Oracle:    fd.Perfect{Delay: 2},
					Pattern:   model.MustPattern(5).MustCrash(2, 40),
					Horizon:   20000, Seed: int64(i),
					Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
				}, true)
			}
		}},
		{name: "consensus/rotating-run", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRun(sim.Config{
					N:         5,
					Automaton: consensus.Rotating{Proposals: consensus.DistinctProposals(5)},
					Oracle:    fd.EventuallyStrong{GST: 50, Delay: 2, Seed: 3, FalseRate: 10},
					Pattern:   model.MustPattern(5).MustCrash(2, 40),
					Horizon:   20000, Seed: int64(i),
					Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
				}, true)
			}
		}},
		{name: "trb/wave", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRun(sim.Config{
					N: 5, Automaton: trb.Broadcast{Waves: 1}, Oracle: fd.Perfect{Delay: 2},
					Pattern: model.MustPattern(5).MustCrash(2, 30),
					Horizon: 60000, Seed: int64(i),
					StopWhen: trb.AllDelivered(1),
				}, true)
			}
		}},
		{name: "abcast/total-order", fn: func(b *testing.B) {
			sc := abcastScript(5, 2)
			const expected = 5 * 10 // every process delivers all 10 messages
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRun(sim.Config{
					N: 5, Automaton: abcast.Atomic{ToBroadcast: sc, MaxInstances: 30},
					Oracle:  fd.Perfect{Delay: 2},
					Pattern: model.MustPattern(5), Horizon: 120000, Seed: int64(i),
					StopWhen: func(tr *sim.Trace) bool {
						return len(tr.ProtocolEvents(sim.KindDeliver)) >= expected
					},
				}, true)
			}
		}},
		{name: "experiments/e8-majority-crossover", fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				experiments.E8MajorityCrossover(1)
			}
		}},
		{name: "sweep/n64", seeds: sweepSeeds, workers: 1,
			fn: sweepN64(sweepSeeds, 1)},
		{name: "sweep/n64-parallel", seeds: sweepSeeds, workers: runtime.NumCPU(),
			fn: sweepN64(sweepSeeds, runtime.NumCPU())},
	}
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "path of the JSON report")
	quick := flag.Bool("quick", false, "smaller sweep sizes for local smoke runs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the whole suite")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the suite")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{
		Schema:     "realisticfd-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, bm := range suite(*quick) {
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		rep.Results = append(rep.Results, result{
			Name:        bm.name,
			Seeds:       bm.seeds,
			Workers:     bm.workers,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "  %d iters, %.0f ns/op, %d B/op, %d allocs/op\n",
			r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
}
