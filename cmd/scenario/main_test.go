package main

import (
	"os"
	"path/filepath"
	"testing"
)

const goodSpec = `{
  "name": "smoke",
  "n": 4,
  "horizon": 300,
  "seeds": {"from": 0, "to": 4},
  "protocol": {"kind": "busy"},
  "oracle": {"kind": "perfect", "delay": 2}
}
`

func TestListScenarioFilesSortedAndFiltered(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.json", "a.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(goodSpec), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	files, err := listScenarioFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	for i := range want {
		if files[i] != want[i] {
			t.Errorf("files[%d] = %s, want %s", i, files[i], want[i])
		}
	}
}

func TestRunValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(goodSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runValidate([]string{good}); code != 0 {
		t.Errorf("valid file: exit code %d, want 0", code)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "n": 4, "horizon": 10, "protocol": {"kind": "paxos"}, "oracle": {"kind": "perfect"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runValidate([]string{good, bad}); code != 1 {
		t.Errorf("invalid file present: exit code %d, want 1", code)
	}
}
