// Command scenario sweeps declarative scenario files (DESIGN.md §8)
// through the streaming harness: every *.json file in -dir is loaded,
// compiled and swept over its declared seed range, producing one
// SweepStats block per file in a JSON report.
//
// Examples:
//
//	go run ./cmd/scenario -dir examples/scenarios -validate
//	go run ./cmd/scenario -dir examples/scenarios -checkpoints .ckpt -out report.json
//	go run ./cmd/scenario -dir internal/experiments/testdata/scenarios -validate
//
// -validate only loads, validates and compiles every file — printing
// each scenario's config digest and seed range — without running a
// single seed; CI uses it to guard the checked-in experiment specs.
//
// With -checkpoints DIR, each scenario file gets its own checkpoint
// (DIR/<file>.ckpt) keyed on the spec's config digest: Ctrl-C (SIGINT)
// exits cleanly with code 130, and re-running the identical command
// resumes mid-directory — finished scenarios short-circuit from their
// checkpoints, the interrupted one continues from its last completed
// chunk. Editing a scenario file invalidates only its own checkpoint,
// which is rejected (not silently merged); delete it to start that
// campaign over.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"realisticfd/internal/harness"
	"realisticfd/internal/scenario"
)

// fileReport is one scenario's slot in the final JSON report.
type fileReport struct {
	File         string             `json:"file"`
	Scenario     string             `json:"scenario"`
	ConfigDigest string             `json:"config_digest"`
	Seeds        scenario.SeedSpec  `json:"seeds"`
	Elapsed      float64            `json:"elapsed_seconds"`
	Stats        harness.SweepStats `json:"stats"`
}

func main() {
	var (
		dir      = flag.String("dir", ".", "directory of scenario *.json files")
		validate = flag.Bool("validate", false, "only load, validate and compile the files; run nothing")
		seeds    = flag.Int64("seeds", 0, "override the seed count of every file (0 = use each file's range)")
		chunk    = flag.Int("chunk", harness.DefaultChunkSize, "seeds per chunk (checkpoint granularity)")
		parallel = flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		ckptDir  = flag.String("checkpoints", "", "directory for per-scenario checkpoints (empty = none)")
		out      = flag.String("out", "", "write the JSON report here (default: stdout)")
	)
	flag.Parse()

	if *seeds < 0 {
		fatal(fmt.Errorf("-seeds %d: want ≥ 0", *seeds))
	}
	if *chunk < 1 {
		fatal(fmt.Errorf("-chunk %d: want ≥ 1", *chunk))
	}
	files, err := listScenarioFiles(*dir)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no scenario files (*.json) in %s", *dir))
	}

	if *validate {
		os.Exit(runValidate(files))
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var report []fileReport
	for _, f := range files {
		spec, err := scenario.Load(f)
		if err != nil {
			fatal(err)
		}
		if *seeds > 0 {
			spec.Seeds.To = spec.Seeds.From + *seeds
		}
		sc, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		ckpt := ""
		if *ckptDir != "" {
			ckpt = filepath.Join(*ckptDir, strings.TrimSuffix(filepath.Base(f), ".json")+".ckpt")
		}
		fmt.Fprintf(os.Stderr, "scenario: %s seeds [%d, %d) (%s)\n",
			sc.Name, spec.Seeds.From, spec.Seeds.To, filepath.Base(f))
		start := time.Now()
		stats, err := harness.Stream(sc,
			harness.SeedRange{From: spec.Seeds.From, To: spec.Seeds.To},
			harness.SweepReducer(), harness.StreamOptions{
				Workers:    *parallel,
				ChunkSize:  *chunk,
				Checkpoint: ckpt,
				Context:    ctx,
			})
		elapsed := time.Since(start)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "scenario: interrupted in %s after %d runs (%.1fs)\n",
				filepath.Base(f), stats.Runs, elapsed.Seconds())
			if ckpt != "" {
				fmt.Fprintf(os.Stderr, "scenario: checkpoints saved; re-run the same command to resume\n")
			}
			os.Exit(130)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scenario: %s done: %d runs in %.1fs, digest %s\n",
			sc.Name, stats.Runs, elapsed.Seconds(), short(stats.Digest))
		report = append(report, fileReport{
			File:         filepath.Base(f),
			Scenario:     sc.Name,
			ConfigDigest: sc.ConfigDigest,
			Seeds:        spec.Seeds,
			Elapsed:      elapsed.Seconds(),
			Stats:        stats,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scenario: wrote %s\n", *out)
}

// listScenarioFiles returns the sorted *.json files of dir. Sorting
// fixes the campaign order, so interrupt/resume always walks the
// directory the same way.
func listScenarioFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	return files, nil
}

// runValidate loads, validates and compiles every file, reporting all
// failures (not just the first); it returns the process exit code.
func runValidate(files []string) int {
	bad := 0
	for _, f := range files {
		spec, err := scenario.Load(f)
		if err == nil {
			_, err = spec.Build()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %s: %v\n", filepath.Base(f), err)
			bad++
			continue
		}
		digest, err := spec.ConfigDigest()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %s: %v\n", filepath.Base(f), err)
			bad++
			continue
		}
		fmt.Printf("%s: ok %s seeds [%d, %d) %s\n",
			filepath.Base(f), spec.Name, spec.Seeds.From, spec.Seeds.To, short(digest))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d invalid file(s) of %d\n", bad, len(files))
		return 1
	}
	fmt.Fprintf(os.Stderr, "scenario: all %d file(s) valid\n", len(files))
	return 0
}

func short(digest string) string {
	if i := strings.IndexByte(digest, ':'); i >= 0 {
		digest = digest[i+1:]
	}
	if len(digest) > 16 {
		return digest[:16]
	}
	return digest
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenario:", err)
	os.Exit(1)
}
