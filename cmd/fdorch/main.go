// Command fdorch orchestrates a live failure-detector cluster: it
// spawns N fdnode processes on localhost (or goroutines with
// -inproc), wires them into a gossip overlay, executes a scripted
// fault schedule — kill (SIGKILL), pause/resume (SIGSTOP/SIGCONT),
// socket-level partition and heal — then collects each survivor's
// suspicion timeline and folds it into the same QoS vocabulary as the
// simulator (T_D, λ_M, T_M, P_A), emitted as JSON.
//
// The faults come from a -plan file in either format — a legacy live
// spec (examples/live/) or a /v3 scenario whose fault plan also runs
// under cmd/scenario's sim lowering (examples/scenarios/) — or,
// without one, a built-in kill+pause+partition+heal sequence scaled
// to -n. With -bound the run becomes an assertion and the exit status
// a verdict: every survivor must suspect every killed node within the
// bound, no resumed node may stay suspected at collection, and every
// mid-run joiner must be adopted cluster-wide.
//
// The result JSON carries the spec's sha256 config digest
// (plan_digest), which is the run's identity: -validate parses and
// semantically checks the plan (printing the digest) without spawning
// anything, and -if-changed skips the run when the -out file already
// holds a result with the same digest — a renamed-but-changed plan is
// never mistaken for a rerun.
//
// Examples:
//
//	fdorch -n 16 -bound 3s                 # assert a 16-process run
//	fdorch -n 200 -interval 250ms          # the scale the simulator's exemplar timed out at
//	fdorch -plan examples/live/smoke16.json -inproc
//	fdorch -plan examples/scenarios/churn16.json -validate
//	fdorch -plan examples/scenarios/churn16.json -inproc -out churn16.live.json -if-changed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"realisticfd/internal/cluster"
	"realisticfd/internal/scenario"
)

func main() {
	var (
		plan      = flag.String("plan", "", "live spec JSON file (default: built-in schedule)")
		n         = flag.Int("n", 16, "cluster size for the built-in schedule (≥ 6)")
		est       = flag.String("est", "phi", "estimator: fixed|chen|phi")
		timeout   = flag.Duration("timeout", 0, "fixed estimator timeout (default 12×interval)")
		interval  = flag.Duration("interval", 50*time.Millisecond, "gossip round period")
		fanout    = flag.Int("fanout", 0, "gossip destinations per round (0 = all overlay neighbors)")
		warmup    = flag.Duration("warmup", time.Second, "dissemination warmup before the schedule")
		settle    = flag.Duration("settle", 2*time.Second, "observation tail after the last event")
		bound     = flag.Duration("bound", 0, "detection bound to assert (0 = report only)")
		nodeBin   = flag.String("node-bin", "", "fdnode binary (default: next to fdorch, then $PATH)")
		inproc    = flag.Bool("inproc", false, "run nodes as goroutines instead of processes")
		pairs     = flag.Bool("pairs", false, "include the full observer×target metric matrix")
		out       = flag.String("out", "", "write the JSON result here instead of stdout")
		seed      = flag.Int64("seed", 1, "fanout sampling and fault-lottery seed")
		runFor    = flag.Duration("max-run", 10*time.Minute, "hard deadline for the whole run")
		quiet     = flag.Bool("q", false, "suppress progress logging")
		validate  = flag.Bool("validate", false, "parse and semantically check the plan, print its digest, spawn nothing")
		ifChanged = flag.Bool("if-changed", false, "with -out: skip the run when the existing result carries the same plan_digest")
	)
	flag.Parse()

	sp, err := buildSpec(*plan, *n, *est, *timeout, *interval, *fanout, *warmup, *settle, *bound)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdorch:", err)
		os.Exit(2)
	}
	digest, err := sp.digest()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdorch:", err)
		os.Exit(2)
	}
	if *validate {
		if err := sp.check(); err != nil {
			fmt.Fprintln(os.Stderr, "fdorch:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok %s\n", sp.name, digest)
		return
	}
	if *ifChanged && *out != "" {
		if prior, err := priorDigest(*out); err == nil && prior == digest {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "fdorch: %s unchanged (%s), skipping rerun\n", *out, digest)
			}
			return
		}
	}

	cfg := cluster.Config{
		Seed:         *seed,
		IncludePairs: *pairs,
	}
	if sp.v3 != nil {
		cfg.Scenario = sp.v3
	} else {
		cfg.Spec = sp.live
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *inproc {
		cfg.Spawner = cluster.InProcSpawner{}
	} else {
		bin, err := resolveNodeBin(*nodeBin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdorch:", err)
			os.Exit(2)
		}
		cfg.Spawner = &cluster.ProcSpawner{Command: []string{bin}, Stderr: os.Stderr}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *runFor)
	defer cancel()
	res, err := cluster.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdorch:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdorch:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fdorch:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}

	if len(res.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "fdorch: %d assertion failure(s):\n", len(res.Failures))
		for _, f := range res.Failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "fdorch: %s ok — %d/%d reports, %d kill(s) detected, %d join(s), fan-out ≤ %d\n",
			res.Name, res.Reports, res.Expected, len(res.Kills), len(res.Joins), res.MaxDistinctDestinations)
	}
}

// orchSpec is the loaded plan in whichever format the file used: v3 is
// set for /v3 scenarios, live otherwise. Both compile to the same
// fault-plan IR inside the orchestrator.
type orchSpec struct {
	name string
	live scenario.LiveSpec
	v3   *scenario.Spec
}

// digest returns the spec's sha256 config digest — the run identity
// carried as plan_digest in the result JSON.
func (s orchSpec) digest() (string, error) {
	if s.v3 != nil {
		return s.v3.ConfigDigest()
	}
	return s.live.ConfigDigest()
}

// check compiles the fault plan (full semantic validation against the
// generated overlay) without running anything.
func (s orchSpec) check() error {
	if s.v3 != nil {
		_, err := s.v3.CompilePlan()
		return err
	}
	_, err := s.live.CompilePlan()
	return err
}

// priorDigest reads the plan_digest of an existing result file.
func priorDigest(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var res struct {
		PlanDigest string `json:"plan_digest"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return "", err
	}
	if res.PlanDigest == "" {
		return "", fmt.Errorf("no plan_digest in %s", path)
	}
	return res.PlanDigest, nil
}

// buildSpec loads the plan file — sniffing the schema to accept both a
// /v3 scenario and a legacy live spec — or synthesizes the built-in
// schedule: kill two nodes at t0, pause one across a partition window,
// cut one node's entire boundary, heal and resume, observe.
func buildSpec(plan string, n int, est string, timeout, interval time.Duration, fanout int, warmup, settle, bound time.Duration) (orchSpec, error) {
	if plan != "" {
		return loadPlanFile(plan)
	}
	if n < 6 {
		return orchSpec{}, fmt.Errorf("built-in schedule needs n ≥ 6 (got %d); use -plan for smaller clusters", n)
	}
	estSpec := scenario.LiveEstimatorSpec{}
	switch est {
	case "fixed":
		if timeout <= 0 {
			timeout = 12 * interval
		}
		estSpec = scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: int(timeout.Milliseconds())}
	case "chen":
		estSpec.Kind = scenario.LiveEstChen
	case "phi":
		estSpec.Kind = scenario.LiveEstPhi
	default:
		return orchSpec{}, fmt.Errorf("unknown estimator %q", est)
	}
	spec := scenario.LiveSpec{
		Name:       fmt.Sprintf("builtin-%d", n),
		N:          n,
		IntervalMs: int(interval.Milliseconds()),
		Fanout:     fanout,
		Estimator:  estSpec,
		WarmupMs:   int(warmup.Milliseconds()),
		SettleMs:   int(settle.Milliseconds()),
		BoundMs:    int(bound.Milliseconds()),
		Schedule: []scenario.LiveEventSpec{
			{AtMs: 0, Action: scenario.LiveKill, Nodes: []int{2, n/2 + 1}},
			{AtMs: 200, Action: scenario.LivePause, Nodes: []int{n}},
			{AtMs: 400, Action: scenario.LivePartition, Side: []int{1}},
			{AtMs: 1100, Action: scenario.LiveHeal},
			{AtMs: 1100, Action: scenario.LiveResume, Nodes: []int{n}},
		},
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return orchSpec{}, err
	}
	return orchSpec{name: spec.Name, live: spec}, nil
}

// loadPlanFile sniffs the file's schema field: "fdspec/v3" loads as a
// full scenario (the same file cmd/scenario sweeps through the sim),
// anything else as a legacy live spec.
func loadPlanFile(path string) (orchSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return orchSpec{}, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return orchSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Schema == scenario.SchemaV3 {
		spec, err := scenario.Load(path)
		if err != nil {
			return orchSpec{}, err
		}
		return orchSpec{name: spec.Name, v3: &spec}, nil
	}
	live, err := scenario.LoadLive(path)
	if err != nil {
		return orchSpec{}, err
	}
	return orchSpec{name: live.Name, live: live}, nil
}

// resolveNodeBin finds the fdnode binary: the explicit flag, then the
// directory fdorch itself lives in, then $PATH.
func resolveNodeBin(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if self, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(self), "fdnode")
		if info, err := os.Stat(cand); err == nil && !info.IsDir() {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("fdnode"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("fdnode binary not found (go build ./cmd/fdnode, or pass -node-bin / -inproc)")
}
