// Command fdnode is one live cluster node: it reads its JSON
// NodeConfig from stdin (or -config file), dials the orchestrator's
// control address, joins the gossip overlay it is handed, and
// heartbeats its O(log n) neighbors until told to stop — or until the
// control channel dies, so an orphaned node exits rather than
// lingering. cmd/fdorch spawns fleets of these and signals them:
// SIGKILL for crashes, SIGSTOP/SIGCONT for freezes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"realisticfd/internal/cluster"
)

func main() {
	configPath := flag.String("config", "", "node config JSON file (default: stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdnode:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	if err := cluster.RunNodeStdin(r); err != nil {
		fmt.Fprintln(os.Stderr, "fdnode:", err)
		os.Exit(1)
	}
}
