// Package realisticfd is a full reproduction, as a Go library, of
// C. Delporte-Gallet, H. Fauconnier and R. Guerraoui, "A Realistic
// Look At Failure Detectors" (DSN 2002).
//
// The paper proves that with no bound on the number of crash failures,
// the Perfect failure-detector class P is the weakest *realistic*
// class (one that cannot guess the future) solving uniform consensus,
// atomic broadcast and terminating reliable broadcast — collapsing the
// Chandra-Toueg hierarchy and explaining why real systems build on
// group membership services that emulate P.
//
// The implementation lives under internal/:
//
//   - model: failure patterns, histories, the realism predicate (§2–3)
//   - fd: oracle detectors P, S, ◇S, ◇P, Scribe, Marabout, P< and
//     class-property checkers
//   - sim: the FLP+FD step simulator (§2.3–2.4) with causal-chain
//     analysis, adversarial scheduling and composable link faults
//     (drops, delays, healing partitions)
//   - harness: the parallel scenario-sweep engine (deterministic
//     worker pool; parallel output byte-identical to sequential)
//   - consensus, abcast, trb: the agreement algorithms
//   - core: totality audit, the T(D⇒P) reduction, the Lemma 4.1
//     adversary, TRB⇒P, the §6.3 collapse witness
//   - transport, heartbeat, qos, membership: the live substrate —
//     heartbeats over sockets, QoS metrics, exclusion-based membership
//   - experiments: the E1–E9 tables (see DESIGN.md and EXPERIMENTS.md)
//
// Entry points: cmd/fdsim, cmd/fdlive, cmd/experiments, and the
// runnable walkthroughs under examples/.
package realisticfd
