package realisticfd_test

import (
	"io"
	"testing"

	"realisticfd/internal/experiments"
)

// One benchmark per experiment table (DESIGN.md §4). Each iteration
// regenerates the table at one seed per scenario; run with
//
//	go test -bench=. -benchmem
//
// to time the full reproduction pipeline, or use cmd/experiments for
// the human-readable tables.

func benchTable(b *testing.B, gen func(int) *experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := gen(1)
		t.Fprint(io.Discard)
	}
}

func BenchmarkE1Totality(b *testing.B) { benchTable(b, experiments.E1Totality) }

func BenchmarkE2Adversary(b *testing.B) { benchTable(b, experiments.E2Adversary) }

func BenchmarkE3Reduction(b *testing.B) { benchTable(b, experiments.E3Reduction) }

func BenchmarkE4TRB(b *testing.B) { benchTable(b, experiments.E4TRB) }

func BenchmarkE5Marabout(b *testing.B) { benchTable(b, experiments.E5Marabout) }

func BenchmarkE6PartialPerfect(b *testing.B) { benchTable(b, experiments.E6PartialPerfect) }

func BenchmarkE7Collapse(b *testing.B) { benchTable(b, experiments.E7Collapse) }

func BenchmarkE8MajorityCrossover(b *testing.B) { benchTable(b, experiments.E8MajorityCrossover) }

func BenchmarkE9QoS(b *testing.B) {
	benchTable(b, func(int) *experiments.Table { return experiments.E9QoS() })
}
