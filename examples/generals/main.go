// Command generals runs Terminating Reliable Broadcast — the
// crash-stop Byzantine Generals of §5 — with a Perfect detector:
// five generals broadcast orders in waves; one general is struck down
// mid-campaign and the survivors deliver the paper's "specific nil
// value" for its silent instances, all agreeing on every delivery.
//
// Run with: go run ./examples/generals
package main

import (
	"fmt"
	"log"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

func main() {
	const (
		n     = 5
		waves = 2
	)
	orders := func(general model.ProcessID, wave int) consensus.Value {
		return consensus.Value(fmt.Sprintf("attack-at-%02d00-from-%v", 6+wave, general))
	}

	// General p3 falls at t=60, early in the campaign.
	pattern := model.MustPattern(n).MustCrash(3, 60)
	fmt.Printf("pattern: %v\n\n", pattern)

	trace, err := sim.Execute(sim.Config{
		N:         n,
		Automaton: trb.Broadcast{Waves: waves, Script: orders},
		Oracle:    fd.Perfect{Delay: 2},
		Pattern:   pattern,
		Horizon:   60000,
		Seed:      7,
		Policy:    &sim.RandomFairPolicy{},
		StopWhen:  trb.AllDelivered(waves),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print what p1 delivered, instance by instance.
	dels := trb.Deliveries(trace)
	for k := 0; k < waves; k++ {
		for init := model.ProcessID(1); init <= n; init++ {
			d, ok := dels[trb.InstanceID(init, k)][1]
			if !ok {
				continue
			}
			if d.IsNil() {
				fmt.Printf("wave %d, general %v: ⊥ (general fell — every survivor delivers nil)\n", k, init)
			} else {
				fmt.Printf("wave %d, general %v: %q\n", k, init, d.Value)
			}
		}
	}

	if err := trb.CheckAll(trace, waves, orders); err != nil {
		log.Fatalf("TRB specification violated: %v", err)
	}
	fmt.Println("\nTRB: termination ✓ agreement ✓ validity ✓ integrity ✓ nil-accuracy ✓")
}
