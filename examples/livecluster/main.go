// Command livecluster is the paper's §1.3 observation running on real
// sockets: five nodes heartbeat each other over TCP on localhost,
// each runs a φ-accrual failure detector, and an exclusion-based
// membership service emulates a Perfect detector — when a node is
// killed, the survivors time it out, exclude it, and the suspicion is
// accurate forever after.
//
// Run with: go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	"realisticfd/internal/heartbeat"
	"realisticfd/internal/membership"
	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

func main() {
	const n = 5

	nodes, err := transport.NewTCPCluster(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster listening on:")
	for _, nd := range nodes {
		fmt.Printf("  %v → %s\n", nd.Self(), nd.Addr())
	}

	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= n; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	var (
		dets [n + 1]*heartbeat.Detector
		ems  [n + 1]*heartbeat.Emitter
		mgrs [n + 1]*membership.Manager
	)
	for _, nd := range nodes {
		p := nd.Self()
		det := heartbeat.NewDetector(nd, peersOf(p), func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 64, Threshold: 8, MinStdDev: 2 * time.Millisecond}
		})
		dets[p] = det
		ems[p] = heartbeat.NewEmitter(nd, peersOf(p), 10*time.Millisecond)
		mgrs[p] = membership.NewManager(nd, n, det.Suspects, det.Forward(), 20*time.Millisecond)
	}

	fmt.Println("\nheartbeating (φ-accrual, Φ=8) ... letting estimators warm up")
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("view at p1: %v   output(P)₁ = %v\n", mgrs[1].View(), mgrs[1].Excluded())

	// Kill node 3 the crash-stop way: stop its heartbeats and close
	// its sockets.
	fmt.Println("\n*** killing node p3 ***")
	ems[3].Close()
	dets[3].Close() // closes node 3's transport

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if mgrs[1].Excluded().Has(3) && mgrs[2].Excluded().Has(3) &&
			mgrs[4].Excluded().Has(3) && mgrs[5].Excluded().Has(3) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\nafter detection and exclusion:")
	for _, p := range []model.ProcessID{1, 2, 4, 5} {
		fmt.Printf("  %v: view %v, output(P) = %v\n", p, mgrs[p].View(), mgrs[p].Excluded())
	}
	if !mgrs[1].Excluded().Has(3) {
		log.Fatal("p3 was not excluded in time")
	}
	fmt.Println("\nevery survivor's suspicion of p3 is now accurate by construction:")
	fmt.Println("the membership service emulates a Perfect failure detector (§1.3)")

	for _, p := range []model.ProcessID{1, 2, 4, 5} {
		mgrs[p].Close()
		ems[p].Close()
	}
	mgrs[3].Close()
	for _, p := range []model.ProcessID{1, 2, 4, 5} {
		dets[p].Close()
	}
}
