// Command reduction demonstrates the heart of the paper — the
// transformation T(D⇒P) of Lemma 4.2: run a sequence of total
// consensus instances, piggyback "[p is alive]" tags along the causal
// order, suspect exactly the processes whose tag is missing from each
// decision, and out comes a Perfect failure detector.
//
// Run with: go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func main() {
	const (
		n       = 5
		maxInst = 20
	)
	pattern := model.MustPattern(n).
		MustCrash(2, 150).
		MustCrash(5, 400)
	fmt.Printf("pattern: %v\n", pattern)
	fmt.Printf("running %d consensus instances with alive-tag piggybacking...\n\n", maxInst)

	trace, err := sim.Execute(sim.Config{
		N: n,
		Automaton: core.Reduction{
			Factory: func(instance int) sim.Automaton {
				return consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
			},
			MaxInstances: maxInst,
		},
		Oracle:  fd.Perfect{Delay: 2},
		Pattern: pattern,
		Horizon: 80000,
		Seed:    13,
		Policy:  &sim.RandomFairPolicy{},
		StopWhen: func(tr *sim.Trace) bool {
			return tr.Pattern.Correct().SubsetOf(tr.DecidedSet(maxInst - 1))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Show how output(P) evolves at p1 as decisions accumulate.
	history, err := core.ExtractEmulatedHistory(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("output(P) at p1, sampled at its decision events:")
	prev := model.EmptySet()
	for _, s := range history.Spans(1) {
		if !s.Out.Equal(prev) {
			fmt.Printf("  t=%5d  output(P)₁ = %v\n", s.From, s.Out)
			prev = s.Out
		}
	}

	// Judge the emulated detector against P's defining properties.
	if v := fd.CheckStrongAccuracy(history, pattern); v != nil {
		log.Fatalf("emulation inaccurate: %v", v)
	}
	if v := fd.CheckStrongCompleteness(history, pattern); v != nil {
		log.Fatalf("emulation incomplete: %v", v)
	}
	fmt.Println("\nemulated detector: strong completeness ✓ strong accuracy ✓ — it is Perfect")
	fmt.Println("(Lemma 4.2: any realistic detector implementing total consensus yields P)")
}
