// Command quickstart is the 30-second tour: run the Chandra-Toueg
// S-based consensus algorithm under a Perfect failure detector in the
// simulator, crash two of five processes mid-run, and watch every
// survivor decide the same value — with no bound on how many processes
// may fail, exactly the regime of Proposition 4.3.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func main() {
	const n = 5

	// Failure pattern: p2 crashes at t=40, p5 at t=120. The S-based
	// algorithm tolerates ANY number of crashes.
	pattern := model.MustPattern(n).
		MustCrash(2, 40).
		MustCrash(5, 120)

	// Every process proposes its own value.
	proposals := consensus.DistinctProposals(n)
	fmt.Printf("proposals: %v\n", proposals)
	fmt.Printf("pattern:   %v\n\n", pattern)

	trace, err := sim.Execute(sim.Config{
		N:         n,
		Automaton: consensus.SFlooding{Proposals: proposals},
		Oracle:    fd.Perfect{Delay: 2}, // realistic: accurate about the past only
		Pattern:   pattern,
		Horizon:   10000,
		Seed:      42,
		Policy:    &sim.RandomFairPolicy{},
		StopWhen:  sim.CorrectDecided(0),
	})
	if err != nil {
		log.Fatal(err)
	}

	outcome, err := consensus.ExtractOutcome(trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	for p := model.ProcessID(1); p <= n; p++ {
		if v, ok := outcome.Decided[p]; ok {
			fmt.Printf("%v decided %q at t=%d\n", p, v, outcome.DecidedAt[p])
		} else {
			fmt.Printf("%v crashed before deciding\n", p)
		}
	}

	if err := outcome.CheckUniformSpec(pattern, proposals); err != nil {
		log.Fatalf("specification violated: %v", err)
	}
	fmt.Println("\nuniform consensus: termination ✓ agreement ✓ validity ✓")
}
