// Command marabout reproduces §3.2.2 and §6.1: the Marabout failure
// detector knows the future — its constant output is the set of
// processes that will ever crash. It trivially solves consensus with
// n−1 crashes, yet it is not realistic: the program exhibits the
// exact two-pattern witness of §3.2.2 proving it cannot be
// implemented even in a perfectly synchronous system, which is why
// the paper's lower bound is stated within the realistic space.
//
// Run with: go run ./examples/marabout
package main

import (
	"fmt"
	"log"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func main() {
	const n = 5

	// Part 1: Marabout solves consensus with n-1 crashes (§6.1).
	pattern := model.MustPattern(n).
		MustCrash(1, 30).MustCrash(2, 35).MustCrash(3, 40).MustCrash(4, 45)
	proposals := consensus.DistinctProposals(n)
	fmt.Printf("pattern: %v — only p5 survives\n", pattern)

	trace, err := sim.Execute(sim.Config{
		N:         n,
		Automaton: consensus.MaraboutConsensus{Proposals: proposals},
		Oracle:    fd.Marabout{},
		Pattern:   pattern,
		Horizon:   5000,
		Seed:      3,
		StopWhen:  sim.CorrectDecided(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := consensus.ExtractOutcome(trace, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := outcome.CheckUniformSpec(pattern, proposals); err != nil {
		log.Fatal(err)
	}
	v, _ := outcome.DecidedValue()
	fmt.Printf("consensus decided %q — the lowest *correct* process led, known from t=0\n\n", v)

	// Part 2: ...but Marabout is not realistic (§3.2.2).
	witness := fd.MaraboutWitness(n)
	if witness == nil {
		log.Fatal("expected a realism violation for Marabout")
	}
	fmt.Println("realism check (the §3.2.2 witness):")
	fmt.Printf("  F1 = %v\n", witness.F)
	fmt.Printf("  F2 = %v\n", witness.FPrime)
	fmt.Printf("  the patterns agree through t=%d, yet already at t=%d process %v sees\n",
		witness.Cut, witness.T, witness.P)
	fmt.Printf("  %v in F1 but %v in F2 — Marabout distinguishes futures: NOT realistic\n\n",
		witness.Out, witness.OutPrime)

	// Part 3: contrast with the realistic oracles in this repository.
	for _, o := range []fd.Oracle{fd.Perfect{Delay: 2}, fd.Scribe{}, fd.PartiallyPerfect{Delay: 2}} {
		if vio := fd.CheckRealism(o, n, 100, 10); vio != nil {
			log.Fatalf("%s unexpectedly non-realistic: %v", o.Name(), vio)
		}
		fmt.Printf("  %-14s realistic ✓\n", o.Name())
	}
	if vio := fd.CheckRealism(fd.Marabout{}, n, 100, 10); vio == nil {
		log.Fatal("Marabout passed the realism check")
	}
	fmt.Printf("  %-14s realistic ✗ (guesses the future)\n", fd.Marabout{}.Name())
}
