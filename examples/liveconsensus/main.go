// Command liveconsensus runs the complete stack of the paper's story
// on real sockets: TCP transport, heartbeat emitters, φ-accrual
// failure detection standing in for the Perfect oracle, and the very
// same S-based flooding automaton that passes the simulator's proofs
// — now deciding a live vote with a dead member in the roster.
//
// Run with: go run ./examples/liveconsensus
package main

import (
	"fmt"
	"log"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/heartbeat"
	"realisticfd/internal/livecons"
	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

func main() {
	const n = 5

	cluster, err := transport.NewTCPCluster(n)
	if err != nil {
		log.Fatal(err)
	}
	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= n; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	// Node p4 is dead on arrival — its socket closes before the vote.
	fmt.Println("node p4 never comes up; the other four vote anyway")
	_ = cluster[3].Close()

	var (
		dets  []*heartbeat.Detector
		ems   []*heartbeat.Emitter
		nodes []*livecons.Node
	)
	for _, nd := range cluster {
		p := nd.Self()
		if p == 4 {
			continue
		}
		det := heartbeat.NewDetector(nd, peersOf(p), func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{
				Window: 64, Threshold: 8,
				MinStdDev:    2 * time.Millisecond,
				FirstTimeout: 300 * time.Millisecond,
			}
		})
		dets = append(dets, det)
		ems = append(ems, heartbeat.NewEmitter(nd, peersOf(p), 10*time.Millisecond))
		dm := transport.NewDemux(det.Forward())
		node, err := livecons.NewNode(livecons.Config{
			Transport: nd,
			N:         n,
			Proposal:  consensus.Value(fmt.Sprintf("ballot-of-%v", p)),
			Suspects:  det.Suspects,
			Envelopes: dm.Chan(livecons.EnvelopeType),
			Tick:      10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, node)
		fmt.Printf("  %v proposing %q on %s\n", p, fmt.Sprintf("ballot-of-%v", p), nd.Addr())
	}

	fmt.Println("\nwaiting for decisions (φ-accrual must first time p4 out)...")
	start := time.Now()
	for i, node := range nodes {
		select {
		case v := <-node.Decided():
			fmt.Printf("  node %d decided %q after %v\n", i+1, v, time.Since(start).Round(time.Millisecond))
		case <-time.After(30 * time.Second):
			log.Fatal("no decision within 30s")
		}
	}

	ref, _ := nodes[0].Decision()
	for _, node := range nodes {
		if v, _ := node.Decision(); v != ref {
			log.Fatalf("disagreement: %q vs %q", v, ref)
		}
	}
	fmt.Printf("\nagreement on %q across all live nodes — the simulator-verified automaton,\n", ref)
	fmt.Println("unchanged, over real TCP with a real (timeout-based, P-emulating) failure detector")

	for _, node := range nodes {
		node.Close()
	}
	for _, e := range ems {
		e.Close()
	}
	for _, d := range dets {
		d.Close()
	}
}
