package core

import (
	"fmt"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// Class names a failure-detector class of the Chandra-Toueg hierarchy
// (§1.2), plus the paper's P< (§6.2).
type Class int

// The classes, ordered roughly by strength.
const (
	// ClassP is Perfect: strong completeness + strong accuracy.
	ClassP Class = iota + 1
	// ClassS is Strong: strong completeness + weak accuracy.
	ClassS
	// ClassDiamondP is Eventually Perfect.
	ClassDiamondP
	// ClassDiamondS is Eventually Strong.
	ClassDiamondS
	// ClassPLess is the Partially Perfect class P< of §6.2.
	ClassPLess
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassP:
		return "P"
	case ClassS:
		return "S"
	case ClassDiamondP:
		return "◇P"
	case ClassDiamondS:
		return "◇S"
	case ClassPLess:
		return "P<"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Satisfies reports whether a recorded (possibly emulated) history
// meets the defining properties of the class over the given pattern.
// This is the membership half of the ≼ (weaker-than) relation of
// §2.5: an emulation algorithm T(D⇒C) together with a Satisfies check
// over its output histories is exactly what "D is stronger than class
// C" means operationally — the form in which the paper's reductions
// (Lemmas 4.2, Prop 5.1) establish weakest-ness.
func Satisfies(h *model.History, f *model.FailurePattern, c Class) *fd.Violation {
	r := fd.Classify(h, f)
	switch c {
	case ClassP:
		if v := r.StrongCompleteness; v != nil {
			return v
		}
		return r.StrongAccuracy
	case ClassS:
		if v := r.StrongCompleteness; v != nil {
			return v
		}
		return r.WeakAccuracy
	case ClassDiamondP:
		if v := r.StrongCompleteness; v != nil {
			return v
		}
		return r.EventualStrongAccuracy
	case ClassDiamondS:
		if v := r.StrongCompleteness; v != nil {
			return v
		}
		return r.EventualWeakAccuracy
	case ClassPLess:
		if v := r.PartialCompleteness; v != nil {
			return v
		}
		return r.StrongAccuracy
	default:
		return &fd.Violation{Property: "class", Detail: fmt.Sprintf("unknown class %v", c)}
	}
}

// Implications returns the classes implied by membership in c within
// the classical containment order (P ⊆ S ⊆ ◇S, P ⊆ ◇P ⊆ ◇S,
// P ⊆ P<). Experiments use it to sanity-check that every verified
// membership also verifies its supersets.
func Implications(c Class) []Class {
	switch c {
	case ClassP:
		return []Class{ClassS, ClassDiamondP, ClassDiamondS, ClassPLess}
	case ClassS:
		return []Class{ClassDiamondS}
	case ClassDiamondP:
		return []Class{ClassDiamondS}
	default:
		return nil
	}
}
