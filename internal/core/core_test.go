package core

import (
	"errors"
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// --- Totality (Lemma 4.1, experiment E1) ---

func TestSFloodingIsTotalWithRealisticDetectors(t *testing.T) {
	t.Parallel()
	oracles := []fd.Oracle{
		fd.Perfect{Delay: 2},
		fd.Scribe{},
		fd.RealisticStrong{BaseDelay: 1, Seed: 3, JitterMax: 4},
	}
	patterns := []func() *model.FailurePattern{
		func() *model.FailurePattern { return model.MustPattern(5) },
		func() *model.FailurePattern { return model.MustPattern(5).MustCrash(2, 30) },
		func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(1, 10).MustCrash(4, 120)
		},
	}
	for _, o := range oracles {
		for pi, mk := range patterns {
			for seed := int64(0); seed < 5; seed++ {
				pat := mk()
				props := consensus.DistinctProposals(5)
				tr, err := sim.Execute(sim.Config{
					N: 5, Automaton: consensus.SFlooding{Proposals: props},
					Oracle: o, Pattern: pat, Horizon: 6000, Seed: seed,
					Policy:   &sim.RandomFairPolicy{},
					StopWhen: sim.CorrectDecided(0),
				})
				if err != nil {
					t.Fatal(err)
				}
				if v := CheckTotality(tr, 0); v != nil {
					t.Fatalf("oracle %s, pattern %d, seed %d: %v", o.Name(), pi, seed, v)
				}
				if len(tr.Decisions(0)) == 0 {
					t.Fatalf("oracle %s, pattern %d, seed %d: no decisions", o.Name(), pi, seed)
				}
			}
		}
	}
}

func TestRotatingIsNotTotal(t *testing.T) {
	t.Parallel()
	// Footnote 4 of §4.1: the ◇S rotating-coordinator algorithm is not
	// total because it consults only majorities. Starve p4 and p5 of
	// steps (they are merely slow, not crashed): p1..p3 form a
	// majority and decide without them.
	props := consensus.DistinctProposals(5)
	tr, err := sim.Execute(sim.Config{
		N: 5, Automaton: consensus.Rotating{Proposals: props},
		Oracle:  fd.EventuallyStrong{GST: 1, Delay: 2}, // accurate from t=1
		Horizon: 6000, Seed: 3,
		Policy: &sim.MuzzlePolicy{
			Inner:   &sim.FairPolicy{},
			Muzzled: model.NewProcessSet(4, 5),
			Until:   5500,
		},
		StopWhen: func(tr *sim.Trace) bool { return len(tr.Decisions(0)) > 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := tr.Decisions(0)
	if len(decs) == 0 {
		t.Fatal("no decision despite alive majority")
	}
	v := CheckTotality(tr, 0)
	if v == nil {
		t.Fatal("rotating-coordinator decision audited as total; it must not consult p4, p5")
	}
	for _, missing := range []model.ProcessID{4, 5} {
		if !v.Missing.Has(missing) {
			t.Errorf("expected %v among the unconsulted, got %v", missing, v.Missing)
		}
	}
	report := TotalityReport(tr, 0)
	if len(report) == 0 {
		t.Fatal("TotalityReport empty while CheckTotality found a violation")
	}
}

// --- Lemma 4.1 adversary (experiment E2) ---

func TestBuildDisagreement(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 5; seed++ {
		w, err := BuildDisagreement(AdversaryConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !w.Disagree() {
			t.Fatalf("seed %d: no disagreement: %v vs %v", seed, w.FirstDecision.Value, w.VictimDecision.Value)
		}
		if !w.PrefixIdentical {
			t.Fatalf("seed %d: R1 and R3 prefixes differ through t=%d — realism broken", seed, w.PrefixEnd)
		}
		if w.NonTotal == nil || !w.NonTotal.Missing.Has(1) {
			t.Fatalf("seed %d: attacked decision should miss the victim p1: %v", seed, w.NonTotal)
		}
		// The victim decides its own proposal, everyone else decided
		// without it.
		if w.VictimDecision.Value != consensus.Value("v1") {
			t.Fatalf("seed %d: victim decided %v, want its own v1", seed, w.VictimDecision.Value)
		}
		if w.FirstDecision.Value == consensus.Value("v1") {
			t.Fatalf("seed %d: R1 decision adopted the unconsulted victim's value", seed)
		}
	}
}

func TestAdversaryFailsAgainstAccurateDetector(t *testing.T) {
	t.Parallel()
	// With an accurate realistic detector and fair delivery the same
	// algorithm is total, so the adversary must come back empty-handed
	// (ErrDecisionTotal) — the contrapositive reading of Lemma 4.1.
	_, err := BuildDisagreement(AdversaryConfig{Seed: 1, Accurate: true})
	if !errors.Is(err, ErrDecisionTotal) {
		t.Fatalf("err = %v, want ErrDecisionTotal", err)
	}
}

// --- T(D⇒P) reduction (Lemma 4.2, experiment E3) ---

// reductionFactory builds fresh flooding instances with distinct
// proposals.
func reductionFactory(n int) Factory {
	return func(instance int) sim.Automaton {
		return consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
	}
}

// reductionDone stops once every correct process decided the final
// instance.
func reductionDone(maxInst int) func(*sim.Trace) bool {
	return func(tr *sim.Trace) bool {
		last := model.EmptySet()
		for _, d := range tr.Decisions(maxInst - 1) {
			last = last.Add(d.P)
		}
		return tr.Pattern.Correct().SubsetOf(last)
	}
}

func TestReductionEmulatesPerfect(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		pattern func() *model.FailurePattern
	}{
		{"failure-free", func() *model.FailurePattern { return model.MustPattern(5) }},
		{"one crash", func() *model.FailurePattern { return model.MustPattern(5).MustCrash(3, 200) }},
		{"two crashes", func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(1, 150).MustCrash(5, 600)
		}},
		{"all but one", func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(1, 100).MustCrash(2, 200).MustCrash(3, 300).MustCrash(5, 400)
		}},
	}
	// Lemma 4.2 runs an *infinite* sequence of instances; finitely many
	// suffice as long as instances keep starting after the last crash
	// at every correct process (DESIGN.md substitution table): a full
	// 5-process flooding instance needs ≈100 ticks, so 40 instances
	// comfortably outlast the latest crash at t=600.
	const maxInst = 40
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 4; seed++ {
				pat := tc.pattern()
				tr, err := sim.Execute(sim.Config{
					N: 5,
					Automaton: Reduction{
						Factory:      reductionFactory(5),
						MaxInstances: maxInst,
					},
					Oracle:   fd.Perfect{Delay: 2},
					Pattern:  pat,
					Horizon:  80000,
					Seed:     seed,
					Policy:   &sim.RandomFairPolicy{},
					StopWhen: reductionDone(maxInst),
				})
				if err != nil {
					t.Fatal(err)
				}
				if tr.Stopped != sim.StopCondition {
					t.Fatalf("seed %d: reduction did not complete %d instances (stopped %v)", seed, maxInst, tr.Stopped)
				}
				h, err := ExtractEmulatedHistory(tr)
				if err != nil {
					t.Fatal(err)
				}
				// Lemma 4.2: output(P) ensures strong completeness and
				// strong accuracy.
				if v := fd.CheckStrongAccuracy(h, pat); v != nil {
					t.Fatalf("seed %d: emulated detector not accurate: %v", seed, v)
				}
				if v := fd.CheckStrongCompleteness(h, pat); v != nil {
					t.Fatalf("seed %d: emulated detector not complete: %v", seed, v)
				}
			}
		})
	}
}

func TestReductionProgress(t *testing.T) {
	t.Parallel()
	const maxInst = 12
	pat := model.MustPattern(5).MustCrash(2, 250)
	tr, err := sim.Execute(sim.Config{
		N:         5,
		Automaton: Reduction{Factory: reductionFactory(5), MaxInstances: maxInst},
		Oracle:    fd.Perfect{Delay: 2},
		Pattern:   pat,
		Horizon:   30000,
		Seed:      9,
		StopWhen:  reductionDone(maxInst),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := InstancesDecided(tr)
	for _, p := range pat.Correct().Slice() {
		if counts[p] != maxInst {
			t.Errorf("%v decided %d instances, want %d", p, counts[p], maxInst)
		}
	}
}

func TestReductionWithNoisyDetectorLosesAccuracy(t *testing.T) {
	t.Parallel()
	// Negative control: feed the reduction a ◇S-style noisy detector.
	// The inner algorithm loses totality (rounds skip falsely
	// suspected processes), so output(P) accumulates false suspicions:
	// ◇S cannot be transformed into P — consistent with the original
	// hierarchy and with Lemma 4.2's totality precondition.
	const maxInst = 12
	pat := model.MustPattern(5)
	tr, err := sim.Execute(sim.Config{
		N:         5,
		Automaton: Reduction{Factory: reductionFactory(5), MaxInstances: maxInst},
		Oracle:    fd.EventuallyStrong{GST: 100000, Delay: 2, Seed: 12, FalseRate: 35},
		Pattern:   pat,
		Horizon:   30000,
		Seed:      4,
		Policy:    &sim.RandomFairPolicy{},
		StopWhen:  reductionDone(maxInst),
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ExtractEmulatedHistory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if v := fd.CheckStrongAccuracy(h, pat); v == nil {
		t.Fatal("emulation from a noisy ◇S detector stayed accurate; expected false suspicions in output(P)")
	}
}

// --- §6.3 collapse (experiment E7) ---

func TestCollapseWitnessAgainstNoisyDetector(t *testing.T) {
	t.Parallel()
	o := fd.EventuallyStrong{GST: 50, Delay: 1, Seed: 5, FalseRate: 30}
	f := model.MustPattern(5)
	w, err := BuildCollapseWitness(o, f, 200)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("no collapse witness against a falsely-suspecting detector")
	}
	if w.WeakAccuracyInFPrime == nil {
		t.Fatal("witness lacks the weak-accuracy violation")
	}
	// The continuation leaves only the falsely-suspected target
	// correct.
	if !w.FPrime.Correct().Equal(model.NewProcessSet(w.Target)) {
		t.Fatalf("continuation correct set = %v, want {%v}", w.FPrime.Correct(), w.Target)
	}
	if !w.F.SamePrefix(w.FPrime, w.T) {
		t.Fatal("witness patterns do not share the prefix")
	}
}

func TestCollapseNoWitnessAgainstPerfect(t *testing.T) {
	t.Parallel()
	// A strongly accurate realistic detector yields no witness: that
	// *is* the collapse — realistic Strong detectors are Perfect.
	for _, o := range []fd.Oracle{
		fd.Perfect{Delay: 2},
		fd.RealisticStrong{BaseDelay: 1, Seed: 8, JitterMax: 3},
	} {
		w, err := BuildCollapseWitness(o, model.MustPattern(5).MustCrash(2, 40), 200)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if w != nil {
			t.Fatalf("%s produced a collapse witness: %v", o.Name(), w)
		}
	}
}
