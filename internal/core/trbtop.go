package core

import (
	"realisticfd/internal/consensus"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// EmulatePerfectFromTRB is the necessary direction of Proposition 5.1:
// given the trace of any terminating-reliable-broadcast algorithm, a
// Perfect failure detector is emulated in output(P) by the rule
// "whenever a process p_j delivers nil for an instance (i,·), p_j adds
// p_i to output(P)_j" — suspicions are cumulative and never removed.
//
// The returned history samples output(P)_p at each of p's deliveries.
// Strong completeness follows because a crashed initiator's later
// instances can only deliver nil; strong accuracy — the step of the
// proof where realism is indispensable — because with a realistic
// detector a nil delivery at time t implies the initiator crashed by
// t (checked independently by trb.CheckNilAccuracy).
func EmulatePerfectFromTRB(tr *sim.Trace) *model.History {
	h := model.NewHistory(tr.N)
	output := make(map[model.ProcessID]model.ProcessSet, tr.N)
	for _, le := range tr.ProtocolEvents(sim.KindDeliver) {
		v, ok := le.Event.Value.(consensus.Value)
		if !ok {
			continue
		}
		init, _ := trb.SplitInstanceID(le.Event.Instance)
		cur := output[le.P]
		if v == trb.Nil {
			cur = cur.Add(init)
			output[le.P] = cur
		}
		h.Record(le.P, le.T, cur)
	}
	return h
}
