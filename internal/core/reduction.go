package core

import (
	"fmt"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Factory builds the consensus automaton run as instance k of the
// T(D⇒P) sequence. Lemma 4.2 requires the algorithm to be total;
// pass a total automaton (e.g. consensus.SFlooding with an accurate
// realistic oracle) for the emulation to be Perfect, or a non-total
// one to watch accuracy break.
type Factory func(instance int) sim.Automaton

// Reduction is the transformation algorithm T(D⇒P) of §4.3: an
// infinite (here: MaxInstances-bounded) sequence of executions of a
// consensus algorithm A, with three additions:
//
//  1. every message carries the information "[sender is alive]";
//  2. a receiver attaches extracted alive-information to every event
//     executed as a consequence of the reception — realized by
//     accumulating, per instance, the union of tags received and
//     stamping it (plus self) on every outgoing message;
//  3. on a decision event, every process whose tag is *not* attached
//     is added to output(P), and never removed.
//
// The emulated output(P) is published as a KindFDOutput protocol event
// at every decision; ExtractEmulatedHistory turns those events into a
// model.History that fd.Classify can test for membership in P.
type Reduction struct {
	// Factory supplies the consensus instances.
	Factory Factory
	// MaxInstances bounds the sequence for finite runs; the emulated
	// completeness property is judged at the horizon (DESIGN.md §2).
	MaxInstances int
}

var _ sim.Automaton = Reduction{}

// Spawn implements sim.Automaton.
func (r Reduction) Spawn(self model.ProcessID, n int) sim.Process {
	if r.MaxInstances <= 0 {
		panic("core: Reduction.MaxInstances must be positive")
	}
	p := &redProc{
		self:    self,
		n:       n,
		factory: r.Factory,
		maxInst: r.MaxInstances,
		future:  map[int][]pendingMsg{},
	}
	p.startInstance(0)
	return p
}

// taggedMsg is the wire envelope: the inner payload of one consensus
// instance plus the alive-tags accumulated along its causal past.
type taggedMsg struct {
	Instance int
	Tags     model.ProcessSet
	Inner    any
}

type pendingMsg struct {
	msg  *sim.Message
	tags model.ProcessSet
}

type redProc struct {
	self    model.ProcessID
	n       int
	factory Factory
	maxInst int

	inst   int // current instance; == maxInst when exhausted
	inner  sim.Process
	tags   model.ProcessSet // alive-tags accumulated in current instance
	future map[int][]pendingMsg
	output model.ProcessSet // cumulative output(P)
}

// startInstance spawns the automaton of instance k and resets tags.
func (p *redProc) startInstance(k int) {
	p.inst = k
	p.tags = model.EmptySet()
	if k < p.maxInst {
		p.inner = p.factory(k).Spawn(p.self, p.n)
	} else {
		p.inner = nil
	}
}

// Step implements sim.Process.
func (p *redProc) Step(in *sim.Message, susp model.ProcessSet, now model.Time) sim.Actions {
	var acts sim.Actions

	var innerIn *sim.Message
	if in != nil {
		env, ok := in.Payload.(taggedMsg)
		if !ok {
			return acts // foreign payload; drop
		}
		switch {
		case env.Instance < p.inst || p.inner == nil:
			// Late message for a decided instance: the instance is
			// over at this process; safe to drop (the inner consensus
			// has already decided here).
		case env.Instance > p.inst:
			// Early message for an instance not yet started: buffer
			// with its tags.
			p.future[env.Instance] = append(p.future[env.Instance], pendingMsg{
				msg:  rewrap(in, env.Inner),
				tags: env.Tags,
			})
		default:
			p.tags = p.tags.Union(env.Tags)
			innerIn = rewrap(in, env.Inner)
		}
	}

	if p.inner == nil {
		return acts
	}

	p.drive(innerIn, susp, now, &acts)
	return acts
}

// drive feeds one message (or λ) to the current inner instance; if the
// instance decides, advance spins up the successors.
func (p *redProc) drive(innerIn *sim.Message, susp model.ProcessSet, now model.Time, acts *sim.Actions) {
	inActs := p.inner.Step(innerIn, susp, now)
	if p.handleInnerActions(inActs, acts) {
		p.advance(susp, now, acts)
	}
}

// advance starts the next instance, replays the messages buffered for
// it, and gives it a λ kick so it emits its opening broadcast; if the
// replayed traffic already decides the instance (possible when this
// process lags far behind), advance keeps going.
func (p *redProc) advance(susp model.ProcessSet, now model.Time, acts *sim.Actions) {
	for {
		p.startInstance(p.inst + 1)
		if p.inner == nil {
			return // sequence exhausted
		}
		buf := p.future[p.inst]
		delete(p.future, p.inst)

		decided := false
		// λ kick first: the fresh instance emits its round-1 broadcast
		// before consuming buffered traffic.
		a := p.inner.Step(nil, susp, now)
		if p.handleInnerActions(a, acts) {
			decided = true
		}
		if !decided {
			for _, pm := range buf {
				p.tags = p.tags.Union(pm.tags)
				a := p.inner.Step(pm.msg, susp, now)
				if p.handleInnerActions(a, acts) {
					decided = true
					break // the rest of buf is late traffic for a decided instance
				}
			}
		}
		if !decided {
			return
		}
	}
}

// handleInnerActions wraps inner sends with the current tags and
// rewrites inner events to the current instance; on a decision it
// updates output(P) per rule 3 and publishes it. Returns whether the
// inner instance decided.
func (p *redProc) handleInnerActions(inActs sim.Actions, acts *sim.Actions) bool {
	attach := p.tags.Add(p.self)
	for _, s := range inActs.Sends {
		acts.Sends = append(acts.Sends, sim.Send{
			To:      s.To,
			Payload: taggedMsg{Instance: p.inst, Tags: attach, Inner: s.Payload},
		})
	}
	decided := false
	for _, ev := range inActs.Events {
		ev.Instance = p.inst
		acts.Events = append(acts.Events, ev)
		if ev.Kind == sim.KindDecide {
			decided = true
			// Rule 3: suspect every process whose [alive] tag is not
			// attached to the decision event.
			newSusp := model.AllProcesses(p.n).Diff(attach)
			p.output = p.output.Union(newSusp)
			acts.Events = append(acts.Events, sim.ProtocolEvent{
				Kind: sim.KindFDOutput, Instance: p.inst, Value: p.output,
			})
		}
	}
	return decided
}

// rewrap builds the inner view of a received message.
func rewrap(in *sim.Message, inner any) *sim.Message {
	cp := *in
	cp.Payload = inner
	return &cp
}

// ExtractEmulatedHistory converts the KindFDOutput events of a
// reduction trace into a failure-detector history: the value of
// output(P)_p sampled at every decision event of p. The caller feeds
// it to fd.Classify together with the run's pattern to judge whether
// the emulation is Perfect (Lemma 4.2 / experiment E3).
func ExtractEmulatedHistory(tr *sim.Trace) (*model.History, error) {
	h := model.NewHistory(tr.N)
	for _, le := range tr.ProtocolEvents(sim.KindFDOutput) {
		set, ok := le.Event.Value.(model.ProcessSet)
		if !ok {
			return nil, fmt.Errorf("core: fd-output event at t=%d carries %T, want ProcessSet", le.T, le.Event.Value)
		}
		h.Record(le.P, le.T, set)
	}
	return h, nil
}

// InstancesDecided returns, per process, how many consensus instances
// it decided in the reduction run — the experiments use it to confirm
// the sequence made progress at every correct process.
func InstancesDecided(tr *sim.Trace) map[model.ProcessID]int {
	out := make(map[model.ProcessID]int, tr.N)
	for _, d := range tr.Decisions(sim.AnyInstance) {
		out[d.P]++
	}
	return out
}
