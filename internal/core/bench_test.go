package core

import (
	"fmt"
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// BenchmarkReductionDepth is the ablation for the T(D⇒P) sequence
// length (DESIGN.md §6): emulation cost grows linearly with the
// instance budget, while the completeness horizon it certifies grows
// with it — the knob a user of the reduction actually turns.
func BenchmarkReductionDepth(b *testing.B) {
	for _, depth := range []int{4, 8, 16, 32} {
		depth := depth
		b.Run(fmt.Sprintf("instances=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pat := model.MustPattern(5).MustCrash(2, 150)
				tr, err := sim.Execute(sim.Config{
					N: 5,
					Automaton: Reduction{
						Factory: func(int) sim.Automaton {
							return consensus.SFlooding{Proposals: consensus.DistinctProposals(5)}
						},
						MaxInstances: depth,
					},
					Oracle: fd.Perfect{Delay: 2}, Pattern: pat,
					Horizon: 200000, Seed: int64(i),
					StopWhen: reductionDone(depth),
				})
				if err != nil {
					b.Fatal(err)
				}
				if tr.Stopped != sim.StopCondition {
					b.Fatal("reduction incomplete")
				}
			}
		})
	}
}

// BenchmarkTotalityAudit times the causal-chain audit on a finished
// consensus run.
func BenchmarkTotalityAudit(b *testing.B) {
	tr, err := sim.Execute(sim.Config{
		N: 5, Automaton: consensus.SFlooding{Proposals: consensus.DistinctProposals(5)},
		Oracle: fd.Perfect{Delay: 2}, Pattern: model.MustPattern(5).MustCrash(3, 40),
		Horizon: 20000, Seed: 1, Policy: &sim.RandomFairPolicy{},
		StopWhen: sim.CorrectDecided(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := CheckTotality(tr, 0); v != nil {
			b.Fatal(v)
		}
	}
}

// BenchmarkAdversary times one full Lemma 4.1 construction (two runs
// plus the prefix comparison).
func BenchmarkAdversary(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := BuildDisagreement(AdversaryConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !w.Disagree() {
			b.Fatal("no disagreement")
		}
	}
}
