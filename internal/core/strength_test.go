package core

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

func TestSatisfiesAcrossOracles(t *testing.T) {
	t.Parallel()
	pat := model.MustPattern(5).MustCrash(2, 20).MustCrash(4, 80)
	cases := []struct {
		oracle fd.Oracle
		in     []Class
		notIn  []Class
	}{
		{
			oracle: fd.Perfect{Delay: 2},
			in:     []Class{ClassP, ClassS, ClassDiamondP, ClassDiamondS, ClassPLess},
		},
		{
			oracle: fd.EventuallyStrong{GST: 60, Delay: 2, Seed: 3, FalseRate: 25},
			in:     []Class{ClassDiamondS},
			notIn:  []Class{ClassP, ClassPLess},
		},
		{
			oracle: fd.EventuallyPerfect{GST: 60, Delay: 2, Seed: 4, FalseRate: 25},
			in:     []Class{ClassDiamondP, ClassDiamondS},
			notIn:  []Class{ClassP},
		},
		{
			oracle: fd.PartiallyPerfect{Delay: 2},
			in:     []Class{ClassPLess},
			notIn:  []Class{ClassP, ClassS},
		},
		{
			oracle: fd.NonRealisticStrong{Delay: 2, FalsePeriod: 10},
			in:     []Class{ClassS, ClassDiamondS},
			notIn:  []Class{ClassP},
		},
	}
	for _, tc := range cases {
		h := fd.RecordHistory(tc.oracle, pat, 300, 1)
		for _, c := range tc.in {
			if v := Satisfies(h, pat, c); v != nil {
				t.Errorf("%s should satisfy %v: %v", tc.oracle.Name(), c, v)
			}
		}
		for _, c := range tc.notIn {
			if v := Satisfies(h, pat, c); v == nil {
				t.Errorf("%s should NOT satisfy %v", tc.oracle.Name(), c)
			}
		}
	}
}

func TestImplicationsHoldEmpirically(t *testing.T) {
	t.Parallel()
	// Whenever a history satisfies a class, it must satisfy every
	// implied (weaker) class — the containment order made executable.
	pat := model.MustPattern(5).MustCrash(3, 30)
	oracles := []fd.Oracle{
		fd.Perfect{},
		fd.Perfect{Delay: 4},
		fd.Scribe{},
		fd.RealisticStrong{BaseDelay: 1, Seed: 2, JitterMax: 3},
		fd.EventuallyStrong{GST: 50, Delay: 2, Seed: 5, FalseRate: 20},
		fd.EventuallyPerfect{GST: 50, Delay: 2, Seed: 6, FalseRate: 20},
		fd.PartiallyPerfect{Delay: 1},
	}
	classes := []Class{ClassP, ClassS, ClassDiamondP, ClassDiamondS, ClassPLess}
	for _, o := range oracles {
		h := fd.RecordHistory(o, pat, 300, 1)
		for _, c := range classes {
			if Satisfies(h, pat, c) != nil {
				continue
			}
			for _, weaker := range Implications(c) {
				if v := Satisfies(h, pat, weaker); v != nil {
					t.Errorf("%s: in %v but not in implied %v: %v", o.Name(), c, weaker, v)
				}
			}
		}
	}
}

func TestClassString(t *testing.T) {
	t.Parallel()
	want := map[Class]string{
		ClassP: "P", ClassS: "S", ClassDiamondP: "◇P", ClassDiamondS: "◇S", ClassPLess: "P<",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if v := Satisfies(model.NewHistory(5), model.MustPattern(5), Class(99)); v == nil {
		t.Error("unknown class accepted")
	}
}
