package core

import (
	"errors"
	"fmt"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// AdversaryConfig parameterizes the executable Lemma 4.1 proof.
type AdversaryConfig struct {
	// N is the system size (default 5).
	N int
	// Victim is the process p_j whose consultation the adversary
	// suppresses (default p1, so the flooding decision value visibly
	// differs from the victim's own proposal).
	Victim model.ProcessID
	// Horizon bounds both runs (default 8000).
	Horizon model.Time
	// Seed drives the (shared) schedule of both runs.
	Seed int64
	// Delay is the genuine-crash detection latency of the scripted
	// detector (default 3).
	Delay model.Time
	// Accurate disarms the adversary: no false suspicions are scripted
	// and no messages are embargoed. With an accurate realistic
	// detector the flooding algorithm is total, so BuildDisagreement
	// must fail with ErrDecisionTotal — the contrapositive of
	// Lemma 4.1, used as a negative control by the experiments.
	Accurate bool
}

func (c *AdversaryConfig) defaults() {
	if c.N == 0 {
		c.N = 5
	}
	if c.Victim == 0 {
		c.Victim = 1
	}
	if c.Horizon == 0 {
		c.Horizon = 8000
	}
	if c.Delay == 0 {
		c.Delay = 3
	}
}

// DisagreementWitness is the outcome of the Lemma 4.1 construction:
// two runs of the same algorithm, with failure patterns that agree
// through PrefixEnd, whose schedules are identical through PrefixEnd
// (the realistic detector cannot tell them apart), and in which two
// processes decide differently.
type DisagreementWitness struct {
	// RunR1 is the paper's R1: no crashes, the victim starved of
	// messages, a decision reached without consulting the victim.
	RunR1 *sim.Trace
	// RunR3 is the paper's R3: same prefix, then every process except
	// the victim crashes; the victim later decides alone.
	RunR3 *sim.Trace
	// NonTotal is the audited totality violation of the R1 decision.
	NonTotal *TotalityViolation
	// PrefixEnd is the time through which patterns and schedules agree
	// (the R1 decision time).
	PrefixEnd model.Time
	// FirstDecision is the R1/R3 decision made without the victim.
	FirstDecision sim.DecisionEvent
	// VictimDecision is the victim's solo decision in R3.
	VictimDecision sim.DecisionEvent
	// PrefixIdentical records the event-by-event comparison of the two
	// runs through PrefixEnd.
	PrefixIdentical bool
}

// Disagree reports whether the two decisions conflict — the
// contradiction concluding Lemma 4.1.
func (w *DisagreementWitness) Disagree() bool {
	return w.FirstDecision.Value != w.VictimDecision.Value
}

// String summarizes the witness.
func (w *DisagreementWitness) String() string {
	return fmt.Sprintf("lemma4.1 witness: %v decided %v at t=%d without consulting %v; %v decided %v at t=%d solo; prefix(≤%d) identical=%v",
		w.FirstDecision.P, w.FirstDecision.Value, w.FirstDecision.T,
		w.NonTotal.Missing, w.VictimDecision.P, w.VictimDecision.Value,
		w.VictimDecision.T, w.PrefixEnd, w.PrefixIdentical)
}

// Errors returned by the adversary.
var (
	// ErrNoDecision means the base run produced no decision to attack.
	ErrNoDecision = errors.New("core: adversary found no decision in R1")
	// ErrDecisionTotal means the base run's decision consulted every
	// alive process, so Lemma 4.1 offers no attack surface — expected
	// when the algorithm is run with an accurate realistic detector.
	ErrDecisionTotal = errors.New("core: R1 decision is total; no adversarial continuation exists")
)

// BuildDisagreement executes the Lemma 4.1 proof against the S-based
// flooding algorithm run with a ◇S-style scripted detector (false
// suspicions permitted), in the environment with no bound on failures:
//
//	R1: all processes suspect the victim (a false suspicion a ◇S
//	    detector may emit); messages from/to the victim are delayed.
//	    Some process p_i decides a value v at time t without a message
//	    from the victim in the decision's causal chain (non-total).
//	R3: the failure pattern agrees with R1 through t; at t+1 every
//	    process except the victim crashes. Because the detector is
//	    realistic and the schedule seeded, R3 is step-for-step
//	    identical with R1 through t — p_i still decides v. The victim,
//	    alone, eventually suspects everyone (genuine crashes), runs
//	    solo and decides its own proposal: disagreement.
//
// The returned witness carries both traces, the totality audit of the
// attacked decision, and the prefix-identity verification.
func BuildDisagreement(cfg AdversaryConfig) (*DisagreementWitness, error) {
	cfg.defaults()
	if err := model.ValidateN(cfg.N); err != nil {
		return nil, err
	}
	props := consensus.DistinctProposals(cfg.N)
	oracle := fd.Scripted{Delay: cfg.Delay}
	if !cfg.Accurate {
		// Everyone may falsely suspect the victim, forever (a ◇S
		// detector whose stabilization lies beyond the horizon).
		oracle.Script = []fd.SuspicionInterval{
			{P: 0, Target: cfg.Victim, From: 0, To: cfg.Horizon + 1},
		}
	}
	baseCfg := func(pat *model.FailurePattern) sim.Config {
		c := sim.Config{
			N:         cfg.N,
			Automaton: consensus.SFlooding{Proposals: props},
			Oracle:    oracle,
			Pattern:   pat,
			Horizon:   cfg.Horizon,
			Seed:      cfg.Seed,
		}
		if cfg.Accurate {
			c.Policy = &sim.FairPolicy{}
		} else {
			c.Policy = &sim.DelayPolicy{Target: model.NewProcessSet(cfg.Victim), Until: cfg.Horizon + 1}
		}
		return c
	}

	// --- R1: failure-free, stop at the first decision. ---
	r1cfg := baseCfg(model.MustPattern(cfg.N))
	r1cfg.StopWhen = func(tr *sim.Trace) bool { return tr.DecisionCount(0) > 0 }
	r1, err := sim.Execute(r1cfg)
	if err != nil {
		return nil, fmt.Errorf("core: R1 failed: %w", err)
	}
	decs := r1.Decisions(0)
	if len(decs) == 0 {
		return nil, ErrNoDecision
	}
	first := decs[0]
	nonTotal := checkDecision(r1, first)
	if nonTotal == nil {
		return nil, ErrDecisionTotal
	}

	// --- R3: same seed and schedule; crashes scripted at t+1. ---
	pat := model.MustPattern(cfg.N)
	for p := 1; p <= cfg.N; p++ {
		if model.ProcessID(p) != cfg.Victim {
			pat.MustCrash(model.ProcessID(p), first.T+1)
		}
	}
	r3cfg := baseCfg(pat)
	r3cfg.StopWhen = func(tr *sim.Trace) bool {
		return tr.DecidedSet(0).Has(cfg.Victim)
	}
	r3, err := sim.Execute(r3cfg)
	if err != nil {
		return nil, fmt.Errorf("core: R3 failed: %w", err)
	}
	var victimDec sim.DecisionEvent
	found := false
	for _, d := range r3.Decisions(0) {
		if d.P == cfg.Victim {
			victimDec = d
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: victim %v never decided in R3 (horizon %d too small?)", cfg.Victim, cfg.Horizon)
	}

	return &DisagreementWitness{
		RunR1:           r1,
		RunR3:           r3,
		NonTotal:        nonTotal,
		PrefixEnd:       first.T,
		FirstDecision:   first,
		VictimDecision:  victimDec,
		PrefixIdentical: SamePrefixRun(r1, r3, first.T),
	}, nil
}

// SamePrefixRun verifies the indistinguishability step of the proof:
// through time cut, the two traces schedule the same processes, with
// the same received messages and the same failure-detector outputs.
// This is what "the failure detector is realistic, so it can behave in
// R3 as in R1 until time t" looks like operationally.
func SamePrefixRun(a, b *sim.Trace, cut model.Time) bool {
	la, lb := prefixLen(a, cut), prefixLen(b, cut)
	if la != lb {
		return false
	}
	for i := 0; i < la; i++ {
		ea, eb := a.Events[i], b.Events[i]
		if ea.P != eb.P || ea.T != eb.T || !ea.FD.Equal(eb.FD) {
			return false
		}
		if (ea.Msg == nil) != (eb.Msg == nil) {
			return false
		}
		if ea.Msg != nil && (ea.Msg.ID != eb.Msg.ID || ea.Msg.From != eb.Msg.From) {
			return false
		}
		if len(ea.Sends) != len(eb.Sends) {
			return false
		}
	}
	return true
}

func prefixLen(tr *sim.Trace, cut model.Time) int {
	n := 0
	for i := range tr.Events {
		if tr.Events[i].T > cut {
			break
		}
		n++
	}
	return n
}
