package core

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// trbDone stops once every correct process delivered every instance.
func trbDone(waves int) func(*sim.Trace) bool {
	return func(tr *sim.Trace) bool {
		dels := trb.Deliveries(tr)
		correct := tr.Pattern.Correct()
		for init := 1; init <= tr.N; init++ {
			for k := 0; k < waves; k++ {
				m := dels[trb.InstanceID(model.ProcessID(init), k)]
				for _, p := range correct.Slice() {
					if _, ok := m[p]; !ok {
						return false
					}
				}
			}
		}
		return true
	}
}

func TestEmulatePerfectFromTRB(t *testing.T) {
	t.Parallel()
	// Proposition 5.1, necessary direction (E4): run TRB over enough
	// waves that crashed initiators accumulate nil deliveries, then
	// verify output(P) is a Perfect history.
	const waves = 4
	cases := []struct {
		name string
		pat  func() *model.FailurePattern
	}{
		{"early crash", func() *model.FailurePattern { return model.MustPattern(5).MustCrash(2, 1) }},
		{"two crashes", func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(1, 1).MustCrash(4, 60)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 3; seed++ {
				pat := tc.pat()
				tr, err := sim.Execute(sim.Config{
					N:         5,
					Automaton: trb.Broadcast{Waves: waves},
					Oracle:    fd.Perfect{Delay: 2},
					Pattern:   pat,
					Horizon:   120000,
					Seed:      seed,
					Policy:    &sim.RandomFairPolicy{},
					StopWhen:  trbDone(waves),
				})
				if err != nil {
					t.Fatal(err)
				}
				if tr.Stopped != sim.StopCondition {
					t.Fatalf("seed %d: TRB incomplete: %v", seed, tr)
				}
				h := EmulatePerfectFromTRB(tr)
				if v := fd.CheckStrongAccuracy(h, pat); v != nil {
					t.Fatalf("seed %d: TRB⇒P emulation inaccurate: %v", seed, v)
				}
				if v := fd.CheckStrongCompleteness(h, pat); v != nil {
					t.Fatalf("seed %d: TRB⇒P emulation incomplete: %v", seed, v)
				}
			}
		})
	}
}

func TestEmulatePerfectFromTRBStaysEmptyWithoutCrashes(t *testing.T) {
	t.Parallel()
	tr, err := sim.Execute(sim.Config{
		N:         5,
		Automaton: trb.Broadcast{Waves: 2},
		Oracle:    fd.Perfect{Delay: 2},
		Horizon:   120000,
		Seed:      5,
		StopWhen:  trbDone(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := EmulatePerfectFromTRB(tr)
	for p := model.ProcessID(1); p <= 5; p++ {
		if out, ok := h.FinalSuspicions(p); ok && !out.IsEmpty() {
			t.Fatalf("failure-free run emulated suspicions %v at %v", out, p)
		}
	}
}
