package core

import (
	"fmt"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// CollapseWitness is the executable form of the §6.3 argument that
// S ∩ R ⊂ P: if a realistic detector ever falsely suspects a process
// q at time t in pattern F, then in the continuation F′ — identical to
// F through t, with every process except q crashing at t+1 — the same
// prefix output must occur (realism), and now q is the only correct
// process yet it was suspected: weak accuracy, hence membership in S,
// is violated.
type CollapseWitness struct {
	// F is the original pattern; FPrime the hostile continuation.
	F, FPrime *model.FailurePattern
	// Watcher falsely suspected Target at time T in F.
	Watcher, Target model.ProcessID
	T               model.Time
	// WeakAccuracyInFPrime is the resulting violation of weak accuracy
	// in F′ (nil would mean the argument failed).
	WeakAccuracyInFPrime *fd.Violation
}

// String summarizes the witness.
func (w *CollapseWitness) String() string {
	return fmt.Sprintf("§6.3 collapse: %v falsely suspected %v at t=%d in %v; in continuation %v only %v is correct and weak accuracy fails: %v",
		w.Watcher, w.Target, w.T, w.F, w.FPrime, w.Target, w.WeakAccuracyInFPrime)
}

// BuildCollapseWitness hunts for a false suspicion by the oracle in
// pattern f (recorded to the horizon) and, if one exists, constructs
// the §6.3 continuation showing the oracle cannot be Strong. It
// returns nil when the oracle never falsely suspects — i.e. when it
// already satisfies strong accuracy, which is exactly the collapse:
// a realistic Strong detector must behave as a Perfect one.
//
// The continuation's history is re-recorded through the oracle itself;
// because every realistic oracle in this repository is a function of
// the pattern prefix, its outputs in F′ match those in F through t by
// construction, and the function verifies rather than assumes that.
func BuildCollapseWitness(o fd.Oracle, f *model.FailurePattern, horizon model.Time) (*CollapseWitness, error) {
	h := fd.RecordHistory(o, f, horizon, 1)

	// Find the first false suspicion (p suspects q while q is alive).
	for t := model.Time(0); t <= horizon; t++ {
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			if !f.Alive(p, t) {
				continue
			}
			out, ok := h.Last(p, t)
			if !ok {
				continue
			}
			for _, q := range out.Slice() {
				if !f.Alive(q, t) {
					continue
				}
				return buildContinuation(o, f, horizon, p, q, t)
			}
		}
	}
	return nil, nil // strongly accurate over this pattern: already Perfect-like
}

// buildContinuation constructs F′ and verifies both the realism echo
// and the weak-accuracy violation.
func buildContinuation(o fd.Oracle, f *model.FailurePattern, horizon model.Time, watcher, target model.ProcessID, t model.Time) (*CollapseWitness, error) {
	fPrime := f.PrefixClone(t)
	for p := 1; p <= f.N(); p++ {
		id := model.ProcessID(p)
		if id == target {
			continue
		}
		if fPrime.Alive(id, t) {
			fPrime.MustCrash(id, t+1)
		}
	}

	// Realism echo: the oracle's output at (watcher, t) must be the
	// same in F and F′ — they share the prefix through t.
	if !f.SamePrefix(fPrime, t) {
		return nil, fmt.Errorf("core: continuation does not share prefix through t=%d", t)
	}
	outF := o.Output(f, watcher, t)
	outFPrime := o.Output(fPrime, watcher, t)
	if !outF.Equal(outFPrime) {
		return nil, fmt.Errorf("core: oracle %s is not realistic: outputs %v vs %v on a shared prefix",
			o.Name(), outF, outFPrime)
	}

	hPrime := fd.RecordHistory(o, fPrime, horizon, 1)
	wa := fd.CheckWeakAccuracy(hPrime, fPrime)
	if wa == nil {
		return nil, fmt.Errorf("core: continuation did not break weak accuracy (suspicion of %v not replayed?)", target)
	}
	return &CollapseWitness{
		F: f.Clone(), FPrime: fPrime,
		Watcher: watcher, Target: target, T: t,
		WeakAccuracyInFPrime: wa,
	}, nil
}
