// Package core implements the central constructions of "A Realistic
// Look At Failure Detectors" (DSN 2002):
//
//   - the totality property of §4.2 as a causal-chain audit over
//     recorded runs (Lemma 4.1's conclusion, experiment E1);
//   - the executable Lemma 4.1 adversary that forces a non-total
//     algorithm into disagreement by re-running an identical prefix
//     under an extended failure pattern (experiment E2);
//   - the reduction T(D⇒P) of Lemma 4.2: a sequence of total
//     consensus instances with [p is alive] tags piggybacked along the
//     causal order, emulating a Perfect failure detector in the
//     distributed variable output(P) (experiment E3);
//   - the TRB⇒P emulation of Proposition 5.1 (experiment E4);
//   - the §6.3 collapse argument S ∩ R ⊂ P as a witness constructor
//     (experiment E7).
package core

import (
	"fmt"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// TotalityViolation is a decision event whose causal chain misses a
// process that had not crashed at decision time — the negation of the
// §4.2 totality property.
type TotalityViolation struct {
	// Decision locates the offending decide event.
	Decision sim.DecisionEvent
	// Alive is Ω \ F(t) at decision time.
	Alive model.ProcessSet
	// Contributors are the processes with a message in the causal
	// chain (decider included).
	Contributors model.ProcessSet
	// Missing = Alive \ Contributors (non-empty).
	Missing model.ProcessSet
}

// Error renders the violation; *TotalityViolation satisfies error.
func (v *TotalityViolation) Error() string {
	if v == nil {
		return "<total>"
	}
	return fmt.Sprintf("totality violated: decision by %v at t=%d (instance %d) has no message from %v (alive %v, consulted %v)",
		v.Decision.P, v.Decision.T, v.Decision.Instance, v.Missing, v.Alive, v.Contributors)
}

// CheckTotality audits every decision of the given instance (or
// sim.AnyInstance) in the trace against the §4.2 definition: the
// causal chain of a decision event at time t must contain a message
// from every process that has not crashed by t. It returns the first
// violation, or nil if every decision is total.
func CheckTotality(tr *sim.Trace, instance int) *TotalityViolation {
	for _, d := range tr.Decisions(instance) {
		if v := checkDecision(tr, d); v != nil {
			return v
		}
	}
	return nil
}

// TotalityReport audits all decisions and returns every violation.
func TotalityReport(tr *sim.Trace, instance int) []*TotalityViolation {
	var out []*TotalityViolation
	for _, d := range tr.Decisions(instance) {
		if v := checkDecision(tr, d); v != nil {
			out = append(out, v)
		}
	}
	return out
}

func checkDecision(tr *sim.Trace, d sim.DecisionEvent) *TotalityViolation {
	alive := tr.Pattern.AliveAt(d.T)
	contributors := tr.Contributors(d.EventIndex)
	missing := alive.Diff(contributors)
	if missing.IsEmpty() {
		return nil
	}
	return &TotalityViolation{
		Decision: d, Alive: alive, Contributors: contributors, Missing: missing,
	}
}
