package transport

import (
	"testing"
	"time"

	"realisticfd/internal/model"
)

// TestFaultHookDeterministic pins the determinism contract: two hooks
// with the same seed judging the same frame sequence produce identical
// per-link verdicts, drop counts and recorded decision prefixes.
func TestFaultHookDeterministic(t *testing.T) {
	t.Parallel()
	run := func() *FaultHook {
		h := NewFaultHook(1, 42)
		h.SetDrop(30)
		h.SetDelayMax(3)
		for frame := 0; frame < 500; frame++ {
			for to := model.ProcessID(2); to <= 4; to++ {
				h.Decide(to)
			}
		}
		return h
	}
	a, b := run(), run()
	as, bs := a.Stats(), b.Stats()
	if len(as) != 3 || len(bs) != 3 {
		t.Fatalf("stats cover %d/%d links, want 3", len(as), len(bs))
	}
	for to, sa := range as {
		sb := bs[to]
		if sa != sb {
			t.Fatalf("link →%v: run A %+v, run B %+v", to, sa, sb)
		}
		if sa.Frames != 500 {
			t.Fatalf("link →%v: %d frames, want 500", to, sa.Frames)
		}
		if sa.Drops < 500*20/100 || sa.Drops > 500*40/100 {
			t.Fatalf("link →%v: %d drops far from configured 30%%", to, sa.Drops)
		}
		da, db := a.Decisions(to), b.Decisions(to)
		if len(da) != len(db) {
			t.Fatalf("decision prefixes differ in length: %d vs %d", len(da), len(db))
		}
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("link →%v frame %d: verdicts diverge", to, i)
			}
		}
	}
	// A different seed must (overwhelmingly) disagree somewhere.
	c := NewFaultHook(1, 43)
	c.SetDrop(30)
	for frame := 0; frame < 500; frame++ {
		c.Decide(2)
	}
	same := true
	da, dc := a.Decisions(2), c.Decisions(2)
	for i := range da {
		if da[i] != dc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 judged 500 frames identically")
	}
}

// TestFaultHookRatesMidRun checks the mutable-rate semantics: the frame
// index keeps counting while rates are zero, so verdicts stay a pure
// function of the index regardless of when loss was switched on.
func TestFaultHookRatesMidRun(t *testing.T) {
	t.Parallel()
	full := NewFaultHook(1, 7)
	full.SetDrop(50)
	for frame := 0; frame < 200; frame++ {
		full.Decide(2)
	}
	late := NewFaultHook(1, 7)
	for frame := 0; frame < 100; frame++ {
		if drop, _ := late.Decide(2); drop {
			t.Fatal("frame dropped while the rate was zero")
		}
	}
	late.SetDrop(50)
	for frame := 100; frame < 200; frame++ {
		late.Decide(2)
	}
	df, dl := full.Decisions(2), late.Decisions(2)
	for i := 100; i < 200; i++ {
		if df[i] != dl[i] {
			t.Fatalf("frame %d: verdict depends on when the rate was set", i)
		}
	}
}

// TestTCPNodeFaultHook runs the hook on real sockets: full loss stops
// traffic, delay defers but still delivers, and zero rates are
// pass-through.
func TestTCPNodeFaultHook(t *testing.T) {
	t.Parallel()
	nodes, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTCPCluster(nodes)
	a, b := nodes[0], nodes[1]

	hook := NewFaultHook(a.Self(), 5)
	a.SetFaultHook(hook)

	recv := func(timeout time.Duration) *Envelope {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatal("recv channel closed")
			}
			return &env
		case <-time.After(timeout):
			return nil
		}
	}

	// Pass-through with zero rates.
	if err := a.Send(Envelope{To: 2, Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	if recv(2*time.Second) == nil {
		t.Fatal("zero-rate hook lost a frame")
	}

	// 100% drop: nothing arrives.
	hook.SetDrop(100)
	for i := 0; i < 10; i++ {
		if err := a.Send(Envelope{To: 2, Type: "ping"}); err != nil {
			t.Fatal(err)
		}
	}
	if env := recv(150 * time.Millisecond); env != nil {
		t.Fatalf("frame %+v slipped past a 100%% drop", env)
	}
	if st := hook.Stats()[2]; st.Drops != 10 {
		t.Fatalf("drop tally %d, want 10", st.Drops)
	}

	// Delay only: the frame arrives, late.
	hook.SetDrop(0)
	hook.SetDelayMax(30)
	if err := a.Send(Envelope{To: 2, Type: "pong"}); err != nil {
		t.Fatal(err)
	}
	if recv(2*time.Second) == nil {
		t.Fatal("delayed frame never arrived")
	}
}
