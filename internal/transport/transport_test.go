package transport

import (
	"testing"
	"time"

	"realisticfd/internal/model"
)

func recvWithin(t *testing.T, tr Transport, d time.Duration) (Envelope, bool) {
	t.Helper()
	select {
	case env, ok := <-tr.Recv():
		return env, ok
	case <-time.After(d):
		return Envelope{}, false
	}
}

func TestEnvelopeBodyRoundTrip(t *testing.T) {
	t.Parallel()
	type payload struct {
		Seq  int    `json:"seq"`
		Note string `json:"note"`
	}
	var env Envelope
	if err := env.Marshal(payload{Seq: 7, Note: "hi"}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := env.Unmarshal(&got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Note != "hi" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChanNetworkDelivery(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()

	n1, n2 := net.Node(1), net.Node(2)
	if err := n1.Send(Envelope{To: 2, Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	env, ok := recvWithin(t, n2, time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if env.From != 1 || env.To != 2 || env.Type != "ping" {
		t.Fatalf("got %+v", env)
	}
}

func TestChanNetworkPartitionAndHeal(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()

	net.Partition(1, 2)
	if err := net.Node(1).Send(Envelope{To: 2, Type: "lost"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, net.Node(2), 50*time.Millisecond); ok {
		t.Fatal("partitioned message delivered")
	}
	net.Heal(1, 2)
	if err := net.Node(1).Send(Envelope{To: 2, Type: "back"}); err != nil {
		t.Fatal(err)
	}
	if env, ok := recvWithin(t, net.Node(2), time.Second); !ok || env.Type != "back" {
		t.Fatalf("post-heal delivery failed: %+v ok=%v", env, ok)
	}
}

func TestChanNetworkIsolate(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	net.Isolate(3)
	for q := model.ProcessID(1); q <= 4; q++ {
		if q == 3 {
			continue
		}
		if err := net.Node(3).Send(Envelope{To: q, Type: "x"}); err != nil {
			t.Fatal(err)
		}
		if _, ok := recvWithin(t, net.Node(q), 30*time.Millisecond); ok {
			t.Fatalf("isolated node reached %v", q)
		}
	}
}

func TestChanNetworkDropAll(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4, WithDrop(100), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	for i := 0; i < 20; i++ {
		if err := net.Node(1).Send(Envelope{To: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := recvWithin(t, net.Node(2), 50*time.Millisecond); ok {
		t.Fatal("message survived 100% drop")
	}
}

func TestChanNetworkDelayedDelivery(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4, WithDelay(20*time.Millisecond, 30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	start := time.Now()
	if err := net.Node(1).Send(Envelope{To: 2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithin(t, net.Node(2), time.Second); !ok {
		t.Fatal("no delivery")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ ~20ms", elapsed)
	}
}

func TestChanNetworkSendAfterClose(t *testing.T) {
	t.Parallel()
	net, err := NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(1).Send(Envelope{To: 2}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Recv channel is closed.
	if _, ok := <-net.Node(2).Recv(); ok {
		t.Fatal("recv channel not closed")
	}
	// Double close is fine.
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPClusterRoundTrip(t *testing.T) {
	t.Parallel()
	nodes, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTCPCluster(nodes)

	env := Envelope{To: 3, Type: "hb"}
	if err := env.Marshal(map[string]int{"seq": 1}); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Send(env); err != nil {
		t.Fatal(err)
	}
	got, ok := recvWithin(t, nodes[2], 2*time.Second)
	if !ok {
		t.Fatal("no TCP delivery")
	}
	if got.From != 1 || got.Type != "hb" {
		t.Fatalf("got %+v", got)
	}
	var body map[string]int
	if err := got.Unmarshal(&body); err != nil {
		t.Fatal(err)
	}
	if body["seq"] != 1 {
		t.Fatalf("body = %v", body)
	}
}

func TestTCPManyMessagesBothDirections(t *testing.T) {
	t.Parallel()
	nodes, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTCPCluster(nodes)

	const msgs = 50
	for i := 0; i < msgs; i++ {
		if err := nodes[0].Send(Envelope{To: 2, Type: "a"}); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Send(Envelope{To: 1, Type: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		if _, ok := recvWithin(t, nodes[1], 2*time.Second); !ok {
			t.Fatalf("n2 missing message %d", i)
		}
		if _, ok := recvWithin(t, nodes[0], 2*time.Second); !ok {
			t.Fatalf("n1 missing message %d", i)
		}
	}
}

func TestTCPSendToDeadPeerIsSilentLoss(t *testing.T) {
	t.Parallel()
	nodes, err := NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTCPCluster(nodes)

	// Kill node 4, then send to it: crash-stop peers look like loss.
	if err := nodes[3].Close(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Send(Envelope{To: 4, Type: "x"}); err != nil {
		t.Fatalf("send to dead peer should be silent, got %v", err)
	}
}

func TestTCPSendUnregisteredPeer(t *testing.T) {
	t.Parallel()
	nd, err := NewTCPNode(1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nd.Close() }()
	if err := nd.Send(Envelope{To: 9}); err == nil {
		t.Fatal("send to unregistered peer succeeded")
	}
}
