package transport

import (
	"math/rand"
	"sync"
	"time"

	"realisticfd/internal/model"
)

// ChanNetwork is an in-process network of n nodes with seeded fault
// injection: per-message delay jitter, probabilistic loss, and
// dynamic partitions. It is the deterministic-ish substrate for
// heartbeat and membership tests (delays use real timers; determinism
// of *content* comes from the seeded drop/delay draws).
type ChanNetwork struct {
	n int

	mu        sync.Mutex
	rng       *rand.Rand
	closed    bool
	minDelay  time.Duration
	maxDelay  time.Duration
	dropPct   int
	blocked   map[[2]model.ProcessID]bool
	deliverWG sync.WaitGroup

	nodes []*chanNode
}

// ChanOption configures a ChanNetwork.
type ChanOption func(*ChanNetwork)

// WithDelay sets the per-message delay range.
func WithDelay(min, max time.Duration) ChanOption {
	return func(c *ChanNetwork) { c.minDelay, c.maxDelay = min, max }
}

// WithDrop sets the percentage (0..100) of messages silently lost.
func WithDrop(pct int) ChanOption {
	return func(c *ChanNetwork) { c.dropPct = pct }
}

// WithSeed seeds the fault-injection randomness.
func WithSeed(seed int64) ChanOption {
	return func(c *ChanNetwork) { c.rng = rand.New(rand.NewSource(seed)) }
}

// NewChanNetwork builds an n-node in-process network.
func NewChanNetwork(n int, opts ...ChanOption) (*ChanNetwork, error) {
	if err := model.ValidateN(n); err != nil {
		return nil, err
	}
	c := &ChanNetwork{
		n:       n,
		rng:     rand.New(rand.NewSource(1)),
		blocked: map[[2]model.ProcessID]bool{},
	}
	for _, o := range opts {
		o(c)
	}
	c.nodes = make([]*chanNode, n+1)
	for p := 1; p <= n; p++ {
		c.nodes[p] = &chanNode{
			net:  c,
			self: model.ProcessID(p),
			in:   make(chan Envelope, 256),
		}
	}
	return c, nil
}

// Node returns the transport endpoint of process p.
func (c *ChanNetwork) Node(p model.ProcessID) Transport {
	if p < 1 || int(p) > c.n {
		panic("transport: node out of range")
	}
	return c.nodes[p]
}

// Partition blocks traffic in both directions between a and b.
func (c *ChanNetwork) Partition(a, b model.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocked[[2]model.ProcessID{a, b}] = true
	c.blocked[[2]model.ProcessID{b, a}] = true
}

// Heal removes the partition between a and b.
func (c *ChanNetwork) Heal(a, b model.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.blocked, [2]model.ProcessID{a, b})
	delete(c.blocked, [2]model.ProcessID{b, a})
}

// Isolate partitions p from every other node — the transport-level
// equivalent of a crash, as seen by everyone else.
func (c *ChanNetwork) Isolate(p model.ProcessID) {
	for q := 1; q <= c.n; q++ {
		if model.ProcessID(q) != p {
			c.Partition(p, model.ProcessID(q))
		}
	}
}

// Close shuts the network down: further sends fail, in-flight
// deliveries are awaited, and node channels close.
func (c *ChanNetwork) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()

	c.deliverWG.Wait()
	for p := 1; p <= c.n; p++ {
		close(c.nodes[p].in)
	}
	return nil
}

// send is the hub: applies loss, partition and delay, then delivers.
func (c *ChanNetwork) send(env Envelope) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if env.To < 1 || int(env.To) > c.n {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.blocked[[2]model.ProcessID{env.From, env.To}] {
		c.mu.Unlock()
		return nil // silently dropped, like a real partition
	}
	if c.dropPct > 0 && c.rng.Intn(100) < c.dropPct {
		c.mu.Unlock()
		return nil
	}
	delay := c.minDelay
	if c.maxDelay > c.minDelay {
		delay += time.Duration(c.rng.Int63n(int64(c.maxDelay - c.minDelay)))
	}
	c.deliverWG.Add(1)
	c.mu.Unlock()

	deliver := func() {
		defer c.deliverWG.Done()
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		select {
		case c.nodes[env.To].in <- env:
		default:
			// Receiver queue full: drop, as a kernel socket buffer
			// would.
		}
	}
	if delay <= 0 {
		deliver()
		return nil
	}
	time.AfterFunc(delay, deliver)
	return nil
}

// chanNode is one endpoint of a ChanNetwork.
type chanNode struct {
	net  *ChanNetwork
	self model.ProcessID
	in   chan Envelope
}

var _ Transport = (*chanNode)(nil)

// Self implements Transport.
func (nd *chanNode) Self() model.ProcessID { return nd.self }

// Send implements Transport.
func (nd *chanNode) Send(env Envelope) error {
	env.From = nd.self
	return nd.net.send(env)
}

// Recv implements Transport.
func (nd *chanNode) Recv() <-chan Envelope { return nd.in }

// Close implements Transport; closing one node closes the network.
func (nd *chanNode) Close() error { return nd.net.Close() }
