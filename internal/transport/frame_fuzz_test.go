package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"realisticfd/internal/model"
)

// FuzzFrameRoundTrip holds the frame codec to exact round-trips: any
// envelope that writes must read back identical.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), "heartbeat", []byte(`"7"`))
	f.Add(int64(0), int64(0), "", []byte(nil))
	f.Add(int64(200), int64(199), "gossip", []byte(`{"x":[1,2,3]}`))
	f.Fuzz(func(t *testing.T, from, to int64, typ string, body []byte) {
		env := Envelope{
			From: model.ProcessID(from),
			To:   model.ProcessID(to),
			Type: typ,
		}
		if len(body) > 0 {
			// Body must be valid JSON to survive marshal; wrap raw
			// fuzz bytes as a JSON string via Marshal.
			if err := env.Marshal(string(body)); err != nil {
				t.Skip()
			}
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, env); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		got, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("readFrame after writeFrame: %v", err)
		}
		if got.From != env.From || got.To != env.To || got.Type != env.Type {
			t.Fatalf("round-trip mismatch: sent %+v got %+v", env, got)
		}
		if !bytes.Equal(got.Body, env.Body) {
			t.Fatalf("body mismatch: sent %q got %q", env.Body, got.Body)
		}
	})
}

// FuzzReadFrame feeds the reader adversarial bytes: it must never
// panic, and must either error or produce an envelope that re-encodes.
func FuzzReadFrame(f *testing.F) {
	good := func(env Envelope) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, env); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(good(Envelope{From: 1, To: 2, Type: "heartbeat"}))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, env); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, Envelope{From: 1, To: 2, Type: "x"}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		if _, err := readFrame(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes was not rejected", cut, len(whole))
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	_, err := readFrame(bytes.NewReader(hdr[:]))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: err=%v", err)
	}
	// The reject must happen before the body is consumed: a reader
	// that allocated and read 4 GiB here would be a DoS vector.
	r := &countingReader{r: bytes.NewReader(append(hdr[:], make([]byte, 16)...))}
	_, _ = readFrame(r)
	if r.n > 4 {
		t.Fatalf("oversized frame consumed %d bytes past the header", r.n-4)
	}
}

func TestWriteJSONOversized(t *testing.T) {
	big := strings.Repeat("a", maxFrame)
	err := WriteJSON(io.Discard, big)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized payload not rejected: err=%v", err)
	}
}

func TestReadJSONBadPayload(t *testing.T) {
	body := []byte("not json")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	var v any
	if err := ReadJSON(&buf, &v); err == nil {
		t.Fatal("malformed JSON frame was not rejected")
	}
}

type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}
