package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"realisticfd/internal/model"
)

// TestTCPCloseUnderFire pins the graceful-close contract the live
// cluster depends on: Close must terminate cleanly — no panic, no
// leaked readLoop, no send on a closed channel — while other
// goroutines are mid-Send, under the race detector. This is the churn
// the orchestrator produces when it SIGKILLs nodes whose peers are
// still heartbeating them.
func TestTCPCloseUnderFire(t *testing.T) {
	const cycles = 8
	for cycle := 0; cycle < cycles; cycle++ {
		nodes, err := NewTCPCluster(4)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for _, nd := range nodes {
			for _, peer := range nodes {
				if peer == nd {
					continue
				}
				wg.Add(1)
				go func(nd *TCPNode, to model.ProcessID) {
					defer wg.Done()
					env := Envelope{To: to, Type: "churn"}
					_ = env.Marshal("payload")
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := nd.Send(env); err != nil && err != ErrClosed {
							// Unregistered-peer errors are impossible
							// here; anything else is a bug.
							t.Errorf("send: %v", err)
							return
						}
					}
				}(nd, peer.Self())
			}
		}
		// Let traffic flow, then slam everything shut while sends are
		// in flight. Half the cycles close in reverse order so both
		// directions of a connection see the close first.
		time.Sleep(10 * time.Millisecond)
		if cycle%2 == 0 {
			for _, nd := range nodes {
				_ = nd.Close()
			}
		} else {
			for i := len(nodes) - 1; i >= 0; i-- {
				_ = nodes[i].Close()
			}
		}
		close(stop)
		wg.Wait()

		// Sends after close must report ErrClosed, never panic.
		env := Envelope{To: 2, Type: "late"}
		if err := nodes[0].Send(env); err != ErrClosed {
			t.Fatalf("send after close: got %v, want ErrClosed", err)
		}
		// The receive channel must be closed (drained) for every node.
		for _, nd := range nodes {
			deadline := time.After(2 * time.Second)
			for {
				select {
				case _, ok := <-nd.Recv():
					if !ok {
						goto next
					}
				case <-deadline:
					t.Fatalf("recv channel of %v not closed after Close", nd.Self())
				}
			}
		next:
		}
	}
}

// TestTCPStartKillCloseChurn cycles node lifecycles concurrently:
// nodes come up, exchange traffic, and die in arbitrary order while
// their peers keep sending. Any send-after-close panic, readLoop leak
// or frame corruption surfaces here under -race.
func TestTCPStartKillCloseChurn(t *testing.T) {
	const rounds = 6
	for round := 0; round < rounds; round++ {
		a, err := NewTCPNode(1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewTCPNode(2)
		if err != nil {
			t.Fatal(err)
		}
		a.SetPeer(2, b.Addr())
		b.SetPeer(1, a.Addr())

		var senders sync.WaitGroup
		// Multiple goroutines share the a→b link: the per-link write
		// lock must keep frames intact.
		const writers = 4
		const perWriter = 50
		for w := 0; w < writers; w++ {
			senders.Add(1)
			go func(w int) {
				defer senders.Done()
				for i := 0; i < perWriter; i++ {
					env := Envelope{To: 2, Type: "data"}
					_ = env.Marshal(fmt.Sprintf("w%d-%d", w, i))
					_ = a.Send(env)
				}
			}(w)
		}
		// Concurrently, b dies mid-stream on odd rounds.
		if round%2 == 1 {
			go func() {
				time.Sleep(time.Millisecond)
				_ = b.Close()
			}()
		}

		received := 0
		timeout := time.After(5 * time.Second)
	drain:
		for {
			select {
			case env, ok := <-b.Recv():
				if !ok {
					break drain
				}
				// Every frame that arrives must decode to a sane body:
				// interleaved writes would corrupt the JSON.
				var body string
				if err := env.Unmarshal(&body); err != nil {
					t.Fatalf("corrupt frame: %v", err)
				}
				received++
				if received == writers*perWriter {
					break drain
				}
			case <-timeout:
				t.Fatal("drain timed out")
			}
		}
		senders.Wait()
		_ = a.Close()
		_ = b.Close()
		if round%2 == 0 && received != writers*perWriter {
			t.Fatalf("round %d: received %d of %d frames with no failure injected",
				round, received, writers*perWriter)
		}
	}
}

// TestTCPSetCut pins the socket-level partition semantics: a cut peer
// loses both directions, and healing restores them.
func TestTCPSetCut(t *testing.T) {
	a, err := NewTCPNode(1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNode(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())

	send := func(from *TCPNode, to model.ProcessID, body string) {
		env := Envelope{To: to, Type: "t"}
		if err := env.Marshal(body); err != nil {
			t.Fatal(err)
		}
		if err := from.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	recvBody := func(from *TCPNode, want string) {
		select {
		case env := <-from.Recv():
			var got string
			_ = env.Unmarshal(&got)
			if got != want {
				t.Fatalf("got %q want %q", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}

	send(a, 2, "before")
	recvBody(b, "before")

	// Outbound cut at a: the frame never leaves.
	a.SetCut(2, true)
	send(a, 2, "cut-out")
	// Inbound cut at b: even a frame that does arrive is discarded.
	b.SetCut(1, true)
	select {
	case env := <-b.Recv():
		t.Fatalf("partitioned frame delivered: %+v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if got := a.Cuts(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Cuts() = %v, want [2]", got)
	}

	a.SetCut(2, false)
	b.SetCut(1, false)
	send(a, 2, "healed")
	recvBody(b, "healed")
}
