package transport

import (
	"testing"
	"time"
)

func TestDemuxRoutesByType(t *testing.T) {
	t.Parallel()
	in := make(chan Envelope, 8)
	d := NewDemux(in)
	a := d.Chan("alpha")
	b := d.Chan("beta")

	in <- Envelope{From: 1, Type: "alpha"}
	in <- Envelope{From: 2, Type: "beta"}
	in <- Envelope{From: 3, Type: "unclaimed"} // dropped
	in <- Envelope{From: 4, Type: "alpha"}

	got := func(ch <-chan Envelope) Envelope {
		select {
		case e := <-ch:
			return e
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
			return Envelope{}
		}
	}
	if e := got(a); e.From != 1 {
		t.Fatalf("alpha #1 from %v", e.From)
	}
	if e := got(b); e.From != 2 {
		t.Fatalf("beta #1 from %v", e.From)
	}
	if e := got(a); e.From != 4 {
		t.Fatalf("alpha #2 from %v", e.From)
	}

	close(in)
	select {
	case <-d.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("demux did not stop on input close")
	}
	if _, ok := <-a; ok {
		t.Fatal("output channel not closed")
	}
}

func TestDemuxChanIdempotent(t *testing.T) {
	t.Parallel()
	in := make(chan Envelope)
	d := NewDemux(in)
	if d.Chan("x") != d.Chan("x") {
		t.Fatal("Chan returned two channels for one type")
	}
	close(in)
	<-d.Done()
}
