// Package transport provides the live message layer under the
// heartbeat failure detectors and the membership service: an
// in-process network with seeded delay/drop/partition injection for
// deterministic tests, and a TCP transport (length-prefixed JSON
// frames over localhost sockets) for the real thing.
//
// The paper's practical observation (§1.3) is that real systems
// emulate a Perfect detector with timeout-based group membership; this
// package supplies the "real" substrate those experiments (E9) run on.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"

	"realisticfd/internal/model"
)

// Envelope is one transport message. Payload is an opaque JSON blob so
// heterogeneous protocols (heartbeats, membership, application) share
// a link.
type Envelope struct {
	From model.ProcessID `json:"from"`
	To   model.ProcessID `json:"to"`
	Type string          `json:"type"`
	Body json.RawMessage `json:"body,omitempty"`
}

// Marshal encodes v into the envelope body.
func (e *Envelope) Marshal(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("transport: marshal body: %w", err)
	}
	e.Body = b
	return nil
}

// Unmarshal decodes the envelope body into v.
func (e *Envelope) Unmarshal(v any) error {
	if err := json.Unmarshal(e.Body, v); err != nil {
		return fmt.Errorf("transport: unmarshal body: %w", err)
	}
	return nil
}

// Transport is one node's endpoint. Implementations must be safe for
// concurrent use. Recv's channel is closed by Close.
type Transport interface {
	// Self returns the node's identity.
	Self() model.ProcessID
	// Send transmits the envelope to env.To. Sends after Close (or to
	// closed networks) return ErrClosed; sends lost to injected
	// faults return nil — loss is silent, as on a real network.
	Send(env Envelope) error
	// Recv returns the channel of inbound envelopes.
	Recv() <-chan Envelope
	// Close releases resources and unblocks Recv.
	Close() error
}

// ErrClosed is returned by sends on closed transports.
var ErrClosed = errors.New("transport: closed")
