package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"realisticfd/internal/model"
)

// TCPNode is a Transport over real TCP sockets on localhost: each node
// listens on its own port and dials peers on demand; frames are
// length-prefixed JSON envelopes. This is the "heartbeats over
// sockets" substrate of experiment E9 and the livecluster example.
type TCPNode struct {
	self model.ProcessID
	ln   net.Listener
	in   chan Envelope

	mu       sync.Mutex
	peers    map[model.ProcessID]string
	conns    map[model.ProcessID]net.Conn
	accepted map[net.Conn]bool
	closed   bool

	wg sync.WaitGroup
}

var _ Transport = (*TCPNode)(nil)

// maxFrame bounds a frame to 1 MiB; larger frames indicate corruption.
const maxFrame = 1 << 20

// NewTCPNode starts a node listening on 127.0.0.1:0 (kernel-assigned
// port). Register peer addresses with SetPeer before sending.
func NewTCPNode(self model.ProcessID) (*TCPNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &TCPNode{
		self:     self,
		ln:       ln,
		in:       make(chan Envelope, 256),
		peers:    map[model.ProcessID]string{},
		conns:    map[model.ProcessID]net.Conn{},
		accepted: map[net.Conn]bool{},
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address, for peer registration.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of peer p.
func (n *TCPNode) SetPeer(p model.ProcessID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p] = addr
}

// Self implements Transport.
func (n *TCPNode) Self() model.ProcessID { return n.self }

// Recv implements Transport.
func (n *TCPNode) Recv() <-chan Envelope { return n.in }

// Send implements Transport: dial-on-demand with connection reuse.
// A peer that cannot be reached loses the message silently (crash-stop
// peers look exactly like that); dialing errors for unregistered
// peers are returned.
func (n *TCPNode) Send(env Envelope) error {
	env.From = n.self
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	conn, ok := n.conns[env.To]
	if !ok {
		addr, known := n.peers[env.To]
		if !known {
			n.mu.Unlock()
			return fmt.Errorf("transport: peer %v not registered", env.To)
		}
		var err error
		conn, err = net.Dial("tcp", addr)
		if err != nil {
			n.mu.Unlock()
			return nil // unreachable peer ≈ lost message
		}
		n.conns[env.To] = conn
	}
	n.mu.Unlock()

	if err := writeFrame(conn, env); err != nil {
		n.mu.Lock()
		if n.conns[env.To] == conn {
			delete(n.conns, env.To)
		}
		n.mu.Unlock()
		_ = conn.Close()
		return nil // broken pipe ≈ lost message
	}
	return nil
}

// Close implements Transport.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns)+len(n.accepted))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	for c := range n.accepted {
		conns = append(conns, c)
	}
	n.conns = map[model.ProcessID]net.Conn{}
	n.accepted = map[net.Conn]bool{}
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.in)
	return nil
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.accepted[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the recv
// channel.
func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case n.in <- env:
		default:
			// Receiver queue full: drop like a full socket buffer.
		}
	}
}

// writeFrame emits a length-prefixed JSON envelope.
func writeFrame(w io.Writer, env Envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed JSON envelope.
func readFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return Envelope{}, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return Envelope{}, fmt.Errorf("transport: bad frame: %w", err)
	}
	return env, nil
}

// NewTCPCluster starts n interconnected TCP nodes on localhost and
// registers all peer addresses. Close every node (or use
// CloseTCPCluster) when done.
func NewTCPCluster(n int) ([]*TCPNode, error) {
	if err := model.ValidateN(n); err != nil {
		return nil, err
	}
	nodes := make([]*TCPNode, 0, n)
	for p := 1; p <= n; p++ {
		nd, err := NewTCPNode(model.ProcessID(p))
		if err != nil {
			CloseTCPCluster(nodes)
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.SetPeer(b.Self(), b.Addr())
			}
		}
	}
	return nodes, nil
}

// CloseTCPCluster closes every node of a cluster.
func CloseTCPCluster(nodes []*TCPNode) {
	for _, nd := range nodes {
		if nd != nil {
			_ = nd.Close()
		}
	}
}
