package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"realisticfd/internal/model"
)

// TCPNode is a Transport over real TCP sockets on localhost: each node
// listens on its own port and dials peers on demand; frames are
// length-prefixed JSON envelopes. This is the "heartbeats over
// sockets" substrate of experiment E9 and the live cluster
// (internal/cluster).
//
// Writes to one peer are serialized through a per-peer link lock, so
// concurrent senders (heartbeat emitter, membership, control traffic)
// cannot interleave frame bytes on a shared connection. Every open
// connection is also registered in a flat set guarded by the node
// lock, so Close can sever a connection whose writer is wedged on a
// full socket buffer (a SIGSTOPped peer) without waiting for the
// writer — the close fails the write, the writer unwinds, nothing
// hangs.
type TCPNode struct {
	self model.ProcessID
	ln   net.Listener
	in   chan Envelope

	mu     sync.Mutex
	peers  map[model.ProcessID]string
	links  map[model.ProcessID]*peerLink
	open   map[net.Conn]bool // every live conn, dialed or accepted
	cut    map[model.ProcessID]bool
	hook   *FaultHook
	closed bool

	wg sync.WaitGroup
}

// peerLink serializes writes to one peer. conn is nil until dialed and
// is accessed only with mu held.
type peerLink struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ Transport = (*TCPNode)(nil)

// maxFrame bounds a frame to 1 MiB; larger frames indicate corruption.
const maxFrame = 1 << 20

// NewTCPNode starts a node listening on 127.0.0.1:0 (kernel-assigned
// port). Register peer addresses with SetPeer before sending.
func NewTCPNode(self model.ProcessID) (*TCPNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	n := &TCPNode{
		self:  self,
		ln:    ln,
		in:    make(chan Envelope, 256),
		peers: map[model.ProcessID]string{},
		links: map[model.ProcessID]*peerLink{},
		open:  map[net.Conn]bool{},
		cut:   map[model.ProcessID]bool{},
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address, for peer registration.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of peer p.
func (n *TCPNode) SetPeer(p model.ProcessID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p] = addr
}

// SetCut installs (or removes) a partition against peer p: while cut,
// outbound envelopes to p are silently dropped and inbound frames from
// p are discarded on arrival. This emulates a network partition at the
// socket layer, no iptables required — both endpoints of a cut edge
// are told to drop, so a one-sided liar still loses its half of the
// conversation.
func (n *TCPNode) SetCut(p model.ProcessID, cut bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cut {
		n.cut[p] = true
	} else {
		delete(n.cut, p)
	}
}

// Cuts returns the currently cut peers.
func (n *TCPNode) Cuts() []model.ProcessID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]model.ProcessID, 0, len(n.cut))
	for p := range n.cut {
		out = append(out, p)
	}
	return out
}

// SetFaultHook installs (or, with nil, removes) the seeded drop/delay
// lottery applied to every outbound envelope — the live lowering of the
// fault plan's loss axes. Install it before traffic starts so frame
// indices count from zero.
func (n *TCPNode) SetFaultHook(h *FaultHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hook = h
}

// FaultHook returns the installed hook, or nil.
func (n *TCPNode) FaultHook() *FaultHook {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hook
}

// Self implements Transport.
func (n *TCPNode) Self() model.ProcessID { return n.self }

// Recv implements Transport.
func (n *TCPNode) Recv() <-chan Envelope { return n.in }

// Send implements Transport: dial-on-demand with connection reuse.
// A peer that cannot be reached loses the message silently (crash-stop
// peers look exactly like that); dialing errors for unregistered
// peers are returned.
func (n *TCPNode) Send(env Envelope) error {
	n.mu.Lock()
	hook := n.hook
	n.mu.Unlock()
	if hook != nil {
		drop, delay := hook.Decide(env.To)
		if drop {
			return nil // seeded loss: the frame is gone
		}
		if delay > 0 {
			// Re-send after the drawn latency, bypassing the hook so the
			// frame is not judged twice. A node closed in the meantime
			// just loses the frame, like any in-flight packet.
			env := env
			time.AfterFunc(delay, func() { _ = n.send(env) })
			return nil
		}
	}
	return n.send(env)
}

// send delivers one envelope past the fault hook: the dial-on-demand
// path shared by immediate and delayed frames.
func (n *TCPNode) send(env Envelope) error {
	env.From = n.self
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.cut[env.To] {
		n.mu.Unlock()
		return nil // partitioned: silent loss
	}
	link, ok := n.links[env.To]
	if !ok {
		if _, known := n.peers[env.To]; !known {
			n.mu.Unlock()
			return fmt.Errorf("transport: peer %v not registered", env.To)
		}
		link = &peerLink{}
		n.links[env.To] = link
	}
	addr := n.peers[env.To]
	n.mu.Unlock()

	link.mu.Lock()
	defer link.mu.Unlock()
	if link.conn == nil {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil // unreachable peer ≈ lost message
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		n.open[conn] = true
		n.mu.Unlock()
		link.conn = conn
	}
	if err := writeFrame(link.conn, env); err != nil {
		conn := link.conn
		link.conn = nil
		n.mu.Lock()
		delete(n.open, conn)
		n.mu.Unlock()
		_ = conn.Close()
		return nil // broken pipe ≈ lost message
	}
	return nil
}

// Close implements Transport: it severs every open connection (which
// fails any in-flight writer or reader), stops the accept loop, waits
// for the reader goroutines, and closes the receive channel. It never
// waits for a blocked writer — closing the connection is what unblocks
// it.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.open))
	for c := range n.open {
		conns = append(conns, c)
	}
	n.open = map[net.Conn]bool{}
	n.mu.Unlock()

	_ = n.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.in)
	return nil
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.open[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the recv
// channel, discarding frames from cut peers.
func (n *TCPNode) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.open, conn)
		n.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		env, err := readFrame(r)
		if err != nil {
			return
		}
		n.mu.Lock()
		closed, dropped := n.closed, n.cut[env.From]
		n.mu.Unlock()
		if closed {
			return
		}
		if dropped {
			continue // inbound half of a partition
		}
		select {
		case n.in <- env:
		default:
			// Receiver queue full: drop like a full socket buffer.
		}
	}
}

// WriteJSON frames an arbitrary JSON-marshalable value with the same
// length-prefixed format as envelopes: 4-byte big-endian length, then
// the JSON bytes. The cluster control channel shares this codec with
// the data plane.
func WriteJSON(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("transport: marshal frame: %w", err)
	}
	if len(b) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadJSON reads one length-prefixed JSON frame into v, rejecting
// frames over the 1 MiB limit before allocating.
func ReadJSON(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("transport: bad frame: %w", err)
	}
	return nil
}

// writeFrame emits a length-prefixed JSON envelope.
func writeFrame(w io.Writer, env Envelope) error {
	return WriteJSON(w, env)
}

// readFrame reads one length-prefixed JSON envelope.
func readFrame(r io.Reader) (Envelope, error) {
	var env Envelope
	if err := ReadJSON(r, &env); err != nil {
		return Envelope{}, err
	}
	return env, nil
}

// NewTCPCluster starts n interconnected TCP nodes on localhost and
// registers all peer addresses. Close every node (or use
// CloseTCPCluster) when done.
func NewTCPCluster(n int) ([]*TCPNode, error) {
	if err := model.ValidateN(n); err != nil {
		return nil, err
	}
	nodes := make([]*TCPNode, 0, n)
	for p := 1; p <= n; p++ {
		nd, err := NewTCPNode(model.ProcessID(p))
		if err != nil {
			CloseTCPCluster(nodes)
			return nil, err
		}
		nodes = append(nodes, nd)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				a.SetPeer(b.Self(), b.Addr())
			}
		}
	}
	return nodes, nil
}

// CloseTCPCluster closes every node of a cluster.
func CloseTCPCluster(nodes []*TCPNode) {
	for _, nd := range nodes {
		if nd != nil {
			_ = nd.Close()
		}
	}
}
