package transport

import "sync"

// Demux fans one envelope stream out by Type, so several protocols
// (membership, consensus, application) can share a node's transport
// behind a heartbeat detector's Forward stream. Channels for
// unclaimed types drop silently, like unbound ports.
type Demux struct {
	mu   sync.Mutex
	outs map[string]chan Envelope

	done chan struct{}
}

// NewDemux starts demultiplexing in. Claim output channels with Chan
// *before* traffic of that type is expected; envelopes of unclaimed
// types are dropped. The demux stops when in closes; all output
// channels close then.
func NewDemux(in <-chan Envelope) *Demux {
	d := &Demux{
		outs: map[string]chan Envelope{},
		done: make(chan struct{}),
	}
	go d.run(in)
	return d
}

// Chan returns (creating if needed) the channel carrying envelopes of
// the given type.
func (d *Demux) Chan(typ string) <-chan Envelope {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch, ok := d.outs[typ]
	if !ok {
		ch = make(chan Envelope, 64)
		d.outs[typ] = ch
	}
	return ch
}

// Done reports demux termination (the input stream closed).
func (d *Demux) Done() <-chan struct{} { return d.done }

func (d *Demux) run(in <-chan Envelope) {
	defer func() {
		d.mu.Lock()
		for _, ch := range d.outs {
			close(ch)
		}
		d.mu.Unlock()
		close(d.done)
	}()
	for env := range in {
		d.mu.Lock()
		ch := d.outs[env.Type]
		d.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- env:
		default: // slow consumer: drop, like a full socket buffer
		}
	}
}
