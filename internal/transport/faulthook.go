package transport

import (
	"sync"
	"time"

	"realisticfd/internal/model"
)

// FaultHook is the live counterpart of the simulator's per-message
// fault lottery (sim.FaultyPolicy): seeded probabilistic drop and
// bounded extra delay applied to every outbound frame of a TCPNode.
// The verdict for a frame is a pure function of (seed, sender,
// destination, per-destination frame index) — never of wall-clock time
// or goroutine interleaving — so two runs whose links carry the same
// frame sequence make byte-identical drop/delay decisions. That purity
// is what makes live fault injection auditable: the orchestrator can
// assert reproducibility across runs (and the determinism test does).
//
// Rates are mutable mid-run (the fault-plan interpreter flips them at
// scripted instants); the frame index keeps counting while rates are
// zero, so the verdict of frame k is fixed for the whole run whether or
// not loss was enabled when it was sent.
type FaultHook struct {
	seed uint64
	self model.ProcessID

	mu         sync.Mutex
	dropPct    int
	delayMaxMs int
	frames     map[model.ProcessID]uint64
	drops      map[model.ProcessID]uint64
	decisions  map[model.ProcessID][]bool // first decisionCap verdicts per link
}

// decisionCap bounds the recorded per-link decision history: enough to
// compare runs, bounded so a long campaign cannot grow it unboundedly.
const decisionCap = 4096

// delaySalt decorrelates the delay lottery from the drop lottery.
const delaySalt = 0xd1b54a32d192ed03

// NewFaultHook builds a hook for frames sent by self under the given
// lottery seed. Rates start at zero (no perturbation).
func NewFaultHook(self model.ProcessID, seed uint64) *FaultHook {
	return &FaultHook{
		seed:      seed,
		self:      self,
		frames:    map[model.ProcessID]uint64{},
		drops:     map[model.ProcessID]uint64{},
		decisions: map[model.ProcessID][]bool{},
	}
}

// linkLottery hashes one (seed, link, frame) triple; splitmix64 keeps
// it identical in spirit to the simulator's mix64 lottery.
func linkLottery(seed uint64, from, to model.ProcessID, frame uint64) uint64 {
	h := mix64(seed ^ uint64(from)<<32 ^ uint64(to))
	return mix64(h ^ frame)
}

// mix64 is a splitmix64 finalizer (the same construction sim uses for
// its per-message lottery).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SetDrop sets the outbound loss percentage (0..100).
func (h *FaultHook) SetDrop(pct int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dropPct = pct
}

// SetDelayMax sets the extra-latency bound in milliseconds; each
// non-dropped frame is delayed uniformly in [0, max].
func (h *FaultHook) SetDelayMax(ms int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.delayMaxMs = ms
}

// Decide consumes the next frame index of the link to dest and returns
// the frame's fate under the current rates.
func (h *FaultHook) Decide(to model.ProcessID) (drop bool, delay time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := h.frames[to]
	h.frames[to] = idx + 1
	if h.dropPct > 0 && linkLottery(h.seed, h.self, to, idx)%100 < uint64(h.dropPct) {
		drop = true
		h.drops[to]++
	} else if h.delayMaxMs > 0 {
		d := linkLottery(h.seed^delaySalt, h.self, to, idx) % uint64(h.delayMaxMs+1)
		delay = time.Duration(d) * time.Millisecond
	}
	if idx < decisionCap {
		h.decisions[to] = append(h.decisions[to], drop)
	}
	return drop, delay
}

// LinkStats is the per-destination frame/drop tally of one link.
type LinkStats struct {
	Frames uint64 `json:"frames"`
	Drops  uint64 `json:"drops"`
}

// Stats snapshots the per-link tallies, keyed by destination.
func (h *FaultHook) Stats() map[model.ProcessID]LinkStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[model.ProcessID]LinkStats, len(h.frames))
	for to, frames := range h.frames {
		out[to] = LinkStats{Frames: frames, Drops: h.drops[to]}
	}
	return out
}

// Decisions returns the recorded verdict prefix of the link to dest
// (true = dropped), at most decisionCap entries. Two runs with the same
// seed must agree on the common prefix — the determinism assertion.
func (h *FaultHook) Decisions(to model.ProcessID) []bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]bool(nil), h.decisions[to]...)
}
