package trb

import (
	"fmt"

	"realisticfd/internal/consensus"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Delivery is one located TRB delivery.
type Delivery struct {
	Initiator model.ProcessID
	Seq       int
	By        model.ProcessID
	At        model.Time
	Value     consensus.Value
}

// IsNil reports whether the delivery is the nil value for a crashed
// initiator.
func (d Delivery) IsNil() bool { return d.Value == Nil }

// Deliveries extracts every TRB delivery from a trace, keyed by
// instance then deliverer.
func Deliveries(tr *sim.Trace) map[int]map[model.ProcessID]Delivery {
	out := map[int]map[model.ProcessID]Delivery{}
	for _, le := range tr.ProtocolEvents(sim.KindDeliver) {
		v, ok := le.Event.Value.(consensus.Value)
		if !ok {
			continue
		}
		init, seq := SplitInstanceID(le.Event.Instance)
		m := out[le.Event.Instance]
		if m == nil {
			m = map[model.ProcessID]Delivery{}
			out[le.Event.Instance] = m
		}
		if _, dup := m[le.P]; !dup {
			m[le.P] = Delivery{Initiator: init, Seq: seq, By: le.P, At: le.T, Value: v}
		}
	}
	return out
}

// AllDelivered returns a per-run stop predicate: every correct
// process has delivered every instance of every wave. It consumes the
// trace's indexed deliver events incrementally — the closure keeps an
// offset into the (append-only) slice served by
// Trace.ProtocolEvents(KindDeliver) and a count of still-missing
// (instance, deliverer) pairs, so each of the per-step evaluations
// costs only the events that arrived since the last one. Use with
// crash scripts fixed up front: the correct set is sampled once, on
// the first evaluation.
//
// The returned predicate is stateful and single-use — construct a
// fresh one for every run (unlike the stateless sim.AllDecided and
// sim.CorrectDecided, reusing this one across runs would carry the
// first run's progress into the second and stop it immediately).
func AllDelivered(waves int) func(*sim.Trace) bool {
	var (
		inited   bool
		seen     int
		missing  int
		correct  model.ProcessSet
		required map[int]bool
		got      map[int]model.ProcessSet
	)
	return func(tr *sim.Trace) bool {
		if !inited {
			inited = true
			correct = tr.Pattern.Correct()
			required = make(map[int]bool, tr.N*waves)
			got = make(map[int]model.ProcessSet, tr.N*waves)
			for init := 1; init <= tr.N; init++ {
				for k := 0; k < waves; k++ {
					required[InstanceID(model.ProcessID(init), k)] = true
				}
			}
			missing = tr.N * waves * correct.Len()
		}
		dels := tr.ProtocolEvents(sim.KindDeliver)
		for ; seen < len(dels); seen++ {
			le := dels[seen]
			if _, ok := le.Event.Value.(consensus.Value); !ok {
				continue
			}
			id := le.Event.Instance
			if !required[id] || !correct.Has(le.P) || got[id].Has(le.P) {
				continue
			}
			got[id] = got[id].Add(le.P)
			missing--
		}
		return missing == 0
	}
}

// CheckAgreement verifies that for every instance, all deliverers
// delivered the same value (property 2 of §5).
func CheckAgreement(tr *sim.Trace) error {
	for id, m := range Deliveries(tr) {
		var ref consensus.Value
		var refBy model.ProcessID
		first := true
		for p := model.ProcessID(1); int(p) <= tr.N; p++ {
			d, ok := m[p]
			if !ok {
				continue
			}
			if first {
				ref, refBy, first = d.Value, p, false
			} else if d.Value != ref {
				init, seq := SplitInstanceID(id)
				return fmt.Errorf("trb agreement violated for (%v,%d): %v delivered %q, %v delivered %q",
					init, seq, refBy, ref, p, d.Value)
			}
		}
	}
	return nil
}

// CheckTermination verifies every correct process delivered every
// instance of every wave.
func CheckTermination(tr *sim.Trace, waves int) error {
	dels := Deliveries(tr)
	correct := tr.Pattern.Correct()
	for init := 1; init <= tr.N; init++ {
		for k := 0; k < waves; k++ {
			id := InstanceID(model.ProcessID(init), k)
			m := dels[id]
			for _, p := range correct.Slice() {
				if _, ok := m[p]; !ok {
					return fmt.Errorf("trb termination violated: correct %v never delivered (%v,%d)",
						p, model.ProcessID(init), k)
				}
			}
		}
	}
	return nil
}

// CheckValidity verifies property 1 of §5: a correct initiator's
// instances deliver its actual message, never nil.
func CheckValidity(tr *sim.Trace, waves int, script func(model.ProcessID, int) consensus.Value) error {
	if script == nil {
		script = DefaultScript
	}
	dels := Deliveries(tr)
	for _, init := range tr.Pattern.Correct().Slice() {
		for k := 0; k < waves; k++ {
			want := script(init, k)
			for _, d := range dels[InstanceID(init, k)] {
				if d.Value != want {
					return fmt.Errorf("trb validity violated: (%v,%d) delivered %q at %v, want %q",
						init, k, d.Value, d.By, want)
				}
			}
		}
	}
	return nil
}

// CheckIntegrity verifies property 3 of §5 in the crash-stop setting:
// every delivered non-nil value is exactly what the instance's
// initiator broadcast.
func CheckIntegrity(tr *sim.Trace, script func(model.ProcessID, int) consensus.Value) error {
	if script == nil {
		script = DefaultScript
	}
	for id, m := range Deliveries(tr) {
		init, seq := SplitInstanceID(id)
		want := script(init, seq)
		for _, d := range m {
			if !d.IsNil() && d.Value != want {
				return fmt.Errorf("trb integrity violated: (%v,%d) delivered %q at %v, initiator broadcast %q",
					init, seq, d.Value, d.By, want)
			}
		}
	}
	return nil
}

// CheckNilAccuracy verifies the realistic reading of Proposition 5.1's
// necessary direction: whenever nil is delivered for an instance of
// p_i at time t, p_i has crashed by t. This is exactly the step of
// the proof that requires D to be realistic.
func CheckNilAccuracy(tr *sim.Trace) error {
	for _, m := range Deliveries(tr) {
		for _, d := range m {
			if d.IsNil() && tr.Pattern.Alive(d.Initiator, d.At) {
				return fmt.Errorf("trb nil-accuracy violated: %v delivered nil for (%v,%d) at t=%d while %v was alive",
					d.By, d.Initiator, d.Seq, d.At, d.Initiator)
			}
		}
	}
	return nil
}

// CheckAll runs every TRB property.
func CheckAll(tr *sim.Trace, waves int, script func(model.ProcessID, int) consensus.Value) error {
	if err := CheckTermination(tr, waves); err != nil {
		return err
	}
	if err := CheckAgreement(tr); err != nil {
		return err
	}
	if err := CheckValidity(tr, waves, script); err != nil {
		return err
	}
	if err := CheckIntegrity(tr, script); err != nil {
		return err
	}
	return CheckNilAccuracy(tr)
}
