package trb

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func BenchmarkTRBWave(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pat := model.MustPattern(5).MustCrash(2, 30)
		tr, err := sim.Execute(sim.Config{
			N: 5, Automaton: Broadcast{Waves: 1}, Oracle: fd.Perfect{Delay: 2},
			Pattern: pat, Horizon: 60000, Seed: int64(i),
			StopWhen: AllDelivered(1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Stopped != sim.StopCondition {
			b.Fatal("wave incomplete")
		}
	}
}

func BenchmarkDeliveriesExtraction(b *testing.B) {
	tr, err := sim.Execute(sim.Config{
		N: 5, Automaton: Broadcast{Waves: 3}, Oracle: fd.Perfect{Delay: 2},
		Pattern: model.MustPattern(5), Horizon: 60000, Seed: 1,
		StopWhen: AllDelivered(3),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Deliveries(tr)
	}
}
