// Package trb implements Terminating Reliable Broadcast — the
// crash-stop rephrasing of the Byzantine Generals problem — and the
// P-based algorithm of Proposition 5.1 of "A Realistic Look At
// Failure Detectors" (DSN 2002).
//
// The general variant is implemented: every process p_i is a potential
// initiator and (i, k) denotes the k'th instance initiated by p_i.
// For each instance, every process waits until it receives the value
// from the initiator or suspects the initiator; in the first case it
// proposes that value to an embedded consensus, otherwise it proposes
// nil. The delivered value is the consensus decision. With a Perfect
// detector:
//
//   - validity: a correct initiator is never suspected, so everyone
//     proposes (and thus delivers) its message;
//   - agreement: from consensus agreement;
//   - integrity: values are routed by instance, so a delivered non-nil
//     message was broadcast by its instance's initiator;
//   - nil-accuracy (the realistic reading of §5): nil can only be
//     delivered if the initiator was suspected, and a realistic
//     accurate detector suspects only crashed processes.
package trb

import (
	"fmt"

	"realisticfd/internal/consensus"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Nil is the reserved value delivered for instances whose initiator
// crashed (the "specific nil value" of the problem statement).
const Nil = consensus.Value("⊥")

// InstanceID encodes an instance (i, k) into the int carried by
// sim.ProtocolEvent.Instance.
func InstanceID(initiator model.ProcessID, seq int) int {
	return int(initiator)*instanceStride + seq
}

// SplitInstanceID decodes an instance id.
func SplitInstanceID(id int) (initiator model.ProcessID, seq int) {
	return model.ProcessID(id / instanceStride), id % instanceStride
}

// instanceStride bounds sequence numbers per initiator.
const instanceStride = 1 << 20

// Broadcast is the automaton running Waves waves of TRB instances:
// in wave k, every process is the initiator of instance (self, k) and
// a participant in (i, k) for every other i. An initiator sends the
// value Script(self, k); a crashed initiator's instances terminate by
// suspicion and deliver Nil.
type Broadcast struct {
	// Waves is the number of instances per initiator.
	Waves int
	// Script supplies the broadcast value for instance (i, k). Nil
	// values are not allowed (Nil is reserved); a nil Script defaults
	// to "m(i,k)".
	Script func(initiator model.ProcessID, seq int) consensus.Value
}

var _ sim.Automaton = Broadcast{}

// DefaultScript names each message after its instance.
func DefaultScript(initiator model.ProcessID, seq int) consensus.Value {
	return consensus.Value(fmt.Sprintf("m(%d,%d)", initiator, seq))
}

// Spawn implements sim.Automaton.
func (b Broadcast) Spawn(self model.ProcessID, n int) sim.Process {
	script := b.Script
	if script == nil {
		script = DefaultScript
	}
	waves := b.Waves
	if waves <= 0 {
		waves = 1
	}
	p := &trbProc{
		self:      self,
		n:         n,
		waves:     waves,
		script:    script,
		instances: map[int]*trbInstance{},
	}
	return p
}

// Payloads.
type (
	// trbValue is the initiator's broadcast of instance (From, Seq).
	trbValue struct {
		Seq int
		Val consensus.Value
	}
	// trbCons wraps embedded-consensus traffic for one instance.
	trbCons struct {
		Instance int // InstanceID
		Inner    any
	}
)

// trbInstance is the per-instance state machine.
type trbInstance struct {
	id        int
	initiator model.ProcessID
	seq       int

	// phase: waiting (for value or suspicion) → consensus → done.
	proposed  bool
	delivered bool

	// got is the initiator's value, when received.
	got    consensus.Value
	gotSet bool

	inner  sim.Process
	buffer []*sim.Message // consensus traffic arriving before propose
}

type trbProc struct {
	self   model.ProcessID
	n      int
	waves  int
	script func(model.ProcessID, int) consensus.Value

	started  bool
	selfWave int // next wave this process will initiate

	instances map[int]*trbInstance
}

// instance returns (creating if needed) the state of instance id.
func (p *trbProc) instance(id int) *trbInstance {
	inst, ok := p.instances[id]
	if !ok {
		init, seq := SplitInstanceID(id)
		inst = &trbInstance{id: id, initiator: init, seq: seq}
		p.instances[id] = inst
	}
	return inst
}

// Step implements sim.Process.
func (p *trbProc) Step(in *sim.Message, susp model.ProcessSet, now model.Time) sim.Actions {
	var acts sim.Actions

	if !p.started {
		p.started = true
		p.initiateWave(0, &acts)
	}

	if in != nil {
		switch m := in.Payload.(type) {
		case trbValue:
			inst := p.instance(InstanceID(in.From, m.Seq))
			if !inst.gotSet {
				inst.got = m.Val
				inst.gotSet = true
			}
		case trbCons:
			inst := p.instance(m.Instance)
			inner := *in
			inner.Payload = m.Inner
			if inst.inner == nil {
				if !inst.delivered {
					inst.buffer = append(inst.buffer, &inner)
				}
			} else if !inst.delivered {
				p.feed(inst, &inner, susp, now, &acts)
			}
		}
	}

	// Drive every live instance of every wave ≤ the frontier.
	for wave := 0; wave < p.waves; wave++ {
		for init := 1; init <= p.n; init++ {
			id := InstanceID(model.ProcessID(init), wave)
			inst := p.instance(id)
			p.progress(inst, susp, now, &acts)
		}
	}
	return acts
}

// initiateWave broadcasts this process's value for wave k.
func (p *trbProc) initiateWave(k int, acts *sim.Actions) {
	if k >= p.waves {
		return
	}
	p.selfWave = k + 1
	val := p.script(p.self, k)
	inst := p.instance(InstanceID(p.self, k))
	inst.got = val
	inst.gotSet = true
	msg := trbValue{Seq: k, Val: val}
	for q := 1; q <= p.n; q++ {
		id := model.ProcessID(q)
		if id != p.self {
			acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: msg})
		}
	}
}

// progress fires the instance's pending transitions.
func (p *trbProc) progress(inst *trbInstance, susp model.ProcessSet, now model.Time, acts *sim.Actions) {
	if inst.delivered {
		return
	}
	if !inst.proposed {
		var proposal consensus.Value
		switch {
		case inst.gotSet:
			proposal = inst.got
		case susp.Has(inst.initiator):
			proposal = Nil
		default:
			return // keep waiting
		}
		inst.proposed = true
		inst.inner = consensus.SFlooding{
			Proposals: consensus.Proposals{p.self: proposal},
		}.Spawn(p.self, p.n)
		// λ kick emits the round-1 broadcast, then drain the buffer.
		p.feed(inst, nil, susp, now, acts)
		for _, m := range inst.buffer {
			if inst.delivered {
				break
			}
			p.feed(inst, m, susp, now, acts)
		}
		inst.buffer = nil
		return
	}
	if inst.inner != nil {
		p.feed(inst, nil, susp, now, acts)
	}
}

// feed drives the embedded consensus of one instance with a message or
// λ and translates its actions.
func (p *trbProc) feed(inst *trbInstance, in *sim.Message, susp model.ProcessSet, now model.Time, acts *sim.Actions) {
	innerActs := inst.inner.Step(in, susp, now)
	for _, s := range innerActs.Sends {
		acts.Sends = append(acts.Sends, sim.Send{
			To:      s.To,
			Payload: trbCons{Instance: inst.id, Inner: s.Payload},
		})
	}
	for _, ev := range innerActs.Events {
		if ev.Kind != sim.KindDecide {
			continue
		}
		inst.delivered = true
		inst.inner = nil
		inst.buffer = nil
		v, _ := ev.Value.(consensus.Value)
		acts.Events = append(acts.Events, sim.ProtocolEvent{
			Kind:     sim.KindDeliver,
			Instance: inst.id,
			Value:    v,
		})
		// Rate-limit own stream: initiate wave k+1 once (self, k) is
		// delivered.
		if inst.initiator == p.self && inst.seq+1 == p.selfWave {
			p.initiateWave(p.selfWave, acts)
		}
	}
}
