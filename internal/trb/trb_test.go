package trb

import (
	"fmt"
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func runTRB(t *testing.T, pat *model.FailurePattern, waves int, seed int64) *sim.Trace {
	t.Helper()
	tr, err := sim.Execute(sim.Config{
		N:         pat.N(),
		Automaton: Broadcast{Waves: waves},
		Oracle:    fd.Perfect{Delay: 2},
		Pattern:   pat,
		Horizon:   60000,
		Seed:      seed,
		Policy:    &sim.RandomFairPolicy{},
		StopWhen:  AllDelivered(waves),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stopped != sim.StopCondition {
		t.Fatalf("TRB run did not complete: %v", tr)
	}
	return tr
}

func TestInstanceIDRoundTrip(t *testing.T) {
	t.Parallel()
	for _, init := range []model.ProcessID{1, 5, 64} {
		for _, seq := range []int{0, 1, 999} {
			i, k := SplitInstanceID(InstanceID(init, seq))
			if i != init || k != seq {
				t.Fatalf("round trip (%v,%d) → (%v,%d)", init, seq, i, k)
			}
		}
	}
}

func TestTRBFailureFree(t *testing.T) {
	t.Parallel()
	const waves = 2
	for seed := int64(0); seed < 5; seed++ {
		tr := runTRB(t, model.MustPattern(5), waves, seed)
		if err := CheckAll(tr, waves, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// No nil anywhere: all initiators are correct.
		for _, m := range Deliveries(tr) {
			for _, d := range m {
				if d.IsNil() {
					t.Fatalf("seed %d: nil delivered for correct initiator (%v,%d)", seed, d.Initiator, d.Seq)
				}
			}
		}
	}
}

func TestTRBCrashedGeneralDeliversNil(t *testing.T) {
	t.Parallel()
	const waves = 2
	for seed := int64(0); seed < 5; seed++ {
		// p2 crashes at t=1, before it can broadcast anything.
		pat := model.MustPattern(5).MustCrash(2, 1)
		tr := runTRB(t, pat, waves, seed)
		if err := CheckAll(tr, waves, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dels := Deliveries(tr)
		for k := 0; k < waves; k++ {
			m := dels[InstanceID(2, k)]
			for _, p := range pat.Correct().Slice() {
				d, ok := m[p]
				if !ok {
					t.Fatalf("seed %d: %v missing delivery for (p2,%d)", seed, p, k)
				}
				if !d.IsNil() {
					t.Fatalf("seed %d: (p2,%d) delivered %q at %v, want nil", seed, k, d.Value, p)
				}
			}
		}
	}
}

func TestTRBLateCrashMayDeliverValueOrNil(t *testing.T) {
	t.Parallel()
	// p3 crashes mid-run: its instances must still terminate at all
	// correct processes, with agreement; whether a given instance
	// yields the value or nil depends on the crash/suspicion race,
	// and both are legal for a faulty sender.
	const waves = 3
	sawNil := false
	for seed := int64(0); seed < 8; seed++ {
		pat := model.MustPattern(5).MustCrash(3, 120)
		tr := runTRB(t, pat, waves, seed)
		if err := CheckTermination(tr, waves); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckAgreement(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckIntegrity(tr, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := CheckNilAccuracy(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, m := range Deliveries(tr) {
			for _, d := range m {
				if d.Initiator == 3 && d.IsNil() {
					sawNil = true
				}
			}
		}
	}
	if !sawNil {
		t.Error("no seed produced a nil delivery for the crashed p3; crash time too late to bite?")
	}
}

func TestTRBUnboundedCrashes(t *testing.T) {
	t.Parallel()
	// Proposition 5.1's sufficient direction holds with any number of
	// failures: crash all but p4.
	const waves = 2
	pat := model.MustPattern(5).MustCrash(1, 1).MustCrash(2, 40).MustCrash(3, 80).MustCrash(5, 140)
	tr := runTRB(t, pat, waves, 3)
	if err := CheckAll(tr, waves, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTRBCustomScript(t *testing.T) {
	t.Parallel()
	script := func(init model.ProcessID, k int) consensus.Value {
		return consensus.Value(fmt.Sprintf("order-%d-from-%v", k, init))
	}
	const waves = 2
	pat := model.MustPattern(4)
	tr, err := sim.Execute(sim.Config{
		N:         4,
		Automaton: Broadcast{Waves: waves, Script: script},
		Oracle:    fd.Perfect{Delay: 2},
		Pattern:   pat,
		Horizon:   60000,
		Seed:      1,
		StopWhen:  AllDelivered(waves),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAll(tr, waves, script); err != nil {
		t.Fatal(err)
	}
	// Spot-check one delivered value.
	d := Deliveries(tr)[InstanceID(2, 1)][3]
	if d.Value != "order-1-from-p2" {
		t.Fatalf("delivered %q", d.Value)
	}
}
