package membership

import (
	"testing"
	"time"

	"realisticfd/internal/heartbeat"
	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

func TestMachineInitialView(t *testing.T) {
	t.Parallel()
	m := NewMachine(2, 5)
	v := m.View()
	if v.ID != 0 || !v.Members.Equal(model.AllProcesses(5)) {
		t.Fatalf("initial view = %v", v)
	}
	if m.Dead() {
		t.Fatal("fresh machine dead")
	}
	if !m.Excluded().IsEmpty() {
		t.Fatalf("fresh machine excludes %v", m.Excluded())
	}
}

func TestMachinePrimaryProposesExclusion(t *testing.T) {
	t.Parallel()
	m := NewMachine(1, 5) // p1 is the initial primary
	next := m.ProposeExclusion(model.NewProcessSet(3))
	if next == nil {
		t.Fatal("primary refused to exclude a suspect")
	}
	if !next.Members.Equal(model.NewProcessSet(1, 2, 4, 5)) || next.ID != 1 || next.Issuer != 1 {
		t.Fatalf("proposed %v", next)
	}
	// Not yet installed: ProposeExclusion only drafts.
	if m.View().ID != 0 {
		t.Fatal("ProposeExclusion installed the view itself")
	}
	if !m.HandleView(*next) {
		t.Fatal("issuer could not install its own view")
	}
	if !m.Excluded().Equal(model.NewProcessSet(3)) {
		t.Fatalf("excluded = %v", m.Excluded())
	}
}

func TestMachineNonPrimaryDoesNotIssue(t *testing.T) {
	t.Parallel()
	m := NewMachine(2, 5) // p1 alive and unsuspected ⇒ p2 is not primary
	if next := m.ProposeExclusion(model.NewProcessSet(3)); next != nil {
		t.Fatalf("non-primary issued %v", next)
	}
	// Once p1 is itself suspected, p2 becomes primary and excludes
	// both.
	next := m.ProposeExclusion(model.NewProcessSet(1, 3))
	if next == nil {
		t.Fatal("new primary refused to issue")
	}
	if !next.Members.Equal(model.NewProcessSet(2, 4, 5)) {
		t.Fatalf("members = %v", next.Members)
	}
}

func TestMachineSelfSuspicionIgnored(t *testing.T) {
	t.Parallel()
	m := NewMachine(1, 5)
	if next := m.ProposeExclusion(model.NewProcessSet(1)); next != nil {
		t.Fatalf("machine excluded itself: %v", next)
	}
}

func TestMachineQuorumRule(t *testing.T) {
	t.Parallel()
	// n=5 ⇒ quorum 3. A machine that suspects everyone else may not
	// install a solipsist view; one that suspects two others may.
	m := NewMachine(1, 5)
	if m.Quorum() != 3 {
		t.Fatalf("Quorum = %d, want 3", m.Quorum())
	}
	if next := m.ProposeExclusion(model.NewProcessSet(2, 3, 4, 5)); next != nil {
		t.Fatalf("minority islet issued %v — split-brain risk", next)
	}
	next := m.ProposeExclusion(model.NewProcessSet(4, 5))
	if next == nil {
		t.Fatal("majority-preserving exclusion refused")
	}
	if next.Members.Len() != 3 {
		t.Fatalf("survivors = %v", next.Members)
	}
}

func TestMachineInstallRules(t *testing.T) {
	t.Parallel()
	m := NewMachine(4, 5)
	v1 := View{ID: 1, Issuer: 1, Members: model.NewProcessSet(1, 2, 4, 5)}
	if !m.HandleView(v1) {
		t.Fatal("v1 rejected")
	}
	// Same ID, higher-ranked issuer: rejected.
	if m.HandleView(View{ID: 1, Issuer: 2, Members: model.NewProcessSet(1, 2, 4)}) {
		t.Fatal("same-ID higher-rank issuer won")
	}
	// Lower ID: rejected.
	if m.HandleView(View{ID: 0, Issuer: 1, Members: model.NewProcessSet(1, 2, 3, 4, 5)}) {
		t.Fatal("stale view installed")
	}
	// Growing view (resurrects p3): rejected even with higher ID.
	if m.HandleView(View{ID: 2, Issuer: 1, Members: model.NewProcessSet(1, 2, 3, 4)}) {
		t.Fatal("resurrecting view installed")
	}
	// Proper successor: installed.
	if !m.HandleView(View{ID: 2, Issuer: 1, Members: model.NewProcessSet(1, 4, 5)}) {
		t.Fatal("valid successor rejected")
	}
	if !m.Excluded().Equal(model.NewProcessSet(2, 3)) {
		t.Fatalf("excluded = %v", m.Excluded())
	}
}

func TestMachineSuicideOnExclusion(t *testing.T) {
	t.Parallel()
	m := NewMachine(3, 5)
	v := View{ID: 1, Issuer: 1, Members: model.NewProcessSet(1, 2, 4, 5)}
	if !m.HandleView(v) {
		t.Fatal("exclusion view rejected")
	}
	if !m.Dead() {
		t.Fatal("excluded machine still alive — the suicide rule is what makes suspicions accurate")
	}
	// A dead machine neither issues nor installs.
	if next := m.ProposeExclusion(model.NewProcessSet(2)); next != nil {
		t.Fatal("dead machine issued a view")
	}
	if m.HandleView(View{ID: 2, Issuer: 1, Members: model.NewProcessSet(1, 2)}) {
		t.Fatal("dead machine installed a view")
	}
}

func TestBetterOrdering(t *testing.T) {
	t.Parallel()
	a := View{ID: 1, Issuer: 3}
	cases := []struct {
		b    View
		want bool
	}{
		{View{ID: 2, Issuer: 5}, true},
		{View{ID: 1, Issuer: 2}, true},
		{View{ID: 1, Issuer: 3}, false},
		{View{ID: 1, Issuer: 4}, false},
		{View{ID: 0, Issuer: 1}, false},
	}
	for _, tc := range cases {
		if got := Better(a, tc.b); got != tc.want {
			t.Errorf("Better(%v, %v) = %v, want %v", a, tc.b, got, tc.want)
		}
	}
}

// TestClusterExcludesCrashedNode is the end-to-end E9 scenario:
// heartbeats over an in-process network, a node silenced, membership
// converging on its exclusion, output(P) complete and
// accurate-by-exclusion at every survivor.
func TestClusterExcludesCrashedNode(t *testing.T) {
	t.Parallel()
	const n = 5
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}

	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= n; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	var (
		dets     [n + 1]*heartbeat.Detector
		emitters [n + 1]*heartbeat.Emitter
		mgrs     [n + 1]*Manager
	)
	for p := model.ProcessID(1); p <= n; p++ {
		det := heartbeat.NewDetector(net.Node(p), peersOf(p), func() heartbeat.Estimator {
			return &heartbeat.FixedTimeout{Timeout: 60 * time.Millisecond}
		})
		dets[p] = det
		emitters[p] = heartbeat.NewEmitter(net.Node(p), peersOf(p), 5*time.Millisecond)
		mgrs[p] = NewManager(net.Node(p), n, det.Suspects, det.Forward(), 10*time.Millisecond)
	}

	// Warm up, then silence node 4 (transport isolation ≈ crash).
	time.Sleep(150 * time.Millisecond)
	for p := model.ProcessID(1); p <= n; p++ {
		if ex := mgrs[p].Excluded(); !ex.IsEmpty() {
			t.Fatalf("%v excluded %v during healthy warmup", p, ex)
		}
	}
	net.Isolate(4)
	emitters[4].Close()

	deadline := time.Now().Add(5 * time.Second)
	want := model.NewProcessSet(4)
	for {
		allDone := true
		for p := model.ProcessID(1); p <= n; p++ {
			if p == 4 {
				continue
			}
			if !mgrs[p].Excluded().Equal(want) {
				allDone = false
			}
		}
		if allDone || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	for p := model.ProcessID(1); p <= n; p++ {
		if p == 4 {
			continue
		}
		if ex := mgrs[p].Excluded(); !ex.Equal(want) {
			t.Errorf("%v: output(P) = %v, want {p4}", p, ex)
		}
		// View history is monotone (IDs strictly increase, members
		// shrink).
		hist := mgrs[p].History()
		for i := 1; i < len(hist); i++ {
			if hist[i].ID <= hist[i-1].ID || !hist[i].Members.SubsetOf(hist[i-1].Members) {
				t.Errorf("%v: non-monotone history %v", p, hist)
			}
		}
	}

	// Survivors agree on the final view.
	ref := mgrs[1].View()
	for p := model.ProcessID(2); p <= n; p++ {
		if p == 4 {
			continue
		}
		if v := mgrs[p].View(); v.ID != ref.ID || !v.Members.Equal(ref.Members) {
			t.Errorf("view disagreement: %v has %v, p1 has %v", p, v, ref)
		}
	}

	for p := model.ProcessID(1); p <= n; p++ {
		mgrs[p].Close()
		emitters[p].Close()
	}
	for p := model.ProcessID(1); p <= n; p++ {
		dets[p].Close()
	}
}

// TestFalseSuspicionMadeAccurateByExclusion shows the paper's §1.3
// observation end to end: a *live* node is falsely suspected (its
// links are cut, it keeps running), membership excludes it, and the
// suicide rule turns the false suspicion into a true one.
func TestFalseSuspicionMadeAccurateByExclusion(t *testing.T) {
	t.Parallel()
	const n = 4
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}

	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= n; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	var (
		dets     [n + 1]*heartbeat.Detector
		emitters [n + 1]*heartbeat.Emitter
		mgrs     [n + 1]*Manager
	)
	for p := model.ProcessID(1); p <= n; p++ {
		det := heartbeat.NewDetector(net.Node(p), peersOf(p), func() heartbeat.Estimator {
			return &heartbeat.FixedTimeout{Timeout: 50 * time.Millisecond}
		})
		dets[p] = det
		emitters[p] = heartbeat.NewEmitter(net.Node(p), peersOf(p), 5*time.Millisecond)
		mgrs[p] = NewManager(net.Node(p), n, det.Suspects, det.Forward(), 10*time.Millisecond)
	}

	time.Sleep(120 * time.Millisecond)
	// Cut p2's outbound heartbeats only — p2 is alive but looks dead.
	for q := model.ProcessID(1); q <= n; q++ {
		if q != 2 {
			net.Partition(2, q)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if mgrs[1].Excluded().Has(2) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !mgrs[1].Excluded().Has(2) {
		t.Fatal("false suspect never excluded")
	}

	// Heal the partition: the exclusion view reaches p2, which
	// commits suicide — the suspicion is now accurate.
	for q := model.ProcessID(1); q <= n; q++ {
		if q != 2 {
			net.Heal(2, q)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !mgrs[2].Dead() {
		time.Sleep(5 * time.Millisecond)
	}
	if !mgrs[2].Dead() {
		t.Fatal("excluded node did not learn of its exclusion after heal")
	}
	// Its exclusion never heals: output(P) is monotone.
	if !mgrs[1].Excluded().Has(2) {
		t.Fatal("exclusion healed — output(P) must be monotone")
	}

	for p := model.ProcessID(1); p <= n; p++ {
		mgrs[p].Close()
		emitters[p].Close()
	}
	for p := model.ProcessID(1); p <= n; p++ {
		dets[p].Close()
	}
}
