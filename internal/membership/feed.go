package membership

import (
	"fmt"
	"sort"
	"sync"

	"realisticfd/internal/model"
)

// Feed derives a monotone local view sequence from gossip suspicion
// state: where the Manager runs the view-broadcast protocol over a
// shared transport, the Feed consumes suspicion snapshots the gossip
// layer has already disseminated (every node converges on the same
// community suspicion, so the protocol's agreement round is implicit)
// and turns them into the same View vocabulary.
//
// The primary-partition quorum rule still applies: the feed freezes
// rather than shrink the view below ⌈(size+1)/2⌉ members (size = all
// nodes ever admitted to the group), so a node on the minority side of
// a partition keeps its last safe view instead of excluding the
// majority. A healed suspicion (paused-then-resumed node) arriving
// after exclusion does not resurrect the member — exactly the §1.3
// emulation: the exclusion made the suspicion accurate after the fact.
//
// Views shrink on exclusion and, unlike the shrink-only original, grow
// on Admit — the churn axis of the fault plan: a mid-run joiner that
// the gossip layer has observed (Gossiper.Known) is admitted into the
// next view. Membership is a sparse set, not a model.ProcessSet
// bitmap, so the feed works at any cluster size — the former silent
// n ≤ 64 cap is gone (regression-tested at n = 65).
type Feed struct {
	mu       sync.Mutex
	self     int
	size     int // everyone ever in the group, current or excluded
	members  map[int]bool
	excluded map[int]bool
	view     FeedView
	history  []FeedView
}

// FeedView is one membership epoch of a Feed: like View, but over a
// sparse member list so it scales past the 64-process bitmap.
type FeedView struct {
	// ID increases by one per installed view.
	ID int
	// Members is the current group, sorted ascending.
	Members []int
}

// Has reports whether id is a member of the view.
func (v FeedView) Has(id int) bool {
	i := sort.SearchInts(v.Members, id)
	return i < len(v.Members) && v.Members[i] == id
}

// NewFeed starts in view 0 with all n members 1..n. Any n ≥ 2 is
// accepted — live clusters are not bound by the simulator's 64-process
// set representation.
func NewFeed(self model.ProcessID, n int) (*Feed, error) {
	if n < 2 {
		return nil, fmt.Errorf("membership: feed n = %d must be ≥ 2", n)
	}
	if self < 1 || int(self) > n {
		return nil, fmt.Errorf("membership: feed self %v outside [1, %d]", self, n)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i + 1
	}
	return NewFeedMembers(int(self), members)
}

// NewFeedMembers starts in view 0 with an explicit initial member set
// — the constructor for groups whose fault plan defers some nodes to a
// mid-run join. Self must be an initial member.
func NewFeedMembers(self int, members []int) (*Feed, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("membership: feed needs ≥ 2 initial members, got %d", len(members))
	}
	f := &Feed{
		self:     self,
		members:  make(map[int]bool, len(members)),
		excluded: map[int]bool{},
	}
	for _, id := range members {
		if id < 1 {
			return nil, fmt.Errorf("membership: feed member %d must be ≥ 1", id)
		}
		if f.members[id] {
			return nil, fmt.Errorf("membership: feed member %d listed twice", id)
		}
		f.members[id] = true
	}
	if !f.members[self] {
		return nil, fmt.Errorf("membership: feed self %d not an initial member", self)
	}
	f.size = len(f.members)
	f.view = FeedView{ID: 0, Members: f.sortedLocked()}
	return f, nil
}

func (f *Feed) sortedLocked() []int {
	out := make([]int, 0, len(f.members))
	for id := range f.members {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (f *Feed) installLocked() FeedView {
	f.view = FeedView{ID: f.view.ID + 1, Members: f.sortedLocked()}
	f.history = append(f.history, f.view)
	return f.view
}

// Update folds one suspicion snapshot into the view. It returns the
// current view and whether a new one was installed. Self-suspicions
// are ignored — a node does not excommunicate itself on rumor alone.
func (f *Feed) Update(suspects []int) (FeedView, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var toDrop []int
	for _, id := range suspects {
		if id != f.self && f.members[id] {
			toDrop = append(toDrop, id)
		}
	}
	if len(toDrop) == 0 {
		return f.view, false
	}
	if len(f.members)-len(toDrop) < f.size/2+1 {
		return f.view, false // minority side: freeze, no split-brain
	}
	for _, id := range toDrop {
		delete(f.members, id)
		f.excluded[id] = true
	}
	return f.installLocked(), true
}

// Admit grows the view by one joined node and returns the current view
// and whether a new one was installed. Admitting a current member is a
// no-op; so is re-admitting an excluded one — an exclusion is forever
// (the §1.3 emulation made that suspicion accurate), a rejoining
// process must take a fresh identity.
func (f *Feed) Admit(id int) (FeedView, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id < 1 || f.members[id] || f.excluded[id] {
		return f.view, false
	}
	f.members[id] = true
	f.size++
	return f.installLocked(), true
}

// View returns the current view.
func (f *Feed) View() FeedView {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.view
}

// Excluded returns the emulated output(P): everyone excluded so far,
// sorted ascending.
func (f *Feed) Excluded() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, 0, len(f.excluded))
	for id := range f.excluded {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// History returns the installed views in order (view 0 excluded).
func (f *Feed) History() []FeedView {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FeedView(nil), f.history...)
}
