package membership

import (
	"fmt"
	"sync"

	"realisticfd/internal/model"
)

// Feed derives a monotone local view sequence from gossip suspicion
// state: where the Manager runs the view-broadcast protocol over a
// shared transport, the Feed consumes suspicion snapshots the gossip
// layer has already disseminated (every node converges on the same
// community suspicion, so the protocol's agreement round is implicit)
// and turns them into the same shrink-only View vocabulary.
//
// The primary-partition quorum rule still applies: the feed freezes
// rather than shrink the view below ⌈(n+1)/2⌉ members, so a node on
// the minority side of a partition keeps its last safe view instead of
// excluding the majority. Views only shrink; a healed suspicion
// (paused-then-resumed node) arriving after exclusion does not
// resurrect the member — exactly the §1.3 emulation: the exclusion
// made the suspicion accurate after the fact.
//
// Bounded by model.ProcessSet to 64 processes: the live cluster
// enables the feed only at sizes the simulator's set representation
// covers, which keeps live small-cluster runs comparable with E-table
// rows. Larger clusters run detection-only.
type Feed struct {
	mu      sync.Mutex
	self    model.ProcessID
	n       int
	view    View
	history []View
}

// NewFeed starts in view 0 with all n members.
func NewFeed(self model.ProcessID, n int) (*Feed, error) {
	if err := model.ValidateN(n); err != nil {
		return nil, err
	}
	if self < 1 || int(self) > n {
		return nil, fmt.Errorf("membership: feed self %v outside [1, %d]", self, n)
	}
	return &Feed{
		self: self,
		n:    n,
		view: View{ID: 0, Issuer: 0, Members: model.AllProcesses(n)},
	}, nil
}

// Update folds one suspicion snapshot into the view. It returns the
// current view and whether a new one was installed. Self-suspicions
// are ignored — a node does not excommunicate itself on rumor alone.
func (f *Feed) Update(suspects model.ProcessSet) (View, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	toDrop := f.view.Members.Intersect(suspects).Remove(f.self)
	if toDrop.IsEmpty() {
		return f.view, false
	}
	survivors := f.view.Members.Diff(toDrop)
	if survivors.Len() < f.n/2+1 {
		return f.view, false // minority side: freeze, no split-brain
	}
	f.view = View{ID: f.view.ID + 1, Issuer: f.self, Members: survivors}
	f.history = append(f.history, f.view)
	return f.view, true
}

// View returns the current view.
func (f *Feed) View() View {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.view
}

// Excluded returns the emulated output(P): everyone excluded so far.
func (f *Feed) Excluded() model.ProcessSet {
	f.mu.Lock()
	defer f.mu.Unlock()
	return model.AllProcesses(f.n).Diff(f.view.Members)
}

// History returns the installed views in order (view 0 excluded).
func (f *Feed) History() []View {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]View(nil), f.history...)
}
