// Package membership implements an exclusion-based group membership
// service — the mechanism the paper identifies (§1.3) as what real
// systems use to emulate a Perfect failure detector: "when a process
// is suspected, i.e., timed-out, it is excluded from the group: every
// suspicion hence turns out to be accurate".
//
// Views only ever shrink. A process that learns it has been excluded
// stops participating (commits suicide), which is precisely the trick
// that converts an unreliable timeout-based detector into an accurate
// one: the suspicion is made true after the fact. The adapter
// Excluded() exposes the emulated output(P).
//
// The view-issue rule is the classic primary-partition sketch: the
// lowest-ranked member a process does not suspect is its primary; a
// process that believes itself primary issues the next view excluding
// the suspects; receivers install views by (higher ID, then
// lower-ranked issuer). Under crash-driven suspicions this converges
// to identical monotone view sequences at all survivors; the known
// limitations of primary-partition GMS under partitions apply and are
// exercised in the tests.
package membership

import (
	"fmt"

	"realisticfd/internal/model"
)

// View is one membership epoch.
type View struct {
	// ID increases by at least one per installed view.
	ID int
	// Issuer is the member that issued the view.
	Issuer model.ProcessID
	// Members is the surviving group.
	Members model.ProcessSet
}

// String renders the view.
func (v View) String() string {
	return fmt.Sprintf("view#%d%v by %v", v.ID, v.Members, v.Issuer)
}

// Better reports whether candidate should replace current: strictly
// higher ID wins; at equal IDs the lower-ranked issuer wins (the true
// primary eventually outranks pretenders).
func Better(current, candidate View) bool {
	if candidate.ID != current.ID {
		return candidate.ID > current.ID
	}
	return candidate.Issuer < current.Issuer
}

// Machine is the pure, deterministic view state machine of one member.
// It has no goroutines and no clocks; the Manager (or a test) drives
// it with suspicions and received views.
type Machine struct {
	self model.ProcessID
	n    int
	view View
	dead bool // excluded (or told to die): stop participating
}

// NewMachine starts in view 0 with all n processes and no issuer.
func NewMachine(self model.ProcessID, n int) *Machine {
	return &Machine{
		self: self,
		n:    n,
		view: View{ID: 0, Issuer: 0, Members: model.AllProcesses(n)},
	}
}

// View returns the current view.
func (m *Machine) View() View { return m.view }

// Dead reports whether this member has been excluded and must stop
// participating.
func (m *Machine) Dead() bool { return m.dead }

// Excluded returns the emulated output(P): every process excluded
// from the group so far. Views only shrink, so this output is
// monotone — suspicions never heal, exactly like P once the excluded
// process is forced to stop.
func (m *Machine) Excluded() model.ProcessSet {
	return model.AllProcesses(m.n).Diff(m.view.Members)
}

// Primary returns the member this machine currently takes orders
// from: the lowest-ranked member it does not suspect.
func (m *Machine) Primary(susp model.ProcessSet) model.ProcessID {
	return m.view.Members.Diff(susp).Min()
}

// Quorum returns the minimum view size, ⌈(n+1)/2⌉ over the initial
// membership: the primary-partition rule. A node (or minority
// islet) that suspects everyone else cannot install a private view of
// itself — it must wait, and will eventually receive (and obey) the
// majority side's exclusion. This is the engineering cost of
// emulating P live: the *oracle* P of the theory needs no majority,
// but a safe live emulation does, which is exactly the gap the
// paper's realism discussion illuminates.
func (m *Machine) Quorum() int { return m.n/2 + 1 }

// ProposeExclusion is called with the current local suspicion set. If
// this machine believes itself primary, some member is suspected, and
// the surviving view would retain a quorum, it returns the next view
// to broadcast; otherwise it returns nil. The caller broadcasts the
// returned view to all members of the *current* view (including the
// excluded ones — they must learn they are out) and feeds it back
// through HandleView.
func (m *Machine) ProposeExclusion(susp model.ProcessSet) *View {
	if m.dead {
		return nil
	}
	toDrop := m.view.Members.Intersect(susp).Remove(m.self)
	if toDrop.IsEmpty() {
		return nil
	}
	if m.Primary(susp) != m.self {
		return nil // not our call; report to the primary instead
	}
	survivors := m.view.Members.Diff(toDrop)
	if survivors.Len() < m.Quorum() {
		return nil // minority side: freeze rather than split-brain
	}
	next := View{
		ID:      m.view.ID + 1,
		Issuer:  m.self,
		Members: survivors,
	}
	return &next
}

// HandleView installs a received view if it beats the current one.
// It returns true when the view was installed. Installing a view that
// excludes self marks the machine dead.
func (m *Machine) HandleView(v View) bool {
	if m.dead {
		return false
	}
	// Views must shrink: ignore a view that resurrects members the
	// current view already excluded (stale or byzantine traffic).
	if !v.Members.SubsetOf(m.view.Members) {
		return false
	}
	if !Better(m.view, v) {
		return false
	}
	m.view = v
	if !v.Members.Has(m.self) {
		m.dead = true
	}
	return true
}
