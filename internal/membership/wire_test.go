package membership

import (
	"testing"

	"realisticfd/internal/model"
)

func TestWireViewRoundTrip(t *testing.T) {
	t.Parallel()
	v := View{ID: 3, Issuer: 2, Members: model.NewProcessSet(2, 4, 5)}
	got := fromWire(toWire(v))
	if got.ID != v.ID || got.Issuer != v.Issuer || !got.Members.Equal(v.Members) {
		t.Fatalf("round trip = %v, want %v", got, v)
	}
	// Empty membership survives too (a fully-collapsed group).
	e := View{ID: 9, Issuer: 1}
	if got := fromWire(toWire(e)); !got.Members.IsEmpty() || got.ID != 9 {
		t.Fatalf("empty round trip = %v", got)
	}
}

func TestManagerHistoryIsCopied(t *testing.T) {
	t.Parallel()
	// History returns a snapshot the caller can't corrupt.
	m := NewMachine(1, 5)
	v1 := View{ID: 1, Issuer: 1, Members: model.NewProcessSet(1, 2, 3, 4)}
	if !m.HandleView(v1) {
		t.Fatal("install failed")
	}
	mgr := &Manager{machine: m, history: []View{v1}}
	h := mgr.History()
	h[0].ID = 999
	if mgr.History()[0].ID != 1 {
		t.Fatal("History exposed internal state")
	}
}
