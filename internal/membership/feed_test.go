package membership

import (
	"testing"

	"realisticfd/internal/model"
)

func TestFeedMonotoneShrink(t *testing.T) {
	f, err := NewFeed(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.View(); got.ID != 0 || got.Members.Len() != 8 {
		t.Fatalf("initial view %v", got)
	}

	v, changed := f.Update(model.NewProcessSet(3))
	if !changed || v.ID != 1 || v.Members.Has(3) {
		t.Fatalf("first exclusion: changed=%v view=%v", changed, v)
	}
	// Same suspicion again: no new view.
	if _, changed := f.Update(model.NewProcessSet(3)); changed {
		t.Fatal("re-reporting an excluded member issued a view")
	}
	// A healed suspicion does not resurrect: 3 stays out even when the
	// snapshot no longer suspects it.
	if _, changed := f.Update(model.NewProcessSet(5)); !changed {
		t.Fatal("new suspicion did not issue a view")
	}
	v = f.View()
	if v.ID != 2 || v.Members.Has(3) || v.Members.Has(5) {
		t.Fatalf("after two exclusions: %v", v)
	}
	if got := f.Excluded(); !got.Has(3) || !got.Has(5) || got.Len() != 2 {
		t.Fatalf("Excluded() = %v", got)
	}
	if h := f.History(); len(h) != 2 || h[0].ID != 1 || h[1].ID != 2 {
		t.Fatalf("history %v", h)
	}
}

func TestFeedQuorumFreeze(t *testing.T) {
	f, err := NewFeed(1, 5) // quorum 3
	if err != nil {
		t.Fatal(err)
	}
	// Suspecting 3 of 5 would leave 2 < 3: freeze.
	if _, changed := f.Update(model.NewProcessSet(2, 3, 4)); changed {
		t.Fatal("minority view was installed")
	}
	if got := f.View(); got.ID != 0 {
		t.Fatalf("view advanced to %v on a frozen feed", got)
	}
	// Suspecting 2 of 5 leaves exactly the quorum: allowed.
	if _, changed := f.Update(model.NewProcessSet(2, 3)); !changed {
		t.Fatal("quorum-preserving exclusion was refused")
	}
}

func TestFeedIgnoresSelfSuspicion(t *testing.T) {
	f, err := NewFeed(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, changed := f.Update(model.NewProcessSet(2)); changed {
		t.Fatal("feed excluded itself")
	}
	v, changed := f.Update(model.NewProcessSet(2, 4))
	if !changed || !v.Members.Has(2) || v.Members.Has(4) {
		t.Fatalf("self filtered incorrectly: %v", v)
	}
}

func TestFeedValidation(t *testing.T) {
	if _, err := NewFeed(1, model.MaxProcesses+1); err == nil {
		t.Fatal("oversized n accepted")
	}
	if _, err := NewFeed(9, 8); err == nil {
		t.Fatal("self outside the group accepted")
	}
}
