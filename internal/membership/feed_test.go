package membership

import (
	"testing"
)

func TestFeedMonotoneShrink(t *testing.T) {
	f, err := NewFeed(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.View(); got.ID != 0 || len(got.Members) != 8 {
		t.Fatalf("initial view %v", got)
	}

	v, changed := f.Update([]int{3})
	if !changed || v.ID != 1 || v.Has(3) {
		t.Fatalf("first exclusion: changed=%v view=%v", changed, v)
	}
	// Same suspicion again: no new view.
	if _, changed := f.Update([]int{3}); changed {
		t.Fatal("re-reporting an excluded member issued a view")
	}
	// A healed suspicion does not resurrect: 3 stays out even when the
	// snapshot no longer suspects it.
	if _, changed := f.Update([]int{5}); !changed {
		t.Fatal("new suspicion did not issue a view")
	}
	v = f.View()
	if v.ID != 2 || v.Has(3) || v.Has(5) {
		t.Fatalf("after two exclusions: %v", v)
	}
	if got := f.Excluded(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Excluded() = %v", got)
	}
	if h := f.History(); len(h) != 2 || h[0].ID != 1 || h[1].ID != 2 {
		t.Fatalf("history %v", h)
	}
}

func TestFeedQuorumFreeze(t *testing.T) {
	f, err := NewFeed(1, 5) // quorum 3
	if err != nil {
		t.Fatal(err)
	}
	// Suspecting 3 of 5 would leave 2 < 3: freeze.
	if _, changed := f.Update([]int{2, 3, 4}); changed {
		t.Fatal("minority view was installed")
	}
	if got := f.View(); got.ID != 0 {
		t.Fatalf("view advanced to %v on a frozen feed", got)
	}
	// Suspecting 2 of 5 leaves exactly the quorum: allowed.
	if _, changed := f.Update([]int{2, 3}); !changed {
		t.Fatal("quorum-preserving exclusion was refused")
	}
}

func TestFeedIgnoresSelfSuspicion(t *testing.T) {
	f, err := NewFeed(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, changed := f.Update([]int{2}); changed {
		t.Fatal("feed excluded itself")
	}
	v, changed := f.Update([]int{2, 4})
	if !changed || !v.Has(2) || v.Has(4) {
		t.Fatalf("self filtered incorrectly: %v", v)
	}
}

func TestFeedValidation(t *testing.T) {
	if _, err := NewFeed(9, 8); err == nil {
		t.Fatal("self outside the group accepted")
	}
	if _, err := NewFeed(1, 1); err == nil {
		t.Fatal("single-member group accepted")
	}
	if _, err := NewFeedMembers(3, []int{1, 2}); err == nil {
		t.Fatal("self not in the member list accepted")
	}
	if _, err := NewFeedMembers(1, []int{1, 1}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// TestFeedAboveSixtyFour is the regression for the former silent
// n ≤ 64 cap: the feed must work — not quietly misbehave, not error —
// at sizes past the simulator's ProcessSet bitmap.
func TestFeedAboveSixtyFour(t *testing.T) {
	const n = 65
	f, err := NewFeed(1, n)
	if err != nil {
		t.Fatalf("n = %d rejected: %v", n, err)
	}
	if got := f.View(); len(got.Members) != n || !got.Has(65) {
		t.Fatalf("initial view at n=%d: %v", n, got)
	}
	v, changed := f.Update([]int{65})
	if !changed || v.Has(65) || len(v.Members) != n-1 {
		t.Fatalf("exclusion of node 65: changed=%v view=%v", changed, v)
	}
	if got := f.Excluded(); len(got) != 1 || got[0] != 65 {
		t.Fatalf("Excluded() = %v", got)
	}
}

// TestFeedAdmitGrowsView pins the churn axis: a mid-run joiner grows
// the view, the quorum tracks the grown group, and neither a current
// member nor an excluded one can be (re-)admitted.
func TestFeedAdmitGrowsView(t *testing.T) {
	f, err := NewFeedMembers(1, []int{1, 2, 3, 4, 5}) // node 6 joins later
	if err != nil {
		t.Fatal(err)
	}
	v, changed := f.Admit(6)
	if !changed || v.ID != 1 || !v.Has(6) || len(v.Members) != 6 {
		t.Fatalf("admission: changed=%v view=%v", changed, v)
	}
	// Admitting a member again is a no-op.
	if _, changed := f.Admit(6); changed {
		t.Fatal("double admission issued a view")
	}
	// The grown group's quorum is 6/2+1 = 4: excluding three of six
	// would leave 3 < 4, freeze; excluding two is allowed.
	if _, changed := f.Update([]int{2, 3, 4}); changed {
		t.Fatal("sub-quorum exclusion installed after growth")
	}
	v, changed = f.Update([]int{2, 3})
	if !changed || v.ID != 2 || len(v.Members) != 4 {
		t.Fatalf("post-growth exclusion: changed=%v view=%v", changed, v)
	}
	// An excluded node stays out — a rejoin needs a fresh identity.
	if _, changed := f.Admit(2); changed {
		t.Fatal("excluded member re-admitted")
	}
	// Views interleave shrink and growth in one monotone history.
	if _, changed := f.Admit(7); !changed {
		t.Fatal("second joiner refused")
	}
	h := f.History()
	if len(h) != 3 || h[0].ID != 1 || h[2].ID != 3 || !h[2].Has(7) || h[2].Has(2) {
		t.Fatalf("history %v", h)
	}
}
