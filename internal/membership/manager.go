package membership

import (
	"sync"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// EnvelopeType tags membership traffic on a shared transport.
const EnvelopeType = "membership"

// wireView is the JSON form of a View.
type wireView struct {
	ID      int               `json:"id"`
	Issuer  model.ProcessID   `json:"issuer"`
	Members []model.ProcessID `json:"members"`
}

func toWire(v View) wireView {
	return wireView{ID: v.ID, Issuer: v.Issuer, Members: v.Members.Slice()}
}

func fromWire(w wireView) View {
	return View{ID: w.ID, Issuer: w.Issuer, Members: model.NewProcessSet(w.Members...)}
}

// SuspicionSource supplies the local failure-detector output, e.g.
// (*heartbeat.Detector).Suspects.
type SuspicionSource func() model.ProcessSet

// Manager runs the membership protocol for one node: it polls the
// local suspicion source, lets the Machine issue exclusion views when
// this node is primary, broadcasts them, and installs views received
// from peers (delivered through the envelopes channel, typically a
// heartbeat.Detector's Forward stream).
type Manager struct {
	tr      transport.Transport
	n       int
	suspect SuspicionSource
	in      <-chan transport.Envelope
	period  time.Duration

	mu      sync.Mutex
	machine *Machine
	history []View

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewManager starts the membership loop. envelopes must yield the
// membership-typed traffic of this node's transport; poll sets how
// often local suspicions are re-examined.
func NewManager(tr transport.Transport, n int, suspect SuspicionSource, envelopes <-chan transport.Envelope, poll time.Duration) *Manager {
	m := &Manager{
		tr:      tr,
		n:       n,
		suspect: suspect,
		in:      envelopes,
		period:  poll,
		machine: NewMachine(tr.Self(), n),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go m.run()
	return m
}

// View returns the node's current view.
func (m *Manager) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.View()
}

// Excluded returns the emulated output(P) at this node.
func (m *Manager) Excluded() model.ProcessSet {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.Excluded()
}

// Dead reports whether this node has been excluded and stopped
// participating.
func (m *Manager) Dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.machine.Dead()
}

// History returns the sequence of views installed at this node, in
// installation order (view 0 excluded).
func (m *Manager) History() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]View(nil), m.history...)
}

// Close stops the manager loop and waits for it.
func (m *Manager) Close() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

func (m *Manager) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.period)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case env, ok := <-m.in:
			if !ok {
				return
			}
			if env.Type != EnvelopeType {
				continue
			}
			var w wireView
			if err := env.Unmarshal(&w); err != nil {
				continue
			}
			m.install(fromWire(w))
		case <-ticker.C:
			m.poll()
		}
	}
}

// poll re-examines local suspicions and issues a view if primary; a
// primary also retransmits its current view so that exclusions
// eventually reach members that were unreachable when the view was
// issued (the suicide rule needs the news to arrive).
func (m *Manager) poll() {
	susp := m.suspect()
	m.mu.Lock()
	next := m.machine.ProposeExclusion(susp)
	cur := m.machine.View()
	isPrimary := !m.machine.Dead() && m.machine.Primary(susp) == m.tr.Self()
	var recipients []model.ProcessID
	if next != nil {
		// Broadcast to everyone in the *old* view — the excluded must
		// learn of their exclusion so they stop (suicide rule).
		recipients = cur.Members.Remove(m.tr.Self()).Slice()
	}
	m.mu.Unlock()

	if next != nil {
		m.broadcast(*next, recipients)
		m.install(*next)
		return
	}
	if isPrimary && cur.ID > 0 {
		all := model.AllProcesses(m.n).Remove(m.tr.Self()).Slice()
		m.broadcast(cur, all)
	}
}

// install applies a view and records it.
func (m *Manager) install(v View) {
	m.mu.Lock()
	installed := m.machine.HandleView(v)
	if installed {
		m.history = append(m.history, v)
	}
	m.mu.Unlock()
}

// broadcast sends a view to the given members.
func (m *Manager) broadcast(v View, to []model.ProcessID) {
	w := toWire(v)
	for _, p := range to {
		env := transport.Envelope{To: p, Type: EnvelopeType}
		if err := env.Marshal(w); err != nil {
			continue
		}
		_ = m.tr.Send(env)
	}
}
