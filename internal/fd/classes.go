package fd

import (
	"fmt"

	"realisticfd/internal/model"
)

// Violation describes why a recorded history fails a class property.
// A nil *Violation means the property holds over the recorded horizon.
type Violation struct {
	Property string          // e.g. "strong accuracy"
	Watcher  model.ProcessID // the process whose module misbehaved (0 if global)
	Target   model.ProcessID // the process mis-reported (0 if global)
	At       model.Time      // witness time, when meaningful
	Detail   string
}

// Error renders the violation; *Violation also satisfies error so
// checkers compose with the usual error plumbing.
func (v *Violation) Error() string {
	if v == nil {
		return "<no violation>"
	}
	return fmt.Sprintf("%s violated: watcher=%v target=%v t=%d: %s",
		v.Property, v.Watcher, v.Target, v.At, v.Detail)
}

// CheckStrongCompleteness verifies that every crashed process is
// eventually permanently suspected by every correct process, judged at
// the history's horizon. The caller must record the history to a
// horizon comfortably past the last crash plus the detector's latency;
// the experiments sweep horizons to show the verdict is stable.
func CheckStrongCompleteness(h *model.History, f *model.FailurePattern) *Violation {
	correct := f.Correct()
	for _, q := range f.Faulty().Slice() {
		for _, p := range correct.Slice() {
			if _, ok := h.SuspectedFrom(p, q); !ok {
				return &Violation{
					Property: "strong completeness",
					Watcher:  p, Target: q, At: h.MaxTime(),
					Detail: fmt.Sprintf("correct %v does not permanently suspect crashed %v by the horizon", p, q),
				}
			}
		}
	}
	return nil
}

// CheckWeakCompleteness verifies that every crashed process is
// eventually permanently suspected by some correct process.
func CheckWeakCompleteness(h *model.History, f *model.FailurePattern) *Violation {
	correct := f.Correct()
	for _, q := range f.Faulty().Slice() {
		found := false
		for _, p := range correct.Slice() {
			if _, ok := h.SuspectedFrom(p, q); ok {
				found = true
				break
			}
		}
		if !found {
			return &Violation{
				Property: "weak completeness",
				Target:   q, At: h.MaxTime(),
				Detail: fmt.Sprintf("no correct process permanently suspects crashed %v", q),
			}
		}
	}
	return nil
}

// CheckStrongAccuracy verifies that no process is suspected before it
// crashes: for every sample H(p, t), every suspected q satisfies
// q ∈ F(t).
func CheckStrongAccuracy(h *model.History, f *model.FailurePattern) *Violation {
	for p := model.ProcessID(1); int(p) <= f.N(); p++ {
		for _, s := range h.Spans(p) {
			// Alive(q, ·) is monotone non-increasing, so if q was alive
			// at any sample of this span it was alive at the first one:
			// checking the span start suffices, and s.From is exactly the
			// earliest offending sample a per-sample walk would report.
			for _, q := range s.Out.Slice() {
				if f.Alive(q, s.From) {
					return &Violation{
						Property: "strong accuracy",
						Watcher:  p, Target: q, At: s.From,
						Detail: fmt.Sprintf("%v suspected %v at t=%d but %v had not crashed", p, q, s.From, q),
					}
				}
			}
		}
	}
	return nil
}

// CheckWeakAccuracy verifies that some correct process is never
// suspected by anyone.
func CheckWeakAccuracy(h *model.History, f *model.FailurePattern) *Violation {
	for _, c := range f.Correct().Slice() {
		suspectedSomewhere := false
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			if _, ever := h.EverSuspected(p, c); ever {
				suspectedSomewhere = true
				break
			}
		}
		if !suspectedSomewhere {
			return nil
		}
	}
	return &Violation{
		Property: "weak accuracy",
		Detail:   "every correct process was suspected by someone at some time",
	}
}

// stabilizationMargin is the tail fraction of the horizon that must
// be free of offending samples before an "eventually ..." property is
// certified: a single quiet sample at the very edge (e.g. a rotating
// false-suspicion pattern caught between two bursts) is not evidence
// of stabilization.
func stabilizationMargin(h *model.History) model.Time {
	m := h.MaxTime() / 10
	if m < 1 {
		m = 1
	}
	return m
}

// CheckEventualStrongAccuracy verifies that there is a time after
// which no alive process is suspected: the union over all watchers of
// false suspicions has a finite last occurrence, strictly before the
// final tenth of the recorded horizon.
func CheckEventualStrongAccuracy(h *model.History, f *model.FailurePattern) *Violation {
	var lastFalse model.Time = -1
	var w, tgt model.ProcessID
	for p := model.ProcessID(1); int(p) <= f.N(); p++ {
		for _, s := range h.Spans(p) {
			for _, q := range s.Out.Slice() {
				// Last sample of this span at which q was still alive.
				// Alive(q, ·) is monotone, so: alive at s.To → s.To;
				// otherwise, alive at s.From → the last alive sample is
				// min(s.To, ct−1), which is exact for the per-tick
				// recordings Classify consumers produce (RecordHistory
				// with step 1) and a safe upper bound otherwise.
				var last model.Time
				switch {
				case f.Alive(q, s.To):
					last = s.To
				case f.Alive(q, s.From):
					ct, _ := f.CrashTime(q)
					last = ct - 1
					if s.To < last {
						last = s.To
					}
				default:
					continue
				}
				if last > lastFalse {
					lastFalse, w, tgt = last, p, q
				}
			}
		}
	}
	if lastFalse < 0 {
		return nil // never a false suspicion
	}
	if lastFalse >= h.MaxTime()-stabilizationMargin(h) {
		return &Violation{
			Property: "eventual strong accuracy",
			Watcher:  w, Target: tgt, At: lastFalse,
			Detail: "false suspicions persist into the horizon's tail; no stabilization observed",
		}
	}
	return nil
}

// CheckEventualWeakAccuracy verifies that eventually some correct
// process is no longer suspected by anyone: there is a correct c
// trusted by every watcher throughout the final tenth of the recorded
// horizon.
func CheckEventualWeakAccuracy(h *model.History, f *model.FailurePattern) *Violation {
	for _, c := range f.Correct().Slice() {
		var lastSusp model.Time = -1
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			// c is correct, so every sample of a span suspecting it is a
			// suspicion; the latest is the span end.
			for _, s := range h.Spans(p) {
				if s.Out.Has(c) && s.To > lastSusp {
					lastSusp = s.To
				}
			}
		}
		if lastSusp < h.MaxTime()-stabilizationMargin(h) {
			return nil // c is trusted by everyone through the tail
		}
	}
	return &Violation{
		Property: "eventual weak accuracy",
		Detail:   "every correct process is still suspected by someone near the horizon",
	}
}

// CheckPartialCompleteness verifies the P< property of §6.2: if p_i
// crashes, eventually every correct p_j with j > i permanently
// suspects p_i.
func CheckPartialCompleteness(h *model.History, f *model.FailurePattern) *Violation {
	for _, q := range f.Faulty().Slice() {
		for _, p := range f.Correct().Slice() {
			if p <= q {
				continue
			}
			if _, ok := h.SuspectedFrom(p, q); !ok {
				return &Violation{
					Property: "partial completeness",
					Watcher:  p, Target: q, At: h.MaxTime(),
					Detail: fmt.Sprintf("correct %v (index > %v) does not permanently suspect crashed %v", p, q, q),
				}
			}
		}
	}
	return nil
}

// ClassReport is the verdict of every class-defining property over one
// recorded history, plus the derived class memberships.
type ClassReport struct {
	StrongCompleteness     *Violation
	WeakCompleteness       *Violation
	StrongAccuracy         *Violation
	WeakAccuracy           *Violation
	EventualStrongAccuracy *Violation
	EventualWeakAccuracy   *Violation
	PartialCompleteness    *Violation
}

// Classify evaluates all property checkers over the history.
func Classify(h *model.History, f *model.FailurePattern) ClassReport {
	return ClassReport{
		StrongCompleteness:     CheckStrongCompleteness(h, f),
		WeakCompleteness:       CheckWeakCompleteness(h, f),
		StrongAccuracy:         CheckStrongAccuracy(h, f),
		WeakAccuracy:           CheckWeakAccuracy(h, f),
		EventualStrongAccuracy: CheckEventualStrongAccuracy(h, f),
		EventualWeakAccuracy:   CheckEventualWeakAccuracy(h, f),
		PartialCompleteness:    CheckPartialCompleteness(h, f),
	}
}

// InP reports membership in the Perfect class over this history.
func (r ClassReport) InP() bool {
	return r.StrongCompleteness == nil && r.StrongAccuracy == nil
}

// InS reports membership in the Strong class.
func (r ClassReport) InS() bool {
	return r.StrongCompleteness == nil && r.WeakAccuracy == nil
}

// InDiamondS reports membership in the Eventually Strong class.
func (r ClassReport) InDiamondS() bool {
	return r.StrongCompleteness == nil && r.EventualWeakAccuracy == nil
}

// InDiamondP reports membership in the Eventually Perfect class.
func (r ClassReport) InDiamondP() bool {
	return r.StrongCompleteness == nil && r.EventualStrongAccuracy == nil
}

// InPLess reports membership in the Partially Perfect class P< of
// §6.2.
func (r ClassReport) InPLess() bool {
	return r.PartialCompleteness == nil && r.StrongAccuracy == nil
}

// String summarizes the memberships, e.g. "P ✓  S ✓  ◇S ✓  ◇P ✓  P< ✓".
func (r ClassReport) String() string {
	mark := func(b bool) string {
		if b {
			return "✓"
		}
		return "✗"
	}
	return fmt.Sprintf("P %s  S %s  ◇S %s  ◇P %s  P< %s",
		mark(r.InP()), mark(r.InS()), mark(r.InDiamondS()), mark(r.InDiamondP()), mark(r.InPLess()))
}
