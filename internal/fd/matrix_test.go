package fd

import (
	"testing"

	"realisticfd/internal/model"
)

// TestClassMatrix pins the complete oracle × class membership matrix
// over a two-crash pattern — the ground truth every other experiment
// builds on. A change to any oracle or checker that flips a cell
// fails here first.
func TestClassMatrix(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(5).MustCrash(2, 20).MustCrash(4, 80)
	type row struct {
		oracle           Oracle
		p, s, ds, dp, pl bool
		realistic        bool
	}
	rows := []row{
		{oracle: Perfect{Delay: 2}, p: true, s: true, ds: true, dp: true, pl: true, realistic: true},
		{oracle: Scribe{}, p: true, s: true, ds: true, dp: true, pl: true, realistic: true},
		{oracle: RealisticStrong{BaseDelay: 1, Seed: 2, JitterMax: 3}, p: true, s: true, ds: true, dp: true, pl: true, realistic: true},
		{oracle: EventuallyStrong{GST: 60, Delay: 2, Seed: 3, FalseRate: 25}, ds: true, dp: true, realistic: true},
		{oracle: EventuallyPerfect{GST: 60, Delay: 2, Seed: 4, FalseRate: 25}, ds: true, dp: true, realistic: true},
		{oracle: PartiallyPerfect{Delay: 2}, pl: true, realistic: true},
		{oracle: Marabout{}, s: true, ds: true, dp: true, realistic: false},
		{oracle: NonRealisticStrong{Delay: 2, FalsePeriod: 10}, s: true, ds: true, realistic: false},
	}
	for _, r := range rows {
		r := r
		t.Run(r.oracle.Name(), func(t *testing.T) {
			t.Parallel()
			h := RecordHistory(r.oracle, f, 300, 1)
			rep := Classify(h, f)
			if got := rep.InP(); got != r.p {
				t.Errorf("InP = %v, want %v (%+v)", got, r.p, rep)
			}
			if got := rep.InS(); got != r.s {
				t.Errorf("InS = %v, want %v", got, r.s)
			}
			if got := rep.InDiamondS(); got != r.ds {
				t.Errorf("In◇S = %v, want %v", got, r.ds)
			}
			if got := rep.InDiamondP(); got != r.dp {
				t.Errorf("In◇P = %v, want %v", got, r.dp)
			}
			if got := rep.InPLess(); got != r.pl {
				t.Errorf("InP< = %v, want %v", got, r.pl)
			}
			if got := r.oracle.Realistic(); got != r.realistic {
				t.Errorf("Realistic() = %v, want %v", got, r.realistic)
			}
			// The realism *check* must agree with the claim.
			caught := CheckRealism(r.oracle, 5, 100, 10) != nil
			if caught == r.realistic {
				t.Errorf("CheckRealism caught=%v but claim realistic=%v", caught, r.realistic)
			}
		})
	}
}

// TestMaraboutNotInPLess: Marabout suspects *future* crashes, so it
// breaks strong accuracy — keeping it out of P and P< despite its
// perfect completeness. Pinned separately because the paper calls M
// and P "incomparable".
func TestMaraboutIncomparableWithP(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(5).MustCrash(3, 100)
	h := RecordHistory(Marabout{}, f, 300, 1)
	rep := Classify(h, f)
	if rep.InP() || rep.InPLess() {
		t.Fatalf("Marabout must fail strong accuracy: %+v", rep.StrongAccuracy)
	}
	// ... and Perfect is not "Marabout-complete": it cannot suspect
	// before the crash, which is exactly why the classes are
	// incomparable — M is accurate about the future, P about the past.
	hp := RecordHistory(Perfect{Delay: 0}, f, 300, 1)
	if first, ever := hp.EverSuspected(1, 3); ever && first < 100 {
		t.Fatal("Perfect suspected a process before its crash")
	}
}
