package fd

import (
	"fmt"
	"math/rand"

	"realisticfd/internal/model"
)

// RealismViolation is a witness that an oracle violates the realism
// property of §3.1: two failure patterns that agree through Cut, for
// which the oracle's histories already differ at time T ≤ Cut. A
// realistic detector cannot distinguish failure patterns by what will
// happen in the future.
type RealismViolation struct {
	F, FPrime *model.FailurePattern
	Cut       model.Time
	P         model.ProcessID
	T         model.Time
	Out       model.ProcessSet
	OutPrime  model.ProcessSet
}

// Error renders the witness; *RealismViolation satisfies error.
func (v *RealismViolation) Error() string {
	if v == nil {
		return "<realistic>"
	}
	return fmt.Sprintf("realism violated: %v and %v agree through t=%d, yet H(%v,%d)=%v in F and %v in F'",
		v.F, v.FPrime, v.Cut, v.P, v.T, v.Out, v.OutPrime)
}

// CheckRealism searches for a realism violation of a deterministic
// oracle over a family of pattern pairs: for each generated pattern F
// and each of its crashes (q, c), it compares the oracle's outputs in
// F against those in F-with-that-crash-erased over the common prefix
// [0, c-1]. For a deterministic oracle (one history per pattern) the
// §3.1 property is exactly prefix measurability, which this test
// refutes by counterexample. A nil result means no violation was found
// over the searched family — evidence, not proof, of realism.
func CheckRealism(o Oracle, n int, horizon model.Time, seeds int) *RealismViolation {
	patterns := realismPatternFamily(n, horizon, seeds)
	for _, f := range patterns {
		for _, q := range f.Faulty().Slice() {
			c, _ := f.CrashTime(q)
			if c == 0 {
				continue // no common prefix to compare
			}
			fPrime := eraseCrash(f, q)
			if v := comparePrefix(o, f, fPrime, c-1); v != nil {
				return v
			}
		}
	}
	// Cross-compare random pattern pairs on their (possibly empty)
	// common prefixes.
	for i := 0; i+1 < len(patterns); i++ {
		f, g := patterns[i], patterns[i+1]
		cut := commonPrefix(f, g, horizon)
		if cut < 0 {
			continue
		}
		if v := comparePrefix(o, f, g, cut); v != nil {
			return v
		}
	}
	return nil
}

// comparePrefix compares the oracle's outputs in f and g at every
// process and every time ≤ cut.
func comparePrefix(o Oracle, f, g *model.FailurePattern, cut model.Time) *RealismViolation {
	for t := model.Time(0); t <= cut; t++ {
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			// Only compare at processes alive in both patterns; a
			// crashed process takes no steps and sees nothing.
			if !f.Alive(p, t) || !g.Alive(p, t) {
				continue
			}
			a, b := o.Output(f, p, t), o.Output(g, p, t)
			if !a.Equal(b) {
				return &RealismViolation{
					F: f.Clone(), FPrime: g.Clone(), Cut: cut,
					P: p, T: t, Out: a, OutPrime: b,
				}
			}
		}
	}
	return nil
}

// eraseCrash returns a copy of f in which q never crashes.
func eraseCrash(f *model.FailurePattern, q model.ProcessID) *model.FailurePattern {
	cp := model.MustPattern(f.N())
	for _, r := range f.Faulty().Slice() {
		if r == q {
			continue
		}
		ct, _ := f.CrashTime(r)
		cp.MustCrash(r, ct)
	}
	return cp
}

// commonPrefix returns the largest t ≤ horizon with F|≤t = G|≤t, or -1
// if the patterns already differ at t=0.
func commonPrefix(f, g *model.FailurePattern, horizon model.Time) model.Time {
	if f.N() != g.N() {
		return -1
	}
	lo, hi := model.Time(-1), horizon
	// SamePrefix is monotone in t, so binary search works.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.SamePrefix(g, mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// realismPatternFamily generates the canonical §3.2.2 pair (single
// crash mid-run vs failure-free) plus seeded multi-crash patterns.
func realismPatternFamily(n int, horizon model.Time, seeds int) []*model.FailurePattern {
	var out []*model.FailurePattern
	out = append(out, model.MustPattern(n)) // failure-free
	// Single crashes across times and processes.
	for p := 1; p <= n; p++ {
		for _, frac := range []model.Time{4, 2} {
			t := horizon / frac
			if t == 0 {
				t = 1
			}
			out = append(out, model.MustPattern(n).MustCrash(model.ProcessID(p), t))
		}
	}
	// Random multi-crash patterns.
	for s := 0; s < seeds; s++ {
		r := rand.New(rand.NewSource(int64(s) + 42))
		f := model.MustPattern(n)
		for p := 1; p <= n; p++ {
			if r.Intn(3) == 0 {
				f.MustCrash(model.ProcessID(p), model.Time(r.Int63n(int64(horizon)+1)))
			}
		}
		out = append(out, f)
	}
	return out
}

// MaraboutWitness reproduces the exact argument of §3.2.2: F1 has p1
// crash at time 10 and everyone else correct; F2 is failure-free. The
// two agree through T = 9, yet Marabout outputs {p1} at every time in
// F1 and ∅ in F2 — already at t ≤ 9. The returned violation is that
// witness.
func MaraboutWitness(n int) *RealismViolation {
	f1 := model.MustPattern(n).MustCrash(1, 10)
	f2 := model.MustPattern(n)
	return comparePrefix(Marabout{}, f1, f2, 9)
}
