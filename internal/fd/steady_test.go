package fd

import (
	"reflect"
	"testing"

	"realisticfd/internal/model"
)

// steadyGrid is the oracle × pattern grid the Steady contract is
// verified over; it covers all nine Steady implementations with
// nontrivial parameters.
func steadyGridOracles() []Steady {
	return []Steady{
		Perfect{},
		Perfect{Delay: 6},
		Scribe{},
		Marabout{},
		RealisticStrong{BaseDelay: 2, Seed: 7, JitterMax: 11},
		NonRealisticStrong{Delay: 3, FalsePeriod: 9},
		NonRealisticStrong{Delay: 1}, // zero period → default cadence
		EventuallyStrong{GST: 40, Delay: 2, Seed: 3, FalseRate: 40},
		EventuallyStrong{GST: 40, Delay: 2, FalseRate: 0}, // crash-driven even pre-GST
		EventuallyPerfect{GST: 25, Delay: 5, Seed: 8, FalseRate: 70},
		PartiallyPerfect{Delay: 4},
		Scripted{Delay: 2, Script: []SuspicionInterval{
			{P: 2, Target: 1, From: 5, To: 30},
			{Target: 4, From: 12, To: 13},
			{P: 3, Target: 2, From: 60, To: 95},
		}},
	}
}

func steadyGridPatterns(n int) []*model.FailurePattern {
	return []*model.FailurePattern{
		model.MustPattern(n),
		model.MustPattern(n).MustCrash(3, 0),
		model.MustPattern(n).MustCrash(2, 20).MustCrash(4, 20),
		model.MustPattern(n).MustCrash(1, 7).MustCrash(5, 33).MustCrash(2, 71),
	}
}

// TestStableUntilContract checks, exhaustively over the grid and every
// (p, t), that StableUntil returns u ≥ t and that Output really is
// constant over [t, u] (clipped to the test horizon) for the fixed
// pattern.
func TestStableUntilContract(t *testing.T) {
	t.Parallel()
	const n = 5
	const horizon = model.Time(110)

	for _, o := range steadyGridOracles() {
		for fi, f := range steadyGridPatterns(n) {
			for p := model.ProcessID(1); int(p) <= n; p++ {
				for tt := model.Time(0); tt <= horizon; tt++ {
					u := o.StableUntil(f, p, tt)
					if u < tt {
						t.Fatalf("%s pattern#%d: StableUntil(%v, %d) = %d < t", o.Name(), fi, p, tt, u)
					}
					base := o.Output(f, p, tt)
					end := u
					if end > horizon {
						end = horizon
					}
					for v := tt + 1; v <= end; v++ {
						if got := o.Output(f, p, v); got != base {
							t.Fatalf("%s pattern#%d: Output(%v) changed inside stable window: t=%d u=%d changed at %d (%v → %v)",
								o.Name(), fi, p, tt, u, v, base, got)
						}
					}
				}
			}
		}
	}
}

// unsteady hides an oracle's Steady implementation so RecordHistory
// takes the plain per-tick path.
type unsteady struct{ Oracle }

// TestRecordHistoryFastPathEquivalent pins the Steady fast path in
// RecordHistory to the tick-by-tick recording, span for span, across
// the grid and several sampling steps.
func TestRecordHistoryFastPathEquivalent(t *testing.T) {
	t.Parallel()
	const n = 5
	const horizon = model.Time(110)

	for _, o := range steadyGridOracles() {
		if _, ok := Oracle(o).(Steady); !ok {
			t.Fatalf("%s does not implement Steady", o.Name())
		}
		for fi, f := range steadyGridPatterns(n) {
			for _, step := range []model.Time{1, 3} {
				fast := RecordHistory(o, f, horizon, step)
				slow := RecordHistory(unsteady{o}, f, horizon, step)
				for p := model.ProcessID(1); int(p) <= n; p++ {
					if fast.SampleCount(p) != slow.SampleCount(p) {
						t.Fatalf("%s pattern#%d step=%d: SampleCount(%v) fast=%d slow=%d",
							o.Name(), fi, step, p, fast.SampleCount(p), slow.SampleCount(p))
					}
					if !reflect.DeepEqual(fast.Spans(p), slow.Spans(p)) {
						t.Fatalf("%s pattern#%d step=%d: spans diverge for %v:\nfast: %+v\nslow: %+v",
							o.Name(), fi, step, p, fast.Spans(p), slow.Spans(p))
					}
				}
			}
		}
	}
}
