package fd

import (
	"strings"
	"testing"

	"realisticfd/internal/model"
)

func TestRealisticOraclesPassCheckRealism(t *testing.T) {
	t.Parallel()
	oracles := []Oracle{
		Perfect{},
		Perfect{Delay: 3},
		Scribe{},
		RealisticStrong{BaseDelay: 1, Seed: 4, JitterMax: 4},
		EventuallyStrong{GST: 40, Delay: 1, Seed: 7, FalseRate: 30},
		EventuallyPerfect{GST: 40, Delay: 1, Seed: 8, FalseRate: 30},
		PartiallyPerfect{Delay: 2},
		Scripted{Delay: 1, Script: []SuspicionInterval{{Target: 2, From: 5, To: 15}}},
	}
	for _, o := range oracles {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			t.Parallel()
			if !o.Realistic() {
				t.Fatalf("%s should claim realism", o.Name())
			}
			if v := CheckRealism(o, 5, 100, 12); v != nil {
				t.Fatalf("%s flagged non-realistic: %v", o.Name(), v)
			}
		})
	}
}

func TestMaraboutFailsCheckRealism(t *testing.T) {
	t.Parallel()
	v := CheckRealism(Marabout{}, 5, 100, 12)
	if v == nil {
		t.Fatal("CheckRealism found no violation for Marabout")
	}
	// The witness must be genuine: patterns agree through the cut, yet
	// outputs differ at T ≤ Cut.
	if !v.F.SamePrefix(v.FPrime, v.Cut) {
		t.Fatalf("witness patterns do not agree through cut %d: %v vs %v", v.Cut, v.F, v.FPrime)
	}
	if v.T > v.Cut {
		t.Fatalf("witness time %d beyond cut %d", v.T, v.Cut)
	}
	if v.Out.Equal(v.OutPrime) {
		t.Fatal("witness outputs are equal")
	}
}

func TestNonRealisticStrongFailsCheckRealism(t *testing.T) {
	t.Parallel()
	v := CheckRealism(NonRealisticStrong{Delay: 1, FalsePeriod: 10}, 5, 100, 12)
	if v == nil {
		t.Fatal("CheckRealism found no violation for NonRealisticStrong")
	}
	if !v.F.SamePrefix(v.FPrime, v.Cut) || v.T > v.Cut {
		t.Fatalf("malformed witness: %v", v)
	}
}

func TestMaraboutWitnessReproducesSection322(t *testing.T) {
	t.Parallel()
	v := MaraboutWitness(5)
	if v == nil {
		t.Fatal("§3.2.2 witness not found")
	}
	if v.Cut != 9 {
		t.Errorf("witness cut = %d, want 9 (patterns agree through t=9)", v.Cut)
	}
	// In F1 (p1 crashes at 10) Marabout outputs {p1} at all times; in
	// F2 (failure-free) it outputs {}.
	if !v.Out.Equal(model.NewProcessSet(1)) && !v.OutPrime.Equal(model.NewProcessSet(1)) {
		t.Errorf("witness outputs %v / %v, one should be {p1}", v.Out, v.OutPrime)
	}
	msg := v.Error()
	if !strings.Contains(msg, "agree through") {
		t.Errorf("witness message %q", msg)
	}
}

func TestCommonPrefixBinarySearch(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(5).MustCrash(1, 10)
	g := model.MustPattern(5)
	if got := commonPrefix(f, g, 100); got != 9 {
		t.Errorf("commonPrefix = %d, want 9", got)
	}
	// Identical patterns agree through the horizon.
	if got := commonPrefix(f, f.Clone(), 100); got != 100 {
		t.Errorf("commonPrefix(identical) = %d, want 100", got)
	}
	// Immediate disagreement.
	h := model.MustPattern(5).MustCrash(1, 0)
	if got := commonPrefix(h, g, 100); got != -1 {
		t.Errorf("commonPrefix(disjoint at 0) = %d, want -1", got)
	}
}

func TestClassReportString(t *testing.T) {
	t.Parallel()
	f := twoCrashPattern()
	h := RecordHistory(Perfect{}, f, testHorizon, 1)
	s := Classify(h, f).String()
	if !strings.Contains(s, "P ✓") {
		t.Errorf("report = %q, want P ✓", s)
	}
}

func TestViolationError(t *testing.T) {
	t.Parallel()
	var v *Violation
	if got := v.Error(); got != "<no violation>" {
		t.Errorf("nil violation Error = %q", got)
	}
	v = &Violation{Property: "strong accuracy", Watcher: 1, Target: 2, At: 3, Detail: "boom"}
	if got := v.Error(); !strings.Contains(got, "strong accuracy") || !strings.Contains(got, "boom") {
		t.Errorf("Error = %q", got)
	}
}
