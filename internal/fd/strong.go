package fd

import (
	"fmt"

	"realisticfd/internal/model"
)

// RealisticStrong is a realistic oracle of class S (strong
// completeness + weak accuracy). Section 6.3 of the paper proves that
// within the realistic space, S collapses into P: a realistic Strong
// detector that ever falsely suspected a process could be continued by
// a pattern in which every other process crashes, violating weak
// accuracy. RealisticStrong therefore never falsely suspects anyone —
// it is Perfect with per-watcher heterogeneous detection delays — and
// the E7 experiment verifies that its histories satisfy strong (not
// just weak) accuracy.
type RealisticStrong struct {
	// BaseDelay is the minimum detection latency.
	BaseDelay model.Time
	// Seed scatters per-(watcher, target) extra latency in
	// [0, JitterMax] to exercise the checkers with non-uniform delays.
	Seed uint64
	// JitterMax bounds the extra latency; zero means uniform delays.
	JitterMax model.Time
}

var _ Oracle = RealisticStrong{}

// Name implements Oracle.
func (o RealisticStrong) Name() string {
	return fmt.Sprintf("S∩R(base=%d,jitter=%d)", o.BaseDelay, o.JitterMax)
}

// Realistic implements Oracle.
func (o RealisticStrong) Realistic() bool { return true }

// Output suspects q at watcher p once q's crash is BaseDelay plus a
// deterministic per-(p,q) jitter old.
func (o RealisticStrong) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	var out model.ProcessSet
	for q := model.ProcessID(1); int(q) <= f.N(); q++ {
		ct, crashed := f.CrashTime(q)
		if !crashed {
			continue
		}
		d := o.BaseDelay
		if o.JitterMax > 0 {
			d += model.Time(noise(o.Seed, p, q, 0) % uint64(o.JitterMax+1))
		}
		if ct+d <= t {
			out = out.Add(q)
		}
	}
	return out
}

var _ Steady = RealisticStrong{}

// StableUntil implements Steady: p's output changes only when some
// crash turns BaseDelay + jitter(p, q) old.
func (o RealisticStrong) StableUntil(f *model.FailurePattern, p model.ProcessID, t model.Time) model.Time {
	next := model.Time(model.NoCrash)
	for q := model.ProcessID(1); int(q) <= f.N(); q++ {
		ct, crashed := f.CrashTime(q)
		if !crashed {
			continue
		}
		d := o.BaseDelay
		if o.JitterMax > 0 {
			d += model.Time(noise(o.Seed, p, q, 0) % uint64(o.JitterMax+1))
		}
		if v := ct + d; v > t && v < next {
			next = v
		}
	}
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}

// NonRealisticStrong is a Strong detector from the *original*
// Chandra-Toueg space that is not realistic: it knows correct(F) from
// time zero and protects the lowest-indexed correct process from
// suspicion (weak accuracy by fiat about the future) while issuing
// deterministic false suspicions against everybody else. It witnesses
// that S ⊄ P in the unrestricted space — and CheckRealism exhibits a
// pattern pair proving it guesses the future, which is how §6.3
// reconciles "S solves consensus with unbounded crashes" with "P is
// the weakest realistic class".
type NonRealisticStrong struct {
	// Delay is the detection latency for genuine crashes.
	Delay model.Time
	// FalsePeriod sets the cadence of rotating false suspicions; a
	// false suspicion against target q ≠ w is emitted during
	// [k*FalsePeriod, (k+1)*FalsePeriod) whenever k ≡ q (mod n).
	FalsePeriod model.Time
}

var _ Oracle = NonRealisticStrong{}

// Name implements Oracle.
func (o NonRealisticStrong) Name() string {
	return fmt.Sprintf("S¬R(delay=%d,period=%d)", o.Delay, o.FalsePeriod)
}

// Realistic implements Oracle: the protected process is chosen from
// correct(F), which is future information.
func (o NonRealisticStrong) Realistic() bool { return false }

// Output returns crashes plus a rotating false suspicion, never
// suspecting w = min correct(F).
func (o NonRealisticStrong) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	period := o.FalsePeriod
	if period <= 0 {
		period = 10
	}
	w := f.Correct().Min() // future knowledge: who never crashes

	out := model.EmptySet()
	if t >= o.Delay {
		out = f.CrashedAt(t - o.Delay)
	}
	// Rotating false suspicion of one non-protected process at a time.
	k := int(t/period) % f.N()
	target := model.ProcessID(k + 1)
	if target != w {
		out = out.Add(target)
	}
	return out.Remove(w)
}

var _ Steady = NonRealisticStrong{}

// StableUntil implements Steady: the output changes at crash
// visibilities and at the rotation boundaries of the false-suspicion
// cadence, whichever comes first.
func (o NonRealisticStrong) StableUntil(f *model.FailurePattern, _ model.ProcessID, t model.Time) model.Time {
	period := o.FalsePeriod
	if period <= 0 {
		period = 10
	}
	next := nextCrashVisibility(f, o.Delay, t)
	if b := (t/period + 1) * period; b < next {
		next = b
	}
	return next - 1
}
