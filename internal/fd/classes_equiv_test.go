package fd

import (
	"fmt"
	"testing"

	"realisticfd/internal/model"
)

// The accuracy checkers walk change-point spans instead of individual
// samples. These reference implementations re-enumerate every (p, t)
// sample exactly as RecordHistory produced it and apply the property
// definition verbatim; the span-based checkers must agree on verdict
// and witness for every oracle × pattern in the grid.

func refStrongAccuracy(o Oracle, f *model.FailurePattern, horizon model.Time) *Violation {
	for p := model.ProcessID(1); int(p) <= f.N(); p++ {
		for t := model.Time(0); t <= horizon; t++ {
			if !f.Alive(p, t) {
				continue
			}
			for _, q := range o.Output(f, p, t).Slice() {
				if f.Alive(q, t) {
					return &Violation{Property: "strong accuracy", Watcher: p, Target: q, At: t}
				}
			}
		}
	}
	return nil
}

func refLastFalse(o Oracle, f *model.FailurePattern, horizon model.Time) (model.Time, model.ProcessID, model.ProcessID) {
	var lastFalse model.Time = -1
	var w, tgt model.ProcessID
	for p := model.ProcessID(1); int(p) <= f.N(); p++ {
		for t := model.Time(0); t <= horizon; t++ {
			if !f.Alive(p, t) {
				continue
			}
			for _, q := range o.Output(f, p, t).Slice() {
				if f.Alive(q, t) && t > lastFalse {
					lastFalse, w, tgt = t, p, q
				}
			}
		}
	}
	return lastFalse, w, tgt
}

func refLastSuspicionOf(o Oracle, f *model.FailurePattern, horizon model.Time, c model.ProcessID) model.Time {
	var last model.Time = -1
	for p := model.ProcessID(1); int(p) <= f.N(); p++ {
		for t := model.Time(0); t <= horizon; t++ {
			if f.Alive(p, t) && o.Output(f, p, t).Has(c) && t > last {
				last = t
			}
		}
	}
	return last
}

func TestSpanCheckersMatchPerSampleReference(t *testing.T) {
	t.Parallel()
	const horizon = 120

	patterns := []func(n int) *model.FailurePattern{
		func(n int) *model.FailurePattern { return model.MustPattern(n) },
		func(n int) *model.FailurePattern { return model.MustPattern(n).MustCrash(2, 15) },
		func(n int) *model.FailurePattern {
			return model.MustPattern(n).MustCrash(1, 0).MustCrash(model.ProcessID(n), 60)
		},
		func(n int) *model.FailurePattern {
			f := model.MustPattern(n)
			for q := 2; q <= n; q++ { // all but p1 crash, staggered
				f.MustCrash(model.ProcessID(q), model.Time(10*q))
			}
			return f
		},
	}
	oracles := []Oracle{
		Perfect{},
		Perfect{Delay: 7},
		Scribe{},
		Marabout{},
		RealisticStrong{BaseDelay: 3, Seed: 11, JitterMax: 9},
		NonRealisticStrong{Delay: 2, FalsePeriod: 13},
		EventuallyStrong{GST: 70, Delay: 2, Seed: 5, FalseRate: 30},
		EventuallyPerfect{GST: 55, Delay: 4, Seed: 9, FalseRate: 55},
		PartiallyPerfect{Delay: 5},
		Scripted{Delay: 1, Script: []SuspicionInterval{
			{P: 1, Target: 3, From: 10, To: 40},
			{Target: 2, From: 25, To: 26}, // every watcher, single tick
		}},
	}

	for _, mk := range patterns {
		for _, o := range oracles {
			for _, n := range []int{4, 6} {
				f := mk(n)
				h := RecordHistory(o, f, horizon, 1)
				name := fmt.Sprintf("%s/n=%d/%v", o.Name(), n, f)

				gotSA := CheckStrongAccuracy(h, f)
				wantSA := refStrongAccuracy(o, f, horizon)
				if (gotSA == nil) != (wantSA == nil) {
					t.Fatalf("%s: strong accuracy verdict: span=%v ref=%v", name, gotSA, wantSA)
				}
				if gotSA != nil && (gotSA.Watcher != wantSA.Watcher || gotSA.Target != wantSA.Target || gotSA.At != wantSA.At) {
					t.Fatalf("%s: strong accuracy witness: span=%v ref=%v", name, gotSA, wantSA)
				}

				gotESA := CheckEventualStrongAccuracy(h, f)
				lastFalse, w, tgt := refLastFalse(o, f, horizon)
				margin := stabilizationMargin(h)
				wantViolation := lastFalse >= 0 && lastFalse >= h.MaxTime()-margin
				if (gotESA != nil) != wantViolation {
					t.Fatalf("%s: eventual strong accuracy verdict: span=%v ref lastFalse=%d margin=%d max=%d",
						name, gotESA, lastFalse, margin, h.MaxTime())
				}
				if gotESA != nil && (gotESA.Watcher != w || gotESA.Target != tgt || gotESA.At != lastFalse) {
					t.Fatalf("%s: eventual strong accuracy witness: span=%v ref=(%v,%v,%d)", name, gotESA, w, tgt, lastFalse)
				}

				gotEWA := CheckEventualWeakAccuracy(h, f)
				wantEWAHolds := false
				for _, c := range f.Correct().Slice() {
					if refLastSuspicionOf(o, f, horizon, c) < h.MaxTime()-margin {
						wantEWAHolds = true
						break
					}
				}
				if (gotEWA == nil) != wantEWAHolds {
					t.Fatalf("%s: eventual weak accuracy verdict: span=%v ref holds=%v", name, gotEWA, wantEWAHolds)
				}
			}
		}
	}
}
