// Package fd implements the failure-detector classes discussed in
// "A Realistic Look At Failure Detectors" (DSN 2002): Perfect (P),
// Strong (S), Eventually Strong (◇S), Eventually Perfect (◇P), the
// Scribe and Marabout examples of §3.2, and the Partially Perfect
// class P< of §6.2 — together with machine checkers for the
// completeness/accuracy properties that define the classes and for the
// realism predicate of §3.1.
//
// An Oracle is a deterministic representative of a failure-detector
// class: for each failure pattern F it yields one history H ∈ D(F),
// queried pointwise as Output(F, p, t). For deterministic oracles the
// realism property of §3.1 ("∀ similar-prefix F, F′ the detector could
// have produced the same prefix output") reduces to prefix
// measurability: the output at time t may depend only on F|≤t. Oracles
// that need non-determinism (noisy suspicions before stabilization)
// derive it from a seed mixed with (p, q, t) only — never from the
// pattern's future — so they remain realistic by construction.
package fd

import (
	"realisticfd/internal/model"
)

// Oracle is a failure-detector oracle: one representative history per
// failure pattern, queried pointwise.
//
// Implementations must be pure: two calls with the same arguments
// return the same value, and calls must not retain or mutate f.
type Oracle interface {
	// Name identifies the oracle, e.g. "P(delay=3)".
	Name() string

	// Realistic reports whether the oracle claims to satisfy the
	// realism property of §3.1. CheckRealism verifies the claim
	// empirically; Marabout answers false here and is the paper's
	// canonical non-realistic example.
	Realistic() bool

	// Output returns the suspicion set H(p, t) that process p sees at
	// time t in the oracle's history for failure pattern f.
	Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet
}

// Steady is an optional Oracle extension for piecewise-constant
// outputs: StableUntil(f, p, t) returns a time u ≥ t such that
// Output(f, p, t′) == Output(f, p, t) for every t′ in [t, u], judged
// against the pattern f as it stands. The guarantee is void as soon as
// a new crash is added to f — callers that cache outputs across an
// evolving pattern (the engine's per-process FD cache) must drop their
// horizons whenever the pattern gains a crash; f's crash hook reports
// exactly those additions.
//
// Implementations need not return the tightest horizon; u = t is
// always sound and is what noisy oracles return while their output is
// genuinely time-varying.
type Steady interface {
	Oracle

	// StableUntil returns the last time through which p's current
	// output is guaranteed unchanged, given no further crashes.
	StableUntil(f *model.FailurePattern, p model.ProcessID, t model.Time) model.Time
}

// nextCrashVisibility returns the earliest time strictly after t at
// which some crash in f becomes visible to a detector with uniform
// latency delay (i.e. the smallest ct+delay > t), or model.NoCrash if
// no recorded crash changes visibility after t. It scans process IDs
// directly rather than materializing Faulty().Slice() so the Steady
// fast paths stay allocation-free.
func nextCrashVisibility(f *model.FailurePattern, delay, t model.Time) model.Time {
	next := model.Time(model.NoCrash)
	for q := model.ProcessID(1); int(q) <= f.N(); q++ {
		ct, crashed := f.CrashTime(q)
		if !crashed {
			continue
		}
		if v := ct + delay; v > t && v < next {
			next = v
		}
	}
	return next
}

// splitmix64 is the deterministic mixing function used for seeded
// noise. It depends only on its argument, so noise derived from
// (seed, p, q, t) is measurable on the pattern prefix — i.e. realistic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noise returns a pseudorandom uint64 for the tuple (seed, p, q, t).
func noise(seed uint64, p, q model.ProcessID, t model.Time) uint64 {
	x := splitmix64(seed ^ uint64(p)<<40 ^ uint64(q)<<20)
	return splitmix64(x ^ uint64(t))
}

// RecordHistory samples the oracle for every process alive at each
// multiple of step up to and including horizon, producing the recorded
// history used by the class checkers. Crashed processes stop querying
// their modules, matching §2.3 (a crashed process takes no actions).
// For Steady oracles the recorder queries each module only at its
// declared change-points, replaying the cached output in between; the
// pattern is fixed for the whole recording, so the stability horizons
// never need invalidation here.
func RecordHistory(o Oracle, f *model.FailurePattern, horizon, step model.Time) *model.History {
	if step <= 0 {
		step = 1
	}
	h := model.NewHistory(f.N())
	steady, _ := o.(Steady)
	var (
		out   []model.ProcessSet
		until []model.Time
	)
	if steady != nil {
		out = make([]model.ProcessSet, f.N()+1)
		until = make([]model.Time, f.N()+1)
		for p := range until {
			until[p] = -1
		}
	}
	for t := model.Time(0); t <= horizon; t += step {
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			if !f.Alive(p, t) {
				continue
			}
			if steady != nil {
				if t > until[p] {
					out[p] = o.Output(f, p, t)
					until[p] = steady.StableUntil(f, p, t)
				}
				h.Record(p, t, out[p])
				continue
			}
			h.Record(p, t, o.Output(f, p, t))
		}
	}
	return h
}
