// Package fd implements the failure-detector classes discussed in
// "A Realistic Look At Failure Detectors" (DSN 2002): Perfect (P),
// Strong (S), Eventually Strong (◇S), Eventually Perfect (◇P), the
// Scribe and Marabout examples of §3.2, and the Partially Perfect
// class P< of §6.2 — together with machine checkers for the
// completeness/accuracy properties that define the classes and for the
// realism predicate of §3.1.
//
// An Oracle is a deterministic representative of a failure-detector
// class: for each failure pattern F it yields one history H ∈ D(F),
// queried pointwise as Output(F, p, t). For deterministic oracles the
// realism property of §3.1 ("∀ similar-prefix F, F′ the detector could
// have produced the same prefix output") reduces to prefix
// measurability: the output at time t may depend only on F|≤t. Oracles
// that need non-determinism (noisy suspicions before stabilization)
// derive it from a seed mixed with (p, q, t) only — never from the
// pattern's future — so they remain realistic by construction.
package fd

import (
	"realisticfd/internal/model"
)

// Oracle is a failure-detector oracle: one representative history per
// failure pattern, queried pointwise.
//
// Implementations must be pure: two calls with the same arguments
// return the same value, and calls must not retain or mutate f.
type Oracle interface {
	// Name identifies the oracle, e.g. "P(delay=3)".
	Name() string

	// Realistic reports whether the oracle claims to satisfy the
	// realism property of §3.1. CheckRealism verifies the claim
	// empirically; Marabout answers false here and is the paper's
	// canonical non-realistic example.
	Realistic() bool

	// Output returns the suspicion set H(p, t) that process p sees at
	// time t in the oracle's history for failure pattern f.
	Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet
}

// splitmix64 is the deterministic mixing function used for seeded
// noise. It depends only on its argument, so noise derived from
// (seed, p, q, t) is measurable on the pattern prefix — i.e. realistic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// noise returns a pseudorandom uint64 for the tuple (seed, p, q, t).
func noise(seed uint64, p, q model.ProcessID, t model.Time) uint64 {
	x := splitmix64(seed ^ uint64(p)<<40 ^ uint64(q)<<20)
	return splitmix64(x ^ uint64(t))
}

// RecordHistory samples the oracle for every process alive at each
// multiple of step up to and including horizon, producing the recorded
// history used by the class checkers. Crashed processes stop querying
// their modules, matching §2.3 (a crashed process takes no actions).
func RecordHistory(o Oracle, f *model.FailurePattern, horizon, step model.Time) *model.History {
	if step <= 0 {
		step = 1
	}
	h := model.NewHistory(f.N())
	for t := model.Time(0); t <= horizon; t += step {
		for p := model.ProcessID(1); int(p) <= f.N(); p++ {
			if f.Alive(p, t) {
				h.Record(p, t, o.Output(f, p, t))
			}
		}
	}
	return h
}
