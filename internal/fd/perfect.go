package fd

import (
	"fmt"

	"realisticfd/internal/model"
)

// Perfect is a realistic oracle of class P: strong completeness (every
// crashed process is eventually permanently suspected by every correct
// process) and strong accuracy (no process is suspected before it
// crashes).
//
// Delay models the detection latency of the synchrony assumptions P
// encapsulates: a crash at time c becomes visible at time c+Delay.
// Suspicion at time t therefore reveals only crashes at times ≤ t,
// which is exactly prefix measurability — Perfect is realistic for any
// Delay ≥ 0.
type Perfect struct {
	// Delay is the detection latency in clock ticks; zero means crashes
	// are seen instantly.
	Delay model.Time
}

var _ Oracle = Perfect{}

// Name implements Oracle.
func (o Perfect) Name() string { return fmt.Sprintf("P(delay=%d)", o.Delay) }

// Realistic implements Oracle. Perfect detectors are accurate about
// the past only.
func (o Perfect) Realistic() bool { return true }

// Output returns the set of processes whose crash is at least Delay
// ticks old at time t.
func (o Perfect) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	if t < o.Delay {
		return model.EmptySet()
	}
	return f.CrashedAt(t - o.Delay)
}

var _ Steady = Perfect{}

// StableUntil implements Steady: the output changes only when a crash
// turns Delay old, so it is constant through the tick before the next
// crash-visibility time.
func (o Perfect) StableUntil(f *model.FailurePattern, _ model.ProcessID, t model.Time) model.Time {
	next := nextCrashVisibility(f, o.Delay, t)
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}

// Scribe is the failure detector C of §3.2.1: it "sees what happens at
// all processes at real time and takes notes". Its full range is the
// pattern prefix F[t]; Output projects the note-taking onto the
// standard suspicion range by returning the last entry F(t), and
// Prefix exposes the complete list of values of F up to t.
//
// The Scribe is realistic — it actually belongs to P — and is the
// paper's example that realism does not limit how much of the *past* a
// detector may know.
type Scribe struct{}

var _ Oracle = Scribe{}

// Name implements Oracle.
func (Scribe) Name() string { return "C(scribe)" }

// Realistic implements Oracle.
func (Scribe) Realistic() bool { return true }

// Output returns F(t), the processes crashed through time t.
func (Scribe) Output(f *model.FailurePattern, _ model.ProcessID, t model.Time) model.ProcessSet {
	return f.CrashedAt(t)
}

var _ Steady = Scribe{}

// StableUntil implements Steady: F(·) changes only at crash times.
func (Scribe) StableUntil(f *model.FailurePattern, _ model.ProcessID, t model.Time) model.Time {
	next := nextCrashVisibility(f, 0, t)
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}

// Prefix returns the Scribe's true output F[t]: the list of the values
// of F at every time 0..t.
func (Scribe) Prefix(f *model.FailurePattern, t model.Time) []model.ProcessSet {
	out := make([]model.ProcessSet, 0, int(t)+1)
	for u := model.Time(0); u <= t; u++ {
		out = append(out, f.CrashedAt(u))
	}
	return out
}

// Marabout is the failure detector M of §3.2.2 (after Guerraoui,
// IPL 2001): at every process and every time its output is the
// constant list of *faulty* processes in F — it knows, from time zero,
// who will ever crash.
//
// Marabout is the paper's canonical non-realistic detector: it is
// accurate about the future, belongs to ◇P and S of the original
// Chandra-Toueg space, is incomparable with P, and cannot be
// implemented even in a perfectly synchronous system. §6.1 shows it
// solves consensus trivially with unbounded crashes, which is why the
// paper's lower bound must exclude it.
type Marabout struct{}

var _ Oracle = Marabout{}

// Name implements Oracle.
func (Marabout) Name() string { return "M(marabout)" }

// Realistic implements Oracle: Marabout guesses the future.
func (Marabout) Realistic() bool { return false }

// Output returns faulty(F) regardless of p and t.
func (Marabout) Output(f *model.FailurePattern, _ model.ProcessID, _ model.Time) model.ProcessSet {
	return f.Faulty()
}

var _ Steady = Marabout{}

// StableUntil implements Steady: faulty(F) is constant in t for a
// fixed pattern (it grows only when a crash is *added* to F, which
// voids the guarantee by the Steady contract).
func (Marabout) StableUntil(*model.FailurePattern, model.ProcessID, model.Time) model.Time {
	return model.NoCrash
}
