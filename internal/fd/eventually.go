package fd

import (
	"fmt"

	"realisticfd/internal/model"
)

// EventuallyStrong is a realistic oracle of class ◇S: strong
// completeness plus *eventual* weak accuracy. Before the
// stabilization time GST it emits seeded false suspicions against
// arbitrary processes; from GST on it suspects exactly the processes
// whose crash is at least Delay old (which over-satisfies eventual
// weak accuracy). All noise is a function of (Seed, p, q, t), so the
// oracle is realistic by construction.
//
// This is the weakest class of the Chandra-Toueg hierarchy that solves
// consensus — but only with a majority of correct processes. The E8
// experiment shows the majority requirement; E2 uses a scripted
// variant to rebuild the Lemma 4.1 adversary.
type EventuallyStrong struct {
	// GST is the global stabilization time: no false suspicions at or
	// after GST.
	GST model.Time
	// Delay is the detection latency for genuine crashes.
	Delay model.Time
	// Seed drives pre-GST false suspicions.
	Seed uint64
	// FalseRate is the per-(p,q,t) false-suspicion probability before
	// GST, expressed as a percentage 0..100.
	FalseRate int
}

var _ Oracle = EventuallyStrong{}

// Name implements Oracle.
func (o EventuallyStrong) Name() string {
	return fmt.Sprintf("◇S(gst=%d,delay=%d,rate=%d%%)", o.GST, o.Delay, o.FalseRate)
}

// Realistic implements Oracle.
func (o EventuallyStrong) Realistic() bool { return true }

// Output returns aged crashes plus, before GST, seeded false
// suspicions.
func (o EventuallyStrong) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	out := model.EmptySet()
	if t >= o.Delay {
		out = f.CrashedAt(t - o.Delay)
	}
	if t >= o.GST {
		return out
	}
	for q := model.ProcessID(1); int(q) <= f.N(); q++ {
		if q == p {
			continue
		}
		if int(noise(o.Seed, p, q, t)%100) < o.FalseRate {
			out = out.Add(q)
		}
	}
	return out
}

var _ Steady = EventuallyStrong{}

// StableUntil implements Steady. Before GST the per-tick noise makes
// the output genuinely time-varying, so no horizon beyond the sample
// itself is claimed (u = t is always sound); from GST on — or with a
// zero false rate throughout — the oracle is Perfect-shaped and stable
// until the next crash visibility.
func (o EventuallyStrong) StableUntil(f *model.FailurePattern, _ model.ProcessID, t model.Time) model.Time {
	if o.FalseRate > 0 && t < o.GST {
		return t
	}
	next := nextCrashVisibility(f, o.Delay, t)
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}

// EventuallyPerfect is a realistic oracle of class ◇P: strong
// completeness plus eventual strong accuracy. Identical in shape to
// EventuallyStrong; kept distinct so experiments can label class
// membership precisely.
type EventuallyPerfect struct {
	GST       model.Time
	Delay     model.Time
	Seed      uint64
	FalseRate int
}

var _ Oracle = EventuallyPerfect{}

// Name implements Oracle.
func (o EventuallyPerfect) Name() string {
	return fmt.Sprintf("◇P(gst=%d,delay=%d,rate=%d%%)", o.GST, o.Delay, o.FalseRate)
}

// Realistic implements Oracle.
func (o EventuallyPerfect) Realistic() bool { return true }

// Output returns aged crashes plus, before GST, seeded false
// suspicions.
func (o EventuallyPerfect) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	return EventuallyStrong(o).Output(f, p, t)
}

var _ Steady = EventuallyPerfect{}

// StableUntil implements Steady; see EventuallyStrong.StableUntil.
func (o EventuallyPerfect) StableUntil(f *model.FailurePattern, p model.ProcessID, t model.Time) model.Time {
	return EventuallyStrong(o).StableUntil(f, p, t)
}

// SuspicionInterval is one scripted false suspicion: watcher P
// suspects Target during [From, To).
type SuspicionInterval struct {
	P      model.ProcessID // 0 means every watcher
	Target model.ProcessID
	From   model.Time
	To     model.Time
}

// Scripted is a realistic oracle whose false suspicions follow an
// explicit script on top of a Perfect base. It is the adversary's
// instrument in the Lemma 4.1 experiment (E2): by scripting "everyone
// suspects p_j until time T" the adversary builds the run R1 in which
// a decision's causal chain omits p_j, then extends the pattern with
// crashes to obtain R2/R3 and force disagreement. The script is fixed
// in advance — it does not read the pattern — so Scripted remains
// realistic (it is a ◇S-style detector when the script is finite).
type Scripted struct {
	// Delay is the detection latency for genuine crashes.
	Delay model.Time
	// Script is the list of false-suspicion intervals.
	Script []SuspicionInterval
}

var _ Oracle = Scripted{}

// Name implements Oracle.
func (o Scripted) Name() string {
	return fmt.Sprintf("scripted(delay=%d,%d intervals)", o.Delay, len(o.Script))
}

// Realistic implements Oracle: the script is pattern-independent.
func (o Scripted) Realistic() bool { return true }

// Output returns aged crashes plus scripted suspicions active at t.
func (o Scripted) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	out := model.EmptySet()
	if t >= o.Delay {
		out = f.CrashedAt(t - o.Delay)
	}
	for _, iv := range o.Script {
		if iv.P != 0 && iv.P != p {
			continue
		}
		if t >= iv.From && t < iv.To {
			out = out.Add(iv.Target)
		}
	}
	return out
}

var _ Steady = Scripted{}

// StableUntil implements Steady: the output changes at crash
// visibilities and at the start/end of every script interval that
// applies to p.
func (o Scripted) StableUntil(f *model.FailurePattern, p model.ProcessID, t model.Time) model.Time {
	next := nextCrashVisibility(f, o.Delay, t)
	for _, iv := range o.Script {
		if iv.P != 0 && iv.P != p {
			continue
		}
		if iv.From > t && iv.From < next {
			next = iv.From
		}
		if iv.To > t && iv.To < next {
			next = iv.To
		}
	}
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}
