package fd

import (
	"testing"

	"realisticfd/internal/model"
)

const (
	testN       = 5
	testHorizon = model.Time(200)
)

// classify runs an oracle over a pattern and classifies the recorded
// history.
func classify(t *testing.T, o Oracle, f *model.FailurePattern) ClassReport {
	t.Helper()
	h := RecordHistory(o, f, testHorizon, 1)
	return Classify(h, f)
}

// twoCrashPattern has p2 crash early and p4 crash mid-run.
func twoCrashPattern() *model.FailurePattern {
	return model.MustPattern(testN).MustCrash(2, 20).MustCrash(4, 80)
}

func TestPerfectIsInP(t *testing.T) {
	t.Parallel()
	for _, delay := range []model.Time{0, 1, 5} {
		r := classify(t, Perfect{Delay: delay}, twoCrashPattern())
		if !r.InP() {
			t.Errorf("Perfect(delay=%d) not in P: %+v", delay, r)
		}
		// P ⊆ S ⊆ ◇S and P ⊆ ◇P and P ⊆ P< over any history.
		if !r.InS() || !r.InDiamondS() || !r.InDiamondP() || !r.InPLess() {
			t.Errorf("Perfect(delay=%d) should be in every weaker class: %s", delay, r)
		}
	}
}

func TestPerfectOnFailureFreePattern(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(testN)
	h := RecordHistory(Perfect{Delay: 2}, f, testHorizon, 1)
	for p := model.ProcessID(1); p <= testN; p++ {
		for _, s := range h.Spans(p) {
			if !s.Out.IsEmpty() {
				t.Fatalf("Perfect suspected %v with no crashes at t=%d", s.Out, s.From)
			}
		}
	}
}

func TestScribeMatchesPerfectZeroDelay(t *testing.T) {
	t.Parallel()
	f := twoCrashPattern()
	for tt := model.Time(0); tt <= 100; tt += 7 {
		for p := model.ProcessID(1); p <= testN; p++ {
			a := Scribe{}.Output(f, p, tt)
			b := Perfect{}.Output(f, p, tt)
			if !a.Equal(b) {
				t.Fatalf("Scribe(t=%d) = %v, Perfect(0) = %v", tt, a, b)
			}
		}
	}
}

func TestScribePrefixIsFullNoteList(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(testN).MustCrash(3, 4)
	pre := Scribe{}.Prefix(f, 6)
	if len(pre) != 7 {
		t.Fatalf("Prefix(6) has %d entries, want 7", len(pre))
	}
	for u := 0; u <= 3; u++ {
		if !pre[u].IsEmpty() {
			t.Errorf("F(%d) = %v, want {}", u, pre[u])
		}
	}
	for u := 4; u <= 6; u++ {
		if !pre[u].Equal(model.NewProcessSet(3)) {
			t.Errorf("F(%d) = %v, want {p3}", u, pre[u])
		}
	}
}

func TestMaraboutKnowsTheFuture(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(testN).MustCrash(1, 100)
	// At t=0, long before the crash, Marabout already outputs {p1}.
	out := Marabout{}.Output(f, 3, 0)
	if !out.Equal(model.NewProcessSet(1)) {
		t.Fatalf("Marabout at t=0 = %v, want {p1}", out)
	}
	// Its history is constant.
	m := Marabout{}
	for tt := model.Time(0); tt <= 150; tt += 10 {
		if !m.Output(f, 2, tt).Equal(out) {
			t.Fatal("Marabout output not constant")
		}
	}
}

func TestMaraboutClassMembership(t *testing.T) {
	t.Parallel()
	// Per §3.2.2, M belongs to both ◇P and S of the original space,
	// but not to P: it suspects processes before they crash.
	r := classify(t, Marabout{}, twoCrashPattern())
	if r.InP() {
		t.Error("Marabout must not be in P (it is accurate about the future, not the past)")
	}
	if !r.InS() {
		t.Errorf("Marabout should be in S: %+v", r.WeakAccuracy)
	}
	if !r.InDiamondP() {
		t.Errorf("Marabout should be in ◇P: %+v", r.EventualStrongAccuracy)
	}
}

func TestRealisticStrongCollapsesIntoP(t *testing.T) {
	t.Parallel()
	// §6.3: S ∩ R ⊂ P. Our realistic Strong oracle must satisfy strong
	// accuracy even though S only demands weak accuracy.
	o := RealisticStrong{BaseDelay: 2, Seed: 9, JitterMax: 5}
	r := classify(t, o, twoCrashPattern())
	if !r.InS() {
		t.Fatalf("RealisticStrong not in S: %+v", r)
	}
	if !r.InP() {
		t.Fatalf("RealisticStrong in S∩R but not in P — §6.3 collapse violated: %+v", r.StrongAccuracy)
	}
}

func TestNonRealisticStrongIsStrongButNotPerfect(t *testing.T) {
	t.Parallel()
	o := NonRealisticStrong{Delay: 2, FalsePeriod: 10}
	f := twoCrashPattern()
	r := classify(t, o, f)
	if !r.InS() {
		t.Fatalf("NonRealisticStrong not in S: completeness=%v weakAcc=%v",
			r.StrongCompleteness, r.WeakAccuracy)
	}
	if r.InP() {
		t.Fatal("NonRealisticStrong must violate strong accuracy (it falsely suspects)")
	}
	// The protected process is the lowest-indexed correct one.
	w := f.Correct().Min()
	h := RecordHistory(o, f, testHorizon, 1)
	for p := model.ProcessID(1); p <= testN; p++ {
		if _, ever := h.EverSuspected(p, w); ever {
			t.Fatalf("weak-accuracy anchor %v was suspected by %v", w, p)
		}
	}
}

func TestEventuallyStrongClasses(t *testing.T) {
	t.Parallel()
	o := EventuallyStrong{GST: 60, Delay: 2, Seed: 5, FalseRate: 25}
	f := twoCrashPattern()
	r := classify(t, o, f)
	if !r.InDiamondS() {
		t.Fatalf("◇S oracle not in ◇S: completeness=%v evWeakAcc=%v",
			r.StrongCompleteness, r.EventualWeakAccuracy)
	}
	if r.InP() {
		t.Fatal("noisy ◇S oracle must not be in P")
	}
	// Sanity: with FalseRate 25% and GST 60 there are real false
	// suspicions before GST.
	h := RecordHistory(o, f, testHorizon, 1)
	if CheckStrongAccuracy(h, f) == nil {
		t.Fatal("expected pre-GST false suspicions, found none")
	}
}

func TestEventuallyPerfectClasses(t *testing.T) {
	t.Parallel()
	o := EventuallyPerfect{GST: 60, Delay: 2, Seed: 6, FalseRate: 25}
	r := classify(t, o, twoCrashPattern())
	if !r.InDiamondP() {
		t.Fatalf("◇P oracle not in ◇P: %+v", r.EventualStrongAccuracy)
	}
	if r.InP() {
		t.Fatal("noisy ◇P oracle must not be in P")
	}
}

func TestScriptedOracle(t *testing.T) {
	t.Parallel()
	o := Scripted{
		Delay: 1,
		Script: []SuspicionInterval{
			{P: 0, Target: 3, From: 10, To: 20}, // everyone suspects p3 in [10,20)
			{P: 2, Target: 5, From: 0, To: 5},   // p2 suspects p5 in [0,5)
		},
	}
	f := model.MustPattern(testN)
	cases := []struct {
		p    model.ProcessID
		t    model.Time
		want model.ProcessSet
	}{
		{1, 9, model.EmptySet()},
		{1, 10, model.NewProcessSet(3)},
		{4, 19, model.NewProcessSet(3)},
		{4, 20, model.EmptySet()},
		{2, 4, model.NewProcessSet(5)},
		{3, 4, model.EmptySet()}, // interval scoped to watcher p2
	}
	for _, tc := range cases {
		if got := o.Output(f, tc.p, tc.t); !got.Equal(tc.want) {
			t.Errorf("Output(%v, t=%d) = %v, want %v", tc.p, tc.t, got, tc.want)
		}
	}
}

func TestPartiallyPerfect(t *testing.T) {
	t.Parallel()
	o := PartiallyPerfect{Delay: 2}
	f := twoCrashPattern() // p2@20, p4@80 crash
	r := classify(t, o, f)
	if !r.InPLess() {
		t.Fatalf("P< oracle not in P<: partial=%v strongAcc=%v",
			r.PartialCompleteness, r.StrongAccuracy)
	}
	// P< is strictly weaker than P here: p1 never learns of p2's crash.
	if r.InP() {
		t.Fatal("P< oracle must not satisfy strong completeness (p1 cannot see p2)")
	}
	h := RecordHistory(o, f, testHorizon, 1)
	if _, ever := h.EverSuspected(1, 2); ever {
		t.Fatal("p1 (lower index) must never suspect p2 under P<")
	}
	if _, ok := h.SuspectedFrom(3, 2); !ok {
		t.Fatal("p3 (higher index) must permanently suspect crashed p2 under P<")
	}
}

func TestRecordHistoryStopsQueryingAfterCrash(t *testing.T) {
	t.Parallel()
	f := model.MustPattern(testN).MustCrash(2, 10)
	h := RecordHistory(Perfect{}, f, 50, 1)
	ss := h.Spans(2)
	if len(ss) == 0 {
		t.Fatal("p2 should have samples before its crash")
	}
	if last := ss[len(ss)-1].To; last >= 10 {
		t.Fatalf("crashed p2 queried at t=%d ≥ crash time 10", last)
	}
}
