package fd

import (
	"fmt"

	"realisticfd/internal/model"
)

// PartiallyPerfect is the class P< of §6.2 (after Guerraoui, WDAG
// 1995): strong accuracy plus *partial* completeness — if p_i crashes,
// then eventually every correct p_j with j > i permanently suspects
// p_i. Lower-indexed processes learn nothing about higher-indexed
// ones.
//
// P< is strictly weaker than P when the number of failures is
// unbounded, yet it solves correct-restricted (non-uniform) consensus;
// that gap is the paper's proof that uniform consensus is strictly
// harder than consensus (E6).
type PartiallyPerfect struct {
	// Delay is the detection latency for crashes of lower-indexed
	// processes.
	Delay model.Time
}

var _ Oracle = PartiallyPerfect{}

// Name implements Oracle.
func (o PartiallyPerfect) Name() string { return fmt.Sprintf("P<(delay=%d)", o.Delay) }

// Realistic implements Oracle.
func (o PartiallyPerfect) Realistic() bool { return true }

// Output suspects, at watcher p, exactly the crashed processes with
// index lower than p whose crash is at least Delay old.
func (o PartiallyPerfect) Output(f *model.FailurePattern, p model.ProcessID, t model.Time) model.ProcessSet {
	if t < o.Delay {
		return model.EmptySet()
	}
	var lower model.ProcessSet
	for q := model.ProcessID(1); q < p; q++ {
		lower = lower.Add(q)
	}
	return f.CrashedAt(t - o.Delay).Intersect(lower)
}

var _ Steady = PartiallyPerfect{}

// StableUntil implements Steady: only crashes of lower-indexed
// processes ever reach watcher p's output.
func (o PartiallyPerfect) StableUntil(f *model.FailurePattern, p model.ProcessID, t model.Time) model.Time {
	next := model.Time(model.NoCrash)
	for q := model.ProcessID(1); q < p; q++ {
		ct, crashed := f.CrashTime(q)
		if !crashed {
			continue
		}
		if v := ct + o.Delay; v > t && v < next {
			next = v
		}
	}
	if next == model.NoCrash {
		return model.NoCrash
	}
	return next - 1
}
