package harness

import (
	"runtime"
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// testScenario is a consensus scenario with crashes, a randomized
// policy and (optionally) link faults — enough moving parts that any
// cross-run state sharing would show up as a digest mismatch or a data
// race.
func testScenario(faults *sim.LinkFaults) Scenario {
	return Scenario{
		Name:      "sflooding",
		N:         5,
		Automaton: consensus.SFlooding{Proposals: consensus.DistinctProposals(5)},
		Oracle:    fd.Perfect{Delay: 2},
		Horizon:   20000,
		Pattern: func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(2, 40)
		},
		Policy:   func() sim.Policy { return &sim.RandomFairPolicy{} },
		Faults:   faults,
		StopWhen: func() func(*sim.Trace) bool { return sim.CorrectDecided(0) },
	}
}

func digests(t *testing.T, results []Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", r.Seed, r.Err)
		}
		out[i] = r.Trace.Digest()
	}
	return out
}

// TestSweepParallelEqualsSequential is the harness's core guarantee:
// the same sweep at parallelism 1 and at high parallelism produces
// byte-identical traces in the same (seed) order.
func TestSweepParallelEqualsSequential(t *testing.T) {
	t.Parallel()
	for _, faults := range []*sim.LinkFaults{
		nil,
		{DropPct: 15, MaxExtraDelay: 4,
			Partitions: []sim.Partition{{Side: model.NewProcessSet(1, 3), From: 50, Until: 500}}},
	} {
		sc := testScenario(faults)
		seq := digests(t, Sweep(sc, Seeds(8), 1))
		par := digests(t, Sweep(sc, Seeds(8), 2*runtime.GOMAXPROCS(0)))
		if len(seq) != len(par) {
			t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("faults=%v seed %d: parallel trace differs from sequential", faults, i)
			}
		}
	}
}

// TestSweepOrderAndSeeds checks results come back slotted by seed for
// an arbitrary range.
func TestSweepOrderAndSeeds(t *testing.T) {
	t.Parallel()
	results := Sweep(testScenario(nil), SeedRange{From: 100, To: 108}, 0)
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8", len(results))
	}
	for i, r := range results {
		if r.Seed != int64(100+i) {
			t.Fatalf("slot %d holds seed %d", i, r.Seed)
		}
	}
}

// TestMapSummarizesInWorkers checks Map's analyses line up with the
// seeds and that the sweep actually decided consensus in every run.
func TestMapSummarizesInWorkers(t *testing.T) {
	t.Parallel()
	type summary struct {
		seed    int64
		decided bool
	}
	sums := Map(testScenario(nil), Seeds(10), 0, func(r Result) summary {
		if r.Err != nil {
			t.Errorf("seed %d: %v", r.Seed, r.Err)
			return summary{seed: r.Seed}
		}
		return summary{seed: r.Seed, decided: r.Trace.Stopped == sim.StopCondition}
	})
	for i, s := range sums {
		if s.seed != int64(i) {
			t.Fatalf("slot %d holds seed %d", i, s.seed)
		}
		if !s.decided {
			t.Fatalf("seed %d: consensus did not decide", s.seed)
		}
	}
}

// TestAfterStepFactoryIsolatesRuns reproduces the E6 adversary shape:
// the AfterStep factory must give every run its own closure state, so
// each run crashes p1 exactly once after its first decision.
func TestAfterStepFactoryIsolatesRuns(t *testing.T) {
	t.Parallel()
	sc := testScenario(nil)
	sc.Pattern = func() *model.FailurePattern { return model.MustPattern(5) }
	sc.AfterStep = func() func(*sim.Run, *sim.EventRecord) {
		crashed := false // per-run state
		return func(r *sim.Run, ev *sim.EventRecord) {
			if crashed || ev.P != 1 {
				return
			}
			for _, pe := range ev.Events {
				if pe.Kind == sim.KindDecide {
					crashed = true
					_ = r.Crash(1)
				}
			}
		}
	}
	for _, r := range Sweep(sc, Seeds(8), 0) {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", r.Seed, r.Err)
		}
		if _, crashed := r.Trace.Pattern.CrashTime(1); !crashed {
			// p1 may legitimately never decide under some schedules,
			// but with a perfect detector and no other crashes it
			// always does here.
			t.Fatalf("seed %d: adversarial hook never fired", r.Seed)
		}
	}
}

// TestScenarioFaultsWrapPolicy checks Config wires the fault plan in
// as a FaultyPolicy around the scenario policy.
func TestScenarioFaultsWrapPolicy(t *testing.T) {
	t.Parallel()
	sc := testScenario(&sim.LinkFaults{DropPct: 10})
	cfg := sc.Config(3)
	fp, ok := cfg.Policy.(*sim.FaultyPolicy)
	if !ok {
		t.Fatalf("policy is %T, want *sim.FaultyPolicy", cfg.Policy)
	}
	if _, ok := fp.Inner.(*sim.RandomFairPolicy); !ok {
		t.Fatalf("inner policy is %T, want *sim.RandomFairPolicy", fp.Inner)
	}
	if cfg.Seed != 3 {
		t.Fatalf("seed = %d, want 3", cfg.Seed)
	}
	// An inert plan must not wrap.
	sc.Faults = &sim.LinkFaults{}
	if _, ok := sc.Config(0).Policy.(*sim.FaultyPolicy); ok {
		t.Fatal("inert fault plan still wrapped the policy")
	}
}

// TestSeedMapAndParMap pin the generic fan-outs: ordering, empty
// inputs, and the worker count not leaking into results.
func TestSeedMapAndParMap(t *testing.T) {
	t.Parallel()
	sq := SeedMap(SeedRange{From: 5, To: 15}, 3, func(seed int64) int64 { return seed * seed })
	for i, v := range sq {
		seed := int64(5 + i)
		if v != seed*seed {
			t.Fatalf("slot %d = %d, want %d", i, v, seed*seed)
		}
	}
	if got := SeedMap(SeedRange{From: 4, To: 4}, 8, func(int64) int { return 1 }); got != nil {
		t.Fatalf("empty range returned %v", got)
	}
	items := []string{"a", "bb", "ccc"}
	lens := ParMap(items, 0, func(i int, s string) int { return i*100 + len(s) })
	want := []int{1, 102, 203}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("ParMap[%d] = %d, want %d", i, lens[i], want[i])
		}
	}
	if got := ParMap(nil, 4, func(int, struct{}) int { return 0 }); got != nil {
		t.Fatalf("empty ParMap returned %v", got)
	}
}
