package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"realisticfd/internal/sim"
)

// Reducer folds a sweep's runs into an accumulator of type A without
// ever retaining a trace: Fold absorbs one run inside the worker that
// executed it (the trace is valid only for the duration of the call —
// workers reuse their sim.RunContext across seeds), and Merge combines
// the accumulators of adjacent seed chunks.
//
// Determinism contract: Fold is applied in seed order within a chunk,
// and Merge is applied in chunk order (prefix-first), regardless of
// worker count or scheduling. An accumulator whose Merge is
// associative over that ordering therefore yields the same value at
// any parallelism. If the accumulator is also chunk-size independent
// (commutative Merge, like SweepStats), the value is a pure function
// of the scenario and seed range alone.
type Reducer[A any] struct {
	// New returns an empty accumulator.
	New func() A
	// Fold absorbs one run. It must not retain r.Trace or anything
	// reachable from it past the call; extract sim.Summary-style data.
	Fold func(A, Result) A
	// Merge combines the accumulator of an earlier seed chunk (first
	// argument) with the one of the chunk immediately after it.
	Merge func(A, A) A
}

// DefaultChunkSize is the seed-chunk granularity of Stream when
// StreamOptions.ChunkSize is unset: small enough that checkpoints are
// frequent, large enough that per-chunk overhead vanishes.
const DefaultChunkSize = 256

// StreamOptions configures a streaming sweep campaign.
type StreamOptions struct {
	// Workers sizes the pool; ≤ 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of consecutive seeds a worker folds into
	// one chunk accumulator; ≤ 0 means DefaultChunkSize. Chunk
	// boundaries are part of a checkpoint's identity: resuming requires
	// the same chunk size.
	ChunkSize int
	// Checkpoint, when non-empty, is the path of the JSON checkpoint
	// file: the merged prefix accumulator, the out-of-order completed
	// chunks, and enough campaign identity to refuse a mismatched
	// resume. It is rewritten (atomically, via rename) after every
	// completed chunk, so an interrupted campaign loses at most the
	// chunks in flight. The accumulator type must round-trip through
	// encoding/json for checkpointing to work.
	Checkpoint string
	// Context, when non-nil, allows cancelling the campaign: workers
	// stop claiming chunks, in-flight partial chunks are discarded
	// (a resume recomputes them), and Stream returns the merged prefix
	// plus the context's error.
	Context context.Context
}

// Reduce is the plain streaming fold: every seed is executed on the
// worker pool, folded into per-chunk accumulators, and merged in chunk
// order. No trace outlives its run, so memory stays flat no matter how
// many seeds the range holds — this is the replacement for
// Sweep/Map-then-aggregate in any sweep that only needs aggregates.
func Reduce[A any](sc Scenario, seeds SeedRange, workers int, red Reducer[A]) A {
	a, err := Stream(sc, seeds, red, StreamOptions{Workers: workers})
	if err != nil {
		// Without a checkpoint or a cancelable context Stream cannot
		// fail; a failure here is a programming error.
		panic(fmt.Sprintf("harness: Reduce failed: %v", err))
	}
	return a
}

// Stream runs the scenario at every seed of the range in streaming
// mode: the seed space is sharded into fixed-size chunks, each worker
// folds its claimed chunk seed by seed on a reused sim.RunContext, and
// chunk accumulators are merged into a prefix strictly in chunk order.
// With a Checkpoint path the campaign survives interruption: completed
// work is persisted after every chunk and a later Stream call with the
// same scenario/range/chunk-size resumes where it left off (a finished
// checkpoint short-circuits to the stored result). See DESIGN.md §7.
func Stream[A any](sc Scenario, seeds SeedRange, red Reducer[A], opts StreamOptions) (A, error) {
	chunk := opts.ChunkSize
	if chunk <= 0 {
		chunk = DefaultChunkSize
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if err := seeds.Validate(); err != nil {
		return red.New(), err
	}
	total := seeds.Count()
	if total == 0 {
		return red.New(), nil
	}
	numChunks := (total + chunk - 1) / chunk

	st := &streamState[A]{
		red:     red,
		prefix:  red.New(),
		pending: make(map[int]A),
		path:    opts.Checkpoint,
		meta: checkpointMeta{
			Schema:       checkpointSchema,
			Scenario:     sc.Name,
			ConfigDigest: sc.identityDigest(),
			SeedFrom:     seeds.From,
			SeedTo:       seeds.To,
			ChunkSize:    chunk,
		},
	}
	if st.path != "" {
		if err := st.load(); err != nil {
			return red.New(), err
		}
		if st.complete {
			return st.prefix, nil
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numChunks {
		workers = numChunks
	}

	var claim atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			rc := sim.NewRunContext()
			for {
				ci := int(claim.Add(1)) - 1
				if ci >= numChunks {
					return
				}
				if st.chunkDone(ci) {
					continue
				}
				if ctx.Err() != nil {
					return
				}
				from := seeds.From + int64(ci)*int64(chunk)
				to := from + int64(chunk)
				if to > seeds.To {
					to = seeds.To
				}
				acc := red.New()
				for s := from; s < to; s++ {
					if ctx.Err() != nil {
						// Mid-chunk interruption: the partial fold is
						// discarded; a resume recomputes the chunk.
						return
					}
					acc = red.Fold(acc, sc.RunIn(rc, s))
				}
				st.deliver(ci, acc)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return st.prefix, err
	}
	if err := st.firstErr(); err != nil {
		return st.prefix, err
	}
	st.complete = true
	if st.path != "" {
		st.mu.Lock()
		err := st.saveLocked(true)
		st.mu.Unlock()
		if err != nil {
			return st.prefix, err
		}
	}
	return st.prefix, nil
}

// checkpointSchema identifies the checkpoint file format. v2 added the
// scenario config digest to the campaign identity: v1 keyed a campaign
// on the scenario *name* alone, so two campaigns sharing a name but
// differing in fault plan or policy silently resumed from each other's
// checkpoints. v1 files are rejected outright — they carry no digest
// to verify against.
const (
	checkpointSchema   = "realisticfd-sweep-checkpoint/v2"
	checkpointSchemaV1 = "realisticfd-sweep-checkpoint/v1"
)

// checkpointMeta is a campaign's identity: a checkpoint written for a
// different scenario configuration, seed range or chunking must not be
// resumed.
type checkpointMeta struct {
	Schema       string `json:"schema"`
	Scenario     string `json:"scenario"`
	ConfigDigest string `json:"config_digest"`
	SeedFrom     int64  `json:"seed_from"`
	SeedTo       int64  `json:"seed_to"`
	ChunkSize    int    `json:"chunk_size"`
}

// checkpointFile is the persisted campaign state: the prefix
// accumulator (chunks [0, NextChunk) merged in order) plus the
// completed chunks that are still waiting for an earlier neighbour.
type checkpointFile struct {
	checkpointMeta
	Complete  bool                       `json:"complete"`
	NextChunk int                        `json:"next_chunk"`
	Prefix    json.RawMessage            `json:"prefix"`
	Pending   map[string]json.RawMessage `json:"pending,omitempty"`
}

// streamState is the merge coordinator shared by the workers.
type streamState[A any] struct {
	mu       sync.Mutex
	red      Reducer[A]
	prefix   A         // chunks [0, next) merged in order
	next     int       // first chunk not yet merged into prefix
	pending  map[int]A // completed chunks waiting for an earlier one
	complete bool
	path     string
	meta     checkpointMeta
	err      error
}

// chunkDone reports whether chunk ci was already completed (merged
// into the prefix or waiting in pending) — used on resume to skip
// checkpointed work.
func (st *streamState[A]) chunkDone(ci int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if ci < st.next {
		return true
	}
	_, ok := st.pending[ci]
	return ok
}

// deliver hands a completed chunk to the coordinator: it is parked in
// pending, every contiguously available chunk is merged into the
// prefix in chunk order, and the checkpoint (if any) is rewritten.
func (st *streamState[A]) deliver(ci int, acc A) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pending[ci] = acc
	for {
		a, ok := st.pending[st.next]
		if !ok {
			break
		}
		st.prefix = st.red.Merge(st.prefix, a)
		delete(st.pending, st.next)
		st.next++
	}
	if st.path != "" {
		if err := st.saveLocked(false); err != nil && st.err == nil {
			st.err = err
		}
	}
}

func (st *streamState[A]) firstErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// saveLocked writes the checkpoint atomically (temp file + rename).
func (st *streamState[A]) saveLocked(complete bool) error {
	f := checkpointFile{
		checkpointMeta: st.meta,
		Complete:       complete,
		NextChunk:      st.next,
	}
	b, err := json.Marshal(st.prefix)
	if err != nil {
		return fmt.Errorf("harness: marshal checkpoint prefix: %w", err)
	}
	f.Prefix = b
	if len(st.pending) > 0 {
		f.Pending = make(map[string]json.RawMessage, len(st.pending))
		for ci, a := range st.pending {
			b, err := json.Marshal(a)
			if err != nil {
				return fmt.Errorf("harness: marshal checkpoint chunk %d: %w", ci, err)
			}
			f.Pending[strconv.Itoa(ci)] = b
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp := st.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("harness: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, st.path); err != nil {
		return fmt.Errorf("harness: commit checkpoint: %w", err)
	}
	return nil
}

// load restores campaign state from the checkpoint file; a missing
// file means a fresh campaign, a mismatched one is an error (never
// silently merge incompatible campaigns).
func (st *streamState[A]) load() error {
	data, err := os.ReadFile(st.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("harness: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("harness: parse checkpoint %s: %w", st.path, err)
	}
	if f.Schema == checkpointSchemaV1 {
		return fmt.Errorf("harness: checkpoint %s uses the retired v1 format, which cannot verify the scenario configuration; delete it and restart the campaign", st.path)
	}
	if f.checkpointMeta != st.meta {
		return fmt.Errorf("harness: checkpoint %s is for campaign %+v, not %+v",
			st.path, f.checkpointMeta, st.meta)
	}
	prefix := st.red.New()
	if len(f.Prefix) > 0 {
		if err := json.Unmarshal(f.Prefix, &prefix); err != nil {
			return fmt.Errorf("harness: parse checkpoint prefix: %w", err)
		}
	}
	st.prefix = prefix
	st.next = f.NextChunk
	st.complete = f.Complete
	for key, raw := range f.Pending {
		ci, err := strconv.Atoi(key)
		if err != nil {
			return fmt.Errorf("harness: checkpoint chunk key %q: %w", key, err)
		}
		a := st.red.New()
		if err := json.Unmarshal(raw, &a); err != nil {
			return fmt.Errorf("harness: parse checkpoint chunk %d: %w", ci, err)
		}
		st.pending[ci] = a
	}
	return nil
}
