package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"realisticfd/internal/sim"
)

// refStats folds retained Sweep results sequentially in seed order:
// the reference the streaming path must reproduce exactly.
func refStats(t *testing.T, sc Scenario, seeds SeedRange) SweepStats {
	t.Helper()
	red := SweepReducer()
	st := red.New()
	for _, r := range Sweep(sc, seeds, 1) {
		st = red.Fold(st, r)
	}
	return st
}

func assertStatsEqual(t *testing.T, label string, got, want SweepStats) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: streaming stats diverged:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestStreamMatchesRetained is the streaming-vs-retained equivalence
// gate: Reduce over reused run contexts, at any worker count and chunk
// size, must equal a sequential fold over fully retained traces — for
// clean and lossy links alike.
func TestStreamMatchesRetained(t *testing.T) {
	t.Parallel()
	for _, faults := range []*sim.LinkFaults{
		nil,
		{DropPct: 20, MaxExtraDelay: 3},
	} {
		sc := testScenario(faults)
		want := refStats(t, sc, Seeds(24))
		if want.Runs != 24 || want.Errors != 0 {
			t.Fatalf("reference sweep: %+v", want)
		}
		for _, opts := range []StreamOptions{
			{Workers: 1, ChunkSize: 24},
			{Workers: 2 * runtime.GOMAXPROCS(0), ChunkSize: 5},
			{Workers: 3, ChunkSize: 1},
		} {
			got, err := Stream(sc, Seeds(24), SweepReducer(), opts)
			if err != nil {
				t.Fatalf("Stream(%+v): %v", opts, err)
			}
			assertStatsEqual(t, "faults/chunked", got, want)
		}
		got := Reduce(sc, Seeds(24), 0, SweepReducer())
		assertStatsEqual(t, "Reduce", got, want)
	}
}

// TestStreamMergeRace exercises the merge/checkpoint coordinator under
// maximum contention; its value is running under -race in CI.
func TestStreamMergeRace(t *testing.T) {
	t.Parallel()
	sc := testScenario(&sim.LinkFaults{DropPct: 10})
	path := filepath.Join(t.TempDir(), "race.ckpt")
	got, err := Stream(sc, Seeds(32), SweepReducer(), StreamOptions{
		Workers: 4 * runtime.GOMAXPROCS(0), ChunkSize: 1, Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 32 {
		t.Fatalf("streamed %d runs, want 32", got.Runs)
	}
}

// interruptAfter cancels ctx after the reducer has folded n runs —
// deliberately not aligned to a chunk boundary, so the kill lands
// mid-chunk and the partial chunk must be recomputed on resume.
func interruptAfter(red Reducer[SweepStats], n int64, cancel context.CancelFunc) Reducer[SweepStats] {
	var folded atomic.Int64
	inner := red.Fold
	red.Fold = func(st SweepStats, r Result) SweepStats {
		if folded.Add(1) == n {
			cancel()
		}
		return inner(st, r)
	}
	return red
}

// TestCheckpointResume kills a checkpointed campaign mid-chunk, then
// resumes it and checks the merged accumulator equals an uninterrupted
// run's. A third invocation must short-circuit on the completed
// checkpoint without executing anything.
func TestCheckpointResume(t *testing.T) {
	t.Parallel()
	sc := testScenario(&sim.LinkFaults{DropPct: 15, MaxExtraDelay: 2})
	seeds := Seeds(30)
	want := refStats(t, sc, seeds)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opts := StreamOptions{Workers: 2, ChunkSize: 4, Checkpoint: path}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killOpts := opts
	killOpts.Context = ctx
	partial, err := Stream(sc, seeds, interruptAfter(SweepReducer(), 10, cancel), killOpts)
	if err != context.Canceled {
		t.Fatalf("interrupted campaign returned err=%v, want context.Canceled", err)
	}
	if partial.Runs >= want.Runs {
		t.Fatalf("interrupted campaign merged all %d runs; the kill was a no-op", partial.Runs)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	resumed, err := Stream(sc, seeds, SweepReducer(), opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertStatsEqual(t, "resumed", resumed, want)

	// The completed checkpoint short-circuits: zero runs executed.
	var folded atomic.Int64
	counting := SweepReducer()
	inner := counting.Fold
	counting.Fold = func(st SweepStats, r Result) SweepStats {
		folded.Add(1)
		return inner(st, r)
	}
	again, err := Stream(sc, seeds, counting, opts)
	if err != nil {
		t.Fatalf("re-run on completed checkpoint: %v", err)
	}
	assertStatsEqual(t, "completed-checkpoint", again, want)
	if folded.Load() != 0 {
		t.Fatalf("completed checkpoint still executed %d runs", folded.Load())
	}
}

// TestCheckpointMismatchRejected pins the identity check: a checkpoint
// from a different campaign (other seed range / chunking) must refuse
// to resume instead of silently merging incompatible state.
func TestCheckpointMismatchRejected(t *testing.T) {
	t.Parallel()
	sc := testScenario(nil)
	path := filepath.Join(t.TempDir(), "mismatch.ckpt")
	if _, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(sc, Seeds(16), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err == nil {
		t.Fatal("seed-range mismatch was not rejected")
	}
	if _, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 2, Checkpoint: path}); err == nil {
		t.Fatal("chunk-size mismatch was not rejected")
	}
}

// TestSweepStatsJSONRoundTrip pins the checkpoint serialization of the
// standard accumulator: a fold → JSON → fold-resume cycle must be
// lossless, including the histogram and stop counters.
func TestSweepStatsJSONRoundTrip(t *testing.T) {
	t.Parallel()
	st := refStats(t, testScenario(&sim.LinkFaults{DropPct: 25}), Seeds(6))
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "round-trip", back, st)
}

// TestStreamEmptyRange pins the degenerate case.
func TestStreamEmptyRange(t *testing.T) {
	t.Parallel()
	got, err := Stream(testScenario(nil), Seeds(0), SweepReducer(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 0 || got.Digest != "" {
		t.Fatalf("empty range produced %+v", got)
	}
}
