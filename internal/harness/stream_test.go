package harness

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"realisticfd/internal/sim"
)

// refStats folds retained Sweep results sequentially in seed order:
// the reference the streaming path must reproduce exactly.
func refStats(t *testing.T, sc Scenario, seeds SeedRange) SweepStats {
	t.Helper()
	red := SweepReducer()
	st := red.New()
	for _, r := range Sweep(sc, seeds, 1) {
		st = red.Fold(st, r)
	}
	return st
}

func assertStatsEqual(t *testing.T, label string, got, want SweepStats) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: streaming stats diverged:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestStreamMatchesRetained is the streaming-vs-retained equivalence
// gate: Reduce over reused run contexts, at any worker count and chunk
// size, must equal a sequential fold over fully retained traces — for
// clean and lossy links alike.
func TestStreamMatchesRetained(t *testing.T) {
	t.Parallel()
	for _, faults := range []*sim.LinkFaults{
		nil,
		{DropPct: 20, MaxExtraDelay: 3},
	} {
		sc := testScenario(faults)
		want := refStats(t, sc, Seeds(24))
		if want.Runs != 24 || want.Errors != 0 {
			t.Fatalf("reference sweep: %+v", want)
		}
		for _, opts := range []StreamOptions{
			{Workers: 1, ChunkSize: 24},
			{Workers: 2 * runtime.GOMAXPROCS(0), ChunkSize: 5},
			{Workers: 3, ChunkSize: 1},
		} {
			got, err := Stream(sc, Seeds(24), SweepReducer(), opts)
			if err != nil {
				t.Fatalf("Stream(%+v): %v", opts, err)
			}
			assertStatsEqual(t, "faults/chunked", got, want)
		}
		got := Reduce(sc, Seeds(24), 0, SweepReducer())
		assertStatsEqual(t, "Reduce", got, want)
	}
}

// TestStreamMergeRace exercises the merge/checkpoint coordinator under
// maximum contention; its value is running under -race in CI.
func TestStreamMergeRace(t *testing.T) {
	t.Parallel()
	sc := testScenario(&sim.LinkFaults{DropPct: 10})
	path := filepath.Join(t.TempDir(), "race.ckpt")
	got, err := Stream(sc, Seeds(32), SweepReducer(), StreamOptions{
		Workers: 4 * runtime.GOMAXPROCS(0), ChunkSize: 1, Checkpoint: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 32 {
		t.Fatalf("streamed %d runs, want 32", got.Runs)
	}
}

// interruptAfter cancels ctx after the reducer has folded n runs —
// deliberately not aligned to a chunk boundary, so the kill lands
// mid-chunk and the partial chunk must be recomputed on resume.
func interruptAfter(red Reducer[SweepStats], n int64, cancel context.CancelFunc) Reducer[SweepStats] {
	var folded atomic.Int64
	inner := red.Fold
	red.Fold = func(st SweepStats, r Result) SweepStats {
		if folded.Add(1) == n {
			cancel()
		}
		return inner(st, r)
	}
	return red
}

// TestCheckpointResume kills a checkpointed campaign mid-chunk, then
// resumes it and checks the merged accumulator equals an uninterrupted
// run's. A third invocation must short-circuit on the completed
// checkpoint without executing anything.
func TestCheckpointResume(t *testing.T) {
	t.Parallel()
	sc := testScenario(&sim.LinkFaults{DropPct: 15, MaxExtraDelay: 2})
	seeds := Seeds(30)
	want := refStats(t, sc, seeds)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")
	opts := StreamOptions{Workers: 2, ChunkSize: 4, Checkpoint: path}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killOpts := opts
	killOpts.Context = ctx
	partial, err := Stream(sc, seeds, interruptAfter(SweepReducer(), 10, cancel), killOpts)
	if err != context.Canceled {
		t.Fatalf("interrupted campaign returned err=%v, want context.Canceled", err)
	}
	if partial.Runs >= want.Runs {
		t.Fatalf("interrupted campaign merged all %d runs; the kill was a no-op", partial.Runs)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	resumed, err := Stream(sc, seeds, SweepReducer(), opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	assertStatsEqual(t, "resumed", resumed, want)

	// The completed checkpoint short-circuits: zero runs executed.
	var folded atomic.Int64
	counting := SweepReducer()
	inner := counting.Fold
	counting.Fold = func(st SweepStats, r Result) SweepStats {
		folded.Add(1)
		return inner(st, r)
	}
	again, err := Stream(sc, seeds, counting, opts)
	if err != nil {
		t.Fatalf("re-run on completed checkpoint: %v", err)
	}
	assertStatsEqual(t, "completed-checkpoint", again, want)
	if folded.Load() != 0 {
		t.Fatalf("completed checkpoint still executed %d runs", folded.Load())
	}
}

// TestCheckpointMismatchRejected pins the identity check: a checkpoint
// from a different campaign (other seed range / chunking) must refuse
// to resume instead of silently merging incompatible state.
func TestCheckpointMismatchRejected(t *testing.T) {
	t.Parallel()
	sc := testScenario(nil)
	path := filepath.Join(t.TempDir(), "mismatch.ckpt")
	if _, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(sc, Seeds(16), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err == nil {
		t.Fatal("seed-range mismatch was not rejected")
	}
	if _, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 2, Checkpoint: path}); err == nil {
		t.Fatal("chunk-size mismatch was not rejected")
	}
}

// TestCheckpointConfigChangeRejected is the regression test for the
// name-only checkpoint identity bug: two campaigns with the same
// scenario name but different fault plans used to resume from each
// other's checkpoints, silently merging incompatible runs. The v2
// identity includes a config digest (declarative ConfigDigest, or the
// programmatic Fingerprint fallback), so the same name with a changed
// drop% must refuse to resume.
func TestCheckpointConfigChangeRejected(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "config.ckpt")
	sc := testScenario(&sim.LinkFaults{DropPct: 10})
	if _, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err != nil {
		t.Fatal(err)
	}

	changed := testScenario(&sim.LinkFaults{DropPct: 30}) // same Name, different faults
	if changed.Name != sc.Name {
		t.Fatalf("test scenarios must share a name: %q vs %q", changed.Name, sc.Name)
	}
	if _, err := Stream(changed, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path}); err == nil {
		t.Fatal("changed drop%% under the same scenario name was not rejected")
	}

	// The identical configuration still short-circuits on the completed
	// checkpoint.
	if _, err := Stream(testScenario(&sim.LinkFaults{DropPct: 10}), Seeds(8), SweepReducer(),
		StreamOptions{ChunkSize: 4, Checkpoint: path}); err != nil {
		t.Fatalf("identical campaign rejected its own checkpoint: %v", err)
	}

	// A declarative ConfigDigest overrides the fingerprint and is
	// checked the same way.
	digested := sc
	digested.ConfigDigest = "sha256:aaaa"
	path2 := filepath.Join(t.TempDir(), "digest.ckpt")
	if _, err := Stream(digested, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path2}); err != nil {
		t.Fatal(err)
	}
	digested.ConfigDigest = "sha256:bbbb"
	if _, err := Stream(digested, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path2}); err == nil {
		t.Fatal("changed ConfigDigest under the same scenario name was not rejected")
	}
}

// TestCheckpointV1Rejected pins the schema migration: a v1 checkpoint
// has no config digest to verify, so resuming from one must fail with
// a clear error rather than fall through to a field-by-field mismatch.
func TestCheckpointV1Rejected(t *testing.T) {
	t.Parallel()
	sc := testScenario(nil)
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	v1 := []byte(`{"schema":"realisticfd-sweep-checkpoint/v1","scenario":"sflooding","seed_from":0,"seed_to":8,"chunk_size":4,"complete":true,"next_chunk":2,"prefix":{}}`)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Stream(sc, Seeds(8), SweepReducer(), StreamOptions{ChunkSize: 4, Checkpoint: path})
	if err == nil {
		t.Fatal("v1 checkpoint was not rejected")
	}
	if !strings.Contains(err.Error(), "v1") {
		t.Fatalf("v1 rejection error does not name the retired format: %v", err)
	}
}

// TestSeedRangeValidation pins the range guard: inverted ranges and
// counts that overflow int are rejected at the sweep entry points
// instead of misbehaving downstream.
func TestSeedRangeValidation(t *testing.T) {
	t.Parallel()
	inverted := SeedRange{From: 10, To: 3}
	if err := inverted.Validate(); err == nil {
		t.Fatal("inverted range validated")
	}
	if _, err := Stream(testScenario(nil), inverted, SweepReducer(), StreamOptions{}); err == nil {
		t.Fatal("Stream accepted an inverted range")
	}
	overflow := SeedRange{From: math.MinInt64, To: math.MaxInt64}
	if err := overflow.Validate(); err == nil {
		t.Fatal("overflowing range validated")
	}
	if _, err := Stream(testScenario(nil), overflow, SweepReducer(), StreamOptions{}); err == nil {
		t.Fatal("Stream accepted a range whose count overflows int")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SeedMap did not reject an inverted range")
			}
		}()
		SeedMap(inverted, 1, func(seed int64) int { return 0 })
	}()
	if err := (SeedRange{From: 5, To: 5}).Validate(); err != nil {
		t.Fatalf("empty range rejected: %v", err)
	}
	if got := Sweep(testScenario(nil), SeedRange{From: 5, To: 5}, 1); got != nil {
		t.Fatalf("empty range swept %d runs", len(got))
	}
}

// TestSweepStatsJSONRoundTrip pins the checkpoint serialization of the
// standard accumulator: a fold → JSON → fold-resume cycle must be
// lossless, including the histogram and stop counters.
func TestSweepStatsJSONRoundTrip(t *testing.T) {
	t.Parallel()
	st := refStats(t, testScenario(&sim.LinkFaults{DropPct: 25}), Seeds(6))
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	assertStatsEqual(t, "round-trip", back, st)
}

// TestStreamEmptyRange pins the degenerate case.
func TestStreamEmptyRange(t *testing.T) {
	t.Parallel()
	got, err := Stream(testScenario(nil), Seeds(0), SweepReducer(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 0 || got.Digest != "" {
		t.Fatalf("empty range produced %+v", got)
	}
}
