package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// SweepStats is the standard streaming-sweep accumulator: everything
// the large campaigns keep per run, with nothing referencing back into
// a trace. It is JSON-serializable, which is what lets Stream
// checkpoint a half-finished million-seed campaign and resume it.
//
// The digest is an order-independent fingerprint: each run contributes
// sha256(seed ":" runDigest), and contributions are combined by XOR.
// Tagging with the seed keeps the aggregate sensitive to *which* run
// produced *which* digest while making the combine associative and
// commutative — so the fingerprint is independent of chunk size and
// worker count, and a resumed campaign reproduces the uninterrupted
// one byte for byte.
type SweepStats struct {
	// Runs counts completed runs (including errored ones).
	Runs int64 `json:"runs"`
	// Errors counts runs that failed with a configuration error.
	Errors int64 `json:"errors"`
	// Digest is the hex XOR-fold of per-run seed-tagged digests.
	Digest string `json:"digest"`
	// Stops counts runs per stop reason.
	Stops map[string]int64 `json:"stops,omitempty"`
	// Decisions totals decide events across all runs and instances.
	Decisions int64 `json:"decisions"`
	// Events totals scheduled steps across all runs.
	Events int64 `json:"events"`
	// Undelivered totals final message-buffer sizes.
	Undelivered int64 `json:"undelivered"`
	// DurationHist is a log2 histogram of run end times: bucket i
	// counts runs whose MaxTime t satisfies 2^(i-1) ≤ t < 2^i (bucket
	// 0 holds t ≤ 0, bucket 31 everything ≥ 2^30).
	DurationHist [32]int64 `json:"duration_hist"`
}

// durationBucket maps a run end time to its log2 histogram bucket.
func durationBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > 31 {
		b = 31
	}
	return b
}

// xorDigest folds one seed-tagged run digest into the hex accumulator.
func xorDigest(acc string, seed int64, runDigest string) string {
	var cur [sha256.Size]byte
	if acc != "" {
		b, err := hex.DecodeString(acc)
		if err != nil || len(b) != sha256.Size {
			panic(fmt.Sprintf("harness: malformed sweep digest %q", acc))
		}
		copy(cur[:], b)
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%d:%s", seed, runDigest)))
	for i := range cur {
		cur[i] ^= h[i]
	}
	return hex.EncodeToString(cur[:])
}

// xorHex XORs two hex digest accumulators (either may be empty).
func xorHex(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	ab, err1 := hex.DecodeString(a)
	bb, err2 := hex.DecodeString(b)
	if err1 != nil || err2 != nil || len(ab) != len(bb) {
		panic(fmt.Sprintf("harness: malformed sweep digests %q / %q", a, b))
	}
	for i := range ab {
		ab[i] ^= bb[i]
	}
	return hex.EncodeToString(ab)
}

// fold absorbs one run. The trace is read while still owned by the
// worker's run context and nothing of it is retained.
func (st SweepStats) fold(r Result) SweepStats {
	st.Runs++
	if r.Err != nil {
		st.Errors++
		st.Digest = xorDigest(st.Digest, r.Seed, "err:"+r.Err.Error())
		return st
	}
	s := r.Trace.Summary()
	st.Digest = xorDigest(st.Digest, r.Seed, s.Digest)
	if st.Stops == nil {
		st.Stops = make(map[string]int64, 4)
	}
	st.Stops[s.Stopped.String()]++
	st.Decisions += int64(s.Decisions)
	st.Events += int64(s.Events)
	st.Undelivered += int64(s.Undelivered)
	st.DurationHist[durationBucket(int64(s.MaxTime))]++
	return st
}

// merge combines two disjoint accumulators.
func (st SweepStats) merge(o SweepStats) SweepStats {
	st.Runs += o.Runs
	st.Errors += o.Errors
	st.Digest = xorHex(st.Digest, o.Digest)
	if len(o.Stops) > 0 && st.Stops == nil {
		st.Stops = make(map[string]int64, len(o.Stops))
	}
	for k, v := range o.Stops {
		st.Stops[k] += v
	}
	st.Decisions += o.Decisions
	st.Events += o.Events
	st.Undelivered += o.Undelivered
	for i := range st.DurationHist {
		st.DurationHist[i] += o.DurationHist[i]
	}
	return st
}

// SweepReducer returns the standard reducer over SweepStats: the
// accumulator behind cmd/sweep, the bench sweep and any campaign that
// wants digests + counters + latency histograms without retaining a
// single trace.
func SweepReducer() Reducer[SweepStats] {
	return Reducer[SweepStats]{
		New:   func() SweepStats { return SweepStats{} },
		Fold:  func(st SweepStats, r Result) SweepStats { return st.fold(r) },
		Merge: func(a, b SweepStats) SweepStats { return a.merge(b) },
	}
}
