// Package harness is the parallel scenario-sweep engine behind the
// experiment tables and the wide property sweeps: a Scenario describes
// a family of runs that differ only by seed, and Sweep fans the seeded
// sim.Execute calls across a worker pool sized to GOMAXPROCS.
//
// Determinism is the contract (DESIGN.md §5): every run builds its own
// pattern, policy and hooks from the scenario's factories, each run is
// a pure function of its seed, and results come back ordered by seed —
// so a sweep at parallelism 32 is byte-identical to the same sweep at
// parallelism 1. The experiments lean on that to keep E-tables
// reproducible while saturating the machine, and the race detector
// (go test -race ./internal/harness) keeps the isolation honest.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Scenario is a family of simulator runs differing only by seed: the
// system, the detector, the automaton, the fault plan and per-run
// factories for the stateful pieces.
//
// Factories, not values: a sim.Policy is stateful per run, the engine
// extends failure patterns in place, and AfterStep hooks usually close
// over per-run state. Sharing any of those across concurrently
// executing runs would be both a data race and a determinism bug, so
// the scenario constructs fresh ones for every seed. The shared fields
// (Automaton, Oracle, Faults) are safe by the package contracts:
// automata spawn per-process state, oracles are pure, and the fault
// plan is copied into a fresh FaultyPolicy per run.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// ConfigDigest, when non-empty, is the digest of the declarative
	// configuration the scenario was built from (scenario.Spec's
	// ConfigDigest). It is part of a streaming checkpoint's campaign
	// identity, so two campaigns that share a Name but differ in any
	// configured detail refuse to resume from each other's checkpoints.
	// Programmatic scenarios may leave it empty; Stream then falls back
	// to Fingerprint.
	ConfigDigest string
	// N is the system size |Ω|.
	N int
	// Automaton is the algorithm under test (shared; Spawn is per-run).
	Automaton sim.Automaton
	// Oracle is the failure detector (shared; pure by contract).
	Oracle fd.Oracle
	// OracleFor, when non-nil, supplies a per-seed oracle instead of
	// Oracle — for noisy detectors whose noise stream is keyed on the
	// sweep seed (the ◇S experiments). Must be safe for concurrent use.
	OracleFor func(seed int64) fd.Oracle
	// Horizon bounds each run.
	Horizon model.Time
	// Pattern returns a fresh failure pattern for one run; nil means
	// failure-free. Never return a shared *FailurePattern: the engine
	// mutates it.
	Pattern func() *model.FailurePattern
	// Policy returns a fresh scheduling policy for one run; nil means
	// FairPolicy.
	Policy func() sim.Policy
	// Faults, when non-nil and active, wraps the policy in a
	// sim.FaultyPolicy seeded from the run's RNG: the same seed replays
	// the same losses, delays and partitions.
	Faults *sim.LinkFaults
	// StopWhen returns a fresh stop predicate for one run; nil means
	// run to the horizon.
	StopWhen func() func(*sim.Trace) bool
	// AfterStep returns a fresh per-step hook for one run; nil means
	// none. Adversarial scenarios close over per-run state here.
	AfterStep func() func(*sim.Run, *sim.EventRecord)
}

// Config assembles the sim.Config of the scenario's run at the given
// seed, instantiating every per-run factory.
func (sc Scenario) Config(seed int64) sim.Config {
	cfg := sim.Config{
		N:         sc.N,
		Automaton: sc.Automaton,
		Oracle:    sc.Oracle,
		Horizon:   sc.Horizon,
		Seed:      seed,
	}
	if sc.OracleFor != nil {
		cfg.Oracle = sc.OracleFor(seed)
	}
	if sc.Pattern != nil {
		cfg.Pattern = sc.Pattern()
	}
	var pol sim.Policy
	if sc.Policy != nil {
		pol = sc.Policy()
	}
	if sc.Faults != nil && sc.Faults.Active() {
		pol = &sim.FaultyPolicy{Inner: pol, Faults: *sc.Faults}
	}
	cfg.Policy = pol
	if sc.StopWhen != nil {
		cfg.StopWhen = sc.StopWhen()
	}
	if sc.AfterStep != nil {
		cfg.AfterStep = sc.AfterStep()
	}
	return cfg
}

// Run executes the scenario's run at one seed.
func (sc Scenario) Run(seed int64) Result {
	tr, err := sim.Execute(sc.Config(seed))
	return Result{Seed: seed, Trace: tr, Err: err}
}

// RunIn executes the scenario's run at one seed in a reused run
// context: the streaming hot path. The result's trace is valid only
// until the context's next run — consumers fold it immediately
// (Reducer.Fold) and retain summaries, never the trace.
func (sc Scenario) RunIn(rc *sim.RunContext, seed int64) Result {
	tr, err := rc.Execute(sc.Config(seed))
	return Result{Seed: seed, Trace: tr, Err: err}
}

// Fingerprint is the best-effort identity digest of a programmatic
// scenario, used as the checkpoint campaign identity when ConfigDigest
// is empty. It hashes every introspectable piece — name, size,
// horizon, the fault plan, the oracle's self-description, one
// instantiated failure pattern and the dynamic types of the automaton
// and policy. Behavior hidden inside closures (StopWhen, AfterStep,
// policy parameters) is beyond its reach, which is exactly why
// declaratively built scenarios carry a real ConfigDigest instead.
func (sc Scenario) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s\nn=%d\nhorizon=%d\n", sc.Name, sc.N, sc.Horizon)
	fmt.Fprintf(h, "automaton=%T\n", sc.Automaton)
	switch {
	case sc.OracleFor != nil:
		fmt.Fprintf(h, "oracle=per-seed:%s\n", sc.OracleFor(0).Name())
	case sc.Oracle != nil:
		fmt.Fprintf(h, "oracle=%s\n", sc.Oracle.Name())
	}
	if sc.Pattern != nil {
		fmt.Fprintf(h, "pattern=%v\n", sc.Pattern())
	}
	if sc.Policy != nil {
		fmt.Fprintf(h, "policy=%T\n", sc.Policy())
	}
	if sc.Faults != nil {
		fmt.Fprintf(h, "faults=%s\n", sc.Faults.String())
	}
	fmt.Fprintf(h, "stop=%v\nafterstep=%v\n", sc.StopWhen != nil, sc.AfterStep != nil)
	return "fp:" + hex.EncodeToString(h.Sum(nil))
}

// identityDigest is the campaign identity Stream records in its
// checkpoints: the declarative config digest when the scenario has
// one, the programmatic fingerprint otherwise.
func (sc Scenario) identityDigest() string {
	if sc.ConfigDigest != "" {
		return sc.ConfigDigest
	}
	return sc.Fingerprint()
}

// Result is the outcome of one seeded run.
type Result struct {
	Seed  int64
	Trace *sim.Trace
	Err   error
}

// SeedRange is the half-open seed interval [From, To) of a sweep.
type SeedRange struct {
	From, To int64
}

// Seeds is the range {0, 1, ..., n-1}.
func Seeds(n int) SeedRange { return SeedRange{From: 0, To: int64(n)} }

// Validate rejects ranges a sweep cannot honestly execute: an inverted
// range (To < From — almost always a caller arithmetic bug; an empty
// sweep is spelled To == From) and a range whose seed count does not
// fit in int, which would otherwise be silently narrowed by Count and
// misbehave downstream. Every sweep entry point (Sweep, Map, SeedMap,
// Stream, Reduce) validates its range before running anything.
func (sr SeedRange) Validate() error {
	if sr.To < sr.From {
		return fmt.Errorf("harness: inverted seed range [%d, %d)", sr.From, sr.To)
	}
	// uint64 subtraction is exact for To ≥ From even when the int64
	// difference would overflow (e.g. From = MinInt64, To = MaxInt64).
	if n := uint64(sr.To) - uint64(sr.From); n > uint64(math.MaxInt) {
		return fmt.Errorf("harness: seed range [%d, %d) holds %d seeds, more than fit in int", sr.From, sr.To, n)
	}
	return nil
}

// Count returns the number of seeds in the range. It is meaningful
// only for ranges that pass Validate; the sweep entry points enforce
// that before counting.
func (sr SeedRange) Count() int {
	if sr.To <= sr.From {
		return 0
	}
	return int(uint64(sr.To) - uint64(sr.From))
}

// Sweep runs the scenario at every seed in the range across a worker
// pool and returns the results ordered by seed. workers ≤ 0 means
// GOMAXPROCS. Beware of memory: every trace is retained; prefer Map
// when only a per-run summary is needed, and Reduce/Stream when only
// aggregates are — streaming mode recycles run contexts and holds
// memory flat across arbitrarily many seeds.
func Sweep(sc Scenario, seeds SeedRange, workers int) []Result {
	return Map(sc, seeds, workers, func(r Result) Result { return r })
}

// Map runs the scenario at every seed and applies analyze to each
// result inside the worker (so traces can be released as soon as they
// are summarized), returning the analyses ordered by seed. The
// analyze function must be safe for concurrent use; it receives runs
// in arbitrary order but its return values are slotted by seed, so the
// output — and anything folded over it — is independent of workers.
func Map[T any](sc Scenario, seeds SeedRange, workers int, analyze func(Result) T) []T {
	return SeedMap(seeds, workers, func(seed int64) T {
		return analyze(sc.Run(seed))
	})
}

// SeedMap is the generic seeded fan-out: job runs once per seed on the
// worker pool and the return values come back ordered by seed. It is
// the substrate for sweeps whose runs are not plain sim.Execute calls
// (the Lemma 4.1 adversary, the §6.3 collapse witness, ...). job must
// be safe for concurrent use and deterministic in its seed.
func SeedMap[T any](seeds SeedRange, workers int, job func(seed int64) T) []T {
	if err := seeds.Validate(); err != nil {
		// No error return in the retained-sweep API; an invalid range is
		// a caller bug, reported loudly instead of misbehaving.
		panic(err)
	}
	count := seeds.Count()
	if count == 0 {
		return nil
	}
	out := make([]T, count)
	parDo(count, workers, func(i int) {
		out[i] = job(seeds.From + int64(i))
	})
	return out
}

// ParMap applies fn to every item on the worker pool, returning the
// results in input order. It is the non-seeded face of the harness,
// used e.g. by the QoS sweep to replay estimator configurations in
// parallel. fn must be safe for concurrent use.
func ParMap[T, R any](items []T, workers int, fn func(int, T) R) []R {
	if len(items) == 0 {
		return nil
	}
	out := make([]R, len(items))
	parDo(len(items), workers, func(i int) {
		out[i] = fn(i, items[i])
	})
	return out
}

// parDo runs job(0..count-1) on min(workers, count) goroutines pulling
// indices from a shared counter. Slot i of any output belongs to index
// i alone, which is what makes the parallel results deterministic.
func parDo(count, workers int, job func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= count {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
