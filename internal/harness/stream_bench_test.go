package harness

import (
	"fmt"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// benchAutomaton mirrors cmd/bench's busy workload: one seed
// broadcast per process, an echo broadcast every 8th receipt.
type benchAutomaton struct{}

type benchProc struct {
	n    int
	seen int
	sent bool
}

func (benchAutomaton) Spawn(_ model.ProcessID, n int) sim.Process {
	return &benchProc{n: n}
}

func (p *benchProc) Step(in *sim.Message, _ model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if !p.sent {
		p.sent = true
		acts.Sends = sim.Broadcast(p.n, "seed")
	}
	if in != nil {
		p.seen++
		if p.seen%8 == 0 {
			acts.Sends = sim.Broadcast(p.n, "echo")
		}
	}
	return acts
}

func benchScenario() Scenario {
	return Scenario{
		Name: "bench-n64", N: 64,
		Automaton: benchAutomaton{},
		Oracle:    fd.Perfect{Delay: 2},
		Horizon:   2000,
		Pattern: func() *model.FailurePattern {
			return model.MustPattern(64).MustCrash(7, 300).MustCrash(21, 900)
		},
		Policy: func() sim.Policy { return &sim.RandomFairPolicy{} },
	}
}

// BenchmarkSweepRetained is the memory-heavy baseline: every trace of
// the sweep is retained until the whole batch returns.
func BenchmarkSweepRetained(b *testing.B) {
	sc := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs := Sweep(sc, Seeds(32), 0)
		if len(rs) != 32 {
			b.Fatalf("%d results", len(rs))
		}
	}
}

// BenchmarkSweepStreaming is the same sweep folded through streaming
// run contexts: no trace outlives its run.
func BenchmarkSweepStreaming(b *testing.B) {
	sc := benchScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := Reduce(sc, Seeds(32), 0, SweepReducer())
		if st.Runs != 32 || st.Errors != 0 {
			b.Fatal(fmt.Sprintf("stats %+v", st))
		}
	}
}
