// Package experiments regenerates the paper's results as tables
// (E1–E9, indexed in DESIGN.md §4). The paper is a theory paper with
// no numeric tables of its own; each experiment is the executable
// form of one lemma/proposition/remark, evaluated over seeded
// adversarial runs. cmd/experiments prints the tables; EXPERIMENTS.md
// records expected-vs-measured; bench_test.go times each generator.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
)

// workerCount holds the sweep parallelism override (0 = GOMAXPROCS).
// It is atomic so tests can flip it while other tests read it; the
// tables are byte-identical at any worker count, so the exact moment a
// change lands never matters.
var workerCount atomic.Int32

// SetWorkers sets the worker-pool size used by every experiment sweep;
// n ≤ 0 restores the default (GOMAXPROCS). cmd/experiments wires its
// -parallel flag here.
func SetWorkers(n int) { workerCount.Store(int32(n)) }

// Workers returns the sweep worker-pool size currently in effect.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement under test
	Columns []string
	Rows    [][]string
	Verdict string // one-line outcome
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)

	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		return "  " + strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Columns))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	fmt.Fprintf(w, "verdict: %s\n\n", t.Verdict)
}

// RunAll executes every experiment and prints its table.
func RunAll(w io.Writer, seeds int) {
	for _, gen := range []func(int) *Table{
		E1Totality, E2Adversary, E3Reduction, E4TRB, E5Marabout,
		E6PartialPerfect, E7Collapse, E8MajorityCrossover,
	} {
		gen(seeds).Fprint(w)
	}
	E9QoS().Fprint(w)
}

// mark renders booleans as table-friendly glyphs.
func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
