package experiments

import (
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/scenario"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// The checked-in scenario files replaced hand-written harness.Scenario
// literals. This suite keeps the retired literals as references and
// proves the file-built scenarios replay the exact same runs: per-seed
// trace digests must be byte-identical. Golden tables pin the same
// property at the table level; this pins it per scenario, with the
// struct form visible next to the file name.

const equivSeeds = 2

func traceDigests(t *testing.T, sc harness.Scenario, seeds int) []string {
	t.Helper()
	got, err := harness.Stream(sc, harness.Seeds(seeds), harness.Reducer[[]string]{
		New: func() []string { return nil },
		Fold: func(acc []string, r harness.Result) []string {
			if r.Err != nil {
				return append(acc, "error: "+r.Err.Error())
			}
			return append(acc, r.Trace.Digest())
		},
		Merge: func(a, b []string) []string { return append(a, b...) },
	}, harness.StreamOptions{Workers: 2, ChunkSize: 1})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	return got
}

func TestScenarioFilesMatchStructs(t *testing.T) {
	rf := func() sim.Policy { return &sim.RandomFairPolicy{} }
	stopDecided := func() func(*sim.Trace) bool { return sim.CorrectDecided(0) }
	props := consensus.DistinctProposals(expN)
	crashPat := func(crashes int, times ...model.Time) func() *model.FailurePattern {
		return func() *model.FailurePattern {
			pat := model.MustPattern(expN)
			for i := 0; i < crashes && i < len(times); i++ {
				pat.MustCrash(model.ProcessID(i+1), times[i])
			}
			return pat
		}
	}
	noCrash := crashPat(0)
	esOracleFor := func(seed int64) fd.Oracle {
		return fd.EventuallyStrong{GST: 100, Delay: 3, Seed: uint64(seed), FalseRate: 10}
	}

	cases := []struct {
		label    string
		file     string
		override func(*scenario.Spec)
		ref      harness.Scenario
	}{
		{
			label: "E1",
			file:  "E1",
			ref: harness.Scenario{
				Name: "E1", N: expN,
				Automaton: consensus.SFlooding{Proposals: props},
				Oracle:    fd.Perfect{Delay: 2}, Horizon: 20000,
				Pattern: noCrash, Policy: rf, StopWhen: stopDecided,
			},
		},
		{
			// The healing side-partition row: the spec's {1,2} boundary
			// compiles to an EdgeCut of the crossing edges, which must
			// replay identically to the classic ProcessSet Partition.
			label: "E1/realistic-strong+healing+2crashes",
			file:  "E1",
			override: func(s *scenario.Spec) {
				s.Oracle = scenario.OracleSpec{Kind: scenario.OracleRealisticStrong, BaseDelay: 1, Seed: 3, JitterMax: 4}
				s.Faults = healingNetSpec()
				s.Crashes = crashSpecs(2, 30, 90, 150, 210)
			},
			ref: harness.Scenario{
				Name: "E1", N: expN,
				Automaton: consensus.SFlooding{Proposals: props},
				Oracle:    fd.RealisticStrong{BaseDelay: 1, Seed: 3, JitterMax: 4}, Horizon: 20000,
				Pattern: crashPat(2, 30, 90, 150, 210),
				Policy:  rf,
				Faults: &sim.LinkFaults{
					MaxExtraDelay: 6,
					Partitions: []sim.Partition{
						{Side: model.NewProcessSet(1, 2), From: 40, Until: 400},
					},
				},
				StopWhen: stopDecided,
			},
		},
		{
			label: "E3",
			file:  "E3",
			ref: harness.Scenario{
				Name: "E3", N: expN,
				Automaton: core.Reduction{
					Factory: func(int) sim.Automaton {
						return consensus.SFlooding{Proposals: props}
					},
					MaxInstances: 40,
				},
				Oracle: fd.Perfect{Delay: 2}, Horizon: 120000,
				Pattern: noCrash, Policy: rf,
				StopWhen: func() func(*sim.Trace) bool {
					return func(tr *sim.Trace) bool {
						return tr.Pattern.Correct().SubsetOf(tr.DecidedSet(39))
					}
				},
			},
		},
		{
			label: "E4",
			file:  "E4",
			override: func(s *scenario.Spec) {
				s.Crashes = crashSpecs(2, 1, 60, 120, 180)
			},
			ref: harness.Scenario{
				Name: "E4", N: expN,
				Automaton: trb.Broadcast{Waves: 4},
				Oracle:    fd.Perfect{Delay: 2}, Horizon: 200000,
				Pattern:  crashPat(2, 1, 60, 120, 180),
				Policy:   rf,
				StopWhen: func() func(*sim.Trace) bool { return trb.AllDelivered(4) },
			},
		},
		{
			label: "E5",
			file:  "E5",
			override: func(s *scenario.Spec) {
				s.Crashes = crashSpecs(1, 30, 35, 40, 45)
			},
			ref: harness.Scenario{
				Name: "E5", N: expN,
				Automaton: consensus.MaraboutConsensus{Proposals: props},
				Oracle:    fd.Marabout{}, Horizon: 20000,
				Pattern: crashPat(1, 30, 35, 40, 45),
				Policy:  rf, StopWhen: stopDecided,
			},
		},
		{
			label: "E6-benign",
			file:  "E6-benign",
			ref: harness.Scenario{
				Name: "E6-benign", N: expN,
				Automaton: consensus.PartialOrder{Proposals: props},
				Oracle:    fd.PartiallyPerfect{Delay: 2}, Horizon: 20000,
				Pattern: noCrash, Policy: rf, StopWhen: stopDecided,
			},
		},
		{
			label: "E6-adversarial",
			file:  "E6-adversarial",
			ref: harness.Scenario{
				Name: "E6-adversarial", N: expN,
				Automaton: consensus.PartialOrder{Proposals: props},
				Oracle:    fd.PartiallyPerfect{Delay: 2}, Horizon: 20000,
				Pattern: noCrash,
				Policy: func() sim.Policy {
					return &sim.DelayPolicy{Target: model.NewProcessSet(1), Until: 20001}
				},
				AfterStep: func() func(*sim.Run, *sim.EventRecord) {
					crashed := false
					return func(r *sim.Run, ev *sim.EventRecord) {
						if crashed || ev.P != 1 {
							return
						}
						for _, pe := range ev.Events {
							if pe.Kind == sim.KindDecide {
								crashed = true
								_ = r.Crash(1)
							}
						}
					}
				},
				StopWhen: stopDecided,
			},
		},
		{
			label: "E8-sflooding",
			file:  "E8-sflooding",
			override: func(s *scenario.Spec) {
				s.Crashes = crashSpecs(2, 5, 8, 11, 14)
			},
			ref: harness.Scenario{
				Name: "E8-sflooding", N: expN,
				Automaton: consensus.SFlooding{Proposals: props},
				Oracle:    fd.Perfect{Delay: 2}, Horizon: 20000,
				Pattern: crashPat(2, 5, 8, 11, 14),
				Policy:  rf, StopWhen: stopDecided,
			},
		},
		{
			label: "E8-rotating",
			file:  "E8-rotating",
			override: func(s *scenario.Spec) {
				s.Crashes = crashSpecs(1, 5, 8, 11, 14)
			},
			ref: harness.Scenario{
				Name: "E8-rotating", N: expN,
				Automaton: consensus.Rotating{Proposals: props},
				OracleFor: esOracleFor, Horizon: 20000,
				Pattern: crashPat(1, 5, 8, 11, 14),
				Policy:  rf, StopWhen: stopDecided,
			},
		},
		{
			label: "E8-rotating-lossy",
			file:  "E8-rotating-lossy",
			ref: harness.Scenario{
				Name: "E8-rotating-lossy", N: expN,
				Automaton: consensus.Rotating{Proposals: props},
				OracleFor: esOracleFor, Horizon: 6000,
				Pattern: noCrash, Policy: rf,
				Faults: &sim.LinkFaults{DropPct: 15, MaxExtraDelay: 4},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			s := baseSpec(tc.file)
			if tc.override != nil {
				tc.override(&s)
			}
			built := scenario.MustBuild(s)
			want := traceDigests(t, tc.ref, equivSeeds)
			got := traceDigests(t, built, equivSeeds)
			if len(got) != len(want) {
				t.Fatalf("digest count: file %d, struct %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("seed %d: file-built trace %s != struct-built %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestScenarioFilesComplete pins the inventory: every named experiment
// scenario has its file, every file parses, and each digest is stable
// across loads.
func TestScenarioFilesComplete(t *testing.T) {
	names := []string{
		"E1", "E3", "E4", "E5", "E6-benign", "E6-adversarial",
		"E8-sflooding", "E8-rotating", "E8-rotating-lossy",
	}
	entries, err := scenarioFiles.ReadDir("testdata/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Errorf("checked in %d scenario files, want %d", len(entries), len(names))
	}
	for _, name := range names {
		s := baseSpec(name)
		if s.Name != name {
			t.Errorf("file %s.json declares name %q", name, s.Name)
		}
		d1, err := s.ConfigDigest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d2, err := baseSpec(name).ConfigDigest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d1 != d2 {
			t.Errorf("%s: digest unstable across loads: %s vs %s", name, d1, d2)
		}
	}
}
