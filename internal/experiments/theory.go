package experiments

import (
	"fmt"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/heartbeat"
	"realisticfd/internal/model"
	"realisticfd/internal/qos"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

const expN = 5

// e1Patterns are the crash scenarios shared by several experiments.
func crashPattern(crashes int) *model.FailurePattern {
	pat := model.MustPattern(expN)
	times := []model.Time{30, 90, 150, 210}
	for i := 0; i < crashes && i < len(times); i++ {
		pat.MustCrash(model.ProcessID(i+1), times[i])
	}
	return pat
}

// E1Totality audits every decision of the S-based algorithm under
// realistic accurate detectors for the §4.2 totality property
// (Lemma 4.1).
func E1Totality(seeds int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Totality of realistic-detector consensus (Lemma 4.1)",
		Claim:   "every consensus algorithm using a realistic failure detector is total",
		Columns: []string{"detector", "crashes", "runs", "decisions", "non-total", "mean t(decide)"},
	}
	oracles := []fd.Oracle{
		fd.Perfect{Delay: 2},
		fd.Scribe{},
		fd.RealisticStrong{BaseDelay: 1, Seed: 3, JitterMax: 4},
	}
	allTotal := true
	for _, o := range oracles {
		for _, crashes := range []int{0, 1, 2, 4} {
			decisions, violations := 0, 0
			var sumT, runs int64
			for seed := int64(0); seed < int64(seeds); seed++ {
				pat := crashPattern(crashes)
				tr, err := sim.Execute(sim.Config{
					N: expN, Automaton: consensus.SFlooding{Proposals: consensus.DistinctProposals(expN)},
					Oracle: o, Pattern: pat, Horizon: 20000, Seed: seed,
					Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
				})
				if err != nil {
					continue
				}
				runs++
				for _, d := range tr.Decisions(0) {
					decisions++
					sumT += int64(d.T)
				}
				violations += len(core.TotalityReport(tr, 0))
			}
			if violations > 0 {
				allTotal = false
			}
			meanT := int64(0)
			if decisions > 0 {
				meanT = sumT / int64(decisions)
			}
			t.AddRow(o.Name(), fmt.Sprint(crashes), fmt.Sprint(runs),
				fmt.Sprint(decisions), fmt.Sprint(violations), fmt.Sprint(meanT))
		}
	}
	t.Verdict = fmt.Sprintf("all decisions total: %s (paper: total, by Lemma 4.1)", mark(allTotal))
	return t
}

// E2Adversary replays the Lemma 4.1 proof: the adversary forces any
// non-total run into disagreement via an indistinguishable-prefix
// continuation.
func E2Adversary(seeds int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Lemma 4.1 adversary: non-total ⇒ disagreement",
		Claim:   "a decision that skips a live process can be extended to violate agreement; with an accurate detector the attack must fail",
		Columns: []string{"seed", "mode", "prefix identical", "missing from chain", "decisions", "disagree"},
	}
	ok := true
	for seed := int64(0); seed < int64(seeds); seed++ {
		w, err := core.BuildDisagreement(core.AdversaryConfig{Seed: seed})
		if err != nil {
			t.AddRow(fmt.Sprint(seed), "noisy ◇S", "-", "-", "-", "error: "+err.Error())
			ok = false
			continue
		}
		t.AddRow(fmt.Sprint(seed), "noisy ◇S", mark(w.PrefixIdentical),
			w.NonTotal.Missing.String(),
			fmt.Sprintf("%v:%v vs %v:%v", w.FirstDecision.P, w.FirstDecision.Value, w.VictimDecision.P, w.VictimDecision.Value),
			mark(w.Disagree()))
		if !w.Disagree() || !w.PrefixIdentical {
			ok = false
		}
	}
	_, err := core.BuildDisagreement(core.AdversaryConfig{Seed: 0, Accurate: true})
	attackFails := err == core.ErrDecisionTotal
	t.AddRow("0", "accurate P", "-", "-", "-", "attack impossible: "+mark(attackFails))
	if !attackFails {
		ok = false
	}
	t.Verdict = fmt.Sprintf("adversary splits every non-total run and none with accurate detectors: %s", mark(ok))
	return t
}

// E3Reduction measures the T(D⇒P) emulation (Lemma 4.2 /
// Proposition 4.3).
func E3Reduction(seeds int) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "T(D⇒P): consensus sequence emulates a Perfect detector (Lemma 4.2)",
		Claim:   "piggybacked alive-tags + decisions yield strong completeness and strong accuracy",
		Columns: []string{"crashes", "runs", "accurate", "complete", "mean emulation lag (ticks)"},
	}
	const maxInst = 40
	ok := true
	for _, crashes := range []int{0, 1, 2, 4} {
		accurate, complete, runs := true, true, 0
		var lagSum, lagCnt int64
		for seed := int64(0); seed < int64(seeds); seed++ {
			pat := crashPattern(crashes)
			tr, err := sim.Execute(sim.Config{
				N: expN,
				Automaton: core.Reduction{
					Factory: func(int) sim.Automaton {
						return consensus.SFlooding{Proposals: consensus.DistinctProposals(expN)}
					},
					MaxInstances: maxInst,
				},
				Oracle: fd.Perfect{Delay: 2}, Pattern: pat, Horizon: 120000, Seed: seed,
				Policy: &sim.RandomFairPolicy{},
				StopWhen: func(tr *sim.Trace) bool {
					last := model.EmptySet()
					for _, d := range tr.Decisions(maxInst - 1) {
						last = last.Add(d.P)
					}
					return tr.Pattern.Correct().SubsetOf(last)
				},
			})
			if err != nil {
				continue
			}
			runs++
			h, err := core.ExtractEmulatedHistory(tr)
			if err != nil {
				continue
			}
			if fd.CheckStrongAccuracy(h, pat) != nil {
				accurate = false
			}
			if fd.CheckStrongCompleteness(h, pat) != nil {
				complete = false
			}
			// Emulation lag: crash → first correct process suspecting
			// it in output(P).
			for _, q := range pat.Faulty().Slice() {
				ct, _ := pat.CrashTime(q)
				best := int64(-1)
				for _, p := range pat.Correct().Slice() {
					if first, ever := h.EverSuspected(p, q); ever {
						if best < 0 || int64(first) < best {
							best = int64(first)
						}
					}
				}
				if best >= 0 {
					lagSum += best - int64(ct)
					lagCnt++
				}
			}
		}
		if !accurate || !complete {
			ok = false
		}
		lag := "-"
		if lagCnt > 0 {
			lag = fmt.Sprint(lagSum / lagCnt)
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(runs), mark(accurate), mark(complete), lag)
	}
	t.Verdict = fmt.Sprintf("emulated detector is Perfect in every run: %s (paper: P is the weakest realistic class for consensus)", mark(ok))
	return t
}

// E4TRB verifies Proposition 5.1 in both directions.
func E4TRB(seeds int) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Terminating reliable broadcast ⇔ P (Proposition 5.1)",
		Claim:   "P solves TRB with unbounded crashes; nil deliveries emulate P back",
		Columns: []string{"crashes", "runs", "TRB spec", "TRB⇒P accurate", "TRB⇒P complete"},
	}
	const waves = 4
	ok := true
	for _, crashes := range []int{0, 1, 2, 4} {
		specOK, accOK, compOK, runs := true, true, true, 0
		for seed := int64(0); seed < int64(seeds); seed++ {
			pat := model.MustPattern(expN)
			times := []model.Time{1, 60, 120, 180}
			for i := 0; i < crashes; i++ {
				pat.MustCrash(model.ProcessID(i+1), times[i])
			}
			tr, err := sim.Execute(sim.Config{
				N: expN, Automaton: trb.Broadcast{Waves: waves},
				Oracle: fd.Perfect{Delay: 2}, Pattern: pat, Horizon: 200000, Seed: seed,
				Policy:   &sim.RandomFairPolicy{},
				StopWhen: trbAllDelivered(waves),
			})
			if err != nil {
				continue
			}
			runs++
			if trb.CheckAll(tr, waves, nil) != nil {
				specOK = false
			}
			h := core.EmulatePerfectFromTRB(tr)
			if fd.CheckStrongAccuracy(h, pat) != nil {
				accOK = false
			}
			if crashes > 0 && fd.CheckStrongCompleteness(h, pat) != nil {
				compOK = false
			}
		}
		if !specOK || !accOK || !compOK {
			ok = false
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(runs), mark(specOK), mark(accOK), mark(compOK))
	}
	t.Verdict = fmt.Sprintf("TRB solved with unbounded crashes and emulates P back: %s", mark(ok))
	return t
}

func trbAllDelivered(waves int) func(*sim.Trace) bool {
	return func(tr *sim.Trace) bool {
		dels := trb.Deliveries(tr)
		correct := tr.Pattern.Correct()
		for init := 1; init <= tr.N; init++ {
			for k := 0; k < waves; k++ {
				m := dels[trb.InstanceID(model.ProcessID(init), k)]
				for _, p := range correct.Slice() {
					if _, okDel := m[p]; !okDel {
						return false
					}
				}
			}
		}
		return true
	}
}

// E5Marabout demonstrates §6.1 and §3.2.2.
func E5Marabout(seeds int) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Marabout: consensus with unbounded crashes, but not realistic (§6.1, §3.2.2)",
		Claim:   "the future-reading detector M solves consensus with n−1 crashes; M violates the realism property",
		Columns: []string{"crashes", "runs", "solved", "decided value of", "realism"},
	}
	ok := true
	for _, crashes := range []int{0, 1, 4} {
		solved, runs := true, 0
		leader := model.ProcessID(crashes + 1) // lowest correct
		for seed := int64(0); seed < int64(seeds); seed++ {
			pat := model.MustPattern(expN)
			for i := 0; i < crashes; i++ {
				pat.MustCrash(model.ProcessID(i+1), model.Time(30+5*i))
			}
			props := consensus.DistinctProposals(expN)
			tr, err := sim.Execute(sim.Config{
				N: expN, Automaton: consensus.MaraboutConsensus{Proposals: props},
				Oracle: fd.Marabout{}, Pattern: pat, Horizon: 20000, Seed: seed,
				Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
			})
			if err != nil {
				continue
			}
			runs++
			o, err := consensus.ExtractOutcome(tr, 0)
			if err != nil || o.CheckUniformSpec(pat, props) != nil {
				solved = false
				continue
			}
			if v, _ := o.DecidedValue(); v != props[leader] {
				solved = false
			}
		}
		if !solved {
			ok = false
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(runs), mark(solved), leader.String(), "✗ (not realistic)")
	}
	if fd.CheckRealism(fd.Marabout{}, expN, 100, 12) == nil {
		ok = false
	}
	t.Verdict = fmt.Sprintf("M solves consensus trivially yet fails the realism check: %s — the lower bound needs realism", mark(ok))
	return t
}

// E6PartialPerfect separates uniform from correct-restricted
// consensus (§6.2).
func E6PartialPerfect(seeds int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "P< solves correct-restricted consensus, not uniform (§6.2)",
		Claim:   "uniform consensus is strictly harder than consensus",
		Columns: []string{"scenario", "runs", "correct-restricted", "uniform"},
	}
	// Benign sweep: correct-restricted agreement must always hold.
	benignOK, runs := true, 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		for _, crashes := range []int{0, 1, 2, 4} {
			pat := crashPattern(crashes)
			props := consensus.DistinctProposals(expN)
			tr, err := sim.Execute(sim.Config{
				N: expN, Automaton: consensus.PartialOrder{Proposals: props},
				Oracle: fd.PartiallyPerfect{Delay: 2}, Pattern: pat, Horizon: 20000, Seed: seed,
				Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
			})
			if err != nil {
				continue
			}
			runs++
			o, err := consensus.ExtractOutcome(tr, 0)
			if err != nil || o.CheckTermination(pat) != nil ||
				o.CheckAgreementAmongCorrect(pat) != nil || o.CheckValidity(props) != nil {
				benignOK = false
			}
		}
	}
	t.AddRow("random crashes", fmt.Sprint(runs), mark(benignOK), "(not claimed)")

	// Adversarial run: p1 decides, its messages are withheld, it
	// crashes — uniform agreement must break while correct-restricted
	// holds.
	violations, adOK := 0, true
	for seed := int64(0); seed < int64(seeds); seed++ {
		pat := model.MustPattern(expN)
		props := consensus.DistinctProposals(expN)
		crashed := false
		tr, err := sim.Execute(sim.Config{
			N: expN, Automaton: consensus.PartialOrder{Proposals: props},
			Oracle: fd.PartiallyPerfect{Delay: 2}, Pattern: pat, Horizon: 20000, Seed: seed,
			Policy: &sim.DelayPolicy{Target: model.NewProcessSet(1), Until: 20001},
			AfterStep: func(r *sim.Run, ev *sim.EventRecord) {
				if crashed || ev.P != 1 {
					return
				}
				for _, pe := range ev.Events {
					if pe.Kind == sim.KindDecide {
						crashed = true
						_ = r.Crash(1)
					}
				}
			},
			StopWhen: sim.CorrectDecided(0),
		})
		if err != nil || !crashed {
			adOK = false
			continue
		}
		o, err := consensus.ExtractOutcome(tr, 0)
		if err != nil {
			adOK = false
			continue
		}
		if o.CheckAgreementAmongCorrect(pat) != nil {
			adOK = false
		}
		if o.CheckUniformAgreement() != nil {
			violations++
		}
	}
	t.AddRow("p1 isolated+crashed", fmt.Sprint(seeds), mark(adOK), fmt.Sprintf("✗ in %d/%d runs", violations, seeds))
	t.Verdict = fmt.Sprintf("correct-restricted solvable with P< while uniform breaks: %s — uniform is strictly harder", mark(benignOK && adOK && violations > 0))
	return t
}

// E7Collapse verifies §6.3: S ∩ R ⊂ P.
func E7Collapse(seeds int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Strength vs perfection: S ∩ R ⊂ P (§6.3)",
		Claim:   "a realistic Strong detector never falsely suspects — it is already Perfect",
		Columns: []string{"oracle", "realistic", "false suspicion", "weak accuracy in continuation", "in P"},
	}
	ok := true
	pat := model.MustPattern(expN).MustCrash(2, 40)
	// Realistic accurate oracles: no witness exists; they are in P.
	for _, o := range []fd.Oracle{
		fd.Perfect{Delay: 2},
		fd.RealisticStrong{BaseDelay: 1, Seed: 8, JitterMax: 3},
	} {
		w, err := core.BuildCollapseWitness(o, pat.Clone(), 300)
		inP := err == nil && w == nil
		if !inP {
			ok = false
		}
		t.AddRow(o.Name(), "✓", "none", "-", mark(inP))
	}
	// A noisy realistic detector (claiming S at best) gets caught: the
	// continuation where everyone else crashes breaks weak accuracy.
	found := 0
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		o := fd.EventuallyStrong{GST: 60, Delay: 1, Seed: seed, FalseRate: 25}
		w, err := core.BuildCollapseWitness(o, model.MustPattern(expN), 300)
		if err == nil && w != nil && w.WeakAccuracyInFPrime != nil {
			found++
		}
	}
	t.AddRow(fmt.Sprintf("◇S noisy ×%d", seeds), "✓", fmt.Sprintf("%d/%d", found, seeds), "violated", "✗ (not even in S)")
	if found != seeds {
		ok = false
	}
	// The non-realistic Strong detector escapes the argument — but
	// only by failing realism.
	nr := fd.NonRealisticStrong{Delay: 2, FalsePeriod: 10}
	nrCaught := fd.CheckRealism(nr, expN, 100, 12) != nil
	t.AddRow(nr.Name(), mark(!nrCaught), "protected anchor", "-", "✗ (in S \\ R)")
	if !nrCaught {
		ok = false
	}
	t.Verdict = fmt.Sprintf("within realistic detectors the classes S and P collapse: %s", mark(ok))
	return t
}

// E8MajorityCrossover contrasts the S-based (any f) and ◇S-based
// (majority) algorithms as f grows.
func E8MajorityCrossover(seeds int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Majority crossover: S-flooding vs ◇S rotating coordinator (§1.2)",
		Claim:   "◇S consensus needs a majority of correct processes; S/P do not",
		Columns: []string{"f (of 5)", "S-flooding+P", "rotating+◇S", "rotating safety"},
	}
	ok := true
	for f := 0; f <= 4; f++ {
		sOK, rotLive, rotSafe := true, true, true
		for seed := int64(0); seed < int64(seeds); seed++ {
			pat := model.MustPattern(expN)
			for i := 0; i < f; i++ {
				pat.MustCrash(model.ProcessID(i+1), model.Time(5+3*i))
			}
			props := consensus.DistinctProposals(expN)

			trS, err := sim.Execute(sim.Config{
				N: expN, Automaton: consensus.SFlooding{Proposals: props},
				Oracle: fd.Perfect{Delay: 2}, Pattern: pat.Clone(), Horizon: 20000, Seed: seed,
				Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
			})
			if err != nil || trS.Stopped != sim.StopCondition {
				sOK = false
			} else if o, err := consensus.ExtractOutcome(trS, 0); err != nil || o.CheckUniformSpec(pat, props) != nil {
				sOK = false
			}

			trR, err := sim.Execute(sim.Config{
				N: expN, Automaton: consensus.Rotating{Proposals: props},
				Oracle:  fd.EventuallyStrong{GST: 100, Delay: 3, Seed: uint64(seed), FalseRate: 10},
				Pattern: pat.Clone(), Horizon: 20000, Seed: seed,
				Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
			})
			if err != nil || trR.Stopped != sim.StopCondition {
				rotLive = false
			}
			if err == nil {
				if o, err2 := consensus.ExtractOutcome(trR, 0); err2 != nil || o.CheckUniformAgreement() != nil {
					rotSafe = false
				}
			}
		}
		needMajority := f >= (expN+1)/2
		wantLive := !needMajority
		row := "decides"
		if !rotLive {
			row = "BLOCKS"
		}
		sCell := "decides"
		if !sOK {
			sCell = "FAILS"
		}
		t.AddRow(fmt.Sprint(f), sCell, row, mark(rotSafe))
		if !sOK || rotLive != wantLive || !rotSafe {
			ok = false
		}
	}
	t.Verdict = fmt.Sprintf("crossover at f = ⌈n/2⌉ = 3 with safety intact: %s", mark(ok))
	return t
}

// E9QoS sweeps the live heartbeat estimators over a jittery lossy
// link — the engineering face of the accuracy/completeness trade-off.
func E9QoS() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "QoS of live heartbeat detectors (Chen-Toueg-Aguilera metrics; §1.3)",
		Claim:   "emulating P live trades detection time against false suspicions; membership makes the chosen suspicions accurate by exclusion",
		Columns: []string{"estimator", "T_D (crash)", "mistakes (steady)", "λ_M (/s)", "T_M", "P_A"},
	}
	base := qos.ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    4 * time.Millisecond,
		DropPct:      10,
		Duration:     10 * time.Second,
		SamplePeriod: 2 * time.Millisecond,
		Seed:         17,
	}
	points := qos.Sweep(base, []qos.Config{
		{Label: "fixed 25ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 25 * time.Millisecond} }},
		{Label: "fixed 50ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 50 * time.Millisecond} }},
		{Label: "fixed 100ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 100 * time.Millisecond} }},
		{Label: "fixed 200ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 200 * time.Millisecond} }},
		{Label: "chen α=30ms", Make: func() heartbeat.Estimator { return &heartbeat.Chen{Window: 32, Alpha: 30 * time.Millisecond} }},
		{Label: "chen α=80ms", Make: func() heartbeat.Estimator { return &heartbeat.Chen{Window: 32, Alpha: 80 * time.Millisecond} }},
		{Label: "φ Φ=4", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 4, MinStdDev: 2 * time.Millisecond}
		}},
		{Label: "φ Φ=8", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 8, MinStdDev: 2 * time.Millisecond}
		}},
		{Label: "φ Φ=12", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 12, MinStdDev: 2 * time.Millisecond}
		}},
	})
	allDetected := true
	for _, pt := range points {
		if !pt.Crash.Detected {
			allDetected = false
		}
		t.AddRow(pt.Estimator,
			pt.Crash.DetectionTime.Round(time.Millisecond).String(),
			fmt.Sprint(pt.Steady.Mistakes),
			fmt.Sprintf("%.3f", pt.Steady.MistakeRate),
			pt.Steady.AvgMistakeDuration.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", pt.Steady.QueryAccuracy),
		)
	}
	t.Verdict = fmt.Sprintf("every configuration detects the crash (%s); tighter ⇒ faster T_D and more mistakes — the realistic frontier", mark(allDetected))
	return t
}
