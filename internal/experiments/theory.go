package experiments

import (
	"fmt"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/heartbeat"
	"realisticfd/internal/model"
	"realisticfd/internal/qos"
	"realisticfd/internal/scenario"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

const expN = 5

// streamAgg runs sc at every seed through the streaming harness and
// folds each run's statistic into an additive aggregate: analyze maps
// one (possibly failed) run to its contribution and combine sums
// contributions. combine must be commutative and associative with the
// zero aggregate as identity — every aggregate below is a bundle of
// counters, so the streamed table is byte-identical to the retained
// Map-then-loop it replaced, at any worker count. Chunk size 1 keeps
// the per-seed parallelism Map had; no trace outlives its run.
func streamAgg[S any](sc harness.Scenario, seeds int, analyze func(harness.Result) S, combine func(S, S) S) S {
	agg, err := harness.Stream(sc, harness.Seeds(seeds), harness.Reducer[S]{
		New:   func() (zero S) { return zero },
		Fold:  func(acc S, r harness.Result) S { return combine(acc, analyze(r)) },
		Merge: combine,
	}, harness.StreamOptions{Workers: Workers(), ChunkSize: 1})
	if err != nil {
		// Without a checkpoint or cancelable context Stream cannot fail.
		panic(fmt.Sprintf("experiments: streaming sweep failed: %v", err))
	}
	return agg
}

// E1Totality audits every decision of the S-based algorithm under
// realistic accurate detectors for the §4.2 totality property
// (Lemma 4.1) — on a clean network and on a delaying, partitioning
// (but eventually delivering) one: the lemma claims totality in every
// run, so link faults must not open a loophole.
func E1Totality(seeds int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Totality of realistic-detector consensus (Lemma 4.1)",
		Claim:   "every consensus algorithm using a realistic failure detector is total, on clean and faulty links alike",
		Columns: []string{"detector", "network", "crashes", "runs", "decisions", "non-total", "mean t(decide)"},
	}
	oracles := []scenario.OracleSpec{
		{Kind: scenario.OraclePerfect, Delay: 2},
		{Kind: scenario.OracleScribe},
		{Kind: scenario.OracleRealisticStrong, BaseDelay: 1, Seed: 3, JitterMax: 4},
	}
	networks := []struct {
		label  string
		faults *scenario.FaultSpec
	}{
		{"fair", nil},
		{"delay+partition", healingNetSpec()},
	}
	type e1Agg struct {
		runs, decisions, violations int
		sumT                        int64
	}
	allTotal := true
	base := baseSpec("E1")
	for _, o := range oracles {
		for _, net := range networks {
			for _, crashes := range []int{0, 1, 2, 4} {
				s := base
				s.Oracle = o
				s.Faults = net.faults
				s.Crashes = crashSpecs(crashes, 30, 90, 150, 210)
				sc := scenario.MustBuild(s)
				agg := streamAgg(sc, seeds, func(r harness.Result) e1Agg {
					if r.Err != nil {
						return e1Agg{}
					}
					a := e1Agg{runs: 1}
					for _, d := range r.Trace.Decisions(0) {
						a.decisions++
						a.sumT += int64(d.T)
					}
					a.violations = len(core.TotalityReport(r.Trace, 0))
					return a
				}, func(x, y e1Agg) e1Agg {
					x.runs += y.runs
					x.decisions += y.decisions
					x.violations += y.violations
					x.sumT += y.sumT
					return x
				})
				if agg.violations > 0 {
					allTotal = false
				}
				meanT := int64(0)
				if agg.decisions > 0 {
					meanT = agg.sumT / int64(agg.decisions)
				}
				t.AddRow(sc.Oracle.Name(), net.label, fmt.Sprint(crashes), fmt.Sprint(agg.runs),
					fmt.Sprint(agg.decisions), fmt.Sprint(agg.violations), fmt.Sprint(meanT))
			}
		}
	}
	t.Verdict = fmt.Sprintf("all decisions total: %s (paper: total, by Lemma 4.1)", mark(allTotal))
	return t
}

// E2Adversary replays the Lemma 4.1 proof: the adversary forces any
// non-total run into disagreement via an indistinguishable-prefix
// continuation.
func E2Adversary(seeds int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Lemma 4.1 adversary: non-total ⇒ disagreement",
		Claim:   "a decision that skips a live process can be extended to violate agreement; with an accurate detector the attack must fail",
		Columns: []string{"seed", "mode", "prefix identical", "missing from chain", "decisions", "disagree"},
	}
	type row struct {
		cells []string
		ok    bool
	}
	rows := harness.SeedMap(harness.Seeds(seeds), Workers(), func(seed int64) row {
		w, err := core.BuildDisagreement(core.AdversaryConfig{Seed: seed})
		if err != nil {
			return row{cells: []string{fmt.Sprint(seed), "noisy ◇S", "-", "-", "-", "error: " + err.Error()}}
		}
		return row{
			cells: []string{fmt.Sprint(seed), "noisy ◇S", mark(w.PrefixIdentical),
				w.NonTotal.Missing.String(),
				fmt.Sprintf("%v:%v vs %v:%v", w.FirstDecision.P, w.FirstDecision.Value, w.VictimDecision.P, w.VictimDecision.Value),
				mark(w.Disagree())},
			ok: w.Disagree() && w.PrefixIdentical,
		}
	})
	ok := true
	for _, r := range rows {
		t.AddRow(r.cells...)
		if !r.ok {
			ok = false
		}
	}
	_, err := core.BuildDisagreement(core.AdversaryConfig{Seed: 0, Accurate: true})
	attackFails := err == core.ErrDecisionTotal
	t.AddRow("0", "accurate P", "-", "-", "-", "attack impossible: "+mark(attackFails))
	if !attackFails {
		ok = false
	}
	t.Verdict = fmt.Sprintf("adversary splits every non-total run and none with accurate detectors: %s", mark(ok))
	return t
}

// E3Reduction measures the T(D⇒P) emulation (Lemma 4.2 /
// Proposition 4.3).
func E3Reduction(seeds int) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "T(D⇒P): consensus sequence emulates a Perfect detector (Lemma 4.2)",
		Claim:   "piggybacked alive-tags + decisions yield strong completeness and strong accuracy",
		Columns: []string{"crashes", "runs", "accurate", "complete", "mean emulation lag (ticks)"},
	}
	type e3Agg struct {
		runs, inaccurate, incomplete int
		lagSum, lagCnt               int64
	}
	ok := true
	base := baseSpec("E3")
	for _, crashes := range []int{0, 1, 2, 4} {
		s := base
		s.Crashes = crashSpecs(crashes, 30, 90, 150, 210)
		sc := scenario.MustBuild(s)
		agg := streamAgg(sc, seeds, func(r harness.Result) e3Agg {
			if r.Err != nil {
				return e3Agg{}
			}
			a := e3Agg{runs: 1}
			pat := r.Trace.Pattern
			h, err := core.ExtractEmulatedHistory(r.Trace)
			if err != nil {
				return a
			}
			if fd.CheckStrongAccuracy(h, pat) != nil {
				a.inaccurate = 1
			}
			if fd.CheckStrongCompleteness(h, pat) != nil {
				a.incomplete = 1
			}
			// Emulation lag: crash → first correct process suspecting
			// it in output(P).
			for _, q := range pat.Faulty().Slice() {
				ct, _ := pat.CrashTime(q)
				best := int64(-1)
				for _, p := range pat.Correct().Slice() {
					if first, ever := h.EverSuspected(p, q); ever {
						if best < 0 || int64(first) < best {
							best = int64(first)
						}
					}
				}
				if best >= 0 {
					a.lagSum += best - int64(ct)
					a.lagCnt++
				}
			}
			return a
		}, func(x, y e3Agg) e3Agg {
			x.runs += y.runs
			x.inaccurate += y.inaccurate
			x.incomplete += y.incomplete
			x.lagSum += y.lagSum
			x.lagCnt += y.lagCnt
			return x
		})
		accurate, complete := agg.inaccurate == 0, agg.incomplete == 0
		if !accurate || !complete {
			ok = false
		}
		lag := "-"
		if agg.lagCnt > 0 {
			lag = fmt.Sprint(agg.lagSum / agg.lagCnt)
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(agg.runs), mark(accurate), mark(complete), lag)
	}
	t.Verdict = fmt.Sprintf("emulated detector is Perfect in every run: %s (paper: P is the weakest realistic class for consensus)", mark(ok))
	return t
}

// E4TRB verifies Proposition 5.1 in both directions.
func E4TRB(seeds int) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Terminating reliable broadcast ⇔ P (Proposition 5.1)",
		Claim:   "P solves TRB with unbounded crashes; nil deliveries emulate P back",
		Columns: []string{"crashes", "runs", "TRB spec", "TRB⇒P accurate", "TRB⇒P complete"},
	}
	type e4Agg struct {
		runs, specBad, accBad, compBad int
	}
	ok := true
	base := baseSpec("E4")
	waves := base.Protocol.Waves
	for _, crashes := range []int{0, 1, 2, 4} {
		s := base
		s.Crashes = crashSpecs(crashes, 1, 60, 120, 180)
		sc := scenario.MustBuild(s)
		agg := streamAgg(sc, seeds, func(r harness.Result) e4Agg {
			if r.Err != nil {
				return e4Agg{}
			}
			a := e4Agg{runs: 1}
			pat := r.Trace.Pattern
			if trb.CheckAll(r.Trace, waves, nil) != nil {
				a.specBad = 1
			}
			h := core.EmulatePerfectFromTRB(r.Trace)
			if fd.CheckStrongAccuracy(h, pat) != nil {
				a.accBad = 1
			}
			if crashes > 0 && fd.CheckStrongCompleteness(h, pat) != nil {
				a.compBad = 1
			}
			return a
		}, func(x, y e4Agg) e4Agg {
			x.runs += y.runs
			x.specBad += y.specBad
			x.accBad += y.accBad
			x.compBad += y.compBad
			return x
		})
		specOK, accOK, compOK := agg.specBad == 0, agg.accBad == 0, agg.compBad == 0
		if !specOK || !accOK || !compOK {
			ok = false
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(agg.runs), mark(specOK), mark(accOK), mark(compOK))
	}
	t.Verdict = fmt.Sprintf("TRB solved with unbounded crashes and emulates P back: %s", mark(ok))
	return t
}

// E5Marabout demonstrates §6.1 and §3.2.2.
func E5Marabout(seeds int) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Marabout: consensus with unbounded crashes, but not realistic (§6.1, §3.2.2)",
		Claim:   "the future-reading detector M solves consensus with n−1 crashes; M violates the realism property",
		Columns: []string{"crashes", "runs", "solved", "decided value of", "realism"},
	}
	ok := true
	base := baseSpec("E5")
	for _, crashes := range []int{0, 1, 4} {
		leader := model.ProcessID(crashes + 1) // lowest correct
		props := consensus.DistinctProposals(expN)
		s := base
		s.Crashes = crashSpecs(crashes, 30, 35, 40, 45)
		sc := scenario.MustBuild(s)
		type e5Agg struct{ runs, notSolved int }
		agg := streamAgg(sc, seeds, func(r harness.Result) e5Agg {
			if r.Err != nil {
				return e5Agg{}
			}
			a := e5Agg{runs: 1}
			o, err := consensus.ExtractOutcome(r.Trace, 0)
			if err != nil || o.CheckUniformSpec(r.Trace.Pattern, props) != nil {
				a.notSolved = 1
				return a
			}
			if v, _ := o.DecidedValue(); v != props[leader] {
				a.notSolved = 1
			}
			return a
		}, func(x, y e5Agg) e5Agg {
			x.runs += y.runs
			x.notSolved += y.notSolved
			return x
		})
		solved := agg.notSolved == 0
		if !solved {
			ok = false
		}
		t.AddRow(fmt.Sprint(crashes), fmt.Sprint(agg.runs), mark(solved), leader.String(), "✗ (not realistic)")
	}
	if fd.CheckRealism(fd.Marabout{}, expN, 100, 12) == nil {
		ok = false
	}
	t.Verdict = fmt.Sprintf("M solves consensus trivially yet fails the realism check: %s — the lower bound needs realism", mark(ok))
	return t
}

// E6PartialPerfect separates uniform from correct-restricted
// consensus (§6.2).
func E6PartialPerfect(seeds int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "P< solves correct-restricted consensus, not uniform (§6.2)",
		Claim:   "uniform consensus is strictly harder than consensus",
		Columns: []string{"scenario", "runs", "correct-restricted", "uniform"},
	}
	props := consensus.DistinctProposals(expN)

	// Benign sweep: correct-restricted agreement must always hold.
	benignOK, runs := true, 0
	benign := baseSpec("E6-benign")
	for _, crashes := range []int{0, 1, 2, 4} {
		s := benign
		s.Crashes = crashSpecs(crashes, 30, 90, 150, 210)
		sc := scenario.MustBuild(s)
		type e6Agg struct{ runs, bad int }
		agg := streamAgg(sc, seeds, func(r harness.Result) e6Agg {
			if r.Err != nil {
				return e6Agg{}
			}
			pat := r.Trace.Pattern
			o, err := consensus.ExtractOutcome(r.Trace, 0)
			good := err == nil && o.CheckTermination(pat) == nil &&
				o.CheckAgreementAmongCorrect(pat) == nil && o.CheckValidity(props) == nil
			a := e6Agg{runs: 1}
			if !good {
				a.bad = 1
			}
			return a
		}, func(x, y e6Agg) e6Agg {
			x.runs += y.runs
			x.bad += y.bad
			return x
		})
		runs += agg.runs
		benignOK = benignOK && agg.bad == 0
	}
	t.AddRow("random crashes", fmt.Sprint(runs), mark(benignOK), "(not claimed)")

	// Adversarial run: p1 decides, its messages are withheld, it
	// crashes — uniform agreement must break while correct-restricted
	// holds.
	sc := scenario.MustBuild(baseSpec("E6-adversarial"))
	type advAgg struct{ notOK, violations int }
	agg := streamAgg(sc, seeds, func(r harness.Result) advAgg {
		if r.Err != nil {
			return advAgg{notOK: 1}
		}
		if _, crashed := r.Trace.Pattern.CrashTime(1); !crashed {
			return advAgg{notOK: 1}
		}
		o, err := consensus.ExtractOutcome(r.Trace, 0)
		if err != nil {
			return advAgg{notOK: 1}
		}
		a := advAgg{}
		if o.CheckAgreementAmongCorrect(r.Trace.Pattern) != nil {
			a.notOK = 1
		}
		if o.CheckUniformAgreement() != nil {
			a.violations = 1
		}
		return a
	}, func(x, y advAgg) advAgg {
		x.notOK += y.notOK
		x.violations += y.violations
		return x
	})
	violations, adOK := agg.violations, agg.notOK == 0
	t.AddRow("p1 isolated+crashed", fmt.Sprint(seeds), mark(adOK), fmt.Sprintf("✗ in %d/%d runs", violations, seeds))
	t.Verdict = fmt.Sprintf("correct-restricted solvable with P< while uniform breaks: %s — uniform is strictly harder", mark(benignOK && adOK && violations > 0))
	return t
}

// E7Collapse verifies §6.3: S ∩ R ⊂ P.
func E7Collapse(seeds int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Strength vs perfection: S ∩ R ⊂ P (§6.3)",
		Claim:   "a realistic Strong detector never falsely suspects — it is already Perfect",
		Columns: []string{"oracle", "realistic", "false suspicion", "weak accuracy in continuation", "in P"},
	}
	ok := true
	pat := model.MustPattern(expN).MustCrash(2, 40)
	// Realistic accurate oracles: no witness exists; they are in P.
	for _, o := range []fd.Oracle{
		fd.Perfect{Delay: 2},
		fd.RealisticStrong{BaseDelay: 1, Seed: 8, JitterMax: 3},
	} {
		w, err := core.BuildCollapseWitness(o, pat.Clone(), 300)
		inP := err == nil && w == nil
		if !inP {
			ok = false
		}
		t.AddRow(o.Name(), "✓", "none", "-", mark(inP))
	}
	// A noisy realistic detector (claiming S at best) gets caught: the
	// continuation where everyone else crashes breaks weak accuracy.
	caught := harness.SeedMap(harness.Seeds(seeds), Workers(), func(seed int64) bool {
		o := fd.EventuallyStrong{GST: 60, Delay: 1, Seed: uint64(seed), FalseRate: 25}
		w, err := core.BuildCollapseWitness(o, model.MustPattern(expN), 300)
		return err == nil && w != nil && w.WeakAccuracyInFPrime != nil
	})
	found := 0
	for _, c := range caught {
		if c {
			found++
		}
	}
	t.AddRow(fmt.Sprintf("◇S noisy ×%d", seeds), "✓", fmt.Sprintf("%d/%d", found, seeds), "violated", "✗ (not even in S)")
	if found != seeds {
		ok = false
	}
	// The non-realistic Strong detector escapes the argument — but
	// only by failing realism.
	nr := fd.NonRealisticStrong{Delay: 2, FalsePeriod: 10}
	nrCaught := fd.CheckRealism(nr, expN, 100, 12) != nil
	t.AddRow(nr.Name(), mark(!nrCaught), "protected anchor", "-", "✗ (in S \\ R)")
	if !nrCaught {
		ok = false
	}
	t.Verdict = fmt.Sprintf("within realistic detectors the classes S and P collapse: %s", mark(ok))
	return t
}

// E8MajorityCrossover contrasts the S-based (any f) and ◇S-based
// (majority) algorithms as f grows, and hammers the ◇S algorithm's
// safety on a genuinely lossy link (15% drops): liveness may go,
// agreement may not.
func E8MajorityCrossover(seeds int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Majority crossover: S-flooding vs ◇S rotating coordinator (§1.2)",
		Claim:   "◇S consensus needs a majority of correct processes; S/P do not — and dropping 15% of messages never breaks safety",
		Columns: []string{"f (of 5)", "S-flooding+P", "rotating+◇S", "rotating safety", "lossy rot. safety"},
	}
	ok := true
	baseS := baseSpec("E8-sflooding")
	baseR := baseSpec("E8-rotating")
	baseL := baseSpec("E8-rotating-lossy")
	for f := 0; f <= 4; f++ {
		crashes := crashSpecs(f, 5, 8, 11, 14)
		props := consensus.DistinctProposals(expN)

		sS := baseS
		sS.Crashes = crashes
		scS := scenario.MustBuild(sS)
		addInt := func(x, y int) int { return x + y }
		sBad := streamAgg(scS, seeds, func(r harness.Result) int {
			if r.Err != nil || r.Trace.Stopped != sim.StopCondition {
				return 1
			}
			o, err := consensus.ExtractOutcome(r.Trace, 0)
			if err != nil || o.CheckUniformSpec(r.Trace.Pattern, props) != nil {
				return 1
			}
			return 0
		}, addInt)
		sOK := sBad == 0

		sR := baseR
		sR.Crashes = crashes
		scR := scenario.MustBuild(sR)
		type rotAgg struct{ notLive, notSafe int }
		rot := streamAgg(scR, seeds, func(r harness.Result) rotAgg {
			var a rotAgg
			if !(r.Err == nil && r.Trace.Stopped == sim.StopCondition) {
				a.notLive = 1
			}
			if r.Err == nil {
				if o, err := consensus.ExtractOutcome(r.Trace, 0); err != nil || o.CheckUniformAgreement() != nil {
					a.notSafe = 1
				}
			}
			return a
		}, func(x, y rotAgg) rotAgg {
			x.notLive += y.notLive
			x.notSafe += y.notSafe
			return x
		})
		rotLive, rotSafe := rot.notLive == 0, rot.notSafe == 0

		// Same rotating algorithm on a dropping link: no liveness claim
		// survives a lossy channel without retransmission, but uniform
		// agreement and validity must.
		sL := baseL
		sL.Crashes = crashes
		scL := scenario.MustBuild(sL)
		lossyBad := streamAgg(scL, seeds, func(r harness.Result) int {
			if r.Err != nil {
				return 1
			}
			o, err := consensus.ExtractOutcome(r.Trace, 0)
			if err != nil || o.CheckUniformAgreement() != nil || o.CheckValidity(props) != nil {
				return 1
			}
			return 0
		}, addInt)
		lossySafe := lossyBad == 0

		needMajority := f >= (expN+1)/2
		wantLive := !needMajority
		row := "decides"
		if !rotLive {
			row = "BLOCKS"
		}
		sCell := "decides"
		if !sOK {
			sCell = "FAILS"
		}
		t.AddRow(fmt.Sprint(f), sCell, row, mark(rotSafe), mark(lossySafe))
		if !sOK || rotLive != wantLive || !rotSafe || !lossySafe {
			ok = false
		}
	}
	t.Verdict = fmt.Sprintf("crossover at f = ⌈n/2⌉ = 3 with safety intact, drops included: %s", mark(ok))
	return t
}

// E9QoS sweeps the live heartbeat estimators over a jittery lossy
// link — the engineering face of the accuracy/completeness trade-off —
// and over a 1 s link outage that heals: every estimator must restore
// trust after the partition.
func E9QoS() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "QoS of live heartbeat detectors (Chen-Toueg-Aguilera metrics; §1.3)",
		Claim:   "emulating P live trades detection time against false suspicions; a healed outage must restore trust",
		Columns: []string{"estimator", "T_D (crash)", "mistakes (steady)", "λ_M (/s)", "T_M", "P_A", "mistakes (outage)", "heals"},
	}
	base := qos.ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    4 * time.Millisecond,
		DropPct:      10,
		Duration:     10 * time.Second,
		SamplePeriod: 2 * time.Millisecond,
		Seed:         17,
	}
	points := qos.Sweep(base, []qos.Config{
		{Label: "fixed 25ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 25 * time.Millisecond} }},
		{Label: "fixed 50ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 50 * time.Millisecond} }},
		{Label: "fixed 100ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 100 * time.Millisecond} }},
		{Label: "fixed 200ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 200 * time.Millisecond} }},
		{Label: "chen α=30ms", Make: func() heartbeat.Estimator { return &heartbeat.Chen{Window: 32, Alpha: 30 * time.Millisecond} }},
		{Label: "chen α=80ms", Make: func() heartbeat.Estimator { return &heartbeat.Chen{Window: 32, Alpha: 80 * time.Millisecond} }},
		{Label: "φ Φ=4", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 4, MinStdDev: 2 * time.Millisecond}
		}},
		{Label: "φ Φ=8", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 8, MinStdDev: 2 * time.Millisecond}
		}},
		{Label: "φ Φ=12", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 128, Threshold: 12, MinStdDev: 2 * time.Millisecond}
		}},
	}, Workers())
	allDetected, allHeal := true, true
	for _, pt := range points {
		if !pt.Crash.Detected {
			allDetected = false
		}
		if !pt.OutageRecovered {
			allHeal = false
		}
		t.AddRow(pt.Estimator,
			pt.Crash.DetectionTime.Round(time.Millisecond).String(),
			fmt.Sprint(pt.Steady.Mistakes),
			fmt.Sprintf("%.3f", pt.Steady.MistakeRate),
			pt.Steady.AvgMistakeDuration.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", pt.Steady.QueryAccuracy),
			fmt.Sprint(pt.Outage.Mistakes),
			mark(pt.OutageRecovered),
		)
	}
	t.Verdict = fmt.Sprintf("every configuration detects the crash (%s) and trusts again after the healed outage (%s); tighter ⇒ faster T_D and more mistakes — the realistic frontier",
		mark(allDetected), mark(allHeal))
	return t
}
