package experiments

import (
	"embed"
	"fmt"

	"realisticfd/internal/scenario"
)

// The E-tables are generated from the checked-in scenario files: each
// generator loads its base spec here and applies only the table's row
// axis (crash counts, oracle, network) before compiling. The files are
// therefore the authoritative experiment configurations — anything not
// varied by a row lives in JSON, not in Go.
//
//go:embed testdata/scenarios/*.json
var scenarioFiles embed.FS

// baseSpec loads one embedded scenario file by name ("E1", "E4",
// "E8-rotating", ...). The embedded files are validated on load, so a
// broken checked-in spec fails every experiment loudly.
func baseSpec(name string) scenario.Spec {
	data, err := scenarioFiles.ReadFile("testdata/scenarios/" + name + ".json")
	if err != nil {
		panic(fmt.Sprintf("experiments: no embedded scenario %q: %v", name, err))
	}
	s, err := scenario.Parse(data)
	if err != nil {
		panic(fmt.Sprintf("experiments: embedded scenario %q: %v", name, err))
	}
	return s
}

// crashSpecs schedules the first crashes processes to fail, process
// i+1 at times[i] — the row axis most tables sweep.
func crashSpecs(crashes int, times ...int64) []scenario.CrashSpec {
	if crashes > len(times) {
		crashes = len(times)
	}
	specs := make([]scenario.CrashSpec, 0, crashes)
	for i := 0; i < crashes; i++ {
		specs = append(specs, scenario.CrashSpec{Process: i + 1, At: times[i]})
	}
	return specs
}

// healingNetSpec is the loss-free faulty-link plan used where liveness
// is still asserted: bounded extra delay plus a partition that heals,
// so every message is eventually delivered (condition (5) of §2.4
// holds within the horizon).
func healingNetSpec() *scenario.FaultSpec {
	return &scenario.FaultSpec{
		MaxExtraDelay: 6,
		Partitions: []scenario.PartitionSpec{
			{Side: []int{1, 2}, From: 40, Until: 400},
		},
	}
}
