package experiments

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_tables.txt")

const goldenTableSeeds = 2

// goldenTables renders every E-table at a fixed seed count and hashes
// the rendering. The hashes were generated at the commit before the
// engine hot-path rewrite, so they hold the rewrite to byte-identical
// experiment output.
func goldenTables() map[string]string {
	gens := map[string]func(int) *Table{
		"E1": E1Totality,
		"E2": E2Adversary,
		"E3": E3Reduction,
		"E4": E4TRB,
		"E5": E5Marabout,
		"E6": E6PartialPerfect,
		"E7": E7Collapse,
		"E8": E8MajorityCrossover,
		"E9": func(int) *Table { return E9QoS() },
	}
	out := make(map[string]string, len(gens))
	for id, gen := range gens {
		var buf bytes.Buffer
		gen(goldenTableSeeds).Fprint(&buf)
		sum := sha256.Sum256(buf.Bytes())
		out[id] = hex.EncodeToString(sum[:])
	}
	return out
}

// TestGoldenTables pins the rendered experiment tables: any engine or
// query-API change that shifts a schedule, a decision time, or a table
// cell shows up as a hash mismatch. Regenerate with
//
//	go test ./internal/experiments -run TestGoldenTables -update
//
// only when output is *supposed* to change, and say why in the PR.
func TestGoldenTables(t *testing.T) {
	got := goldenTables()
	path := filepath.Join("testdata", "golden_tables.txt")

	if *updateGolden {
		ids := make([]string, 0, len(got))
		for id := range got {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var b strings.Builder
		b.WriteString("# SHA-256 of each rendered E-table at 2 seeds; regenerate with: go test ./internal/experiments -run TestGoldenTables -update\n")
		for _, id := range ids {
			fmt.Fprintf(&b, "%s %s\n", id, got[id])
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden table hashes to %s", len(got), path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden table missing (generate with -update): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for id, h := range got {
		w, ok := want[id]
		if !ok {
			t.Errorf("%s: no pinned hash (regenerate with -update)", id)
			continue
		}
		if h != w {
			t.Errorf("%s: table hash %s… != pinned %s… — experiment output changed", id, h[:16], w[:16])
		}
	}
}
