package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentConfirms is the repository's top-level regression
// gate: each E-table must reach a confirming (✓) verdict at one seed
// per scenario. A regression anywhere in the stack — model, oracle,
// simulator, algorithm, checker — surfaces here as a ✗ verdict.
func TestEveryExperimentConfirms(t *testing.T) {
	t.Parallel()
	gens := map[string]func(int) *Table{
		"E1": E1Totality,
		"E2": E2Adversary,
		"E3": E3Reduction,
		"E4": E4TRB,
		"E5": E5Marabout,
		"E6": E6PartialPerfect,
		"E7": E7Collapse,
		"E8": E8MajorityCrossover,
		"E9": func(int) *Table { return E9QoS() },
	}
	for id, gen := range gens {
		id, gen := id, gen
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl := gen(1)
			if tbl.ID != id {
				t.Errorf("table ID = %q, want %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(tbl.Verdict, "✓") || strings.Contains(tbl.Verdict, "✗") {
				t.Fatalf("verdict not confirming: %q", tbl.Verdict)
			}
		})
	}
}

// TestTablesByteIdenticalAcrossWorkers is the harness acceptance
// gate: every E-table produced with parallelism > 1 must be
// byte-identical to the sequential run. Results are slotted by seed
// inside the sweeps, so worker count must be unobservable.
func TestTablesByteIdenticalAcrossWorkers(t *testing.T) {
	t.Parallel()
	// SetWorkers is atomic and the tables are worker-count-invariant
	// (that is exactly what this test proves), so flipping it while
	// sibling tests run is safe.
	defer SetWorkers(0)
	const seeds = 2
	var seq, par bytes.Buffer
	SetWorkers(1)
	RunAll(&seq, seeds)
	SetWorkers(6)
	RunAll(&par, seeds)
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel tables differ from sequential:\n--- workers=1 ---\n%s\n--- workers=6 ---\n%s",
			seq.String(), par.String())
	}
}

// TestFaultColumnsPresent pins the lossy-network scenarios into the
// tables: E1 carries the delay+partition network rows, E8 the lossy
// rotating-safety column, E9 the healed-outage columns.
func TestFaultColumnsPresent(t *testing.T) {
	t.Parallel()
	e1 := E1Totality(1)
	lossyRows := 0
	for _, row := range e1.Rows {
		if len(row) > 1 && row[1] == "delay+partition" {
			lossyRows++
		}
	}
	if lossyRows == 0 {
		t.Error("E1 has no delay+partition rows")
	}
	e8 := E8MajorityCrossover(1)
	if got := e8.Columns[len(e8.Columns)-1]; got != "lossy rot. safety" {
		t.Errorf("E8 last column = %q, want lossy rot. safety", got)
	}
	e9 := E9QoS()
	found := false
	for _, c := range e9.Columns {
		if strings.Contains(c, "outage") {
			found = true
		}
	}
	if !found {
		t.Errorf("E9 columns %v lack an outage column", e9.Columns)
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tbl := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "renders",
		Columns: []string{"a", "long-column"},
		Verdict: "fine ✓",
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX — demo", "claim: renders", "long-column", "verdict: fine ✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: the separator row matches header width.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestRunAllWritesEveryTable(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	RunAll(&buf, 1)
	out := buf.String()
	for _, id := range []string{"E1 —", "E2 —", "E3 —", "E4 —", "E5 —", "E6 —", "E7 —", "E8 —", "E9 —"} {
		if !strings.Contains(out, id) {
			t.Errorf("RunAll output missing %q", id)
		}
	}
}
