package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestEveryExperimentConfirms is the repository's top-level regression
// gate: each E-table must reach a confirming (✓) verdict at one seed
// per scenario. A regression anywhere in the stack — model, oracle,
// simulator, algorithm, checker — surfaces here as a ✗ verdict.
func TestEveryExperimentConfirms(t *testing.T) {
	t.Parallel()
	gens := map[string]func(int) *Table{
		"E1": E1Totality,
		"E2": E2Adversary,
		"E3": E3Reduction,
		"E4": E4TRB,
		"E5": E5Marabout,
		"E6": E6PartialPerfect,
		"E7": E7Collapse,
		"E8": E8MajorityCrossover,
		"E9": func(int) *Table { return E9QoS() },
	}
	for id, gen := range gens {
		id, gen := id, gen
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tbl := gen(1)
			if tbl.ID != id {
				t.Errorf("table ID = %q, want %q", tbl.ID, id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(tbl.Verdict, "✓") || strings.Contains(tbl.Verdict, "✗") {
				t.Fatalf("verdict not confirming: %q", tbl.Verdict)
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	t.Parallel()
	tbl := &Table{
		ID:      "EX",
		Title:   "demo",
		Claim:   "renders",
		Columns: []string{"a", "long-column"},
		Verdict: "fine ✓",
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX — demo", "claim: renders", "long-column", "verdict: fine ✓"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns are aligned: the separator row matches header width.
	if !strings.Contains(out, "---") {
		t.Error("missing separator")
	}
}

func TestRunAllWritesEveryTable(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	RunAll(&buf, 1)
	out := buf.String()
	for _, id := range []string{"E1 —", "E2 —", "E3 —", "E4 —", "E5 —", "E6 —", "E7 —", "E8 —", "E9 —"} {
		if !strings.Contains(out, id) {
			t.Errorf("RunAll output missing %q", id)
		}
	}
}
