// Package consensus implements the consensus algorithms discussed in
// "A Realistic Look At Failure Detectors" (DSN 2002) as sim.Automaton
// values, together with machine checkers for the problem
// specification of §4:
//
//   - SFlooding: the Chandra-Toueg S-based flooding algorithm. It
//     tolerates any number of crashes, satisfies *uniform* agreement,
//     and — run with a realistic, accurate detector — is *total* in
//     the sense of §4.2 (E1). Run with an inaccurate ◇S-style
//     detector it loses totality, which the Lemma 4.1 adversary (E2)
//     exploits to force disagreement.
//   - Rotating: the Chandra-Toueg ◇S-based rotating-coordinator
//     algorithm. It consults only majorities, is deliberately not
//     total, and requires a majority of correct processes for
//     termination (E8).
//   - MaraboutConsensus: the trivial algorithm of §6.1 that decides
//     with unbounded crashes using the non-realistic Marabout
//     detector.
//   - PartialOrder: the P<-based algorithm of §6.2 solving
//     correct-restricted (non-uniform) consensus; E6 exhibits its
//     uniform-agreement violations.
//
// All algorithms treat instance 0 as their protocol instance; the
// multi-instance sequencing needed by the T(D⇒P) reduction lives in
// package core.
package consensus

import (
	"fmt"
	"sort"
	"strings"

	"realisticfd/internal/model"
)

// Value is a proposable consensus value.
type Value string

// NoValue is the zero Value; algorithms never decide it.
const NoValue Value = ""

// Proposals maps each process to its initial proposal.
type Proposals map[model.ProcessID]Value

// DistinctProposals gives every process its own value "v<i>" — the
// worst case for agreement checking.
func DistinctProposals(n int) Proposals {
	props := make(Proposals, n)
	for p := 1; p <= n; p++ {
		props[model.ProcessID(p)] = Value(fmt.Sprintf("v%d", p))
	}
	return props
}

// Validate checks that every process in a system of n has a non-empty
// proposal.
func (props Proposals) Validate(n int) error {
	for p := 1; p <= n; p++ {
		v, ok := props[model.ProcessID(p)]
		if !ok || v == NoValue {
			return fmt.Errorf("consensus: %v has no proposal", model.ProcessID(p))
		}
	}
	return nil
}

// String renders proposals in process order.
func (props Proposals) String() string {
	ids := make([]int, 0, len(props))
	for p := range props {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, p := range ids {
		parts = append(parts, fmt.Sprintf("%v=%s", model.ProcessID(p), props[model.ProcessID(p)]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// vecString renders a value vector for diagnostics.
func vecString(v map[model.ProcessID]Value) string {
	ids := make([]int, 0, len(v))
	for p := range v {
		ids = append(ids, int(p))
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, p := range ids {
		parts = append(parts, fmt.Sprintf("%v:%s", model.ProcessID(p), v[model.ProcessID(p)]))
	}
	return "[" + strings.Join(parts, " ") + "]"
}
