package consensus

import (
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// PartialOrder is the P<-based algorithm of §6.2 (after Guerraoui,
// WDAG 1995) solving *correct-restricted* consensus with an unbounded
// number of failures: agreement is guaranteed among correct processes
// only, and the paper uses the gap between this algorithm and
// Proposition 4.3 to conclude that uniform consensus is strictly
// harder than consensus.
//
// Protocol: process p_i waits, for every j < i, until it has received
// p_j's broadcast value or suspects p_j — a wait P< can always resolve
// because partial completeness makes higher-indexed processes
// eventually suspect crashed lower-indexed ones, and strong accuracy
// makes every suspicion true. It then adopts the value of the
// *highest-indexed* process it heard from (its own if none),
// broadcasts that value, and decides it.
//
// Agreement among correct processes: let m be the lowest correct
// index. Every process with index > m waits for p_m (it can never
// suspect it) and, by induction on the index, every broadcaster ≥ m
// broadcasts exactly p_m's adopted value. Faulty processes below m may
// decide differently and crash — the uniform-agreement violation that
// experiment E6 exhibits.
type PartialOrder struct {
	Proposals Proposals
}

var _ sim.Automaton = PartialOrder{}

// Spawn implements sim.Automaton.
func (a PartialOrder) Spawn(self model.ProcessID, n int) sim.Process {
	return &poProc{self: self, n: n, own: a.Proposals[self], heard: map[model.ProcessID]Value{}}
}

// poValue is the adopted value broadcast upon deciding.
type poValue struct {
	Val Value
}

type poProc struct {
	self  model.ProcessID
	n     int
	own   Value
	heard map[model.ProcessID]Value
	done  bool
}

// Step implements sim.Process.
func (p *poProc) Step(in *sim.Message, susp model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if in != nil {
		if m, ok := in.Payload.(poValue); ok {
			if _, dup := p.heard[in.From]; !dup {
				p.heard[in.From] = m.Val
			}
		}
	}
	if p.done {
		return acts
	}

	// Wait for every lower-indexed process: value received or
	// suspected.
	for j := model.ProcessID(1); j < p.self; j++ {
		if _, ok := p.heard[j]; !ok && !susp.Has(j) {
			return acts
		}
	}

	// Adopt the value of the highest-indexed process heard from.
	v := p.own
	for j := p.self - 1; j >= 1; j-- {
		if hv, ok := p.heard[j]; ok {
			v = hv
			break
		}
	}
	p.done = true
	for q := 1; q <= p.n; q++ {
		id := model.ProcessID(q)
		if id != p.self {
			acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: poValue{Val: v}})
		}
	}
	acts.Events = append(acts.Events, sim.ProtocolEvent{
		Kind: sim.KindDecide, Instance: 0, Value: v,
	})
	return acts
}
