package consensus

import (
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// MaraboutConsensus is the "obvious algorithm" of §6.1 that solves
// consensus using the non-realistic Marabout detector M even with an
// unbounded number of failures: every process selects the
// lowest-indexed process that is not suspected — under M, the
// lowest-indexed *correct* process, known from time zero — as leader.
// The leader broadcasts its value and decides it; everyone else waits
// for the leader's value and decides it.
//
// The algorithm is sound only because M is accurate about the future;
// run it with any realistic detector and the "leader" may crash after
// deciding alone, or false suspicions may elect two leaders. Its
// existence is why the paper's lower bound (Proposition 4.3) must be
// stated within the realistic space.
type MaraboutConsensus struct {
	Proposals Proposals
}

var _ sim.Automaton = MaraboutConsensus{}

// Spawn implements sim.Automaton.
func (a MaraboutConsensus) Spawn(self model.ProcessID, n int) sim.Process {
	return &mbProc{self: self, n: n, own: a.Proposals[self]}
}

// mbValue is the leader's broadcast value.
type mbValue struct {
	Val Value
}

type mbProc struct {
	self model.ProcessID
	n    int
	own  Value

	sent bool
	done bool
	// pending holds values received from processes before we could
	// confirm them as leader (message may arrive before a λ step).
	pending map[model.ProcessID]Value
}

// Step implements sim.Process.
func (p *mbProc) Step(in *sim.Message, susp model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if p.done {
		return acts
	}
	if in != nil {
		if m, ok := in.Payload.(mbValue); ok {
			if p.pending == nil {
				p.pending = make(map[model.ProcessID]Value, 1)
			}
			p.pending[in.From] = m.Val
		}
	}

	// Select p_j: not suspected, and no lower-indexed unsuspected
	// process exists.
	leader := model.AllProcesses(p.n).Diff(susp).Min()
	if leader == 0 {
		return acts // everyone suspected: wait (cannot happen under M)
	}
	if leader == p.self {
		if !p.sent {
			p.sent = true
			for q := 1; q <= p.n; q++ {
				id := model.ProcessID(q)
				if id != p.self {
					acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: mbValue{Val: p.own}})
				}
			}
		}
		p.done = true
		acts.Events = append(acts.Events, sim.ProtocolEvent{
			Kind: sim.KindDecide, Instance: 0, Value: p.own,
		})
		return acts
	}
	if v, ok := p.pending[leader]; ok {
		p.done = true
		acts.Events = append(acts.Events, sim.ProtocolEvent{
			Kind: sim.KindDecide, Instance: 0, Value: v,
		})
	}
	return acts
}
