package consensus

import (
	"fmt"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Outcome is the consensus-relevant content of one trace and instance:
// who decided what, when.
type Outcome struct {
	Instance  int
	Decided   map[model.ProcessID]Value
	DecidedAt map[model.ProcessID]model.Time
}

// ExtractOutcome collects the decisions of one instance from a trace.
// It fails if a process decides twice or a decision carries a payload
// that is not a Value — both are protocol bugs, not spec violations.
func ExtractOutcome(tr *sim.Trace, instance int) (*Outcome, error) {
	o := &Outcome{
		Instance:  instance,
		Decided:   make(map[model.ProcessID]Value),
		DecidedAt: make(map[model.ProcessID]model.Time),
	}
	for _, d := range tr.Decisions(instance) {
		v, ok := d.Value.(Value)
		if !ok {
			return nil, fmt.Errorf("consensus: %v decided non-Value payload %T at t=%d", d.P, d.Value, d.T)
		}
		if prev, dup := o.Decided[d.P]; dup {
			return nil, fmt.Errorf("consensus: %v decided twice (%q then %q)", d.P, prev, v)
		}
		o.Decided[d.P] = v
		o.DecidedAt[d.P] = d.T
	}
	return o, nil
}

// CheckTermination verifies that every correct process of f decided.
func (o *Outcome) CheckTermination(f *model.FailurePattern) error {
	for _, p := range f.Correct().Slice() {
		if _, ok := o.Decided[p]; !ok {
			return fmt.Errorf("consensus termination violated: correct %v never decided (instance %d)", p, o.Instance)
		}
	}
	return nil
}

// CheckUniformAgreement verifies that no two processes decided
// differently — the uniform variant the paper adopts by default
// (footnote 1): disagreement is precluded even if one of the deciders
// ends up faulty.
func (o *Outcome) CheckUniformAgreement() error {
	var ref Value
	var refP model.ProcessID
	for p := model.ProcessID(1); ; p++ {
		if int(p) > model.MaxProcesses {
			return nil
		}
		if v, ok := o.Decided[p]; ok {
			if ref == NoValue {
				ref, refP = v, p
			} else if v != ref {
				return fmt.Errorf("uniform agreement violated: %v decided %q but %v decided %q",
					refP, ref, p, v)
			}
		}
	}
}

// CheckAgreementAmongCorrect verifies the correct-restricted variant
// of §6.2: agreement is required only among processes that never
// crash.
func (o *Outcome) CheckAgreementAmongCorrect(f *model.FailurePattern) error {
	var ref Value
	var refP model.ProcessID
	for _, p := range f.Correct().Slice() {
		v, ok := o.Decided[p]
		if !ok {
			continue
		}
		if ref == NoValue {
			ref, refP = v, p
		} else if v != ref {
			return fmt.Errorf("correct-restricted agreement violated: correct %v decided %q but correct %v decided %q",
				refP, ref, p, v)
		}
	}
	return nil
}

// CheckValidity verifies every decided value was proposed by some
// process.
func (o *Outcome) CheckValidity(props Proposals) error {
	proposed := make(map[Value]bool, len(props))
	for _, v := range props {
		proposed[v] = true
	}
	for p, v := range o.Decided {
		if !proposed[v] {
			return fmt.Errorf("validity violated: %v decided %q, which nobody proposed", p, v)
		}
	}
	return nil
}

// CheckUniformSpec runs termination, uniform agreement and validity —
// the full specification of §4.
func (o *Outcome) CheckUniformSpec(f *model.FailurePattern, props Proposals) error {
	if err := o.CheckTermination(f); err != nil {
		return err
	}
	if err := o.CheckUniformAgreement(); err != nil {
		return err
	}
	return o.CheckValidity(props)
}

// DecidedValue returns the common decided value when uniform agreement
// holds and at least one process decided.
func (o *Outcome) DecidedValue() (Value, bool) {
	for _, v := range o.Decided {
		return v, true
	}
	return NoValue, false
}
