package consensus

import (
	"encoding/json"
	"fmt"
	"strconv"

	"realisticfd/internal/model"
)

// Wire codec for the S-flooding payloads, used by the live runtime
// (internal/livecons) to ship the very same automaton that the
// simulator verifies over real sockets. Only SFlooding payloads are
// wire-encodable; the other algorithms are simulator-side
// demonstrations.

// wireEnvelope is the JSON frame: Kind discriminates the payload.
type wireEnvelope struct {
	Kind  string            `json:"kind"`
	Round int               `json:"round,omitempty"`
	Vals  map[string]string `json:"vals,omitempty"`
}

const (
	wireKindFlood  = "flood"
	wireKindVector = "vector"
)

// EncodeWire serializes an SFlooding payload.
func EncodeWire(payload any) ([]byte, error) {
	switch m := payload.(type) {
	case sfFloodMsg:
		return json.Marshal(wireEnvelope{
			Kind:  wireKindFlood,
			Round: m.Round,
			Vals:  valsToWire(m.Delta),
		})
	case sfVectorMsg:
		return json.Marshal(wireEnvelope{
			Kind: wireKindVector,
			Vals: valsToWire(m.Vector),
		})
	default:
		return nil, fmt.Errorf("consensus: payload %T is not wire-encodable", payload)
	}
}

// DecodeWire inverts EncodeWire.
func DecodeWire(b []byte) (any, error) {
	var env wireEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("consensus: bad wire payload: %w", err)
	}
	vals, err := valsFromWire(env.Vals)
	if err != nil {
		return nil, err
	}
	switch env.Kind {
	case wireKindFlood:
		return sfFloodMsg{Round: env.Round, Delta: vals}, nil
	case wireKindVector:
		return sfVectorMsg{Vector: vals}, nil
	default:
		return nil, fmt.Errorf("consensus: unknown wire kind %q", env.Kind)
	}
}

func valsToWire(v map[model.ProcessID]Value) map[string]string {
	out := make(map[string]string, len(v))
	for p, val := range v {
		out[strconv.Itoa(int(p))] = string(val)
	}
	return out
}

func valsFromWire(w map[string]string) (map[model.ProcessID]Value, error) {
	out := make(map[model.ProcessID]Value, len(w))
	for k, val := range w {
		id, err := strconv.Atoi(k)
		if err != nil || id < 1 || id > model.MaxProcesses {
			return nil, fmt.Errorf("consensus: bad process key %q on the wire", k)
		}
		out[model.ProcessID(id)] = Value(val)
	}
	return out, nil
}
