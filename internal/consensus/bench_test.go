package consensus

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func benchConsensus(b *testing.B, aut sim.Automaton, oracle fd.Oracle) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pat := model.MustPattern(5).MustCrash(2, 40)
		tr, err := sim.Execute(sim.Config{
			N: 5, Automaton: aut, Oracle: oracle, Pattern: pat,
			Horizon: 20000, Seed: int64(i),
			Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Stopped != sim.StopCondition {
			b.Fatal("consensus did not finish")
		}
	}
}

func BenchmarkSFloodingRun(b *testing.B) {
	benchConsensus(b, SFlooding{Proposals: DistinctProposals(5)}, fd.Perfect{Delay: 2})
}

func BenchmarkRotatingRun(b *testing.B) {
	benchConsensus(b, Rotating{Proposals: DistinctProposals(5)},
		fd.EventuallyStrong{GST: 50, Delay: 2, Seed: 3, FalseRate: 10})
}

func BenchmarkPartialOrderRun(b *testing.B) {
	benchConsensus(b, PartialOrder{Proposals: DistinctProposals(5)}, fd.PartiallyPerfect{Delay: 2})
}

func BenchmarkMaraboutRun(b *testing.B) {
	benchConsensus(b, MaraboutConsensus{Proposals: DistinctProposals(5)}, fd.Marabout{})
}
