package consensus

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

const testHorizon = model.Time(6000)

// runConsensus executes one consensus run and returns trace + outcome.
func runConsensus(t *testing.T, aut sim.Automaton, oracle fd.Oracle, pat *model.FailurePattern, seed int64) (*sim.Trace, *Outcome) {
	t.Helper()
	tr, err := sim.Execute(sim.Config{
		N: pat.N(), Automaton: aut, Oracle: oracle, Pattern: pat,
		Horizon: testHorizon, Seed: seed,
		Policy:   &sim.RandomFairPolicy{},
		StopWhen: sim.CorrectDecided(0),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	o, err := ExtractOutcome(tr, 0)
	if err != nil {
		t.Fatalf("ExtractOutcome: %v", err)
	}
	return tr, o
}

func TestProposalsValidate(t *testing.T) {
	t.Parallel()
	props := DistinctProposals(5)
	if err := props.Validate(5); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	delete(props, 3)
	if err := props.Validate(5); err == nil {
		t.Fatal("Validate accepted a missing proposal")
	}
	props[3] = NoValue
	if err := props.Validate(5); err == nil {
		t.Fatal("Validate accepted an empty proposal")
	}
}

func TestSFloodingFailureFree(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 10; seed++ {
		pat := model.MustPattern(5)
		props := DistinctProposals(5)
		_, o := runConsensus(t, SFlooding{Proposals: props}, fd.Perfect{Delay: 2}, pat, seed)
		if err := o.CheckUniformSpec(pat, props); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// With no failures and no suspicions, every vector is complete
		// and everyone decides p1's value.
		if v, _ := o.DecidedValue(); v != props[1] {
			t.Fatalf("seed %d: decided %q, want p1's %q", seed, v, props[1])
		}
	}
}

func TestSFloodingUnboundedCrashes(t *testing.T) {
	t.Parallel()
	// S-based consensus must survive ANY number of crashes — this is
	// the sufficient half of Proposition 4.3. Crash n-1 of 5 processes.
	cases := []struct {
		name    string
		crashes map[model.ProcessID]model.Time
	}{
		{"one early", map[model.ProcessID]model.Time{1: 5}},
		{"two mixed", map[model.ProcessID]model.Time{2: 10, 5: 200}},
		{"majority gone", map[model.ProcessID]model.Time{1: 10, 2: 50, 3: 90}},
		{"all but p4", map[model.ProcessID]model.Time{1: 10, 2: 60, 3: 110, 5: 160}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 6; seed++ {
				pat := model.MustPattern(5)
				for p, ct := range tc.crashes {
					pat.MustCrash(p, ct)
				}
				props := DistinctProposals(5)
				_, o := runConsensus(t, SFlooding{Proposals: props}, fd.Perfect{Delay: 3}, pat, seed)
				if err := o.CheckUniformSpec(pat, props); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestSFloodingWithRealisticStrong(t *testing.T) {
	t.Parallel()
	// The paper's sufficient condition uses any S detector; our
	// realistic Strong oracle (which §6.3 forces to be Perfect).
	pat := model.MustPattern(6).MustCrash(2, 40).MustCrash(6, 100)
	props := DistinctProposals(6)
	oracle := fd.RealisticStrong{BaseDelay: 2, Seed: 3, JitterMax: 6}
	for seed := int64(0); seed < 6; seed++ {
		p := pat.Clone()
		_, o := runConsensus(t, SFlooding{Proposals: props}, oracle, p, seed)
		if err := o.CheckUniformSpec(p, props); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSFloodingUniformityOfCrashedDeciders(t *testing.T) {
	t.Parallel()
	// Uniform agreement: a process that decides and then crashes must
	// agree with the survivors. Crash p1 shortly after the run starts
	// deciding.
	for seed := int64(0); seed < 10; seed++ {
		pat := model.MustPattern(5).MustCrash(1, 500)
		props := DistinctProposals(5)
		_, o := runConsensus(t, SFlooding{Proposals: props}, fd.Perfect{Delay: 2}, pat, seed)
		if err := o.CheckUniformAgreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRotatingFailureFree(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 10; seed++ {
		pat := model.MustPattern(5)
		props := DistinctProposals(5)
		oracle := fd.EventuallyStrong{GST: 100, Delay: 3, Seed: uint64(seed), FalseRate: 15}
		_, o := runConsensus(t, Rotating{Proposals: props}, oracle, pat, seed)
		if err := o.CheckUniformSpec(pat, props); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRotatingMinorityCrashes(t *testing.T) {
	t.Parallel()
	// f < n/2 crashes: ◇S suffices (background result of §1.2).
	for seed := int64(0); seed < 8; seed++ {
		pat := model.MustPattern(5).MustCrash(1, 30).MustCrash(4, 120)
		props := DistinctProposals(5)
		oracle := fd.EventuallyStrong{GST: 150, Delay: 3, Seed: uint64(seed), FalseRate: 10}
		_, o := runConsensus(t, Rotating{Proposals: props}, oracle, pat, seed)
		if err := o.CheckUniformSpec(pat, props); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRotatingBlocksWithoutMajority(t *testing.T) {
	t.Parallel()
	// With 3 of 5 crashed before the protocol can assemble majorities,
	// the rotating-coordinator algorithm must block (it cannot violate
	// safety, it simply never terminates) — the ◇S half of E8.
	pat := model.MustPattern(5).MustCrash(1, 2).MustCrash(2, 3).MustCrash(3, 4)
	props := DistinctProposals(5)
	oracle := fd.EventuallyStrong{GST: 50, Delay: 3, Seed: 1, FalseRate: 10}
	tr, err := sim.Execute(sim.Config{
		N: 5, Automaton: Rotating{Proposals: props}, Oracle: oracle, Pattern: pat,
		Horizon: 4000, Seed: 7, Policy: &sim.RandomFairPolicy{},
		StopWhen: sim.CorrectDecided(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stopped != sim.StopHorizon {
		t.Fatalf("run stopped by %v, want horizon (blocked)", tr.Stopped)
	}
	if n := len(tr.Decisions(0)); n != 0 {
		t.Fatalf("%d decisions despite minority alive", n)
	}
}

func TestRotatingSafetyUnderMassiveCrash(t *testing.T) {
	t.Parallel()
	// Even when crashes destroy liveness mid-protocol, decisions that
	// did happen must agree (quorum locking).
	for seed := int64(0); seed < 12; seed++ {
		pat := model.MustPattern(5).MustCrash(2, 200).MustCrash(3, 210).MustCrash(4, 220)
		props := DistinctProposals(5)
		oracle := fd.EventuallyStrong{GST: 80, Delay: 3, Seed: uint64(seed), FalseRate: 20}
		tr, err := sim.Execute(sim.Config{
			N: 5, Automaton: Rotating{Proposals: props}, Oracle: oracle, Pattern: pat,
			Horizon: 4000, Seed: seed, Policy: &sim.RandomFairPolicy{},
		})
		if err != nil {
			t.Fatal(err)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.CheckUniformAgreement(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := o.CheckValidity(props); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMaraboutConsensusUnboundedCrashes(t *testing.T) {
	t.Parallel()
	// §6.1: with the (non-realistic) Marabout detector, consensus is
	// solvable no matter how many processes crash — here all but p5.
	cases := []struct {
		name   string
		mut    func(*model.FailurePattern)
		expect model.ProcessID // whose value wins = lowest correct
	}{
		{"failure-free", func(*model.FailurePattern) {}, 1},
		{"p1 crashes", func(f *model.FailurePattern) { f.MustCrash(1, 40) }, 2},
		{"all but p5", func(f *model.FailurePattern) {
			f.MustCrash(1, 40).MustCrash(2, 42).MustCrash(3, 44).MustCrash(4, 46)
		}, 5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 5; seed++ {
				pat := model.MustPattern(5)
				tc.mut(pat)
				props := DistinctProposals(5)
				_, o := runConsensus(t, MaraboutConsensus{Proposals: props}, fd.Marabout{}, pat, seed)
				if err := o.CheckUniformSpec(pat, props); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if v, _ := o.DecidedValue(); v != props[tc.expect] {
					t.Fatalf("seed %d: decided %q, want %v's %q", seed, v, tc.expect, props[tc.expect])
				}
			}
		})
	}
}

func TestPartialOrderCorrectRestricted(t *testing.T) {
	t.Parallel()
	// §6.2: P< solves correct-restricted consensus with unbounded
	// failures. Agreement among correct processes must hold in every
	// run; uniform agreement need not (see the adversarial test
	// below).
	cases := []map[model.ProcessID]model.Time{
		{},
		{1: 30},
		{1: 30, 2: 35},
		{1: 30, 2: 35, 3: 40, 4: 45},
		{3: 25, 5: 60},
	}
	for i, crashes := range cases {
		for seed := int64(0); seed < 6; seed++ {
			pat := model.MustPattern(5)
			for p, ct := range crashes {
				pat.MustCrash(p, ct)
			}
			props := DistinctProposals(5)
			_, o := runConsensus(t, PartialOrder{Proposals: props}, fd.PartiallyPerfect{Delay: 3}, pat, seed)
			if err := o.CheckTermination(pat); err != nil {
				t.Fatalf("case %d seed %d: %v", i, seed, err)
			}
			if err := o.CheckAgreementAmongCorrect(pat); err != nil {
				t.Fatalf("case %d seed %d: %v", i, seed, err)
			}
			if err := o.CheckValidity(props); err != nil {
				t.Fatalf("case %d seed %d: %v", i, seed, err)
			}
		}
	}
}

func TestPartialOrderUniformViolation(t *testing.T) {
	t.Parallel()
	// The §6.2 separation witness: p1 decides its own value and
	// crashes before anyone hears from it; the survivors agree on a
	// different value. Uniform consensus is violated while
	// correct-restricted consensus holds — so P< < P, and uniform
	// consensus is strictly harder.
	pat := model.MustPattern(5)
	props := DistinctProposals(5)
	var crashed bool
	tr, err := sim.Execute(sim.Config{
		N: 5, Automaton: PartialOrder{Proposals: props},
		Oracle:  fd.PartiallyPerfect{Delay: 3},
		Pattern: pat, Horizon: testHorizon, Seed: 11,
		// Embargo every message from p1 for the whole run: the model
		// allows unbounded delay, and p1 will be faulty so condition
		// (5) never forces delivery.
		Policy: &sim.DelayPolicy{Target: model.NewProcessSet(1), Until: testHorizon + 1},
		AfterStep: func(r *sim.Run, ev *sim.EventRecord) {
			if crashed || ev.P != 1 {
				return
			}
			for _, pe := range ev.Events {
				if pe.Kind == sim.KindDecide {
					crashed = true
					if err := r.Crash(1); err != nil {
						t.Errorf("crash p1: %v", err)
					}
				}
			}
		},
		StopWhen: sim.CorrectDecided(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !crashed {
		t.Fatal("p1 never decided; cannot build the witness")
	}
	o, err := ExtractOutcome(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CheckAgreementAmongCorrect(pat); err != nil {
		t.Fatalf("correct-restricted agreement must hold: %v", err)
	}
	if err := o.CheckUniformAgreement(); err == nil {
		t.Fatal("expected a uniform-agreement violation, got none")
	}
	if o.Decided[1] != props[1] {
		t.Fatalf("p1 decided %q, want its own %q", o.Decided[1], props[1])
	}
}

func TestExtractOutcomeRejectsDoubleDecision(t *testing.T) {
	t.Parallel()
	tr := fabricateTrace(t)
	if _, err := ExtractOutcome(tr, 0); err == nil {
		t.Fatal("double decision not rejected")
	}
}

// fabricateTrace builds a trace where one process decides twice, via a
// deliberately buggy automaton.
func fabricateTrace(t *testing.T) *sim.Trace {
	t.Helper()
	tr, err := sim.Execute(sim.Config{
		N: 4, Automaton: doubleDecider{}, Oracle: fd.Perfect{}, Horizon: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

type doubleDecider struct{}

type ddProc struct{ count int }

func (doubleDecider) Spawn(model.ProcessID, int) sim.Process { return &ddProc{} }

func (p *ddProc) Step(*sim.Message, model.ProcessSet, model.Time) sim.Actions {
	if p.count < 2 {
		p.count++
		return sim.Actions{Events: []sim.ProtocolEvent{{Kind: sim.KindDecide, Instance: 0, Value: Value("x")}}}
	}
	return sim.Actions{}
}
