package consensus

import (
	"math/rand"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// TestSFloodingRandomSweep is the safety-net property test: over many
// random (pattern, seed) configurations, the full uniform
// specification must hold. This is the E1/E3 substrate exercised far
// beyond the curated scenarios.
func TestSFloodingRandomSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	rng := rand.New(rand.NewSource(2024))
	const runs = 60
	for i := 0; i < runs; i++ {
		n := 4 + rng.Intn(4) // 4..7
		pat := model.MustPattern(n)
		// Each process crashes with probability 1/3 at a time in
		// [1, 400) — leaving possibly zero correct processes is fine
		// for safety; keep at least one for termination checking.
		var crashed int
		for p := 1; p <= n; p++ {
			if crashed < n-1 && rng.Intn(3) == 0 {
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(400)))
				crashed++
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: SFlooding{Proposals: props},
			Oracle:  fd.Perfect{Delay: model.Time(rng.Intn(5))},
			Pattern: pat, Horizon: 30000, Seed: rng.Int63(),
			Policy:   &sim.RandomFairPolicy{},
			StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if tr.Stopped != sim.StopCondition {
			t.Fatalf("run %d: did not terminate (n=%d pattern=%v)", i, n, pat)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := o.CheckUniformSpec(pat, props); err != nil {
			t.Fatalf("run %d (n=%d, %v): %v", i, n, pat, err)
		}
	}
}

// TestRotatingRandomSafetySweep hammers the ◇S algorithm with chaotic
// crash patterns and noisy detectors: liveness may be lost, safety
// never.
func TestRotatingRandomSafetySweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	rng := rand.New(rand.NewSource(4242))
	const runs = 50
	for i := 0; i < runs; i++ {
		n := 4 + rng.Intn(3)
		pat := model.MustPattern(n)
		for p := 1; p <= n; p++ {
			if rng.Intn(2) == 0 { // aggressive: up to all crash
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(600)))
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: Rotating{Proposals: props},
			Oracle: fd.EventuallyStrong{
				GST: model.Time(rng.Intn(300)), Delay: 2,
				Seed: rng.Uint64(), FalseRate: 5 + rng.Intn(30),
			},
			Pattern: pat, Horizon: 8000, Seed: rng.Int63(),
			Policy: &sim.RandomFairPolicy{},
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := o.CheckUniformAgreement(); err != nil {
			t.Fatalf("run %d (n=%d, %v): %v", i, n, pat, err)
		}
		if err := o.CheckValidity(props); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestRotatingLivenessSweep pins the two liveness regressions found
// during development: (a) a coordinator must never abandon an
// in-progress round when later coordinated rounds open, and (b) a
// proposal arriving before the participant reaches its round must be
// buffered, not dropped — in the paper's model the message would have
// waited in the buffer (§2.3). Both bugs stalled roughly one run in
// ten thousand, so this sweep runs wide and cheap.
func TestRotatingLivenessSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("wide sweep")
	}
	for seed := int64(0); seed < 4000; seed++ {
		pat := model.MustPattern(5).MustCrash(2, 40)
		tr, err := sim.Execute(sim.Config{
			N: 5, Automaton: Rotating{Proposals: DistinctProposals(5)},
			Oracle:  fd.EventuallyStrong{GST: 50, Delay: 2, Seed: 3, FalseRate: 10},
			Pattern: pat, Horizon: 20000, Seed: seed,
			Policy: &sim.RandomFairPolicy{}, StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Stopped != sim.StopCondition {
			t.Fatalf("seed %d: rotating consensus stalled with majority alive", seed)
		}
	}
}

// TestPartialOrderRandomSweep checks the §6.2 algorithm's
// correct-restricted guarantees over random configurations.
func TestPartialOrderRandomSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	rng := rand.New(rand.NewSource(99))
	const runs = 50
	for i := 0; i < runs; i++ {
		n := 4 + rng.Intn(4)
		pat := model.MustPattern(n)
		var crashed int
		for p := 1; p <= n; p++ {
			if crashed < n-1 && rng.Intn(3) == 0 {
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(300)))
				crashed++
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: PartialOrder{Proposals: props},
			Oracle:  fd.PartiallyPerfect{Delay: model.Time(1 + rng.Intn(4))},
			Pattern: pat, Horizon: 30000, Seed: rng.Int63(),
			Policy:   &sim.RandomFairPolicy{},
			StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := o.CheckTermination(pat); err != nil {
			t.Fatalf("run %d (n=%d, %v): %v", i, n, pat, err)
		}
		if err := o.CheckAgreementAmongCorrect(pat); err != nil {
			t.Fatalf("run %d (n=%d, %v): %v", i, n, pat, err)
		}
		if err := o.CheckValidity(props); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
