package consensus

import (
	"fmt"
	"math/rand"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// TestSFloodingRandomSweep is the safety-net property test: over many
// random (pattern, seed) configurations, the full uniform
// specification must hold. This is the E1/E3 substrate exercised far
// beyond the curated scenarios. Each seed derives its own private RNG,
// so the sweep fans out across the harness worker pool with results
// identical to a sequential run.
func TestSFloodingRandomSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	errs := harness.SeedMap(harness.Seeds(60), 0, func(seed int64) error {
		rng := rand.New(rand.NewSource(2024 + seed))
		n := 4 + rng.Intn(4) // 4..7
		pat := model.MustPattern(n)
		// Each process crashes with probability 1/3 at a time in
		// [1, 400) — leaving possibly zero correct processes is fine
		// for safety; keep at least one for termination checking.
		var crashed int
		for p := 1; p <= n; p++ {
			if crashed < n-1 && rng.Intn(3) == 0 {
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(400)))
				crashed++
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: SFlooding{Proposals: props},
			Oracle:  fd.Perfect{Delay: model.Time(rng.Intn(5))},
			Pattern: pat, Horizon: 30000, Seed: rng.Int63(),
			Policy:   &sim.RandomFairPolicy{},
			StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if tr.Stopped != sim.StopCondition {
			return fmt.Errorf("seed %d: did not terminate (n=%d pattern=%v)", seed, n, pat)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if err := o.CheckUniformSpec(pat, props); err != nil {
			return fmt.Errorf("seed %d (n=%d, %v): %w", seed, n, pat, err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSFloodingFaultyLinkSweep puts the uniform specification under a
// delaying, partitioning — but eventually delivering — network: extra
// latency up to 8 ticks plus a partition that heals at t=300. Loss-free
// faults preserve condition (5) of §2.4, so the full spec (termination
// included) must still hold in every run.
func TestSFloodingFaultyLinkSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("faulty sweep")
	}
	props := DistinctProposals(5)
	sc := harness.Scenario{
		Name: "sflooding-faulty", N: 5,
		Automaton: SFlooding{Proposals: props},
		Oracle:    fd.Perfect{Delay: 2}, Horizon: 30000,
		Pattern: func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(2, 70)
		},
		Policy: func() sim.Policy { return &sim.RandomFairPolicy{} },
		Faults: &sim.LinkFaults{
			MaxExtraDelay: 8,
			Partitions: []sim.Partition{
				{Side: model.NewProcessSet(1, 3), From: 20, Until: 300},
			},
		},
		StopWhen: func() func(*sim.Trace) bool { return sim.CorrectDecided(0) },
	}
	for _, r := range harness.Sweep(sc, harness.Seeds(40), 0) {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", r.Seed, r.Err)
		}
		if r.Trace.Stopped != sim.StopCondition {
			t.Fatalf("seed %d: stalled despite loss-free faults", r.Seed)
		}
		o, err := ExtractOutcome(r.Trace, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", r.Seed, err)
		}
		if err := o.CheckUniformSpec(r.Trace.Pattern, props); err != nil {
			t.Fatalf("seed %d: %v", r.Seed, err)
		}
	}
}

// TestRotatingRandomSafetySweep hammers the ◇S algorithm with chaotic
// crash patterns and noisy detectors: liveness may be lost, safety
// never.
func TestRotatingRandomSafetySweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	errs := harness.SeedMap(harness.Seeds(50), 0, func(seed int64) error {
		rng := rand.New(rand.NewSource(4242 + seed))
		n := 4 + rng.Intn(3)
		pat := model.MustPattern(n)
		for p := 1; p <= n; p++ {
			if rng.Intn(2) == 0 { // aggressive: up to all crash
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(600)))
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: Rotating{Proposals: props},
			Oracle: fd.EventuallyStrong{
				GST: model.Time(rng.Intn(300)), Delay: 2,
				Seed: rng.Uint64(), FalseRate: 5 + rng.Intn(30),
			},
			Pattern: pat, Horizon: 8000, Seed: rng.Int63(),
			Policy: &sim.RandomFairPolicy{},
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if err := o.CheckUniformAgreement(); err != nil {
			return fmt.Errorf("seed %d (n=%d, %v): %w", seed, n, pat, err)
		}
		if err := o.CheckValidity(props); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRotatingLossyLinkSafetySweep drops a quarter of all messages,
// stretches the rest and cuts the network in half for a while — and
// still requires uniform agreement and validity. A lossy link may
// starve liveness (no retransmission below the algorithm) but must
// never manufacture disagreement.
func TestRotatingLossyLinkSafetySweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("lossy sweep")
	}
	props := DistinctProposals(5)
	sc := harness.Scenario{
		Name: "rotating-lossy", N: 5,
		Automaton: Rotating{Proposals: props},
		OracleFor: func(seed int64) fd.Oracle {
			return fd.EventuallyStrong{GST: 80, Delay: 2, Seed: uint64(seed), FalseRate: 15}
		},
		Horizon: 5000,
		Pattern: func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(4, 120)
		},
		Policy: func() sim.Policy { return &sim.RandomFairPolicy{} },
		Faults: &sim.LinkFaults{
			DropPct:       25,
			MaxExtraDelay: 10,
			Partitions: []sim.Partition{
				{Side: model.NewProcessSet(2, 5), From: 100, Until: 900},
			},
		},
	}
	for _, r := range harness.Sweep(sc, harness.Seeds(40), 0) {
		if r.Err != nil {
			t.Fatalf("seed %d: %v", r.Seed, r.Err)
		}
		o, err := ExtractOutcome(r.Trace, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", r.Seed, err)
		}
		if err := o.CheckUniformAgreement(); err != nil {
			t.Fatalf("seed %d: agreement broke on a lossy link: %v", r.Seed, err)
		}
		if err := o.CheckValidity(props); err != nil {
			t.Fatalf("seed %d: %v", r.Seed, err)
		}
	}
}

// TestRotatingLivenessSweep pins the two liveness regressions found
// during development: (a) a coordinator must never abandon an
// in-progress round when later coordinated rounds open, and (b) a
// proposal arriving before the participant reaches its round must be
// buffered, not dropped — in the paper's model the message would have
// waited in the buffer (§2.3). Both bugs stalled roughly one run in
// ten thousand, so this sweep runs wide and cheap — on the harness
// worker pool since the scenario is fixed and only the seed moves.
func TestRotatingLivenessSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("wide sweep")
	}
	sc := harness.Scenario{
		Name: "rotating-liveness", N: 5,
		Automaton: Rotating{Proposals: DistinctProposals(5)},
		Oracle:    fd.EventuallyStrong{GST: 50, Delay: 2, Seed: 3, FalseRate: 10},
		Horizon:   20000,
		Pattern: func() *model.FailurePattern {
			return model.MustPattern(5).MustCrash(2, 40)
		},
		Policy:   func() sim.Policy { return &sim.RandomFairPolicy{} },
		StopWhen: func() func(*sim.Trace) bool { return sim.CorrectDecided(0) },
	}
	stalls := harness.Map(sc, harness.Seeds(4000), 0, func(r harness.Result) error {
		if r.Err != nil {
			return fmt.Errorf("seed %d: %w", r.Seed, r.Err)
		}
		if r.Trace.Stopped != sim.StopCondition {
			return fmt.Errorf("seed %d: rotating consensus stalled with majority alive", r.Seed)
		}
		return nil
	})
	for _, err := range stalls {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPartialOrderRandomSweep checks the §6.2 algorithm's
// correct-restricted guarantees over random configurations.
func TestPartialOrderRandomSweep(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("random sweep")
	}
	errs := harness.SeedMap(harness.Seeds(50), 0, func(seed int64) error {
		rng := rand.New(rand.NewSource(99 + seed))
		n := 4 + rng.Intn(4)
		pat := model.MustPattern(n)
		var crashed int
		for p := 1; p <= n; p++ {
			if crashed < n-1 && rng.Intn(3) == 0 {
				pat.MustCrash(model.ProcessID(p), model.Time(1+rng.Intn(300)))
				crashed++
			}
		}
		props := DistinctProposals(n)
		tr, err := sim.Execute(sim.Config{
			N: n, Automaton: PartialOrder{Proposals: props},
			Oracle:  fd.PartiallyPerfect{Delay: model.Time(1 + rng.Intn(4))},
			Pattern: pat, Horizon: 30000, Seed: rng.Int63(),
			Policy:   &sim.RandomFairPolicy{},
			StopWhen: sim.CorrectDecided(0),
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		o, err := ExtractOutcome(tr, 0)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if err := o.CheckTermination(pat); err != nil {
			return fmt.Errorf("seed %d (n=%d, %v): %w", seed, n, pat, err)
		}
		if err := o.CheckAgreementAmongCorrect(pat); err != nil {
			return fmt.Errorf("seed %d (n=%d, %v): %w", seed, n, pat, err)
		}
		if err := o.CheckValidity(props); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
