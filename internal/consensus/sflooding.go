package consensus

import (
	"fmt"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// SFlooding is the Chandra-Toueg S-based consensus algorithm
// (JACM 1996, Fig. 6.1 structure), the algorithm Proposition 4.3 cites
// for the sufficient direction: it solves uniform consensus with any
// number of crash failures given a Strong (a fortiori Perfect)
// detector.
//
// Structure: n−1 asynchronous flooding rounds in which each process
// broadcasts the proposals it newly learned and waits, for every
// process q, until it receives q's round-r message or suspects q;
// then one vector round exchanging the full estimate vectors V_p; each
// process intersects its own vector with every vector received from a
// non-suspected process and decides the value of the lowest-indexed
// entry of the intersection.
//
// With weak accuracy (some correct c never suspected), every process
// waits for c in every round, every final vector contains V_c, and
// every intersection equals V_c exactly — so even processes that crash
// after deciding decided the same value: uniform agreement.
//
// Run with a detector that never suspects alive processes, every round
// consults every alive process, making the algorithm total (§4.2);
// that is measured, not assumed, by experiment E1.
type SFlooding struct {
	Proposals Proposals
}

var _ sim.Automaton = SFlooding{}

// Spawn implements sim.Automaton.
func (a SFlooding) Spawn(self model.ProcessID, n int) sim.Process {
	v := map[model.ProcessID]Value{self: a.Proposals[self]}
	return &sfProc{
		self:     self,
		n:        n,
		rounds:   n - 1,
		round:    0, // bumped to 1 by the first step's progress loop
		v:        v,
		sent:     map[model.ProcessID]bool{},
		received: make([]model.ProcessSet, n+1),
		vectors:  map[model.ProcessID]map[model.ProcessID]Value{},
	}
}

// sfPhase enumerates the S-flooding phases.
type sfPhase int

const (
	sfFlood  sfPhase = iota // rounds 1..n-1
	sfVector                // vector exchange
	sfDone
)

// sfFloodMsg is the round-r flood message carrying newly learned
// proposals (the Δ_p of Chandra-Toueg).
type sfFloodMsg struct {
	Round int
	Delta map[model.ProcessID]Value
}

// sfVectorMsg carries the full estimate vector after the last round.
type sfVectorMsg struct {
	Vector map[model.ProcessID]Value
}

type sfProc struct {
	self   model.ProcessID
	n      int
	rounds int

	phase sfPhase
	round int // current flood round, 1-based once started

	v    map[model.ProcessID]Value // known proposals
	sent map[model.ProcessID]bool  // proposal keys already broadcast

	received    []model.ProcessSet // received[r] = round-r flood senders
	vectors     map[model.ProcessID]map[model.ProcessID]Value
	vecReceived model.ProcessSet
}

// Step implements sim.Process.
func (p *sfProc) Step(in *sim.Message, susp model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if in != nil {
		p.absorb(in)
	}
	if p.phase == sfDone {
		return acts
	}

	// Progress loop: guards may already be satisfied by buffered
	// messages, letting several transitions fire in one step.
	for {
		switch p.phase {
		case sfFlood:
			if p.round == 0 {
				p.round = 1
				acts.Sends = append(acts.Sends, p.floodSends()...)
				continue
			}
			if !p.roundGuard(p.round, susp) {
				return acts
			}
			if p.round < p.rounds {
				p.round++
				acts.Sends = append(acts.Sends, p.floodSends()...)
				continue
			}
			p.phase = sfVector
			acts.Sends = append(acts.Sends, p.vectorSends()...)
			continue

		case sfVector:
			if !p.vectorGuard(susp) {
				return acts
			}
			val, ok := p.decide(susp)
			p.phase = sfDone
			if ok {
				acts.Events = append(acts.Events, sim.ProtocolEvent{
					Kind: sim.KindDecide, Instance: 0, Value: val,
				})
			}
			return acts

		default:
			return acts
		}
	}
}

// absorb merges an incoming message into local knowledge.
func (p *sfProc) absorb(in *sim.Message) {
	switch m := in.Payload.(type) {
	case sfFloodMsg:
		if m.Round >= 1 && m.Round <= p.rounds {
			p.received[m.Round] = p.received[m.Round].Add(in.From)
		}
		for q, val := range m.Delta {
			if _, ok := p.v[q]; !ok {
				p.v[q] = val
			}
		}
	case sfVectorMsg:
		if _, ok := p.vectors[in.From]; !ok {
			vec := make(map[model.ProcessID]Value, len(m.Vector))
			for q, val := range m.Vector {
				vec[q] = val
			}
			p.vectors[in.From] = vec
			p.vecReceived = p.vecReceived.Add(in.From)
		}
	}
}

// floodSends broadcasts the newly learned proposals for the current
// round to every other process and marks the round received from self.
func (p *sfProc) floodSends() []sim.Send {
	delta := make(map[model.ProcessID]Value)
	for q, val := range p.v {
		if !p.sent[q] {
			p.sent[q] = true
			delta[q] = val
		}
	}
	p.received[p.round] = p.received[p.round].Add(p.self)
	// One boxed payload shared by every destination: payloads are
	// immutable once sent, so the broadcast costs one allocation.
	var msg any = sfFloodMsg{Round: p.round, Delta: delta}
	sends := make([]sim.Send, 0, p.n-1)
	for q := 1; q <= p.n; q++ {
		if model.ProcessID(q) != p.self {
			sends = append(sends, sim.Send{To: model.ProcessID(q), Payload: msg})
		}
	}
	return sends
}

// vectorSends broadcasts the full vector and stores our own.
func (p *sfProc) vectorSends() []sim.Send {
	vec := make(map[model.ProcessID]Value, len(p.v))
	for q, val := range p.v {
		vec[q] = val
	}
	p.vectors[p.self] = vec
	p.vecReceived = p.vecReceived.Add(p.self)
	var msg any = sfVectorMsg{Vector: vec}
	sends := make([]sim.Send, 0, p.n-1)
	for q := 1; q <= p.n; q++ {
		if model.ProcessID(q) != p.self {
			sends = append(sends, sim.Send{To: model.ProcessID(q), Payload: msg})
		}
	}
	return sends
}

// roundGuard is the §4 wait condition: for every process q, a round-r
// message was received from q or q is currently suspected.
func (p *sfProc) roundGuard(r int, susp model.ProcessSet) bool {
	for q := 1; q <= p.n; q++ {
		id := model.ProcessID(q)
		if !p.received[r].Has(id) && !susp.Has(id) {
			return false
		}
	}
	return true
}

// vectorGuard waits for a vector from every non-suspected process.
func (p *sfProc) vectorGuard(susp model.ProcessSet) bool {
	for q := 1; q <= p.n; q++ {
		id := model.ProcessID(q)
		if !p.vecReceived.Has(id) && !susp.Has(id) {
			return false
		}
	}
	return true
}

// decide intersects the vectors received from non-suspected processes
// (own vector included) and returns the value of the lowest-indexed
// surviving entry. An empty intersection can only happen when the
// detector lied (false suspicions partitioned knowledge); the paper's
// S-based algorithm never encounters it, and the E2 adversary relies
// on the fallback to the local estimate below.
func (p *sfProc) decide(susp model.ProcessSet) (Value, bool) {
	inter := make(map[model.ProcessID]Value, len(p.vectors[p.self]))
	for q, val := range p.vectors[p.self] {
		inter[q] = val
	}
	for q := 1; q <= p.n; q++ {
		id := model.ProcessID(q)
		vec, ok := p.vectors[id]
		if !ok {
			continue // suspected, no vector
		}
		for r := range inter {
			if _, present := vec[r]; !present {
				delete(inter, r)
			}
		}
	}
	if len(inter) == 0 {
		// Degenerate fallback outside the S assumptions: decide own
		// estimate (lowest-indexed known value).
		return p.lowest(p.v)
	}
	return p.lowest(inter)
}

// lowest returns the value of the smallest process ID in the vector —
// the "first non-⊥ entry" of Chandra-Toueg.
func (p *sfProc) lowest(vec map[model.ProcessID]Value) (Value, bool) {
	for q := 1; q <= p.n; q++ {
		if val, ok := vec[model.ProcessID(q)]; ok {
			return val, true
		}
	}
	return NoValue, false
}

// String aids debugging.
func (p *sfProc) String() string {
	return fmt.Sprintf("sf{%v phase=%d round=%d v=%s}", p.self, p.phase, p.round, vecString(p.v))
}
