package consensus

import (
	"sort"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Rotating is the Chandra-Toueg ◇S-based rotating-coordinator
// consensus algorithm (JACM 1996, Fig. 6.2 structure). It terminates
// when a majority of processes are correct and the detector is
// eventually weakly accurate; agreement and validity hold in every
// run thanks to the timestamp-locking discipline (quorum
// intersection).
//
// Crucially for the paper's story, Rotating is not total: a decision
// consults only ⌈(n+1)/2⌉ processes. Footnote 4 of §4.1 singles this
// algorithm out as the canonical non-total example — and consequently
// it cannot solve consensus when the number of failures is unbounded:
// with a minority alive, every wait for a majority blocks forever.
// Experiment E8 measures exactly that crossover.
type Rotating struct {
	Proposals Proposals
}

var _ sim.Automaton = Rotating{}

// Spawn implements sim.Automaton.
func (a Rotating) Spawn(self model.ProcessID, n int) sim.Process {
	return &rcProc{
		self:         self,
		n:            n,
		est:          a.Proposals[self],
		ts:           0,
		earlyPropose: map[int]Value{},
		coord:        map[int]*coordState{},
	}
}

// Message payloads. Round numbers start at 1; coordinator of round r
// is ((r-1) mod n) + 1.
type (
	// rcEstimate is the phase-1 message: a participant's current
	// estimate and the round in which it was last locked.
	rcEstimate struct {
		Round int
		Val   Value
		TS    int
	}
	// rcPropose is the phase-2 message: the coordinator's pick.
	rcPropose struct {
		Round int
		Val   Value
	}
	// rcAck is the phase-3 reply: Ack reports adoption, ¬Ack reports a
	// suspicion-driven refusal.
	rcAck struct {
		Round int
		Ack   bool
	}
	// rcDecide is the reliably-broadcast decision.
	rcDecide struct {
		Val Value
	}
)

type estEntry struct {
	val Value
	ts  int
}

// coordState is the coordinator-side state of one coordinated round.
// A process keeps state for every round it coordinates concurrently:
// Chandra-Toueg's coordinator never abandons a round — participants
// may be waiting on its proposal long after faster processes have
// moved on, and only a proposal or a (post-GST impossible) suspicion
// releases them.
type coordState struct {
	round     int
	estimates map[model.ProcessID]estEntry
	proposed  bool
	propVal   Value
	acks      int
	nacks     int
	replied   model.ProcessSet
	decided   bool // sent rcDecide for this round
}

type rcProc struct {
	self model.ProcessID
	n    int

	round   int // current round as participant; 0 = not started
	est     Value
	ts      int
	waiting bool // as participant: waiting for round's propose

	// earlyPropose buffers proposals that arrive before this
	// participant reaches their round. In the paper's model the
	// message would simply wait in the buffer until the process's
	// wait-statement examines it (§2.3); an event-driven automaton
	// must keep it explicitly or a laggard waits forever on a
	// proposal it already consumed-and-dropped.
	earlyPropose map[int]Value

	coord map[int]*coordState // round → coordinator state
	// coordRounds mirrors coord's keys in increasing order so the
	// per-step progress scan never rebuilds and sorts a key slice
	// (measured as the top allocator of the E8 sweep).
	coordRounds []int
	// roundScratch is the reusable snapshot buffer of coordProgress.
	roundScratch []int

	done    bool
	relayed bool
}

func (p *rcProc) majority() int { return p.n/2 + 1 }

func (p *rcProc) coordinator(r int) model.ProcessID {
	return model.ProcessID((r-1)%p.n + 1)
}

// Step implements sim.Process.
func (p *rcProc) Step(in *sim.Message, susp model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if p.done && p.relayed {
		return acts
	}

	if in != nil {
		if dec, ok := in.Payload.(rcDecide); ok {
			return p.decide(dec.Val)
		}
		p.absorb(in, &acts)
	}
	if p.done {
		return acts
	}

	if p.round == 0 {
		p.enterRound(1, &acts)
	}

	// Participant: waiting for the coordinator's proposal or its
	// suspicion.
	if p.waiting {
		c := p.coordinator(p.round)
		if susp.Has(c) && c != p.self {
			// nack and move on.
			acts.Sends = append(acts.Sends, sim.Send{To: c, Payload: rcAck{Round: p.round, Ack: false}})
			p.enterRound(p.round+1, &acts)
		}
	}

	// Coordinator: act on whatever has been collected.
	p.coordProgress(&acts)
	return acts
}

// enterRound moves the participant into round r, sends its estimate
// to the round's coordinator (locally absorbed when the coordinator is
// self), and consumes a buffered early proposal if one already
// arrived.
func (p *rcProc) enterRound(r int, acts *sim.Actions) {
	p.round = r
	p.waiting = true
	c := p.coordinator(r)
	est := rcEstimate{Round: r, Val: p.est, TS: p.ts}
	if c == p.self {
		p.coordAbsorbEstimate(p.self, est)
	} else {
		acts.Sends = append(acts.Sends, sim.Send{To: c, Payload: est})
	}
	if v, ok := p.earlyPropose[r]; ok {
		delete(p.earlyPropose, r)
		p.adoptPropose(r, v, acts)
	}
}

// adoptPropose is phase 3's positive branch: adopt the coordinator's
// value, lock it at this round, ack, and move on.
func (p *rcProc) adoptPropose(r int, v Value, acts *sim.Actions) {
	p.est = v
	p.ts = r
	p.waiting = false
	c := p.coordinator(r)
	ack := rcAck{Round: r, Ack: true}
	if c == p.self {
		p.coordAbsorbAck(p.self, ack)
	} else {
		acts.Sends = append(acts.Sends, sim.Send{To: c, Payload: ack})
	}
	p.enterRound(r+1, acts)
}

// absorb processes a non-decide message.
func (p *rcProc) absorb(in *sim.Message, acts *sim.Actions) {
	switch m := in.Payload.(type) {
	case rcEstimate:
		if p.coordinator(m.Round) == p.self {
			p.coordAbsorbEstimate(in.From, m)
		}
	case rcPropose:
		switch {
		case m.Round == p.round && p.waiting:
			p.adoptPropose(m.Round, m.Val, acts)
		case m.Round > p.round:
			// Early proposal for a round we have not reached: keep it
			// available, as the paper's message buffer would.
			if _, dup := p.earlyPropose[m.Round]; !dup {
				p.earlyPropose[m.Round] = m.Val
			}
		}
	case rcAck:
		if p.coordinator(m.Round) == p.self {
			p.coordAbsorbAck(in.From, m)
		}
	}
}

// coordRound returns (creating if needed) the state of a round this
// process coordinates. Rounds are never abandoned: slower
// participants may depend on their proposals arbitrarily late.
func (p *rcProc) coordRound(r int) *coordState {
	cs, ok := p.coord[r]
	if !ok {
		cs = &coordState{round: r, estimates: map[model.ProcessID]estEntry{}}
		p.coord[r] = cs
		i := sort.SearchInts(p.coordRounds, r)
		p.coordRounds = append(p.coordRounds, 0)
		copy(p.coordRounds[i+1:], p.coordRounds[i:])
		p.coordRounds[i] = r
	}
	return cs
}

func (p *rcProc) coordAbsorbEstimate(from model.ProcessID, m rcEstimate) {
	cs := p.coordRound(m.Round)
	if cs.proposed {
		return
	}
	if _, ok := cs.estimates[from]; !ok {
		cs.estimates[from] = estEntry{val: m.Val, ts: m.TS}
	}
}

func (p *rcProc) coordAbsorbAck(from model.ProcessID, m rcAck) {
	cs := p.coordRound(m.Round)
	if cs.replied.Has(from) {
		return
	}
	cs.replied = cs.replied.Add(from)
	if m.Ack {
		cs.acks++
	} else {
		cs.nacks++
	}
}

// coordProgress fires, for every live coordinated round, the
// transitions whose guards hold (rounds iterated in increasing order
// for determinism). It iterates a snapshot: a round created while a
// transition fires is not visited until the next step, exactly as
// when the keys were collected up front.
func (p *rcProc) coordProgress(acts *sim.Actions) {
	rounds := append(p.roundScratch[:0], p.coordRounds...)
	p.roundScratch = rounds
	for _, r := range rounds {
		p.coordProgressRound(p.coord[r], acts)
	}
}

func (p *rcProc) coordProgressRound(cs *coordState, acts *sim.Actions) {
	if cs.decided {
		return
	}
	// Phase 2: with a majority of estimates, propose the one locked in
	// the highest round (ties broken by lowest process ID for
	// determinism).
	if !cs.proposed && len(cs.estimates) >= p.majority() {
		bestTS := -1
		var bestVal Value
		for q := 1; q <= p.n; q++ {
			e, ok := cs.estimates[model.ProcessID(q)]
			if !ok {
				continue
			}
			if e.ts > bestTS {
				bestTS = e.ts
				bestVal = e.val
			}
		}
		cs.proposed = true
		cs.propVal = bestVal
		// One boxed payload shared by every destination: payloads are
		// immutable once sent, so the broadcast needs one allocation,
		// not n−1.
		var prop any = rcPropose{Round: cs.round, Val: bestVal}
		for q := 1; q <= p.n; q++ {
			id := model.ProcessID(q)
			if id == p.self {
				continue
			}
			acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: prop})
		}
		// Deliver the proposal to ourselves directly.
		if p.waiting && p.round == cs.round {
			p.adoptPropose(cs.round, bestVal, acts)
		} else if p.round < cs.round {
			// We coordinate a round we have not reached as a
			// participant (possible when lagging): keep our own
			// proposal available for when we get there.
			if _, dup := p.earlyPropose[cs.round]; !dup {
				p.earlyPropose[cs.round] = bestVal
			}
		}
	}
	// Phase 4: a majority of acks decides; reliable broadcast.
	if cs.proposed && cs.acks >= p.majority() {
		cs.decided = true
		var dec any = rcDecide{Val: cs.propVal}
		for q := 1; q <= p.n; q++ {
			id := model.ProcessID(q)
			if id == p.self {
				continue
			}
			acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: dec})
		}
		local := p.decide(cs.propVal)
		acts.Events = append(acts.Events, local.Events...)
		acts.Sends = append(acts.Sends, local.Sends...)
	}
}

// decide records the decision once and relays it once (the reliable
// broadcast step that makes the decision contagious).
func (p *rcProc) decide(v Value) sim.Actions {
	var acts sim.Actions
	if !p.done {
		p.done = true
		acts.Events = append(acts.Events, sim.ProtocolEvent{
			Kind: sim.KindDecide, Instance: 0, Value: v,
		})
	}
	if !p.relayed {
		p.relayed = true
		var relay any = rcDecide{Val: v}
		for q := 1; q <= p.n; q++ {
			id := model.ProcessID(q)
			if id == p.self {
				continue
			}
			acts.Sends = append(acts.Sends, sim.Send{To: id, Payload: relay})
		}
	}
	return acts
}
