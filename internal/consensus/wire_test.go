package consensus

import (
	"testing"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func TestWireFloodRoundTrip(t *testing.T) {
	t.Parallel()
	in := sfFloodMsg{
		Round: 3,
		Delta: map[model.ProcessID]Value{1: "v1", 4: "v4"},
	}
	b, err := EncodeWire(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(sfFloodMsg)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.Round != 3 || len(got.Delta) != 2 || got.Delta[1] != "v1" || got.Delta[4] != "v4" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestWireVectorRoundTrip(t *testing.T) {
	t.Parallel()
	in := sfVectorMsg{Vector: map[model.ProcessID]Value{2: "x"}}
	b, err := EncodeWire(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(sfVectorMsg)
	if !ok || got.Vector[2] != "x" {
		t.Fatalf("round trip = %+v (%T)", out, out)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := EncodeWire(42); err == nil {
		t.Error("encoded a non-payload")
	}
	bad := [][]byte{
		[]byte("not json"),
		[]byte(`{"kind":"warp"}`),
		[]byte(`{"kind":"flood","vals":{"zero":"v"}}`),
		[]byte(`{"kind":"flood","vals":{"0":"v"}}`),
		[]byte(`{"kind":"flood","vals":{"65":"v"}}`),
	}
	for _, b := range bad {
		if _, err := DecodeWire(b); err == nil {
			t.Errorf("DecodeWire(%s) accepted", b)
		}
	}
}

// TestWireRoundTripPreservesSimulatorBehaviour encodes and decodes a
// payload and checks the automaton absorbs the decoded copy exactly
// like the original — the property the live runtime depends on.
func TestWireRoundTripPreservesSimulatorBehaviour(t *testing.T) {
	t.Parallel()
	spawn := func() *sfProc {
		return SFlooding{Proposals: Proposals{2: "v2"}}.Spawn(2, 5).(*sfProc)
	}
	orig := sfFloodMsg{Round: 1, Delta: map[model.ProcessID]Value{1: "v1"}}
	b, err := EncodeWire(orig)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeWire(b)
	if err != nil {
		t.Fatal(err)
	}

	a, c := spawn(), spawn()
	a.absorb(&sim.Message{From: 1, Payload: orig})
	c.absorb(&sim.Message{From: 1, Payload: decoded})
	if a.v[1] != c.v[1] || !a.received[1].Equal(c.received[1]) {
		t.Fatalf("decoded copy diverged: %v vs %v", a, c)
	}
}
