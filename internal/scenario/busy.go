package scenario

import (
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// BusyAutomaton is the load-shaped broadcast workload behind the
// "busy" protocol kind (and the cmd/sweep default): every process
// seeds one broadcast and re-broadcasts on every 8th received message,
// keeping the message buffer full for the whole horizon. It decides
// nothing — its job is to exercise the transport and fault layers at
// scale.
type BusyAutomaton struct{}

type busyProc struct {
	self model.ProcessID
	n    int
	seen int
	sent bool
}

// Spawn implements sim.Automaton.
func (BusyAutomaton) Spawn(self model.ProcessID, n int) sim.Process {
	return &busyProc{self: self, n: n}
}

// Step implements sim.Process.
func (p *busyProc) Step(in *sim.Message, _ model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if !p.sent {
		p.sent = true
		acts.Sends = sim.Broadcast(p.n, "seed")
	}
	if in != nil {
		p.seen++
		if p.seen%8 == 0 {
			acts.Sends = sim.Broadcast(p.n, "echo")
		}
	}
	return acts
}
