package scenario

import (
	"sync"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// BusyAutomaton is the load-shaped broadcast workload behind the
// "busy" protocol kind (and the cmd/sweep default): every process
// seeds one broadcast and re-broadcasts on every 8th received message,
// keeping the message buffer full for the whole horizon. It decides
// nothing — its job is to exercise the transport and fault layers at
// scale.
type BusyAutomaton struct{}

type busyProc struct {
	self model.ProcessID
	fan  *busyFanout
	seen int
	sent bool
}

// busyFanout caches the two broadcast fan-outs for one system size.
// The engine copies Sends into its own arena within the step and never
// mutates or retains the slice, so every process of every run — across
// parallel sweep workers — shares the same two read-only slices; in a
// million-seed campaign this was the dominant per-run allocation.
type busyFanout struct {
	seed, echo []sim.Send
}

var busyFanouts sync.Map // int (n) -> *busyFanout

func busyFanoutFor(n int) *busyFanout {
	if v, ok := busyFanouts.Load(n); ok {
		return v.(*busyFanout)
	}
	v, _ := busyFanouts.LoadOrStore(n, &busyFanout{
		seed: sim.Broadcast(n, "seed"),
		echo: sim.Broadcast(n, "echo"),
	})
	return v.(*busyFanout)
}

// Spawn implements sim.Automaton.
func (BusyAutomaton) Spawn(self model.ProcessID, n int) sim.Process {
	return &busyProc{self: self, fan: busyFanoutFor(n)}
}

// Step implements sim.Process.
func (p *busyProc) Step(in *sim.Message, _ model.ProcessSet, _ model.Time) sim.Actions {
	var acts sim.Actions
	if !p.sent {
		p.sent = true
		acts.Sends = p.fan.seed
	}
	if in != nil {
		p.seen++
		if p.seen%8 == 0 {
			acts.Sends = p.fan.echo
		}
	}
	return acts
}
