// Package scenario is the declarative scenario format of the sweep
// stack (DESIGN.md §8): one JSON file describes one harness.Scenario —
// system size, protocol, detector oracle, crash schedule, topology,
// fault plan, scheduling policy, stop predicate, horizon and seed
// range. Load/Parse decode strictly (unknown fields are rejected, so a
// typo fails instead of silently configuring nothing), Validate checks
// every cross-field constraint, Build compiles the spec into a runnable
// harness.Scenario, and ConfigDigest fingerprints the canonical
// encoding — the digest the streaming checkpoints use as campaign
// identity.
//
// Topology awareness is the point of the format: the communication
// graph is *generated* (complete, ring, tree, or seeded random), and
// partitions are expressed against that graph — either as a node-set
// boundary whose crossing edges are computed, or as an explicit edge
// list validated against the generated edge set — then compiled to
// sim.EdgeCut plans. The E1–E9 experiment tables are built from nine
// such files under internal/experiments/testdata/scenarios/.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Spec is the declarative form of one harness.Scenario. Field order is
// the canonical encoding order; ConfigDigest hashes exactly this
// serialization of the normalized spec.
type Spec struct {
	// Schema versions the spec format: empty for the original (v2)
	// schema, SchemaV3 for specs that use the fault-plan IR fields
	// (Plan, Live). v3 is a strict superset of v2 — every v2 document
	// is a valid v3 document with no plan.
	Schema string `json:"schema,omitempty"`
	// Name labels the scenario; the scenario runner also derives
	// checkpoint file names from it.
	Name string `json:"name"`
	// N is the system size |Ω|, 1..model.MaxProcesses.
	N int `json:"n"`
	// Horizon bounds each run in global-clock ticks.
	Horizon int64 `json:"horizon"`
	// Seeds is the default seed range of a campaign over this scenario.
	Seeds SeedSpec `json:"seeds"`
	// Protocol selects the automaton under test.
	Protocol ProtocolSpec `json:"protocol"`
	// Oracle selects the failure detector.
	Oracle OracleSpec `json:"oracle"`
	// Crashes is the failure pattern: which processes crash, and when.
	Crashes []CrashSpec `json:"crashes,omitempty"`
	// Topology is the generated communication graph; the zero value
	// means complete.
	Topology TopologySpec `json:"topology,omitzero"`
	// Faults is the link-fault plan, expressed against the topology.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Plan is the /v3 fault-plan timeline: typed actions (cut, heal,
	// drop, delay, kill, pause, resume, leave, join) compiled to the
	// FaultPlan IR that both the simulator and the live cluster
	// consume. Requires Schema = SchemaV3.
	Plan []ActionSpec `json:"plan,omitempty"`
	// Live carries the live-only parameters of a /v3 spec (gossip
	// interval, estimator, warmup/settle/bound); the simulator ignores
	// it. Requires Schema = SchemaV3.
	Live *LiveParams `json:"live,omitempty"`
	// Policy selects the scheduling policy; the zero value means
	// random-fair.
	Policy PolicySpec `json:"policy,omitzero"`
	// Stop selects the early-stop predicate; the zero value means run
	// to the horizon.
	Stop StopSpec `json:"stop,omitzero"`
	// AfterStep installs a scripted per-step adversary hook.
	AfterStep *HookSpec `json:"after_step,omitempty"`
}

// SeedSpec is the half-open seed interval [From, To) of a campaign.
type SeedSpec struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// CrashSpec schedules one crash.
type CrashSpec struct {
	// Process is the crashing process ID, 1..n.
	Process int `json:"process"`
	// At is the crash time.
	At int64 `json:"at"`
}

// ProtocolSpec selects the automaton under test. Kinds:
//
//   - "sflooding": S-based flooding consensus, distinct proposals
//   - "rotating": ◇S rotating-coordinator consensus
//   - "marabout": consensus on the future-reading detector M
//   - "partial-order": P<-based correct-restricted consensus
//   - "trb": terminating reliable broadcast, Waves waves
//   - "reduction": the T(D⇒P) consensus-sequence emulation over
//     sflooding instances, MaxInstances instances
//   - "busy": the load-shaped broadcast workload of cmd/sweep
type ProtocolSpec struct {
	Kind string `json:"kind"`
	// Waves is the wave count for "trb".
	Waves int `json:"waves,omitempty"`
	// MaxInstances bounds the consensus sequence for "reduction".
	MaxInstances int `json:"max_instances,omitempty"`
}

// OracleSpec selects the failure detector. Kinds and their parameters:
//
//   - "perfect": P with detection latency Delay
//   - "scribe": the crash chronicle C
//   - "marabout": the future-reading M
//   - "partially-perfect": P< with latency Delay
//   - "realistic-strong": strongly accurate detector with BaseDelay +
//     per-(watcher,target) jitter in [0, JitterMax], scattered by Seed
//   - "eventually-strong": ◇S with stabilization time GST, latency
//     Delay and pre-GST false-suspicion rate FalseRate%; PerSeed keys
//     the noise stream on the sweep seed (Seed is then ignored)
type OracleSpec struct {
	Kind      string `json:"kind"`
	Delay     int64  `json:"delay,omitempty"`
	BaseDelay int64  `json:"base_delay,omitempty"`
	JitterMax int64  `json:"jitter_max,omitempty"`
	GST       int64  `json:"gst,omitempty"`
	FalseRate int    `json:"false_rate,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	PerSeed   bool   `json:"per_seed,omitempty"`
}

// TopologySpec is the generated communication graph. Kinds:
//
//   - "complete" (default): every pair of processes is linked
//   - "ring": p_i — p_{i+1}, closing back to p_1
//   - "tree": rooted at p_1 with arity Degree (default 2)
//   - "random": a seeded random connected graph — a random spanning
//     tree plus each remaining pair independently with EdgeProb%
//   - "chord": p_i — p_{i±2^j mod n} for every power of two below n,
//     the O(log n)-degree gossip overlay of the live cluster
//
// A non-complete topology is embedded as a permanent sim.EdgeCut of
// every non-edge, so traffic between unlinked processes never flows;
// protocols that rely on direct all-to-all exchange lose liveness on
// sparse graphs (that is the experiment, not a bug).
type TopologySpec struct {
	Kind string `json:"kind,omitempty"`
	// Seed drives the "random" generation.
	Seed int64 `json:"seed,omitempty"`
	// EdgeProb is the percentage (0..100) chance of each extra edge in
	// "random" graphs.
	EdgeProb int `json:"edge_prob,omitempty"`
	// Degree is the arity of "tree" topologies; default 2.
	Degree int `json:"degree,omitempty"`
}

// FaultSpec is the link-fault plan.
type FaultSpec struct {
	// DropPct is the percentage (0..100) of messages lost forever.
	DropPct int `json:"drop_pct,omitempty"`
	// MaxExtraDelay bounds the per-message uniform extra latency.
	MaxExtraDelay int64 `json:"max_extra_delay,omitempty"`
	// Partitions are scripted topology cuts.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
}

// PartitionSpec is one scripted, topology-aware partition: exactly one
// of Side and Cut must be given. Side lists the processes on one side
// of a boundary; every topology edge crossing the boundary is severed.
// Cut lists explicit [a, b] edges, each of which must exist in the
// generated topology. Either way the severed edges compile to one
// sim.EdgeCut active while From ≤ t < Until.
type PartitionSpec struct {
	Side  []int    `json:"side,omitempty"`
	Cut   [][2]int `json:"cut,omitempty"`
	From  int64    `json:"from"`
	Until int64    `json:"until"`
}

// PolicySpec selects the scheduling policy. Kinds: "random-fair"
// (default), "fair", and "delay" — the Lemma 4.1 embargo policy that
// withholds all traffic from or to Target until Until.
type PolicySpec struct {
	Kind   string `json:"kind,omitempty"`
	Target []int  `json:"target,omitempty"`
	Until  int64  `json:"until,omitempty"`
}

// StopSpec selects the early-stop predicate. Kinds: "none" (default,
// run to the horizon), "decided" (every correct process has decided in
// instance Instance), and "all-delivered" (every wave of a "trb"
// protocol delivered everywhere).
type StopSpec struct {
	Kind     string `json:"kind,omitempty"`
	Instance int    `json:"instance,omitempty"`
}

// HookSpec installs a scripted per-step adversary. Kinds:
// "crash-on-decide" — crash Process the moment it decides (the §6.2
// uniformity attack).
type HookSpec struct {
	Kind    string `json:"kind"`
	Process int    `json:"process,omitempty"`
}

// Parse decodes one scenario spec strictly: unknown fields anywhere in
// the document are an error, trailing garbage is an error, and the
// result is normalized (defaulted kinds spelled out) and validated.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: parse: trailing data after the spec document")
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Load reads and parses one scenario file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// normalize spells out the defaulted kind fields, so that a spec that
// omits them and one that writes them explicitly share one canonical
// encoding (and therefore one ConfigDigest).
func (s *Spec) normalize() {
	if s.Topology.Kind == "" {
		s.Topology.Kind = TopologyComplete
	}
	if s.Policy.Kind == "" {
		s.Policy.Kind = PolicyRandomFair
	}
	if s.Stop.Kind == "" {
		s.Stop.Kind = StopNone
	}
	if s.Live != nil {
		s.Live.Normalize()
	}
}

// Canonical returns the canonical encoding of the spec: the normalized
// struct serialized with fixed field order and indentation. Two specs
// are the same campaign exactly when their canonical encodings are
// byte-identical.
func (s Spec) Canonical() ([]byte, error) {
	s.normalize()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(data, '\n'), nil
}

// ConfigDigest returns "sha256:<hex>" over the canonical encoding: the
// deterministic identity of the scenario configuration. Stream records
// it in checkpoints, so a changed spec refuses to resume a stale
// campaign even under an unchanged name.
func (s Spec) ConfigDigest() (string, error) {
	data, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
