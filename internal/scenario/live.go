package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Live actions accepted by a LiveSpec schedule.
const (
	LiveKill      = "kill"      // SIGKILL the node process
	LivePause     = "pause"     // SIGSTOP the node process
	LiveResume    = "resume"    // SIGCONT a paused node
	LivePartition = "partition" // cut an edge set at the socket layer
	LiveHeal      = "heal"      // undo cuts (all of them when no edges given)
)

// LiveEstimator kinds.
const (
	LiveEstFixed = "fixed"
	LiveEstChen  = "chen"
	LiveEstPhi   = "phi"
)

// LiveSpec is the declarative form of one live-cluster run: the same
// topology generators as the simulator specs wire real OS processes
// into a gossip overlay, and a scripted fault schedule — kill, pause,
// resume, partition, heal — runs against wall-clock milliseconds
// instead of simulator ticks. cmd/fdorch executes these.
type LiveSpec struct {
	// Name labels the run in reports.
	Name string `json:"name"`
	// N is the cluster size. Live clusters are not bound by the
	// simulator's 64-process ProcessSet: hundreds of nodes are the
	// point.
	N int `json:"n"`
	// Topology is the gossip overlay, reusing the simulator's
	// generators; the zero value means chord (O(log n) degree).
	Topology TopologySpec `json:"topology,omitzero"`
	// IntervalMs is the gossip round period in milliseconds
	// (default 50).
	IntervalMs int `json:"interval_ms,omitempty"`
	// SamplePeriodMs is how often each node samples its verdicts for
	// the QoS timelines (default: the gossip interval).
	SamplePeriodMs int `json:"sample_period_ms,omitempty"`
	// Fanout bounds gossip destinations per round; 0 means every
	// overlay neighbor every round.
	Fanout int `json:"fanout,omitempty"`
	// Estimator configures the per-peer suspicion estimator.
	Estimator LiveEstimatorSpec `json:"estimator,omitzero"`
	// WarmupMs delays the first scheduled event after the cluster
	// starts, letting counters disseminate (default 1000).
	WarmupMs int `json:"warmup_ms,omitempty"`
	// SettleMs is the observation tail after the last scheduled event
	// before metrics are collected (default 2000).
	SettleMs int `json:"settle_ms,omitempty"`
	// BoundMs, when positive, turns the run into an assertion: every
	// surviving node must suspect every killed node within BoundMs of
	// the kill, and no resumed node may stay suspected at collection.
	BoundMs int `json:"bound_ms,omitempty"`
	// Schedule is the scripted fault sequence, in wall-clock
	// milliseconds from the end of warmup.
	Schedule []LiveEventSpec `json:"schedule"`
}

// LiveEstimatorSpec selects and parameterizes the heartbeat estimator
// of a live run. Kinds: "fixed" (TimeoutMs), "chen" (Window, AlphaMs),
// "phi" (Window, Phi, MinStdDevMs). The zero value means φ-accrual
// with the package defaults.
type LiveEstimatorSpec struct {
	Kind        string  `json:"kind,omitempty"`
	TimeoutMs   int     `json:"timeout_ms,omitempty"`
	Window      int     `json:"window,omitempty"`
	AlphaMs     int     `json:"alpha_ms,omitempty"`
	Phi         float64 `json:"phi,omitempty"`
	MinStdDevMs int     `json:"min_stddev_ms,omitempty"`
}

// LiveEventSpec is one scripted fault. Kill/pause/resume name Nodes;
// partition gives exactly one of Side (a node-set boundary — every
// overlay edge crossing it is cut) and Cut (explicit edges, validated
// against the generated overlay); heal reverses cuts — the named ones,
// or all active cuts when none are given.
type LiveEventSpec struct {
	// AtMs schedules the event, milliseconds after warmup.
	AtMs int64 `json:"at_ms"`
	// Action is one of kill, pause, resume, partition, heal.
	Action string `json:"action"`
	// Nodes are the targets of kill/pause/resume.
	Nodes []int `json:"nodes,omitempty"`
	// Side is the partition boundary node set.
	Side []int `json:"side,omitempty"`
	// Cut is the explicit partition edge list.
	Cut [][2]int `json:"cut,omitempty"`
}

// Normalize spells out the defaults. ParseLive calls it; specs built
// in code (cmd/fdorch's default schedule) call it before Validate.
func (s *LiveSpec) Normalize() {
	if s.Topology.Kind == "" {
		s.Topology.Kind = TopologyChord
	}
	if s.IntervalMs == 0 {
		s.IntervalMs = 50
	}
	if s.SamplePeriodMs == 0 {
		s.SamplePeriodMs = s.IntervalMs
	}
	if s.Estimator.Kind == "" {
		s.Estimator.Kind = LiveEstPhi
	}
	if s.WarmupMs == 0 {
		s.WarmupMs = 1000
	}
	if s.SettleMs == 0 {
		s.SettleMs = 2000
	}
}

// Validate checks every cross-field constraint of a live spec.
func (s LiveSpec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("live scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("live scenario: name is required")
	}
	if s.N < 2 {
		return fail("n = %d must be ≥ 2", s.N)
	}
	if s.IntervalMs < 0 || s.SamplePeriodMs < 0 || s.WarmupMs < 0 || s.SettleMs < 0 || s.BoundMs < 0 {
		return fail("durations must be non-negative")
	}
	if s.Fanout < 0 {
		return fail("fanout = %d must be non-negative", s.Fanout)
	}
	switch s.Estimator.Kind {
	case LiveEstFixed:
		if s.Estimator.TimeoutMs < 1 {
			return fail("estimator fixed: timeout_ms = %d must be ≥ 1", s.Estimator.TimeoutMs)
		}
	case LiveEstChen, LiveEstPhi, "":
	default:
		return fail("estimator: unknown kind %q", s.Estimator.Kind)
	}
	if s.Estimator.Window < 0 || s.Estimator.TimeoutMs < 0 || s.Estimator.AlphaMs < 0 ||
		s.Estimator.Phi < 0 || s.Estimator.MinStdDevMs < 0 {
		return fail("estimator parameters must be non-negative")
	}

	edges, err := s.Topology.edgeSet(s.N)
	if err != nil {
		return fail("%v", err)
	}

	paused := map[int]bool{}
	dead := map[int]bool{}
	// Events may be listed in any order in the file; semantic checks
	// (resume-before-pause, double kill) follow schedule time.
	ordered := append([]LiveEventSpec(nil), s.Schedule...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].AtMs < ordered[j].AtMs })
	for i, ev := range ordered {
		if ev.AtMs < 0 {
			return fail("schedule[%d]: at_ms = %d must be non-negative", i, ev.AtMs)
		}
		switch ev.Action {
		case LiveKill, LivePause, LiveResume:
			if len(ev.Nodes) == 0 {
				return fail("schedule[%d]: %s needs nodes", i, ev.Action)
			}
			if len(ev.Side) > 0 || len(ev.Cut) > 0 {
				return fail("schedule[%d]: %s takes nodes, not side/cut", i, ev.Action)
			}
			for _, id := range ev.Nodes {
				if id < 1 || id > s.N {
					return fail("schedule[%d]: node %d outside [1, %d]", i, id, s.N)
				}
				switch ev.Action {
				case LiveKill:
					if dead[id] {
						return fail("schedule[%d]: node %d killed twice", i, id)
					}
					dead[id] = true
				case LivePause:
					if dead[id] {
						return fail("schedule[%d]: node %d paused after kill", i, id)
					}
					paused[id] = true
				case LiveResume:
					if !paused[id] {
						return fail("schedule[%d]: node %d resumed without a pause", i, id)
					}
					delete(paused, id)
				}
			}
		case LivePartition:
			if (len(ev.Side) > 0) == (len(ev.Cut) > 0) {
				return fail("schedule[%d]: partition needs exactly one of side and cut", i)
			}
			for _, id := range ev.Side {
				if id < 1 || id > s.N {
					return fail("schedule[%d]: side node %d outside [1, %d]", i, id, s.N)
				}
			}
			for _, e := range ev.Cut {
				a, b := e[0], e[1]
				if a < 1 || a > s.N || b < 1 || b > s.N || a == b {
					return fail("schedule[%d]: bad edge [%d, %d]", i, a, b)
				}
				if !edges[canonEdge(a, b)] {
					return fail("schedule[%d]: edge [%d, %d] does not exist in the %s overlay", i, a, b, s.Topology.Kind)
				}
			}
		case LiveHeal:
			for _, e := range ev.Cut {
				a, b := e[0], e[1]
				if a < 1 || a > s.N || b < 1 || b > s.N || a == b {
					return fail("schedule[%d]: bad edge [%d, %d]", i, a, b)
				}
			}
			if len(ev.Nodes) > 0 {
				return fail("schedule[%d]: heal takes side/cut (or nothing), not nodes", i)
			}
		case "":
			return fail("schedule[%d]: action is required", i)
		default:
			return fail("schedule[%d]: unknown action %q", i, ev.Action)
		}
	}
	if len(paused) > 0 && s.BoundMs > 0 {
		return fail("bound_ms asserts resumed nodes heal, but %d node(s) stay paused at collection", len(paused))
	}
	return nil
}

// ResolveEdges compiles one partition/heal event's edge selection
// against the generated overlay: a Side boundary becomes its crossing
// edges, an explicit Cut passes through, and a bare heal selects nil
// (meaning "all active cuts" to the orchestrator).
func (s LiveSpec) ResolveEdges(ev LiveEventSpec) ([][2]int, error) {
	if len(ev.Cut) > 0 {
		return ev.Cut, nil
	}
	if len(ev.Side) == 0 {
		return nil, nil
	}
	inSide := map[int]bool{}
	for _, id := range ev.Side {
		inSide[id] = true
	}
	all, err := s.Topology.Edges(s.N)
	if err != nil {
		return nil, err
	}
	var out [][2]int
	for _, e := range all {
		a, b := int(e.A), int(e.B)
		if inSide[a] != inSide[b] {
			out = append(out, [2]int{a, b})
		}
	}
	return out, nil
}

// ConfigDigest returns "sha256:<hex>" over the normalized live spec's
// canonical encoding — the identity cmd/fdorch records in result JSON
// and checks before treating an existing output file as a completed
// rerun, so a renamed-but-changed plan can't be mistaken for one.
func (s LiveSpec) ConfigDigest() (string, error) {
	s.Normalize()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", fmt.Errorf("live scenario: encode: %w", err)
	}
	sum := sha256.Sum256(append(data, '\n'))
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// ParseLive decodes one live spec strictly (unknown fields rejected),
// normalizes defaults and validates.
func ParseLive(data []byte) (LiveSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s LiveSpec
	if err := dec.Decode(&s); err != nil {
		return LiveSpec{}, fmt.Errorf("live scenario: parse: %w", err)
	}
	if dec.More() {
		return LiveSpec{}, fmt.Errorf("live scenario: parse: trailing data after the spec document")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return LiveSpec{}, err
	}
	return s, nil
}

// LoadLive reads and parses one live spec file.
func LoadLive(path string) (LiveSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LiveSpec{}, fmt.Errorf("live scenario: %w", err)
	}
	s, err := ParseLive(data)
	if err != nil {
		return LiveSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}
