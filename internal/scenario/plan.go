package scenario

import (
	"fmt"
	"sort"
)

// ActionKind names one verb of the fault-plan IR. The same nine verbs
// drive both backends: the simulator lowers them onto LinkFaults /
// EdgeCut / FailurePattern machinery, the live cluster interprets them
// against real processes and sockets (DESIGN.md §11).
type ActionKind string

const (
	// ActCut severs an edge set from this instant on (until healed).
	ActCut ActionKind = "cut"
	// ActHeal reverses cuts: the named edges, or every active cut.
	ActHeal ActionKind = "heal"
	// ActDrop sets the message-loss rate (percent) from this instant on.
	ActDrop ActionKind = "drop"
	// ActDelay sets the per-message extra-latency bound from this
	// instant on.
	ActDelay ActionKind = "delay"
	// ActKill crashes nodes (SIGKILL live, pattern crash in the sim).
	ActKill ActionKind = "kill"
	// ActPause freezes nodes (SIGSTOP live; total link isolation in
	// the sim, which captures the detector-visible silence).
	ActPause ActionKind = "pause"
	// ActResume unfreezes paused nodes (SIGCONT).
	ActResume ActionKind = "resume"
	// ActLeave makes nodes depart for good: a clean exit live, a
	// crash in the sim's crash-stop model.
	ActLeave ActionKind = "leave"
	// ActJoin brings nodes into the group mid-run: a real process
	// spawn live; in the sim the node exists from the start but is
	// link-isolated until its join instant.
	ActJoin ActionKind = "join"
)

// PlanAction is one resolved step of a fault-plan timeline. At is in
// plan ticks: the simulator reads them as engine ticks, the live
// interpreter as milliseconds after warmup — the unit mapping that
// lets one spec drive both backends.
type PlanAction struct {
	At    int64
	Kind  ActionKind
	Nodes []int    // kill/pause/resume/leave/join targets
	Edges [][2]int // cut/heal, canonical a<b, resolved; nil on a bare heal (= all active cuts)
	Pct   int      // drop: loss percentage from At on
	Bound int64    // delay: extra-latency bound from At on
}

// FaultPlan is the shared fault-injection IR: a validated, time-sorted
// timeline of typed actions over resolved overlay edges and nodes.
// Both backends consume exactly this — internal/sim lowers it onto the
// LinkFaults machinery, internal/cluster interprets it against live
// processes — so a checked-in spec runs the identical experiment in
// simulation and on a real cluster.
type FaultPlan struct {
	// N is the system size the node IDs were validated against.
	N int
	// Horizon bounds the timeline (plan ticks).
	Horizon int64
	// Actions is the timeline, sorted by At (stable).
	Actions []PlanAction
	// Joins maps each mid-run joiner to its join instant.
	Joins map[int]int64
	// Leaves maps each departing node to its leave instant.
	Leaves map[int]int64
	// Kills maps each killed node to its kill instant.
	Kills map[int]int64
}

// Empty reports whether the plan perturbs nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Actions) == 0 }

// Joiner reports whether node id joins mid-run rather than being
// present from the start.
func (p *FaultPlan) Joiner(id int) bool {
	if p == nil {
		return false
	}
	_, ok := p.Joins[id]
	return ok
}

// ActionSpec is the declarative JSON form of one PlanAction, before
// edge resolution. Kill/pause/resume/leave/join name Nodes; cut gives
// exactly one of Side (a node-set boundary — every overlay edge
// crossing it is severed) and Cut (explicit edges, validated against
// the overlay); heal takes side/cut or nothing (= all active cuts);
// drop carries Pct, delay carries Bound.
type ActionSpec struct {
	At     int64    `json:"at"`
	Action string   `json:"action"`
	Nodes  []int    `json:"nodes,omitempty"`
	Side   []int    `json:"side,omitempty"`
	Cut    [][2]int `json:"cut,omitempty"`
	Pct    int      `json:"pct,omitempty"`
	Bound  int64    `json:"bound,omitempty"`
}

// LiveParams are the live-only knobs of a /v3 spec: everything the
// cluster backend needs beyond what the simulator shares. Zero values
// take the same defaults as LiveSpec.Normalize.
type LiveParams struct {
	IntervalMs     int               `json:"interval_ms,omitempty"`
	SamplePeriodMs int               `json:"sample_period_ms,omitempty"`
	Fanout         int               `json:"fanout,omitempty"`
	Estimator      LiveEstimatorSpec `json:"estimator,omitzero"`
	WarmupMs       int               `json:"warmup_ms,omitempty"`
	SettleMs       int               `json:"settle_ms,omitempty"`
	BoundMs        int               `json:"bound_ms,omitempty"`
}

// Normalize spells out the LiveParams defaults (shared with
// LiveSpec.Normalize so both entry points agree).
func (lp *LiveParams) Normalize() {
	if lp.IntervalMs == 0 {
		lp.IntervalMs = 50
	}
	if lp.SamplePeriodMs == 0 {
		lp.SamplePeriodMs = lp.IntervalMs
	}
	if lp.Estimator.Kind == "" {
		lp.Estimator.Kind = LiveEstPhi
	}
	if lp.WarmupMs == 0 {
		lp.WarmupMs = 1000
	}
	if lp.SettleMs == 0 {
		lp.SettleMs = 2000
	}
}

// validatePlan checks every constraint of the declarative plan: field
// shape per kind, node and edge ranges against the topology, and the
// time-ordered semantics (no double kill, resume pairs with pause, a
// joiner is inert before its join, ...). Crashes from the v2 fields
// are folded into the semantic walk so a spec cannot crash a node
// twice across the two vocabularies.
func (s Spec) validatePlan(edges map[edgeKey]bool) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: plan: %s", s.Name, fmt.Sprintf(format, args...))
	}
	ordered := make([]int, len(s.Plan))
	for i := range ordered {
		ordered[i] = i
	}
	sort.SliceStable(ordered, func(a, b int) bool { return s.Plan[ordered[a]].At < s.Plan[ordered[b]].At })

	joinAt := map[int]int64{}
	for _, i := range ordered {
		a := s.Plan[i]
		if a.Kind() == ActJoin {
			for _, id := range a.Nodes {
				if _, dup := joinAt[id]; dup {
					return fail("action[%d]: node %d joins twice", i, id)
				}
				joinAt[id] = a.At
			}
		}
	}

	dead := map[int]bool{} // killed or left
	paused := map[int]bool{}
	joined := map[int]bool{}
	for _, c := range s.Crashes {
		// v2 crashes and plan kills share the crash budget; the walk
		// below rejects a plan kill of an already-crashing process.
		dead[c.Process] = true
		if at, ok := joinAt[c.Process]; ok {
			return fail("node %d both joins at %d and crashes via the crashes field", c.Process, at)
		}
	}

	for _, i := range ordered {
		a := s.Plan[i]
		if a.At < 0 {
			return fail("action[%d]: at = %d must be non-negative", i, a.At)
		}
		if a.At > s.Horizon {
			return fail("action[%d]: at = %d beyond the horizon %d", i, a.At, s.Horizon)
		}
		kind := a.Kind()
		switch kind {
		case ActKill, ActPause, ActResume, ActLeave, ActJoin:
			if len(a.Nodes) == 0 {
				return fail("action[%d]: %s needs nodes", i, kind)
			}
			if len(a.Side) > 0 || len(a.Cut) > 0 || a.Pct != 0 || a.Bound != 0 {
				return fail("action[%d]: %s takes nodes only", i, kind)
			}
			for _, id := range a.Nodes {
				if id < 1 || id > s.N {
					return fail("action[%d]: node %d outside [1, %d]", i, id, s.N)
				}
				if at, joiner := joinAt[id]; joiner && kind != ActJoin && a.At < at {
					return fail("action[%d]: node %d acted on at %d before its join at %d", i, id, a.At, at)
				}
				switch kind {
				case ActKill, ActLeave:
					if dead[id] {
						return fail("action[%d]: node %d is already gone", i, id)
					}
					dead[id] = true
				case ActPause:
					if dead[id] {
						return fail("action[%d]: node %d paused after its departure", i, id)
					}
					paused[id] = true
				case ActResume:
					if !paused[id] {
						return fail("action[%d]: node %d resumed without a pause", i, id)
					}
					delete(paused, id)
				case ActJoin:
					if joined[id] {
						return fail("action[%d]: node %d joins twice", i, id)
					}
					joined[id] = true
				}
			}
		case ActCut:
			if (len(a.Side) > 0) == (len(a.Cut) > 0) {
				return fail("action[%d]: cut needs exactly one of side and cut", i)
			}
			if len(a.Nodes) > 0 || a.Pct != 0 || a.Bound != 0 {
				return fail("action[%d]: cut takes side/cut only", i)
			}
			if err := s.checkPlanEdges(a, edges); err != nil {
				return fail("action[%d]: %v", i, err)
			}
		case ActHeal:
			if len(a.Nodes) > 0 || a.Pct != 0 || a.Bound != 0 {
				return fail("action[%d]: heal takes side/cut (or nothing)", i)
			}
			if err := s.checkPlanEdges(a, edges); err != nil {
				return fail("action[%d]: %v", i, err)
			}
		case ActDrop:
			if a.Pct < 0 || a.Pct > 100 {
				return fail("action[%d]: drop pct = %d%% outside [0, 100]", i, a.Pct)
			}
			if len(a.Nodes) > 0 || len(a.Side) > 0 || len(a.Cut) > 0 || a.Bound != 0 {
				return fail("action[%d]: drop takes pct only", i)
			}
		case ActDelay:
			if a.Bound < 0 {
				return fail("action[%d]: delay bound = %d must be non-negative", i, a.Bound)
			}
			if len(a.Nodes) > 0 || len(a.Side) > 0 || len(a.Cut) > 0 || a.Pct != 0 {
				return fail("action[%d]: delay takes bound only", i)
			}
		case "":
			return fail("action[%d]: action is required", i)
		default:
			return fail("action[%d]: unknown action %q", i, a.Action)
		}
	}
	return nil
}

// Kind returns the action's kind as the IR vocabulary.
func (a ActionSpec) Kind() ActionKind { return ActionKind(a.Action) }

// checkPlanEdges validates a cut/heal action's node and edge
// references against the generated overlay.
func (s Spec) checkPlanEdges(a ActionSpec, edges map[edgeKey]bool) error {
	for _, id := range a.Side {
		if id < 1 || id > s.N {
			return fmt.Errorf("side node %d outside [1, %d]", id, s.N)
		}
	}
	for _, e := range a.Cut {
		x, y := e[0], e[1]
		if x < 1 || x > s.N || y < 1 || y > s.N || x == y {
			return fmt.Errorf("bad edge [%d, %d]", x, y)
		}
		if !edges[canonEdge(x, y)] {
			return fmt.Errorf("edge [%d, %d] does not exist in the %s topology", x, y, s.Topology.Kind)
		}
	}
	return nil
}

// resolveActionEdges compiles one cut/heal action's edge selection
// against the overlay edge list: a Side boundary becomes its crossing
// edges, an explicit Cut passes through canonicalized, and a bare heal
// resolves to nil ("all active cuts" to the interpreters).
func resolveActionEdges(a ActionSpec, all []edgeKey) ([][2]int, error) {
	if len(a.Cut) > 0 {
		out := make([][2]int, len(a.Cut))
		for i, e := range a.Cut {
			k := canonEdge(e[0], e[1])
			out[i] = [2]int{k.a, k.b}
		}
		return out, nil
	}
	if len(a.Side) == 0 {
		return nil, nil
	}
	inSide := map[int]bool{}
	for _, id := range a.Side {
		inSide[id] = true
	}
	var out [][2]int
	for _, e := range all {
		if inSide[e.a] != inSide[e.b] {
			out = append(out, [2]int{e.a, e.b})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("side boundary severs no overlay edge")
	}
	return out, nil
}

// CompilePlan compiles the spec's declarative plan into the FaultPlan
// IR: edges resolved against the generated overlay, actions sorted by
// time, churn indexed. It returns (nil, nil) when the spec declares no
// plan. The spec must already be valid (Parse/Load guarantee it).
func (s Spec) CompilePlan() (*FaultPlan, error) {
	if len(s.Plan) == 0 {
		return nil, nil
	}
	edgeSet, err := s.Topology.edgeSet(s.N)
	if err != nil {
		return nil, err
	}
	if err := s.validatePlan(edgeSet); err != nil {
		return nil, err
	}
	all := make([]edgeKey, 0, len(edgeSet))
	for k := range edgeSet {
		all = append(all, k)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a != all[j].a {
			return all[i].a < all[j].a
		}
		return all[i].b < all[j].b
	})

	plan := &FaultPlan{
		N:       s.N,
		Horizon: s.Horizon,
		Joins:   map[int]int64{},
		Leaves:  map[int]int64{},
		Kills:   map[int]int64{},
	}
	for i, a := range s.Plan {
		act := PlanAction{
			At:    a.At,
			Kind:  a.Kind(),
			Nodes: append([]int(nil), a.Nodes...),
			Pct:   a.Pct,
			Bound: a.Bound,
		}
		switch act.Kind {
		case ActCut, ActHeal:
			edges, err := resolveActionEdges(a, all)
			if err != nil {
				return nil, fmt.Errorf("scenario %q: plan: action[%d]: %w", s.Name, i, err)
			}
			act.Edges = edges
		case ActKill:
			for _, id := range a.Nodes {
				plan.Kills[id] = a.At
			}
		case ActLeave:
			for _, id := range a.Nodes {
				plan.Leaves[id] = a.At
			}
		case ActJoin:
			for _, id := range a.Nodes {
				plan.Joins[id] = a.At
			}
		}
		plan.Actions = append(plan.Actions, act)
	}
	sort.SliceStable(plan.Actions, func(i, j int) bool { return plan.Actions[i].At < plan.Actions[j].At })
	return plan, nil
}

// CompilePlan lowers a legacy live spec's imperative schedule into the
// same FaultPlan IR the /v3 specs compile to, so the cluster backend
// interprets exactly one representation whichever format it was fed.
// Times carry over 1:1 (LiveSpec's at_ms are already the IR's
// milliseconds-after-warmup).
func (s LiveSpec) CompilePlan() (*FaultPlan, error) {
	plan := &FaultPlan{
		N:      s.N,
		Joins:  map[int]int64{},
		Leaves: map[int]int64{},
		Kills:  map[int]int64{},
	}
	for i, ev := range s.Schedule {
		act := PlanAction{At: ev.AtMs, Nodes: append([]int(nil), ev.Nodes...)}
		switch ev.Action {
		case LiveKill:
			act.Kind = ActKill
			for _, id := range ev.Nodes {
				plan.Kills[id] = ev.AtMs
			}
		case LivePause:
			act.Kind = ActPause
		case LiveResume:
			act.Kind = ActResume
		case LivePartition, LiveHeal:
			if ev.Action == LivePartition {
				act.Kind = ActCut
			} else {
				act.Kind = ActHeal
			}
			edges, err := s.ResolveEdges(ev)
			if err != nil {
				return nil, err
			}
			for _, e := range edges {
				k := canonEdge(e[0], e[1])
				act.Edges = append(act.Edges, [2]int{k.a, k.b})
			}
		default:
			return nil, fmt.Errorf("live scenario %q: schedule[%d]: unknown action %q", s.Name, i, ev.Action)
		}
		if act.At > plan.Horizon {
			plan.Horizon = act.At
		}
		plan.Actions = append(plan.Actions, act)
	}
	sort.SliceStable(plan.Actions, func(i, j int) bool { return plan.Actions[i].At < plan.Actions[j].At })
	return plan, nil
}

// LiveDefaults returns the spec's live parameters in LiveParams form
// (normalized), so both spec formats configure the cluster backend
// through one struct.
func (s LiveSpec) LiveDefaults() LiveParams {
	lp := LiveParams{
		IntervalMs:     s.IntervalMs,
		SamplePeriodMs: s.SamplePeriodMs,
		Fanout:         s.Fanout,
		Estimator:      s.Estimator,
		WarmupMs:       s.WarmupMs,
		SettleMs:       s.SettleMs,
		BoundMs:        s.BoundMs,
	}
	lp.Normalize()
	return lp
}
