package scenario

import (
	"strings"
	"testing"

	"realisticfd/internal/harness"
	"realisticfd/internal/model"
)

// v3Spec is a well-formed /v3 spec exercising every plan verb, used
// (and perturbed) by the plan tests.
func v3Spec() Spec {
	return Spec{
		Schema:   SchemaV3,
		Name:     "v3-test",
		N:        6,
		Horizon:  2000,
		Seeds:    SeedSpec{From: 0, To: 4},
		Protocol: ProtocolSpec{Kind: ProtocolBusy},
		Oracle:   OracleSpec{Kind: OraclePerfect, Delay: 2},
		Plan: []ActionSpec{
			{At: 0, Action: "drop", Pct: 10},
			{At: 100, Action: "delay", Bound: 4},
			{At: 200, Action: "cut", Side: []int{1, 2}},
			{At: 400, Action: "heal"},
			{At: 500, Action: "pause", Nodes: []int{3}},
			{At: 700, Action: "resume", Nodes: []int{3}},
			{At: 800, Action: "kill", Nodes: []int{4}},
			{At: 900, Action: "leave", Nodes: []int{5}},
			{At: 600, Action: "join", Nodes: []int{6}},
		},
	}
}

const v3JSON = `{
  "schema": "fdspec/v3",
  "name": "v3-test",
  "n": 4,
  "horizon": 1000,
  "seeds": {"from": 0, "to": 2},
  "protocol": {"kind": "busy"},
  "oracle": {"kind": "perfect", "delay": 2},
  "plan": [
    {"at": 0, "action": "drop", "pct": 5},
    {"at": 100, "action": "cut", "cut": [[1, 2]]},
    {"at": 200, "action": "heal", "cut": [[1, 2]]},
    {"at": 300, "action": "join", "nodes": [4]}
  ],
  "live": {"interval_ms": 40, "bound_ms": 3000}
}`

// TestV3ParseAndCompile pins the happy path: a /v3 document parses
// strictly, its live defaults normalize, and CompilePlan resolves the
// timeline with churn indexed.
func TestV3ParseAndCompile(t *testing.T) {
	t.Parallel()
	s, err := Parse([]byte(v3JSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Live.SamplePeriodMs != 40 || s.Live.WarmupMs != 1000 || s.Live.Estimator.Kind != LiveEstPhi {
		t.Fatalf("live defaults not normalized: %+v", s.Live)
	}
	plan, err := s.CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() || len(plan.Actions) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	if at, ok := plan.Joins[4]; !ok || at != 300 {
		t.Fatalf("join of node 4 not indexed: %+v", plan.Joins)
	}
	if !plan.Joiner(4) || plan.Joiner(1) {
		t.Fatal("Joiner misreports")
	}

	full, err := v3Spec().CompilePlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Actions) != 9 {
		t.Fatalf("got %d actions", len(full.Actions))
	}
	// Actions come out time-sorted: the join at 600 precedes the kill.
	for i := 1; i < len(full.Actions); i++ {
		if full.Actions[i-1].At > full.Actions[i].At {
			t.Fatalf("actions not sorted by At: %+v", full.Actions)
		}
	}
	if full.Kills[4] != 800 || full.Leaves[5] != 900 || full.Joins[6] != 600 {
		t.Fatalf("churn indexes wrong: kills=%v leaves=%v joins=%v", full.Kills, full.Leaves, full.Joins)
	}
	// The side cut at 200 resolved against the complete topology: the
	// boundary {1,2} crosses to {3..6}, 2·4 = 8 edges.
	for _, a := range full.Actions {
		if a.Kind == ActCut && len(a.Edges) != 8 {
			t.Fatalf("side cut resolved to %d edges, want 8", len(a.Edges))
		}
	}
}

// TestV3Rejections walks the plan validator's error paths.
func TestV3Rejections(t *testing.T) {
	t.Parallel()
	cases := []struct {
		label   string
		mangle  func(Spec) Spec
		wantErr string
	}{
		{"plan without v3 schema", func(s Spec) Spec { s.Schema = ""; return s }, "require schema"},
		{"live without v3 schema", func(s Spec) Spec {
			s.Schema = ""
			s.Plan = nil
			s.Live = &LiveParams{IntervalMs: 40}
			return s
		}, "require schema"},
		{"unknown schema", func(s Spec) Spec { s.Schema = "fdspec/v9"; return s }, "unknown"},
		{"unknown action", func(s Spec) Spec { s.Plan[0].Action = "detonate"; return s }, `unknown action "detonate"`},
		{"negative at", func(s Spec) Spec { s.Plan[0].At = -1; return s }, "non-negative"},
		{"beyond horizon", func(s Spec) Spec { s.Plan[0].At = 9999; return s }, "beyond the horizon"},
		{"drop out of range", func(s Spec) Spec { s.Plan[0].Pct = 130; return s }, "outside [0, 100]"},
		{"negative delay bound", func(s Spec) Spec { s.Plan[1].Bound = -2; return s }, "non-negative"},
		{"kill without nodes", func(s Spec) Spec { s.Plan[6].Nodes = nil; return s }, "kill needs nodes"},
		{"kill with pct", func(s Spec) Spec { s.Plan[6].Pct = 5; return s }, "takes nodes only"},
		{"cut with both side and cut", func(s Spec) Spec {
			s.Plan[2].Cut = [][2]int{{1, 3}}
			return s
		}, "exactly one of side and cut"},
		{"cut of nonexistent edge", func(s Spec) Spec {
			s.Topology = TopologySpec{Kind: TopologyRing}
			s.Plan[2] = ActionSpec{At: 200, Action: "cut", Cut: [][2]int{{1, 3}}}
			return s
		}, "does not exist in the ring topology"},
		{"node out of range", func(s Spec) Spec { s.Plan[6].Nodes = []int{7}; return s }, "outside [1, 6]"},
		{"double kill", func(s Spec) Spec {
			s.Plan = append(s.Plan, ActionSpec{At: 850, Action: "kill", Nodes: []int{4}})
			return s
		}, "already gone"},
		{"kill of v2 crash victim", func(s Spec) Spec {
			s.Crashes = []CrashSpec{{Process: 4, At: 10}}
			return s
		}, "already gone"},
		{"pause after kill", func(s Spec) Spec {
			s.Plan = append(s.Plan, ActionSpec{At: 850, Action: "pause", Nodes: []int{4}})
			return s
		}, "paused after its departure"},
		{"resume without pause", func(s Spec) Spec {
			s.Plan = append(s.Plan, ActionSpec{At: 750, Action: "resume", Nodes: []int{2}})
			return s
		}, "resumed without a pause"},
		{"double join", func(s Spec) Spec {
			s.Plan = append(s.Plan, ActionSpec{At: 650, Action: "join", Nodes: []int{6}})
			return s
		}, "joins twice"},
		{"action on joiner before join", func(s Spec) Spec {
			s.Plan = append(s.Plan, ActionSpec{At: 100, Action: "pause", Nodes: []int{6}})
			return s
		}, "before its join"},
		{"joiner also crashes via v2 field", func(s Spec) Spec {
			s.Crashes = []CrashSpec{{Process: 6, At: 10}}
			return s
		}, "crashes via the crashes field"},
		{"live negative duration", func(s Spec) Spec {
			s.Live = &LiveParams{WarmupMs: -1}
			return s
		}, "non-negative"},
		{"live bad estimator", func(s Spec) Spec {
			s.Live = &LiveParams{Estimator: LiveEstimatorSpec{Kind: "ouija"}}
			return s
		}, `unknown kind "ouija"`},
	}
	for _, c := range cases {
		s := c.mangle(v3Spec())
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.wantErr)
		}
	}
	if err := v3Spec().Validate(); err != nil {
		t.Fatalf("valid v3 spec rejected: %v", err)
	}
}

// TestV2CanonicalUnchangedByV3Fields is the digest-compatibility gate:
// the canonical encoding of a v2 spec must not mention any of the new
// keys, so every pre-existing ConfigDigest is untouched by this
// release.
func TestV2CanonicalUnchangedByV3Fields(t *testing.T) {
	t.Parallel()
	data, err := validSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"schema"`, `"plan"`, `"live"`} {
		if strings.Contains(string(data), key) {
			t.Fatalf("v2 canonical encoding mentions %s:\n%s", key, data)
		}
	}
}

// TestPlanConstantRateMatchesV2 pins the lowering equivalence: a v3
// plan that sets drop/delay once at tick 0 replays byte-identically to
// the v2 spec with the same constant rates — the step machinery and the
// constant fields share one lottery.
func TestPlanConstantRateMatchesV2(t *testing.T) {
	t.Parallel()
	v2 := Spec{
		Name:     "const",
		N:        5,
		Horizon:  800,
		Seeds:    SeedSpec{From: 0, To: 6},
		Protocol: ProtocolSpec{Kind: ProtocolBusy},
		Oracle:   OracleSpec{Kind: OraclePerfect, Delay: 2},
		Faults:   &FaultSpec{DropPct: 10, MaxExtraDelay: 4},
	}
	v3 := v2
	v3.Schema = SchemaV3
	v3.Faults = nil
	v3.Plan = []ActionSpec{
		{At: 0, Action: "drop", Pct: 10},
		{At: 0, Action: "delay", Bound: 4},
	}
	digests := func(s Spec) []string {
		sc := MustBuild(s)
		var out []string
		for _, r := range harness.Sweep(sc, harness.Seeds(6), 1) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			out = append(out, r.Trace.Digest())
		}
		return out
	}
	a, b := digests(v2), digests(v3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d diverged: v2 %s vs v3 %s", i, a[i], b[i])
		}
	}
}

// TestPlanLowering checks the sim lowering shape: churn and cut/heal
// compile onto the existing LinkFaults/pattern machinery.
func TestPlanLowering(t *testing.T) {
	t.Parallel()
	s := v3Spec()
	sc := MustBuild(s)

	// kill(4)@800 and leave(5)@900 became pattern crashes.
	pat := sc.Pattern()
	if at, ok := pat.CrashTime(4); !ok || at != 800 {
		t.Fatalf("kill not lowered to a crash: %v %v", at, ok)
	}
	if at, ok := pat.CrashTime(5); !ok || at != 900 {
		t.Fatalf("leave not lowered to a crash: %v %v", at, ok)
	}

	if sc.Faults == nil {
		t.Fatal("no faults compiled")
	}
	if len(sc.Faults.DropSteps) != 1 || sc.Faults.DropSteps[0].Pct != 10 {
		t.Fatalf("drop steps = %+v", sc.Faults.DropSteps)
	}
	if len(sc.Faults.DelaySteps) != 1 || sc.Faults.DelaySteps[0].Max != 4 {
		t.Fatalf("delay steps = %+v", sc.Faults.DelaySteps)
	}

	// Expected windows: the side cut [200,400), the pause isolation of
	// node 3 [500,700), and node 6's birth isolation [0,600).
	want := map[[2]model.Time]bool{
		{200, 400}: false,
		{500, 700}: false,
		{0, 600}:   false,
	}
	for _, c := range sc.Faults.Cuts {
		key := [2]model.Time{c.From, c.Until}
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for w, seen := range want {
		if !seen {
			t.Fatalf("no cut with window %v; cuts = %+v", w, sc.Faults.Cuts)
		}
	}

	// An unresumed pause and an unhealed cut stay severed past the
	// horizon.
	s2 := v3Spec()
	s2.Plan = []ActionSpec{
		{At: 100, Action: "cut", Cut: [][2]int{{1, 2}}},
		{At: 300, Action: "pause", Nodes: []int{3}},
	}
	sc2 := MustBuild(s2)
	never := model.Time(s2.Horizon) + 1
	var sawCut, sawPause bool
	for _, c := range sc2.Faults.Cuts {
		if c.From == 100 && c.Until == never {
			sawCut = true
		}
		if c.From == 300 && c.Until == never {
			sawPause = true
		}
	}
	if !sawCut || !sawPause {
		t.Fatalf("permanent windows missing: %+v", sc2.Faults.Cuts)
	}
}

// TestPlanChurnRunCompletes runs the full churn spec end to end over a
// few seeds — the acceptance smoke that drop + partition + churn
// coexist in one sim run.
func TestPlanChurnRunCompletes(t *testing.T) {
	t.Parallel()
	sc := MustBuild(v3Spec())
	for _, r := range harness.Sweep(sc, harness.Seeds(4), 1) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Trace == nil || len(r.Trace.Events) == 0 {
			t.Fatal("empty trace")
		}
	}
}
