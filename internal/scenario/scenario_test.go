package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realisticfd/internal/harness"
	"realisticfd/internal/sim"
)

// validSpec is a small well-formed spec exercised (and perturbed) by
// most tests below.
func validSpec() Spec {
	return Spec{
		Name:     "test",
		N:        5,
		Horizon:  2000,
		Seeds:    SeedSpec{From: 0, To: 8},
		Protocol: ProtocolSpec{Kind: ProtocolSFlooding},
		Oracle:   OracleSpec{Kind: OraclePerfect, Delay: 2},
		Crashes:  []CrashSpec{{Process: 2, At: 40}},
		Faults: &FaultSpec{
			MaxExtraDelay: 3,
			Partitions:    []PartitionSpec{{Side: []int{1, 2}, From: 40, Until: 400}},
		},
		Stop: StopSpec{Kind: StopDecided},
	}
}

const validJSON = `{
  "name": "test",
  "n": 5,
  "horizon": 2000,
  "seeds": {"from": 0, "to": 8},
  "protocol": {"kind": "sflooding"},
  "oracle": {"kind": "perfect", "delay": 2},
  "crashes": [{"process": 2, "at": 40}],
  "faults": {
    "max_extra_delay": 3,
    "partitions": [{"side": [1, 2], "from": 40, "until": 400}]
  },
  "stop": {"kind": "decided"}
}`

// TestParseRejectsBadSpecs walks the loader error paths: every
// malformed document must fail with an error naming the problem, never
// silently configure something else.
func TestParseRejectsBadSpecs(t *testing.T) {
	t.Parallel()
	cases := []struct {
		label   string
		mangle  func(Spec) Spec
		wantErr string
	}{
		{"bad topology kind", func(s Spec) Spec { s.Topology.Kind = "torus"; return s }, `unknown kind "torus"`},
		{"drop over 100", func(s Spec) Spec { s.Faults.DropPct = 150; return s }, "drop_pct = 150%"},
		{"negative drop", func(s Spec) Spec { s.Faults.DropPct = -3; return s }, "drop_pct = -3%"},
		{"unknown oracle", func(s Spec) Spec { s.Oracle.Kind = "psychic"; return s }, `unknown kind "psychic"`},
		{"unknown protocol", func(s Spec) Spec { s.Protocol.Kind = "paxos"; return s }, `unknown kind "paxos"`},
		{"crash out of range", func(s Spec) Spec { s.Crashes[0].Process = 9; return s }, "process 9 outside [1, 5]"},
		{"double crash", func(s Spec) Spec { s.Crashes = append(s.Crashes, CrashSpec{Process: 2, At: 99}); return s }, "crashes twice"},
		{"inverted seeds", func(s Spec) Spec { s.Seeds = SeedSpec{From: 10, To: 3}; return s }, "inverted range"},
		{"no horizon", func(s Spec) Spec { s.Horizon = 0; return s }, "horizon"},
		{"n too large", func(s Spec) Spec { s.N = 400; return s }, "n = 400"},
		{"side and cut", func(s Spec) Spec {
			s.Faults.Partitions[0].Cut = [][2]int{{1, 2}}
			return s
		}, "exactly one of side and cut"},
		{"trb without waves", func(s Spec) Spec { s.Protocol = ProtocolSpec{Kind: ProtocolTRB}; s.Stop = StopSpec{}; return s }, "waves"},
		{"all-delivered without trb", func(s Spec) Spec { s.Stop = StopSpec{Kind: StopAllDelivered}; return s }, "requires the trb protocol"},
		{"per_seed on perfect", func(s Spec) Spec { s.Oracle.PerSeed = true; return s }, "per_seed"},
		{"bad hook", func(s Spec) Spec { s.AfterStep = &HookSpec{Kind: "explode"}; return s }, `unknown kind "explode"`},
		{"hook victim out of range", func(s Spec) Spec { s.AfterStep = &HookSpec{Kind: HookCrashOnDecide, Process: 0}; return s }, "process 0"},
		{"delay policy without target", func(s Spec) Spec { s.Policy = PolicySpec{Kind: PolicyDelay, Until: 50}; return s }, "target is required"},
	}
	for _, c := range cases {
		s := c.mangle(validSpec())
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.label)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.wantErr)
		}
	}
}

// TestParseRejectsUnknownFields pins strict decoding: a typo anywhere
// in the document — top level or nested — is an error.
func TestParseRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	for _, doc := range []string{
		strings.Replace(validJSON, `"name"`, `"nmae"`, 1),
		strings.Replace(validJSON, `"delay": 2`, `"delay": 2, "jitter": 5`, 1),
		strings.Replace(validJSON, `"from": 40`, `"frm": 40`, 1),
		validJSON + `{"second": "document"}`,
	} {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("malformed document accepted:\n%s", doc)
		}
	}
	if _, err := Parse([]byte(validJSON)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

// TestPartitionCutMustExistInTopology pins the topology-aware
// validation: an explicit cut may only sever edges the generated graph
// actually has.
func TestPartitionCutMustExistInTopology(t *testing.T) {
	t.Parallel()
	s := validSpec()
	s.Topology = TopologySpec{Kind: TopologyRing}
	s.Faults.Partitions[0] = PartitionSpec{Cut: [][2]int{{1, 3}}, From: 10, Until: 20}
	err := s.Validate()
	if err == nil {
		t.Fatal("cut of a nonexistent ring edge validated")
	}
	if !strings.Contains(err.Error(), "does not exist in the ring topology") {
		t.Fatalf("error %q does not name the missing edge", err)
	}
	// The same cut is fine where the edge exists.
	s.Faults.Partitions[0].Cut = [][2]int{{1, 2}}
	if err := s.Validate(); err != nil {
		t.Fatalf("ring-edge cut rejected: %v", err)
	}
}

// TestConfigDigestRoundTrip is the canonical-encoding gate: load →
// digest → re-encode → re-parse must reproduce the digest, and a spec
// that spells out a default must digest identically to one that omits
// it.
func TestConfigDigestRoundTrip(t *testing.T) {
	t.Parallel()
	s, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatalf("canonical encoding does not re-parse: %v", err)
	}
	d2, err := back.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest changed across encode/parse: %s vs %s", d1, d2)
	}
	if !strings.HasPrefix(d1, "sha256:") {
		t.Fatalf("digest %q has no scheme prefix", d1)
	}

	explicit := strings.Replace(validJSON, `"stop"`, `"topology": {"kind": "complete"}, "policy": {"kind": "random-fair"}, "stop"`, 1)
	se, err := Parse([]byte(explicit))
	if err != nil {
		t.Fatal(err)
	}
	d3, err := se.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatal("explicit defaults digest differently from omitted defaults")
	}

	changed := validSpec()
	changed.Faults.MaxExtraDelay = 4
	d4, err := changed.ConfigDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Fatal("changed fault plan kept the same digest")
	}
}

// TestLoadFile exercises the file path, including the error wrapping
// that names the offending file.
func TestLoadFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(good); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x", "unknown_knob": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(bad)
	if err == nil {
		t.Fatal("invalid file accepted")
	}
	if !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("load error %q does not name the file", err)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTopologies pins the generated edge sets: sizes, connectivity
// invariants, and determinism of random generation.
func TestTopologies(t *testing.T) {
	t.Parallel()
	edges := func(ts TopologySpec, n int) []sim.Edge {
		es, err := ts.Edges(n)
		if err != nil {
			t.Fatalf("%+v: %v", ts, err)
		}
		return es
	}
	if got := edges(TopologySpec{Kind: TopologyComplete}, 5); len(got) != 10 {
		t.Errorf("complete K5 has %d edges, want 10", len(got))
	}
	if got := edges(TopologySpec{Kind: TopologyRing}, 5); len(got) != 5 {
		t.Errorf("5-ring has %d edges, want 5", len(got))
	}
	if got := edges(TopologySpec{Kind: TopologyRing}, 2); len(got) != 1 {
		t.Errorf("2-ring has %d edges, want 1", len(got))
	}
	if got := edges(TopologySpec{Kind: TopologyTree}, 7); len(got) != 6 {
		t.Errorf("7-node tree has %d edges, want 6", len(got))
	}
	for _, e := range edges(TopologySpec{Kind: TopologyTree, Degree: 3}, 13) {
		if e.A == e.B {
			t.Errorf("self-loop %v in tree", e)
		}
	}
	r1 := edges(TopologySpec{Kind: TopologyRandom, Seed: 7, EdgeProb: 30}, 12)
	r2 := edges(TopologySpec{Kind: TopologyRandom, Seed: 7, EdgeProb: 30}, 12)
	if len(r1) != len(r2) {
		t.Fatalf("random topology not deterministic: %d vs %d edges", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("random topology not deterministic at edge %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	if len(r1) < 11 {
		t.Errorf("random topology on 12 nodes has %d edges, fewer than a spanning tree", len(r1))
	}
	r3 := edges(TopologySpec{Kind: TopologyRandom, Seed: 8, EdgeProb: 30}, 12)
	same := len(r1) == len(r3)
	if same {
		for i := range r1 {
			if r1[i] != r3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds generated the identical random topology")
	}
}

// TestBuildRunsDeterministically compiles a spec twice and checks the
// two scenarios replay byte-identically, including a topology-aware
// partition on a ring.
func TestBuildRunsDeterministically(t *testing.T) {
	t.Parallel()
	s := validSpec()
	s.Topology = TopologySpec{Kind: TopologyRing}
	s.Faults.Partitions[0] = PartitionSpec{Cut: [][2]int{{2, 3}}, From: 10, Until: 200}
	digests := func() []string {
		sc := MustBuild(s)
		var out []string
		for _, r := range harness.Sweep(sc, harness.Seeds(4), 1) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			out = append(out, r.Trace.Digest())
		}
		return out
	}
	a, b := digests(), digests()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d replayed differently: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestBuildSparseTopologyBlocksNonEdges checks the sparse-topology
// embedding: traffic between unlinked processes never flows.
func TestBuildSparseTopologyBlocksNonEdges(t *testing.T) {
	t.Parallel()
	s := Spec{
		Name:     "ring-busy",
		N:        5,
		Horizon:  300,
		Seeds:    SeedSpec{From: 0, To: 1},
		Protocol: ProtocolSpec{Kind: ProtocolBusy},
		Oracle:   OracleSpec{Kind: OraclePerfect, Delay: 2},
		Topology: TopologySpec{Kind: TopologyRing},
	}
	sc := MustBuild(s)
	if sc.Faults == nil || len(sc.Faults.Cuts) != 1 {
		t.Fatalf("ring topology compiled no permanent cut: %+v", sc.Faults)
	}
	r := sc.Run(0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	ringEdges, err := s.Topology.edgeSet(s.N)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range r.Trace.Events {
		if ev.Msg == nil || ev.Msg.From == ev.Msg.To {
			continue
		}
		if !ringEdges[canonEdge(int(ev.Msg.From), int(ev.Msg.To))] {
			t.Fatalf("message delivered across non-edge %v→%v", ev.Msg.From, ev.Msg.To)
		}
	}
}
