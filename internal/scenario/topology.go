package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// edgeKey is the canonical {a, b} (a < b) form used for set
// membership; process IDs are 1-based ints here because the spec layer
// works on raw JSON integers.
type edgeKey struct{ a, b int }

func canonEdge(a, b int) edgeKey {
	if b < a {
		a, b = b, a
	}
	return edgeKey{a: a, b: b}
}

// Edges generates the undirected edge set of the topology over n
// processes, sorted lexicographically. Generation is deterministic: a
// random topology is a pure function of (kind, n, seed, edge_prob).
func (t TopologySpec) Edges(n int) ([]sim.Edge, error) {
	set, err := t.edgeSet(n)
	if err != nil {
		return nil, err
	}
	keys := make([]edgeKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	edges := make([]sim.Edge, len(keys))
	for i, k := range keys {
		edges[i] = sim.Edge{A: model.ProcessID(k.a), B: model.ProcessID(k.b)}
	}
	return edges, nil
}

// edgeSet generates the canonical edge-membership set of the topology.
func (t TopologySpec) edgeSet(n int) (map[edgeKey]bool, error) {
	kind := t.Kind
	if kind == "" {
		kind = TopologyComplete
	}
	set := make(map[edgeKey]bool)
	switch kind {
	case TopologyComplete:
		for a := 1; a <= n; a++ {
			for b := a + 1; b <= n; b++ {
				set[edgeKey{a: a, b: b}] = true
			}
		}
	case TopologyRing:
		for a := 1; a < n; a++ {
			set[edgeKey{a: a, b: a + 1}] = true
		}
		if n > 2 {
			set[edgeKey{a: 1, b: n}] = true
		}
	case TopologyTree:
		deg := t.Degree
		if deg == 0 {
			deg = 2
		}
		if deg < 1 {
			return nil, fmt.Errorf("topology tree: degree = %d must be ≥ 1", t.Degree)
		}
		for i := 2; i <= n; i++ {
			parent := (i-2)/deg + 1
			set[canonEdge(parent, i)] = true
		}
	case TopologyChord:
		// The gossip overlay of the live cluster: node i links to
		// i ± 2^j (mod n) for every power of two below n, giving
		// O(log n) degree with O(log n) diameter — each node
		// heartbeats a logarithmic neighborhood, yet news crosses the
		// whole ring in logarithmically many hops (Dobre et al.'s
		// argument for gossip over all-to-all dissemination).
		for i := 1; i <= n; i++ {
			for step := 1; step < n; step *= 2 {
				j := (i-1+step)%n + 1
				if i != j {
					set[canonEdge(i, j)] = true
				}
			}
		}
	case TopologyRandom:
		if t.EdgeProb < 0 || t.EdgeProb > 100 {
			return nil, fmt.Errorf("topology random: edge_prob = %d%% outside [0, 100]", t.EdgeProb)
		}
		rng := rand.New(rand.NewSource(t.Seed))
		// A random spanning tree keeps the graph connected: each process
		// links to one uniformly chosen earlier process.
		for i := 2; i <= n; i++ {
			set[canonEdge(1+rng.Intn(i-1), i)] = true
		}
		// Then every remaining pair joins independently with EdgeProb%.
		for a := 1; a <= n; a++ {
			for b := a + 1; b <= n; b++ {
				if set[edgeKey{a: a, b: b}] {
					continue
				}
				if rng.Intn(100) < t.EdgeProb {
					set[edgeKey{a: a, b: b}] = true
				}
			}
		}
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", t.Kind)
	}
	return set, nil
}
