package scenario

import (
	"math"
	"strings"
	"testing"
)

func validLiveJSON() string {
	return `{
		"name": "smoke",
		"n": 16,
		"estimator": {"kind": "phi", "phi": 8},
		"schedule": [
			{"at_ms": 0, "action": "kill", "nodes": [3, 7]},
			{"at_ms": 100, "action": "pause", "nodes": [5]},
			{"at_ms": 400, "action": "partition", "side": [1, 2]},
			{"at_ms": 900, "action": "resume", "nodes": [5]},
			{"at_ms": 1200, "action": "heal"}
		]
	}`
}

func TestLiveSpecParseAndDefaults(t *testing.T) {
	s, err := ParseLive([]byte(validLiveJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology.Kind != TopologyChord {
		t.Fatalf("default topology = %q, want chord", s.Topology.Kind)
	}
	if s.IntervalMs != 50 || s.SamplePeriodMs != 50 {
		t.Fatalf("default cadence = %d/%d, want 50/50", s.IntervalMs, s.SamplePeriodMs)
	}
	if s.WarmupMs != 1000 || s.SettleMs != 2000 {
		t.Fatalf("default warmup/settle = %d/%d, want 1000/2000", s.WarmupMs, s.SettleMs)
	}
}

func TestLiveSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(s *LiveSpec)
		want string
	}{
		{"tiny n", func(s *LiveSpec) { s.N = 1 }, "must be ≥ 2"},
		{"unknown action", func(s *LiveSpec) { s.Schedule[0].Action = "reboot" }, "unknown action"},
		{"kill without nodes", func(s *LiveSpec) { s.Schedule[0].Nodes = nil }, "needs nodes"},
		{"node out of range", func(s *LiveSpec) { s.Schedule[0].Nodes = []int{99} }, "outside"},
		{"double kill", func(s *LiveSpec) {
			s.Schedule = append(s.Schedule, LiveEventSpec{AtMs: 50, Action: LiveKill, Nodes: []int{3}})
		}, "killed twice"},
		{"resume without pause", func(s *LiveSpec) {
			s.Schedule = []LiveEventSpec{{AtMs: 0, Action: LiveResume, Nodes: []int{5}}}
		}, "without a pause"},
		{"pause after kill", func(s *LiveSpec) {
			s.Schedule = []LiveEventSpec{
				{AtMs: 0, Action: LiveKill, Nodes: []int{5}},
				{AtMs: 10, Action: LivePause, Nodes: []int{5}},
			}
		}, "paused after kill"},
		{"partition needs one selector", func(s *LiveSpec) {
			s.Schedule[2].Cut = [][2]int{{1, 2}}
		}, "exactly one of side and cut"},
		{"cut edge not in overlay", func(s *LiveSpec) {
			// chord(16) links 1 to 2,3,5,9 (±2^j); 1—7 is not an edge.
			s.Schedule[2].Side = nil
			s.Schedule[2].Cut = [][2]int{{1, 7}}
		}, "does not exist"},
		{"bound with stuck pause", func(s *LiveSpec) {
			s.BoundMs = 1000
			s.Schedule = []LiveEventSpec{{AtMs: 0, Action: LivePause, Nodes: []int{5}}}
		}, "stay paused"},
		{"negative at", func(s *LiveSpec) { s.Schedule[0].AtMs = -1 }, "non-negative"},
		{"fixed without timeout", func(s *LiveSpec) {
			s.Estimator = LiveEstimatorSpec{Kind: LiveEstFixed}
		}, "timeout_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseLive([]byte(validLiveJSON()))
			if err != nil {
				t.Fatal(err)
			}
			tc.edit(&s)
			err = s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestLiveSpecStrictParsing(t *testing.T) {
	if _, err := ParseLive([]byte(`{"name": "x", "n": 4, "schedule": [], "bogus": 1}`)); err == nil {
		t.Fatal("unknown field was not rejected")
	}
	if _, err := ParseLive([]byte(`{"name": "x", "n": 4, "schedule": []} {}`)); err == nil {
		t.Fatal("trailing document was not rejected")
	}
}

// TestChordTopologyDegree pins the O(log n) property the live cluster
// stakes its scalability on: every node's chord degree is at most
// 2⌈log2 n⌉, at every size from the smoke cluster to well past the
// 200-node acceptance run.
func TestChordTopologyDegree(t *testing.T) {
	for _, n := range []int{2, 3, 4, 16, 50, 200, 333} {
		edges, err := TopologySpec{Kind: TopologyChord}.Edges(n)
		if err != nil {
			t.Fatal(err)
		}
		deg := make([]int, n+1)
		for _, e := range edges {
			deg[e.A]++
			deg[e.B]++
		}
		bound := 2 * int(math.Ceil(math.Log2(float64(n))))
		if n == 2 {
			bound = 1
		}
		for p := 1; p <= n; p++ {
			if deg[p] == 0 {
				t.Fatalf("n=%d: node %d is isolated", n, p)
			}
			if deg[p] > bound {
				t.Fatalf("n=%d: node %d has degree %d, want ≤ %d", n, p, deg[p], bound)
			}
		}
	}
}

// TestChordTopologyConnected: the overlay must be connected, or gossip
// cannot disseminate.
func TestChordTopologyConnected(t *testing.T) {
	for _, n := range []int{2, 5, 16, 200} {
		edges, err := TopologySpec{Kind: TopologyChord}.Edges(n)
		if err != nil {
			t.Fatal(err)
		}
		adj := make(map[int][]int)
		for _, e := range edges {
			adj[int(e.A)] = append(adj[int(e.A)], int(e.B))
			adj[int(e.B)] = append(adj[int(e.B)], int(e.A))
		}
		seen := map[int]bool{1: true}
		queue := []int{1}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("n=%d: chord overlay reaches %d of %d nodes", n, len(seen), n)
		}
	}
}

func TestResolveEdges(t *testing.T) {
	s, err := ParseLive([]byte(validLiveJSON()))
	if err != nil {
		t.Fatal(err)
	}
	// Side {1, 2}: every chord edge crossing the boundary.
	edges, err := s.ResolveEdges(s.Schedule[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("side boundary resolved to no edges")
	}
	inSide := map[int]bool{1: true, 2: true}
	for _, e := range edges {
		if inSide[e[0]] == inSide[e[1]] {
			t.Fatalf("edge %v does not cross the boundary", e)
		}
	}
	// Explicit cut passes through untouched.
	ev := LiveEventSpec{Action: LivePartition, Cut: [][2]int{{1, 2}}}
	got, err := s.ResolveEdges(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != [2]int{1, 2} {
		t.Fatalf("explicit cut resolved to %v", got)
	}
	// Bare heal selects nil — all active cuts.
	got, err = s.ResolveEdges(LiveEventSpec{Action: LiveHeal})
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("bare heal resolved to %v, want nil", got)
	}
}
