package scenario

import (
	"fmt"

	"realisticfd/internal/model"
)

// Kind names accepted by the spec. Collected as constants so the
// builder, the validator and the docs cannot drift apart.
const (
	ProtocolSFlooding    = "sflooding"
	ProtocolRotating     = "rotating"
	ProtocolMarabout     = "marabout"
	ProtocolPartialOrder = "partial-order"
	ProtocolTRB          = "trb"
	ProtocolReduction    = "reduction"
	ProtocolBusy         = "busy"

	OraclePerfect          = "perfect"
	OracleScribe           = "scribe"
	OracleMarabout         = "marabout"
	OraclePartiallyPerfect = "partially-perfect"
	OracleRealisticStrong  = "realistic-strong"
	OracleEventuallyStrong = "eventually-strong"

	TopologyComplete = "complete"
	TopologyRing     = "ring"
	TopologyTree     = "tree"
	TopologyRandom   = "random"
	TopologyChord    = "chord"

	PolicyRandomFair = "random-fair"
	PolicyFair       = "fair"
	PolicyDelay      = "delay"

	StopNone         = "none"
	StopDecided      = "decided"
	StopAllDelivered = "all-delivered"

	HookCrashOnDecide = "crash-on-decide"
)

// SchemaV3 is the spec schema that adds the fault-plan IR fields (Plan,
// Live). The empty schema is the original v2 format; v3 is a strict
// superset, so every v2 document parses unchanged.
const SchemaV3 = "fdspec/v3"

// Validate checks every constraint a well-formed spec must satisfy; it
// reports the first violation. Parse validates automatically; call it
// directly on specs assembled in Go.
func (s Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	switch s.Schema {
	case "", SchemaV3:
	default:
		return fail("schema: unknown %q (want %q or empty)", s.Schema, SchemaV3)
	}
	if s.Schema != SchemaV3 && (len(s.Plan) > 0 || s.Live != nil) {
		return fail("plan/live fields require schema %q", SchemaV3)
	}
	if s.N < 1 || s.N > model.MaxProcesses {
		return fail("n = %d outside [1, %d]", s.N, model.MaxProcesses)
	}
	if s.Horizon <= 0 {
		return fail("horizon = %d must be positive", s.Horizon)
	}
	if s.Seeds.To < s.Seeds.From {
		return fail("seeds: inverted range [%d, %d)", s.Seeds.From, s.Seeds.To)
	}

	switch s.Protocol.Kind {
	case ProtocolSFlooding, ProtocolRotating, ProtocolMarabout, ProtocolPartialOrder, ProtocolBusy:
	case ProtocolTRB:
		if s.Protocol.Waves < 1 {
			return fail("protocol trb: waves = %d must be ≥ 1", s.Protocol.Waves)
		}
	case ProtocolReduction:
		if s.Protocol.MaxInstances < 1 {
			return fail("protocol reduction: max_instances = %d must be ≥ 1", s.Protocol.MaxInstances)
		}
	case "":
		return fail("protocol: kind is required")
	default:
		return fail("protocol: unknown kind %q", s.Protocol.Kind)
	}

	switch s.Oracle.Kind {
	case OraclePerfect, OracleScribe, OracleMarabout, OraclePartiallyPerfect, OracleRealisticStrong:
		if s.Oracle.PerSeed {
			return fail("oracle %s: per_seed applies only to eventually-strong", s.Oracle.Kind)
		}
	case OracleEventuallyStrong:
		if s.Oracle.FalseRate < 0 || s.Oracle.FalseRate > 100 {
			return fail("oracle eventually-strong: false_rate = %d%% outside [0, 100]", s.Oracle.FalseRate)
		}
	case "":
		return fail("oracle: kind is required")
	default:
		return fail("oracle: unknown kind %q", s.Oracle.Kind)
	}
	if s.Oracle.Delay < 0 || s.Oracle.BaseDelay < 0 || s.Oracle.JitterMax < 0 || s.Oracle.GST < 0 {
		return fail("oracle %s: latencies must be non-negative", s.Oracle.Kind)
	}

	seen := make(map[int]bool, len(s.Crashes))
	for _, c := range s.Crashes {
		if c.Process < 1 || c.Process > s.N {
			return fail("crashes: process %d outside [1, %d]", c.Process, s.N)
		}
		if seen[c.Process] {
			return fail("crashes: process %d crashes twice", c.Process)
		}
		seen[c.Process] = true
		if c.At < 0 {
			return fail("crashes: process %d crashes at negative time %d", c.Process, c.At)
		}
	}

	edges, err := s.Topology.edgeSet(s.N)
	if err != nil {
		return fail("%v", err)
	}

	if f := s.Faults; f != nil {
		if f.DropPct < 0 || f.DropPct > 100 {
			return fail("faults: drop_pct = %d%% outside [0, 100]", f.DropPct)
		}
		if f.MaxExtraDelay < 0 {
			return fail("faults: max_extra_delay = %d must be non-negative", f.MaxExtraDelay)
		}
		for i, p := range f.Partitions {
			if (len(p.Side) > 0) == (len(p.Cut) > 0) {
				return fail("faults: partition %d must give exactly one of side and cut", i)
			}
			for _, id := range p.Side {
				if id < 1 || id > s.N {
					return fail("faults: partition %d: side process %d outside [1, %d]", i, id, s.N)
				}
			}
			for _, e := range p.Cut {
				a, b := e[0], e[1]
				if a < 1 || a > s.N || b < 1 || b > s.N || a == b {
					return fail("faults: partition %d: bad edge [%d, %d]", i, a, b)
				}
				if !edges[canonEdge(a, b)] {
					return fail("faults: partition %d: edge [%d, %d] does not exist in the %s topology", i, a, b, s.Topology.Kind)
				}
			}
		}
	}

	if len(s.Plan) > 0 {
		if err := s.validatePlan(edges); err != nil {
			return err
		}
	}
	if lp := s.Live; lp != nil {
		if lp.IntervalMs < 0 || lp.SamplePeriodMs < 0 || lp.WarmupMs < 0 || lp.SettleMs < 0 || lp.BoundMs < 0 {
			return fail("live: durations must be non-negative")
		}
		if lp.Fanout < 0 {
			return fail("live: fanout = %d must be non-negative", lp.Fanout)
		}
		switch lp.Estimator.Kind {
		case LiveEstFixed:
			if lp.Estimator.TimeoutMs < 1 {
				return fail("live: estimator fixed: timeout_ms = %d must be ≥ 1", lp.Estimator.TimeoutMs)
			}
		case LiveEstChen, LiveEstPhi, "":
		default:
			return fail("live: estimator: unknown kind %q", lp.Estimator.Kind)
		}
		if lp.Estimator.Window < 0 || lp.Estimator.TimeoutMs < 0 || lp.Estimator.AlphaMs < 0 ||
			lp.Estimator.Phi < 0 || lp.Estimator.MinStdDevMs < 0 {
			return fail("live: estimator parameters must be non-negative")
		}
	}

	switch s.Policy.Kind {
	case PolicyRandomFair, PolicyFair, "": // "" normalizes to random-fair
	case PolicyDelay:
		if len(s.Policy.Target) == 0 {
			return fail("policy delay: target is required")
		}
		for _, id := range s.Policy.Target {
			if id < 1 || id > s.N {
				return fail("policy delay: target process %d outside [1, %d]", id, s.N)
			}
		}
	default:
		return fail("policy: unknown kind %q", s.Policy.Kind)
	}

	switch s.Stop.Kind {
	case StopNone, "": // "" normalizes to none
	case StopDecided:
		if s.Stop.Instance < 0 {
			return fail("stop decided: instance = %d must be ≥ 0", s.Stop.Instance)
		}
	case StopAllDelivered:
		if s.Protocol.Kind != ProtocolTRB {
			return fail("stop all-delivered requires the trb protocol, not %q", s.Protocol.Kind)
		}
	default:
		return fail("stop: unknown kind %q", s.Stop.Kind)
	}

	if h := s.AfterStep; h != nil {
		switch h.Kind {
		case HookCrashOnDecide:
			if h.Process < 1 || h.Process > s.N {
				return fail("after_step crash-on-decide: process %d outside [1, %d]", h.Process, s.N)
			}
		default:
			return fail("after_step: unknown kind %q", h.Kind)
		}
	}
	return nil
}
