package scenario

import (
	"fmt"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// Build compiles the spec into a runnable harness.Scenario: factories
// for the stateful per-run pieces, the generated topology folded into
// the fault plan, and the spec's ConfigDigest attached so streaming
// checkpoints key on the full configuration. The spec is validated
// first; a spec that came through Parse/Load cannot fail here.
func (s Spec) Build() (harness.Scenario, error) {
	s.normalize()
	if err := s.Validate(); err != nil {
		return harness.Scenario{}, err
	}
	digest, err := s.ConfigDigest()
	if err != nil {
		return harness.Scenario{}, err
	}
	sc := harness.Scenario{
		Name:         s.Name,
		ConfigDigest: digest,
		N:            s.N,
		Horizon:      model.Time(s.Horizon),
	}

	crashes := s.Crashes
	n := s.N
	sc.Pattern = func() *model.FailurePattern {
		pat := model.MustPattern(n)
		for _, c := range crashes {
			pat.MustCrash(model.ProcessID(c.Process), model.Time(c.At))
		}
		return pat
	}

	switch o := s.Oracle; o.Kind {
	case OraclePerfect:
		sc.Oracle = fd.Perfect{Delay: model.Time(o.Delay)}
	case OracleScribe:
		sc.Oracle = fd.Scribe{}
	case OracleMarabout:
		sc.Oracle = fd.Marabout{}
	case OraclePartiallyPerfect:
		sc.Oracle = fd.PartiallyPerfect{Delay: model.Time(o.Delay)}
	case OracleRealisticStrong:
		sc.Oracle = fd.RealisticStrong{BaseDelay: model.Time(o.BaseDelay), Seed: o.Seed, JitterMax: model.Time(o.JitterMax)}
	case OracleEventuallyStrong:
		if o.PerSeed {
			sc.OracleFor = func(seed int64) fd.Oracle {
				return fd.EventuallyStrong{GST: model.Time(o.GST), Delay: model.Time(o.Delay), Seed: uint64(seed), FalseRate: o.FalseRate}
			}
		} else {
			sc.Oracle = fd.EventuallyStrong{GST: model.Time(o.GST), Delay: model.Time(o.Delay), Seed: o.Seed, FalseRate: o.FalseRate}
		}
	}

	switch p := s.Protocol; p.Kind {
	case ProtocolSFlooding:
		sc.Automaton = consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
	case ProtocolRotating:
		sc.Automaton = consensus.Rotating{Proposals: consensus.DistinctProposals(n)}
	case ProtocolMarabout:
		sc.Automaton = consensus.MaraboutConsensus{Proposals: consensus.DistinctProposals(n)}
	case ProtocolPartialOrder:
		sc.Automaton = consensus.PartialOrder{Proposals: consensus.DistinctProposals(n)}
	case ProtocolTRB:
		sc.Automaton = trb.Broadcast{Waves: p.Waves}
	case ProtocolReduction:
		sc.Automaton = core.Reduction{
			Factory: func(int) sim.Automaton {
				return consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
			},
			MaxInstances: p.MaxInstances,
		}
	case ProtocolBusy:
		sc.Automaton = BusyAutomaton{}
	}

	switch p := s.Policy; p.Kind {
	case PolicyRandomFair:
		sc.Policy = func() sim.Policy { return &sim.RandomFairPolicy{} }
	case PolicyFair:
		sc.Policy = func() sim.Policy { return &sim.FairPolicy{} }
	case PolicyDelay:
		target := model.NewProcessSet()
		for _, id := range p.Target {
			target = target.Add(model.ProcessID(id))
		}
		until := model.Time(p.Until)
		sc.Policy = func() sim.Policy {
			return &sim.DelayPolicy{Target: target, Until: until}
		}
	}

	faults, err := s.buildFaults()
	if err != nil {
		return harness.Scenario{}, err
	}
	sc.Faults = faults

	switch st := s.Stop; st.Kind {
	case StopNone:
	case StopDecided:
		instance := st.Instance
		sc.StopWhen = func() func(*sim.Trace) bool { return sim.CorrectDecided(instance) }
	case StopAllDelivered:
		waves := s.Protocol.Waves
		sc.StopWhen = func() func(*sim.Trace) bool { return trb.AllDelivered(waves) }
	}

	if h := s.AfterStep; h != nil && h.Kind == HookCrashOnDecide {
		victim := model.ProcessID(h.Process)
		sc.AfterStep = func() func(*sim.Run, *sim.EventRecord) {
			crashed := false // per-run adversary state
			return func(r *sim.Run, ev *sim.EventRecord) {
				if crashed || ev.P != victim {
					return
				}
				for _, pe := range ev.Events {
					if pe.Kind == sim.KindDecide {
						crashed = true
						_ = r.Crash(victim)
					}
				}
			}
		}
	}
	return sc, nil
}

// MustBuild is Build for specs known statically valid (embedded
// testdata, specs assembled by trusted code); it panics on error.
func MustBuild(s Spec) harness.Scenario {
	sc, err := s.Build()
	if err != nil {
		panic(err)
	}
	return sc
}

// buildFaults compiles the fault plan against the generated topology:
// side partitions become cuts of the crossing edges, explicit cuts are
// taken as given (Validate already checked they exist), and a sparse
// topology contributes one permanent cut of every non-edge. Returns
// nil when nothing perturbs the network.
func (s Spec) buildFaults() (*sim.LinkFaults, error) {
	edges, err := s.Topology.Edges(s.N)
	if err != nil {
		return nil, err
	}
	var lf sim.LinkFaults
	if s.Faults != nil {
		lf.DropPct = s.Faults.DropPct
		lf.MaxExtraDelay = model.Time(s.Faults.MaxExtraDelay)
		for i, p := range s.Faults.Partitions {
			cut := sim.EdgeCut{From: model.Time(p.From), Until: model.Time(p.Until)}
			switch {
			case len(p.Side) > 0:
				side := model.NewProcessSet()
				for _, id := range p.Side {
					side = side.Add(model.ProcessID(id))
				}
				for _, e := range edges {
					if side.Has(e.A) != side.Has(e.B) {
						cut.Edges = append(cut.Edges, e)
					}
				}
			default:
				for _, e := range p.Cut {
					k := canonEdge(e[0], e[1])
					cut.Edges = append(cut.Edges, sim.Edge{A: model.ProcessID(k.a), B: model.ProcessID(k.b)})
				}
			}
			if len(cut.Edges) == 0 {
				return nil, fmt.Errorf("scenario %q: faults: partition %d severs no topology edge", s.Name, i)
			}
			lf.Cuts = append(lf.Cuts, cut)
		}
	}
	if missing := s.missingEdges(edges); len(missing) > 0 {
		// A sparse topology is a permanent severing of its non-links;
		// Until reaches past the horizon so the cut never heals.
		lf.Cuts = append(lf.Cuts, sim.EdgeCut{Edges: missing, From: 0, Until: model.Time(s.Horizon) + 1})
	}
	if !lf.Active() {
		return nil, nil
	}
	return &lf, nil
}

// missingEdges returns the complement of the topology's edge set: the
// pairs of processes with no link between them.
func (s Spec) missingEdges(edges []sim.Edge) []sim.Edge {
	have := make(map[edgeKey]bool, len(edges))
	for _, e := range edges {
		have[canonEdge(int(e.A), int(e.B))] = true
	}
	var missing []sim.Edge
	for a := 1; a <= s.N; a++ {
		for b := a + 1; b <= s.N; b++ {
			if !have[edgeKey{a: a, b: b}] {
				missing = append(missing, sim.Edge{A: model.ProcessID(a), B: model.ProcessID(b)})
			}
		}
	}
	return missing
}
