package scenario

import (
	"fmt"

	"realisticfd/internal/consensus"
	"realisticfd/internal/core"
	"realisticfd/internal/fd"
	"realisticfd/internal/harness"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/trb"
)

// Build compiles the spec into a runnable harness.Scenario: factories
// for the stateful per-run pieces, the generated topology folded into
// the fault plan, and the spec's ConfigDigest attached so streaming
// checkpoints key on the full configuration. The spec is validated
// first; a spec that came through Parse/Load cannot fail here.
func (s Spec) Build() (harness.Scenario, error) {
	s.normalize()
	if err := s.Validate(); err != nil {
		return harness.Scenario{}, err
	}
	digest, err := s.ConfigDigest()
	if err != nil {
		return harness.Scenario{}, err
	}
	sc := harness.Scenario{
		Name:         s.Name,
		ConfigDigest: digest,
		N:            s.N,
		Horizon:      model.Time(s.Horizon),
	}

	plan, err := s.CompilePlan()
	if err != nil {
		return harness.Scenario{}, err
	}

	crashes := s.Crashes
	if !plan.Empty() {
		// Plan kills and leaves are crashes in the simulator's
		// crash-stop model; iterate the timeline (not the index maps)
		// so the pattern order is deterministic.
		crashes = append([]CrashSpec(nil), s.Crashes...)
		for _, a := range plan.Actions {
			if a.Kind == ActKill || a.Kind == ActLeave {
				for _, id := range a.Nodes {
					crashes = append(crashes, CrashSpec{Process: id, At: a.At})
				}
			}
		}
	}
	n := s.N
	sc.Pattern = func() *model.FailurePattern {
		pat := model.MustPattern(n)
		for _, c := range crashes {
			pat.MustCrash(model.ProcessID(c.Process), model.Time(c.At))
		}
		return pat
	}

	switch o := s.Oracle; o.Kind {
	case OraclePerfect:
		sc.Oracle = fd.Perfect{Delay: model.Time(o.Delay)}
	case OracleScribe:
		sc.Oracle = fd.Scribe{}
	case OracleMarabout:
		sc.Oracle = fd.Marabout{}
	case OraclePartiallyPerfect:
		sc.Oracle = fd.PartiallyPerfect{Delay: model.Time(o.Delay)}
	case OracleRealisticStrong:
		sc.Oracle = fd.RealisticStrong{BaseDelay: model.Time(o.BaseDelay), Seed: o.Seed, JitterMax: model.Time(o.JitterMax)}
	case OracleEventuallyStrong:
		if o.PerSeed {
			sc.OracleFor = func(seed int64) fd.Oracle {
				return fd.EventuallyStrong{GST: model.Time(o.GST), Delay: model.Time(o.Delay), Seed: uint64(seed), FalseRate: o.FalseRate}
			}
		} else {
			sc.Oracle = fd.EventuallyStrong{GST: model.Time(o.GST), Delay: model.Time(o.Delay), Seed: o.Seed, FalseRate: o.FalseRate}
		}
	}

	switch p := s.Protocol; p.Kind {
	case ProtocolSFlooding:
		sc.Automaton = consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
	case ProtocolRotating:
		sc.Automaton = consensus.Rotating{Proposals: consensus.DistinctProposals(n)}
	case ProtocolMarabout:
		sc.Automaton = consensus.MaraboutConsensus{Proposals: consensus.DistinctProposals(n)}
	case ProtocolPartialOrder:
		sc.Automaton = consensus.PartialOrder{Proposals: consensus.DistinctProposals(n)}
	case ProtocolTRB:
		sc.Automaton = trb.Broadcast{Waves: p.Waves}
	case ProtocolReduction:
		sc.Automaton = core.Reduction{
			Factory: func(int) sim.Automaton {
				return consensus.SFlooding{Proposals: consensus.DistinctProposals(n)}
			},
			MaxInstances: p.MaxInstances,
		}
	case ProtocolBusy:
		sc.Automaton = BusyAutomaton{}
	}

	switch p := s.Policy; p.Kind {
	case PolicyRandomFair:
		sc.Policy = func() sim.Policy { return &sim.RandomFairPolicy{} }
	case PolicyFair:
		sc.Policy = func() sim.Policy { return &sim.FairPolicy{} }
	case PolicyDelay:
		target := model.NewProcessSet()
		for _, id := range p.Target {
			target = target.Add(model.ProcessID(id))
		}
		until := model.Time(p.Until)
		sc.Policy = func() sim.Policy {
			return &sim.DelayPolicy{Target: target, Until: until}
		}
	}

	faults, err := s.buildFaults(plan)
	if err != nil {
		return harness.Scenario{}, err
	}
	sc.Faults = faults

	switch st := s.Stop; st.Kind {
	case StopNone:
	case StopDecided:
		instance := st.Instance
		sc.StopWhen = func() func(*sim.Trace) bool { return sim.CorrectDecided(instance) }
	case StopAllDelivered:
		waves := s.Protocol.Waves
		sc.StopWhen = func() func(*sim.Trace) bool { return trb.AllDelivered(waves) }
	}

	if h := s.AfterStep; h != nil && h.Kind == HookCrashOnDecide {
		victim := model.ProcessID(h.Process)
		sc.AfterStep = func() func(*sim.Run, *sim.EventRecord) {
			crashed := false // per-run adversary state
			return func(r *sim.Run, ev *sim.EventRecord) {
				if crashed || ev.P != victim {
					return
				}
				for _, pe := range ev.Events {
					if pe.Kind == sim.KindDecide {
						crashed = true
						_ = r.Crash(victim)
					}
				}
			}
		}
	}
	return sc, nil
}

// MustBuild is Build for specs known statically valid (embedded
// testdata, specs assembled by trusted code); it panics on error.
func MustBuild(s Spec) harness.Scenario {
	sc, err := s.Build()
	if err != nil {
		panic(err)
	}
	return sc
}

// buildFaults compiles the fault plan against the generated topology:
// side partitions become cuts of the crossing edges, explicit cuts are
// taken as given (Validate already checked they exist), and a sparse
// topology contributes one permanent cut of every non-edge. A /v3
// FaultPlan lowers onto the same machinery: timed drop/delay actions
// become piecewise-constant RateStep/DelayStep timelines, cut/heal
// pairs become EdgeCuts, pause/resume isolate a node's incident edges
// for the window, and a joiner is link-isolated from tick 0 until its
// join instant. Returns nil when nothing perturbs the network.
func (s Spec) buildFaults(plan *FaultPlan) (*sim.LinkFaults, error) {
	edges, err := s.Topology.Edges(s.N)
	if err != nil {
		return nil, err
	}
	var lf sim.LinkFaults
	if s.Faults != nil {
		lf.DropPct = s.Faults.DropPct
		lf.MaxExtraDelay = model.Time(s.Faults.MaxExtraDelay)
		for i, p := range s.Faults.Partitions {
			cut := sim.EdgeCut{From: model.Time(p.From), Until: model.Time(p.Until)}
			switch {
			case len(p.Side) > 0:
				side := model.NewProcessSet()
				for _, id := range p.Side {
					side = side.Add(model.ProcessID(id))
				}
				for _, e := range edges {
					if side.Has(e.A) != side.Has(e.B) {
						cut.Edges = append(cut.Edges, e)
					}
				}
			default:
				for _, e := range p.Cut {
					k := canonEdge(e[0], e[1])
					cut.Edges = append(cut.Edges, sim.Edge{A: model.ProcessID(k.a), B: model.ProcessID(k.b)})
				}
			}
			if len(cut.Edges) == 0 {
				return nil, fmt.Errorf("scenario %q: faults: partition %d severs no topology edge", s.Name, i)
			}
			lf.Cuts = append(lf.Cuts, cut)
		}
	}
	if missing := s.missingEdges(edges); len(missing) > 0 {
		// A sparse topology is a permanent severing of its non-links;
		// Until reaches past the horizon so the cut never heals.
		lf.Cuts = append(lf.Cuts, sim.EdgeCut{Edges: missing, From: 0, Until: model.Time(s.Horizon) + 1})
	}
	if !plan.Empty() {
		s.lowerPlan(plan, edges, &lf)
	}
	if !lf.Active() {
		return nil, nil
	}
	return &lf, nil
}

// lowerPlan folds a compiled FaultPlan into the link-fault set. The
// churn approximations are deliberate: a paused node is modeled as
// total link isolation for the window (its local steps continue, but
// the detector-visible silence is what QoS measures), and a joiner
// exists from tick 0 but is isolated until its join instant —
// "partitioned from birth, healing at the join".
func (s Spec) lowerPlan(plan *FaultPlan, edges []sim.Edge, lf *sim.LinkFaults) {
	never := model.Time(s.Horizon) + 1
	type interval struct {
		edge  sim.Edge
		from  model.Time
		until model.Time
	}
	var spans []interval

	// cut/heal pairing: each severed edge stays down until the first
	// heal that names it (or a bare heal), else past the horizon.
	cutStart := map[sim.Edge]model.Time{}
	var activeOrder []sim.Edge
	dropEdge := func(e sim.Edge, until model.Time) {
		spans = append(spans, interval{edge: e, from: cutStart[e], until: until})
		delete(cutStart, e)
		for i, a := range activeOrder {
			if a == e {
				activeOrder = append(activeOrder[:i], activeOrder[i+1:]...)
				break
			}
		}
	}
	for _, a := range plan.Actions {
		switch a.Kind {
		case ActDrop:
			lf.DropSteps = append(lf.DropSteps, sim.RateStep{From: model.Time(a.At), Pct: a.Pct})
		case ActDelay:
			lf.DelaySteps = append(lf.DelaySteps, sim.DelayStep{From: model.Time(a.At), Max: model.Time(a.Bound)})
		case ActCut:
			for _, e := range a.Edges {
				edge := sim.Edge{A: model.ProcessID(e[0]), B: model.ProcessID(e[1])}
				if _, active := cutStart[edge]; !active {
					cutStart[edge] = model.Time(a.At)
					activeOrder = append(activeOrder, edge)
				}
			}
		case ActHeal:
			if a.Edges == nil {
				for len(activeOrder) > 0 {
					dropEdge(activeOrder[0], model.Time(a.At))
				}
				continue
			}
			for _, e := range a.Edges {
				edge := sim.Edge{A: model.ProcessID(e[0]), B: model.ProcessID(e[1])}
				if _, active := cutStart[edge]; active {
					dropEdge(edge, model.Time(a.At))
				}
			}
		}
	}
	for len(activeOrder) > 0 {
		dropEdge(activeOrder[0], never)
	}

	// pause/resume: isolate the node's incident edges for the window.
	incident := func(id int) []sim.Edge {
		var out []sim.Edge
		p := model.ProcessID(id)
		for _, e := range edges {
			if e.A == p || e.B == p {
				out = append(out, e)
			}
		}
		return out
	}
	pausedAt := map[int]model.Time{}
	var pausedOrder []int
	for _, a := range plan.Actions {
		switch a.Kind {
		case ActPause:
			for _, id := range a.Nodes {
				if _, ok := pausedAt[id]; !ok {
					pausedAt[id] = model.Time(a.At)
					pausedOrder = append(pausedOrder, id)
				}
			}
		case ActResume:
			for _, id := range a.Nodes {
				from, ok := pausedAt[id]
				if !ok {
					continue
				}
				for _, e := range incident(id) {
					spans = append(spans, interval{edge: e, from: from, until: model.Time(a.At)})
				}
				delete(pausedAt, id)
				for i, p := range pausedOrder {
					if p == id {
						pausedOrder = append(pausedOrder[:i], pausedOrder[i+1:]...)
						break
					}
				}
			}
		}
	}
	for _, id := range pausedOrder {
		for _, e := range incident(id) {
			spans = append(spans, interval{edge: e, from: pausedAt[id], until: never})
		}
	}

	// join: birth isolation [0, joinAt) of the joiner's incident edges.
	for _, a := range plan.Actions {
		if a.Kind != ActJoin {
			continue
		}
		for _, id := range a.Nodes {
			if a.At == 0 {
				continue // joining at tick 0 is just being present
			}
			for _, e := range incident(id) {
				spans = append(spans, interval{edge: e, from: 0, until: model.Time(a.At)})
			}
		}
	}

	// Group same-window spans into one EdgeCut each, in emission order.
	type window struct{ from, until model.Time }
	cutIdx := map[window]int{}
	for _, sp := range spans {
		if sp.until <= sp.from {
			continue
		}
		w := window{from: sp.from, until: sp.until}
		i, ok := cutIdx[w]
		if !ok {
			i = len(lf.Cuts)
			cutIdx[w] = i
			lf.Cuts = append(lf.Cuts, sim.EdgeCut{From: w.from, Until: w.until})
		}
		lf.Cuts[i].Edges = append(lf.Cuts[i].Edges, sp.edge)
	}
}

// missingEdges returns the complement of the topology's edge set: the
// pairs of processes with no link between them.
func (s Spec) missingEdges(edges []sim.Edge) []sim.Edge {
	have := make(map[edgeKey]bool, len(edges))
	for _, e := range edges {
		have[canonEdge(int(e.A), int(e.B))] = true
	}
	var missing []sim.Edge
	for a := 1; a <= s.N; a++ {
		for b := a + 1; b <= s.N; b++ {
			if !have[edgeKey{a: a, b: b}] {
				missing = append(missing, sim.Edge{A: model.ProcessID(a), B: model.ProcessID(b)})
			}
		}
	}
	return missing
}
