package model

import (
	"testing"
)

// naiveHistory is the reference implementation the change-point History
// is held to: record every sample verbatim, answer every query by a
// plain scan. Any divergence is a bug in the RLE encoding.
type naiveHistory struct {
	n       int
	samples map[ProcessID][]struct {
		T   Time
		Out ProcessSet
	}
}

func newNaive(n int) *naiveHistory {
	return &naiveHistory{n: n, samples: make(map[ProcessID][]struct {
		T   Time
		Out ProcessSet
	})}
}

func (h *naiveHistory) record(p ProcessID, t Time, out ProcessSet) {
	h.samples[p] = append(h.samples[p], struct {
		T   Time
		Out ProcessSet
	}{t, out})
}

func (h *naiveHistory) last(p ProcessID, t Time) (ProcessSet, bool) {
	ss := h.samples[p]
	for i := len(ss) - 1; i >= 0; i-- {
		if ss[i].T <= t {
			return ss[i].Out, true
		}
	}
	return ProcessSet{}, false
}

func (h *naiveHistory) finalSuspicions(p ProcessID) (ProcessSet, bool) {
	ss := h.samples[p]
	if len(ss) == 0 {
		return ProcessSet{}, false
	}
	return ss[len(ss)-1].Out, true
}

func (h *naiveHistory) suspectedFrom(p, q ProcessID) (Time, bool) {
	ss := h.samples[p]
	if len(ss) == 0 || !ss[len(ss)-1].Out.Has(q) {
		return 0, false
	}
	i := len(ss) - 1
	for i > 0 && ss[i-1].Out.Has(q) {
		i--
	}
	return ss[i].T, true
}

func (h *naiveHistory) everSuspected(p, q ProcessID) (Time, bool) {
	for _, s := range h.samples[p] {
		if s.Out.Has(q) {
			return s.T, true
		}
	}
	return 0, false
}

func (h *naiveHistory) maxTime() Time {
	var max Time
	for p := ProcessID(1); int(p) <= h.n; p++ {
		if ss := h.samples[p]; len(ss) > 0 && ss[len(ss)-1].T > max {
			max = ss[len(ss)-1].T
		}
	}
	return max
}

// FuzzHistoryMatchesNaive drives the change-point History and the naive
// record-everything reference with the same fuzz-derived sample stream,
// then cross-checks every query. The input bytes are consumed three at
// a time as (process selector, time advance, output bits): small n and
// few distinct outputs maximize run-length merges, which is exactly the
// machinery under test.
func FuzzHistoryMatchesNaive(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3, 0, 0, 3, 2, 1, 0})
	f.Add([]byte{5, 1, 0, 5, 0, 0, 5, 3, 7, 1, 9, 7})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 6
		h := NewHistory(n)
		ref := newNaive(n)

		clock := make([]Time, n+1) // per-process last sample time
		for i := 0; i+2 < len(data); i += 3 {
			p := ProcessID(int(data[i])%n + 1)
			clock[p] += Time(data[i+1] % 8) // advance 0..7 ticks; 0 repeats the tick
			// Mask to n low bits so outputs repeat often across samples.
			out := ProcessSet{}
			for q := ProcessID(1); q <= n; q++ {
				if data[i+2]&(1<<(q-1)) != 0 {
					out = out.Add(q)
				}
			}
			h.Record(p, clock[p], out)
			ref.record(p, clock[p], out)
		}

		if got, want := h.MaxTime(), ref.maxTime(); got != want {
			t.Fatalf("MaxTime: rle=%d naive=%d", got, want)
		}
		maxT := ref.maxTime()
		for p := ProcessID(1); p <= n; p++ {
			if got, want := h.SampleCount(p), len(ref.samples[p]); got != want {
				t.Fatalf("SampleCount(%v): rle=%d naive=%d", p, got, want)
			}
			gotFin, gotOK := h.FinalSuspicions(p)
			wantFin, wantOK := ref.finalSuspicions(p)
			if gotOK != wantOK || gotFin != wantFin {
				t.Fatalf("FinalSuspicions(%v): rle=%v,%v naive=%v,%v", p, gotFin, gotOK, wantFin, wantOK)
			}
			for tt := Time(0); tt <= maxT+1; tt++ {
				gotL, gotOK := h.Last(p, tt)
				wantL, wantOK := ref.last(p, tt)
				if gotOK != wantOK || gotL != wantL {
					t.Fatalf("Last(%v, %d): rle=%v,%v naive=%v,%v", p, tt, gotL, gotOK, wantL, wantOK)
				}
			}
			for q := ProcessID(1); q <= n; q++ {
				gotT, gotOK := h.SuspectedFrom(p, q)
				wantT, wantOK := ref.suspectedFrom(p, q)
				if gotOK != wantOK || (gotOK && gotT != wantT) {
					t.Fatalf("SuspectedFrom(%v,%v): rle=%d,%v naive=%d,%v", p, q, gotT, gotOK, wantT, wantOK)
				}
				gotT, gotOK = h.EverSuspected(p, q)
				wantT, wantOK = ref.everSuspected(p, q)
				if gotOK != wantOK || (gotOK && gotT != wantT) {
					t.Fatalf("EverSuspected(%v,%v): rle=%d,%v naive=%d,%v", p, q, gotT, gotOK, wantT, wantOK)
				}
			}

			// Structural invariants of the encoding itself.
			spans := h.Spans(p)
			total := 0
			for i, s := range spans {
				if s.From > s.To || s.Count < 1 {
					t.Fatalf("Spans(%v)[%d] malformed: %+v", p, i, s)
				}
				if i > 0 {
					if spans[i-1].Out == s.Out {
						t.Fatalf("Spans(%v)[%d] not maximal: equal output to predecessor", p, i)
					}
					if spans[i-1].To > s.From {
						t.Fatalf("Spans(%v)[%d] overlaps predecessor", p, i)
					}
				}
				total += s.Count
			}
			if total != h.SampleCount(p) {
				t.Fatalf("Spans(%v) counts sum to %d, SampleCount says %d", p, total, h.SampleCount(p))
			}
		}
	})
}
