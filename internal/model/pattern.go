package model

import (
	"fmt"
	"sort"
	"strings"
)

// FailurePattern is the function F : Φ → 2^Ω of §2.1: F(t) is the set
// of processes that have crashed through time t. Failures are
// permanent (crash-stop, no recovery), so F is monotonically
// non-decreasing under ⊆.
//
// A FailurePattern is built incrementally: the adversarial scheduler of
// the Lemma 4.1 experiment extends a pattern online, which is sound
// because realistic detectors only ever consult the prefix F|≤now.
type FailurePattern struct {
	n     int
	crash [MaxProcesses + 1]Time // crash[p] = crash time, NoCrash if correct
	// onCrash, when non-nil, observes every successful Crash call. The
	// simulator registers a hook here so it can keep its cached alive
	// set current without rescanning the pattern every tick; the hook
	// is an observer only and must not mutate the pattern.
	onCrash func(p ProcessID, t Time)
}

// NewFailurePattern returns the failure-free pattern over n processes.
func NewFailurePattern(n int) (*FailurePattern, error) {
	if err := ValidateN(n); err != nil {
		return nil, err
	}
	f := &FailurePattern{n: n}
	for p := 1; p <= n; p++ {
		f.crash[p] = NoCrash
	}
	return f, nil
}

// MustPattern is NewFailurePattern for tests and examples with a known
// good n; it panics on error.
func MustPattern(n int) *FailurePattern {
	f, err := NewFailurePattern(n)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the system size |Ω|.
func (f *FailurePattern) N() int { return f.n }

// Crash records that p crashes at time t: p performs no action at any
// time ≥ t. Crashing an already-crashed process or an out-of-range ID
// is an error.
func (f *FailurePattern) Crash(p ProcessID, t Time) error {
	if p < 1 || int(p) > f.n {
		return fmt.Errorf("model: crash of %v: not in Ω (n = %d)", p, f.n)
	}
	if t < 0 || t >= NoCrash {
		return fmt.Errorf("model: crash of %v at invalid time %d", p, t)
	}
	if f.crash[p] != NoCrash {
		return fmt.Errorf("model: %v already crashed at %d (crash-stop: no recovery)", p, f.crash[p])
	}
	f.crash[p] = t
	if f.onCrash != nil {
		f.onCrash(p, t)
	}
	return nil
}

// SetCrashHook registers fn to be called after every successful Crash,
// replacing any previous hook; nil unregisters. At most one hook is
// held at a time — the intended owner is the engine of the run
// currently driving the pattern, which registers on start and
// unregisters when the run ends.
func (f *FailurePattern) SetCrashHook(fn func(p ProcessID, t Time)) {
	f.onCrash = fn
}

// MustCrash is Crash that panics on error, for tests and examples.
func (f *FailurePattern) MustCrash(p ProcessID, t Time) *FailurePattern {
	if err := f.Crash(p, t); err != nil {
		panic(err)
	}
	return f
}

// CrashTime returns p's crash time and true, or (NoCrash, false) if p
// is correct in F.
func (f *FailurePattern) CrashTime(p ProcessID) (Time, bool) {
	if p < 1 || int(p) > f.n {
		return NoCrash, false
	}
	if f.crash[p] == NoCrash {
		return NoCrash, false
	}
	return f.crash[p], true
}

// CrashedAt returns F(t), the set of processes crashed through time t.
func (f *FailurePattern) CrashedAt(t Time) ProcessSet {
	var s ProcessSet
	for p := 1; p <= f.n; p++ {
		if f.crash[p] <= t {
			s = s.Add(ProcessID(p))
		}
	}
	return s
}

// AliveAt returns Ω \ F(t), the processes that have not crashed
// through time t.
func (f *FailurePattern) AliveAt(t Time) ProcessSet {
	return AllProcesses(f.n).Diff(f.CrashedAt(t))
}

// Alive reports whether p ∉ F(t).
func (f *FailurePattern) Alive(p ProcessID, t Time) bool {
	if p < 1 || int(p) > f.n {
		return false
	}
	return f.crash[p] > t
}

// Correct returns correct(F), the set of processes that never crash.
func (f *FailurePattern) Correct() ProcessSet {
	var s ProcessSet
	for p := 1; p <= f.n; p++ {
		if f.crash[p] == NoCrash {
			s = s.Add(ProcessID(p))
		}
	}
	return s
}

// Faulty returns faulty(F) = Ω \ correct(F): the processes that crash
// at some time. This is the (future-reading) output of the Marabout
// detector of §3.2.2.
func (f *FailurePattern) Faulty() ProcessSet {
	return AllProcesses(f.n).Diff(f.Correct())
}

// Clone returns an independent copy of F. Crash hooks are not copied:
// they belong to the run driving the original pattern.
func (f *FailurePattern) Clone() *FailurePattern {
	cp := *f
	cp.onCrash = nil
	return &cp
}

// PrefixClone returns a copy of F truncated at time t: crashes at times
// ≤ t are kept, later crashes are erased. The result is the canonical
// representative of F's equivalence class "patterns agreeing with F
// through t" used by the realism predicate of §3.1.
func (f *FailurePattern) PrefixClone(t Time) *FailurePattern {
	cp := *f
	cp.onCrash = nil
	for p := 1; p <= f.n; p++ {
		if cp.crash[p] > t {
			cp.crash[p] = NoCrash
		}
	}
	return &cp
}

// SamePrefix reports whether F and F' agree through time t, i.e.
// ∀ t1 ≤ t : F(t1) = F'(t1). This is the antecedent of the realism
// predicate of §3.1.
func (f *FailurePattern) SamePrefix(g *FailurePattern, t Time) bool {
	if f.n != g.n {
		return false
	}
	for p := 1; p <= f.n; p++ {
		ft, gt := f.crash[p], g.crash[p]
		fIn, gIn := ft <= t, gt <= t
		if fIn != gIn {
			return false
		}
		if fIn && ft != gt {
			return false
		}
	}
	return true
}

// Equal reports whether F and F' are the same pattern.
func (f *FailurePattern) Equal(g *FailurePattern) bool {
	if f.n != g.n {
		return false
	}
	for p := 1; p <= f.n; p++ {
		if f.crash[p] != g.crash[p] {
			return false
		}
	}
	return true
}

// String lists the crashes in time order, e.g.
// "F{n=5; p2@10, p4@30}". The failure-free pattern prints "F{n=5; ∅}".
func (f *FailurePattern) String() string {
	type ev struct {
		p ProcessID
		t Time
	}
	var evs []ev
	for p := 1; p <= f.n; p++ {
		if f.crash[p] != NoCrash {
			evs = append(evs, ev{ProcessID(p), f.crash[p]})
		}
	}
	if len(evs) == 0 {
		return fmt.Sprintf("F{n=%d; ∅}", f.n)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].p < evs[j].p
	})
	parts := make([]string, len(evs))
	for i, e := range evs {
		parts[i] = fmt.Sprintf("%v@%d", e.p, e.t)
	}
	return fmt.Sprintf("F{n=%d; %s}", f.n, strings.Join(parts, ", "))
}
