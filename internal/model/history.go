package model

import (
	"fmt"
	"sort"
	"strings"
)

// Sample is one recorded failure-detector output: the value seen by a
// process when it queried its local module at a given time (§2.2).
type Sample struct {
	T   Time
	Out ProcessSet
}

// History is a recorded failure-detector history H : Ω × Φ → 2^Ω
// (§2.2), sampled at the times processes actually queried their
// modules. Class-membership checkers (package fd) evaluate
// completeness and accuracy properties over a History together with
// the failure pattern of the run.
//
// A History is not safe for concurrent use; the simulator is
// single-threaded and live collectors serialize externally.
type History struct {
	n       int
	samples map[ProcessID][]Sample
}

// NewHistory returns an empty history for a system of n processes.
func NewHistory(n int) *History {
	return &History{n: n, samples: make(map[ProcessID][]Sample, n)}
}

// N returns the system size.
func (h *History) N() int { return h.n }

// Reset clears the history in place for reuse with a system of n
// processes, retaining the per-process sample capacity. It exists for
// the simulator's reusable run contexts, which recycle one History
// across a whole streaming sweep.
func (h *History) Reset(n int) {
	h.n = n
	for p, ss := range h.samples {
		h.samples[p] = ss[:0]
	}
}

// Record appends the value out seen by p at time t. Times must be
// recorded in non-decreasing order per process.
func (h *History) Record(p ProcessID, t Time, out ProcessSet) {
	ss := h.samples[p]
	if len(ss) > 0 && ss[len(ss)-1].T > t {
		panic(fmt.Sprintf("model: history for %v not in time order: %d after %d", p, t, ss[len(ss)-1].T))
	}
	h.samples[p] = append(ss, Sample{T: t, Out: out})
}

// Samples returns the recorded samples of p in time order. The
// returned slice is owned by the history; callers must not mutate it.
func (h *History) Samples(p ProcessID) []Sample {
	return h.samples[p]
}

// Last returns the last value p saw at or before t, and whether any
// sample exists in that range.
func (h *History) Last(p ProcessID, t Time) (ProcessSet, bool) {
	ss := h.samples[p]
	i := sort.Search(len(ss), func(i int) bool { return ss[i].T > t }) - 1
	if i < 0 {
		return ProcessSet{}, false
	}
	return ss[i].Out, true
}

// FinalSuspicions returns the output of each process's last sample.
// For histories recorded to a horizon beyond stabilization this is the
// "eventual, permanent" suspicion set used by completeness checks.
func (h *History) FinalSuspicions(p ProcessID) (ProcessSet, bool) {
	ss := h.samples[p]
	if len(ss) == 0 {
		return ProcessSet{}, false
	}
	return ss[len(ss)-1].Out, true
}

// SuspectedFrom returns the earliest time from which p suspects q in
// every later sample (the start of permanent suspicion), or false if p
// does not permanently suspect q by the end of the history.
func (h *History) SuspectedFrom(p, q ProcessID) (Time, bool) {
	ss := h.samples[p]
	if len(ss) == 0 {
		return 0, false
	}
	// Walk backwards over the suffix in which q is continuously suspected.
	i := len(ss) - 1
	if !ss[i].Out.Has(q) {
		return 0, false
	}
	for i > 0 && ss[i-1].Out.Has(q) {
		i--
	}
	return ss[i].T, true
}

// EverSuspected reports whether p suspected q in any sample, and the
// first time it did.
func (h *History) EverSuspected(p, q ProcessID) (Time, bool) {
	for _, s := range h.samples[p] {
		if s.Out.Has(q) {
			return s.T, true
		}
	}
	return 0, false
}

// MaxTime returns the largest recorded sample time across all
// processes (the effective horizon of the history).
func (h *History) MaxTime() Time {
	var max Time
	for _, ss := range h.samples {
		if len(ss) > 0 && ss[len(ss)-1].T > max {
			max = ss[len(ss)-1].T
		}
	}
	return max
}

// String summarizes the history: per process, the number of samples
// and the final suspicion set.
func (h *History) String() string {
	var b strings.Builder
	b.WriteString("H{")
	first := true
	for p := ProcessID(1); int(p) <= h.n; p++ {
		ss := h.samples[p]
		if len(ss) == 0 {
			continue
		}
		if !first {
			b.WriteString("; ")
		}
		first = false
		fmt.Fprintf(&b, "%v:%d samples, final %v", p, len(ss), ss[len(ss)-1].Out)
	}
	b.WriteString("}")
	return b.String()
}
