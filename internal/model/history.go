package model

import (
	"fmt"
	"sort"
	"strings"
)

// Span is a maximal run of consecutive samples in which a process saw
// the same failure-detector output: the value Out at every sample from
// time From through time To, Count samples in all. An oracle's output
// is piecewise-constant in practice — it changes only at crashes,
// stabilization, or scripted transitions — so a history of S samples
// collapses into far fewer spans, and every query becomes
// O(transitions) instead of O(steps).
type Span struct {
	From  Time
	To    Time
	Count int
	Out   ProcessSet
}

// procHistory is one process's recorded output stream, run-length
// encoded: a new Span starts only when the output differs from the
// previous sample's.
type procHistory struct {
	spans []Span
	count int // total samples, = sum of span counts
}

// History is a recorded failure-detector history H : Ω × Φ → 2^Ω
// (§2.2), sampled at the times processes actually queried their
// modules. Class-membership checkers (package fd) evaluate
// completeness and accuracy properties over a History together with
// the failure pattern of the run.
//
// Samples are stored as change-points (run-length encoded spans) in
// dense per-process slices — n ≤ MaxProcesses, so process IDs index
// directly, no map. Recording a sample whose output equals the
// previous one only bumps the current span's To/Count; memory is
// O(transitions), not O(steps).
//
// A History is not safe for concurrent use; the simulator is
// single-threaded and live collectors serialize externally.
type History struct {
	n     int
	procs []procHistory // indexed by ProcessID; slot 0 unused
}

// NewHistory returns an empty history for a system of n processes.
func NewHistory(n int) *History {
	return &History{n: n, procs: make([]procHistory, n+1)}
}

// N returns the system size.
func (h *History) N() int { return h.n }

// Reset clears the history in place for reuse with a system of n
// processes, retaining the per-process span capacity. It exists for
// the simulator's reusable run contexts, which recycle one History
// across a whole streaming sweep. Every retained slot is truncated —
// including slots beyond the new n — so a context reused across
// shrinking system sizes can never resurface an old process's samples.
func (h *History) Reset(n int) {
	full := h.procs[:cap(h.procs)]
	for p := range full {
		full[p].spans = full[p].spans[:0]
		full[p].count = 0
	}
	if cap(h.procs) < n+1 {
		procs := make([]procHistory, n+1)
		copy(procs, full) // keep the truncated span capacity
		h.procs = procs
	} else {
		h.procs = full[:n+1]
	}
	h.n = n
}

// Record appends the value out seen by p at time t. Times must be
// recorded in non-decreasing order per process.
func (h *History) Record(p ProcessID, t Time, out ProcessSet) {
	ph := &h.procs[p]
	if n := len(ph.spans); n > 0 {
		last := &ph.spans[n-1]
		if last.To > t {
			panic(fmt.Sprintf("model: history for %v not in time order: %d after %d", p, t, last.To))
		}
		if last.Out == out {
			last.To = t
			last.Count++
			ph.count++
			return
		}
	}
	ph.spans = append(ph.spans, Span{From: t, To: t, Count: 1, Out: out})
	ph.count++
}

// Spans returns the change-point encoding of p's samples in time
// order: one Span per maximal run of equal outputs. The returned slice
// is owned by the history; callers must not mutate it.
func (h *History) Spans(p ProcessID) []Span {
	if int(p) >= len(h.procs) {
		return nil
	}
	return h.procs[p].spans
}

// SampleCount returns the number of samples recorded for p.
func (h *History) SampleCount(p ProcessID) int {
	if int(p) >= len(h.procs) {
		return 0
	}
	return h.procs[p].count
}

// Last returns the last value p saw at or before t, and whether any
// sample exists in that range.
func (h *History) Last(p ProcessID, t Time) (ProcessSet, bool) {
	ss := h.Spans(p)
	i := sort.Search(len(ss), func(i int) bool { return ss[i].From > t }) - 1
	if i < 0 {
		return ProcessSet{}, false
	}
	return ss[i].Out, true
}

// FinalSuspicions returns the output of each process's last sample.
// For histories recorded to a horizon beyond stabilization this is the
// "eventual, permanent" suspicion set used by completeness checks.
func (h *History) FinalSuspicions(p ProcessID) (ProcessSet, bool) {
	ss := h.Spans(p)
	if len(ss) == 0 {
		return ProcessSet{}, false
	}
	return ss[len(ss)-1].Out, true
}

// SuspectedFrom returns the earliest time from which p suspects q in
// every later sample (the start of permanent suspicion), or false if p
// does not permanently suspect q by the end of the history.
func (h *History) SuspectedFrom(p, q ProcessID) (Time, bool) {
	ss := h.Spans(p)
	if len(ss) == 0 {
		return 0, false
	}
	// Walk backwards over the span suffix in which q is continuously
	// suspected — O(transitions), not O(steps).
	i := len(ss) - 1
	if !ss[i].Out.Has(q) {
		return 0, false
	}
	for i > 0 && ss[i-1].Out.Has(q) {
		i--
	}
	return ss[i].From, true
}

// EverSuspected reports whether p suspected q in any sample, and the
// first time it did.
func (h *History) EverSuspected(p, q ProcessID) (Time, bool) {
	for _, s := range h.Spans(p) {
		if s.Out.Has(q) {
			return s.From, true
		}
	}
	return 0, false
}

// MaxTime returns the largest recorded sample time across all
// processes (the effective horizon of the history).
func (h *History) MaxTime() Time {
	var max Time
	for p := 1; p <= h.n; p++ {
		if ss := h.procs[p].spans; len(ss) > 0 && ss[len(ss)-1].To > max {
			max = ss[len(ss)-1].To
		}
	}
	return max
}

// String summarizes the history: per process, the number of samples
// and the final suspicion set.
func (h *History) String() string {
	var b strings.Builder
	b.WriteString("H{")
	first := true
	for p := ProcessID(1); int(p) <= h.n; p++ {
		ph := &h.procs[p]
		if ph.count == 0 {
			continue
		}
		if !first {
			b.WriteString("; ")
		}
		first = false
		fmt.Fprintf(&b, "%v:%d samples, final %v", p, ph.count, ph.spans[len(ph.spans)-1].Out)
	}
	b.WriteString("}")
	return b.String()
}
