package model

import "testing"

func BenchmarkProcessSetOps(b *testing.B) {
	b.ReportAllocs()
	a := NewProcessSet(1, 3, 5, 7, 9)
	c := NewProcessSet(2, 3, 6, 7)
	var sink ProcessSet
	for i := 0; i < b.N; i++ {
		sink = a.Union(c).Intersect(a).Diff(c).Add(11)
	}
	_ = sink
}

func BenchmarkProcessSetSlice(b *testing.B) {
	b.ReportAllocs()
	s := AllProcesses(16)
	for i := 0; i < b.N; i++ {
		_ = s.Slice()
	}
}

func BenchmarkPatternCrashedAt(b *testing.B) {
	b.ReportAllocs()
	f := MustPattern(16)
	for p := 1; p <= 8; p++ {
		f.MustCrash(ProcessID(p), Time(p*10))
	}
	for i := 0; i < b.N; i++ {
		_ = f.CrashedAt(Time(i % 200))
	}
}

func BenchmarkSamePrefix(b *testing.B) {
	b.ReportAllocs()
	f := MustPattern(16).MustCrash(2, 50).MustCrash(9, 120)
	g := f.PrefixClone(100)
	for i := 0; i < b.N; i++ {
		_ = f.SamePrefix(g, Time(i%150))
	}
}

func BenchmarkHistoryRecordAndQuery(b *testing.B) {
	b.ReportAllocs()
	h := NewHistory(8)
	for i := 0; i < b.N; i++ {
		t := Time(i)
		h.Record(1, t, NewProcessSet(2))
		if i%64 == 0 {
			_, _ = h.SuspectedFrom(1, 2)
		}
	}
}
