package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestProcessSetBasics(t *testing.T) {
	t.Parallel()
	s := NewProcessSet(1, 3, 5)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for _, p := range []ProcessID{1, 3, 5} {
		if !s.Has(p) {
			t.Errorf("Has(%v) = false, want true", p)
		}
	}
	for _, p := range []ProcessID{2, 4, 6} {
		if s.Has(p) {
			t.Errorf("Has(%v) = true, want false", p)
		}
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v, want p1/p5", s.Min(), s.Max())
	}
}

func TestProcessSetAddRemove(t *testing.T) {
	t.Parallel()
	s := EmptySet()
	s2 := s.Add(7)
	if s.Has(7) {
		t.Error("Add mutated the receiver; ProcessSet must be a value type")
	}
	if !s2.Has(7) {
		t.Error("Add(7) did not contain 7")
	}
	s3 := s2.Remove(7)
	if s3.Has(7) || !s3.IsEmpty() {
		t.Error("Remove(7) did not yield the empty set")
	}
	// Removing an absent element is a no-op.
	if !s3.Remove(9).IsEmpty() {
		t.Error("Remove of absent element changed the set")
	}
}

func TestProcessSetAlgebra(t *testing.T) {
	t.Parallel()
	a := NewProcessSet(1, 2, 3)
	b := NewProcessSet(3, 4)
	cases := []struct {
		name string
		got  ProcessSet
		want ProcessSet
	}{
		{"union", a.Union(b), NewProcessSet(1, 2, 3, 4)},
		{"intersect", a.Intersect(b), NewProcessSet(3)},
		{"diff", a.Diff(b), NewProcessSet(1, 2)},
		{"diff-rev", b.Diff(a), NewProcessSet(4)},
	}
	for _, tc := range cases {
		if !tc.got.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	if !NewProcessSet(1, 2).SubsetOf(a) {
		t.Error("SubsetOf: {p1,p2} ⊆ {p1,p2,p3} should hold")
	}
	if a.SubsetOf(b) {
		t.Error("SubsetOf: {p1,p2,p3} ⊆ {p3,p4} should not hold")
	}
}

func TestProcessSetSliceOrder(t *testing.T) {
	t.Parallel()
	s := NewProcessSet(9, 1, 4)
	want := []ProcessID{1, 4, 9}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice = %v, want %v", got, want)
	}
}

func TestProcessSetForEachEarlyStop(t *testing.T) {
	t.Parallel()
	s := NewProcessSet(1, 2, 3, 4)
	var seen []ProcessID
	s.ForEach(func(p ProcessID) bool {
		seen = append(seen, p)
		return p < 2
	})
	if !reflect.DeepEqual(seen, []ProcessID{1, 2}) {
		t.Errorf("ForEach early stop visited %v, want [p1 p2]", seen)
	}
}

func TestProcessSetString(t *testing.T) {
	t.Parallel()
	cases := []struct {
		s    ProcessSet
		want string
	}{
		{EmptySet(), "{}"},
		{NewProcessSet(2), "{p2}"},
		{NewProcessSet(3, 1), "{p1,p3}"},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestAllProcesses(t *testing.T) {
	t.Parallel()
	s := AllProcesses(5)
	if s.Len() != 5 || !s.Has(1) || !s.Has(5) || s.Has(6) {
		t.Errorf("AllProcesses(5) = %v", s)
	}
	if AllProcesses(MaxProcesses).Len() != MaxProcesses {
		t.Errorf("AllProcesses(64) should have 64 members")
	}
	if !AllProcesses(0).IsEmpty() {
		t.Errorf("AllProcesses(0) should be empty")
	}
}

func TestProcessSetOutOfRangePanics(t *testing.T) {
	t.Parallel()
	for _, p := range []ProcessID{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", p)
				}
			}()
			EmptySet().Add(p)
		}()
	}
}

// randomSet draws a set over processes 1..16 for property tests.
func randomSet(r *rand.Rand) ProcessSet {
	var s ProcessSet
	for p := ProcessID(1); p <= 16; p++ {
		if r.Intn(2) == 1 {
			s = s.Add(p)
		}
	}
	return s
}

// Generate lets testing/quick draw random ProcessSets.
func (ProcessSet) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomSet(r))
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	t.Parallel()
	cfg := &quick.Config{MaxCount: 500}

	// De Morgan over a fixed universe: U \ (a ∪ b) = (U \ a) ∩ (U \ b).
	u := AllProcesses(16)
	deMorgan := func(a, b ProcessSet) bool {
		left := u.Diff(a.Union(b))
		right := u.Diff(a).Intersect(u.Diff(b))
		return left.Equal(right)
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Errorf("De Morgan law failed: %v", err)
	}

	// Union is commutative, associative, idempotent.
	unionLaws := func(a, b, c ProcessSet) bool {
		return a.Union(b).Equal(b.Union(a)) &&
			a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) &&
			a.Union(a).Equal(a)
	}
	if err := quick.Check(unionLaws, cfg); err != nil {
		t.Errorf("union laws failed: %v", err)
	}

	// |a| + |b| = |a ∪ b| + |a ∩ b|.
	inclusionExclusion := func(a, b ProcessSet) bool {
		return a.Len()+b.Len() == a.Union(b).Len()+a.Intersect(b).Len()
	}
	if err := quick.Check(inclusionExclusion, cfg); err != nil {
		t.Errorf("inclusion-exclusion failed: %v", err)
	}

	// Diff then union restores a superset relationship.
	diffLaw := func(a, b ProcessSet) bool {
		return a.Diff(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(diffLaw, cfg); err != nil {
		t.Errorf("diff partition law failed: %v", err)
	}

	// Slice round-trips through NewProcessSet.
	roundTrip := func(a ProcessSet) bool {
		return NewProcessSet(a.Slice()...).Equal(a)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("slice round-trip failed: %v", err)
	}
}
