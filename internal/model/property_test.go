package model

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// idList is a testing/quick generator for slices of valid process IDs
// over a system of up to MaxProcesses processes. ProcessSet's backing
// word is unexported, so properties generate ID lists and build sets
// through the public constructor — exactly the operations the
// invariants quantify over.
type idList []ProcessID

// Generate implements quick.Generator.
func (idList) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size%MaxProcesses + 1)
	ids := make(idList, n)
	for i := range ids {
		ids[i] = ProcessID(1 + r.Intn(MaxProcesses))
	}
	return reflect.ValueOf(ids)
}

func (ids idList) set() ProcessSet { return NewProcessSet(ids...) }

func quickCheck(t *testing.T, name string, f any) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// TestProcessSetAlgebraProperties checks the boolean-algebra laws the
// rest of the repository silently relies on: 2^Ω under ∪, ∩, \ with
// the subset order.
func TestProcessSetAlgebraProperties(t *testing.T) {
	t.Parallel()
	quickCheck(t, "add-then-has", func(ids idList, p0 uint8) bool {
		p := ProcessID(1 + int(p0)%MaxProcesses)
		return ids.set().Add(p).Has(p)
	})
	quickCheck(t, "remove-then-not-has", func(ids idList, p0 uint8) bool {
		p := ProcessID(1 + int(p0)%MaxProcesses)
		return !ids.set().Remove(p).Has(p)
	})
	quickCheck(t, "add-remove-roundtrip", func(ids idList, p0 uint8) bool {
		p := ProcessID(1 + int(p0)%MaxProcesses)
		s := ids.set().Remove(p)
		return s.Add(p).Remove(p).Equal(s)
	})
	quickCheck(t, "union-commutes", func(a, b idList) bool {
		return a.set().Union(b.set()).Equal(b.set().Union(a.set()))
	})
	quickCheck(t, "intersect-commutes", func(a, b idList) bool {
		return a.set().Intersect(b.set()).Equal(b.set().Intersect(a.set()))
	})
	quickCheck(t, "union-absorbs-both", func(a, b idList) bool {
		u := a.set().Union(b.set())
		return a.set().SubsetOf(u) && b.set().SubsetOf(u)
	})
	quickCheck(t, "intersect-within-both", func(a, b idList) bool {
		i := a.set().Intersect(b.set())
		return i.SubsetOf(a.set()) && i.SubsetOf(b.set())
	})
	quickCheck(t, "diff-disjoint-from-subtrahend", func(a, b idList) bool {
		return a.set().Diff(b.set()).Intersect(b.set()).IsEmpty()
	})
	quickCheck(t, "diff-plus-intersect-restores", func(a, b idList) bool {
		s, u := a.set(), b.set()
		return s.Diff(u).Union(s.Intersect(u)).Equal(s)
	})
	quickCheck(t, "inclusion-exclusion", func(a, b idList) bool {
		s, u := a.set(), b.set()
		return s.Union(u).Len()+s.Intersect(u).Len() == s.Len()+u.Len()
	})
	quickCheck(t, "subset-antisymmetric", func(a, b idList) bool {
		s, u := a.set(), b.set()
		if s.SubsetOf(u) && u.SubsetOf(s) {
			return s.Equal(u)
		}
		return true
	})
	quickCheck(t, "slice-sorted-distinct-roundtrip", func(a idList) bool {
		s := a.set()
		sl := s.Slice()
		if len(sl) != s.Len() {
			return false
		}
		for i, p := range sl {
			if i > 0 && sl[i-1] >= p {
				return false
			}
			if !s.Has(p) {
				return false
			}
		}
		return NewProcessSet(sl...).Equal(s)
	})
	quickCheck(t, "min-max-members", func(a idList) bool {
		s := a.set()
		if s.IsEmpty() {
			return s.Min() == 0 && s.Max() == 0
		}
		return s.Has(s.Min()) && s.Has(s.Max()) && s.Min() <= s.Max()
	})
}

// crashScript is a testing/quick generator for a random, valid crash
// schedule over a random system size.
type crashScript struct {
	n       int
	crashes map[ProcessID]Time
}

// Generate implements quick.Generator.
func (crashScript) Generate(r *rand.Rand, _ int) reflect.Value {
	n := MinProcesses + r.Intn(MaxProcesses-MinProcesses+1)
	cs := crashScript{n: n, crashes: map[ProcessID]Time{}}
	for p := 1; p <= n; p++ {
		if r.Intn(3) == 0 {
			cs.crashes[ProcessID(p)] = Time(r.Intn(1000))
		}
	}
	return reflect.ValueOf(cs)
}

func (cs crashScript) pattern() *FailurePattern {
	pat := MustPattern(cs.n)
	for p, t := range cs.crashes {
		pat.MustCrash(p, t)
	}
	return pat
}

// TestFailurePatternProperties checks the §2.1 axioms over random
// crash schedules: F is monotone (Alive never flips back after a
// crash), correct/faulty partition Ω, and prefix operations agree with
// the original pattern on their prefix.
func TestFailurePatternProperties(t *testing.T) {
	t.Parallel()
	quickCheck(t, "alive-monotone-after-crash", func(cs crashScript, t0 uint16) bool {
		pat := cs.pattern()
		probe := Time(t0)
		for p := 1; p <= cs.n; p++ {
			id := ProcessID(p)
			if !pat.Alive(id, probe) {
				// Once dead, dead at every later sampled time.
				for _, dt := range []Time{1, 7, 100, 100000} {
					if pat.Alive(id, probe+dt) {
						return false
					}
				}
			}
		}
		return true
	})
	quickCheck(t, "crashed-sets-nested", func(cs crashScript, a0, b0 uint16) bool {
		pat := cs.pattern()
		t1, t2 := Time(a0), Time(b0)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return pat.CrashedAt(t1).SubsetOf(pat.CrashedAt(t2))
	})
	quickCheck(t, "alive-complements-crashed", func(cs crashScript, t0 uint16) bool {
		pat := cs.pattern()
		probe := Time(t0)
		alive, crashed := pat.AliveAt(probe), pat.CrashedAt(probe)
		return alive.Intersect(crashed).IsEmpty() &&
			alive.Union(crashed).Equal(AllProcesses(cs.n))
	})
	quickCheck(t, "correct-faulty-partition", func(cs crashScript) bool {
		pat := cs.pattern()
		return pat.Correct().Intersect(pat.Faulty()).IsEmpty() &&
			pat.Correct().Union(pat.Faulty()).Equal(AllProcesses(cs.n)) &&
			pat.Faulty().Len() == len(cs.crashes)
	})
	quickCheck(t, "no-double-crash", func(cs crashScript) bool {
		pat := cs.pattern()
		for p := range cs.crashes {
			if pat.Crash(p, 5) == nil {
				return false // crash-stop: re-crash must be rejected
			}
		}
		return true
	})
	quickCheck(t, "prefix-clone-agrees-on-prefix", func(cs crashScript, t0 uint16) bool {
		pat := cs.pattern()
		cut := Time(t0)
		pre := pat.PrefixClone(cut)
		if !pre.SamePrefix(pat, cut) || !pat.SamePrefix(pre, cut) {
			return false
		}
		// Beyond the cut the clone is failure-free.
		return pre.CrashedAt(NoCrash - 1).Equal(pre.CrashedAt(cut))
	})
	quickCheck(t, "clone-independent", func(cs crashScript) bool {
		pat := cs.pattern()
		cp := pat.Clone()
		if !cp.Equal(pat) {
			return false
		}
		if free := AllProcesses(cs.n).Diff(pat.Faulty()); !free.IsEmpty() {
			cp.MustCrash(free.Min(), 1)
			return !cp.Equal(pat) && pat.Correct().Has(free.Min())
		}
		return true
	})
}
