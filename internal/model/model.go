// Package model implements the formal system model of Delporte-Gallet,
// Fauconnier and Guerraoui, "A Realistic Look At Failure Detectors"
// (DSN 2002), Section 2: processes, the discrete global clock, failure
// patterns, failure-detector histories, and the realism predicate of
// Section 3.1.
//
// The model is the FLP model of asynchronous computation augmented with
// the failure-detector abstraction of Chandra and Toueg. A discrete
// global clock with range Φ = {0, 1, 2, ...} is assumed; the clock is a
// modelling device and is never accessible to protocol code.
package model

import (
	"fmt"
	"strconv"
)

// ProcessID identifies a process p_i in the system Ω = {p_1, ..., p_n}.
// Process IDs are 1-based, matching the paper's indexing: the paper's
// Partially Perfect class P< and the correct-restricted consensus
// algorithm of §6.2 depend on this total order.
type ProcessID int

// String returns the paper's notation for the process, e.g. "p3".
func (p ProcessID) String() string { return "p" + strconv.Itoa(int(p)) }

// Time is a tick of the discrete global clock Φ. Time zero is the
// initial instant; protocol steps happen at strictly increasing times.
type Time int64

// NoCrash is the crash time of a correct process: it is larger than any
// time a run can reach.
const NoCrash Time = 1<<62 - 1

// MaxProcesses bounds the system size n. ProcessSet is backed by a
// single 64-bit word; the paper's experiments use n ≤ 16, so 64 leaves
// ample headroom while keeping set operations O(1).
const MaxProcesses = 64

// MinProcesses is the smallest system the paper's model admits (§2.1
// requires |Ω| = n > 3).
const MinProcesses = 4

// ValidateN reports whether n is an admissible system size per §2.1.
func ValidateN(n int) error {
	if n < MinProcesses {
		return fmt.Errorf("model: n = %d, but the paper's model requires n > 3", n)
	}
	if n > MaxProcesses {
		return fmt.Errorf("model: n = %d exceeds the supported maximum %d", n, MaxProcesses)
	}
	return nil
}

// AllProcesses returns the set Ω for a system of n processes.
func AllProcesses(n int) ProcessSet {
	if n < 0 || n > MaxProcesses {
		panic("model: AllProcesses: n out of range")
	}
	if n == MaxProcesses {
		return ProcessSet{bits: ^uint64(0)}
	}
	return ProcessSet{bits: (uint64(1) << uint(n)) - 1}
}
