package model

import (
	"strings"
	"testing"
)

func TestHistoryRecordAndQuery(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(1, 5, NewProcessSet(2))
	h.Record(1, 10, NewProcessSet(2, 3))
	h.Record(2, 7, EmptySet())

	if got := len(h.Samples(1)); got != 2 {
		t.Fatalf("Samples(p1) = %d entries, want 2", got)
	}
	if out, ok := h.Last(1, 9); !ok || !out.Equal(NewProcessSet(2)) {
		t.Errorf("Last(p1, 9) = %v,%v; want {p2},true", out, ok)
	}
	if out, ok := h.Last(1, 10); !ok || !out.Equal(NewProcessSet(2, 3)) {
		t.Errorf("Last(p1, 10) = %v,%v", out, ok)
	}
	if _, ok := h.Last(1, 4); ok {
		t.Error("Last(p1, 4) found a sample before any were recorded")
	}
	if _, ok := h.Last(3, 100); ok {
		t.Error("Last(p3) found samples for a process that never queried")
	}
}

func TestHistoryOrderEnforced(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(1, 10, EmptySet())
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Record did not panic")
		}
	}()
	h.Record(1, 9, EmptySet())
}

func TestSuspectedFrom(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	// p1's view of p2: suspected at t=3, cleared at t=5 (a mistake),
	// suspected again from t=8 onward.
	h.Record(1, 3, NewProcessSet(2))
	h.Record(1, 5, EmptySet())
	h.Record(1, 8, NewProcessSet(2))
	h.Record(1, 9, NewProcessSet(2))
	h.Record(1, 12, NewProcessSet(2, 4))

	from, ok := h.SuspectedFrom(1, 2)
	if !ok || from != 8 {
		t.Errorf("SuspectedFrom(p1,p2) = %d,%v; want 8,true (mistake at t=5 resets)", from, ok)
	}
	if _, ok := h.SuspectedFrom(1, 3); ok {
		t.Error("SuspectedFrom(p1,p3): p3 never suspected")
	}
	if from, ok := h.SuspectedFrom(1, 4); !ok || from != 12 {
		t.Errorf("SuspectedFrom(p1,p4) = %d,%v; want 12,true", from, ok)
	}
	if first, ok := h.EverSuspected(1, 2); !ok || first != 3 {
		t.Errorf("EverSuspected(p1,p2) = %d,%v; want 3,true", first, ok)
	}
}

func TestFinalSuspicionsAndMaxTime(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	if _, ok := h.FinalSuspicions(1); ok {
		t.Error("FinalSuspicions on empty history should report none")
	}
	h.Record(1, 4, NewProcessSet(3))
	h.Record(2, 11, NewProcessSet(1))
	if out, ok := h.FinalSuspicions(1); !ok || !out.Equal(NewProcessSet(3)) {
		t.Errorf("FinalSuspicions(p1) = %v,%v", out, ok)
	}
	if got := h.MaxTime(); got != 11 {
		t.Errorf("MaxTime = %d, want 11", got)
	}
}

func TestHistoryString(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(2, 1, NewProcessSet(4))
	if got := h.String(); !strings.Contains(got, "p2") || !strings.Contains(got, "{p4}") {
		t.Errorf("String = %q", got)
	}
}
