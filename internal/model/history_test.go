package model

import (
	"strings"
	"testing"
)

func TestHistoryRecordAndQuery(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(1, 5, NewProcessSet(2))
	h.Record(1, 10, NewProcessSet(2, 3))
	h.Record(2, 7, EmptySet())

	if got := h.SampleCount(1); got != 2 {
		t.Fatalf("SampleCount(p1) = %d, want 2", got)
	}
	if got := len(h.Spans(1)); got != 2 {
		t.Fatalf("Spans(p1) = %d entries, want 2 (outputs differ)", got)
	}
	if out, ok := h.Last(1, 9); !ok || !out.Equal(NewProcessSet(2)) {
		t.Errorf("Last(p1, 9) = %v,%v; want {p2},true", out, ok)
	}
	if out, ok := h.Last(1, 10); !ok || !out.Equal(NewProcessSet(2, 3)) {
		t.Errorf("Last(p1, 10) = %v,%v", out, ok)
	}
	if _, ok := h.Last(1, 4); ok {
		t.Error("Last(p1, 4) found a sample before any were recorded")
	}
	if _, ok := h.Last(3, 100); ok {
		t.Error("Last(p3) found samples for a process that never queried")
	}
}

func TestHistoryRunLengthEncodes(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	for tt := Time(0); tt < 100; tt++ {
		h.Record(1, tt, EmptySet())
	}
	for tt := Time(100); tt < 200; tt++ {
		h.Record(1, tt, NewProcessSet(3))
	}
	if got := len(h.Spans(1)); got != 2 {
		t.Fatalf("200 samples with one transition encoded as %d spans, want 2", got)
	}
	if got := h.SampleCount(1); got != 200 {
		t.Fatalf("SampleCount = %d, want 200", got)
	}
	sp := h.Spans(1)
	if sp[0].From != 0 || sp[0].To != 99 || sp[0].Count != 100 {
		t.Fatalf("span[0] = %+v, want [0,99]x100", sp[0])
	}
	if sp[1].From != 100 || sp[1].To != 199 || sp[1].Count != 100 {
		t.Fatalf("span[1] = %+v, want [100,199]x100", sp[1])
	}
	if out, ok := h.Last(1, 150); !ok || !out.Equal(NewProcessSet(3)) {
		t.Fatalf("Last(p1, 150) = %v,%v", out, ok)
	}
	if got := h.MaxTime(); got != 199 {
		t.Fatalf("MaxTime = %d, want 199", got)
	}
}

func TestHistoryOrderEnforced(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(1, 10, EmptySet())
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Record did not panic")
		}
	}()
	h.Record(1, 9, EmptySet())
}

func TestSuspectedFrom(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	// p1's view of p2: suspected at t=3, cleared at t=5 (a mistake),
	// suspected again from t=8 onward.
	h.Record(1, 3, NewProcessSet(2))
	h.Record(1, 5, EmptySet())
	h.Record(1, 8, NewProcessSet(2))
	h.Record(1, 9, NewProcessSet(2))
	h.Record(1, 12, NewProcessSet(2, 4))

	from, ok := h.SuspectedFrom(1, 2)
	if !ok || from != 8 {
		t.Errorf("SuspectedFrom(p1,p2) = %d,%v; want 8,true (mistake at t=5 resets)", from, ok)
	}
	if _, ok := h.SuspectedFrom(1, 3); ok {
		t.Error("SuspectedFrom(p1,p3): p3 never suspected")
	}
	if from, ok := h.SuspectedFrom(1, 4); !ok || from != 12 {
		t.Errorf("SuspectedFrom(p1,p4) = %d,%v; want 12,true", from, ok)
	}
	if first, ok := h.EverSuspected(1, 2); !ok || first != 3 {
		t.Errorf("EverSuspected(p1,p2) = %d,%v; want 3,true", first, ok)
	}
}

// TestHistoryChangePointEdges pins the change-point encoding at its
// boundaries: Last exactly at a transition tick, permanent suspicion
// starting at the very first sample, a target appearing only in the
// final sample, and queries against an empty history.
func TestHistoryChangePointEdges(t *testing.T) {
	t.Parallel()

	t.Run("last-at-transition-tick", func(t *testing.T) {
		h := NewHistory(4)
		h.Record(1, 5, EmptySet())
		h.Record(1, 6, EmptySet())
		h.Record(1, 7, NewProcessSet(2)) // transition at t=7
		if out, ok := h.Last(1, 7); !ok || !out.Equal(NewProcessSet(2)) {
			t.Errorf("Last at the transition tick = %v,%v; want {p2},true", out, ok)
		}
		if out, ok := h.Last(1, 6); !ok || !out.IsEmpty() {
			t.Errorf("Last just before the transition = %v,%v; want {},true", out, ok)
		}
	})

	t.Run("suspicion-from-first-sample", func(t *testing.T) {
		h := NewHistory(4)
		h.Record(1, 3, NewProcessSet(2))
		h.Record(1, 4, NewProcessSet(2, 3))
		h.Record(1, 9, NewProcessSet(2))
		if from, ok := h.SuspectedFrom(1, 2); !ok || from != 3 {
			t.Errorf("SuspectedFrom = %d,%v; want 3,true (suspicion starts at the first sample)", from, ok)
		}
	})

	t.Run("suspected-only-in-final-sample", func(t *testing.T) {
		h := NewHistory(4)
		h.Record(1, 1, EmptySet())
		h.Record(1, 2, EmptySet())
		h.Record(1, 8, NewProcessSet(4))
		if first, ok := h.EverSuspected(1, 4); !ok || first != 8 {
			t.Errorf("EverSuspected = %d,%v; want 8,true (q appears only in the final sample)", first, ok)
		}
		if from, ok := h.SuspectedFrom(1, 4); !ok || from != 8 {
			t.Errorf("SuspectedFrom = %d,%v; want 8,true", from, ok)
		}
	})

	t.Run("empty-history-queries", func(t *testing.T) {
		h := NewHistory(4)
		if _, ok := h.Last(1, 100); ok {
			t.Error("Last on empty history reported a sample")
		}
		if _, ok := h.FinalSuspicions(2); ok {
			t.Error("FinalSuspicions on empty history reported a sample")
		}
		if _, ok := h.SuspectedFrom(1, 2); ok {
			t.Error("SuspectedFrom on empty history reported suspicion")
		}
		if _, ok := h.EverSuspected(1, 2); ok {
			t.Error("EverSuspected on empty history reported suspicion")
		}
		if got := h.MaxTime(); got != 0 {
			t.Errorf("MaxTime on empty history = %d, want 0", got)
		}
		if got := h.String(); got != "H{}" {
			t.Errorf("String on empty history = %q, want H{}", got)
		}
	})
}

// TestHistoryResetShrinkNoResidue is the regression test for the map
// residue bug: with the old map-backed history, a Reset to a smaller n
// left stale per-process entries behind, and MaxTime/String iterated
// them in nondeterministic order. A context reused across shrinking
// (then re-growing) n must never resurface old processes' samples.
func TestHistoryResetShrinkNoResidue(t *testing.T) {
	t.Parallel()
	h := NewHistory(8)
	for p := ProcessID(1); p <= 8; p++ {
		h.Record(p, 500, NewProcessSet(1))
	}

	h.Reset(4)
	if h.N() != 4 {
		t.Fatalf("N after Reset(4) = %d", h.N())
	}
	if got := h.MaxTime(); got != 0 {
		t.Fatalf("MaxTime after shrink = %d: stale samples of p5..p8 survived", got)
	}
	if got := h.String(); got != "H{}" {
		t.Fatalf("String after shrink = %q: stale residue", got)
	}
	h.Record(2, 7, NewProcessSet(1))
	if got := h.MaxTime(); got != 7 {
		t.Fatalf("MaxTime = %d, want 7", got)
	}

	// Re-grow within capacity: the old p5..p8 samples must stay gone.
	h.Reset(8)
	for p := ProcessID(5); p <= 8; p++ {
		if got := h.SampleCount(p); got != 0 {
			t.Fatalf("p%d resurfaced %d samples after shrink+regrow", p, got)
		}
		if _, ok := h.FinalSuspicions(p); ok {
			t.Fatalf("p%d resurfaced a final suspicion after shrink+regrow", p)
		}
	}
	if got := h.MaxTime(); got != 0 {
		t.Fatalf("MaxTime after shrink+regrow = %d, want 0", got)
	}

	// Growing past the retained capacity must also start clean.
	h.Reset(16)
	if got := h.MaxTime(); got != 0 {
		t.Fatalf("MaxTime after grow past capacity = %d, want 0", got)
	}
	h.Record(16, 3, EmptySet())
	if got := h.SampleCount(16); got != 1 {
		t.Fatalf("SampleCount(p16) = %d, want 1", got)
	}
}

func TestFinalSuspicionsAndMaxTime(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	if _, ok := h.FinalSuspicions(1); ok {
		t.Error("FinalSuspicions on empty history should report none")
	}
	h.Record(1, 4, NewProcessSet(3))
	h.Record(2, 11, NewProcessSet(1))
	if out, ok := h.FinalSuspicions(1); !ok || !out.Equal(NewProcessSet(3)) {
		t.Errorf("FinalSuspicions(p1) = %v,%v", out, ok)
	}
	if got := h.MaxTime(); got != 11 {
		t.Errorf("MaxTime = %d, want 11", got)
	}
}

func TestHistoryString(t *testing.T) {
	t.Parallel()
	h := NewHistory(4)
	h.Record(2, 1, NewProcessSet(4))
	if got := h.String(); !strings.Contains(got, "p2") || !strings.Contains(got, "{p4}") {
		t.Errorf("String = %q", got)
	}
}
