package model

import (
	"math/bits"
	"strconv"
	"strings"
)

// ProcessSet is a set of processes, the range 2^Ω of the classical
// failure detectors of Chandra and Toueg. It is an immutable value
// type backed by a 64-bit word; all operations return new sets.
//
// The zero value is the empty set.
type ProcessSet struct {
	bits uint64
}

// EmptySet returns the empty process set. It is equivalent to
// ProcessSet{} and exists for readability at call sites.
func EmptySet() ProcessSet { return ProcessSet{} }

// NewProcessSet builds a set from the given process IDs.
func NewProcessSet(ps ...ProcessID) ProcessSet {
	var s ProcessSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

func bitOf(p ProcessID) uint64 {
	if p < 1 || p > MaxProcesses {
		panic("model: process ID out of range [1, 64]: " + p.String())
	}
	return uint64(1) << uint(p-1)
}

// Add returns the set s ∪ {p}.
func (s ProcessSet) Add(p ProcessID) ProcessSet {
	return ProcessSet{bits: s.bits | bitOf(p)}
}

// Remove returns the set s \ {p}.
func (s ProcessSet) Remove(p ProcessID) ProcessSet {
	return ProcessSet{bits: s.bits &^ bitOf(p)}
}

// Has reports whether p ∈ s.
func (s ProcessSet) Has(p ProcessID) bool {
	return s.bits&bitOf(p) != 0
}

// Len returns |s|.
func (s ProcessSet) Len() int { return bits.OnesCount64(s.bits) }

// IsEmpty reports whether s = ∅.
func (s ProcessSet) IsEmpty() bool { return s.bits == 0 }

// Union returns s ∪ t.
func (s ProcessSet) Union(t ProcessSet) ProcessSet {
	return ProcessSet{bits: s.bits | t.bits}
}

// Intersect returns s ∩ t.
func (s ProcessSet) Intersect(t ProcessSet) ProcessSet {
	return ProcessSet{bits: s.bits & t.bits}
}

// Diff returns s \ t.
func (s ProcessSet) Diff(t ProcessSet) ProcessSet {
	return ProcessSet{bits: s.bits &^ t.bits}
}

// Equal reports whether s = t.
func (s ProcessSet) Equal(t ProcessSet) bool { return s.bits == t.bits }

// SubsetOf reports whether s ⊆ t.
func (s ProcessSet) SubsetOf(t ProcessSet) bool { return s.bits&^t.bits == 0 }

// Min returns the smallest process ID in s, or 0 if s is empty. The
// paper's P< construction and the Marabout consensus algorithm of §6.1
// both select the lowest-indexed eligible process.
func (s ProcessSet) Min() ProcessID {
	if s.bits == 0 {
		return 0
	}
	return ProcessID(bits.TrailingZeros64(s.bits) + 1)
}

// Max returns the largest process ID in s, or 0 if s is empty.
func (s ProcessSet) Max() ProcessID {
	if s.bits == 0 {
		return 0
	}
	return ProcessID(64 - bits.LeadingZeros64(s.bits))
}

// Slice returns the members of s in increasing ID order.
func (s ProcessSet) Slice() []ProcessID {
	out := make([]ProcessID, 0, s.Len())
	b := s.bits
	for b != 0 {
		p := ProcessID(bits.TrailingZeros64(b) + 1)
		out = append(out, p)
		b &= b - 1
	}
	return out
}

// ForEach calls fn for every member of s in increasing ID order,
// stopping early if fn returns false.
func (s ProcessSet) ForEach(fn func(ProcessID) bool) {
	b := s.bits
	for b != 0 {
		p := ProcessID(bits.TrailingZeros64(b) + 1)
		if !fn(p) {
			return
		}
		b &= b - 1
	}
}

// String renders the set in the paper's notation, e.g. "{p1,p3}".
func (s ProcessSet) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	parts := make([]string, 0, s.Len())
	for _, p := range s.Slice() {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// AppendText appends the String rendering to b without allocating —
// the trace digest encoder's hot path.
func (s ProcessSet) AppendText(b []byte) []byte {
	b = append(b, '{')
	first := true
	w := s.bits
	for w != 0 {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, 'p')
		b = strconv.AppendInt(b, int64(bits.TrailingZeros64(w)+1), 10)
		w &= w - 1
	}
	return append(b, '}')
}
