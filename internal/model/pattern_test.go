package model

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewFailurePatternValidation(t *testing.T) {
	t.Parallel()
	for _, n := range []int{-1, 0, 1, 2, 3, 65} {
		if _, err := NewFailurePattern(n); err == nil {
			t.Errorf("NewFailurePattern(%d) accepted; the model requires 3 < n ≤ 64", n)
		}
	}
	for _, n := range []int{4, 5, 16, 64} {
		if _, err := NewFailurePattern(n); err != nil {
			t.Errorf("NewFailurePattern(%d) rejected: %v", n, err)
		}
	}
}

func TestFailurePatternCrashSemantics(t *testing.T) {
	t.Parallel()
	f := MustPattern(5)
	if err := f.Crash(2, 10); err != nil {
		t.Fatalf("Crash(p2, 10): %v", err)
	}

	// F(t) is monotone: before the crash p2 is alive, from t=10 on it is not.
	if !f.Alive(2, 9) {
		t.Error("p2 should be alive at t=9")
	}
	if f.Alive(2, 10) {
		t.Error("p2 crashed at t=10, must not be alive at t=10")
	}
	if got := f.CrashedAt(9); !got.IsEmpty() {
		t.Errorf("F(9) = %v, want {}", got)
	}
	if got := f.CrashedAt(10); !got.Equal(NewProcessSet(2)) {
		t.Errorf("F(10) = %v, want {p2}", got)
	}
	if got := f.AliveAt(10); !got.Equal(NewProcessSet(1, 3, 4, 5)) {
		t.Errorf("alive(10) = %v", got)
	}
	if got := f.Correct(); !got.Equal(NewProcessSet(1, 3, 4, 5)) {
		t.Errorf("correct(F) = %v", got)
	}
	if got := f.Faulty(); !got.Equal(NewProcessSet(2)) {
		t.Errorf("faulty(F) = %v", got)
	}
}

func TestFailurePatternCrashErrors(t *testing.T) {
	t.Parallel()
	f := MustPattern(4)
	if err := f.Crash(0, 5); err == nil {
		t.Error("Crash(p0) accepted")
	}
	if err := f.Crash(5, 5); err == nil {
		t.Error("Crash(p5) accepted for n=4")
	}
	if err := f.Crash(1, -3); err == nil {
		t.Error("Crash at negative time accepted")
	}
	if err := f.Crash(1, 7); err != nil {
		t.Fatalf("Crash(p1,7): %v", err)
	}
	if err := f.Crash(1, 9); err == nil {
		t.Error("double crash accepted; crash-stop model forbids recovery/re-crash")
	}
}

func TestCrashTime(t *testing.T) {
	t.Parallel()
	f := MustPattern(4).MustCrash(3, 42)
	if ct, ok := f.CrashTime(3); !ok || ct != 42 {
		t.Errorf("CrashTime(p3) = %d,%v; want 42,true", ct, ok)
	}
	if _, ok := f.CrashTime(1); ok {
		t.Error("CrashTime(p1) reported a crash for a correct process")
	}
	if _, ok := f.CrashTime(9); ok {
		t.Error("CrashTime(p9) reported a crash for an out-of-range process")
	}
}

func TestSamePrefix(t *testing.T) {
	t.Parallel()
	// The Marabout example of §3.2.2: F1 has p1 crash at 10, F2 is
	// failure-free. They agree through t=9 and disagree from t=10.
	f1 := MustPattern(4).MustCrash(1, 10)
	f2 := MustPattern(4)
	if !f1.SamePrefix(f2, 9) {
		t.Error("F1, F2 must agree through t=9")
	}
	if f1.SamePrefix(f2, 10) {
		t.Error("F1, F2 must disagree at t=10")
	}
	// Same crash in both ⇒ agree forever.
	f3 := MustPattern(4).MustCrash(1, 10)
	if !f1.SamePrefix(f3, NoCrash-1) {
		t.Error("identical patterns must agree at any horizon")
	}
	// Same process crashing at different times ≤ t disagree.
	f4 := MustPattern(4).MustCrash(1, 5)
	if f1.SamePrefix(f4, 20) {
		t.Error("crash at 10 vs 5 must disagree through t=20")
	}
	// ... but agree strictly before the earlier crash.
	if !f1.SamePrefix(f4, 4) {
		t.Error("crash at 10 vs 5 agree through t=4")
	}
	// Different n never agree.
	f5 := MustPattern(5)
	if f2.SamePrefix(f5, 100) {
		t.Error("patterns over different Ω cannot agree")
	}
}

func TestPrefixClone(t *testing.T) {
	t.Parallel()
	f := MustPattern(5).MustCrash(2, 10).MustCrash(3, 50)
	g := f.PrefixClone(20)
	if !f.SamePrefix(g, 20) {
		t.Error("PrefixClone(20) must agree with original through t=20")
	}
	if _, ok := g.CrashTime(3); ok {
		t.Error("PrefixClone(20) kept the crash at t=50")
	}
	if ct, ok := g.CrashTime(2); !ok || ct != 10 {
		t.Error("PrefixClone(20) lost the crash at t=10")
	}
	// Original unchanged.
	if _, ok := f.CrashTime(3); !ok {
		t.Error("PrefixClone mutated the original")
	}
}

func TestPatternCloneIndependence(t *testing.T) {
	t.Parallel()
	f := MustPattern(4)
	g := f.Clone()
	g.MustCrash(1, 3)
	if _, ok := f.CrashTime(1); ok {
		t.Error("Clone shares state with the original")
	}
}

func TestPatternString(t *testing.T) {
	t.Parallel()
	f := MustPattern(5)
	if got := f.String(); !strings.Contains(got, "∅") {
		t.Errorf("failure-free String = %q, want ∅ marker", got)
	}
	f.MustCrash(4, 30).MustCrash(2, 10)
	got := f.String()
	// Crashes are listed in time order.
	if !strings.Contains(got, "p2@10, p4@30") {
		t.Errorf("String = %q, want crashes in time order", got)
	}
}

// randomPattern draws a pattern over n=6 with each process crashing
// with probability 1/2 at a time in [0, 100).
func randomPattern(r *rand.Rand) *FailurePattern {
	f := MustPattern(6)
	for p := ProcessID(1); p <= 6; p++ {
		if r.Intn(2) == 0 {
			f.MustCrash(p, Time(r.Intn(100)))
		}
	}
	return f
}

func TestQuickPatternInvariants(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		f := randomPattern(r)
		// Monotonicity: F(t) ⊆ F(t+1).
		for tt := Time(0); tt < 101; tt++ {
			if !f.CrashedAt(tt).SubsetOf(f.CrashedAt(tt + 1)) {
				t.Fatalf("pattern %v not monotone at t=%d", f, tt)
			}
		}
		// correct(F) ∪ faulty(F) = Ω, disjoint.
		if !f.Correct().Union(f.Faulty()).Equal(AllProcesses(6)) {
			t.Fatalf("correct ∪ faulty ≠ Ω for %v", f)
		}
		if !f.Correct().Intersect(f.Faulty()).IsEmpty() {
			t.Fatalf("correct ∩ faulty ≠ ∅ for %v", f)
		}
		// At horizon beyond all crashes, F(h) = faulty(F).
		if !f.CrashedAt(1000).Equal(f.Faulty()) {
			t.Fatalf("F(1000) ≠ faulty(F) for %v", f)
		}
		// SamePrefix is reflexive at any cut.
		if !f.SamePrefix(f, Time(i)) {
			t.Fatalf("SamePrefix not reflexive for %v", f)
		}
		// PrefixClone(t) agrees through t for random t.
		cut := Time(r.Intn(120))
		if !f.SamePrefix(f.PrefixClone(cut), cut) {
			t.Fatalf("PrefixClone(%d) prefix mismatch for %v", cut, f)
		}
	}
}

func TestQuickSamePrefixSymmetry(t *testing.T) {
	t.Parallel()
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomPattern(r))
			vals[1] = reflect.ValueOf(randomPattern(r))
			vals[2] = reflect.ValueOf(Time(r.Intn(120)))
		},
	}
	sym := func(a, b *FailurePattern, t Time) bool {
		return a.SamePrefix(b, t) == b.SamePrefix(a, t)
	}
	if err := quick.Check(sym, cfg); err != nil {
		t.Errorf("SamePrefix symmetry failed: %v", err)
	}
}
