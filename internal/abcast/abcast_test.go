package abcast

import (
	"testing"

	"realisticfd/internal/consensus"
	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// script builds a broadcast script with `per` messages per process.
func script(n, per int) map[model.ProcessID][]string {
	out := make(map[model.ProcessID][]string, n)
	for p := 1; p <= n; p++ {
		var msgs []string
		for i := 0; i < per; i++ {
			msgs = append(msgs, string(rune('a'+p))+"-payload")
		}
		out[model.ProcessID(p)] = msgs
	}
	return out
}

// allDelivered stops once every correct process delivered every
// correct sender's messages (crashed senders' messages may or may not
// appear; validity does not cover them).
func allDelivered(sc map[model.ProcessID][]string) func(*sim.Trace) bool {
	return func(tr *sim.Trace) bool {
		seqs := Sequences(tr)
		correct := tr.Pattern.Correct()
		for _, p := range correct.Slice() {
			have := map[MsgID]bool{}
			for _, d := range seqs[p] {
				have[d.ID] = true
			}
			for _, sender := range correct.Slice() {
				for i := range sc[sender] {
					if !have[MsgID{Sender: sender, Seq: i}] {
						return false
					}
				}
			}
		}
		return true
	}
}

func runAB(t *testing.T, pat *model.FailurePattern, sc map[model.ProcessID][]string, seed int64) *sim.Trace {
	t.Helper()
	tr, err := sim.Execute(sim.Config{
		N:         pat.N(),
		Automaton: Atomic{ToBroadcast: sc, MaxInstances: 30},
		Oracle:    fd.Perfect{Delay: 2},
		Pattern:   pat,
		Horizon:   120000,
		Seed:      seed,
		Policy:    &sim.RandomFairPolicy{},
		StopWhen:  allDelivered(sc),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMsgIDCodec(t *testing.T) {
	t.Parallel()
	ids := []MsgID{{Sender: 3, Seq: 0}, {Sender: 1, Seq: 7}, {Sender: 3, Seq: 2}}
	v := encodeSet(ids)
	got, err := decodeSet(v)
	if err != nil {
		t.Fatal(err)
	}
	want := []MsgID{{Sender: 1, Seq: 7}, {Sender: 3, Seq: 0}, {Sender: 3, Seq: 2}}
	if len(got) != len(want) {
		t.Fatalf("decode = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decode[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Empty round-trip.
	if e, err := decodeSet(encodeSet(nil)); err != nil || len(e) != 0 {
		t.Fatalf("empty round-trip: %v, %v", e, err)
	}
	// Malformed inputs fail cleanly.
	for _, bad := range []string{"x", "1:2", "a.b", ".5", "5."} {
		if _, err := decodeSet(consensus.Value(bad)); err == nil {
			t.Fatalf("decodeSet(%q) accepted", bad)
		}
	}
}

func TestAtomicBroadcastFailureFree(t *testing.T) {
	t.Parallel()
	sc := script(5, 2)
	for seed := int64(0); seed < 5; seed++ {
		tr := runAB(t, model.MustPattern(5), sc, seed)
		if tr.Stopped != sim.StopCondition {
			t.Fatalf("seed %d: deliveries incomplete: %v", seed, tr)
		}
		if err := CheckAll(tr, sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestAtomicBroadcastWithCrashes(t *testing.T) {
	t.Parallel()
	sc := script(5, 2)
	cases := []func() *model.FailurePattern{
		func() *model.FailurePattern { return model.MustPattern(5).MustCrash(2, 50) },
		func() *model.FailurePattern { return model.MustPattern(5).MustCrash(1, 5).MustCrash(3, 300) },
		func() *model.FailurePattern {
			// unbounded crashes: only p4 survives
			return model.MustPattern(5).MustCrash(1, 40).MustCrash(2, 80).MustCrash(3, 120).MustCrash(5, 160)
		},
	}
	for ci, mk := range cases {
		for seed := int64(0); seed < 4; seed++ {
			tr := runAB(t, mk(), sc, seed)
			if tr.Stopped != sim.StopCondition {
				t.Fatalf("case %d seed %d: deliveries incomplete", ci, seed)
			}
			if err := CheckAll(tr, sc); err != nil {
				t.Fatalf("case %d seed %d: %v", ci, seed, err)
			}
		}
	}
}

func TestAtomicBroadcastCrashedSenderPrefix(t *testing.T) {
	t.Parallel()
	// A sender that crashes mid-dissemination: whatever of its traffic
	// got ordered must be identically ordered everywhere (uniform
	// total order); its undelivered tail simply vanishes.
	sc := script(5, 3)
	pat := model.MustPattern(5).MustCrash(2, 12)
	tr := runAB(t, pat, sc, 2)
	if err := CheckTotalOrder(tr); err != nil {
		t.Fatal(err)
	}
	if err := CheckIntegrity(tr, sc); err != nil {
		t.Fatal(err)
	}
	if err := CheckAgreement(tr); err != nil {
		t.Fatal(err)
	}
}
