package abcast

import (
	"fmt"

	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// Sequences extracts each process's delivery sequence, in trace
// order.
func Sequences(tr *sim.Trace) map[model.ProcessID][]Delivery {
	out := map[model.ProcessID][]Delivery{}
	for _, le := range tr.ProtocolEvents(sim.KindDeliver) {
		d, ok := le.Event.Value.(Delivery)
		if !ok {
			continue
		}
		out[le.P] = append(out[le.P], d)
	}
	return out
}

// CheckTotalOrder verifies uniform total order: any two delivery
// sequences (including those of processes that later crash) are
// prefix-comparable.
func CheckTotalOrder(tr *sim.Trace) error {
	seqs := Sequences(tr)
	for p := model.ProcessID(1); int(p) <= tr.N; p++ {
		for q := p + 1; int(q) <= tr.N; q++ {
			a, b := seqs[p], seqs[q]
			limit := len(a)
			if len(b) < limit {
				limit = len(b)
			}
			for i := 0; i < limit; i++ {
				if a[i].ID != b[i].ID {
					return fmt.Errorf("total order violated at position %d: %v delivered %v, %v delivered %v",
						i, p, a[i].ID, q, b[i].ID)
				}
			}
		}
	}
	return nil
}

// CheckAgreement verifies that all correct processes delivered the
// same multiset (with total order: the same sequence).
func CheckAgreement(tr *sim.Trace) error {
	seqs := Sequences(tr)
	correct := tr.Pattern.Correct().Slice()
	if len(correct) == 0 {
		return nil
	}
	ref := seqs[correct[0]]
	for _, p := range correct[1:] {
		got := seqs[p]
		if len(got) != len(ref) {
			return fmt.Errorf("agreement violated: %v delivered %d messages, %v delivered %d",
				correct[0], len(ref), p, len(got))
		}
		for i := range ref {
			if ref[i].ID != got[i].ID {
				return fmt.Errorf("agreement violated at position %d: %v vs %v", i, ref[i].ID, got[i].ID)
			}
		}
	}
	return nil
}

// CheckValidity verifies that every message abcast by a correct
// process is delivered by every correct process.
func CheckValidity(tr *sim.Trace, script map[model.ProcessID][]string) error {
	seqs := Sequences(tr)
	correct := tr.Pattern.Correct()
	for _, sender := range correct.Slice() {
		for i := range script[sender] {
			want := MsgID{Sender: sender, Seq: i}
			for _, p := range correct.Slice() {
				found := false
				for _, d := range seqs[p] {
					if d.ID == want {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("validity violated: %v from correct sender never delivered at %v", want, p)
				}
			}
		}
	}
	return nil
}

// CheckIntegrity verifies no duplicates and no spurious messages:
// every delivery corresponds to a scripted broadcast and happens at
// most once per process, with the right body.
func CheckIntegrity(tr *sim.Trace, script map[model.ProcessID][]string) error {
	for p, seq := range Sequences(tr) {
		seen := map[MsgID]bool{}
		for _, d := range seq {
			if seen[d.ID] {
				return fmt.Errorf("integrity violated: %v delivered %v twice", p, d.ID)
			}
			seen[d.ID] = true
			bodies := script[d.ID.Sender]
			if d.ID.Seq < 0 || d.ID.Seq >= len(bodies) {
				return fmt.Errorf("integrity violated: %v delivered unknown message %v", p, d.ID)
			}
			if bodies[d.ID.Seq] != d.Body {
				return fmt.Errorf("integrity violated: %v delivered %v with body %q, broadcast %q",
					p, d.ID, d.Body, bodies[d.ID.Seq])
			}
		}
	}
	return nil
}

// CheckAll runs every atomic-broadcast property.
func CheckAll(tr *sim.Trace, script map[model.ProcessID][]string) error {
	if err := CheckTotalOrder(tr); err != nil {
		return err
	}
	if err := CheckAgreement(tr); err != nil {
		return err
	}
	if err := CheckValidity(tr, script); err != nil {
		return err
	}
	return CheckIntegrity(tr, script)
}
