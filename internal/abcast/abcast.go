// Package abcast implements atomic broadcast by reduction to
// consensus, the equivalence the paper leans on in §1.1 ("solving
// consensus is equivalent to solving atomic broadcast ... with
// reliable channels"): messages are disseminated by reliable
// broadcast, and a sequence of consensus instances agrees on the next
// batch of message identifiers to deliver; batches are delivered in a
// deterministic order.
//
// Because the embedded consensus is the S-based flooding algorithm
// (total, any number of failures), the resulting atomic broadcast
// inherits the paper's headline property: with a realistic Perfect
// detector it works with unbounded crashes — and by Proposition 4.3
// nothing weaker (realistic) could.
package abcast

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"realisticfd/internal/consensus"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

// MsgID identifies an abcast message: the Seq'th message of Sender.
type MsgID struct {
	Sender model.ProcessID
	Seq    int
}

// Less orders message IDs deterministically (sender, then sequence);
// batches are delivered in this order.
func (m MsgID) Less(o MsgID) bool {
	if m.Sender != o.Sender {
		return m.Sender < o.Sender
	}
	return m.Seq < o.Seq
}

// String renders "s.q".
func (m MsgID) String() string {
	return strconv.Itoa(int(m.Sender)) + "." + strconv.Itoa(m.Seq)
}

// parseMsgID inverts String.
func parseMsgID(s string) (MsgID, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return MsgID{}, fmt.Errorf("abcast: malformed message id %q", s)
	}
	snd, err := strconv.Atoi(s[:dot])
	if err != nil {
		return MsgID{}, fmt.Errorf("abcast: malformed sender in %q: %w", s, err)
	}
	seq, err := strconv.Atoi(s[dot+1:])
	if err != nil {
		return MsgID{}, fmt.Errorf("abcast: malformed seq in %q: %w", s, err)
	}
	return MsgID{Sender: model.ProcessID(snd), Seq: seq}, nil
}

// emptySet is the consensus value proposing "no messages pending".
const emptySet = consensus.Value("∅")

// encodeSet canonically encodes a batch proposal.
func encodeSet(ids []MsgID) consensus.Value {
	if len(ids) == 0 {
		return emptySet
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return consensus.Value(strings.Join(parts, ","))
}

// decodeSet inverts encodeSet, returning IDs in delivery order.
func decodeSet(v consensus.Value) ([]MsgID, error) {
	if v == emptySet || v == consensus.NoValue {
		return nil, nil
	}
	parts := strings.Split(string(v), ",")
	out := make([]MsgID, 0, len(parts))
	for _, p := range parts {
		id, err := parseMsgID(p)
		if err != nil {
			return nil, err
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// Atomic is the atomic-broadcast automaton: every process reliably
// broadcasts its scripted payloads, and a sequence of consensus
// instances orders them. Deliveries appear as KindDeliver events
// whose Value is the Delivery struct.
type Atomic struct {
	// ToBroadcast lists each process's messages (payload bodies).
	ToBroadcast map[model.ProcessID][]string
	// MaxInstances bounds the consensus sequence.
	MaxInstances int
}

var _ sim.Automaton = Atomic{}

// Delivery is the payload of an abcast KindDeliver event.
type Delivery struct {
	ID   MsgID
	Body string
}

// Spawn implements sim.Automaton.
func (a Atomic) Spawn(self model.ProcessID, n int) sim.Process {
	if a.MaxInstances <= 0 {
		panic("abcast: Atomic.MaxInstances must be positive")
	}
	return &abProc{
		self:      self,
		n:         n,
		maxInst:   a.MaxInstances,
		toSend:    append([]string(nil), a.ToBroadcast[self]...),
		known:     map[MsgID]string{},
		delivered: map[MsgID]bool{},
		future:    map[int][]*sim.Message{},
	}
}

// Payloads.
type (
	// rbMsg is the reliable-broadcast dissemination of one message;
	// receivers relay it once so crashed senders' messages still reach
	// everyone.
	rbMsg struct {
		ID   MsgID
		Body string
	}
	// acEnv wraps embedded-consensus traffic for one instance.
	acEnv struct {
		Instance int
		Inner    any
	}
)

type abProc struct {
	self    model.ProcessID
	n       int
	maxInst int

	started bool
	toSend  []string

	known     map[MsgID]string
	delivered map[MsgID]bool

	inst     int
	inner    sim.Process
	proposed bool
	pending  []MsgID // decided batch awaiting full knowledge
	future   map[int][]*sim.Message
}

// Step implements sim.Process.
func (p *abProc) Step(in *sim.Message, susp model.ProcessSet, now model.Time) sim.Actions {
	var acts sim.Actions
	if !p.started {
		p.started = true
		for i, body := range p.toSend {
			id := MsgID{Sender: p.self, Seq: i}
			p.known[id] = body
			p.relay(id, body, &acts)
		}
	}

	var innerIn *sim.Message
	if in != nil {
		switch m := in.Payload.(type) {
		case rbMsg:
			if _, ok := p.known[m.ID]; !ok {
				p.known[m.ID] = m.Body
				p.relay(m.ID, m.Body, &acts)
			}
		case acEnv:
			switch {
			case m.Instance < p.inst:
				// late traffic for a decided instance
			case m.Instance > p.inst:
				cp := *in
				cp.Payload = m.Inner
				p.future[m.Instance] = append(p.future[m.Instance], &cp)
			default:
				cp := *in
				cp.Payload = m.Inner
				innerIn = &cp
			}
		}
	}

	p.progress(innerIn, susp, now, &acts)
	return acts
}

// relay floods an rbMsg to everyone else (reliable broadcast).
func (p *abProc) relay(id MsgID, body string, acts *sim.Actions) {
	msg := rbMsg{ID: id, Body: body}
	for q := 1; q <= p.n; q++ {
		dst := model.ProcessID(q)
		if dst != p.self {
			acts.Sends = append(acts.Sends, sim.Send{To: dst, Payload: msg})
		}
	}
}

// progress drives the consensus sequence: propose pending messages,
// feed the inner instance, deliver decided batches once fully known.
func (p *abProc) progress(innerIn *sim.Message, susp model.ProcessSet, now model.Time, acts *sim.Actions) {
	for {
		if p.inst >= p.maxInst {
			return
		}
		// A decided batch blocks the sequence until every message in
		// it is known locally (it then delivers and advances).
		if p.pending != nil {
			if !p.knowsAll(p.pending) {
				return
			}
			p.deliverBatch(p.pending, acts)
			p.pending = nil
			p.advance()
			innerIn = nil
			continue
		}
		if !p.proposed {
			p.proposed = true
			p.inner = consensus.SFlooding{
				Proposals: consensus.Proposals{p.self: encodeSet(p.undelivered())},
			}.Spawn(p.self, p.n)
			// λ kick, then drain buffered traffic for this instance,
			// then the message that arrived this very step (if any).
			decided := p.feed(nil, susp, now, acts)
			buf := p.future[p.inst]
			delete(p.future, p.inst)
			for _, m := range buf {
				if decided {
					break
				}
				decided = p.feed(m, susp, now, acts)
			}
			if !decided && innerIn != nil {
				m := innerIn
				innerIn = nil
				decided = p.feed(m, susp, now, acts)
			}
			if decided {
				continue
			}
			return
		}
		if innerIn == nil {
			// Nothing new for the live instance; give it a λ step so
			// suspicion-driven guards re-evaluate.
			if p.feed(nil, susp, now, acts) {
				continue
			}
			return
		}
		m := innerIn
		innerIn = nil
		if p.feed(m, susp, now, acts) {
			continue
		}
		return
	}
}

// feed drives the inner consensus; returns whether it decided (the
// decided batch is parked in p.pending).
func (p *abProc) feed(in *sim.Message, susp model.ProcessSet, now model.Time, acts *sim.Actions) bool {
	if p.inner == nil {
		return false
	}
	innerActs := p.inner.Step(in, susp, now)
	for _, s := range innerActs.Sends {
		acts.Sends = append(acts.Sends, sim.Send{
			To:      s.To,
			Payload: acEnv{Instance: p.inst, Inner: s.Payload},
		})
	}
	for _, ev := range innerActs.Events {
		if ev.Kind != sim.KindDecide {
			continue
		}
		v, _ := ev.Value.(consensus.Value)
		ids, err := decodeSet(v)
		if err != nil {
			// A malformed decision indicates a protocol bug; deliver
			// nothing for this instance rather than corrupt order.
			ids = nil
		}
		batch := ids[:0]
		for _, id := range ids {
			if !p.delivered[id] {
				batch = append(batch, id)
			}
		}
		p.pending = batch
		if p.pending == nil {
			p.pending = []MsgID{}
		}
		p.inner = nil
		return true
	}
	return false
}

// knowsAll reports whether every message of the batch has a known
// body.
func (p *abProc) knowsAll(batch []MsgID) bool {
	for _, id := range batch {
		if _, ok := p.known[id]; !ok {
			return false
		}
	}
	return true
}

// deliverBatch emits deliveries in deterministic (sender, seq) order.
func (p *abProc) deliverBatch(batch []MsgID, acts *sim.Actions) {
	for _, id := range batch {
		p.delivered[id] = true
		acts.Events = append(acts.Events, sim.ProtocolEvent{
			Kind:     sim.KindDeliver,
			Instance: p.inst,
			Value:    Delivery{ID: id, Body: p.known[id]},
		})
	}
}

// advance moves to the next consensus instance.
func (p *abProc) advance() {
	p.inst++
	p.proposed = false
	p.inner = nil
}

// undelivered returns the known-but-undelivered message IDs.
func (p *abProc) undelivered() []MsgID {
	var out []MsgID
	for id := range p.known {
		if !p.delivered[id] {
			out = append(out, id)
		}
	}
	return out
}
