package abcast

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
)

func BenchmarkAtomicBroadcast(b *testing.B) {
	sc := script(5, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Execute(sim.Config{
			N: 5, Automaton: Atomic{ToBroadcast: sc, MaxInstances: 30},
			Oracle:  fd.Perfect{Delay: 2},
			Pattern: model.MustPattern(5), Horizon: 120000, Seed: int64(i),
			StopWhen: allDelivered(sc),
		})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Stopped != sim.StopCondition {
			b.Fatal("abcast incomplete")
		}
	}
}

func BenchmarkSetCodec(b *testing.B) {
	ids := []MsgID{{1, 0}, {2, 3}, {4, 1}, {5, 9}, {3, 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := encodeSet(ids)
		if _, err := decodeSet(v); err != nil {
			b.Fatal(err)
		}
	}
}
