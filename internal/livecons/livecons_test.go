package livecons

import (
	"fmt"
	"testing"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/heartbeat"
	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// collectDecisions waits for each node to decide, up to limit.
func collectDecisions(t *testing.T, nodes map[model.ProcessID]*Node, limit time.Duration) map[model.ProcessID]consensus.Value {
	t.Helper()
	out := make(map[model.ProcessID]consensus.Value, len(nodes))
	deadline := time.After(limit)
	for p, nd := range nodes {
		select {
		case v := <-nd.Decided():
			out[p] = v
		case <-deadline:
			t.Fatalf("%v did not decide within %v", p, limit)
		}
	}
	return out
}

func staticSuspects(s model.ProcessSet) SuspicionSource {
	return func() model.ProcessSet { return s }
}

func TestLiveConsensusFailureFree(t *testing.T) {
	t.Parallel()
	const n = 5
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}

	nodes := map[model.ProcessID]*Node{}
	demuxes := make([]*transport.Demux, 0, n)
	for p := model.ProcessID(1); p <= n; p++ {
		dm := transport.NewDemux(net.Node(p).Recv())
		demuxes = append(demuxes, dm)
		nd, err := NewNode(Config{
			Transport: net.Node(p),
			N:         n,
			Proposal:  consensus.Value(fmt.Sprintf("v%d", p)),
			Suspects:  staticSuspects(model.EmptySet()),
			Envelopes: dm.Chan(EnvelopeType),
			Tick:      2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}

	decs := collectDecisions(t, nodes, 10*time.Second)
	for p, v := range decs {
		if v != "v1" {
			t.Errorf("%v decided %q, want v1 (lowest entry of the common vector)", p, v)
		}
	}
	for _, nd := range nodes {
		nd.Close()
	}
	_ = net.Close()
}

func TestLiveConsensusWithDeadMember(t *testing.T) {
	t.Parallel()
	// p2 never starts; the others' detector module (static here)
	// reports it — the live analogue of an unbounded-crash run.
	const n = 5
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}

	nodes := map[model.ProcessID]*Node{}
	for p := model.ProcessID(1); p <= n; p++ {
		if p == 2 {
			continue
		}
		dm := transport.NewDemux(net.Node(p).Recv())
		nd, err := NewNode(Config{
			Transport: net.Node(p),
			N:         n,
			Proposal:  consensus.Value(fmt.Sprintf("v%d", p)),
			Suspects:  staticSuspects(model.NewProcessSet(2)),
			Envelopes: dm.Chan(EnvelopeType),
			Tick:      2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}

	decs := collectDecisions(t, nodes, 10*time.Second)
	var ref consensus.Value
	for _, v := range decs {
		if ref == consensus.NoValue {
			ref = v
		} else if v != ref {
			t.Fatalf("disagreement: %v", decs)
		}
	}
	if ref == "v2" {
		t.Fatal("decided the dead member's value")
	}
	for _, nd := range nodes {
		nd.Close()
	}
	_ = net.Close()
}

func TestLiveConsensusSurvivesMessageLoss(t *testing.T) {
	t.Parallel()
	// 25% loss: retransmission must still get everyone to the same
	// decision (the reliable-channel emulation of §2.4 condition 5).
	const n = 4
	net, err := transport.NewChanNetwork(n, transport.WithDrop(25), transport.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}

	nodes := map[model.ProcessID]*Node{}
	for p := model.ProcessID(1); p <= n; p++ {
		dm := transport.NewDemux(net.Node(p).Recv())
		nd, err := NewNode(Config{
			Transport: net.Node(p),
			N:         n,
			Proposal:  consensus.Value(fmt.Sprintf("v%d", p)),
			Suspects:  staticSuspects(model.EmptySet()),
			Envelopes: dm.Chan(EnvelopeType),
			Tick:      time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}

	decs := collectDecisions(t, nodes, 20*time.Second)
	for p, v := range decs {
		if v != decs[1] {
			t.Fatalf("disagreement at %v: %v", p, decs)
		}
	}
	for _, nd := range nodes {
		nd.Close()
	}
	_ = net.Close()
}

// TestFullStackOverTCP is the flagship integration: TCP transport,
// heartbeat emitters, φ-accrual detectors as the failure-detector
// module, and the verified flooding automaton deciding — with one
// node killed before the vote.
func TestFullStackOverTCP(t *testing.T) {
	t.Parallel()
	const n = 4
	tcp, err := transport.NewTCPCluster(n)
	if err != nil {
		t.Fatal(err)
	}

	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= n; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	// Node 4 is dead on arrival: close its transport immediately.
	_ = tcp[3].Close()

	dets := map[model.ProcessID]*heartbeat.Detector{}
	ems := map[model.ProcessID]*heartbeat.Emitter{}
	nodes := map[model.ProcessID]*Node{}
	for p := model.ProcessID(1); p <= 3; p++ {
		det := heartbeat.NewDetector(tcp[p-1], peersOf(p), func() heartbeat.Estimator {
			return &heartbeat.FixedTimeout{Timeout: 80 * time.Millisecond}
		})
		dets[p] = det
		ems[p] = heartbeat.NewEmitter(tcp[p-1], peersOf(p), 10*time.Millisecond)
		dm := transport.NewDemux(det.Forward())
		nd, err := NewNode(Config{
			Transport: tcp[p-1],
			N:         n,
			Proposal:  consensus.Value(fmt.Sprintf("v%d", p)),
			Suspects:  det.Suspects,
			Envelopes: dm.Chan(EnvelopeType),
			Tick:      10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = nd
	}

	decs := collectDecisions(t, nodes, 20*time.Second)
	for p, v := range decs {
		if v != decs[1] {
			t.Fatalf("disagreement at %v: %v", p, decs)
		}
		if v == "v4" {
			t.Fatal("decided the dead node's value")
		}
	}

	for _, nd := range nodes {
		nd.Close()
	}
	for _, e := range ems {
		e.Close()
	}
	for _, d := range dets {
		d.Close()
	}
}
