// Package livecons runs the S-based flooding consensus — the exact
// automaton the simulator verifies — over a live transport, with a
// heartbeat failure detector supplying the suspicion module. It is
// the end-to-end realization of the paper's practical claim: a
// timeout-based emulation of P is what lets a real cluster reach
// agreement no matter how many members crash.
//
// The step discipline mirrors §2.3: every inbound message and every
// tick drives one atomic Step(msg|λ, suspicions); the automaton is
// single-threaded inside the node loop, so the simulator's
// correctness argument carries over verbatim — only the message
// delivery and failure detection are real.
package livecons

import (
	"sync"
	"time"

	"realisticfd/internal/consensus"
	"realisticfd/internal/model"
	"realisticfd/internal/sim"
	"realisticfd/internal/transport"
)

// EnvelopeType tags consensus traffic on a shared transport.
const EnvelopeType = "consensus"

// SuspicionSource supplies the failure-detector module's current
// output, e.g. (*heartbeat.Detector).Suspects.
type SuspicionSource func() model.ProcessSet

// Config assembles a live consensus node.
type Config struct {
	// Transport sends envelopes; the node addresses all n processes.
	Transport transport.Transport
	// N is the system size.
	N int
	// Proposal is this node's initial value.
	Proposal consensus.Value
	// Suspects is the failure-detector module.
	Suspects SuspicionSource
	// Envelopes yields inbound consensus-typed envelopes (from a
	// transport.Demux or a heartbeat.Detector Forward stream).
	Envelopes <-chan transport.Envelope
	// Tick paces λ-steps so suspicion-driven guards re-evaluate even
	// in silence. Default 10ms.
	Tick time.Duration
}

// Node is one live consensus participant.
type Node struct {
	cfg  Config
	proc sim.Process

	decided chan consensus.Value

	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu       sync.Mutex
	decision *consensus.Value

	// sent caches every envelope this node emitted; the simulator's
	// model assumes reliable channels (§2.4 condition 5), so over a
	// real link the node periodically retransmits. Re-delivery is
	// safe: the flooding automaton's absorb step is idempotent.
	sent       []transport.Envelope
	ticksSince int
}

// resendEvery is the retransmission period in ticks.
const resendEvery = 16

// NewNode starts the node's protocol loop immediately.
func NewNode(cfg Config) (*Node, error) {
	if err := model.ValidateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 10 * time.Millisecond
	}
	self := cfg.Transport.Self()
	nd := &Node{
		cfg: cfg,
		proc: consensus.SFlooding{
			Proposals: consensus.Proposals{self: cfg.Proposal},
		}.Spawn(self, cfg.N),
		decided: make(chan consensus.Value, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go nd.run()
	return nd, nil
}

// Decided yields the decision (once). The channel is buffered: the
// node does not block on slow readers.
func (nd *Node) Decided() <-chan consensus.Value { return nd.decided }

// Decision returns the decision if one was reached.
func (nd *Node) Decision() (consensus.Value, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.decision == nil {
		return consensus.NoValue, false
	}
	return *nd.decision, true
}

// Close stops the protocol loop and waits for it.
func (nd *Node) Close() {
	nd.once.Do(func() { close(nd.stop) })
	<-nd.done
}

func (nd *Node) run() {
	defer close(nd.done)
	ticker := time.NewTicker(nd.cfg.Tick)
	defer ticker.Stop()

	step := model.Time(0)
	// λ kick: emit the round-1 broadcast before any traffic arrives.
	nd.step(nil, &step)
	for {
		select {
		case <-nd.stop:
			return
		case env, ok := <-nd.cfg.Envelopes:
			if !ok {
				return
			}
			payload, err := consensus.DecodeWire(env.Body)
			if err != nil {
				continue // corrupt frame: drop like a bad packet
			}
			nd.step(&sim.Message{From: env.From, Payload: payload}, &step)
		case <-ticker.C:
			nd.step(nil, &step)
			nd.ticksSince++
			if nd.ticksSince >= resendEvery {
				nd.ticksSince = 0
				nd.retransmit()
			}
		}
	}
}

// retransmit re-sends everything once more (reliable-channel
// emulation). It keeps going even after this node decided: laggards
// may still be missing one of our frames, and §2.4 condition (5)
// obliges delivery to every correct process. The cache stops growing
// at decision time, so the cost is bounded.
func (nd *Node) retransmit() {
	for _, env := range nd.sent {
		_ = nd.cfg.Transport.Send(env)
	}
}

// step drives one atomic automaton step and performs its actions.
func (nd *Node) step(in *sim.Message, step *model.Time) {
	*step++
	acts := nd.proc.Step(in, nd.cfg.Suspects(), *step)
	for _, s := range acts.Sends {
		body, err := consensus.EncodeWire(s.Payload)
		if err != nil {
			continue
		}
		env := transport.Envelope{To: s.To, Type: EnvelopeType, Body: body}
		nd.sent = append(nd.sent, env)
		_ = nd.cfg.Transport.Send(env) // losses look like slow links
	}
	for _, ev := range acts.Events {
		if ev.Kind != sim.KindDecide {
			continue
		}
		v, okVal := ev.Value.(consensus.Value)
		if !okVal {
			continue
		}
		nd.mu.Lock()
		first := nd.decision == nil
		if first {
			val := v
			nd.decision = &val
		}
		nd.mu.Unlock()
		if first {
			nd.decided <- v
		}
	}
}
