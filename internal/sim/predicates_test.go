package sim

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

func TestBroadcastHelper(t *testing.T) {
	t.Parallel()
	sends := Broadcast(4, "x")
	if len(sends) != 4 {
		t.Fatalf("Broadcast(4) = %d sends", len(sends))
	}
	seen := model.EmptySet()
	for _, s := range sends {
		if s.Payload != "x" {
			t.Fatalf("payload %v", s.Payload)
		}
		seen = seen.Add(s.To)
	}
	if !seen.Equal(model.AllProcesses(4)) {
		t.Fatalf("destinations %v", seen)
	}
}

func TestAllDecidedPredicate(t *testing.T) {
	t.Parallel()
	// The chain automaton produces exactly one decision, so
	// AllDecided(0) never fires (p5 is alive and undecided) while a
	// run with CorrectDecided(0) and all-but-decider crashed does.
	tr, err := Execute(Config{
		N: 5, Automaton: chainAutomaton{k: 4}, Oracle: fd.Perfect{},
		Horizon: 400, StopWhen: AllDecided(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stopped != StopHorizon {
		t.Fatalf("AllDecided fired with undecided alive processes: %v", tr.Stopped)
	}
}

func TestMuzzleEverybodyStillAdvances(t *testing.T) {
	t.Parallel()
	// With every process muzzled, the schedule must still advance (the
	// muzzle policy falls back to the inner policy) — the run cannot
	// wedge the engine.
	tr, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 50,
		Policy: &MuzzlePolicy{
			Inner:   &FairPolicy{},
			Muzzled: model.AllProcesses(4),
			Until:   100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 50 {
		t.Fatalf("engine recorded %d events, want 50", len(tr.Events))
	}
}

func TestDelayPolicyReleasesAfterUntil(t *testing.T) {
	t.Parallel()
	dp := &DelayPolicy{Target: model.NewProcessSet(2), Until: 100}
	pending := []*Message{
		{ID: 1, From: 2, To: 3, SentAt: 1}, // embargoed: from p2
		{ID: 2, From: 4, To: 3, SentAt: 2}, // free
	}
	if got := dp.PickMessage(3, pending, 50, nil); got != 1 {
		t.Fatalf("during embargo pick = %d, want the free message (1)", got)
	}
	if got := dp.PickMessage(3, pending, 100, nil); got != 0 {
		t.Fatalf("after embargo pick = %d, want oldest (0)", got)
	}
	// All messages embargoed → λ.
	onlyEmbargoed := pending[:1]
	if got := dp.PickMessage(3, onlyEmbargoed, 50, nil); got != -1 {
		t.Fatalf("fully embargoed pick = %d, want -1", got)
	}
}
