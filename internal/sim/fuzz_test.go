package sim

import (
	"reflect"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// naiveDecisions is the pre-index implementation of Trace.Decisions: a
// full rescan of the schedule. The fuzzer holds the incremental index
// to exactly this.
func naiveDecisions(tr *Trace, instance int) []DecisionEvent {
	var out []DecisionEvent
	for i := range tr.Events {
		ev := &tr.Events[i]
		for _, pe := range ev.Events {
			if pe.Kind == KindDecide && (instance == AnyInstance || pe.Instance == instance) {
				out = append(out, DecisionEvent{
					EventIndex: i, P: ev.P, T: ev.T,
					Instance: pe.Instance, Value: pe.Value,
				})
			}
		}
	}
	return out
}

// naiveProtocolEvents is the pre-index implementation of
// Trace.ProtocolEvents.
func naiveProtocolEvents(tr *Trace, kind EventKind) []LocatedEvent {
	var out []LocatedEvent
	for i := range tr.Events {
		ev := &tr.Events[i]
		for _, pe := range ev.Events {
			if pe.Kind == kind {
				out = append(out, LocatedEvent{EventIndex: i, P: ev.P, T: ev.T, Event: pe})
			}
		}
	}
	return out
}

// naiveDecidedSet is the pre-index decided-set computation.
func naiveDecidedSet(tr *Trace, instance int) model.ProcessSet {
	s := model.EmptySet()
	for _, d := range naiveDecisions(tr, instance) {
		s = s.Add(d.P)
	}
	return s
}

// fuzzAutomata are the protocol shapes the fuzzer schedules: message
// noise, deliver events, a causal chain with one decision, and
// multi-instance decisions.
func fuzzAutomaton(kind uint8, n int) Automaton {
	switch kind % 4 {
	case 0:
		return noisyAutomaton{}
	case 1:
		return broadcastAutomaton{}
	case 2:
		return chainAutomaton{k: n - 1}
	default:
		return multiInstanceDecider{}
	}
}

func fuzzPolicy(kind uint8, dropPct, extraDelay uint8) Policy {
	switch kind % 5 {
	case 0:
		return &FairPolicy{}
	case 1:
		return &RandomFairPolicy{}
	case 2:
		return &DelayPolicy{Target: model.NewProcessSet(2), Until: 90}
	case 3:
		return &MuzzlePolicy{Inner: &FairPolicy{}, Muzzled: model.NewProcessSet(1, 3), Until: 60}
	default:
		return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{
			DropPct:       int(dropPct % 40),
			MaxExtraDelay: model.Time(extraDelay % 8),
			Partitions: []Partition{
				{Side: model.NewProcessSet(1, 2), From: 20, Until: model.Time(20 + extraDelay)},
			},
		}}
	}
}

// FuzzEngineDeterminism fuzzes (seed, faults, horizon, policy,
// automaton, crash script) configurations and asserts the two
// invariants the whole reproduction rests on:
//
//  1. Determinism: executing the same config twice yields
//     byte-identical digests (the replay property of DESIGN.md §5).
//  2. Index soundness: every incremental trace index agrees with a
//     naive full-trace rescan, and the engine's cached alive set
//     agrees with a fresh pattern scan.
func FuzzEngineDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(1), uint8(10), uint8(4), uint16(300), uint8(0), uint8(0), false)
	f.Add(int64(42), uint8(8), uint8(3), uint8(0), uint8(0), uint16(800), uint8(1), uint8(1), true)
	f.Add(int64(7), uint8(5), uint8(0), uint8(20), uint8(6), uint16(150), uint8(4), uint8(2), false)
	f.Add(int64(99), uint8(11), uint8(7), uint8(35), uint8(3), uint16(1500), uint8(3), uint8(3), true)
	f.Add(int64(-3), uint8(4), uint8(4), uint8(5), uint8(7), uint16(60), uint8(2), uint8(1), false)

	f.Fuzz(func(t *testing.T, seed int64, nRaw, crashes, dropPct, extraDelay uint8, horizonRaw uint16, policyKind, autoKind uint8, stop bool) {
		n := 4 + int(nRaw%8)                       // 4..11
		horizon := model.Time(1 + horizonRaw%2000) // 1..2000

		build := func() Config {
			pat := model.MustPattern(n)
			for i := 0; i < int(crashes%uint8(n+1)); i++ { // up to n: all-crashed runs included
				// Deterministic crash script derived from the fuzz input
				// (uint64 keeps the modulo non-negative for any seed).
				p := model.ProcessID(1 + int((uint64(i)+uint64(seed))%uint64(n)))
				if _, dead := pat.CrashTime(p); dead {
					continue
				}
				pat.MustCrash(p, model.Time(1+(i*37+int(horizonRaw))%int(horizon+10)))
			}
			cfg := Config{
				N:         n,
				Automaton: fuzzAutomaton(autoKind, n),
				Oracle:    fd.Perfect{Delay: 2},
				Pattern:   pat,
				Horizon:   horizon,
				Seed:      seed,
				Policy:    fuzzPolicy(policyKind, dropPct, extraDelay),
			}
			if stop {
				cfg.StopWhen = AllDecided(0)
			}
			return cfg
		}

		tr1, err := Execute(build())
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Execute(build())
		if err != nil {
			t.Fatal(err)
		}
		if d1, d2 := tr1.Digest(), tr2.Digest(); d1 != d2 {
			t.Fatalf("replay diverged: %s vs %s", d1[:16], d2[:16])
		}

		// Streaming-vs-retained equivalence: the same config executed
		// twice back to back on one reused RunContext — the second run
		// on deliberately dirty arenas — must reproduce the fresh-context
		// digest byte for byte.
		rc := NewRunContext()
		for i := 0; i < 2; i++ {
			trS, err := rc.Execute(build())
			if err != nil {
				t.Fatalf("reused context run %d: %v", i, err)
			}
			if dS := trS.Digest(); dS != tr1.Digest() {
				t.Fatalf("reused context run %d diverged from fresh context: %s vs %s",
					i, dS[:16], tr1.Digest()[:16])
			}
		}

		// Index soundness against the naive rescan.
		for _, inst := range []int{AnyInstance, 0, 1, 7} {
			want := naiveDecisions(tr1, inst)
			got := tr1.Decisions(inst)
			if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
				t.Fatalf("Decisions(%d): index %v != rescan %v", inst, got, want)
			}
			if ws, gs := naiveDecidedSet(tr1, inst), tr1.DecidedSet(inst); !ws.Equal(gs) {
				t.Fatalf("DecidedSet(%d): index %v != rescan %v", inst, gs, ws)
			}
			if wc, gc := len(want), tr1.DecisionCount(inst); wc != gc {
				t.Fatalf("DecisionCount(%d): index %d != rescan %d", inst, gc, wc)
			}
		}
		for _, kind := range []EventKind{KindDecide, KindDeliver, KindFDOutput, KindViewChange} {
			want := naiveProtocolEvents(tr1, kind)
			got := tr1.ProtocolEvents(kind)
			if len(want) != len(got) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
				t.Fatalf("ProtocolEvents(%v): index has %d events, rescan %d", kind, len(got), len(want))
			}
		}

		// The cached alive set must agree with a fresh pattern scan at
		// the trace's end time.
		if want, got := tr1.Pattern.AliveAt(tr1.MaxTime()), tr1.AliveNow(); !want.Equal(got) {
			t.Fatalf("AliveNow = %v, pattern scan says %v", got, want)
		}
	})
}
