package sim

import (
	"strings"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// TestFaultyPolicyDropIsPerMessage checks that the drop lottery is a
// pure function of the message identity: whether m is lost must not
// depend on when or how often the policy looks at the buffer.
func TestFaultyPolicyDropIsPerMessage(t *testing.T) {
	t.Parallel()
	fp := &FaultyPolicy{Faults: LinkFaults{DropPct: 40}, Seed: 99}
	fp.seeded, fp.seed = true, fp.Seed
	m := &Message{ID: 7, From: 1, To: 2, SentAt: 3}
	first := fp.Dropped(m)
	for i := 0; i < 50; i++ {
		if fp.Dropped(m) != first {
			t.Fatal("drop verdict changed between calls")
		}
	}
	// Over many messages the drop rate must be in the right ballpark.
	dropped := 0
	const total = 2000
	for id := int64(1); id <= total; id++ {
		if fp.Dropped(&Message{ID: id}) {
			dropped++
		}
	}
	if dropped < total*30/100 || dropped > total*50/100 {
		t.Fatalf("drop rate %d/%d far from configured 40%%", dropped, total)
	}
}

// TestFaultyPolicyDelayBounded checks 0 ≤ extra delay ≤ MaxExtraDelay.
func TestFaultyPolicyDelayBounded(t *testing.T) {
	t.Parallel()
	fp := &FaultyPolicy{Faults: LinkFaults{MaxExtraDelay: 5}, Seed: 4}
	fp.seeded, fp.seed = true, fp.Seed
	seen := make(map[model.Time]bool)
	for id := int64(1); id <= 500; id++ {
		d := fp.ExtraDelay(&Message{ID: id})
		if d < 0 || d > 5 {
			t.Fatalf("extra delay %d outside [0, 5]", d)
		}
		seen[d] = true
	}
	for want := model.Time(0); want <= 5; want++ {
		if !seen[want] {
			t.Errorf("delay %d never drawn in 500 messages", want)
		}
	}
}

// TestPartitionBlocksOnlyCrossCut checks the partition predicate: only
// cross-cut traffic inside the window is blocked, and the cut heals.
func TestPartitionBlocksOnlyCrossCut(t *testing.T) {
	t.Parallel()
	pt := Partition{Side: model.NewProcessSet(1, 2), From: 10, Until: 20}
	cases := []struct {
		from, to model.ProcessID
		t        model.Time
		blocked  bool
	}{
		{1, 3, 15, true},   // cross-cut, inside window
		{3, 1, 15, true},   // symmetric
		{1, 2, 15, false},  // same side
		{3, 4, 15, false},  // same (other) side
		{1, 3, 9, false},   // before the cut
		{1, 3, 20, false},  // healed
		{1, 3, 500, false}, // long healed
	}
	for _, c := range cases {
		if got := pt.Blocks(c.from, c.to, c.t); got != c.blocked {
			t.Errorf("Blocks(%v→%v @%d) = %v, want %v", c.from, c.to, c.t, got, c.blocked)
		}
	}
}

// TestFaultyPolicyPartitionDelivery runs the broadcast automaton under
// a healing partition: messages across the cut are withheld during the
// window and delivered after the heal, so every correct process still
// delivers by the horizon.
func TestFaultyPolicyPartitionDelivery(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 400, Seed: 11,
		Policy: &FaultyPolicy{Faults: LinkFaults{
			Partitions: []Partition{{Side: model.NewProcessSet(1), From: 1, Until: 100}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := model.EmptySet()
	var firstCrossDelivery model.Time
	for _, le := range tr.ProtocolEvents(KindDeliver) {
		delivered = delivered.Add(le.P)
		if le.P != 1 && firstCrossDelivery == 0 {
			firstCrossDelivery = le.T
		}
	}
	if want := model.NewProcessSet(2, 3, 4, 5); !want.SubsetOf(delivered) {
		t.Fatalf("delivered = %v, want ⊇ %v (partition must heal)", delivered, want)
	}
	if firstCrossDelivery < 100 {
		t.Fatalf("cross-cut delivery at t=%d, inside partition window [1, 100)", firstCrossDelivery)
	}
}

// TestFaultyPolicyDropLosesTraffic runs the broadcast automaton under
// a heavy-loss link and checks that some messages are genuinely never
// delivered: they remain in the undelivered buffer at the horizon.
func TestFaultyPolicyDropLosesTraffic(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 300, Seed: 5,
		Policy: &FaultyPolicy{Faults: LinkFaults{DropPct: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := &FaultyPolicy{Faults: LinkFaults{DropPct: 60}}
	// Recover the lottery seed the run drew: replay the engine's RNG.
	tr2, err := Execute(Config{
		N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 300, Seed: 5,
		Policy: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Digest() != tr2.Digest() {
		t.Fatal("identical faulty configs replayed differently")
	}
	droppedLeft := 0
	for _, m := range tr2.Undelivered {
		if fp.Dropped(m) {
			droppedLeft++
		}
	}
	if droppedLeft == 0 {
		t.Fatal("60% drop rate but no dropped message left in the buffer")
	}
}

// TestLossyBacklogPurged is the regression test for the lossy-link
// backlog bug: dropped messages used to linger in the per-destination
// pending queues for the entire run, so every PickMessage rescanned a
// monotonically growing backlog and the verdict cache grew without
// bound. The engine now purges a message at its first dropped verdict;
// the purged messages must still surface in Trace.Undelivered in ID
// order (the golden drop/partition digests pin byte-identity), and the
// verdict cache must end bounded by the still-pending traffic, not by
// the run's total message count.
func TestLossyBacklogPurged(t *testing.T) {
	t.Parallel()
	fp := &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{DropPct: 50}}
	tr, err := Execute(Config{
		N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 4000, Seed: 9,
		Policy: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	lastID := make(map[model.ProcessID]int64)
	for _, m := range tr.Undelivered {
		if m.ID <= lastID[m.To] {
			t.Fatalf("Undelivered to %v out of ID order: %d after %d", m.To, m.ID, lastID[m.To])
		}
		lastID[m.To] = m.ID
		if fp.Dropped(m) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("50% drop rate but no dropped message in the undelivered buffer")
	}
	// Every purged (and every delivered) message's verdict is evicted,
	// so the cache holds at most the messages that were still sitting
	// unpurged in a queue when the run stopped — strictly fewer than
	// the undelivered total, and nowhere near the dropped count.
	if len(fp.verdicts) > len(tr.Undelivered)-dropped {
		t.Fatalf("verdict cache holds %d entries; want ≤ %d (undelivered %d - dropped %d)",
			len(fp.verdicts), len(tr.Undelivered)-dropped, len(tr.Undelivered), dropped)
	}
}

// TestFaultyPolicyComposesWithInner checks the wrapper preserves the
// inner policy's scheduling among deliverable messages (fairness
// forcing, adversarial embargoes, ...).
func TestFaultyPolicyComposesWithInner(t *testing.T) {
	t.Parallel()
	inner := &DelayPolicy{Target: model.NewProcessSet(2), Until: 50}
	fp := &FaultyPolicy{Inner: inner, Faults: LinkFaults{MaxExtraDelay: 2}, Seed: 8}
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 200, Seed: 3, Policy: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The embargo on p2 must still hold: p2 receives nothing before 50.
	for _, i := range tr.EventsOf(2) {
		ev := tr.Events[i]
		if ev.Msg != nil && ev.T < 50 {
			t.Fatalf("embargoed message delivered to p2 at t=%d", ev.T)
		}
	}
}

// TestEdgeCutBlocksOnlyCutEdges checks the edge-cut predicate: only
// the listed edges are severed, in both directions, only inside the
// window.
func TestEdgeCutBlocksOnlyCutEdges(t *testing.T) {
	t.Parallel()
	ec := EdgeCut{Edges: []Edge{{A: 1, B: 3}, {A: 4, B: 2}}, From: 10, Until: 20}
	cases := []struct {
		from, to model.ProcessID
		t        model.Time
		blocked  bool
	}{
		{1, 3, 15, true},  // cut edge, inside window
		{3, 1, 15, true},  // symmetric
		{2, 4, 15, true},  // listed in non-canonical order
		{1, 2, 15, false}, // edge not in the cut
		{3, 4, 15, false}, // edge not in the cut
		{1, 3, 9, false},  // before the cut
		{1, 3, 20, false}, // healed
	}
	for _, c := range cases {
		if got := ec.Blocks(c.from, c.to, c.t); got != c.blocked {
			t.Errorf("Blocks(%v→%v @%d) = %v, want %v", c.from, c.to, c.t, got, c.blocked)
		}
	}
}

// TestEdgeCutEquivalentToPartition checks that a cut listing exactly
// the cross-cut edges of a bipartition replays byte-identically to the
// classic ProcessSet partition: the two encodings must be two spellings
// of the same fault plan.
func TestEdgeCutEquivalentToPartition(t *testing.T) {
	t.Parallel()
	side := model.NewProcessSet(1, 2)
	var crossing []Edge
	for a := model.ProcessID(1); a <= 5; a++ {
		for b := a + 1; b <= 5; b++ {
			if side.Has(a) != side.Has(b) {
				crossing = append(crossing, Edge{A: a, B: b})
			}
		}
	}
	run := func(lf LinkFaults) string {
		tr, err := Execute(Config{
			N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
			Horizon: 400, Seed: 11,
			Policy: &FaultyPolicy{Faults: lf},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Digest()
	}
	classic := run(LinkFaults{Partitions: []Partition{{Side: side, From: 1, Until: 100}}})
	cut := run(LinkFaults{Cuts: []EdgeCut{{Edges: crossing, From: 1, Until: 100}}})
	if classic != cut {
		t.Fatalf("edge-cut run diverged from equivalent partition run:\n cut     %s\n classic %s", cut, classic)
	}
}

// TestFaultyPolicyCutDelivery runs the broadcast automaton under a
// healing single-edge cut: only traffic on the severed link is
// withheld, and it flows after the heal.
func TestFaultyPolicyCutDelivery(t *testing.T) {
	t.Parallel()
	lf := LinkFaults{Cuts: []EdgeCut{{Edges: []Edge{{A: 1, B: 2}}, From: 1, Until: 100}}}
	if !lf.Active() {
		t.Fatal("cut-only plan reports inactive")
	}
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 400, Seed: 11,
		Policy: &FaultyPolicy{Faults: lf},
	})
	if err != nil {
		t.Fatal(err)
	}
	delivered := model.EmptySet()
	for _, i := range tr.EventsOf(2) {
		ev := tr.Events[i]
		if ev.Msg != nil && ev.Msg.From == 1 && ev.T < 100 {
			t.Fatalf("severed-link message p1→p2 delivered at t=%d, inside cut window", ev.T)
		}
	}
	for _, le := range tr.ProtocolEvents(KindDeliver) {
		delivered = delivered.Add(le.P)
	}
	if want := model.NewProcessSet(1, 2, 3, 4, 5); !want.SubsetOf(delivered) {
		t.Fatalf("delivered = %v, want ⊇ %v (cut must heal)", delivered, want)
	}
}

// TestLinkFaultsString pins the rendering used by fdsim banners.
func TestLinkFaultsString(t *testing.T) {
	t.Parallel()
	if got := (LinkFaults{}).String(); got != "faults{none}" {
		t.Errorf("empty plan renders %q", got)
	}
	lf := LinkFaults{DropPct: 10, MaxExtraDelay: 4,
		Partitions: []Partition{{Side: model.NewProcessSet(1, 2), From: 40, Until: 400}},
		Cuts:       []EdgeCut{{Edges: []Edge{{A: 1, B: 3}}, From: 5, Until: 15}}}
	got := lf.String()
	for _, want := range []string{"drop=10%", "delay≤4", "@40..400", "cut{p1-p3}@5..15"} {
		if !strings.Contains(got, want) {
			t.Errorf("plan rendering %q missing %q", got, want)
		}
	}
	if lf.LossFree() {
		t.Error("plan with drops claims loss-free")
	}
	if !(LinkFaults{MaxExtraDelay: 3}).LossFree() {
		t.Error("delay-only plan must be loss-free")
	}
}

// TestFaultyPolicyStepTimelines pins the piecewise drop/delay
// machinery: the rate in force at a message's send time decides its
// fate, a timeline that matches the constant fields agrees with them
// message for message, and empty timelines leave the classic path
// untouched.
func TestFaultyPolicyStepTimelines(t *testing.T) {
	t.Parallel()
	steps := &FaultyPolicy{Faults: LinkFaults{
		DropSteps:  []RateStep{{From: 100, Pct: 100}, {From: 200, Pct: 0}},
		DelaySteps: []DelayStep{{From: 100, Max: 5}},
	}, Seed: 17}
	steps.seeded, steps.seed = true, steps.Seed
	for id := int64(1); id <= 200; id++ {
		before := &Message{ID: id, SentAt: 99}
		during := &Message{ID: id, SentAt: 150}
		after := &Message{ID: id, SentAt: 200}
		if steps.Dropped(before) || steps.Dropped(after) {
			t.Fatal("message outside the 100% window dropped")
		}
		if !steps.Dropped(during) {
			t.Fatal("message inside the 100% window survived")
		}
		if d := steps.ExtraDelay(before); d != 0 {
			t.Fatalf("delay %d before the delay step", d)
		}
		if d := steps.ExtraDelay(during); d < 0 || d > 5 {
			t.Fatalf("delay %d outside [0, 5]", d)
		}
	}
	if steps.Faults.LossFree() {
		t.Fatal("timeline with a lossy segment claims LossFree")
	}
	if !(LinkFaults{DropSteps: []RateStep{{From: 0, Pct: 0}}}).LossFree() {
		t.Fatal("all-zero drop timeline is loss-free")
	}

	constant := &FaultyPolicy{Faults: LinkFaults{DropPct: 30, MaxExtraDelay: 4}, Seed: 17}
	constant.seeded, constant.seed = true, constant.Seed
	flat := &FaultyPolicy{Faults: LinkFaults{
		DropSteps:  []RateStep{{From: 0, Pct: 30}},
		DelaySteps: []DelayStep{{From: 0, Max: 4}},
	}, Seed: 17}
	flat.seeded, flat.seed = true, flat.Seed
	for id := int64(1); id <= 500; id++ {
		m := &Message{ID: id, SentAt: model.Time(id % 97)}
		if constant.Dropped(m) != flat.Dropped(m) {
			t.Fatalf("message %d: constant and flat-timeline drop verdicts differ", id)
		}
		if constant.ExtraDelay(m) != flat.ExtraDelay(m) {
			t.Fatalf("message %d: constant and flat-timeline delays differ", id)
		}
	}
}
