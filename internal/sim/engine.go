package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// Config describes one run of an algorithm A using a failure detector
// D under a failure pattern F (§2.4).
type Config struct {
	// N is the system size |Ω|; must satisfy 3 < N ≤ 64.
	N int
	// Automaton is the algorithm A.
	Automaton Automaton
	// Oracle is the failure detector D.
	Oracle fd.Oracle
	// Pattern is the failure pattern F. The engine uses it in place so
	// adversarial hooks may extend it with crashes mid-run, and it
	// registers a crash hook on it for the duration of the run — so a
	// pattern must never be shared with a concurrently executing run,
	// even fully scripted; pass a Clone if the caller needs the
	// original preserved. Nil means failure-free.
	Pattern *model.FailurePattern
	// Horizon bounds the run length in global-clock ticks. There is
	// exactly one step per tick, so Horizon is also the step budget.
	Horizon model.Time
	// Seed drives all scheduling randomness. Identical configs with
	// identical seeds replay identical runs.
	Seed int64
	// Policy schedules processes and message deliveries; nil means a
	// fresh FairPolicy.
	Policy Policy
	// StopWhen, if non-nil, ends the run early once it returns true;
	// it is evaluated after every step. Predicates should use the
	// trace's indexed queries (DecidedSet, ProtocolEvents, AliveNow) —
	// they are O(1) per call, keeping the whole run O(steps).
	StopWhen func(*Trace) bool
	// AfterStep, if non-nil, is invoked after every recorded step; the
	// adversarial experiments use it to observe decisions and crash
	// processes through the Run handle.
	AfterStep func(*Run, *EventRecord)
}

// msgQueue is one destination's slice of the message buffer: a slice
// with a head offset, so removing the oldest pending message — the
// pick every fair policy makes almost every step — is O(1) instead of
// the O(m) splice of a plain slice. Sending order is observable
// through the Policy interface, so removal must preserve it: picking
// index i shifts the i older messages up one slot (O(i), i typically
// 0) rather than splicing the m−i younger ones down.
type msgQueue struct {
	buf  []*Message
	head int
}

// view returns the pending messages in sending order.
func (q *msgQueue) view() []*Message { return q.buf[q.head:] }

// push appends a newly sent message.
func (q *msgQueue) push(m *Message) { q.buf = append(q.buf, m) }

// remove extracts the message at index i of view(), preserving order.
func (q *msgQueue) remove(i int) *Message {
	j := q.head + i
	m := q.buf[j]
	copy(q.buf[q.head+1:j+1], q.buf[q.head:j])
	q.buf[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head >= 256 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for k := n; k < len(q.buf); k++ {
			q.buf[k] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m
}

// purge removes every message of dead from the queue, preserving the
// order of the survivors. dead must be a subsequence of view() in
// queue order (which is how DropSifter implementations report it).
func (q *msgQueue) purge(dead []*Message) {
	live := q.buf[q.head:q.head]
	di := 0
	for _, m := range q.view() {
		if di < len(dead) && m == dead[di] {
			di++
			continue
		}
		live = append(live, m)
	}
	for i := q.head + len(live); i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:q.head+len(live)]
}

// Run is a live run handle passed to AfterStep hooks.
type Run struct {
	cfg     Config
	rc      *RunContext
	now     model.Time
	rng     *rand.Rand
	pattern *model.FailurePattern
	trace   *Trace
	nextMsg int64
	sifter  DropSifter // policy's drop reporter, nil if none
	steady  fd.Steady  // oracle's stability declaration, nil if none

	// Alive-set cache: rebuilt only when a crash takes effect, never
	// per tick. aliveList is sorted by ID (the Policy contract);
	// nextCrash is the earliest crash time among its members, kept
	// current by the pattern's crash hook when adversarial hooks
	// extend F mid-run.
	aliveList []model.ProcessID
	aliveSet  model.ProcessSet
	nextCrash model.Time
}

// Now returns the current global time.
func (r *Run) Now() model.Time { return r.now }

// Pattern returns the run's failure pattern (live; hooks may extend
// it via Crash).
func (r *Run) Pattern() *model.FailurePattern { return r.pattern }

// Trace returns the trace recorded so far.
func (r *Run) Trace() *Trace { return r.trace }

// Crash makes p crash at the current time: it takes no further steps.
// This is the adversary's move in the Lemma 4.1 experiment ("all
// processes crash at time t, except p_j").
func (r *Run) Crash(p model.ProcessID) error {
	return r.pattern.Crash(p, r.now)
}

// Errors returned by Execute.
var (
	// ErrNoAliveProcess means every process crashed before the run
	// could finish; the trace up to that point is still returned.
	ErrNoAliveProcess = errors.New("sim: all processes crashed")
)

// rebuildAlive recomputes the alive cache from scratch: members of
// Ω \ F(t) in ID order, and the earliest upcoming crash among them.
func (r *Run) rebuildAlive(t model.Time) {
	r.aliveList = r.aliveList[:0]
	r.aliveSet = model.EmptySet()
	r.nextCrash = model.NoCrash
	for p := 1; p <= r.cfg.N; p++ {
		id := model.ProcessID(p)
		if !r.pattern.Alive(id, t) {
			continue
		}
		r.aliveList = append(r.aliveList, id)
		r.aliveSet = r.aliveSet.Add(id)
		if ct, crashed := r.pattern.CrashTime(id); crashed && ct < r.nextCrash {
			r.nextCrash = ct
		}
	}
	r.trace.setAlive(r.aliveSet)
}

// refreshAlive updates the alive cache iff a crash has taken effect by
// time t; otherwise it is O(1). The pattern's crash hook lowers
// nextCrash when an AfterStep adversary extends F mid-run, so scripted
// and adversarial crashes both land here.
func (r *Run) refreshAlive(t model.Time) {
	if t >= r.nextCrash {
		r.rebuildAlive(t)
	}
}

// Execute runs the configured algorithm in a fresh context and returns
// the recorded trace. The returned error is non-nil only for
// configuration problems; a run in which all processes crash ends
// normally with the trace produced so far and Stopped = StopAllCrashed.
//
// Sweeps that execute many seeds back to back should prefer a reused
// RunContext (one per worker): it recycles the trace, queues and
// message arenas across runs, at the price that each returned trace is
// only valid until the context's next run.
func Execute(cfg Config) (*Trace, error) {
	return NewRunContext().Execute(cfg)
}

// Execute runs the configured algorithm reusing the context's arenas.
// The returned Trace — and everything reachable from it — is valid
// only until the next Execute call on the same context; see the
// RunContext contract.
func (rc *RunContext) Execute(cfg Config) (*Trace, error) {
	if err := model.ValidateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Automaton == nil {
		return nil, errors.New("sim: Config.Automaton is nil")
	}
	if cfg.Oracle == nil {
		return nil, errors.New("sim: Config.Oracle is nil")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: Horizon %d must be positive", cfg.Horizon)
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = model.MustPattern(cfg.N)
	}
	if pattern.N() != cfg.N {
		return nil, fmt.Errorf("sim: pattern over n=%d but Config.N=%d", pattern.N(), cfg.N)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = &FairPolicy{}
	}

	if rc.rng == nil {
		rc.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		rc.rng.Seed(cfg.Seed)
	}
	r := &rc.run
	aliveList := r.aliveList // keep the recycled capacity
	*r = Run{
		cfg:       cfg,
		rc:        rc,
		rng:       rc.rng,
		pattern:   pattern,
		trace:     rc.reset(cfg, pattern),
		nextMsg:   1,
		aliveList: aliveList[:0],
	}
	r.sifter, _ = policy.(DropSifter)
	r.steady, _ = cfg.Oracle.(fd.Steady)
	for p := 1; p <= cfg.N; p++ {
		rc.procs[p] = cfg.Automaton.Spawn(model.ProcessID(p), cfg.N)
	}

	// The alive cache is rebuilt only when a crash takes effect; the
	// pattern hook catches crashes injected mid-run by AfterStep
	// adversaries. The hook is an engine implementation detail, so it
	// is removed again however the run ends.
	pattern.SetCrashHook(func(_ model.ProcessID, t model.Time) {
		if t < r.nextCrash {
			r.nextCrash = t
		}
		// A new crash voids every Steady stability horizon: outputs may
		// now change earlier than the oracle promised for the old F.
		if r.steady != nil {
			for p := range rc.fdUntil {
				rc.fdUntil[p] = -1
			}
		}
	})
	defer pattern.SetCrashHook(nil)
	r.rebuildAlive(1)

	for t := model.Time(1); t <= cfg.Horizon; t++ {
		r.now = t
		r.refreshAlive(t)
		if len(r.aliveList) == 0 {
			// The refresh above cached the (empty) alive set of the
			// stop tick, one past the last event; restore the trace's
			// documented AliveNow contract of Ω \ F(MaxTime).
			r.trace.setAlive(r.pattern.AliveAt(r.trace.MaxTime()))
			r.finish(StopAllCrashed)
			return r.trace, nil
		}

		p := policy.NextProcess(r.aliveList, t, r.rng)
		if !pattern.Alive(p, t) {
			return nil, fmt.Errorf("sim: policy scheduled crashed process %v at t=%d", p, t)
		}

		// (1) receive a message or λ. Under a lossy fault plan, first
		// purge the messages whose drop verdict is already sealed: they
		// can never be delivered, and leaving them in the queue would
		// make every later pick rescan a monotonically growing backlog.
		// Purged messages still count as undelivered (finish merges
		// them back), so the trace is byte-identical to a purge-free
		// engine's.
		q := &rc.pending[p]
		if r.sifter != nil && len(q.view()) > 0 {
			rc.dead = r.sifter.SiftDropped(q.view(), rc.dead[:0])
			if len(rc.dead) > 0 {
				q.purge(rc.dead)
				rc.dropped[p] = append(rc.dropped[p], rc.dead...)
			}
		}
		var msg *Message
		if idx := policy.PickMessage(p, q.view(), t, r.rng); idx >= 0 {
			if idx >= len(q.view()) {
				return nil, fmt.Errorf("sim: policy picked message %d of %d for %v", idx, len(q.view()), p)
			}
			msg = q.remove(idx)
		}

		// (2) query the failure-detector module. Steady oracles declare
		// how long their output is guaranteed unchanged, so the real
		// query runs only at change-points; in between the cached output
		// is replayed (byte-identical by the Steady contract, which the
		// golden digests pin).
		var susp model.ProcessSet
		if r.steady != nil && t <= rc.fdUntil[p] {
			susp = rc.fdOut[p]
		} else {
			susp = cfg.Oracle.Output(pattern, p, t)
			if r.steady != nil {
				rc.fdOut[p] = susp
				rc.fdUntil[p] = r.steady.StableUntil(pattern, p, t)
			}
		}
		r.trace.History.Record(p, t, susp)

		// (3) state transition and sends.
		actions := rc.procs[p].Step(msg, susp, t)

		ev := EventRecord{
			Index:        len(r.trace.Events),
			P:            p,
			T:            t,
			Msg:          msg,
			FD:           susp,
			Events:       actions.Events,
			PrevSameProc: rc.lastEv[p],
		}
		if len(actions.Sends) > 0 {
			ev.Sends = rc.allocSends(len(actions.Sends))
			for _, s := range actions.Sends {
				if s.To < 1 || int(s.To) > cfg.N {
					return nil, fmt.Errorf("sim: %v sent to out-of-range destination %v", p, s.To)
				}
				m := rc.allocMsg()
				*m = Message{
					ID:      r.nextMsg,
					From:    p,
					To:      s.To,
					SentAt:  t,
					SentBy:  ev.Index,
					Payload: s.Payload,
				}
				r.nextMsg++
				ev.Sends = append(ev.Sends, m)
				rc.pending[s.To].push(m)
			}
		}
		recorded := r.trace.appendEvent(ev)
		rc.lastEv[p] = recorded.Index

		if cfg.AfterStep != nil {
			cfg.AfterStep(r, recorded)
			// An adversarial hook may have crashed processes at the
			// current tick; refresh so StopWhen sees the same alive
			// set a fresh pattern scan would report.
			r.refreshAlive(t)
		}
		if cfg.StopWhen != nil && cfg.StopWhen(r.trace) {
			r.finish(StopCondition)
			return r.trace, nil
		}
	}
	r.finish(StopHorizon)
	return r.trace, nil
}

// finish seals the trace with the final buffer contents. Messages
// purged at their dropped verdict are merged back in ID order per
// destination, so Undelivered reads exactly as it would had the
// backlog never been purged — the golden digests pin this.
func (r *Run) finish(reason StopReason) {
	r.trace.Stopped = reason
	for p := 1; p <= r.cfg.N; p++ {
		r.trace.Undelivered = appendMergedByID(r.trace.Undelivered, r.rc.dropped[p], r.rc.pending[p].view())
	}
}

// appendMergedByID appends the merge of two ID-sorted message lists to
// dst, keeping ID order.
func appendMergedByID(dst []*Message, a, b []*Message) []*Message {
	for len(a) > 0 && len(b) > 0 {
		if a[0].ID < b[0].ID {
			dst = append(dst, a[0])
			a = a[1:]
		} else {
			dst = append(dst, b[0])
			b = b[1:]
		}
	}
	dst = append(dst, a...)
	return append(dst, b...)
}

// AllDecided returns a StopWhen predicate: every process alive at the
// current end of the trace has emitted a decide event for the given
// instance. Both sides of the comparison are O(1) cached sets, so the
// predicate adds constant work per step.
func AllDecided(instance int) func(*Trace) bool {
	return func(tr *Trace) bool {
		return tr.AliveNow().SubsetOf(tr.DecidedSet(instance))
	}
}

// CorrectDecided returns a StopWhen predicate: every process that is
// correct in the (current) pattern has decided in the given instance.
// Use with patterns whose crashes are fully scripted up front.
func CorrectDecided(instance int) func(*Trace) bool {
	return func(tr *Trace) bool {
		return tr.Pattern.Correct().SubsetOf(tr.DecidedSet(instance))
	}
}
