package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// Config describes one run of an algorithm A using a failure detector
// D under a failure pattern F (§2.4).
type Config struct {
	// N is the system size |Ω|; must satisfy 3 < N ≤ 64.
	N int
	// Automaton is the algorithm A.
	Automaton Automaton
	// Oracle is the failure detector D.
	Oracle fd.Oracle
	// Pattern is the failure pattern F. The engine uses it in place so
	// adversarial hooks may extend it with crashes mid-run; pass a
	// Clone if the caller needs the original preserved. Nil means
	// failure-free.
	Pattern *model.FailurePattern
	// Horizon bounds the run length in global-clock ticks. There is
	// exactly one step per tick, so Horizon is also the step budget.
	Horizon model.Time
	// Seed drives all scheduling randomness. Identical configs with
	// identical seeds replay identical runs.
	Seed int64
	// Policy schedules processes and message deliveries; nil means a
	// fresh FairPolicy.
	Policy Policy
	// StopWhen, if non-nil, ends the run early once it returns true;
	// it is evaluated after every step.
	StopWhen func(*Trace) bool
	// AfterStep, if non-nil, is invoked after every recorded step; the
	// adversarial experiments use it to observe decisions and crash
	// processes through the Run handle.
	AfterStep func(*Run, *EventRecord)
}

// Run is a live run handle passed to AfterStep hooks.
type Run struct {
	cfg     Config
	now     model.Time
	rng     *rand.Rand
	pattern *model.FailurePattern
	procs   []Process
	pending [][]*Message // pending[p] = buffered messages to p
	trace   *Trace
	nextMsg int64
	lastEv  []int // last event index per process, -1 initially
}

// Now returns the current global time.
func (r *Run) Now() model.Time { return r.now }

// Pattern returns the run's failure pattern (live; hooks may extend
// it via Crash).
func (r *Run) Pattern() *model.FailurePattern { return r.pattern }

// Trace returns the trace recorded so far.
func (r *Run) Trace() *Trace { return r.trace }

// Crash makes p crash at the current time: it takes no further steps.
// This is the adversary's move in the Lemma 4.1 experiment ("all
// processes crash at time t, except p_j").
func (r *Run) Crash(p model.ProcessID) error {
	return r.pattern.Crash(p, r.now)
}

// Errors returned by Execute.
var (
	// ErrNoAliveProcess means every process crashed before the run
	// could finish; the trace up to that point is still returned.
	ErrNoAliveProcess = errors.New("sim: all processes crashed")
)

// Execute runs the configured algorithm and returns the recorded
// trace. The returned error is non-nil only for configuration
// problems; a run in which all processes crash ends normally with the
// trace produced so far and Stopped = StopQuiescent.
func Execute(cfg Config) (*Trace, error) {
	if err := model.ValidateN(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Automaton == nil {
		return nil, errors.New("sim: Config.Automaton is nil")
	}
	if cfg.Oracle == nil {
		return nil, errors.New("sim: Config.Oracle is nil")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: Horizon %d must be positive", cfg.Horizon)
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = model.MustPattern(cfg.N)
	}
	if pattern.N() != cfg.N {
		return nil, fmt.Errorf("sim: pattern over n=%d but Config.N=%d", pattern.N(), cfg.N)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = &FairPolicy{}
	}

	r := &Run{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pattern: pattern,
		procs:   make([]Process, cfg.N+1),
		pending: make([][]*Message, cfg.N+1),
		lastEv:  make([]int, cfg.N+1),
		trace: &Trace{
			N:       cfg.N,
			History: model.NewHistory(cfg.N),
			Pattern: pattern,
			byProc:  make(map[model.ProcessID][]int, cfg.N),
		},
		nextMsg: 1,
	}
	for p := 1; p <= cfg.N; p++ {
		r.procs[p] = cfg.Automaton.Spawn(model.ProcessID(p), cfg.N)
		r.lastEv[p] = -1
	}

	alive := make([]model.ProcessID, 0, cfg.N)
	for t := model.Time(1); t <= cfg.Horizon; t++ {
		r.now = t
		alive = alive[:0]
		for p := 1; p <= cfg.N; p++ {
			if pattern.Alive(model.ProcessID(p), t) {
				alive = append(alive, model.ProcessID(p))
			}
		}
		if len(alive) == 0 {
			r.finish(StopQuiescent)
			return r.trace, nil
		}

		p := policy.NextProcess(alive, t, r.rng)
		if !pattern.Alive(p, t) {
			return nil, fmt.Errorf("sim: policy scheduled crashed process %v at t=%d", p, t)
		}

		// (1) receive a message or λ.
		var msg *Message
		if idx := policy.PickMessage(p, r.pending[p], t, r.rng); idx >= 0 {
			if idx >= len(r.pending[p]) {
				return nil, fmt.Errorf("sim: policy picked message %d of %d for %v", idx, len(r.pending[p]), p)
			}
			msg = r.pending[p][idx]
			r.pending[p] = append(r.pending[p][:idx], r.pending[p][idx+1:]...)
		}

		// (2) query the failure-detector module.
		susp := cfg.Oracle.Output(pattern, p, t)
		r.trace.History.Record(p, t, susp)

		// (3) state transition and sends.
		actions := r.procs[p].Step(msg, susp, t)

		ev := EventRecord{
			Index:        len(r.trace.Events),
			P:            p,
			T:            t,
			Msg:          msg,
			FD:           susp,
			Events:       actions.Events,
			PrevSameProc: r.lastEv[p],
		}
		for _, s := range actions.Sends {
			if s.To < 1 || int(s.To) > cfg.N {
				return nil, fmt.Errorf("sim: %v sent to out-of-range destination %v", p, s.To)
			}
			m := &Message{
				ID:      r.nextMsg,
				From:    p,
				To:      s.To,
				SentAt:  t,
				SentBy:  ev.Index,
				Payload: s.Payload,
			}
			r.nextMsg++
			ev.Sends = append(ev.Sends, m)
			r.pending[s.To] = append(r.pending[s.To], m)
		}
		r.trace.Events = append(r.trace.Events, ev)
		r.trace.byProc[p] = append(r.trace.byProc[p], ev.Index)
		r.lastEv[p] = ev.Index

		if cfg.AfterStep != nil {
			cfg.AfterStep(r, &r.trace.Events[ev.Index])
		}
		if cfg.StopWhen != nil && cfg.StopWhen(r.trace) {
			r.finish(StopCondition)
			return r.trace, nil
		}
	}
	r.finish(StopHorizon)
	return r.trace, nil
}

// finish seals the trace with the final buffer contents.
func (r *Run) finish(reason StopReason) {
	r.trace.Stopped = reason
	for p := 1; p <= r.cfg.N; p++ {
		r.trace.Undelivered = append(r.trace.Undelivered, r.pending[p]...)
	}
}

// AllDecided returns a StopWhen predicate: every process alive at the
// current end of the trace has emitted a decide event for the given
// instance.
func AllDecided(instance int) func(*Trace) bool {
	return func(tr *Trace) bool {
		decided := model.EmptySet()
		for _, d := range tr.Decisions(instance) {
			decided = decided.Add(d.P)
		}
		return tr.Pattern.AliveAt(tr.MaxTime()).SubsetOf(decided)
	}
}

// CorrectDecided returns a StopWhen predicate: every process that is
// correct in the (current) pattern has decided in the given instance.
// Use with patterns whose crashes are fully scripted up front.
func CorrectDecided(instance int) func(*Trace) bool {
	return func(tr *Trace) bool {
		decided := model.EmptySet()
		for _, d := range tr.Decisions(instance) {
			decided = decided.Add(d.P)
		}
		return tr.Pattern.Correct().SubsetOf(decided)
	}
}
