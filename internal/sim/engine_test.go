package sim

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// chainAutomaton builds the causal chain p1 → p2 → ... → pk, with pk
// deciding on receipt: p1 spontaneously sends a token to p2, each
// intermediate process forwards it one hop, and the last hop decides.
// It gives tests a trace whose causal structure is known exactly.
type chainAutomaton struct {
	k int // chain length (k ≤ n)
}

type chainProc struct {
	self model.ProcessID
	k    int
	sent bool
}

func (a chainAutomaton) Spawn(self model.ProcessID, n int) Process {
	return &chainProc{self: self, k: a.k}
}

func (p *chainProc) Step(in *Message, _ model.ProcessSet, _ model.Time) Actions {
	if p.self == 1 && !p.sent {
		p.sent = true
		return Actions{Sends: []Send{{To: 2, Payload: "token"}}}
	}
	if in == nil || p.sent {
		return Actions{}
	}
	p.sent = true
	if int(p.self) == p.k {
		return Actions{Events: []ProtocolEvent{{Kind: KindDecide, Instance: 0, Value: "done"}}}
	}
	return Actions{Sends: []Send{{To: p.self + 1, Payload: "token"}}}
}

// broadcastAutomaton floods one hello from p1; every receiver emits a
// deliver event.
type broadcastAutomaton struct{}

type broadcastProc struct {
	self model.ProcessID
	n    int
	sent bool
}

func (broadcastAutomaton) Spawn(self model.ProcessID, n int) Process {
	return &broadcastProc{self: self, n: n}
}

func (p *broadcastProc) Step(in *Message, _ model.ProcessSet, _ model.Time) Actions {
	var acts Actions
	if p.self == 1 && !p.sent {
		p.sent = true
		acts.Sends = Broadcast(p.n, "hello")
	}
	if in != nil {
		acts.Events = append(acts.Events, ProtocolEvent{Kind: KindDeliver, Instance: 0, Value: in.Payload})
	}
	return acts
}

func TestExecuteValidation(t *testing.T) {
	t.Parallel()
	base := Config{N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{}, Horizon: 10}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"n too small", func(c Config) Config { c.N = 3; return c }},
		{"nil automaton", func(c Config) Config { c.Automaton = nil; return c }},
		{"nil oracle", func(c Config) Config { c.Oracle = nil; return c }},
		{"zero horizon", func(c Config) Config { c.Horizon = 0; return c }},
		{"pattern size mismatch", func(c Config) Config { c.Pattern = model.MustPattern(6); return c }},
	}
	for _, tc := range cases {
		if _, err := Execute(tc.mut(base)); err == nil {
			t.Errorf("%s: Execute accepted invalid config", tc.name)
		}
	}
	if _, err := Execute(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestChainCausality(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 5, Automaton: chainAutomaton{k: 4}, Oracle: fd.Perfect{},
		Horizon: 200, StopWhen: AllDecided(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := tr.Decisions(0)
	if len(decs) != 1 {
		t.Fatalf("decisions = %d, want 1", len(decs))
	}
	d := decs[0]
	if d.P != 4 {
		t.Fatalf("decider = %v, want p4", d.P)
	}
	contr := tr.Contributors(d.EventIndex)
	// The chain p1→p2→p3→p4 means p1, p2, p3 contributed messages and
	// p4 is the decider; p5 is outside the chain.
	want := model.NewProcessSet(1, 2, 3, 4)
	if !contr.Equal(want) {
		t.Fatalf("contributors = %v, want %v", contr, want)
	}
	// The causal past must include p1's send event.
	past := tr.CausalPast(d.EventIndex)
	foundP1Send := false
	for _, i := range past {
		ev := tr.Events[i]
		if ev.P == 1 && len(ev.Sends) > 0 {
			foundP1Send = true
		}
	}
	if !foundP1Send {
		t.Fatal("causal past of the decision misses p1's send event")
	}
}

func TestDeterministicReplay(t *testing.T) {
	t.Parallel()
	run := func() *Trace {
		tr, err := Execute(Config{
			N: 6, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{Delay: 2},
			Pattern: model.MustPattern(6).MustCrash(3, 25),
			Horizon: 120, Seed: 99, Policy: &RandomFairPolicy{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("replay diverged: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.P != eb.P || ea.T != eb.T || !ea.FD.Equal(eb.FD) ||
			(ea.Msg == nil) != (eb.Msg == nil) ||
			(ea.Msg != nil && ea.Msg.ID != eb.Msg.ID) {
			t.Fatalf("replay diverged at event %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestCrashStopsProcess(t *testing.T) {
	t.Parallel()
	pat := model.MustPattern(5).MustCrash(2, 10)
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Pattern: pat, Horizon: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range tr.EventsOf(2) {
		if tr.Events[i].T >= 10 {
			t.Fatalf("crashed p2 stepped at t=%d", tr.Events[i].T)
		}
	}
	// Others keep stepping to the horizon.
	evs := tr.EventsOf(1)
	if len(evs) == 0 || tr.Events[evs[len(evs)-1]].T < 50 {
		t.Fatal("correct p1 stopped stepping early")
	}
}

func TestAllCrashedEndsRun(t *testing.T) {
	t.Parallel()
	pat := model.MustPattern(4)
	for p := 1; p <= 4; p++ {
		pat.MustCrash(model.ProcessID(p), 20)
	}
	tr, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Pattern: pat, Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stopped != StopAllCrashed {
		t.Fatalf("Stopped = %v, want all-crashed", tr.Stopped)
	}
	if tr.MaxTime() >= 20 {
		t.Fatalf("events recorded at t=%d after global crash at 20", tr.MaxTime())
	}
}

func TestAfterStepHookCanCrash(t *testing.T) {
	t.Parallel()
	// The adversary crashes every process except p5 the moment the
	// chain decision happens — the shape of run R2 in Lemma 4.1.
	var crashTime model.Time
	tr, err := Execute(Config{
		N: 5, Automaton: chainAutomaton{k: 4}, Oracle: fd.Perfect{},
		Horizon: 400,
		AfterStep: func(r *Run, ev *EventRecord) {
			for _, pe := range ev.Events {
				if pe.Kind == KindDecide && crashTime == 0 {
					crashTime = r.Now()
					for p := model.ProcessID(1); p <= 4; p++ {
						if r.Pattern().Alive(p, r.Now()) {
							if err := r.Crash(p); err != nil {
								t.Errorf("Crash(%v): %v", p, err)
							}
						}
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashTime == 0 {
		t.Fatal("decision never happened")
	}
	// After the mass crash only p5 steps.
	for _, ev := range tr.Events {
		if ev.T > crashTime && ev.P != 5 {
			t.Fatalf("%v stepped at t=%d after mass crash at %d", ev.P, ev.T, crashTime)
		}
	}
}

func TestDelayPolicyEmbargo(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 300,
		Policy:  &DelayPolicy{Target: model.NewProcessSet(2), Until: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// p2 must not receive any message before t=100 but must receive
	// the broadcast afterwards.
	for _, i := range tr.EventsOf(2) {
		ev := tr.Events[i]
		if ev.Msg != nil && ev.T < 100 {
			t.Fatalf("embargoed p2 received %v at t=%d", ev.Msg, ev.T)
		}
	}
	if tr.DeliveredTo(2) == 0 {
		t.Fatal("p2 never received the broadcast after the embargo lifted")
	}
}

func TestMuzzlePolicyStarvesSteps(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 200,
		Policy: &MuzzlePolicy{
			Inner:   &FairPolicy{},
			Muzzled: model.NewProcessSet(4, 5),
			Until:   80,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []model.ProcessID{4, 5} {
		evs := tr.EventsOf(p)
		if len(evs) == 0 {
			t.Fatalf("%v never stepped after the muzzle lifted", p)
		}
		if first := tr.Events[evs[0]].T; first < 80 {
			t.Fatalf("muzzled %v stepped at t=%d < 80", p, first)
		}
	}
}

func TestHistoryRecordedDuringRun(t *testing.T) {
	t.Parallel()
	pat := model.MustPattern(5).MustCrash(4, 30)
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{Delay: 1},
		Pattern: pat, Horizon: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The recorded history must satisfy P's properties over this run.
	rep := fd.Classify(tr.History, pat)
	if !rep.InP() {
		t.Fatalf("history of a Perfect oracle not in P: %+v", rep)
	}
}

func TestUndeliveredAccounting(t *testing.T) {
	t.Parallel()
	// With a tiny horizon the broadcast cannot drain.
	tr, err := Execute(Config{
		N: 5, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stopped != StopHorizon {
		t.Fatalf("Stopped = %v, want horizon", tr.Stopped)
	}
	if len(tr.Undelivered) == 0 {
		t.Fatal("expected undelivered messages at a 3-tick horizon")
	}
	total := 0
	for p := model.ProcessID(1); p <= 5; p++ {
		total += len(tr.UndeliveredTo(p))
	}
	if total != len(tr.Undelivered) {
		t.Fatalf("UndeliveredTo partitions %d of %d messages", total, len(tr.Undelivered))
	}
}
