package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"

	"realisticfd/internal/model"
)

// Digest returns a hex SHA-256 fingerprint of the full run: the
// schedule with times, received and sent messages (payloads included),
// failure-detector samples, protocol events, the final failure pattern
// and the undelivered buffer. Two runs are byte-identical iff their
// digests match, which is how the replay regression tests and the
// parallel-sweep determinism checks state "same Config + same Seed ⇒
// same run" — the property the Lemma 4.1 indistinguishability argument
// (and every deterministic replay) rests on.
func (tr *Trace) Digest() string {
	h := sha256.New()
	tr.encode(h)
	return hex.EncodeToString(h.Sum(nil))
}

// encode writes a canonical rendering of the trace to w. The rendering
// is pinned by the golden-trace digests, so its bytes must never
// change. It is also the streaming sweeps' per-run hot path (one
// digest per run), so lines are assembled with append-style formatting
// into a scratch buffer the trace retains across runs — the fmt
// round-trips that used to dominate a streamed sweep's allocation
// profile are gone, byte for byte equivalently (appendValue replicates
// %v for every payload shape).
func (tr *Trace) encode(w io.Writer) {
	b := tr.scratch[:0]
	b = fmt.Appendf(b, "n=%d stopped=%d pattern=%s\n", tr.N, tr.Stopped, tr.Pattern)
	w.Write(b)
	for i := range tr.Events {
		ev := &tr.Events[i]
		b = append(b[:0], 'e')
		b = strconv.AppendInt(b, int64(ev.Index), 10)
		b = append(b, " p="...)
		b = strconv.AppendInt(b, int64(ev.P), 10)
		b = append(b, " t="...)
		b = strconv.AppendInt(b, int64(ev.T), 10)
		b = append(b, " fd="...)
		b = ev.FD.AppendText(b)
		b = append(b, " prev="...)
		b = strconv.AppendInt(b, int64(ev.PrevSameProc), 10)
		if m := ev.Msg; m != nil {
			b = append(b, " rcv=("...)
			b = strconv.AppendInt(b, m.ID, 10)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(m.From), 10)
			b = append(b, '>')
			b = strconv.AppendInt(b, int64(m.To), 10)
			b = append(b, " @"...)
			b = strconv.AppendInt(b, int64(m.SentAt), 10)
			b = append(b, " by"...)
			b = strconv.AppendInt(b, int64(m.SentBy), 10)
			b = append(b, ' ')
			b = appendValue(b, m.Payload)
			b = append(b, ')')
		}
		for _, m := range ev.Sends {
			b = append(b, " snd=("...)
			b = strconv.AppendInt(b, m.ID, 10)
			b = append(b, " >"...)
			b = strconv.AppendInt(b, int64(m.To), 10)
			b = append(b, ' ')
			b = appendValue(b, m.Payload)
			b = append(b, ')')
		}
		for _, pe := range ev.Events {
			b = append(b, " ev=("...)
			b = strconv.AppendInt(b, int64(pe.Kind), 10)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(pe.Instance), 10)
			b = append(b, ' ')
			b = appendValue(b, pe.Value)
			b = append(b, ')')
		}
		b = append(b, '\n')
		w.Write(b)
	}
	for _, m := range tr.Undelivered {
		b = append(b[:0], "u=("...)
		b = strconv.AppendInt(b, m.ID, 10)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(m.From), 10)
		b = append(b, '>')
		b = strconv.AppendInt(b, int64(m.To), 10)
		b = append(b, " @"...)
		b = strconv.AppendInt(b, int64(m.SentAt), 10)
		b = append(b, ' ')
		b = appendValue(b, m.Payload)
		b = append(b, ")\n"...)
		w.Write(b)
	}
	tr.scratch = b
}

// appendValue appends fmt's %v rendering of v. The fast paths cover
// the payload shapes protocols actually send (strings, integers,
// Stringers) without boxing; everything else falls back to fmt, whose
// default single-operand formatting is %v — so the bytes are identical
// to the fmt.Fprintf they replace in every case. Dispatch order
// mirrors fmt.handleMethods: Formatter, then error, then Stringer.
func appendValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "<nil>"...)
	case string:
		return append(b, x...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case model.Time:
		return strconv.AppendInt(b, int64(x), 10)
	case model.ProcessID:
		return append(b, x.String()...)
	case bool:
		return strconv.AppendBool(b, x)
	case fmt.Formatter:
		return fmt.Appendf(b, "%v", v)
	case error:
		return append(b, x.Error()...)
	case fmt.Stringer:
		return append(b, x.String()...)
	default:
		return fmt.Append(b, v)
	}
}
