package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// Digest returns a hex SHA-256 fingerprint of the full run: the
// schedule with times, received and sent messages (payloads included),
// failure-detector samples, protocol events, the final failure pattern
// and the undelivered buffer. Two runs are byte-identical iff their
// digests match, which is how the replay regression tests and the
// parallel-sweep determinism checks state "same Config + same Seed ⇒
// same run" — the property the Lemma 4.1 indistinguishability argument
// (and every deterministic replay) rests on.
func (tr *Trace) Digest() string {
	h := sha256.New()
	tr.encode(h)
	return hex.EncodeToString(h.Sum(nil))
}

// encode writes a canonical rendering of the trace to w.
func (tr *Trace) encode(w io.Writer) {
	fmt.Fprintf(w, "n=%d stopped=%d pattern=%s\n", tr.N, tr.Stopped, tr.Pattern)
	for i := range tr.Events {
		ev := &tr.Events[i]
		fmt.Fprintf(w, "e%d p=%d t=%d fd=%s prev=%d", ev.Index, ev.P, ev.T, ev.FD, ev.PrevSameProc)
		if ev.Msg != nil {
			fmt.Fprintf(w, " rcv=(%d %d>%d @%d by%d %v)",
				ev.Msg.ID, ev.Msg.From, ev.Msg.To, ev.Msg.SentAt, ev.Msg.SentBy, ev.Msg.Payload)
		}
		for _, m := range ev.Sends {
			fmt.Fprintf(w, " snd=(%d >%d %v)", m.ID, m.To, m.Payload)
		}
		for _, pe := range ev.Events {
			fmt.Fprintf(w, " ev=(%d %d %v)", pe.Kind, pe.Instance, pe.Value)
		}
		fmt.Fprintln(w)
	}
	for _, m := range tr.Undelivered {
		fmt.Fprintf(w, "u=(%d %d>%d @%d %v)\n", m.ID, m.From, m.To, m.SentAt, m.Payload)
	}
}
