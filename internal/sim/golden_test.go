package sim

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden_traces.txt")

// goldenCase is one cell of the (automaton, policy, faults, oracle,
// pattern, seed) grid whose digest is pinned in testdata.
type goldenCase struct {
	name string
	cfg  func(seed int64) Config
}

// goldenGrid enumerates the pinned configurations. The grid was fixed
// (and its digests generated) *before* the incremental trace-index /
// engine hot-path rewrite — though after the deliberate, digest-visible
// StopQuiescent→StopAllCrashed rename, which the allcrash case pins —
// so a digest mismatch means the rewrite changed observable run
// behavior — exactly what it must never do. Extend the grid freely;
// regenerating requires
//
//	go test ./internal/sim -run TestGoldenTraces -update
//
// and a PR explaining why behavior was allowed to change.
func goldenGrid() []goldenCase {
	policies := []struct {
		name   string
		policy func() Policy
	}{
		{"fair", func() Policy { return &FairPolicy{} }},
		{"rand", func() Policy { return &RandomFairPolicy{} }},
		{"delay", func() Policy {
			return &DelayPolicy{Target: model.NewProcessSet(2), Until: 120}
		}},
		{"muzzle", func() Policy {
			return &MuzzlePolicy{Inner: &FairPolicy{}, Muzzled: model.NewProcessSet(3, 4), Until: 80}
		}},
		{"drop", func() Policy {
			return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{DropPct: 20}}
		}},
		{"jitter", func() Policy {
			return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{MaxExtraDelay: 6}}
		}},
		{"partition", func() Policy {
			return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{
				DropPct: 5, MaxExtraDelay: 3,
				Partitions: []Partition{{Side: model.NewProcessSet(1, 2, 3), From: 30, Until: 150}},
			}}
		}},
	}
	oracles := []struct {
		name   string
		oracle fd.Oracle
	}{
		{"perfect", fd.Perfect{Delay: 2}},
		{"scribe", fd.Scribe{}},
		{"evstrong", fd.EventuallyStrong{GST: 100, Delay: 3, Seed: 11, FalseRate: 10}},
		{"rstrong", fd.RealisticStrong{BaseDelay: 1, Seed: 3, JitterMax: 4}},
	}
	patterns := []struct {
		name    string
		pattern func() *model.FailurePattern
	}{
		{"clean", func() *model.FailurePattern { return model.MustPattern(6) }},
		{"crash2", func() *model.FailurePattern {
			return model.MustPattern(6).MustCrash(2, 90).MustCrash(5, 200)
		}},
	}

	var out []goldenCase
	for _, pol := range policies {
		for _, o := range oracles {
			for _, pat := range patterns {
				pol, o, pat := pol, o, pat
				out = append(out, goldenCase{
					name: fmt.Sprintf("noisy/%s/%s/%s", pol.name, o.name, pat.name),
					cfg: func(seed int64) Config {
						return Config{
							N: 6, Automaton: noisyAutomaton{}, Oracle: o.oracle,
							Pattern: pat.pattern(), Horizon: 400, Seed: seed,
							Policy: pol.policy(),
						}
					},
				})
			}
		}
	}
	// A StopWhen run: the predicate path is digest-visible (it decides
	// where the run ends), so it is pinned too.
	out = append(out, goldenCase{
		name: "chain/fair/perfect/stopwhen",
		cfg: func(seed int64) Config {
			return Config{
				N: 5, Automaton: chainAutomaton{k: 4}, Oracle: fd.Perfect{},
				Horizon: 400, Seed: seed, StopWhen: CorrectDecided(0),
			}
		},
	})
	// An all-crashed run pins the StopAllCrashed reason.
	out = append(out, goldenCase{
		name: "broadcast/fair/perfect/allcrash",
		cfg: func(seed int64) Config {
			pat := model.MustPattern(4)
			for p := 1; p <= 4; p++ {
				pat.MustCrash(model.ProcessID(p), 20)
			}
			return Config{
				N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
				Pattern: pat, Horizon: 100, Seed: seed,
			}
		},
	})
	return out
}

const goldenSeeds = 3

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden_traces.txt")
}

// computeGolden runs the whole grid and returns name → digest.
func computeGolden(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, gc := range goldenGrid() {
		for seed := int64(0); seed < goldenSeeds; seed++ {
			tr, err := Execute(gc.cfg(seed))
			if err != nil {
				t.Fatalf("%s seed %d: %v", gc.name, seed, err)
			}
			out[fmt.Sprintf("%s/seed%d", gc.name, seed)] = tr.Digest()
		}
	}
	return out
}

// TestGoldenTraces is the behavior-preservation gate for engine and
// trace-index rewrites: every digest must match the table generated at
// the pre-refactor commit, byte for byte.
func TestGoldenTraces(t *testing.T) {
	got := computeGolden(t)
	path := goldenPath(t)

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("# Pinned Trace.Digest() values; regenerate with: go test ./internal/sim -run TestGoldenTraces -update\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, got[k])
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), path)
		return
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("golden table missing (generate with -update): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Errorf("grid has %d runs, golden table has %d (regenerate with -update after reviewing)", len(got), len(want))
	}
	for name, d := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no pinned digest (new case? regenerate with -update)", name)
			continue
		}
		if d != w {
			t.Errorf("%s: digest %s… != pinned %s… — the engine changed observable behavior", name, d[:16], w[:16])
		}
	}
}
