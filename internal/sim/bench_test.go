package sim

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// noisyAutomaton keeps the message buffer busy: every process
// re-broadcasts on every 8th received message.
type noisyAutomaton struct{}

type noisyProc struct {
	self model.ProcessID
	n    int
	seen int
	sent bool
}

func (noisyAutomaton) Spawn(self model.ProcessID, n int) Process {
	return &noisyProc{self: self, n: n}
}

func (p *noisyProc) Step(in *Message, _ model.ProcessSet, _ model.Time) Actions {
	var acts Actions
	if !p.sent {
		p.sent = true
		acts.Sends = Broadcast(p.n, "seed")
	}
	if in != nil {
		p.seen++
		if p.seen%8 == 0 {
			acts.Sends = Broadcast(p.n, "echo")
		}
	}
	return acts
}

func BenchmarkEngineSteps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Execute(Config{
			N: 8, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{Delay: 2},
			Horizon: 2000, Seed: int64(i), Policy: &RandomFairPolicy{},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCausalPast(b *testing.B) {
	tr, err := Execute(Config{
		N: 8, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 4000, Seed: 3, Policy: &RandomFairPolicy{},
	})
	if err != nil {
		b.Fatal(err)
	}
	last := len(tr.Events) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.CausalPast(last)
	}
}

func BenchmarkContributors(b *testing.B) {
	tr, err := Execute(Config{
		N: 8, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 4000, Seed: 3, Policy: &RandomFairPolicy{},
	})
	if err != nil {
		b.Fatal(err)
	}
	last := len(tr.Events) - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Contributors(last)
	}
}
