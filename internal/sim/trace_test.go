package sim

import (
	"math/rand"
	"strings"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

func TestEventKindString(t *testing.T) {
	t.Parallel()
	cases := map[EventKind]string{
		KindDecide:     "decide",
		KindDeliver:    "deliver",
		KindFDOutput:   "fd-output",
		KindViewChange: "view-change",
		EventKind(42):  "EventKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestStopReasonString(t *testing.T) {
	t.Parallel()
	cases := map[StopReason]string{
		StopHorizon:    "horizon",
		StopCondition:  "condition",
		StopQuiescent:  "quiescent",
		StopAllCrashed: "all-crashed",
		StopReason(42): "StopReason(42)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestTraceStringAndMessageString(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	for _, want := range []string{"events", "stopped", "pattern"} {
		if !strings.Contains(s, want) {
			t.Errorf("Trace.String() = %q missing %q", s, want)
		}
	}
	for _, ev := range tr.Events {
		for _, m := range ev.Sends {
			ms := m.String()
			if !strings.Contains(ms, "→") || !strings.Contains(ms, "m") {
				t.Fatalf("Message.String() = %q", ms)
			}
			break
		}
	}
}

func TestCausalPastOutOfRange(t *testing.T) {
	t.Parallel()
	tr := &Trace{N: 4}
	if got := tr.CausalPast(-1); got != nil {
		t.Errorf("CausalPast(-1) = %v", got)
	}
	if got := tr.CausalPast(0); got != nil {
		t.Errorf("CausalPast(0) on empty trace = %v", got)
	}
}

func TestUndeliveredToEmptyTrace(t *testing.T) {
	t.Parallel()
	tr := &Trace{N: 4}
	for p := model.ProcessID(1); p <= 4; p++ {
		if got := tr.UndeliveredTo(p); got != nil {
			t.Errorf("UndeliveredTo(%v) on empty trace = %v, want nil", p, got)
		}
	}
}

func TestUndeliveredToSingleEventTrace(t *testing.T) {
	t.Parallel()
	// One tick: p1 broadcasts to everyone, nothing is delivered.
	tr, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{}, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(tr.Events))
	}
	if len(tr.Undelivered) != 4 {
		t.Fatalf("undelivered = %d, want the full broadcast (4)", len(tr.Undelivered))
	}
	for p := model.ProcessID(1); p <= 4; p++ {
		ms := tr.UndeliveredTo(p)
		if len(ms) != 1 {
			t.Fatalf("UndeliveredTo(%v) = %d messages, want 1", p, len(ms))
		}
		if ms[0].To != p {
			t.Fatalf("UndeliveredTo(%v) returned message to %v", p, ms[0].To)
		}
	}
	if got := tr.UndeliveredTo(model.ProcessID(9)); got != nil {
		t.Errorf("UndeliveredTo(out-of-range) = %v, want nil", got)
	}
}

func TestContributorsSingleEventTrace(t *testing.T) {
	t.Parallel()
	// A single λ step has an empty causal past beyond itself: the
	// contributor set is exactly the stepping process.
	tr, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{}, Horizon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	contr := tr.Contributors(0)
	if want := model.NewProcessSet(tr.Events[0].P); !contr.Equal(want) {
		t.Fatalf("Contributors(0) = %v, want %v", contr, want)
	}
	if past := tr.CausalPast(0); len(past) != 1 || past[0] != 0 {
		t.Fatalf("CausalPast(0) = %v, want [0]", past)
	}
}

func TestDecisionsFiltersInstance(t *testing.T) {
	t.Parallel()
	tr, err := Execute(Config{
		N: 4, Automaton: multiInstanceDecider{}, Oracle: fd.Perfect{}, Horizon: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Decisions(0)); got != 4 {
		t.Errorf("instance-0 decisions = %d, want 4", got)
	}
	if got := len(tr.Decisions(1)); got != 4 {
		t.Errorf("instance-1 decisions = %d, want 4", got)
	}
	if got := len(tr.Decisions(AnyInstance)); got != 8 {
		t.Errorf("all decisions = %d, want 8", got)
	}
	if got := len(tr.Decisions(7)); got != 0 {
		t.Errorf("instance-7 decisions = %d, want 0", got)
	}
}

// multiInstanceDecider decides instance 0 and 1 on its first step.
type multiInstanceDecider struct{}

type midProc struct{ done bool }

func (multiInstanceDecider) Spawn(model.ProcessID, int) Process { return &midProc{} }

func (p *midProc) Step(*Message, model.ProcessSet, model.Time) Actions {
	if p.done {
		return Actions{}
	}
	p.done = true
	return Actions{Events: []ProtocolEvent{
		{Kind: KindDecide, Instance: 0, Value: "a"},
		{Kind: KindDecide, Instance: 1, Value: "b"},
	}}
}

func TestEngineRejectsBadPolicyPick(t *testing.T) {
	t.Parallel()
	_, err := Execute(Config{
		N: 4, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{},
		Horizon: 50, Policy: &badPickPolicy{},
	})
	if err == nil {
		t.Fatal("out-of-range message pick accepted")
	}
}

// badPickPolicy returns an out-of-range message index once traffic
// exists.
type badPickPolicy struct{ fair FairPolicy }

func (bp *badPickPolicy) NextProcess(alive []model.ProcessID, t model.Time, r *rand.Rand) model.ProcessID {
	return bp.fair.NextProcess(alive, t, r)
}

func (bp *badPickPolicy) PickMessage(_ model.ProcessID, pending []*Message, _ model.Time, _ *rand.Rand) int {
	return len(pending) + 3 // deliberately out of range
}
