package sim

import (
	"math/rand"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

func TestFairPolicyRoundRobin(t *testing.T) {
	t.Parallel()
	fp := &FairPolicy{}
	alive := []model.ProcessID{1, 2, 3}
	r := rand.New(rand.NewSource(1))
	var seq []model.ProcessID
	for i := 0; i < 6; i++ {
		seq = append(seq, fp.NextProcess(alive, model.Time(i), r))
	}
	want := []model.ProcessID{1, 2, 3, 1, 2, 3}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("round robin = %v", seq)
		}
	}
}

func TestFairPolicyOldestFirst(t *testing.T) {
	t.Parallel()
	fp := &FairPolicy{}
	r := rand.New(rand.NewSource(1))
	if got := fp.PickMessage(1, nil, 0, r); got != -1 {
		t.Fatalf("empty buffer pick = %d, want -1 (λ)", got)
	}
	pending := []*Message{{ID: 10}, {ID: 11}}
	if got := fp.PickMessage(1, pending, 0, r); got != 0 {
		t.Fatalf("pick = %d, want oldest (0)", got)
	}
}

// TestRandomFairPolicyRoundCoverage: within any window of len(alive)
// scheduling decisions with a stable alive set, every process steps
// exactly once — condition (4) of §2.4 in bounded form.
func TestRandomFairPolicyRoundCoverage(t *testing.T) {
	t.Parallel()
	rp := &RandomFairPolicy{}
	alive := []model.ProcessID{1, 2, 3, 4, 5}
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		seen := model.EmptySet()
		for i := 0; i < len(alive); i++ {
			p := rp.NextProcess(alive, model.Time(round*5+i), r)
			if seen.Has(p) {
				t.Fatalf("round %d: %v scheduled twice before others ran", round, p)
			}
			seen = seen.Add(p)
		}
		if seen.Len() != len(alive) {
			t.Fatalf("round %d covered only %v", round, seen)
		}
	}
}

// TestRandomFairPolicyShrinkingAlive: when processes crash mid-round,
// the policy must keep scheduling only alive ones.
func TestRandomFairPolicyShrinkingAlive(t *testing.T) {
	t.Parallel()
	rp := &RandomFairPolicy{}
	r := rand.New(rand.NewSource(3))
	alive := []model.ProcessID{1, 2, 3, 4, 5}
	for i := 0; i < 100; i++ {
		if i == 40 {
			alive = []model.ProcessID{2, 4} // p1, p3, p5 crash
		}
		p := rp.NextProcess(alive, model.Time(i), r)
		ok := false
		for _, q := range alive {
			if q == p {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("step %d: scheduled dead %v", i, p)
		}
	}
}

// TestRandomFairPolicyAgeForcing: a message older than MaxAge must be
// delivered regardless of the λ/shuffle draws — condition (5) of §2.4
// in bounded form.
func TestRandomFairPolicyAgeForcing(t *testing.T) {
	t.Parallel()
	rp := &RandomFairPolicy{LambdaPct: 99, MaxAge: 10}
	r := rand.New(rand.NewSource(5))
	pending := []*Message{{ID: 1, SentAt: 0}}
	forced := 0
	for i := 0; i < 100; i++ {
		if rp.PickMessage(1, pending, 50, r) == 0 {
			forced++
		}
	}
	if forced != 100 {
		t.Fatalf("age forcing fired %d/100 times, want always", forced)
	}
}

// TestFairnessEndToEnd runs a chatty automaton under the random
// policy and audits conditions (4) and (5) on the trace: every
// correct process keeps stepping, and no message to a correct process
// is older than the forcing bound at the end.
func TestFairnessEndToEnd(t *testing.T) {
	t.Parallel()
	pat := model.MustPattern(6).MustCrash(3, 100)
	tr, err := Execute(Config{
		N: 6, Automaton: broadcastAutomaton{}, Oracle: fd.Perfect{Delay: 1},
		Pattern: pat, Horizon: 3000, Seed: 11,
		Policy: &RandomFairPolicy{MaxAge: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	// (4): every correct process stepped in the last 3n ticks.
	for _, p := range pat.Correct().Slice() {
		evs := tr.EventsOf(p)
		if len(evs) == 0 {
			t.Fatalf("%v never stepped", p)
		}
		if last := tr.Events[evs[len(evs)-1]].T; last < tr.MaxTime()-18 {
			t.Fatalf("%v starved: last step at %d of %d", p, last, tr.MaxTime())
		}
	}
	// (5): no stale message to a correct process survived.
	for _, m := range tr.Undelivered {
		if pat.Correct().Has(m.To) && tr.MaxTime()-m.SentAt > 50+model.Time(6) {
			t.Fatalf("stale message %v to correct process (age %d)", m, tr.MaxTime()-m.SentAt)
		}
	}
}

// TestOracleNoiseDeterminism: seeded noisy oracles are pure functions
// of (seed, p, q, t) — two queries agree, and so do two full runs.
func TestOracleNoiseDeterminism(t *testing.T) {
	t.Parallel()
	o1 := fd.EventuallyStrong{GST: 100, Delay: 2, Seed: 9, FalseRate: 30}
	o2 := fd.EventuallyStrong{GST: 100, Delay: 2, Seed: 9, FalseRate: 30}
	pat := model.MustPattern(5).MustCrash(4, 30)
	for tt := model.Time(0); tt < 150; tt++ {
		for p := model.ProcessID(1); p <= 5; p++ {
			if !o1.Output(pat, p, tt).Equal(o2.Output(pat, p, tt)) {
				t.Fatalf("oracle not deterministic at (%v, %d)", p, tt)
			}
		}
	}
	// A different seed must actually change something.
	o3 := fd.EventuallyStrong{GST: 100, Delay: 2, Seed: 10, FalseRate: 30}
	same := true
	for tt := model.Time(0); tt < 100 && same; tt++ {
		for p := model.ProcessID(1); p <= 5; p++ {
			if !o1.Output(pat, p, tt).Equal(o3.Output(pat, p, tt)) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}
