package sim

import (
	"fmt"

	"realisticfd/internal/model"
)

// EventRecord is one step of the schedule S with its time T[k] (§2.4),
// as recorded in the trace: the process that stepped, the message it
// received (nil for λ), the failure-detector value it saw, the
// messages it sent, and the observable protocol events it produced.
type EventRecord struct {
	Index int
	P     model.ProcessID
	T     model.Time
	// Msg is the received message, nil for the null message λ.
	Msg *Message
	// FD is the failure-detector value d seen in the step.
	FD model.ProcessSet
	// Sends are the messages created by the step.
	Sends []*Message
	// Events are the observable protocol events of the step.
	Events []ProtocolEvent
	// PrevSameProc is the index of P's previous event, or -1.
	PrevSameProc int
}

// Trace is the recorded run R = <F, H, C, S, T>: the full schedule
// with times, the sampled failure-detector history, the (final,
// possibly adversarially extended) failure pattern, and the state of
// the message buffer at the end of the run.
type Trace struct {
	N       int
	Events  []EventRecord
	History *model.History
	Pattern *model.FailurePattern
	// Undelivered is the message buffer content when the run stopped.
	Undelivered []*Message
	// Stopped reports why the run ended.
	Stopped StopReason
	// byProc[p] lists event indices of process p in order.
	byProc map[model.ProcessID][]int

	// Incremental indexes, maintained by appendEvent as the engine
	// records steps so that the query API below never rescans the
	// schedule. They are what makes per-step cost O(1) amortized even
	// under StopWhen predicates that query the trace after every step
	// (DESIGN.md §6).
	decisions  []DecisionEvent              // every decide, schedule order
	decByInst  map[int][]DecisionEvent      // decides per instance, schedule order
	evByKind   map[EventKind][]LocatedEvent // protocol events per kind, schedule order
	decided    map[int]model.ProcessSet     // processes that decided an instance
	decidedAny model.ProcessSet             // processes that decided any instance

	// alive caches Ω \ F(MaxTime): the engine keeps it current,
	// updating only when a crash takes effect. aliveValid guards
	// hand-built traces, which fall back to a pattern scan.
	alive      model.ProcessSet
	aliveValid bool

	// scratch is the digest encoder's line buffer, retained so that a
	// RunContext-reused trace digests without per-line allocation.
	scratch []byte
}

// appendEvent records ev and updates every incremental index. The
// engine is the only writer; ev.Index must equal len(tr.Events).
func (tr *Trace) appendEvent(ev EventRecord) *EventRecord {
	tr.Events = append(tr.Events, ev)
	tr.byProc[ev.P] = append(tr.byProc[ev.P], ev.Index)
	for _, pe := range ev.Events {
		if tr.evByKind == nil {
			tr.evByKind = make(map[EventKind][]LocatedEvent)
		}
		tr.evByKind[pe.Kind] = append(tr.evByKind[pe.Kind],
			LocatedEvent{EventIndex: ev.Index, P: ev.P, T: ev.T, Event: pe})
		if pe.Kind == KindDecide {
			tr.decisions = append(tr.decisions, DecisionEvent{
				EventIndex: ev.Index, P: ev.P, T: ev.T,
				Instance: pe.Instance, Value: pe.Value,
			})
			if tr.decByInst == nil {
				tr.decByInst = make(map[int][]DecisionEvent)
				tr.decided = make(map[int]model.ProcessSet)
			}
			tr.decByInst[pe.Instance] = append(tr.decByInst[pe.Instance], tr.decisions[len(tr.decisions)-1])
			tr.decided[pe.Instance] = tr.decided[pe.Instance].Add(ev.P)
			tr.decidedAny = tr.decidedAny.Add(ev.P)
		}
	}
	return &tr.Events[len(tr.Events)-1]
}

// setAlive records the engine's current alive set Ω \ F(now).
func (tr *Trace) setAlive(s model.ProcessSet) {
	tr.alive = s
	tr.aliveValid = true
}

// AliveNow returns Ω \ F(MaxTime), the processes still alive at the
// current end of the trace. For engine-built traces this is a cached
// set maintained on crash events, not a pattern scan.
func (tr *Trace) AliveNow() model.ProcessSet {
	if tr.aliveValid {
		return tr.alive
	}
	if tr.Pattern == nil {
		return model.EmptySet()
	}
	return tr.Pattern.AliveAt(tr.MaxTime())
}

// StopReason tells why a run ended.
type StopReason int

// Run stop reasons.
const (
	// StopHorizon: the configured horizon was reached.
	StopHorizon StopReason = iota + 1
	// StopCondition: the StopWhen predicate fired.
	StopCondition
	// StopQuiescent is reserved for protocol-level quiescence detection
	// (no process has anything to do and no messages are pending to
	// alive processes). The engine does not currently detect it; the
	// value is kept so existing digests and the numbering of
	// StopAllCrashed stay stable.
	StopQuiescent
	// StopAllCrashed: every process crashed, so no step can be taken.
	// Historically conflated with StopQuiescent, but an all-crashed
	// system is not quiescent — it is dead.
	StopAllCrashed
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopHorizon:
		return "horizon"
	case StopCondition:
		return "condition"
	case StopQuiescent:
		return "quiescent"
	case StopAllCrashed:
		return "all-crashed"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// EventsOf returns the indices of p's events in schedule order.
func (tr *Trace) EventsOf(p model.ProcessID) []int { return tr.byProc[p] }

// Decisions returns every decide event in the trace for the given
// instance (use AnyInstance for all instances), in schedule order.
// The returned slice is served from the trace's incremental index —
// O(1), no rescan — and is owned by the trace: callers must not
// mutate it.
func (tr *Trace) Decisions(instance int) []DecisionEvent {
	if instance == AnyInstance {
		return tr.decisions
	}
	return tr.decByInst[instance]
}

// DecisionCount returns the number of decide events of the given
// instance (AnyInstance for all) in O(1).
func (tr *Trace) DecisionCount(instance int) int {
	return len(tr.Decisions(instance))
}

// DecidedSet returns the set of processes that have emitted a decide
// event for the given instance (AnyInstance for any instance), in
// O(1). This is the query StopWhen predicates evaluate after every
// step, so it must not rescan the schedule.
func (tr *Trace) DecidedSet(instance int) model.ProcessSet {
	if instance == AnyInstance {
		return tr.decidedAny
	}
	return tr.decided[instance]
}

// AnyInstance selects events of every instance in trace queries.
const AnyInstance = -1

// DecisionEvent is a decide event located in the trace.
type DecisionEvent struct {
	EventIndex int
	P          model.ProcessID
	T          model.Time
	Instance   int
	Value      any
}

// ProtocolEvents returns all protocol events of a kind (with their
// event records), in schedule order. The slice is served from the
// trace's incremental index — O(1), no rescan — and is owned by the
// trace: callers must not mutate it. Because events only ever append,
// a per-run consumer may keep an offset into the slice and process
// only the suffix that arrived since its last call; the TRB stop
// predicate does exactly that.
func (tr *Trace) ProtocolEvents(kind EventKind) []LocatedEvent {
	return tr.evByKind[kind]
}

// LocatedEvent is a protocol event located in the trace.
type LocatedEvent struct {
	EventIndex int
	P          model.ProcessID
	T          model.Time
	Event      ProtocolEvent
}

// CausalPast returns the set of event indices in the causal past of
// event i, inclusive of i itself: the transitive closure over
// program-order edges (previous step of the same process) and message
// edges (receive ← send). This is the causal chain of §4.2 used by
// the totality definition.
func (tr *Trace) CausalPast(i int) []int {
	if i < 0 || i >= len(tr.Events) {
		return nil
	}
	seen := make([]bool, len(tr.Events))
	stack := []int{i}
	seen[i] = true
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ev := &tr.Events[j]
		if k := ev.PrevSameProc; k >= 0 && !seen[k] {
			seen[k] = true
			stack = append(stack, k)
		}
		if ev.Msg != nil && ev.Msg.SentBy >= 0 && !seen[ev.Msg.SentBy] {
			seen[ev.Msg.SentBy] = true
			stack = append(stack, ev.Msg.SentBy)
		}
	}
	out := make([]int, 0, 64)
	for j, ok := range seen {
		if ok {
			out = append(out, j)
		}
	}
	return out
}

// Contributors returns the processes that contributed a message to the
// causal chain of event i, plus the process of i itself: the set the
// totality definition of §4.2 compares against the alive set. A
// process q ≠ P(i) contributes iff some event in the causal past of i
// received a message sent by q.
func (tr *Trace) Contributors(i int) model.ProcessSet {
	past := tr.CausalPast(i)
	out := model.NewProcessSet(tr.Events[i].P)
	for _, j := range past {
		ev := &tr.Events[j]
		if ev.Msg != nil {
			out = out.Add(ev.Msg.From)
		}
	}
	return out
}

// MaxTime returns the time of the last event, or 0 for an empty trace.
func (tr *Trace) MaxTime() model.Time {
	if len(tr.Events) == 0 {
		return 0
	}
	return tr.Events[len(tr.Events)-1].T
}

// DeliveredTo counts messages received (non-λ steps) by p.
func (tr *Trace) DeliveredTo(p model.ProcessID) int {
	cnt := 0
	for _, i := range tr.byProc[p] {
		if tr.Events[i].Msg != nil {
			cnt++
		}
	}
	return cnt
}

// UndeliveredTo returns pending messages addressed to p when the run
// stopped. Condition (5) of §2.4 requires that messages to correct
// processes be eventually received; experiments that depend on it
// either run to protocol quiescence or audit this set.
func (tr *Trace) UndeliveredTo(p model.ProcessID) []*Message {
	var out []*Message
	for _, m := range tr.Undelivered {
		if m.To == p {
			out = append(out, m)
		}
	}
	return out
}

// Summary is the retained-nothing abstract of one run: everything a
// streaming sweep accumulator folds per seed, with no reference back
// into the trace. Extracting a Summary is the sanctioned way to keep
// run data past a RunContext reuse.
type Summary struct {
	// Digest is the run's full Trace.Digest fingerprint.
	Digest string
	// Stopped reports why the run ended.
	Stopped StopReason
	// Events is the number of scheduled steps.
	Events int
	// MaxTime is the time of the last event.
	MaxTime model.Time
	// Decisions counts decide events across all instances.
	Decisions int
	// Undelivered is the size of the final message buffer.
	Undelivered int
}

// Summary computes the run's streaming summary. It hashes the whole
// trace, so it costs one Digest; call it once per run.
func (tr *Trace) Summary() Summary {
	return Summary{
		Digest:      tr.Digest(),
		Stopped:     tr.Stopped,
		Events:      len(tr.Events),
		MaxTime:     tr.MaxTime(),
		Decisions:   tr.DecisionCount(AnyInstance),
		Undelivered: len(tr.Undelivered),
	}
}

// String summarizes the trace.
func (tr *Trace) String() string {
	return fmt.Sprintf("trace{%d events, t≤%d, stopped=%v, %d undelivered, pattern=%v}",
		len(tr.Events), tr.MaxTime(), tr.Stopped, len(tr.Undelivered), tr.Pattern)
}
