package sim

import (
	"fmt"

	"realisticfd/internal/model"
)

// EventRecord is one step of the schedule S with its time T[k] (§2.4),
// as recorded in the trace: the process that stepped, the message it
// received (nil for λ), the failure-detector value it saw, the
// messages it sent, and the observable protocol events it produced.
type EventRecord struct {
	Index int
	P     model.ProcessID
	T     model.Time
	// Msg is the received message, nil for the null message λ.
	Msg *Message
	// FD is the failure-detector value d seen in the step.
	FD model.ProcessSet
	// Sends are the messages created by the step.
	Sends []*Message
	// Events are the observable protocol events of the step.
	Events []ProtocolEvent
	// PrevSameProc is the index of P's previous event, or -1.
	PrevSameProc int
}

// Trace is the recorded run R = <F, H, C, S, T>: the full schedule
// with times, the sampled failure-detector history, the (final,
// possibly adversarially extended) failure pattern, and the state of
// the message buffer at the end of the run.
type Trace struct {
	N       int
	Events  []EventRecord
	History *model.History
	Pattern *model.FailurePattern
	// Undelivered is the message buffer content when the run stopped.
	Undelivered []*Message
	// Stopped reports why the run ended.
	Stopped StopReason
	// byProc[p] lists event indices of process p in order.
	byProc map[model.ProcessID][]int
}

// StopReason tells why a run ended.
type StopReason int

// Run stop reasons.
const (
	// StopHorizon: the configured horizon was reached.
	StopHorizon StopReason = iota + 1
	// StopCondition: the StopWhen predicate fired.
	StopCondition
	// StopQuiescent: no process had anything to do and no messages
	// were pending to alive processes (protocol-level quiescence; the
	// engine still counts this as a completed run).
	StopQuiescent
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopHorizon:
		return "horizon"
	case StopCondition:
		return "condition"
	case StopQuiescent:
		return "quiescent"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// EventsOf returns the indices of p's events in schedule order.
func (tr *Trace) EventsOf(p model.ProcessID) []int { return tr.byProc[p] }

// Decisions returns every decide event in the trace for the given
// instance (use AnyInstance for all instances), in schedule order.
func (tr *Trace) Decisions(instance int) []DecisionEvent {
	var out []DecisionEvent
	for i := range tr.Events {
		ev := &tr.Events[i]
		for _, pe := range ev.Events {
			if pe.Kind == KindDecide && (instance == AnyInstance || pe.Instance == instance) {
				out = append(out, DecisionEvent{
					EventIndex: i, P: ev.P, T: ev.T,
					Instance: pe.Instance, Value: pe.Value,
				})
			}
		}
	}
	return out
}

// AnyInstance selects events of every instance in trace queries.
const AnyInstance = -1

// DecisionEvent is a decide event located in the trace.
type DecisionEvent struct {
	EventIndex int
	P          model.ProcessID
	T          model.Time
	Instance   int
	Value      any
}

// ProtocolEvents returns all protocol events of a kind (with their
// event records), in schedule order.
func (tr *Trace) ProtocolEvents(kind EventKind) []LocatedEvent {
	var out []LocatedEvent
	for i := range tr.Events {
		ev := &tr.Events[i]
		for _, pe := range ev.Events {
			if pe.Kind == kind {
				out = append(out, LocatedEvent{EventIndex: i, P: ev.P, T: ev.T, Event: pe})
			}
		}
	}
	return out
}

// LocatedEvent is a protocol event located in the trace.
type LocatedEvent struct {
	EventIndex int
	P          model.ProcessID
	T          model.Time
	Event      ProtocolEvent
}

// CausalPast returns the set of event indices in the causal past of
// event i, inclusive of i itself: the transitive closure over
// program-order edges (previous step of the same process) and message
// edges (receive ← send). This is the causal chain of §4.2 used by
// the totality definition.
func (tr *Trace) CausalPast(i int) []int {
	if i < 0 || i >= len(tr.Events) {
		return nil
	}
	seen := make([]bool, len(tr.Events))
	stack := []int{i}
	seen[i] = true
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ev := &tr.Events[j]
		if k := ev.PrevSameProc; k >= 0 && !seen[k] {
			seen[k] = true
			stack = append(stack, k)
		}
		if ev.Msg != nil && ev.Msg.SentBy >= 0 && !seen[ev.Msg.SentBy] {
			seen[ev.Msg.SentBy] = true
			stack = append(stack, ev.Msg.SentBy)
		}
	}
	out := make([]int, 0, 64)
	for j, ok := range seen {
		if ok {
			out = append(out, j)
		}
	}
	return out
}

// Contributors returns the processes that contributed a message to the
// causal chain of event i, plus the process of i itself: the set the
// totality definition of §4.2 compares against the alive set. A
// process q ≠ P(i) contributes iff some event in the causal past of i
// received a message sent by q.
func (tr *Trace) Contributors(i int) model.ProcessSet {
	past := tr.CausalPast(i)
	out := model.NewProcessSet(tr.Events[i].P)
	for _, j := range past {
		ev := &tr.Events[j]
		if ev.Msg != nil {
			out = out.Add(ev.Msg.From)
		}
	}
	return out
}

// MaxTime returns the time of the last event, or 0 for an empty trace.
func (tr *Trace) MaxTime() model.Time {
	if len(tr.Events) == 0 {
		return 0
	}
	return tr.Events[len(tr.Events)-1].T
}

// DeliveredTo counts messages received (non-λ steps) by p.
func (tr *Trace) DeliveredTo(p model.ProcessID) int {
	cnt := 0
	for _, i := range tr.byProc[p] {
		if tr.Events[i].Msg != nil {
			cnt++
		}
	}
	return cnt
}

// UndeliveredTo returns pending messages addressed to p when the run
// stopped. Condition (5) of §2.4 requires that messages to correct
// processes be eventually received; experiments that depend on it
// either run to protocol quiescence or audit this set.
func (tr *Trace) UndeliveredTo(p model.ProcessID) []*Message {
	var out []*Message
	for _, m := range tr.Undelivered {
		if m.To == p {
			out = append(out, m)
		}
	}
	return out
}

// String summarizes the trace.
func (tr *Trace) String() string {
	return fmt.Sprintf("trace{%d events, t≤%d, stopped=%v, %d undelivered, pattern=%v}",
		len(tr.Events), tr.MaxTime(), tr.Stopped, len(tr.Undelivered), tr.Pattern)
}
