package sim

import (
	"math/rand"

	"realisticfd/internal/model"
)

// RunContext is a reusable allocation context for Execute: the arenas,
// queues, index maps and the Trace itself are recycled run over run
// instead of being reallocated, which is what lets a streaming sweep
// (internal/harness Reduce/Stream) hold memory flat across a million
// seeds.
//
// The contract is strict single ownership in time: the *Trace returned
// by (*RunContext).Execute — and every Message, EventRecord and index
// slice reachable from it — is valid only until the next Execute call
// on the same context. Callers that need to retain a run must either
// use the package-level Execute (a fresh context per run) or extract
// what they keep (Trace.Summary, Trace.Digest) before reusing the
// context. A RunContext is not safe for concurrent use; parallel
// sweeps give each worker its own.
type RunContext struct {
	// Per-run engine state, sized to N+1 and reset every run.
	procs   []Process
	pending []msgQueue
	lastEv  []int
	// dropped[p] collects messages to p purged from the pending queue
	// at their first dropped verdict (lossy links), in ID order, so
	// finish can reconstruct the exact Undelivered accounting a
	// purge-free engine would have produced.
	dropped [][]*Message
	// dead is the per-step scratch for DropSifter results.
	dead []*Message

	// Per-process FD output cache for Steady oracles: fdOut[p] is valid
	// through time fdUntil[p]. Horizons are dropped to -1 whenever the
	// pattern gains a crash (the Steady guarantee is conditioned on the
	// pattern not changing).
	fdOut   []model.ProcessSet
	fdUntil []model.Time

	// Message arena: chunks are retained across runs and re-carved from
	// the top. Chunk sizes start small and grow geometrically so short
	// runs on a fresh context stay cheap.
	msgChunks       [][]Message
	msgCI, msgOff   int
	msgChunkSize    int
	sendChunks      [][]*Message
	sendCI, sendOff int
	sendChunkSize   int

	// The trace and its history are recycled in place.
	trace   Trace
	history *model.History

	// The run handle and its RNG are recycled too: rand.NewSource's
	// state alone is ~5KB, which used to be reallocated every seed of a
	// streaming sweep. Re-seeding resets the generator to exactly the
	// state a fresh rand.New(rand.NewSource(seed)) starts from, so
	// replay determinism is unaffected (the golden digests pin it).
	run Run
	rng *rand.Rand
}

// NewRunContext returns an empty reusable run context.
func NewRunContext() *RunContext { return &RunContext{} }

// grow returns s extended to length n, reusing its backing array when
// the capacity allows.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reset prepares the context for a run of size n under the given
// pattern, recycling every arena and index.
func (rc *RunContext) reset(cfg Config, pattern *model.FailurePattern) *Trace {
	n := cfg.N
	rc.procs = grow(rc.procs, n+1)
	rc.pending = grow(rc.pending, n+1)
	rc.lastEv = grow(rc.lastEv, n+1)
	rc.dropped = grow(rc.dropped, n+1)
	rc.fdOut = grow(rc.fdOut, n+1)
	rc.fdUntil = grow(rc.fdUntil, n+1)
	for p := 0; p <= n; p++ {
		rc.procs[p] = nil
		q := &rc.pending[p]
		q.buf = q.buf[:0]
		q.head = 0
		rc.lastEv[p] = -1
		rc.dropped[p] = rc.dropped[p][:0]
		rc.fdUntil[p] = -1
	}
	rc.msgCI, rc.msgOff = 0, 0
	rc.sendCI, rc.sendOff = 0, 0

	if rc.history == nil {
		rc.history = model.NewHistory(n)
	} else {
		rc.history.Reset(n)
	}

	// Seed the schedule's capacity modestly on a fresh context: StopWhen
	// runs often end orders of magnitude before the horizon, so sizing
	// to the horizon would waste the whole block; growth beyond this is
	// amortized by append's doubling, and a reused context keeps its
	// high-water capacity.
	eventCap := int(cfg.Horizon)
	if eventCap > 512 {
		eventCap = 512
	}
	tr := &rc.trace
	tr.N = n
	if tr.Events == nil {
		tr.Events = make([]EventRecord, 0, eventCap)
	} else {
		tr.Events = tr.Events[:0]
	}
	tr.History = rc.history
	tr.Pattern = pattern
	tr.Undelivered = tr.Undelivered[:0]
	tr.Stopped = 0
	if tr.byProc == nil {
		tr.byProc = make(map[model.ProcessID][]int, n)
	} else {
		for p, idx := range tr.byProc {
			tr.byProc[p] = idx[:0]
		}
	}
	tr.decisions = tr.decisions[:0]
	for inst, d := range tr.decByInst {
		tr.decByInst[inst] = d[:0]
	}
	for kind, ev := range tr.evByKind {
		tr.evByKind[kind] = ev[:0]
	}
	clear(tr.decided)
	tr.decidedAny = model.EmptySet()
	tr.alive = model.EmptySet()
	tr.aliveValid = false
	return tr
}

// allocMsg carves one Message from the context's arena.
func (rc *RunContext) allocMsg() *Message {
	for {
		if rc.msgCI < len(rc.msgChunks) {
			c := rc.msgChunks[rc.msgCI]
			if rc.msgOff < len(c) {
				m := &c[rc.msgOff]
				rc.msgOff++
				return m
			}
			rc.msgCI++
			rc.msgOff = 0
			continue
		}
		if rc.msgChunkSize == 0 {
			rc.msgChunkSize = 32
		} else if rc.msgChunkSize < 1024 {
			rc.msgChunkSize *= 4
		}
		rc.msgChunks = append(rc.msgChunks, make([]Message, rc.msgChunkSize))
	}
}

// allocSends carves a zero-length, capacity-n pointer slice from the
// context's arena for one event's Sends.
func (rc *RunContext) allocSends(n int) []*Message {
	for {
		if rc.sendCI < len(rc.sendChunks) {
			c := rc.sendChunks[rc.sendCI]
			if rc.sendOff+n <= len(c) {
				s := c[rc.sendOff : rc.sendOff : rc.sendOff+n]
				rc.sendOff += n
				return s
			}
			rc.sendCI++
			rc.sendOff = 0
			continue
		}
		size := rc.sendChunkSize
		if size == 0 {
			size = 64
		} else if size < 2048 {
			size *= 4
		}
		if n > size {
			size = n
		}
		rc.sendChunkSize = size
		rc.sendChunks = append(rc.sendChunks, make([]*Message, size))
	}
}
