package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"realisticfd/internal/model"
)

// Partition is one scripted network partition: while From ≤ t < Until,
// no message crosses between Side and its complement Ω \ Side. At time
// Until the partition heals and the withheld traffic becomes
// deliverable again (the messages waited in the buffer, as §2.3's
// model prescribes — a partition delays, it does not destroy).
type Partition struct {
	// Side is one side of the cut; the other side is Ω \ Side.
	Side model.ProcessSet
	// From is the first partitioned instant.
	From model.Time
	// Until is the heal time: the first instant at which cross-cut
	// traffic flows again. Until ≤ From makes the partition inert.
	Until model.Time
}

// Blocks reports whether the partition forbids delivering a message
// from p to q at time t.
func (pt Partition) Blocks(p, q model.ProcessID, t model.Time) bool {
	return t >= pt.From && t < pt.Until && pt.Side.Has(p) != pt.Side.Has(q)
}

// String renders the partition compactly.
func (pt Partition) String() string {
	return fmt.Sprintf("%v|rest@%d..%d", pt.Side, pt.From, pt.Until)
}

// Edge is one undirected link {A, B} of a communication graph. The
// scenario DSL generates topologies as edge sets and expresses
// partitions as cuts of those sets (DESIGN.md §8).
type Edge struct {
	A, B model.ProcessID
}

// Canon returns the edge with its endpoints ordered A ≤ B, the
// canonical form used for set membership.
func (e Edge) Canon() Edge {
	if e.B < e.A {
		return Edge{A: e.B, B: e.A}
	}
	return e
}

// String renders the edge, e.g. "p1-p4".
func (e Edge) String() string {
	return fmt.Sprintf("%v-%v", e.A, e.B)
}

// EdgeCut is a topology-aware partition: while From ≤ t < Until no
// message crosses any edge of Edges, in either direction. At Until the
// cut heals and the withheld traffic becomes deliverable again. Unlike
// Partition, which severs a ProcessSet from its complement, an EdgeCut
// severs an explicit edge set — typically a cut of a generated graph —
// so arbitrary, non-bipartition link failures are expressible.
type EdgeCut struct {
	// Edges are the severed links (direction-insensitive).
	Edges []Edge
	// From is the first severed instant.
	From model.Time
	// Until is the heal time; Until ≤ From makes the cut inert.
	Until model.Time
}

// Blocks reports whether the cut forbids delivering a message from p
// to q at time t.
func (ec EdgeCut) Blocks(p, q model.ProcessID, t model.Time) bool {
	if t < ec.From || t >= ec.Until {
		return false
	}
	want := Edge{A: p, B: q}.Canon()
	for _, e := range ec.Edges {
		if e.Canon() == want {
			return true
		}
	}
	return false
}

// String renders the cut compactly.
func (ec EdgeCut) String() string {
	es := make([]string, len(ec.Edges))
	for i, e := range ec.Edges {
		es[i] = e.String()
	}
	return fmt.Sprintf("cut{%s}@%d..%d", strings.Join(es, " "), ec.From, ec.Until)
}

// LinkFaults describes a composable set of link-level faults layered on
// top of any scheduling policy by FaultyPolicy. Every fault decision is
// a pure function of the fault seed and the message identity, so a run
// replayed with the same sim.Config (and therefore the same engine RNG
// stream) reproduces the exact same losses, delays and partitions.
//
// Liveness caveat: DropPct > 0 models a lossy link without
// retransmission, so condition (5) of §2.4 (every message to a correct
// process is eventually received) no longer holds and only safety
// properties should be asserted. MaxExtraDelay and healed Partitions
// and Cuts preserve eventual delivery within a sufficient horizon; a
// cut whose Until lies at or beyond the horizon permanently severs its
// links (how the scenario DSL embeds sparse topologies).
type LinkFaults struct {
	// DropPct is the percentage (0..100) of messages lost forever.
	DropPct int
	// MaxExtraDelay adds a per-message extra latency drawn uniformly
	// from [0, MaxExtraDelay] ticks: the message is invisible to its
	// destination until SentAt + extra.
	MaxExtraDelay model.Time
	// Partitions are scripted cuts, each healing at its Until time.
	Partitions []Partition
	// Cuts are topology-aware partitions: scripted severings of
	// explicit edge sets.
	Cuts []EdgeCut
	// DropSteps, when non-empty, makes the loss rate piecewise-constant
	// in send time: a message sent at t is dropped with the Pct of the
	// last step whose From ≤ t (DropPct applies before the first step).
	// Steps must be sorted by From. This is the lowering target of the
	// fault-plan IR's timed drop actions.
	DropSteps []RateStep
	// DelaySteps likewise schedules the extra-delay bound by send time
	// (MaxExtraDelay applies before the first step).
	DelaySteps []DelayStep
}

// RateStep is one piecewise-constant segment of a drop-rate timeline:
// messages sent at or after From are lost with probability Pct percent,
// until a later step supersedes it.
type RateStep struct {
	From model.Time
	Pct  int
}

// DelayStep is one piecewise-constant segment of an extra-delay
// timeline: messages sent at or after From draw their extra latency
// uniformly from [0, Max] ticks.
type DelayStep struct {
	From model.Time
	Max  model.Time
}

// dropPctAt returns the loss rate for a message sent at t.
func (lf LinkFaults) dropPctAt(t model.Time) int {
	pct := lf.DropPct
	for _, s := range lf.DropSteps {
		if s.From > t {
			break
		}
		pct = s.Pct
	}
	return pct
}

// delayBoundAt returns the extra-delay bound for a message sent at t.
func (lf LinkFaults) delayBoundAt(t model.Time) model.Time {
	d := lf.MaxExtraDelay
	for _, s := range lf.DelaySteps {
		if s.From > t {
			break
		}
		d = s.Max
	}
	return d
}

// lossy reports whether any segment of the plan loses messages.
func (lf LinkFaults) lossy() bool {
	if lf.DropPct > 0 {
		return true
	}
	for _, s := range lf.DropSteps {
		if s.Pct > 0 {
			return true
		}
	}
	return false
}

// Active reports whether the fault plan perturbs anything at all.
func (lf LinkFaults) Active() bool {
	return lf.DropPct > 0 || lf.MaxExtraDelay > 0 || len(lf.Partitions) > 0 || len(lf.Cuts) > 0 ||
		len(lf.DropSteps) > 0 || len(lf.DelaySteps) > 0
}

// LossFree reports whether every message is eventually deliverable
// (no drops and every partition heals), i.e. whether liveness claims
// survive the fault plan.
func (lf LinkFaults) LossFree() bool {
	return !lf.lossy()
}

// String renders the plan, e.g. "faults{drop=10%,delay≤4,part=[{p1,p2}|rest@40..400]}".
func (lf LinkFaults) String() string {
	if !lf.Active() {
		return "faults{none}"
	}
	var parts []string
	if lf.DropPct > 0 {
		parts = append(parts, fmt.Sprintf("drop=%d%%", lf.DropPct))
	}
	if lf.MaxExtraDelay > 0 {
		parts = append(parts, fmt.Sprintf("delay≤%d", lf.MaxExtraDelay))
	}
	if len(lf.Partitions) > 0 {
		ps := make([]string, len(lf.Partitions))
		for i, p := range lf.Partitions {
			ps[i] = p.String()
		}
		parts = append(parts, "part=["+strings.Join(ps, " ")+"]")
	}
	if len(lf.Cuts) > 0 {
		cs := make([]string, len(lf.Cuts))
		for i, c := range lf.Cuts {
			cs[i] = c.String()
		}
		parts = append(parts, "cuts=["+strings.Join(cs, " ")+"]")
	}
	if len(lf.DropSteps) > 0 {
		ss := make([]string, len(lf.DropSteps))
		for i, s := range lf.DropSteps {
			ss[i] = fmt.Sprintf("%d%%@%d", s.Pct, s.From)
		}
		parts = append(parts, "drops=["+strings.Join(ss, " ")+"]")
	}
	if len(lf.DelaySteps) > 0 {
		ss := make([]string, len(lf.DelaySteps))
		for i, s := range lf.DelaySteps {
			ss[i] = fmt.Sprintf("≤%d@%d", s.Max, s.From)
		}
		parts = append(parts, "delays=["+strings.Join(ss, " ")+"]")
	}
	return "faults{" + strings.Join(parts, ",") + "}"
}

// FaultyPolicy layers LinkFaults on top of an inner scheduling policy:
// messages the faults make invisible at time t (dropped forever,
// still in their extra-delay window, or caught behind an unhealed
// partition) are hidden from the inner policy, which schedules the
// remaining traffic exactly as it would have. Composability is the
// point — any Policy (fair, random-fair, adversarial) can be wrapped.
//
// The per-message fault lottery is seeded once per run: explicitly via
// Seed, or, when Seed is zero, from the engine's RNG on first use.
// Either way the decision for message m depends only on (seed, m.ID),
// never on scheduling order, so replays with the same Config are
// byte-identical and the Lemma 4.1 indistinguishability argument keeps
// its footing under faulty links.
//
// Like every Policy, a FaultyPolicy is a stateful per-run object:
// construct a fresh one for each run.
type FaultyPolicy struct {
	// Inner supplies the underlying schedule; nil means FairPolicy.
	Inner Policy
	// Faults is the fault plan.
	Faults LinkFaults
	// Seed overrides the fault lottery seed; 0 draws one from the
	// engine RNG on first use (still deterministic per run).
	Seed uint64

	seed    uint64
	seeded  bool
	visible []*Message // scratch: reused per PickMessage call
	origIdx []int      // scratch: visible[i] = pending[origIdx[i]]
	// cutSets holds the canonicalized edge set of each Faults.Cuts
	// entry, built lazily so membership tests stay O(1) per message
	// even for the large cuts sparse topologies compile into.
	cutSets []map[Edge]struct{}
	// verdicts caches the (drop, ready-time) lottery per message ID so
	// a delay-blocked message is hashed once, not once per step. The
	// cache stays bounded by the in-flight message count: the engine
	// purges a message from pending at its first dropped verdict (via
	// SiftDropped, which evicts the entry), and PickMessage evicts the
	// entry of the message it delivers.
	verdicts map[int64]faultVerdict
}

// faultVerdict is the cached per-message lottery outcome.
type faultVerdict struct {
	dropped bool
	ready   model.Time // SentAt + extra delay
}

var _ Policy = (*FaultyPolicy)(nil)

func (fp *FaultyPolicy) inner() Policy {
	if fp.Inner == nil {
		fp.Inner = &FairPolicy{}
	}
	return fp.Inner
}

func (fp *FaultyPolicy) ensureSeed(r *rand.Rand) {
	if fp.seeded {
		return
	}
	if fp.Seed != 0 {
		fp.seed = fp.Seed
	} else {
		fp.seed = r.Uint64()
	}
	fp.seeded = true
}

// mix64 is a splitmix64 finalizer: the per-message fault lottery.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Dropped reports whether the plan loses message m forever. With
// DropSteps the rate is the one in force at m.SentAt; the lottery hash
// itself never depends on the rate, so two plans that agree on the rate
// at m.SentAt agree on m's fate.
func (fp *FaultyPolicy) Dropped(m *Message) bool {
	pct := fp.Faults.DropPct
	if len(fp.Faults.DropSteps) > 0 {
		pct = fp.Faults.dropPctAt(m.SentAt)
	}
	if pct <= 0 {
		return false
	}
	return mix64(fp.seed^uint64(m.ID))%100 < uint64(pct)
}

// ExtraDelay returns the extra latency the plan imposes on m, drawn
// from the delay bound in force at m.SentAt.
func (fp *FaultyPolicy) ExtraDelay(m *Message) model.Time {
	d := fp.Faults.MaxExtraDelay
	if len(fp.Faults.DelaySteps) > 0 {
		d = fp.Faults.delayBoundAt(m.SentAt)
	}
	if d <= 0 {
		return 0
	}
	return model.Time(mix64(fp.seed^uint64(m.ID)<<1^0xd1b54a32d192ed03) % uint64(d+1))
}

// verdict returns m's cached fault-lottery outcome, computing it on
// first sight.
func (fp *FaultyPolicy) verdict(m *Message) faultVerdict {
	if v, ok := fp.verdicts[m.ID]; ok {
		return v
	}
	if fp.verdicts == nil {
		fp.verdicts = make(map[int64]faultVerdict)
	}
	v := faultVerdict{dropped: fp.Dropped(m), ready: m.SentAt + fp.ExtraDelay(m)}
	fp.verdicts[m.ID] = v
	return v
}

// cutSet returns the canonical edge set of cut i, building it on
// first use.
func (fp *FaultyPolicy) cutSet(i int) map[Edge]struct{} {
	if fp.cutSets == nil {
		fp.cutSets = make([]map[Edge]struct{}, len(fp.Faults.Cuts))
	}
	if fp.cutSets[i] == nil {
		edges := fp.Faults.Cuts[i].Edges
		set := make(map[Edge]struct{}, len(edges))
		for _, e := range edges {
			set[e.Canon()] = struct{}{}
		}
		fp.cutSets[i] = set
	}
	return fp.cutSets[i]
}

// Deliverable reports whether m may reach its destination at time t
// under the fault plan (assuming the fault seed is fixed).
func (fp *FaultyPolicy) Deliverable(m *Message, t model.Time) bool {
	if v := fp.verdict(m); v.dropped || t < v.ready {
		return false
	}
	for _, pt := range fp.Faults.Partitions {
		if pt.Blocks(m.From, m.To, t) {
			return false
		}
	}
	for i, ec := range fp.Faults.Cuts {
		if t < ec.From || t >= ec.Until {
			continue
		}
		if _, cut := fp.cutSet(i)[Edge{A: m.From, B: m.To}.Canon()]; cut {
			return false
		}
	}
	return true
}

// DropSifter is implemented by policies under which some pending
// messages are permanently undeliverable. The engine consults it
// before every PickMessage and purges the reported messages from the
// pending queue — they still count as undelivered in the trace, but
// no later step rescans them. Implementations must report a subset of
// pending in its original order, and a message once reported must
// never have been (and never be) deliverable.
type DropSifter interface {
	// SiftDropped appends the permanently dropped messages of pending
	// to dst and returns it. pending is the destination's queue in
	// sending order; the returned messages keep that order.
	SiftDropped(pending []*Message, dst []*Message) []*Message
}

var _ DropSifter = (*FaultyPolicy)(nil)

// SiftDropped implements DropSifter: every pending message whose drop
// lottery says "lost forever" is reported for purging, and its cached
// verdict is evicted — it will never be queried again.
func (fp *FaultyPolicy) SiftDropped(pending []*Message, dst []*Message) []*Message {
	if !fp.seeded || !fp.Faults.lossy() {
		return dst
	}
	for _, m := range pending {
		if fp.verdict(m).dropped {
			dst = append(dst, m)
			delete(fp.verdicts, m.ID)
		}
	}
	return dst
}

// NextProcess implements Policy by delegating to the inner policy.
func (fp *FaultyPolicy) NextProcess(alive []model.ProcessID, t model.Time, r *rand.Rand) model.ProcessID {
	fp.ensureSeed(r)
	return fp.inner().NextProcess(alive, t, r)
}

// PickMessage implements Policy: the inner policy chooses among the
// messages the faults let through, and the choice is mapped back to an
// index into the full pending slice.
func (fp *FaultyPolicy) PickMessage(p model.ProcessID, pending []*Message, t model.Time, r *rand.Rand) int {
	fp.ensureSeed(r)
	fp.visible = fp.visible[:0]
	fp.origIdx = fp.origIdx[:0]
	for i, m := range pending {
		if fp.Deliverable(m, t) {
			fp.visible = append(fp.visible, m)
			fp.origIdx = append(fp.origIdx, i)
		}
	}
	idx := fp.inner().PickMessage(p, fp.visible, t, r)
	if idx < 0 {
		return -1
	}
	if idx >= len(fp.origIdx) {
		return -1
	}
	// The picked message leaves the buffer; its verdict is dead weight.
	delete(fp.verdicts, fp.visible[idx].ID)
	return fp.origIdx[idx]
}
