package sim

import (
	"math/rand"

	"realisticfd/internal/model"
)

// Policy decides the non-determinism of a run: which process takes the
// next step and which pending message (if any) it receives. Policies
// are stateful per-run objects; construct a fresh policy for every
// run and do not share across goroutines.
//
// The engine guarantees nothing beyond what the policy implements; the
// fair policies below realize conditions (4) and (5) of §2.4 (every
// correct process steps infinitely often, every message to a correct
// process is eventually received), while adversarial policies
// deliberately withhold messages the way the Lemma 4.1 proof does.
type Policy interface {
	// NextProcess picks which of the alive processes steps at time t.
	// alive is non-empty and sorted by ID.
	NextProcess(alive []model.ProcessID, t model.Time, r *rand.Rand) model.ProcessID

	// PickMessage picks the index into pending of the message p
	// receives at time t, or -1 for the null message λ. pending holds
	// the buffered messages destined to p in sending order.
	PickMessage(p model.ProcessID, pending []*Message, t model.Time, r *rand.Rand) int
}

// FairPolicy is the deterministic baseline: round-robin over alive
// processes and oldest-first delivery. Every correct process steps
// every ≤ n ticks and every message is delivered as soon as its
// destination steps, which realizes run conditions (4) and (5) within
// any horizon that outlives the protocol.
type FairPolicy struct {
	cursor int
}

var _ Policy = (*FairPolicy)(nil)

// NextProcess implements Policy by rotating through the alive set.
func (fp *FairPolicy) NextProcess(alive []model.ProcessID, _ model.Time, _ *rand.Rand) model.ProcessID {
	p := alive[fp.cursor%len(alive)]
	fp.cursor++
	return p
}

// PickMessage implements Policy: oldest first, λ only when idle.
func (fp *FairPolicy) PickMessage(_ model.ProcessID, pending []*Message, _ model.Time, _ *rand.Rand) int {
	if len(pending) == 0 {
		return -1
	}
	return 0
}

// RandomFairPolicy explores schedules randomly while staying fair: in
// every "round" each alive process steps exactly once in a shuffled
// order, messages are usually delivered oldest-first but sometimes a
// younger message overtakes or a λ step is inserted, and any message
// older than MaxAge ticks is delivered immediately. Seeded via the
// engine's rng, so runs replay exactly.
type RandomFairPolicy struct {
	// LambdaPct is the probability (in percent) of a λ step despite
	// pending messages. Default 10.
	LambdaPct int
	// ShufflePct is the probability (in percent) that a random pending
	// message is picked instead of the oldest. Default 30.
	ShufflePct int
	// MaxAge forces delivery of messages older than this many ticks.
	// Default 8·n ticks (set on first use when zero).
	MaxAge model.Time

	order []model.ProcessID
	pos   int
}

var _ Policy = (*RandomFairPolicy)(nil)

// NextProcess implements Policy with shuffled rounds.
func (rp *RandomFairPolicy) NextProcess(alive []model.ProcessID, _ model.Time, r *rand.Rand) model.ProcessID {
	// Rebuild the round order when exhausted or when membership
	// changed (crashes shrink the alive set mid-round).
	if rp.pos >= len(rp.order) || !subsetOfAlive(rp.order[rp.pos:], alive) {
		rp.order = append(rp.order[:0], alive...)
		r.Shuffle(len(rp.order), func(i, j int) {
			rp.order[i], rp.order[j] = rp.order[j], rp.order[i]
		})
		rp.pos = 0
	}
	p := rp.order[rp.pos]
	rp.pos++
	return p
}

func subsetOfAlive(order []model.ProcessID, alive []model.ProcessID) bool {
	var av model.ProcessSet
	for _, p := range alive {
		av = av.Add(p)
	}
	for _, p := range order {
		if !av.Has(p) {
			return false
		}
	}
	return true
}

// PickMessage implements Policy.
func (rp *RandomFairPolicy) PickMessage(_ model.ProcessID, pending []*Message, t model.Time, r *rand.Rand) int {
	if len(pending) == 0 {
		return -1
	}
	maxAge := rp.MaxAge
	if maxAge == 0 {
		maxAge = 64
	}
	if t-pending[0].SentAt > maxAge {
		return 0 // fairness forcing: the oldest message must go through
	}
	lambda := rp.LambdaPct
	if lambda == 0 {
		lambda = 10
	}
	if r.Intn(100) < lambda {
		return -1
	}
	shuffle := rp.ShufflePct
	if shuffle == 0 {
		shuffle = 30
	}
	if r.Intn(100) < shuffle {
		return r.Intn(len(pending))
	}
	return 0
}

// DelayPolicy is the adversarial policy of the Lemma 4.1 construction:
// while t < Until, every message from or to a process in Target is
// withheld (run R1 "delays the reception of all messages by p_j").
// Other traffic follows oldest-first delivery. After Until the
// embargo lifts and the policy behaves like FairPolicy.
type DelayPolicy struct {
	// Target is the set of embargoed processes.
	Target model.ProcessSet
	// Until is the first time at which embargoed traffic may flow.
	Until model.Time

	fair FairPolicy
}

var _ Policy = (*DelayPolicy)(nil)

// NextProcess implements Policy via round-robin.
func (dp *DelayPolicy) NextProcess(alive []model.ProcessID, t model.Time, r *rand.Rand) model.ProcessID {
	return dp.fair.NextProcess(alive, t, r)
}

// PickMessage implements Policy: oldest non-embargoed message.
func (dp *DelayPolicy) PickMessage(p model.ProcessID, pending []*Message, t model.Time, _ *rand.Rand) int {
	for i, m := range pending {
		if t < dp.Until && (dp.Target.Has(m.From) || dp.Target.Has(m.To)) {
			continue
		}
		return i
	}
	return -1
}

// MuzzlePolicy starves a set of processes of steps until a release
// time: the Lemma 4.1 run R1 requires that "no process p_k, k ≠ i, j,
// takes any step after its last step in the causal past of e, until
// time t". Muzzled processes are simply never scheduled while the
// muzzle holds (the model permits this: only *correct* processes must
// step infinitely often, and the muzzle is finite).
type MuzzlePolicy struct {
	// Inner supplies scheduling for non-muzzled processes.
	Inner Policy
	// Muzzled processes take no steps while t < Until.
	Muzzled model.ProcessSet
	// Until lifts the muzzle.
	Until model.Time
}

var _ Policy = (*MuzzlePolicy)(nil)

// NextProcess implements Policy, filtering muzzled processes.
func (mp *MuzzlePolicy) NextProcess(alive []model.ProcessID, t model.Time, r *rand.Rand) model.ProcessID {
	if t >= mp.Until {
		return mp.Inner.NextProcess(alive, t, r)
	}
	free := make([]model.ProcessID, 0, len(alive))
	for _, p := range alive {
		if !mp.Muzzled.Has(p) {
			free = append(free, p)
		}
	}
	if len(free) == 0 {
		// Everyone is muzzled; the schedule must still advance.
		return mp.Inner.NextProcess(alive, t, r)
	}
	return mp.Inner.NextProcess(free, t, r)
}

// PickMessage implements Policy by delegating to Inner.
func (mp *MuzzlePolicy) PickMessage(p model.ProcessID, pending []*Message, t model.Time, r *rand.Rand) int {
	return mp.Inner.PickMessage(p, pending, t, r)
}
