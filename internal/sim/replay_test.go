package sim

import (
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// replayCases enumerates every scheduling policy with a fresh-state
// constructor: policies are stateful per-run objects, so each replay
// builds a new one (and a new pattern — the engine extends patterns in
// place).
func replayCases() []struct {
	name   string
	policy func() Policy
} {
	return []struct {
		name   string
		policy func() Policy
	}{
		{"fair", func() Policy { return &FairPolicy{} }},
		{"random-fair", func() Policy { return &RandomFairPolicy{} }},
		{"delay-adversary", func() Policy {
			return &DelayPolicy{Target: model.NewProcessSet(2), Until: 120}
		}},
		{"muzzle-adversary", func() Policy {
			return &MuzzlePolicy{Inner: &FairPolicy{}, Muzzled: model.NewProcessSet(3, 4), Until: 80}
		}},
		{"faulty-drop", func() Policy {
			return &FaultyPolicy{Faults: LinkFaults{DropPct: 20}}
		}},
		{"faulty-delay", func() Policy {
			return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{MaxExtraDelay: 6}}
		}},
		{"faulty-partition", func() Policy {
			return &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{
				DropPct: 5, MaxExtraDelay: 3,
				Partitions: []Partition{{Side: model.NewProcessSet(1, 2, 3), From: 30, Until: 150}},
			}}
		}},
	}
}

// TestDeterministicReplayAllPolicies is the regression gate for the
// engine's replay guarantee: the same Config and Seed must reproduce a
// byte-identical trace under every policy, faulty links included.
// Lemma 4.1's indistinguishability argument (and the parallel sweep
// harness's ordering guarantee) both assume exactly this.
func TestDeterministicReplayAllPolicies(t *testing.T) {
	t.Parallel()
	for _, tc := range replayCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(seed int64) string {
				pat := model.MustPattern(6).MustCrash(2, 90)
				tr, err := Execute(Config{
					N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{Delay: 2},
					Pattern: pat, Horizon: 600, Seed: seed, Policy: tc.policy(),
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				return tr.Digest()
			}
			for _, seed := range []int64{1, 7, 42} {
				if a, b := run(seed), run(seed); a != b {
					t.Fatalf("seed %d: replay diverged (%s vs %s)", seed, a[:12], b[:12])
				}
			}
		})
	}
}

// TestSeedActuallyMatters is the complement: with randomized policies,
// different seeds must explore different schedules — otherwise the
// sweeps explore nothing.
func TestSeedActuallyMatters(t *testing.T) {
	t.Parallel()
	run := func(seed int64) string {
		tr, err := Execute(Config{
			N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
			Horizon: 600, Seed: seed, Policy: &RandomFairPolicy{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Digest()
	}
	digests := make(map[string]bool)
	for seed := int64(0); seed < 8; seed++ {
		digests[run(seed)] = true
	}
	if len(digests) < 2 {
		t.Fatal("8 seeds produced a single schedule; randomness is dead")
	}
}
