// Package sim is a deterministic discrete-event simulator for the
// asynchronous model of §2.3–2.4 of "A Realistic Look At Failure
// Detectors": computation proceeds in atomic steps in which a process
// (1) receives one message or the null message λ, (2) queries its
// failure-detector module, and (3) changes state and sends messages.
//
// A run is driven by a seeded scheduler, so identical configurations
// replay identical runs — the property the Lemma 4.1 adversary (E2)
// exploits to realize the paper's indistinguishability argument: two
// runs whose failure patterns agree through time t, executed with the
// same seed and a realistic detector, are identical through t.
//
// Deliberate generalization (documented in DESIGN.md): a step may send
// a finite set of messages rather than exactly one; broadcast-heavy
// protocols expand naturally and the equivalence is standard.
package sim

import (
	"fmt"

	"realisticfd/internal/model"
)

// Message is a protocol message in the message buffer (§2.3). Payload
// is owned by the protocol and must be treated as immutable once sent.
type Message struct {
	// ID is unique within a run, in sending order, starting at 1.
	ID int64
	// From and To identify sender and destination.
	From, To model.ProcessID
	// SentAt is the global time of the sending step.
	SentAt model.Time
	// SentBy is the trace index of the sending event, or -1 for
	// messages injected from outside the run.
	SentBy int
	// Payload is the protocol content.
	Payload any
}

// String renders a short description of the message.
func (m *Message) String() string {
	return fmt.Sprintf("m%d %v→%v @%d", m.ID, m.From, m.To, m.SentAt)
}

// Send is a message emission requested by a protocol step.
type Send struct {
	To      model.ProcessID
	Payload any
}

// Broadcast builds a Send to every process in Ω (including self, as
// the flooding algorithms of Chandra-Toueg assume).
func Broadcast(n int, payload any) []Send {
	out := make([]Send, 0, n)
	for p := 1; p <= n; p++ {
		out = append(out, Send{To: model.ProcessID(p), Payload: payload})
	}
	return out
}

// EventKind labels observable protocol events recorded in the trace.
type EventKind int

// Observable protocol event kinds.
const (
	// KindDecide marks a consensus decision event.
	KindDecide EventKind = iota + 1
	// KindDeliver marks a broadcast delivery (TRB, atomic broadcast).
	KindDeliver
	// KindFDOutput marks an emulated failure-detector output change
	// (the output(P) variable of the T(D⇒P) reduction).
	KindFDOutput
	// KindViewChange marks a group-membership view installation.
	KindViewChange
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindDecide:
		return "decide"
	case KindDeliver:
		return "deliver"
	case KindFDOutput:
		return "fd-output"
	case KindViewChange:
		return "view-change"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ProtocolEvent is an observable event emitted by a protocol step:
// decisions, deliveries, emulated-detector outputs. Experiments and
// property checkers consume these from the trace.
type ProtocolEvent struct {
	Kind EventKind
	// Instance distinguishes concurrent protocol instances (consensus
	// instance number, TRB instance, view number).
	Instance int
	// Value is the decided/delivered value or emitted set.
	Value any
}

// Actions is what a protocol step returns: messages to send and
// observable events that occurred during the step.
type Actions struct {
	Sends  []Send
	Events []ProtocolEvent
}

// Process is one deterministic automaton A_i bound to a process. Step
// is the atomic step of §2.3: in is the received message (nil for λ),
// susp the value seen from the failure-detector module, now the global
// time (exposed for tracing only — protocol logic must not branch on
// it in ways the paper's asynchronous model would forbid; protocols in
// this repository use it only for logging).
type Process interface {
	Step(in *Message, susp model.ProcessSet, now model.Time) Actions
}

// Automaton is a protocol: a family of deterministic automata, one per
// process (§2.3).
type Automaton interface {
	// Spawn instantiates the automaton of process self in a system of
	// n processes.
	Spawn(self model.ProcessID, n int) Process
}
