package sim

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"realisticfd/internal/fd"
	"realisticfd/internal/model"
)

// encodeReference is the original fmt-based trace rendering the
// append-based encoder replaced. The digest bytes are pinned by the
// golden-trace suite; this reference keeps the equivalence checkable
// on arbitrary traces, payload shapes included.
func encodeReference(tr *Trace, w io.Writer) {
	fmt.Fprintf(w, "n=%d stopped=%d pattern=%s\n", tr.N, tr.Stopped, tr.Pattern)
	for i := range tr.Events {
		ev := &tr.Events[i]
		fmt.Fprintf(w, "e%d p=%d t=%d fd=%s prev=%d", ev.Index, ev.P, ev.T, ev.FD, ev.PrevSameProc)
		if ev.Msg != nil {
			fmt.Fprintf(w, " rcv=(%d %d>%d @%d by%d %v)",
				ev.Msg.ID, ev.Msg.From, ev.Msg.To, ev.Msg.SentAt, ev.Msg.SentBy, ev.Msg.Payload)
		}
		for _, m := range ev.Sends {
			fmt.Fprintf(w, " snd=(%d >%d %v)", m.ID, m.To, m.Payload)
		}
		for _, pe := range ev.Events {
			fmt.Fprintf(w, " ev=(%d %d %v)", pe.Kind, pe.Instance, pe.Value)
		}
		fmt.Fprintln(w)
	}
	for _, m := range tr.Undelivered {
		fmt.Fprintf(w, "u=(%d %d>%d @%d %v)\n", m.ID, m.From, m.To, m.SentAt, m.Payload)
	}
}

// payloadAutomaton broadcasts a different payload shape per process:
// every branch of appendValue's type switch must render exactly as
// fmt's %v did.
type payloadAutomaton struct{}

type payloadProc struct {
	self model.ProcessID
	n    int
	sent bool
}

type structPayload struct {
	Round int
	Est   string
}

type stringerPayload struct{ tag string }

func (sp stringerPayload) String() string { return "tagged:" + sp.tag }

func (payloadAutomaton) Spawn(self model.ProcessID, n int) Process {
	return &payloadProc{self: self, n: n}
}

func (p *payloadProc) Step(in *Message, _ model.ProcessSet, t model.Time) Actions {
	var acts Actions
	if !p.sent {
		p.sent = true
		var payload any
		switch int(p.self) % 8 {
		case 0:
			payload = "plain string"
		case 1:
			payload = 42
		case 2:
			payload = int64(-7)
		case 3:
			payload = model.Time(900)
		case 4:
			payload = p.self // model.ProcessID, a Stringer
		case 5:
			payload = true
		case 6:
			payload = structPayload{Round: 3, Est: "v1"}
		default:
			payload = stringerPayload{tag: "x"}
		}
		acts.Sends = Broadcast(p.n, payload)
		acts.Events = []ProtocolEvent{{Kind: KindViewChange, Instance: int(t), Value: payload}}
	}
	return acts
}

// TestEncodeMatchesReference holds the append-based digest encoder to
// the fmt-based rendering byte for byte, on traces that exercise every
// payload fast path plus the fmt fallback, under loss (undelivered
// buffer) and crashes.
func TestEncodeMatchesReference(t *testing.T) {
	t.Parallel()
	for _, cfg := range []Config{
		{
			N: 8, Automaton: payloadAutomaton{}, Oracle: fd.Perfect{Delay: 2},
			Pattern: model.MustPattern(8).MustCrash(3, 20),
			Horizon: 300, Seed: 5,
			Policy: &FaultyPolicy{Inner: &RandomFairPolicy{}, Faults: LinkFaults{DropPct: 30}},
		},
		{
			N: 6, Automaton: noisyAutomaton{}, Oracle: fd.Perfect{},
			Horizon: 400, Seed: 9, Policy: &RandomFairPolicy{},
		},
	} {
		tr, err := Execute(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		encodeReference(tr, &want)
		tr.encode(&got)
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			wa, ga := want.Bytes(), got.Bytes()
			i := 0
			for i < len(wa) && i < len(ga) && wa[i] == ga[i] {
				i++
			}
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("encoder diverged from fmt reference at byte %d:\nref: ...%q\nnew: ...%q",
				i, wa[lo:min(i+40, len(wa))], ga[lo:min(i+40, len(ga))])
		}
	}
}
