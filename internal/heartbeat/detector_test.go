package heartbeat

import (
	"testing"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// waitUntil polls cond every ms up to limit.
func waitUntil(limit time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestDetectorOverChanNetwork(t *testing.T) {
	t.Parallel()
	net, err := transport.NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}

	const interval = 5 * time.Millisecond
	peersOf := func(self model.ProcessID) []model.ProcessID {
		var out []model.ProcessID
		for q := model.ProcessID(1); q <= 4; q++ {
			if q != self {
				out = append(out, q)
			}
		}
		return out
	}

	// Node 1 monitors everyone; nodes 2-4 emit heartbeats.
	det := NewDetector(net.Node(1), peersOf(1), func() Estimator {
		return &FixedTimeout{Timeout: 50 * time.Millisecond}
	})
	var emitters []*Emitter
	for q := model.ProcessID(2); q <= 4; q++ {
		emitters = append(emitters, NewEmitter(net.Node(q), peersOf(q), interval))
	}

	// Everyone trusted while beating.
	if !waitUntil(2*time.Second, func() bool {
		return det.Suspects().IsEmpty() && !det.Suspect(3)
	}) {
		t.Fatal("healthy peers suspected")
	}
	// Hold the trust for a few timeouts.
	time.Sleep(120 * time.Millisecond)
	if s := det.Suspects(); !s.IsEmpty() {
		t.Fatalf("healthy peers suspected after warmup: %v", s)
	}

	// Kill node 3's heartbeats (transport-level isolation = crash).
	net.Isolate(3)
	if !waitUntil(2*time.Second, func() bool {
		return det.Suspects().Equal(model.NewProcessSet(3))
	}) {
		t.Fatalf("crash of p3 not detected; suspects = %v", det.Suspects())
	}

	for _, e := range emitters {
		e.Close()
	}
	det.Close() // closes the shared network via node 1
}

func TestDetectorForwardsForeignTraffic(t *testing.T) {
	t.Parallel()
	net, err := transport.NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(net.Node(2), []model.ProcessID{1}, func() Estimator {
		return &FixedTimeout{Timeout: time.Second}
	})

	env := transport.Envelope{To: 2, Type: "membership"}
	if err := net.Node(1).Send(env); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-det.Forward():
		if got.Type != "membership" || got.From != 1 {
			t.Fatalf("forwarded %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("foreign envelope not forwarded")
	}
	det.Close()
	// Forward channel closes on shutdown.
	if _, ok := <-det.Forward(); ok {
		t.Fatal("forward channel still open after Close")
	}
}

func TestEmitterStopsCleanly(t *testing.T) {
	t.Parallel()
	net, err := transport.NewChanNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = net.Close() }()
	e := NewEmitter(net.Node(1), []model.ProcessID{2}, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	e.Close()
	// Drain what was sent so far.
	n2 := net.Node(2)
	count := 0
	for {
		select {
		case <-n2.Recv():
			count++
			continue
		case <-time.After(20 * time.Millisecond):
		}
		break
	}
	if count == 0 {
		t.Fatal("emitter never beat")
	}
	// No further beats after Close.
	select {
	case <-n2.Recv():
		t.Fatal("heartbeat after Close")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDetectorOverTCP(t *testing.T) {
	t.Parallel()
	nodes, err := transport.NewTCPCluster(4)
	if err != nil {
		t.Fatal(err)
	}

	peers := []model.ProcessID{2}
	det := NewDetector(nodes[0], peers, func() Estimator {
		return &PhiAccrual{Window: 32, Threshold: 4, MinStdDev: 2 * time.Millisecond}
	})
	em := NewEmitter(nodes[1], []model.ProcessID{1}, 5*time.Millisecond)

	// Let the estimator accumulate real inter-arrival samples (φ needs
	// at least two heartbeats before it can judge anything).
	time.Sleep(150 * time.Millisecond)
	if det.Suspect(2) {
		t.Fatal("live TCP peer suspected")
	}
	// Kill the emitter: suspicion must follow.
	em.Close()
	_ = nodes[1].Close()
	if !waitUntil(3*time.Second, func() bool { return det.Suspect(2) }) {
		t.Fatal("dead TCP peer not suspected")
	}

	det.Close()
	CloseRest(nodes[2:])
}

// CloseRest closes remaining cluster nodes (helper shared with other
// tests).
func CloseRest(nodes []*transport.TCPNode) {
	transport.CloseTCPCluster(nodes)
}
