package heartbeat

import (
	"strconv"
	"sync"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// EnvelopeType tags heartbeat traffic on a shared transport.
const EnvelopeType = "heartbeat"

// Emitter periodically sends heartbeats to a set of peers. It owns a
// single goroutine; Close signals it to stop and waits for it.
type Emitter struct {
	tr       transport.Transport
	peers    []model.ProcessID
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewEmitter starts heartbeating immediately.
func NewEmitter(tr transport.Transport, peers []model.ProcessID, interval time.Duration) *Emitter {
	e := &Emitter{
		tr:       tr,
		peers:    append([]model.ProcessID(nil), peers...),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go e.run()
	return e
}

func (e *Emitter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	seq := uint64(0)
	e.beat(seq) // first beat immediately, not one interval in
	for {
		select {
		case <-ticker.C:
			seq++
			e.beat(seq)
		case <-e.stop:
			return
		}
	}
}

func (e *Emitter) beat(seq uint64) {
	body := strconv.FormatUint(seq, 10)
	for _, p := range e.peers {
		env := transport.Envelope{To: p, Type: EnvelopeType}
		if err := env.Marshal(body); err != nil {
			continue
		}
		_ = e.tr.Send(env) // losses are the network's business
	}
}

// Close stops the emitter and waits for its goroutine to exit.
func (e *Emitter) Close() {
	e.once.Do(func() { close(e.stop) })
	<-e.done
}

// Detector consumes heartbeat envelopes from a transport and maintains
// one Estimator per monitored peer. It owns the receive goroutine;
// Close stops it. Non-heartbeat envelopes are forwarded to Forward,
// letting other protocols share the transport.
type Detector struct {
	tr      transport.Transport
	forward chan transport.Envelope

	mu         sync.Mutex
	estimators map[model.ProcessID]Estimator

	done chan struct{}
}

// NewDetector monitors the given peers, building an estimator per
// peer with newEst.
func NewDetector(tr transport.Transport, peers []model.ProcessID, newEst func() Estimator) *Detector {
	d := &Detector{
		tr:         tr,
		forward:    make(chan transport.Envelope, 64),
		estimators: make(map[model.ProcessID]Estimator, len(peers)),
		done:       make(chan struct{}),
	}
	start := time.Now()
	for _, p := range peers {
		est := newEst()
		if es, ok := est.(EpochSetter); ok {
			es.SetEpoch(start)
		}
		d.estimators[p] = est
	}
	go d.run()
	return d
}

// Forward yields the non-heartbeat envelopes received on the shared
// transport. The channel closes when the detector stops.
func (d *Detector) Forward() <-chan transport.Envelope { return d.forward }

func (d *Detector) run() {
	defer close(d.done)
	defer close(d.forward)
	for env := range d.tr.Recv() {
		if env.Type != EnvelopeType {
			select {
			case d.forward <- env:
			default: // slow consumer: drop rather than stall detection
			}
			continue
		}
		d.mu.Lock()
		if est, ok := d.estimators[env.From]; ok {
			est.Observe(time.Now())
		}
		d.mu.Unlock()
	}
}

// Suspects returns the set of peers currently suspected.
func (d *Detector) Suspects() model.ProcessSet {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	var out model.ProcessSet
	for p, est := range d.estimators {
		if est.Suspect(now) {
			out = out.Add(p)
		}
	}
	return out
}

// Suspect reports whether one peer is currently suspected.
func (d *Detector) Suspect(p model.ProcessID) bool {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	est, ok := d.estimators[p]
	return ok && est.Suspect(now)
}

// Close stops the receive loop (by closing the underlying transport)
// and waits for it. The transport is closed as a side effect: the
// detector owns the receiving end.
func (d *Detector) Close() {
	_ = d.tr.Close()
	<-d.done
}
