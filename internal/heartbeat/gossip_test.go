package heartbeat

import (
	"math"
	"sync"
	"testing"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// sinkTransport records gossip destinations without any network.
type sinkTransport struct {
	self model.ProcessID
	in   chan transport.Envelope

	mu    sync.Mutex
	dests map[model.ProcessID]int
}

func newSinkTransport(self model.ProcessID) *sinkTransport {
	return &sinkTransport{self: self, in: make(chan transport.Envelope, 16), dests: map[model.ProcessID]int{}}
}

func (s *sinkTransport) Self() model.ProcessID { return s.self }
func (s *sinkTransport) Send(env transport.Envelope) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dests[env.To]++
	return nil
}
func (s *sinkTransport) Recv() <-chan transport.Envelope { return s.in }
func (s *sinkTransport) Close() error                    { close(s.in); return nil }

// chordPeers mirrors the scenario package's chord overlay: node self
// links to self±2^j (mod n), giving O(log n) degree.
func chordPeers(self, n int) []int {
	set := map[int]bool{}
	for step := 1; step < n; step *= 2 {
		set[(self-1+step)%n+1] = true
		set[((self-1-step)%n+n)%n+1] = true
	}
	delete(set, self)
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	return out
}

// TestGossipFanoutIsLogN is the acceptance check for the dissemination
// redesign: over the whole run, a node's set of distinct heartbeat
// destinations must stay O(log n) — not the O(n) of the all-to-all
// emitter the exemplar choked on.
func TestGossipFanoutIsLogN(t *testing.T) {
	const n = 200
	tr := newSinkTransport(1)
	g, err := NewGossiper(tr, GossipConfig{
		Self:         1,
		N:            n,
		Peers:        chordPeers(1, n),
		Interval:     time.Hour, // rounds driven by hand below
		NewEstimator: func() Estimator { return &FixedTimeout{Timeout: time.Second} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	now := time.Now()
	for i := 0; i < 50; i++ {
		g.round(now.Add(time.Duration(i) * time.Millisecond))
	}
	bound := 2 * int(math.Ceil(math.Log2(n)))
	if got := g.DistinctDestinations(); got > bound {
		t.Fatalf("distinct heartbeat destinations = %d over 50 rounds, want ≤ 2⌈log2 %d⌉ = %d", got, n, bound)
	}
	if got := g.DistinctDestinations(); got == 0 {
		t.Fatal("gossiper never sent a heartbeat")
	}
}

// TestGossipFanoutSubsetSampling pins the per-round fanout bound: with
// Fanout k, each round touches exactly k distinct peers.
func TestGossipFanoutSubsetSampling(t *testing.T) {
	const n, k = 64, 3
	tr := newSinkTransport(1)
	g, err := NewGossiper(tr, GossipConfig{
		Self:         1,
		N:            n,
		Peers:        chordPeers(1, n),
		Fanout:       k,
		Interval:     time.Hour,
		Seed:         11,
		NewEstimator: func() Estimator { return &FixedTimeout{Timeout: time.Second} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	before := int(g.Rounds()) // emitLoop's immediate first round may have fired
	now := time.Now()
	for i := 0; i < 30; i++ {
		g.round(now)
	}
	rounds := int(g.Rounds())
	tr.mu.Lock()
	total := 0
	for _, c := range tr.dests {
		total += c
	}
	tr.mu.Unlock()
	if want := rounds * k; total != want {
		t.Fatalf("sent %d frames over %d rounds (%d pre-recorded), want exactly %d (fanout %d)",
			total, rounds, before, want, k)
	}
	if got := g.DistinctDestinations(); got > len(chordPeers(1, n)) {
		t.Fatalf("destinations %d exceed the overlay neighborhood %d", got, len(chordPeers(1, n)))
	}
}

// TestGossipDisseminationAndHealing runs 16 real gossipers over the
// in-process network: counters must propagate across the O(log n)
// overlay to every node, a muted (SIGSTOP-emulated) node must become
// suspected everywhere, and resuming it must clear the suspicion —
// the no-node-wrongly-suspected-forever property the live smoke test
// asserts on real processes.
func TestGossipDisseminationAndHealing(t *testing.T) {
	const n = 16
	const interval = 10 * time.Millisecond
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	gossipers := make([]*Gossiper, n+1)
	for p := 1; p <= n; p++ {
		g, err := NewGossiper(net.Node(model.ProcessID(p)), GossipConfig{
			Self:         p,
			N:            n,
			Peers:        chordPeers(p, n),
			Interval:     interval,
			Seed:         int64(p),
			NewEstimator: func() Estimator { return &FixedTimeout{Timeout: 12 * interval} },
		})
		if err != nil {
			t.Fatal(err)
		}
		gossipers[p] = g
	}
	defer func() {
		// Closing any gossiper closes the shared ChanNetwork; mute the
		// rest first so their emit loops stop cleanly, then close all.
		for p := 1; p <= n; p++ {
			gossipers[p].SetMuted(true)
		}
		for p := 1; p <= n; p++ {
			gossipers[p].Close()
		}
	}()

	waitFor := func(desc string, deadline time.Duration, cond func() bool) {
		t.Helper()
		limit := time.After(deadline)
		for {
			if cond() {
				return
			}
			select {
			case <-limit:
				t.Fatalf("timed out waiting for %s", desc)
			case <-time.After(interval):
			}
		}
	}

	// Dissemination: node 1's counter must reach the far side of the
	// ring (node 9 is not a chord neighbor of 1 only for larger n, but
	// every pair must converge regardless).
	waitFor("all counters to propagate everywhere", 5*time.Second, func() bool {
		for p := 1; p <= n; p++ {
			for q := 1; q <= n; q++ {
				if p != q && gossipers[p].Counter(q) == 0 {
					return false
				}
			}
		}
		return true
	})

	// No false suspicion in the steady state.
	for p := 1; p <= n; p++ {
		if susp := gossipers[p].Suspects(); len(susp) != 0 {
			t.Fatalf("node %d suspects %v with no faults injected", p, susp)
		}
	}

	// Pause node 4: everyone must suspect it.
	const victim = 4
	gossipers[victim].SetMuted(true)
	waitFor("every live node to suspect the paused node", 5*time.Second, func() bool {
		for p := 1; p <= n; p++ {
			if p == victim {
				continue
			}
			if !gossipers[p].Verdicts(time.Now())[victim-1] {
				return false
			}
		}
		return true
	})

	// Resume it: suspicion must heal everywhere — nobody wrongly
	// suspects a paused-then-resumed node forever.
	gossipers[victim].SetMuted(false)
	waitFor("suspicion of the resumed node to heal", 5*time.Second, func() bool {
		for p := 1; p <= n; p++ {
			if p == victim {
				continue
			}
			if gossipers[p].Verdicts(time.Now())[victim-1] {
				return false
			}
		}
		return true
	})
}

// TestGossipAccusationExpiry drives merge directly: an accusation of q
// made at counter c holds while no fresher counter for q is known and
// expires the moment one propagates.
func TestGossipAccusationExpiry(t *testing.T) {
	const n = 8
	tr := newSinkTransport(1)
	g, err := NewGossiper(tr, GossipConfig{
		Self:         1,
		N:            n,
		Peers:        []int{2, 3},
		Interval:     time.Hour,
		NewEstimator: func() Estimator { return &FixedTimeout{Timeout: time.Hour} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	mk := func(origin int, counters []uint64, suspects []bool) Piggyback {
		return Piggyback{Origin: origin, Counters: counters, Suspects: suspects}
	}
	now := time.Now()

	// Node 2 accuses node 5 at counter 7.
	counters := make([]uint64, n)
	suspects := make([]bool, n)
	counters[4] = 7
	suspects[4] = true
	g.merge(mk(2, counters, suspects), now)
	found := false
	for _, q := range g.CommunitySuspects() {
		if q == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("fresh accusation of node 5 not reflected in community suspicion")
	}

	// Fresher news of node 5 (counter 8) expires the accusation.
	counters2 := make([]uint64, n)
	counters2[4] = 8
	g.merge(mk(3, counters2, make([]bool, n)), now)
	for _, q := range g.CommunitySuspects() {
		if q == 5 {
			t.Fatal("accusation of node 5 survived fresher counter news")
		}
	}

	// Self-accusations and origin-self claims are ignored.
	counters3 := make([]uint64, n)
	suspects3 := make([]bool, n)
	suspects3[0] = true // accusing node 1 (self)
	g.merge(mk(2, counters3, suspects3), now)
	for _, q := range g.CommunitySuspects() {
		if q == 1 {
			t.Fatal("gossiper accepted an accusation of itself")
		}
	}
}

// TestGossipMidRunJoin pins the churn axis at the gossip layer: a
// deferred node is never suspected while absent, its neighbors learn of
// it within bounded rounds of its first heartbeat (counter bootstrap +
// AddPeer overlay re-resolution), and it converges into every node's
// Known view.
func TestGossipMidRunJoin(t *testing.T) {
	const n = 8
	const joiner = 8
	const interval = 10 * time.Millisecond
	net, err := transport.NewChanNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	gossipers := make([]*Gossiper, n+1)
	for p := 1; p < joiner; p++ {
		peers := make([]int, 0, 4)
		for _, q := range chordPeers(p, n) {
			if q != joiner {
				peers = append(peers, q) // the joiner is not wired in yet
			}
		}
		g, err := NewGossiper(net.Node(model.ProcessID(p)), GossipConfig{
			Self:         p,
			N:            n,
			Peers:        peers,
			Interval:     interval,
			Seed:         int64(p),
			NewEstimator: func() Estimator { return &FixedTimeout{Timeout: 12 * interval} },
			Deferred:     []int{joiner},
		})
		if err != nil {
			t.Fatal(err)
		}
		gossipers[p] = g
	}
	defer func() {
		for p := 1; p <= n; p++ {
			if gossipers[p] != nil {
				gossipers[p].SetMuted(true)
			}
		}
		for p := 1; p <= n; p++ {
			if gossipers[p] != nil {
				gossipers[p].Close()
			}
		}
	}()

	waitFor := func(desc string, deadline time.Duration, cond func() bool) {
		t.Helper()
		limit := time.After(deadline)
		for {
			if cond() {
				return
			}
			select {
			case <-limit:
				t.Fatalf("timed out waiting for %s", desc)
			case <-time.After(interval):
			}
		}
	}

	// Let the initial group converge, then check the absent joiner is
	// neither suspected nor known.
	waitFor("initial group convergence", 5*time.Second, func() bool {
		for p := 1; p < joiner; p++ {
			for q := 1; q < joiner; q++ {
				if p != q && gossipers[p].Counter(q) == 0 {
					return false
				}
			}
		}
		return true
	})
	for p := 1; p < joiner; p++ {
		for _, s := range gossipers[p].CommunitySuspects() {
			if s == joiner {
				t.Fatalf("node %d suspects the not-yet-joined node", p)
			}
		}
		if len(gossipers[p].Known()) != n-1 {
			t.Fatalf("node %d knows %v before the join", p, gossipers[p].Known())
		}
	}

	// Join: spawn the deferred node's gossiper and re-resolve the
	// overlay on both sides.
	g, err := NewGossiper(net.Node(model.ProcessID(joiner)), GossipConfig{
		Self:         joiner,
		N:            n,
		Peers:        chordPeers(joiner, n),
		Interval:     interval,
		Seed:         int64(joiner),
		NewEstimator: func() Estimator { return &FixedTimeout{Timeout: 12 * interval} },
	})
	if err != nil {
		t.Fatal(err)
	}
	gossipers[joiner] = g
	for _, q := range chordPeers(joiner, n) {
		gossipers[q].AddPeer(joiner)
	}

	// Convergence: within bounded gossip rounds the joiner's counters
	// reach everyone (and vice versa), and Known grows everywhere. 200
	// intervals is ≫ the overlay diameter.
	waitFor("joiner to appear in every counter vector", 200*interval, func() bool {
		for p := 1; p < joiner; p++ {
			if gossipers[p].Counter(joiner) == 0 {
				return false
			}
			if len(gossipers[p].Known()) != n {
				return false
			}
		}
		return true
	})
	waitFor("joiner to learn the whole group", 200*interval, func() bool {
		for q := 1; q < joiner; q++ {
			if gossipers[joiner].Counter(q) == 0 {
				return false
			}
		}
		return true
	})
	// Steady state: nobody suspects the joiner once admitted.
	waitFor("no suspicion of the joiner", 5*time.Second, func() bool {
		for p := 1; p < joiner; p++ {
			for _, s := range gossipers[p].CommunitySuspects() {
				if s == joiner {
					return false
				}
			}
		}
		return true
	})
}
