package heartbeat

import (
	"encoding/binary"
	"fmt"
)

// Piggyback is one gossip heartbeat message: the sender's
// freshest-known heartbeat counter for every node plus its current
// suspicion verdicts, piggybacked so that one O(n)-sized frame per
// round disseminates the whole cluster's liveness state transitively.
//
// Counters are the van Renesse-style gossip heartbeat vector: node p
// increments Counters[p-1] once per round; receivers merge by maximum
// and treat each observed increase as a heartbeat arrival for the
// underlying estimator (φ-accrual, Chen, fixed — unchanged). Suspects
// carries the sender's local verdicts; receivers record the counter
// value each accusation was made at, so an accusation auto-expires the
// moment fresher news of the accused propagates.
type Piggyback struct {
	// Origin is the sending node, 1-based.
	Origin int
	// Counters[i] is the freshest counter known for node i+1.
	Counters []uint64
	// Suspects[i] reports whether the sender currently suspects node
	// i+1.
	Suspects []bool
}

// piggybackVersion tags the wire format; bumping it invalidates old
// frames explicitly instead of mis-decoding them.
const piggybackVersion = 1

// maxPiggybackNodes bounds the node count a frame may claim, keeping
// adversarial frames from forcing large allocations.
const maxPiggybackNodes = 1 << 16

// Encode serializes the piggyback compactly: version byte, uvarint n,
// uvarint origin, n uvarint counters, then an n-bit suspicion bitmap.
// For a 200-node cluster this is a few hundred bytes against the ~50
// KiB an all-to-all JSON snapshot would cost.
func (pb Piggyback) Encode() ([]byte, error) {
	n := len(pb.Counters)
	if n == 0 || n > maxPiggybackNodes {
		return nil, fmt.Errorf("heartbeat: piggyback n = %d outside [1, %d]", n, maxPiggybackNodes)
	}
	if len(pb.Suspects) != n {
		return nil, fmt.Errorf("heartbeat: piggyback suspects length %d != n %d", len(pb.Suspects), n)
	}
	if pb.Origin < 1 || pb.Origin > n {
		return nil, fmt.Errorf("heartbeat: piggyback origin %d outside [1, %d]", pb.Origin, n)
	}
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+n*2+(n+7)/8)
	buf = append(buf, piggybackVersion)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(pb.Origin))
	for _, c := range pb.Counters {
		buf = binary.AppendUvarint(buf, c)
	}
	bitmap := make([]byte, (n+7)/8)
	for i, s := range pb.Suspects {
		if s {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	return append(buf, bitmap...), nil
}

// DecodePiggyback parses one frame, rejecting truncated, oversized,
// mis-versioned and trailing-garbage inputs.
func DecodePiggyback(data []byte) (Piggyback, error) {
	var pb Piggyback
	if len(data) == 0 {
		return pb, fmt.Errorf("heartbeat: empty piggyback")
	}
	if data[0] != piggybackVersion {
		return pb, fmt.Errorf("heartbeat: piggyback version %d, want %d", data[0], piggybackVersion)
	}
	rest := data[1:]
	readUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, fmt.Errorf("heartbeat: truncated piggyback varint")
		}
		rest = rest[k:]
		return v, nil
	}
	n64, err := readUvarint()
	if err != nil {
		return pb, err
	}
	if n64 == 0 || n64 > maxPiggybackNodes {
		return pb, fmt.Errorf("heartbeat: piggyback n = %d outside [1, %d]", n64, maxPiggybackNodes)
	}
	n := int(n64)
	origin, err := readUvarint()
	if err != nil {
		return pb, err
	}
	if origin < 1 || origin > n64 {
		return pb, fmt.Errorf("heartbeat: piggyback origin %d outside [1, %d]", origin, n)
	}
	pb.Origin = int(origin)
	pb.Counters = make([]uint64, n)
	for i := range pb.Counters {
		c, err := readUvarint()
		if err != nil {
			return Piggyback{}, err
		}
		pb.Counters[i] = c
	}
	bitmapLen := (n + 7) / 8
	if len(rest) != bitmapLen {
		return Piggyback{}, fmt.Errorf("heartbeat: piggyback bitmap is %d bytes, want %d", len(rest), bitmapLen)
	}
	pb.Suspects = make([]bool, n)
	for i := range pb.Suspects {
		pb.Suspects[i] = rest[i/8]&(1<<(i%8)) != 0
	}
	return pb, nil
}
