// Package heartbeat implements live, timeout-based failure detection
// over the transport layer: a heartbeat emitter plus three monitor
// estimators — fixed timeout, Chen-style adaptive, and φ-accrual.
//
// These are the *practical* failure detectors the paper alludes to in
// §1.3: real systems approximate P by timing out on heartbeats and
// excluding the timed-out process via group membership, making every
// suspicion accurate after the fact. The estimators here quantify the
// quality of that approximation (experiment E9, package qos): tighter
// timeouts detect crashes faster but mistake more often — a realistic
// detector cannot be both instantly complete and always accurate.
//
// Estimator logic is pure (explicit time arguments, no goroutines or
// wall-clock reads), so tests and QoS sweeps drive it with synthetic
// arrival sequences deterministically.
package heartbeat

import (
	"fmt"
	"math"
	"time"
)

// Estimator judges one monitored peer from the arrival times of its
// heartbeats. Implementations are not safe for concurrent use; the
// Detector serializes access.
type Estimator interface {
	// Name identifies the estimator and its parameters.
	Name() string
	// Observe records a heartbeat arrival.
	Observe(arrival time.Time)
	// Suspect reports whether the peer should be suspected at time
	// now, given the arrivals observed so far.
	Suspect(now time.Time) bool
}

// EpochSetter is implemented by estimators that bound the initial
// grace period: SetEpoch marks when monitoring began, after which a
// peer that never sends a single heartbeat (dead on arrival) is
// eventually suspected. The Detector calls it automatically.
type EpochSetter interface {
	SetEpoch(start time.Time)
}

// FixedTimeout suspects a peer when no heartbeat arrived for Timeout.
// The simplest — and with a safe margin, the classic group-membership
// — detector.
type FixedTimeout struct {
	// Timeout is the silence threshold.
	Timeout time.Duration

	epoch   time.Time
	last    time.Time
	hasLast bool
}

var (
	_ Estimator   = (*FixedTimeout)(nil)
	_ EpochSetter = (*FixedTimeout)(nil)
)

// Name implements Estimator.
func (f *FixedTimeout) Name() string { return fmt.Sprintf("fixed(%v)", f.Timeout) }

// SetEpoch implements EpochSetter.
func (f *FixedTimeout) SetEpoch(start time.Time) { f.epoch = start }

// Observe implements Estimator.
func (f *FixedTimeout) Observe(arrival time.Time) {
	if !f.hasLast || arrival.After(f.last) {
		f.last = arrival
		f.hasLast = true
	}
}

// Suspect implements Estimator.
func (f *FixedTimeout) Suspect(now time.Time) bool {
	if !f.hasLast {
		// Nothing heard yet: unlimited grace without an epoch,
		// bounded grace with one (dead-on-arrival peers).
		return !f.epoch.IsZero() && now.Sub(f.epoch) > f.Timeout
	}
	return now.Sub(f.last) > f.Timeout
}

// Chen is the adaptive estimator of Chen, Toueg and Aguilera ("On the
// Quality of Service of Failure Detectors"): it predicts the next
// heartbeat arrival as the mean of the last Window inter-arrival
// times and suspects when the prediction plus the safety margin Alpha
// passes without news.
type Chen struct {
	// Window is the number of inter-arrival samples averaged.
	Window int
	// Alpha is the safety margin added to the predicted arrival.
	Alpha time.Duration

	epoch     time.Time
	last      time.Time
	hasLast   bool
	intervals []time.Duration
	next      int
	filled    bool
}

var (
	_ Estimator   = (*Chen)(nil)
	_ EpochSetter = (*Chen)(nil)
)

// Name implements Estimator.
func (c *Chen) Name() string { return fmt.Sprintf("chen(w=%d,α=%v)", c.Window, c.Alpha) }

// SetEpoch implements EpochSetter.
func (c *Chen) SetEpoch(start time.Time) { c.epoch = start }

// Observe implements Estimator.
func (c *Chen) Observe(arrival time.Time) {
	if c.intervals == nil {
		w := c.Window
		if w <= 0 {
			w = 16
		}
		c.intervals = make([]time.Duration, w)
	}
	if c.hasLast {
		if !arrival.After(c.last) {
			return // stale or duplicated arrival
		}
		c.intervals[c.next] = arrival.Sub(c.last)
		c.next++
		if c.next == len(c.intervals) {
			c.next = 0
			c.filled = true
		}
	}
	c.last = arrival
	c.hasLast = true
}

// mean returns the average observed inter-arrival, or 0 with no
// samples yet.
func (c *Chen) mean() time.Duration {
	n := c.next
	if c.filled {
		n = len(c.intervals)
	}
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += c.intervals[i]
	}
	return sum / time.Duration(n)
}

// Suspect implements Estimator.
func (c *Chen) Suspect(now time.Time) bool {
	if !c.hasLast {
		// Bounded initial grace once an epoch is known.
		return !c.epoch.IsZero() && now.Sub(c.epoch) > c.Alpha
	}
	mean := c.mean()
	if mean == 0 {
		// One arrival, no interval yet: fall back to the margin only.
		return now.Sub(c.last) > c.Alpha
	}
	deadline := c.last.Add(mean + c.Alpha)
	return now.After(deadline)
}

// PhiAccrual is the φ-accrual estimator of Hayashibara et al. (the
// design popularized by Cassandra and Akka): instead of a binary
// verdict it accrues a suspicion level φ = −log10 P(heartbeat still
// coming), assuming normally distributed inter-arrival times, and
// suspects when φ crosses Threshold.
type PhiAccrual struct {
	// Window is the number of inter-arrival samples kept.
	Window int
	// Threshold is the φ level at which the peer is suspected
	// (Cassandra's default is 8).
	Threshold float64
	// MinStdDev floors the estimated standard deviation, preventing
	// a perfectly regular stream from making φ explode on the first
	// late packet.
	MinStdDev time.Duration
	// FirstTimeout bounds the grace for peers that never send a
	// single heartbeat once an epoch is set (φ cannot be computed
	// without inter-arrival data). Zero defaults to one second.
	FirstTimeout time.Duration

	epoch     time.Time
	last      time.Time
	hasLast   bool
	intervals []time.Duration
	next      int
	filled    bool
}

var (
	_ Estimator   = (*PhiAccrual)(nil)
	_ EpochSetter = (*PhiAccrual)(nil)
)

// Name implements Estimator.
func (p *PhiAccrual) Name() string {
	return fmt.Sprintf("phi(w=%d,Φ=%.1f)", p.Window, p.Threshold)
}

// SetEpoch implements EpochSetter.
func (p *PhiAccrual) SetEpoch(start time.Time) { p.epoch = start }

// Observe implements Estimator.
func (p *PhiAccrual) Observe(arrival time.Time) {
	if p.intervals == nil {
		w := p.Window
		if w <= 0 {
			w = 64
		}
		p.intervals = make([]time.Duration, w)
	}
	if p.hasLast {
		if !arrival.After(p.last) {
			return
		}
		p.intervals[p.next] = arrival.Sub(p.last)
		p.next++
		if p.next == len(p.intervals) {
			p.next = 0
			p.filled = true
		}
	}
	p.last = arrival
	p.hasLast = true
}

// Phi returns the current suspicion level at time now: 0 means "just
// heard", +Inf means "statistically dead".
func (p *PhiAccrual) Phi(now time.Time) float64 {
	if !p.hasLast {
		return 0
	}
	n := p.next
	if p.filled {
		n = len(p.intervals)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(p.intervals[i])
	}
	mean := sum / float64(n)
	var varSum float64
	for i := 0; i < n; i++ {
		d := float64(p.intervals[i]) - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(n))
	if floor := float64(p.MinStdDev); std < floor {
		std = floor
	}
	if std == 0 {
		std = 1 // last-resort floor: nanoseconds
	}
	elapsed := float64(now.Sub(p.last))
	// P(next heartbeat later than elapsed) under N(mean, std²).
	z := (elapsed - mean) / std
	pLater := 0.5 * math.Erfc(z/math.Sqrt2)
	if pLater <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(pLater)
}

// Suspect implements Estimator.
func (p *PhiAccrual) Suspect(now time.Time) bool {
	if !p.hasLast {
		if p.epoch.IsZero() {
			return false
		}
		grace := p.FirstTimeout
		if grace <= 0 {
			grace = time.Second
		}
		return now.Sub(p.epoch) > grace
	}
	return p.Phi(now) >= p.Threshold
}
