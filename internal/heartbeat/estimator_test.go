package heartbeat

import (
	"math"
	"testing"
	"time"
)

// base is an arbitrary virtual-time origin.
var base = time.Unix(1000, 0)

func at(d time.Duration) time.Time { return base.Add(d) }

func TestFixedTimeout(t *testing.T) {
	t.Parallel()
	f := &FixedTimeout{Timeout: 100 * time.Millisecond}
	// Before any heartbeat: initial grace, no suspicion.
	if f.Suspect(at(time.Hour)) {
		t.Fatal("suspected before first heartbeat")
	}
	f.Observe(at(0))
	if f.Suspect(at(100 * time.Millisecond)) {
		t.Fatal("suspected exactly at the timeout boundary")
	}
	if !f.Suspect(at(101 * time.Millisecond)) {
		t.Fatal("not suspected past the timeout")
	}
	// A new heartbeat clears the suspicion.
	f.Observe(at(150 * time.Millisecond))
	if f.Suspect(at(200 * time.Millisecond)) {
		t.Fatal("suspected 50ms after a fresh heartbeat")
	}
	// Stale (out-of-order) arrivals don't move the clock backwards.
	f.Observe(at(120 * time.Millisecond))
	if f.Suspect(at(200 * time.Millisecond)) {
		t.Fatal("stale arrival rewound the estimator")
	}
}

func TestChenAdaptsToInterval(t *testing.T) {
	t.Parallel()
	c := &Chen{Window: 4, Alpha: 20 * time.Millisecond}
	// Regular 100ms heartbeats.
	for i := 0; i <= 5; i++ {
		c.Observe(at(time.Duration(i) * 100 * time.Millisecond))
	}
	last := at(500 * time.Millisecond)
	// Expected next ≈ last+100ms; margin 20ms ⇒ deadline ≈ last+120ms.
	if c.Suspect(last.Add(110 * time.Millisecond)) {
		t.Fatal("suspected before the adaptive deadline")
	}
	if !c.Suspect(last.Add(130 * time.Millisecond)) {
		t.Fatal("not suspected after the adaptive deadline")
	}
}

func TestChenAdaptsToSlowerInterval(t *testing.T) {
	t.Parallel()
	// The same estimator fed 300ms heartbeats must not suspect at
	// +150ms — a fixed 120ms timeout would.
	c := &Chen{Window: 4, Alpha: 20 * time.Millisecond}
	for i := 0; i <= 5; i++ {
		c.Observe(at(time.Duration(i) * 300 * time.Millisecond))
	}
	last := at(1500 * time.Millisecond)
	if c.Suspect(last.Add(150 * time.Millisecond)) {
		t.Fatal("Chen ignored the observed 300ms cadence")
	}
	if !c.Suspect(last.Add(330 * time.Millisecond)) {
		t.Fatal("Chen missed a genuinely late heartbeat")
	}
}

func TestChenSingleArrival(t *testing.T) {
	t.Parallel()
	c := &Chen{Window: 4, Alpha: 50 * time.Millisecond}
	c.Observe(at(0))
	if c.Suspect(at(40 * time.Millisecond)) {
		t.Fatal("suspected within margin after a single arrival")
	}
	if !c.Suspect(at(60 * time.Millisecond)) {
		t.Fatal("not suspected past margin after a single arrival")
	}
}

func TestPhiGrowsWithSilence(t *testing.T) {
	t.Parallel()
	p := &PhiAccrual{Window: 16, Threshold: 8, MinStdDev: 5 * time.Millisecond}
	for i := 0; i <= 10; i++ {
		p.Observe(at(time.Duration(i) * 100 * time.Millisecond))
	}
	last := at(time.Second)
	phiSoon := p.Phi(last.Add(50 * time.Millisecond))
	phiLate := p.Phi(last.Add(200 * time.Millisecond))
	phiVeryLate := p.Phi(last.Add(500 * time.Millisecond))
	if !(phiSoon < phiLate && phiLate < phiVeryLate) {
		t.Fatalf("φ not monotone: %v, %v, %v", phiSoon, phiLate, phiVeryLate)
	}
	if p.Suspect(last.Add(50 * time.Millisecond)) {
		t.Fatal("suspected at φ(50ms) with threshold 8")
	}
	if !p.Suspect(last.Add(time.Second)) {
		t.Fatal("not suspected after 10 missed intervals")
	}
}

func TestPhiToleratesJitterByWideningStd(t *testing.T) {
	t.Parallel()
	// Irregular arrivals: 60..140ms alternating. The learned variance
	// must keep φ low at 150ms of silence.
	p := &PhiAccrual{Window: 16, Threshold: 8, MinStdDev: time.Millisecond}
	ts := time.Duration(0)
	for i := 0; i < 16; i++ {
		if i%2 == 0 {
			ts += 60 * time.Millisecond
		} else {
			ts += 140 * time.Millisecond
		}
		p.Observe(at(ts))
	}
	if p.Suspect(at(ts + 150*time.Millisecond)) {
		t.Fatal("φ-accrual suspected within learned jitter band")
	}
}

func TestPhiBeforeAnyArrival(t *testing.T) {
	t.Parallel()
	p := &PhiAccrual{Window: 4, Threshold: 8}
	if got := p.Phi(at(time.Hour)); got != 0 {
		t.Fatalf("Phi with no arrivals = %v, want 0", got)
	}
	if p.Suspect(at(time.Hour)) {
		t.Fatal("suspected before first heartbeat")
	}
}

func TestPhiInfinityOnExtremeSilence(t *testing.T) {
	t.Parallel()
	p := &PhiAccrual{Window: 8, Threshold: 8, MinStdDev: time.Millisecond}
	for i := 0; i <= 8; i++ {
		p.Observe(at(time.Duration(i) * 10 * time.Millisecond))
	}
	phi := p.Phi(at(time.Hour))
	if !math.IsInf(phi, 1) && phi < 100 {
		t.Fatalf("φ after an hour of silence = %v, want very large", phi)
	}
}

func TestEstimatorNames(t *testing.T) {
	t.Parallel()
	ests := []Estimator{
		&FixedTimeout{Timeout: time.Second},
		&Chen{Window: 8, Alpha: time.Millisecond},
		&PhiAccrual{Window: 8, Threshold: 8},
	}
	seen := map[string]bool{}
	for _, e := range ests {
		n := e.Name()
		if n == "" || seen[n] {
			t.Fatalf("estimator name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}
