package heartbeat

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/transport"
)

// GossipEnvelopeType tags gossip heartbeat traffic on a shared
// transport.
const GossipEnvelopeType = "gossip"

// GossipConfig configures one node's gossip disseminator.
type GossipConfig struct {
	// Self is this node's 1-based ID.
	Self int
	// N is the cluster size. Unlike the simulator's model.ProcessSet
	// (capped at 64), gossip state is plain slices, so N can reach
	// hundreds of nodes.
	N int
	// Peers are the overlay neighbors — the only nodes this node ever
	// sends heartbeats to. With a chord/hypercube overlay this is
	// O(log n) per node, which is the whole point: the exemplar's
	// all-to-all heartbeating collapsed past ~50 nodes on O(n²) frames.
	Peers []int
	// Fanout bounds destinations per round: each round gossips to
	// min(Fanout, len(Peers)) peers, chosen uniformly without
	// replacement. Zero means all overlay neighbors every round.
	Fanout int
	// Interval is the gossip round period.
	Interval time.Duration
	// NewEstimator builds the per-peer arrival estimator. The gossip
	// layer only changes *how arrivals are produced* (counter
	// increases, possibly relayed); the estimator underneath is the
	// same φ-accrual/Chen/fixed logic the QoS sweeps quantify.
	NewEstimator func() Estimator
	// Seed drives the per-round fanout sampling.
	Seed int64
	// Deferred lists nodes absent at startup — mid-run joiners of a
	// fault plan. A deferred node gets no estimator (and is never
	// suspected, locally or by relayed accusation) until its first
	// counter observation activates it; the estimator's epoch is the
	// activation instant, so a joiner bootstraps with the same grace a
	// cluster start gets.
	Deferred []int
}

func (c GossipConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("heartbeat: gossip n = %d must be ≥ 2", c.N)
	}
	if c.Self < 1 || c.Self > c.N {
		return fmt.Errorf("heartbeat: gossip self = %d outside [1, %d]", c.Self, c.N)
	}
	if len(c.Peers) == 0 {
		return fmt.Errorf("heartbeat: gossip needs at least one overlay peer")
	}
	for _, p := range c.Peers {
		if p < 1 || p > c.N || p == c.Self {
			return fmt.Errorf("heartbeat: gossip peer %d invalid for self %d, n %d", p, c.Self, c.N)
		}
	}
	if c.Interval <= 0 {
		return fmt.Errorf("heartbeat: gossip interval must be positive")
	}
	if c.NewEstimator == nil {
		return fmt.Errorf("heartbeat: gossip needs an estimator factory")
	}
	for _, d := range c.Deferred {
		if d < 1 || d > c.N {
			return fmt.Errorf("heartbeat: gossip deferred node %d outside [1, %d]", d, c.N)
		}
	}
	return nil
}

// Gossiper replaces the all-to-all Emitter+Detector pair with
// gossip-style dissemination: each round it increments its own
// heartbeat counter and sends the freshest-known counter vector (plus
// its suspicion verdicts) to a bounded set of overlay neighbors;
// received vectors merge by maximum, and every observed counter
// increase feeds the per-peer estimator as a heartbeat arrival. News
// of any node reaches every other node in O(diameter) rounds while
// each node sends only O(log n) frames per round.
//
// Suspicion piggybacking gives accusations a freshness horizon: an
// accusation of q is remembered together with the counter value it
// was made at, and stays live only while no fresher counter for q is
// known — a paused-then-resumed node heals automatically the moment
// its new heartbeats propagate.
type Gossiper struct {
	cfg     GossipConfig
	tr      transport.Transport
	forward chan transport.Envelope

	mu        sync.Mutex
	counters  []uint64    // freshest-known counter per node (index id-1)
	accusedAt []uint64    // counter value the latest accusation was made at
	accused   []bool      // whether any accusation was ever received
	ests      []Estimator // per-peer estimators; nil at self
	present   []bool      // false while a deferred joiner is unseen
	peers     []int       // overlay neighbors; grows via AddPeer
	rng       *rand.Rand
	scratch   []int // fanout sampling buffer
	sentTo    map[int]bool
	rounds    uint64
	muted     bool

	stop     chan struct{}
	emitDone chan struct{}
	recvDone chan struct{}
	once     sync.Once
}

// NewGossiper starts gossiping immediately. The gossiper owns the
// transport's receiving end; Close closes the transport.
func NewGossiper(tr transport.Transport, cfg GossipConfig) (*Gossiper, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Gossiper{
		cfg:       cfg,
		tr:        tr,
		forward:   make(chan transport.Envelope, 64),
		counters:  make([]uint64, cfg.N),
		accusedAt: make([]uint64, cfg.N),
		accused:   make([]bool, cfg.N),
		ests:      make([]Estimator, cfg.N),
		present:   make([]bool, cfg.N),
		peers:     append([]int(nil), cfg.Peers...),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sentTo:    map[int]bool{},
		stop:      make(chan struct{}),
		emitDone:  make(chan struct{}),
		recvDone:  make(chan struct{}),
	}
	for i := range g.present {
		g.present[i] = true
	}
	for _, d := range cfg.Deferred {
		if d != cfg.Self {
			g.present[d-1] = false
		}
	}
	epoch := time.Now()
	for q := 1; q <= cfg.N; q++ {
		if q == cfg.Self || !g.present[q-1] {
			continue
		}
		est := cfg.NewEstimator()
		if es, ok := est.(EpochSetter); ok {
			es.SetEpoch(epoch)
		}
		g.ests[q-1] = est
	}
	go g.emitLoop()
	go g.recvLoop()
	return g, nil
}

// Forward yields the non-gossip envelopes received on the shared
// transport (membership, application traffic). The channel closes when
// the gossiper stops.
func (g *Gossiper) Forward() <-chan transport.Envelope { return g.forward }

func (g *Gossiper) emitLoop() {
	defer close(g.emitDone)
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	g.round(time.Now()) // first round immediately, not one interval in
	for {
		select {
		case <-ticker.C:
			g.round(time.Now())
		case <-g.stop:
			return
		}
	}
}

// round advances the local counter and gossips the state snapshot to
// this round's destinations.
func (g *Gossiper) round(now time.Time) {
	g.mu.Lock()
	if g.muted {
		g.mu.Unlock()
		return
	}
	g.rounds++
	g.counters[g.cfg.Self-1]++
	pb := Piggyback{
		Origin:   g.cfg.Self,
		Counters: append([]uint64(nil), g.counters...),
		Suspects: g.verdictsLocked(now),
	}
	dests := g.pickDestsLocked()
	for _, d := range dests {
		g.sentTo[d] = true
	}
	g.mu.Unlock()

	data, err := pb.Encode()
	if err != nil {
		return // impossible by construction; drop the round if not
	}
	for _, d := range dests {
		env := transport.Envelope{To: model.ProcessID(d), Type: GossipEnvelopeType}
		if err := env.Marshal(data); err != nil {
			continue
		}
		_ = g.tr.Send(env) // losses are the network's business
	}
}

// pickDestsLocked selects this round's gossip destinations.
func (g *Gossiper) pickDestsLocked() []int {
	peers := g.peers
	k := g.cfg.Fanout
	if k <= 0 || k >= len(peers) {
		return peers
	}
	if len(g.scratch) != len(peers) {
		g.scratch = make([]int, len(peers))
	}
	copy(g.scratch, peers)
	// Partial Fisher-Yates: first k entries are a uniform sample.
	for i := 0; i < k; i++ {
		j := i + g.rng.Intn(len(g.scratch)-i)
		g.scratch[i], g.scratch[j] = g.scratch[j], g.scratch[i]
	}
	return g.scratch[:k]
}

func (g *Gossiper) recvLoop() {
	defer close(g.recvDone)
	defer close(g.forward)
	for env := range g.tr.Recv() {
		if env.Type != GossipEnvelopeType {
			select {
			case g.forward <- env:
			default: // slow consumer: drop rather than stall detection
			}
			continue
		}
		var data []byte
		if err := env.Unmarshal(&data); err != nil {
			continue
		}
		pb, err := DecodePiggyback(data)
		if err != nil || len(pb.Counters) != g.cfg.N {
			continue
		}
		g.merge(pb, time.Now())
	}
}

// merge folds one received piggyback into local state: counters merge
// by maximum, each increase is a heartbeat arrival for that node's
// estimator, and accusations are remembered at their freshness.
func (g *Gossiper) merge(pb Piggyback, now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.muted {
		return // paused: a stopped process processes nothing
	}
	for i := range g.counters {
		if pb.Counters[i] > g.counters[i] {
			g.counters[i] = pb.Counters[i]
			if !g.present[i] {
				// First sighting of a deferred joiner: activate it with
				// an estimator whose epoch is now, the same bootstrap
				// grace a cluster start gets.
				g.present[i] = true
				if i+1 != g.cfg.Self {
					est := g.cfg.NewEstimator()
					if es, ok := est.(EpochSetter); ok {
						es.SetEpoch(now)
					}
					g.ests[i] = est
				}
			}
			if est := g.ests[i]; est != nil {
				est.Observe(now)
			}
		}
		if pb.Suspects[i] && g.present[i] && i+1 != g.cfg.Self && pb.Origin != i+1 {
			if !g.accused[i] || pb.Counters[i] > g.accusedAt[i] {
				g.accused[i] = true
				g.accusedAt[i] = pb.Counters[i]
			}
		}
	}
}

// verdictsLocked evaluates every local estimator at time now.
func (g *Gossiper) verdictsLocked(now time.Time) []bool {
	out := make([]bool, g.cfg.N)
	for i, est := range g.ests {
		if est != nil {
			out[i] = est.Suspect(now)
		}
	}
	return out
}

// Verdicts returns the local estimator verdict for every node
// (index id-1; always false at self).
func (g *Gossiper) Verdicts(now time.Time) []bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.verdictsLocked(now)
}

// Suspects returns the IDs this node currently suspects locally.
func (g *Gossiper) Suspects() []int {
	verdicts := g.Verdicts(time.Now())
	var out []int
	for i, s := range verdicts {
		if s {
			out = append(out, i+1)
		}
	}
	return out
}

// CommunitySuspects returns the IDs suspected either locally or by a
// live (non-expired) accusation gossiped from elsewhere: an accusation
// of q holds exactly while no counter for q fresher than the
// accusation is known.
func (g *Gossiper) CommunitySuspects() []int {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for i := range g.counters {
		if i+1 == g.cfg.Self || !g.present[i] {
			continue // an unseen joiner is absent, not suspect
		}
		local := g.ests[i] != nil && g.ests[i].Suspect(now)
		remote := g.accused[i] && g.accusedAt[i] >= g.counters[i]
		if local || remote {
			out = append(out, i+1)
		}
	}
	return out
}

// Known returns the IDs this node considers part of the group: every
// initially-present node plus each deferred joiner whose counters have
// been observed. The membership feed admits joiners from this view.
func (g *Gossiper) Known() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []int
	for i, p := range g.present {
		if p {
			out = append(out, i+1)
		}
	}
	return out
}

// AddPeer adds an overlay neighbor at runtime — the overlay
// re-resolution that makes a mid-run joiner reachable. Adding an
// existing peer (or self) is a no-op.
func (g *Gossiper) AddPeer(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 1 || id > g.cfg.N || id == g.cfg.Self {
		return
	}
	for _, p := range g.peers {
		if p == id {
			return
		}
	}
	g.peers = append(g.peers, id)
}

// Counter returns the freshest-known heartbeat counter for node q.
func (g *Gossiper) Counter(q int) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if q < 1 || q > g.cfg.N {
		return 0
	}
	return g.counters[q-1]
}

// DistinctDestinations returns how many distinct nodes this gossiper
// has ever sent a heartbeat to — the fan-out bound the O(log n)
// overlay is accountable to.
func (g *Gossiper) DistinctDestinations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sentTo)
}

// Rounds returns the number of gossip rounds emitted.
func (g *Gossiper) Rounds() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rounds
}

// SetMuted pauses or resumes the gossiper: while muted it emits
// nothing and discards inbound gossip — the in-process emulation of
// SIGSTOP for cluster runs that spawn goroutines instead of OS
// processes.
func (g *Gossiper) SetMuted(muted bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.muted = muted
}

// Close stops both loops (closing the underlying transport — the
// gossiper owns the receiving end) and waits for them.
func (g *Gossiper) Close() {
	g.once.Do(func() { close(g.stop) })
	<-g.emitDone
	_ = g.tr.Close()
	<-g.recvDone
}
