package heartbeat

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestPiggybackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		pb := Piggyback{
			Origin:   1 + rng.Intn(n),
			Counters: make([]uint64, n),
			Suspects: make([]bool, n),
		}
		for i := range pb.Counters {
			pb.Counters[i] = uint64(rng.Int63n(1 << 40))
			pb.Suspects[i] = rng.Intn(3) == 0
		}
		data, err := pb.Encode()
		if err != nil {
			t.Fatalf("encode n=%d: %v", n, err)
		}
		got, err := DecodePiggyback(data)
		if err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, pb) {
			t.Fatalf("round-trip mismatch at n=%d:\nsent %+v\ngot  %+v", n, pb, got)
		}
	}
}

func TestPiggybackEncodeRejectsBadInput(t *testing.T) {
	cases := []Piggyback{
		{Origin: 1}, // empty
		{Origin: 0, Counters: make([]uint64, 4), Suspects: make([]bool, 4)}, // origin 0
		{Origin: 5, Counters: make([]uint64, 4), Suspects: make([]bool, 4)}, // origin > n
		{Origin: 1, Counters: make([]uint64, 4), Suspects: make([]bool, 3)}, // length skew
	}
	for i, pb := range cases {
		if _, err := pb.Encode(); err == nil {
			t.Errorf("case %d: bad piggyback encoded without error", i)
		}
	}
}

func TestPiggybackDecodeRejectsTruncation(t *testing.T) {
	pb := Piggyback{
		Origin:   2,
		Counters: []uint64{10, 2000, 3, 1 << 50},
		Suspects: []bool{false, true, false, true},
	}
	data, err := pb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodePiggyback(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded without error", cut, len(data))
		}
	}
	if _, err := DecodePiggyback(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	bad := append([]byte{}, data...)
	bad[0] = 99
	if _, err := DecodePiggyback(bad); err == nil {
		t.Fatal("wrong version decoded without error")
	}
}

// FuzzPiggybackDecode holds the decoder to memory safety and the
// decode-encode-decode fixpoint on arbitrary input: the wire format
// gains fields in live-cluster PRs, and a frame off the network is
// attacker-adjacent input.
func FuzzPiggybackDecode(f *testing.F) {
	seedPB := Piggyback{
		Origin:   1,
		Counters: []uint64{5, 0, 1 << 33},
		Suspects: []bool{false, true, true},
	}
	if data, err := seedPB.Encode(); err == nil {
		f.Add(data)
	}
	f.Add([]byte{piggybackVersion, 1, 1, 0, 0})
	f.Add([]byte{piggybackVersion, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pb, err := DecodePiggyback(data)
		if err != nil {
			return
		}
		re, err := pb.Encode()
		if err != nil {
			t.Fatalf("decoded piggyback does not re-encode: %v", err)
		}
		back, err := DecodePiggyback(re)
		if err != nil {
			t.Fatalf("re-encoded piggyback does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, pb) {
			t.Fatalf("decode/encode not a fixpoint:\nfirst  %+v\nsecond %+v", pb, back)
		}
	})
}

// TestPiggybackSize documents the wire-size win of the binary codec:
// a 200-node vector with realistic counters stays well under a
// kilobyte.
func TestPiggybackSize(t *testing.T) {
	const n = 200
	pb := Piggyback{Origin: 1, Counters: make([]uint64, n), Suspects: make([]bool, n)}
	for i := range pb.Counters {
		pb.Counters[i] = 100_000 // ~3 varint bytes each
	}
	data, err := pb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 1024 {
		t.Fatalf("200-node piggyback is %d bytes, want ≤ 1024", len(data))
	}
	if bytes.Equal(data, nil) {
		t.Fatal("empty encoding")
	}
}
