package heartbeat

import (
	"testing"
	"time"
)

func feed(est Estimator, n int) time.Time {
	t := time.Unix(0, 0)
	for i := 0; i < n; i++ {
		t = t.Add(20 * time.Millisecond)
		est.Observe(t)
	}
	return t
}

func BenchmarkPhiCalculation(b *testing.B) {
	b.ReportAllocs()
	p := &PhiAccrual{Window: 128, Threshold: 8, MinStdDev: time.Millisecond}
	last := feed(p, 256)
	q := last.Add(35 * time.Millisecond)
	for i := 0; i < b.N; i++ {
		_ = p.Phi(q)
	}
}

func BenchmarkChenSuspect(b *testing.B) {
	b.ReportAllocs()
	c := &Chen{Window: 32, Alpha: 30 * time.Millisecond}
	last := feed(c, 64)
	q := last.Add(35 * time.Millisecond)
	for i := 0; i < b.N; i++ {
		_ = c.Suspect(q)
	}
}

func BenchmarkFixedSuspect(b *testing.B) {
	b.ReportAllocs()
	f := &FixedTimeout{Timeout: 50 * time.Millisecond}
	last := feed(f, 4)
	q := last.Add(35 * time.Millisecond)
	for i := 0; i < b.N; i++ {
		_ = f.Suspect(q)
	}
}

func BenchmarkObserve(b *testing.B) {
	b.ReportAllocs()
	p := &PhiAccrual{Window: 128}
	t := time.Unix(0, 0)
	for i := 0; i < b.N; i++ {
		t = t.Add(20 * time.Millisecond)
		p.Observe(t)
	}
}
