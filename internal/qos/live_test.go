package qos

import (
	"math/rand"
	"testing"
	"time"
)

// TestFoldFlipsMatchesDirectRecording holds the live-report path to
// the reference: a node that records every sample directly into a
// Timeline and a node that ships only the flips must yield identical
// metrics, over randomized verdict streams and crash placements.
func TestFoldFlipsMatchesDirectRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		start := time.Unix(1_700_000_000, 0)
		period := time.Duration(1+rng.Intn(50)) * time.Millisecond
		samples := 1 + rng.Intn(400)
		end := start.Add(time.Duration(samples) * period)
		// Occasionally stretch end past the sample grid to exercise
		// the tail rule.
		if rng.Intn(3) == 0 {
			end = end.Add(time.Duration(rng.Intn(int(period))))
		}

		var crashAt time.Time
		if rng.Intn(2) == 0 {
			crashAt = start.Add(time.Duration(rng.Int63n(int64(end.Sub(start)))))
		}

		direct := NewTimeline(start)
		if !crashAt.IsZero() {
			direct.Crash(crashAt)
		}
		var flips []Flip
		verdict := false
		record := func(q time.Time) {
			// Flip with some probability; crashed targets trend toward
			// suspected to exercise detection streaks.
			pFlip := 10
			if !crashAt.IsZero() && q.After(crashAt) && !verdict {
				pFlip = 40
			}
			if rng.Intn(100) < pFlip {
				verdict = !verdict
				flips = append(flips, Flip{AtUnixNano: q.UnixNano(), Suspected: verdict})
			}
			direct.Record(q, verdict)
		}
		var lastQ time.Time
		for q := start.Add(period); !q.After(end); q = q.Add(period) {
			record(q)
			lastQ = q
		}
		if !lastQ.Equal(end) {
			record(end)
		}

		want := direct.Compute()
		got := FoldFlips(start, end, crashAt, flips, period)
		if got != want {
			t.Fatalf("trial %d (period %v, samples %d, crash %v):\nfold   %+v\ndirect %+v",
				trial, period, samples, crashAt, got, want)
		}
	}
}

func TestFoldFlipsEdges(t *testing.T) {
	start := time.Unix(0, 0)
	end := start.Add(time.Second)
	// Degenerate inputs yield empty metrics rather than panics.
	if m := FoldFlips(start, end, time.Time{}, nil, 0); m.Samples != 0 {
		t.Fatalf("zero period: %+v", m)
	}
	if m := FoldFlips(end, start, time.Time{}, nil, time.Millisecond); m.Samples != 0 {
		t.Fatalf("inverted window: %+v", m)
	}
	// No flips at all: never suspected, full accuracy.
	m := FoldFlips(start, end, time.Time{}, nil, 100*time.Millisecond)
	if m.Samples == 0 || m.Mistakes != 0 || m.QueryAccuracy != 1 {
		t.Fatalf("quiet window: %+v", m)
	}
	// One permanent suspicion after a crash: detected, T_D measured
	// from the crash to the flip.
	crash := start.Add(300 * time.Millisecond)
	flip := start.Add(500 * time.Millisecond)
	m = FoldFlips(start, end, crash, []Flip{{AtUnixNano: flip.UnixNano(), Suspected: true}}, 100*time.Millisecond)
	if !m.Detected {
		t.Fatalf("crash not detected: %+v", m)
	}
	if m.DetectionTime != 200*time.Millisecond {
		t.Fatalf("T_D = %v, want 200ms", m.DetectionTime)
	}
	// A flip before the first sample still sets the initial verdict.
	m = FoldFlips(start, end, time.Time{}, []Flip{{AtUnixNano: start.UnixNano(), Suspected: true}}, 250*time.Millisecond)
	if m.Mistakes == 0 || m.QueryAccuracy != 0 {
		t.Fatalf("pre-window flip ignored: %+v", m)
	}
}
