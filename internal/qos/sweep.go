package qos

import (
	"math"
	"math/rand"
	"time"

	"realisticfd/internal/heartbeat"
)

// ArrivalModel generates a synthetic heartbeat arrival sequence with
// the statistics of a real link: normally-jittered inter-arrival
// times, probabilistic loss, and an optional crash after which nothing
// arrives. All randomness is seeded.
type ArrivalModel struct {
	// Interval is the sender's heartbeat period.
	Interval time.Duration
	// JitterStd is the standard deviation of the one-way delay jitter.
	JitterStd time.Duration
	// DropPct is the percentage (0..100) of heartbeats lost.
	DropPct int
	// CrashAfter, when positive, crashes the sender that long into the
	// run.
	CrashAfter time.Duration
	// Duration is the observation window length.
	Duration time.Duration
	// SamplePeriod is how often the monitor is queried.
	SamplePeriod time.Duration
	// Seed drives jitter and loss.
	Seed int64
}

// Replay drives est with the model's synthetic arrivals and query
// samples, returning the resulting timeline. Virtual time starts at
// the epoch; nothing sleeps.
func (am ArrivalModel) Replay(est heartbeat.Estimator) *Timeline {
	start := time.Unix(0, 0)
	rng := rand.New(rand.NewSource(am.Seed))
	tl := NewTimeline(start)

	var crashAt time.Time
	if am.CrashAfter > 0 {
		crashAt = start.Add(am.CrashAfter)
		tl.Crash(crashAt)
	}

	// Generate arrival instants: sent every Interval, delayed by
	// |N(0, JitterStd)|, dropped with DropPct. Arrivals can reorder
	// slightly under jitter; estimators ignore non-monotone arrivals,
	// as a real monitor reading a clock would.
	var arrivals []time.Time
	for sent := start; sent.Before(start.Add(am.Duration)); sent = sent.Add(am.Interval) {
		if !crashAt.IsZero() && !sent.Before(crashAt) {
			break
		}
		if am.DropPct > 0 && rng.Intn(100) < am.DropPct {
			continue
		}
		jitter := time.Duration(math.Abs(rng.NormFloat64()) * float64(am.JitterStd))
		arrivals = append(arrivals, sent.Add(jitter))
	}

	// Interleave arrivals and query samples in time order.
	ai := 0
	for q := start.Add(am.SamplePeriod); !q.After(start.Add(am.Duration)); q = q.Add(am.SamplePeriod) {
		for ai < len(arrivals) && !arrivals[ai].After(q) {
			est.Observe(arrivals[ai])
			ai++
		}
		tl.Record(q, est.Suspect(q))
	}
	return tl
}

// SweepPoint is one (configuration, metrics) row of a QoS sweep.
type SweepPoint struct {
	Estimator string
	Crash     Metrics // run where the sender crashes mid-window
	Steady    Metrics // failure-free run (mistakes only)
}

// Config is one estimator configuration in a sweep.
type Config struct {
	Label string
	Make  func() heartbeat.Estimator
}

// Sweep replays both a crash scenario and a steady-state scenario for
// each estimator configuration, pairing detection speed against false
// suspicion cost — the E9 frontier.
func Sweep(base ArrivalModel, configs []Config) []SweepPoint {
	out := make([]SweepPoint, 0, len(configs))
	for _, cfg := range configs {
		crashModel := base
		if crashModel.CrashAfter <= 0 {
			crashModel.CrashAfter = base.Duration / 2
		}
		steadyModel := base
		steadyModel.CrashAfter = 0

		crashTL := crashModel.Replay(cfg.Make())
		steadyTL := steadyModel.Replay(cfg.Make())
		out = append(out, SweepPoint{
			Estimator: cfg.Label,
			Crash:     crashTL.Compute(),
			Steady:    steadyTL.Compute(),
		})
	}
	return out
}
