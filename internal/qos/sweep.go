package qos

import (
	"math"
	"math/rand"
	"time"

	"realisticfd/internal/harness"
	"realisticfd/internal/heartbeat"
)

// ArrivalModel generates a synthetic heartbeat arrival sequence with
// the statistics of a real link: normally-jittered inter-arrival
// times, probabilistic loss, and an optional crash after which nothing
// arrives. All randomness is seeded.
type ArrivalModel struct {
	// Interval is the sender's heartbeat period.
	Interval time.Duration
	// JitterStd is the standard deviation of the one-way delay jitter.
	JitterStd time.Duration
	// DropPct is the percentage (0..100) of heartbeats lost.
	DropPct int
	// CrashAfter, when positive, crashes the sender that long into the
	// run.
	CrashAfter time.Duration
	// OutageStart/OutageDuration, when OutageDuration is positive,
	// silence the link for that window: heartbeats sent in
	// [OutageStart, OutageStart+OutageDuration) from the epoch are
	// lost, then the link heals — the timeline analogue of a network
	// partition with heal-at-t.
	OutageStart    time.Duration
	OutageDuration time.Duration
	// Duration is the observation window length.
	Duration time.Duration
	// SamplePeriod is how often the monitor is queried.
	SamplePeriod time.Duration
	// Seed drives jitter and loss.
	Seed int64
}

// Replay drives est with the model's synthetic arrivals and query
// samples, returning the resulting timeline. Virtual time starts at
// the epoch; nothing sleeps.
func (am ArrivalModel) Replay(est heartbeat.Estimator) *Timeline {
	start := time.Unix(0, 0)
	rng := rand.New(rand.NewSource(am.Seed))
	tl := NewTimeline(start)

	var crashAt time.Time
	if am.CrashAfter > 0 {
		crashAt = start.Add(am.CrashAfter)
		tl.Crash(crashAt)
	}

	// Generate arrival instants: sent every Interval, delayed by
	// |N(0, JitterStd)|, dropped with DropPct. Arrivals can reorder
	// slightly under jitter; estimators ignore non-monotone arrivals,
	// as a real monitor reading a clock would.
	var arrivals []time.Time
	for sent := start; sent.Before(start.Add(am.Duration)); sent = sent.Add(am.Interval) {
		if !crashAt.IsZero() && !sent.Before(crashAt) {
			break
		}
		if am.DropPct > 0 && rng.Intn(100) < am.DropPct {
			continue
		}
		jitter := time.Duration(math.Abs(rng.NormFloat64()) * float64(am.JitterStd))
		// The outage filter runs after every RNG draw, so enabling an
		// outage does not shift the jitter/loss stream: the same seed
		// yields the same arrivals outside the silent window.
		if am.OutageDuration > 0 {
			sinceStart := sent.Sub(start)
			if sinceStart >= am.OutageStart && sinceStart < am.OutageStart+am.OutageDuration {
				continue
			}
		}
		arrivals = append(arrivals, sent.Add(jitter))
	}

	// Interleave arrivals and query samples in time order.
	ai := 0
	end := start.Add(am.Duration)
	var lastQ time.Time
	for q := start.Add(am.SamplePeriod); !q.After(end); q = q.Add(am.SamplePeriod) {
		for ai < len(arrivals) && !arrivals[ai].After(q) {
			est.Observe(arrivals[ai])
			ai++
		}
		tl.Record(q, est.Suspect(q))
		lastQ = q
	}
	// When SamplePeriod does not divide Duration the loop stops short
	// of the window's end, leaving the tail unobserved — and
	// FinalSuspected/OutageRecovered reporting a stale instant. Close
	// the window with one final sample at exactly start+Duration.
	if !lastQ.Equal(end) {
		for ai < len(arrivals) && !arrivals[ai].After(end) {
			est.Observe(arrivals[ai])
			ai++
		}
		tl.Record(end, est.Suspect(end))
	}
	return tl
}

// SweepPoint is one (configuration, metrics) row of a QoS sweep.
type SweepPoint struct {
	Estimator string
	Crash     Metrics // run where the sender crashes mid-window
	Steady    Metrics // failure-free run (mistakes only)
	// Outage is the run where the link goes silent for a while and
	// heals; the suspicion episodes it induces are mistakes, and
	// OutageRecovered reports whether the estimator trusts the sender
	// again by the end of the window.
	Outage          Metrics
	OutageRecovered bool
}

// Config is one estimator configuration in a sweep.
type Config struct {
	Label string
	Make  func() heartbeat.Estimator
}

// Sweep replays a crash scenario, a steady-state scenario and a
// healed-outage scenario for each estimator configuration, pairing
// detection speed against false-suspicion cost — the E9 frontier. The
// configurations replay concurrently on workers goroutines (≤ 0 means
// GOMAXPROCS); results keep input order, so the sweep is deterministic
// at any parallelism. Make must build estimators without shared state.
func Sweep(base ArrivalModel, configs []Config, workers int) []SweepPoint {
	return harness.ParMap(configs, workers, func(_ int, cfg Config) SweepPoint {
		crashModel := base
		if crashModel.CrashAfter <= 0 {
			crashModel.CrashAfter = base.Duration / 2
		}
		steadyModel := base
		steadyModel.CrashAfter = 0

		outageModel := steadyModel
		if outageModel.OutageDuration <= 0 {
			outageModel.OutageStart = 2 * base.Duration / 5
			outageModel.OutageDuration = base.Duration / 10
		}

		crashTL := crashModel.Replay(cfg.Make())
		steadyTL := steadyModel.Replay(cfg.Make())
		outageTL := outageModel.Replay(cfg.Make())
		return SweepPoint{
			Estimator:       cfg.Label,
			Crash:           crashTL.Compute(),
			Steady:          steadyTL.Compute(),
			Outage:          outageTL.Compute(),
			OutageRecovered: !outageTL.FinalSuspected(),
		}
	})
}
