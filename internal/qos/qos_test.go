package qos

import (
	"testing"
	"time"

	"realisticfd/internal/heartbeat"
)

var origin = time.Unix(0, 0)

func at(d time.Duration) time.Time { return origin.Add(d) }

func TestTimelineOrderEnforced(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(origin)
	tl.Record(at(10*time.Millisecond), false)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	tl.Record(at(5*time.Millisecond), false)
}

func TestMetricsCleanDetection(t *testing.T) {
	t.Parallel()
	// Trusted while alive, crash at 1s, suspected from 1.3s on.
	tl := NewTimeline(origin)
	tl.Crash(at(time.Second))
	for d := 100 * time.Millisecond; d <= 2*time.Second; d += 100 * time.Millisecond {
		tl.Record(at(d), d >= 1300*time.Millisecond)
	}
	m := tl.Compute()
	if !m.Detected {
		t.Fatal("crash not detected")
	}
	if m.DetectionTime != 300*time.Millisecond {
		t.Fatalf("T_D = %v, want 300ms", m.DetectionTime)
	}
	if m.Mistakes != 0 {
		t.Fatalf("mistakes = %d, want 0", m.Mistakes)
	}
	if m.QueryAccuracy != 1 {
		t.Fatalf("P_A = %v, want 1", m.QueryAccuracy)
	}
}

func TestMetricsFalseSuspicionEpisodes(t *testing.T) {
	t.Parallel()
	// Alive throughout; two false episodes: [200,400) and [700,800).
	tl := NewTimeline(origin)
	verdict := func(d time.Duration) bool {
		return (d >= 200*time.Millisecond && d < 400*time.Millisecond) ||
			(d >= 700*time.Millisecond && d < 800*time.Millisecond)
	}
	for d := 100 * time.Millisecond; d <= time.Second; d += 100 * time.Millisecond {
		tl.Record(at(d), verdict(d))
	}
	m := tl.Compute()
	if m.Detected {
		t.Fatal("detected a crash that never happened")
	}
	if m.Mistakes != 2 {
		t.Fatalf("mistakes = %d, want 2", m.Mistakes)
	}
	// Episode lengths measured between samples: 200ms and 100ms → avg
	// 150ms.
	if m.AvgMistakeDuration != 150*time.Millisecond {
		t.Fatalf("T_M = %v, want 150ms", m.AvgMistakeDuration)
	}
	// 10 alive samples, 3 wrong (200,300,700) → P_A = 0.7.
	if m.QueryAccuracy < 0.69 || m.QueryAccuracy > 0.71 {
		t.Fatalf("P_A = %v, want 0.7", m.QueryAccuracy)
	}
	if m.MistakeRate <= 0 {
		t.Fatal("λ_M should be positive")
	}
}

func TestMetricsPrematureSuspicionRollsIntoDetection(t *testing.T) {
	t.Parallel()
	// Suspected from 0.9s, crash at 1s, suspected to the end: T_D = 0
	// and the premature 100ms counts as a mistake.
	tl := NewTimeline(origin)
	tl.Crash(at(time.Second))
	for d := 100 * time.Millisecond; d <= 2*time.Second; d += 100 * time.Millisecond {
		tl.Record(at(d), d >= 900*time.Millisecond)
	}
	m := tl.Compute()
	if !m.Detected {
		t.Fatal("not detected")
	}
	if m.DetectionTime != 0 {
		t.Fatalf("T_D = %v, want 0 (suspicion predates crash)", m.DetectionTime)
	}
	if m.Mistakes != 1 {
		t.Fatalf("mistakes = %d, want 1 (the premature window)", m.Mistakes)
	}
}

func TestMetricsNeverDetected(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(origin)
	tl.Crash(at(500 * time.Millisecond))
	for d := 100 * time.Millisecond; d <= time.Second; d += 100 * time.Millisecond {
		tl.Record(at(d), false)
	}
	m := tl.Compute()
	if m.Detected {
		t.Fatal("reported detection with all-trust verdicts")
	}
}

func TestReplayFixedTimeoutDetectsCrash(t *testing.T) {
	t.Parallel()
	model := ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    time.Millisecond,
		CrashAfter:   time.Second,
		Duration:     2 * time.Second,
		SamplePeriod: 5 * time.Millisecond,
		Seed:         1,
	}
	tl := model.Replay(&heartbeat.FixedTimeout{Timeout: 60 * time.Millisecond})
	m := tl.Compute()
	if !m.Detected {
		t.Fatal("crash not detected")
	}
	// Detection should land within ~timeout+interval of the crash.
	if m.DetectionTime > 120*time.Millisecond {
		t.Fatalf("T_D = %v, want ≤ 120ms", m.DetectionTime)
	}
	if m.Mistakes != 0 {
		t.Fatalf("clean link produced %d mistakes", m.Mistakes)
	}
}

// TestReplayNonDividingSamplePeriodCoversTail is the regression test
// for the unobserved-tail bug: when SamplePeriod does not divide
// Duration, Replay used to stop sampling at the last multiple of the
// period, so anything that happened in the window's tail — like a
// crash turning into permanent suspicion — was invisible and
// FinalSuspected reported a stale instant.
func TestReplayNonDividingSamplePeriodCoversTail(t *testing.T) {
	t.Parallel()
	model := ArrivalModel{
		Interval:   20 * time.Millisecond,
		CrashAfter: 930 * time.Millisecond,
		Duration:   time.Second,
		// 300ms does not divide 1s: in-loop samples land at 300/600/900ms
		// and the 100ms tail is where detection happens.
		SamplePeriod: 300 * time.Millisecond,
		Seed:         1,
	}
	tl := model.Replay(&heartbeat.FixedTimeout{Timeout: 60 * time.Millisecond})
	if got, want := tl.end, origin.Add(model.Duration); !got.Equal(want) {
		t.Fatalf("window ends at %v, want %v (tail sample missing)", got, want)
	}
	if tl.SampleCount() != 4 {
		t.Fatalf("recorded %d samples, want 4 (3 in-period + 1 tail)", tl.SampleCount())
	}
	if !tl.FinalSuspected() {
		t.Fatal("crash at 930ms undetected: the tail sample at 1s never ran")
	}
	if m := tl.Compute(); !m.Detected {
		t.Fatalf("metrics say undetected: %+v", m)
	}

	// A dividing period must not double-sample the endpoint.
	model.SamplePeriod = 250 * time.Millisecond
	tl = model.Replay(&heartbeat.FixedTimeout{Timeout: 60 * time.Millisecond})
	if tl.SampleCount() != 4 {
		t.Fatalf("dividing period recorded %d samples, want exactly 4", tl.SampleCount())
	}
	if got, want := tl.end, origin.Add(model.Duration); !got.Equal(want) {
		t.Fatalf("window ends at %v, want %v", got, want)
	}
}

func TestReplayTightTimeoutMistakesUnderJitterLoss(t *testing.T) {
	t.Parallel()
	// A timeout barely above the interval, 20% loss, heavy jitter:
	// false suspicions are inevitable — the completeness/accuracy
	// trade-off the paper's P-emulation discussion turns on.
	model := ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    8 * time.Millisecond,
		DropPct:      20,
		Duration:     3 * time.Second,
		SamplePeriod: 5 * time.Millisecond,
		Seed:         7,
	}
	tight := model.Replay(&heartbeat.FixedTimeout{Timeout: 25 * time.Millisecond}).Compute()
	loose := model.Replay(&heartbeat.FixedTimeout{Timeout: 200 * time.Millisecond}).Compute()
	if tight.Mistakes == 0 {
		t.Fatal("tight timeout under loss made no mistakes; model too forgiving")
	}
	if loose.Mistakes >= tight.Mistakes {
		t.Fatalf("loose timeout (%d mistakes) not better than tight (%d)", loose.Mistakes, tight.Mistakes)
	}
	if tight.QueryAccuracy >= loose.QueryAccuracy {
		t.Fatalf("P_A ordering wrong: tight %.4f ≥ loose %.4f", tight.QueryAccuracy, loose.QueryAccuracy)
	}
}

func TestSweepFrontier(t *testing.T) {
	t.Parallel()
	base := ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    4 * time.Millisecond,
		DropPct:      10,
		Duration:     2 * time.Second,
		SamplePeriod: 5 * time.Millisecond,
		Seed:         3,
	}
	points := Sweep(base, []Config{
		{Label: "fixed-30ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 30 * time.Millisecond} }},
		{Label: "fixed-100ms", Make: func() heartbeat.Estimator { return &heartbeat.FixedTimeout{Timeout: 100 * time.Millisecond} }},
		{Label: "chen", Make: func() heartbeat.Estimator { return &heartbeat.Chen{Window: 16, Alpha: 40 * time.Millisecond} }},
		{Label: "phi-8", Make: func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{Window: 64, Threshold: 8, MinStdDev: 2 * time.Millisecond}
		}},
	}, 2)
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if !pt.Crash.Detected {
			t.Errorf("%s: crash not detected", pt.Estimator)
		}
		if pt.Steady.Detected {
			t.Errorf("%s: phantom detection in steady state", pt.Estimator)
		}
	}
	// The faster detector must be the sloppier one: fixed-30ms detects
	// faster but mistakes more than fixed-100ms.
	var fast, slow SweepPoint
	for _, pt := range points {
		switch pt.Estimator {
		case "fixed-30ms":
			fast = pt
		case "fixed-100ms":
			slow = pt
		}
	}
	if fast.Crash.DetectionTime >= slow.Crash.DetectionTime {
		t.Errorf("T_D ordering wrong: 30ms %v ≥ 100ms %v", fast.Crash.DetectionTime, slow.Crash.DetectionTime)
	}
	if fast.Steady.Mistakes <= slow.Steady.Mistakes {
		t.Errorf("λ_M ordering wrong: 30ms %d ≤ 100ms %d mistakes", fast.Steady.Mistakes, slow.Steady.Mistakes)
	}
}
