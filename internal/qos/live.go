package qos

import "time"

// Flip is one suspicion verdict change-point reported by a live
// cluster node about one monitored peer: the node samples its
// estimator every sample period but ships only the flips, exactly the
// compression Timeline uses internally — a control-channel report for
// a multi-minute run is a handful of entries per peer instead of
// thousands of samples.
type Flip struct {
	// AtUnixNano is the wall-clock instant of the verdict change.
	AtUnixNano int64 `json:"at"`
	// Suspected is the verdict from this instant on.
	Suspected bool `json:"s"`
}

// FoldFlips reconstructs the Timeline a live observer sampled and
// returns its metrics: the observer recorded a verdict every period
// over [start, end], shipped the change-points, and the ground-truth
// crash instant (zero when the target never crashed) is known only
// here — the orchestrator, not the observed cluster, knows when it
// pulled the trigger. The reconstruction replays the periodic samples
// against the flip list, so live runs produce the same
// Chen-Toueg-Aguilera vocabulary (T_D, λ_M, T_M, P_A) as the
// simulator's E-table rows, directly comparable cell for cell.
func FoldFlips(start, end time.Time, crashAt time.Time, flips []Flip, period time.Duration) Metrics {
	if period <= 0 || end.Before(start) {
		return Metrics{}
	}
	tl := NewTimeline(start)
	if !crashAt.IsZero() {
		tl.Crash(crashAt)
	}
	verdict := false
	idx := 0
	record := func(q time.Time) {
		for idx < len(flips) && !time.Unix(0, flips[idx].AtUnixNano).After(q) {
			verdict = flips[idx].Suspected
			idx++
		}
		tl.Record(q, verdict)
	}
	var lastQ time.Time
	for q := start.Add(period); !q.After(end); q = q.Add(period) {
		record(q)
		lastQ = q
	}
	// Close the window with one final sample at exactly end when the
	// period does not divide the window (the same tail rule as
	// ArrivalModel.Replay).
	if !lastQ.Equal(end) {
		record(end)
	}
	return tl.Compute()
}
