package qos

import (
	"testing"
	"time"

	"realisticfd/internal/heartbeat"
)

func BenchmarkReplay(b *testing.B) {
	b.ReportAllocs()
	m := ArrivalModel{
		Interval:     20 * time.Millisecond,
		JitterStd:    4 * time.Millisecond,
		DropPct:      10,
		CrashAfter:   time.Second,
		Duration:     2 * time.Second,
		SamplePeriod: 5 * time.Millisecond,
		Seed:         1,
	}
	for i := 0; i < b.N; i++ {
		tl := m.Replay(&heartbeat.PhiAccrual{Window: 64, Threshold: 8, MinStdDev: 2 * time.Millisecond})
		_ = tl.Compute()
	}
}

func BenchmarkComputeMetrics(b *testing.B) {
	m := ArrivalModel{
		Interval:     10 * time.Millisecond,
		JitterStd:    3 * time.Millisecond,
		DropPct:      15,
		Duration:     5 * time.Second,
		SamplePeriod: 2 * time.Millisecond,
		Seed:         2,
	}
	tl := m.Replay(&heartbeat.FixedTimeout{Timeout: 15 * time.Millisecond})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tl.Compute()
	}
}
