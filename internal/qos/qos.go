// Package qos implements the quality-of-service metrics for failure
// detectors introduced by Chen, Toueg and Aguilera, applied to the
// heartbeat estimators of package heartbeat: detection time T_D,
// average mistake rate λ_M, average mistake duration T_M, and query
// accuracy probability P_A.
//
// This quantifies the paper's practical trade-off (§1.3): emulating a
// Perfect detector over a real network means choosing a point on the
// completeness/accuracy frontier; the membership layer then makes the
// chosen suspicions "accurate" by exclusion. Experiment E9 sweeps
// that frontier.
package qos

import (
	"fmt"
	"time"
)

// Timeline records the boolean suspicion verdicts about one monitored
// process, sampled at (strictly increasing) times, plus the ground
// truth crash time (zero Time means the process never crashed).
type Timeline struct {
	start   time.Time
	end     time.Time
	crashAt time.Time // zero: never crashed
	samples []sample
}

type sample struct {
	at        time.Time
	suspected bool
}

// NewTimeline opens an observation window starting at start.
func NewTimeline(start time.Time) *Timeline {
	return &Timeline{start: start, end: start}
}

// Crash records the ground-truth crash instant.
func (tl *Timeline) Crash(at time.Time) { tl.crashAt = at }

// Record appends one verdict; times must be non-decreasing.
func (tl *Timeline) Record(at time.Time, suspected bool) {
	if at.Before(tl.end) {
		panic("qos: timeline samples must be time-ordered")
	}
	tl.samples = append(tl.samples, sample{at: at, suspected: suspected})
	tl.end = at
}

// FinalSuspected reports the last verdict of the window — false when
// the timeline is empty. A healed outage must leave this false: trust
// restored.
func (tl *Timeline) FinalSuspected() bool {
	if len(tl.samples) == 0 {
		return false
	}
	return tl.samples[len(tl.samples)-1].suspected
}

// Metrics are the Chen-Toueg-Aguilera QoS figures computed over one
// timeline.
type Metrics struct {
	// DetectionTime is the lag from the crash to the beginning of the
	// final, permanent suspicion (T_D). Zero when the process never
	// crashed or was never (permanently) detected.
	DetectionTime time.Duration
	// Detected reports whether a crashed process was permanently
	// suspected by the end of the window (completeness at horizon).
	Detected bool
	// Mistakes is the number of false-suspicion episodes (transitions
	// to suspected while the process was alive).
	Mistakes int
	// MistakeRate is mistakes per second of alive time (λ_M).
	MistakeRate float64
	// AvgMistakeDuration is the mean length of false-suspicion
	// episodes (T_M).
	AvgMistakeDuration time.Duration
	// QueryAccuracy is the fraction of alive-time samples that
	// correctly answered "trust" (P_A).
	QueryAccuracy float64
	// Samples is the number of verdicts recorded.
	Samples int
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("T_D=%v detected=%v mistakes=%d λ_M=%.4f/s T_M=%v P_A=%.4f",
		m.DetectionTime, m.Detected, m.Mistakes, m.MistakeRate, m.AvgMistakeDuration, m.QueryAccuracy)
}

// Compute derives the metrics from the timeline.
func (tl *Timeline) Compute() Metrics {
	var m Metrics
	m.Samples = len(tl.samples)
	if m.Samples == 0 {
		return m
	}

	crashed := !tl.crashAt.IsZero()
	aliveEnd := tl.end
	if crashed && tl.crashAt.Before(aliveEnd) {
		aliveEnd = tl.crashAt
	}

	// Walk samples: episodes of suspicion while alive are mistakes;
	// the last suspicion streak covering the end of the window is the
	// detection (when the process crashed).
	var (
		aliveSamples, aliveCorrect int
		mistakeTotal               time.Duration
		episodeStart               time.Time
		inEpisode                  bool
	)
	for _, s := range tl.samples {
		alive := !crashed || s.at.Before(tl.crashAt)
		if alive {
			aliveSamples++
			if !s.suspected {
				aliveCorrect++
			}
		}
		switch {
		case s.suspected && !inEpisode:
			inEpisode = true
			episodeStart = s.at
		case !s.suspected && inEpisode:
			inEpisode = false
			// The episode [episodeStart, s.at) ended with a trust
			// verdict: it was a mistake for its alive portion.
			if episodeStart.Before(aliveEnd) {
				m.Mistakes++
				endAlive := s.at
				if endAlive.After(aliveEnd) {
					endAlive = aliveEnd
				}
				mistakeTotal += endAlive.Sub(episodeStart)
			}
		}
	}
	if inEpisode {
		if crashed {
			// Final streak: detection. Its start may precede the
			// crash (premature suspicion rolls into detection, per
			// Chen-Toueg-Aguilera's T_D definition the detection time
			// is measured from the crash; a streak starting earlier
			// gives T_D = 0).
			m.Detected = true
			if episodeStart.After(tl.crashAt) {
				m.DetectionTime = episodeStart.Sub(tl.crashAt)
			}
			if episodeStart.Before(tl.crashAt) {
				// The premature part was still a mistake.
				m.Mistakes++
				mistakeTotal += tl.crashAt.Sub(episodeStart)
			}
		} else {
			// Suspected at the end of an alive window: an open
			// mistake.
			m.Mistakes++
			mistakeTotal += tl.end.Sub(episodeStart)
		}
	}

	if m.Mistakes > 0 {
		m.AvgMistakeDuration = mistakeTotal / time.Duration(m.Mistakes)
	}
	aliveSpan := aliveEnd.Sub(tl.start).Seconds()
	if aliveSpan > 0 {
		m.MistakeRate = float64(m.Mistakes) / aliveSpan
	}
	if aliveSamples > 0 {
		m.QueryAccuracy = float64(aliveCorrect) / float64(aliveSamples)
	}
	return m
}
