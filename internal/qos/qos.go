// Package qos implements the quality-of-service metrics for failure
// detectors introduced by Chen, Toueg and Aguilera, applied to the
// heartbeat estimators of package heartbeat: detection time T_D,
// average mistake rate λ_M, average mistake duration T_M, and query
// accuracy probability P_A.
//
// This quantifies the paper's practical trade-off (§1.3): emulating a
// Perfect detector over a real network means choosing a point on the
// completeness/accuracy frontier; the membership layer then makes the
// chosen suspicions "accurate" by exclusion. Experiment E9 sweeps
// that frontier.
package qos

import (
	"fmt"
	"time"
)

// Timeline records the boolean suspicion verdicts about one monitored
// process, sampled at (strictly increasing) times, plus the ground
// truth crash time (zero Time means the process never crashed).
//
// Verdicts are stored as change-points only — one flip entry per
// verdict that differs from its predecessor — with the per-sample
// accuracy tallies folded in at Record time. A detector's verdict is
// piecewise-constant (long trust stretches punctuated by suspicion
// episodes), so memory is O(episodes) instead of O(samples); E9's
// frontier sweeps record millions of verdicts but only dozens of
// flips.
type Timeline struct {
	start   time.Time
	end     time.Time
	crashAt time.Time // zero: never crashed
	count   int       // verdicts recorded
	flips   []sample  // change-points: first verdict, then each differing one

	// Alive-window accuracy tallies, maintained incrementally; valid
	// because Crash may not reclassify already-recorded samples.
	aliveSamples int
	aliveCorrect int
}

type sample struct {
	at        time.Time
	suspected bool
}

// NewTimeline opens an observation window starting at start.
func NewTimeline(start time.Time) *Timeline {
	return &Timeline{start: start, end: start}
}

// Crash records the ground-truth crash instant. It must be called
// before any sample it would reclassify: the accuracy tallies are
// folded in as verdicts arrive, so moving the crash across recorded
// samples would silently corrupt them — the panic makes the ordering
// contract explicit. (Every caller — the E9 replays and the live
// collectors — learns of the crash before recording later verdicts.)
func (tl *Timeline) Crash(at time.Time) {
	if tl.count > 0 && (!tl.crashAt.IsZero() || !at.After(tl.end)) {
		panic("qos: Crash must be recorded before the samples it classifies")
	}
	tl.crashAt = at
}

// Record appends one verdict; times must be non-decreasing.
func (tl *Timeline) Record(at time.Time, suspected bool) {
	if at.Before(tl.end) {
		panic("qos: timeline samples must be time-ordered")
	}
	if tl.crashAt.IsZero() || at.Before(tl.crashAt) {
		tl.aliveSamples++
		if !suspected {
			tl.aliveCorrect++
		}
	}
	if tl.count == 0 || tl.flips[len(tl.flips)-1].suspected != suspected {
		tl.flips = append(tl.flips, sample{at: at, suspected: suspected})
	}
	tl.count++
	tl.end = at
}

// SampleCount returns the number of verdicts recorded.
func (tl *Timeline) SampleCount() int { return tl.count }

// FinalSuspected reports the last verdict of the window — false when
// the timeline is empty. A healed outage must leave this false: trust
// restored.
func (tl *Timeline) FinalSuspected() bool {
	if tl.count == 0 {
		return false
	}
	return tl.flips[len(tl.flips)-1].suspected
}

// Metrics are the Chen-Toueg-Aguilera QoS figures computed over one
// timeline.
type Metrics struct {
	// DetectionTime is the lag from the crash to the beginning of the
	// final, permanent suspicion (T_D). Zero when the process never
	// crashed or was never (permanently) detected.
	DetectionTime time.Duration
	// Detected reports whether a crashed process was permanently
	// suspected by the end of the window (completeness at horizon).
	Detected bool
	// Mistakes is the number of false-suspicion episodes (transitions
	// to suspected while the process was alive).
	Mistakes int
	// MistakeRate is mistakes per second of alive time (λ_M).
	MistakeRate float64
	// AvgMistakeDuration is the mean length of false-suspicion
	// episodes (T_M).
	AvgMistakeDuration time.Duration
	// QueryAccuracy is the fraction of alive-time samples that
	// correctly answered "trust" (P_A).
	QueryAccuracy float64
	// Samples is the number of verdicts recorded.
	Samples int
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("T_D=%v detected=%v mistakes=%d λ_M=%.4f/s T_M=%v P_A=%.4f",
		m.DetectionTime, m.Detected, m.Mistakes, m.MistakeRate, m.AvgMistakeDuration, m.QueryAccuracy)
}

// Compute derives the metrics from the timeline.
func (tl *Timeline) Compute() Metrics {
	var m Metrics
	m.Samples = tl.count
	if m.Samples == 0 {
		return m
	}

	crashed := !tl.crashAt.IsZero()
	aliveEnd := tl.end
	if crashed && tl.crashAt.Before(aliveEnd) {
		aliveEnd = tl.crashAt
	}

	// Walk the change-points: a suspicion episode starts at a flip to
	// suspected and ends at the next flip back to trust — exactly the
	// sample pair the per-sample walk used to find, since an episode's
	// boundary samples are by definition verdict changes. The last
	// suspicion streak covering the end of the window is the detection
	// (when the process crashed).
	var (
		mistakeTotal time.Duration
		episodeStart time.Time
		inEpisode    bool
	)
	for _, s := range tl.flips {
		switch {
		case s.suspected && !inEpisode:
			inEpisode = true
			episodeStart = s.at
		case !s.suspected && inEpisode:
			inEpisode = false
			// The episode [episodeStart, s.at) ended with a trust
			// verdict: it was a mistake for its alive portion.
			if episodeStart.Before(aliveEnd) {
				m.Mistakes++
				endAlive := s.at
				if endAlive.After(aliveEnd) {
					endAlive = aliveEnd
				}
				mistakeTotal += endAlive.Sub(episodeStart)
			}
		}
	}
	if inEpisode {
		if crashed {
			// Final streak: detection. Its start may precede the
			// crash (premature suspicion rolls into detection, per
			// Chen-Toueg-Aguilera's T_D definition the detection time
			// is measured from the crash; a streak starting earlier
			// gives T_D = 0).
			m.Detected = true
			if episodeStart.After(tl.crashAt) {
				m.DetectionTime = episodeStart.Sub(tl.crashAt)
			}
			if episodeStart.Before(tl.crashAt) {
				// The premature part was still a mistake.
				m.Mistakes++
				mistakeTotal += tl.crashAt.Sub(episodeStart)
			}
		} else {
			// Suspected at the end of an alive window: an open
			// mistake.
			m.Mistakes++
			mistakeTotal += tl.end.Sub(episodeStart)
		}
	}

	if m.Mistakes > 0 {
		m.AvgMistakeDuration = mistakeTotal / time.Duration(m.Mistakes)
	}
	aliveSpan := aliveEnd.Sub(tl.start).Seconds()
	if aliveSpan > 0 {
		m.MistakeRate = float64(m.Mistakes) / aliveSpan
	}
	if tl.aliveSamples > 0 {
		m.QueryAccuracy = float64(tl.aliveCorrect) / float64(tl.aliveSamples)
	}
	return m
}
