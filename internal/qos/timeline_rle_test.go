package qos

import (
	"math/rand"
	"testing"
	"time"
)

// refCompute is the pre-change-point Compute, kept verbatim as the
// reference: walk every sample, classify it against the crash instant,
// and track suspicion episodes sample by sample. The flip-based
// Compute must agree metric for metric.
func refCompute(start, end, crashAt time.Time, samples []sample) Metrics {
	var m Metrics
	m.Samples = len(samples)
	if m.Samples == 0 {
		return m
	}
	crashed := !crashAt.IsZero()
	aliveEnd := end
	if crashed && crashAt.Before(aliveEnd) {
		aliveEnd = crashAt
	}
	var (
		aliveSamples, aliveCorrect int
		mistakeTotal               time.Duration
		episodeStart               time.Time
		inEpisode                  bool
	)
	for _, s := range samples {
		alive := !crashed || s.at.Before(crashAt)
		if alive {
			aliveSamples++
			if !s.suspected {
				aliveCorrect++
			}
		}
		switch {
		case s.suspected && !inEpisode:
			inEpisode = true
			episodeStart = s.at
		case !s.suspected && inEpisode:
			inEpisode = false
			if episodeStart.Before(aliveEnd) {
				m.Mistakes++
				endAlive := s.at
				if endAlive.After(aliveEnd) {
					endAlive = aliveEnd
				}
				mistakeTotal += endAlive.Sub(episodeStart)
			}
		}
	}
	if inEpisode {
		if crashed {
			m.Detected = true
			if episodeStart.After(crashAt) {
				m.DetectionTime = episodeStart.Sub(crashAt)
			}
			if episodeStart.Before(crashAt) {
				m.Mistakes++
				mistakeTotal += crashAt.Sub(episodeStart)
			}
		} else {
			m.Mistakes++
			mistakeTotal += end.Sub(episodeStart)
		}
	}
	if m.Mistakes > 0 {
		m.AvgMistakeDuration = mistakeTotal / time.Duration(m.Mistakes)
	}
	aliveSpan := aliveEnd.Sub(start).Seconds()
	if aliveSpan > 0 {
		m.MistakeRate = float64(m.Mistakes) / aliveSpan
	}
	if aliveSamples > 0 {
		m.QueryAccuracy = float64(aliveCorrect) / float64(aliveSamples)
	}
	return m
}

// TestComputeMatchesPerSampleReference drives random verdict streams —
// biased toward long constant stretches, so the RLE actually collapses
// runs — through the change-point Timeline and the per-sample
// reference, with and without crashes, and requires identical metrics.
func TestComputeMatchesPerSampleReference(t *testing.T) {
	t.Parallel()
	base := time.Unix(1000, 0)
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nSamples := 1 + rng.Intn(60)
		period := time.Duration(5+rng.Intn(50)) * time.Millisecond

		// Crash (or not) at a random instant in or after the window;
		// known up front, as the Timeline contract requires.
		var crashAt time.Time
		if rng.Intn(2) == 0 {
			crashAt = base.Add(time.Duration(rng.Intn(nSamples*int(period)/int(time.Millisecond)+50)) * time.Millisecond)
		}

		tl := NewTimeline(base)
		if !crashAt.IsZero() {
			tl.Crash(crashAt)
		}
		var raw []sample
		at := base
		suspected := false
		for i := 0; i < nSamples; i++ {
			at = at.Add(period)
			if rng.Intn(100) < 25 { // flip rarely: long constant runs
				suspected = !suspected
			}
			tl.Record(at, suspected)
			raw = append(raw, sample{at: at, suspected: suspected})
		}

		got := tl.Compute()
		want := refCompute(base, at, crashAt, raw)
		if got != want {
			t.Fatalf("seed %d (crashAt=%v): metrics diverge\nrle: %+v\nref: %+v", seed, crashAt, got, want)
		}
		if len(tl.flips) > tl.count {
			t.Fatalf("seed %d: %d flips for %d samples", seed, len(tl.flips), tl.count)
		}
	}
}

func TestTimelineRunLengthEncodes(t *testing.T) {
	t.Parallel()
	base := time.Unix(0, 0)
	tl := NewTimeline(base)
	for i := 1; i <= 1000; i++ {
		tl.Record(base.Add(time.Duration(i)*time.Millisecond), i >= 500 && i < 600)
	}
	if got := len(tl.flips); got != 3 {
		t.Fatalf("1000 samples with one suspicion episode stored as %d flips, want 3", got)
	}
	if tl.SampleCount() != 1000 {
		t.Fatalf("SampleCount = %d", tl.SampleCount())
	}
	m := tl.Compute()
	if m.Mistakes != 1 || m.Samples != 1000 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestCrashOrderingContract pins the Crash/Record discipline: a crash
// instant may not move across already-recorded samples, because the
// accuracy tallies were classified against the old value.
func TestCrashOrderingContract(t *testing.T) {
	t.Parallel()
	base := time.Unix(0, 0)

	t.Run("crash-before-records-ok", func(t *testing.T) {
		tl := NewTimeline(base)
		tl.Crash(base.Add(50 * time.Millisecond))
		tl.Record(base.Add(10*time.Millisecond), false)
		tl.Record(base.Add(60*time.Millisecond), true)
		if m := tl.Compute(); !m.Detected {
			t.Fatalf("metrics: %+v", m)
		}
	})

	t.Run("future-crash-after-records-ok", func(t *testing.T) {
		tl := NewTimeline(base)
		tl.Record(base.Add(10*time.Millisecond), false)
		// Strictly beyond the last sample: reclassifies nothing.
		tl.Crash(base.Add(20 * time.Millisecond))
		tl.Record(base.Add(30*time.Millisecond), true)
		if m := tl.Compute(); !m.Detected {
			t.Fatalf("metrics: %+v", m)
		}
	})

	t.Run("crash-across-recorded-samples-panics", func(t *testing.T) {
		tl := NewTimeline(base)
		tl.Record(base.Add(10*time.Millisecond), false)
		defer func() {
			if recover() == nil {
				t.Fatal("Crash at/before a recorded sample did not panic")
			}
		}()
		tl.Crash(base.Add(10 * time.Millisecond))
	})

	t.Run("moving-a-set-crash-panics", func(t *testing.T) {
		tl := NewTimeline(base)
		tl.Crash(base.Add(5 * time.Millisecond))
		tl.Record(base.Add(10*time.Millisecond), true)
		defer func() {
			if recover() == nil {
				t.Fatal("re-setting the crash after records did not panic")
			}
		}()
		tl.Crash(base.Add(100 * time.Millisecond))
	})
}
