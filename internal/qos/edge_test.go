package qos

import (
	"strings"
	"testing"
	"time"
)

func TestEmptyTimeline(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(origin)
	m := tl.Compute()
	if m.Samples != 0 || m.Detected || m.Mistakes != 0 {
		t.Fatalf("empty timeline = %+v", m)
	}
}

func TestCrashBeforeFirstSample(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(origin)
	tl.Crash(at(10 * time.Millisecond))
	tl.Record(at(100*time.Millisecond), true)
	tl.Record(at(200*time.Millisecond), true)
	m := tl.Compute()
	if !m.Detected {
		t.Fatal("not detected")
	}
	if m.DetectionTime != 90*time.Millisecond {
		t.Fatalf("T_D = %v, want 90ms", m.DetectionTime)
	}
	// No alive samples: query accuracy over an empty set is 0, and no
	// mistakes are possible.
	if m.Mistakes != 0 {
		t.Fatalf("mistakes = %d", m.Mistakes)
	}
}

func TestAlwaysSuspectedAliveProcess(t *testing.T) {
	t.Parallel()
	// A paranoid detector suspecting a live process throughout: one
	// long open mistake, P_A = 0.
	tl := NewTimeline(origin)
	for d := 10 * time.Millisecond; d <= 100*time.Millisecond; d += 10 * time.Millisecond {
		tl.Record(at(d), true)
	}
	m := tl.Compute()
	if m.Mistakes != 1 {
		t.Fatalf("mistakes = %d, want 1 open episode", m.Mistakes)
	}
	if m.QueryAccuracy != 0 {
		t.Fatalf("P_A = %v, want 0", m.QueryAccuracy)
	}
	if m.Detected {
		t.Fatal("phantom detection")
	}
}

func TestMetricsString(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(origin)
	tl.Crash(at(50 * time.Millisecond))
	tl.Record(at(100*time.Millisecond), true)
	s := tl.Compute().String()
	for _, want := range []string{"T_D=", "λ_M=", "T_M=", "P_A="} {
		if !strings.Contains(s, want) {
			t.Errorf("Metrics.String() = %q missing %q", s, want)
		}
	}
}

func TestReplayWithoutCrashNeverDetects(t *testing.T) {
	t.Parallel()
	m := ArrivalModel{
		Interval:     10 * time.Millisecond,
		Duration:     500 * time.Millisecond,
		SamplePeriod: 5 * time.Millisecond,
		Seed:         2,
	}
	tl := m.Replay(&fakeEst{})
	if got := tl.Compute(); got.Detected {
		t.Fatalf("detected with no crash: %+v", got)
	}
}

// fakeEst never suspects.
type fakeEst struct{}

func (fakeEst) Name() string           { return "fake" }
func (fakeEst) Observe(time.Time)      {}
func (fakeEst) Suspect(time.Time) bool { return false }
