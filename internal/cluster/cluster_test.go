package cluster

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"realisticfd/internal/scenario"
	"realisticfd/internal/transport"
)

// childEnv flags the re-exec: when set, the test binary is not a test
// run at all but one cluster node reading its config from stdin —
// exactly what cmd/fdnode does, so the process-spawner test exercises
// real fork/exec, real signals, real sockets without needing a
// prebuilt binary on the test host.
const childEnv = "FDNODE_TEST_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		if err := RunNodeStdin(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// smokeSpec is the shared kill+pause+partition+heal schedule: two
// nodes SIGKILLed at t0, one paused across the partition window, one
// boundary partitioned and healed, with bound_ms turning the run into
// an assertion.
func smokeSpec(n int) scenario.LiveSpec {
	spec := scenario.LiveSpec{
		Name:       "smoke",
		N:          n,
		IntervalMs: 25,
		Estimator:  scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 300},
		WarmupMs:   800,
		SettleMs:   1500,
		BoundMs:    2500,
		Schedule: []scenario.LiveEventSpec{
			{AtMs: 0, Action: scenario.LiveKill, Nodes: []int{3, 7}},
			{AtMs: 200, Action: scenario.LivePause, Nodes: []int{5}},
			{AtMs: 400, Action: scenario.LivePartition, Side: []int{1, 2}},
			{AtMs: 900, Action: scenario.LiveHeal},
			{AtMs: 900, Action: scenario.LiveResume, Nodes: []int{5}},
		},
	}
	spec.Normalize()
	return spec
}

// TestInProcClusterKillPartitionHeal is the full fault schedule
// against goroutine nodes: the same runtime as real processes, in one
// address space so the race detector sees everything.
func TestInProcClusterKillPartitionHeal(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Spec:         smokeSpec(16),
		Spawner:      InProcSpawner{},
		Seed:         1,
		IncludePairs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("assertions failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	if res.Reports != 14 || res.Expected != 14 {
		t.Fatalf("reports %d/%d, want 14/14", res.Reports, res.Expected)
	}
	if len(res.Kills) != 2 {
		t.Fatalf("kill summaries: %+v", res.Kills)
	}
	for _, kr := range res.Kills {
		if kr.Detected != kr.Observers || kr.Observers != 14 {
			t.Fatalf("killed node %d: detected by %d/%d", kr.Target, kr.Detected, kr.Observers)
		}
		if kr.MaxDetectionMs <= 0 || kr.MaxDetectionMs > 2500 {
			t.Fatalf("killed node %d: max T_D %.0fms outside (0, 2500]", kr.Target, kr.MaxDetectionMs)
		}
	}
	// The paused node healed everywhere.
	for _, pr := range res.Pauses {
		if len(pr.SuspectedAtEndBy) != 0 {
			t.Fatalf("resumed node %d still suspected by %v", pr.Target, pr.SuspectedAtEndBy)
		}
	}
	// The whole point of the gossip overlay: per-node heartbeat
	// fan-out stays at the overlay degree, which is O(log n).
	logBound := 2 * int(math.Ceil(math.Log2(float64(res.N))))
	if res.OverlayDegree > logBound {
		t.Fatalf("overlay degree %d exceeds 2⌈log2 %d⌉ = %d", res.OverlayDegree, res.N, logBound)
	}
	if res.MaxDistinctDestinations > res.OverlayDegree {
		t.Fatalf("fan-out %d exceeds overlay degree %d", res.MaxDistinctDestinations, res.OverlayDegree)
	}
	if len(res.Pairs) != 14*15 {
		t.Fatalf("pair matrix has %d entries, want %d", len(res.Pairs), 14*15)
	}
}

// TestProcClusterKillPauseResume re-execs this test binary as real
// node processes and delivers the faults as signals: SIGKILL is a
// real crash, SIGSTOP a real freeze the victim cannot refuse.
func TestProcClusterKillPauseResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	spec := scenario.LiveSpec{
		Name:       "proc-smoke",
		N:          8,
		IntervalMs: 25,
		Estimator:  scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 300},
		WarmupMs:   800,
		SettleMs:   1500,
		BoundMs:    3000,
		Schedule: []scenario.LiveEventSpec{
			{AtMs: 0, Action: scenario.LiveKill, Nodes: []int{2}},
			{AtMs: 100, Action: scenario.LivePause, Nodes: []int{4}},
			{AtMs: 800, Action: scenario.LiveResume, Nodes: []int{4}},
		},
	}
	spec.Normalize()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Spec:    spec,
		Spawner: &ProcSpawner{Command: []string{os.Args[0]}, Env: []string{childEnv + "=1"}, Stderr: os.Stderr},
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("assertions failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	if res.Reports != 7 {
		t.Fatalf("reports %d, want 7", res.Reports)
	}
	if len(res.Kills) != 1 || res.Kills[0].Detected != 7 {
		t.Fatalf("kill summary: %+v", res.Kills)
	}
}

// wedgeSpawner runs one designated node as a control-channel zombie:
// it says hello, accepts its topology, then never answers anything —
// the shape of a wedged process. The orchestrator must fail the run
// within CollectTimeout, not hang.
type wedgeSpawner struct {
	inner   InProcSpawner
	wedgeID int
}

type wedgeHandle struct {
	conn net.Conn
	done chan struct{}
}

func (h *wedgeHandle) Kill() error   { _ = h.conn.Close(); return nil }
func (h *wedgeHandle) Pause() error  { return nil }
func (h *wedgeHandle) Resume() error { return nil }
func (h *wedgeHandle) Shutdown() {
	_ = h.conn.Close()
	<-h.done
}

func (w *wedgeSpawner) Spawn(cfg NodeConfig) (NodeHandle, error) {
	if cfg.ID != w.wedgeID {
		return w.inner.Spawn(cfg)
	}
	conn, err := net.Dial("tcp", cfg.ControlAddr)
	if err != nil {
		return nil, err
	}
	h := &wedgeHandle{conn: conn, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		// A data-plane address nobody answers at: peers' sends to the
		// wedge are silently lost, like frames into a dead NIC.
		_ = transport.WriteJSON(conn, ctlMsg{Kind: ctlHello, ID: cfg.ID, Addr: "127.0.0.1:1"})
		for {
			var m ctlMsg
			if err := transport.ReadJSON(conn, &m); err != nil {
				return
			}
		}
	}()
	return h, nil
}

// TestOrchestratorFailsFastOnWedge pins the CI-critical property:
// a node that stops responding fails the run within the collect
// timeout instead of hanging it.
func TestOrchestratorFailsFastOnWedge(t *testing.T) {
	spec := scenario.LiveSpec{
		Name:       "wedge",
		N:          8,
		IntervalMs: 25,
		Estimator:  scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 300},
		WarmupMs:   300,
		SettleMs:   300,
		Schedule: []scenario.LiveEventSpec{
			{AtMs: 0, Action: scenario.LiveKill, Nodes: []int{3}},
		},
	}
	spec.Normalize()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, Config{
		Spec:           spec,
		Spawner:        &wedgeSpawner{wedgeID: 8},
		CollectTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("wedged run took %v, should fail fast", elapsed)
	}
	found := false
	for _, f := range res.Failures {
		if strings.Contains(f, "node 8") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wedge not reported: %v", res.Failures)
	}
	if res.Reports != 6 {
		t.Fatalf("reports %d, want 6 (everyone but the corpse and the wedge)", res.Reports)
	}
}

// churnSpec is a /v3 spec exercising every fault axis the live
// interpreter knows at once: seeded drop, a kill, a partition window,
// and a mid-run joiner — with bound_ms turning join adoption and kill
// detection into assertions.
func churnSpec() scenario.Spec {
	return scenario.Spec{
		Schema:   scenario.SchemaV3,
		Name:     "churn",
		N:        12,
		Horizon:  2000,
		Seeds:    scenario.SeedSpec{From: 0, To: 0},
		Protocol: scenario.ProtocolSpec{Kind: scenario.ProtocolBusy},
		Oracle:   scenario.OracleSpec{Kind: scenario.OraclePerfect, Delay: 2},
		Topology: scenario.TopologySpec{Kind: scenario.TopologyChord},
		Plan: []scenario.ActionSpec{
			{At: 0, Action: "drop", Pct: 10},
			{At: 0, Action: "kill", Nodes: []int{3}},
			{At: 200, Action: "cut", Side: []int{1, 2}},
			{At: 500, Action: "heal"},
			{At: 600, Action: "join", Nodes: []int{12}},
		},
		Live: &scenario.LiveParams{
			IntervalMs: 25,
			Estimator:  scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 300},
			WarmupMs:   800,
			SettleMs:   1500,
			BoundMs:    3000,
		},
	}
}

// TestInProcClusterJoinConvergence runs the /v3 churn spec against
// goroutine nodes: node 12 is spawned mid-run under a 10% seeded drop
// rate, and within the settle window (60 gossip rounds) every survivor
// must carry its counters (gossip adoption) and have grown its
// membership view to include it — the end-to-end churn axis.
func TestInProcClusterJoinConvergence(t *testing.T) {
	spec := churnSpec()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Config{
		Scenario: &spec,
		Spawner:  InProcSpawner{},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("assertions failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	// 12 nodes, one killed: 11 survivors report — including the joiner.
	if res.Reports != 11 || res.Expected != 11 {
		t.Fatalf("reports %d/%d, want 11/11", res.Reports, res.Expected)
	}
	if !strings.HasPrefix(res.PlanDigest, "sha256:") {
		t.Fatalf("plan digest %q", res.PlanDigest)
	}
	if len(res.Joins) != 1 {
		t.Fatalf("join summaries: %+v", res.Joins)
	}
	jr := res.Joins[0]
	if jr.Target != 12 || jr.AtMs != 600 || jr.Observers != 10 {
		t.Fatalf("join summary: %+v", jr)
	}
	if jr.KnownBy != jr.Observers {
		t.Fatalf("joiner in gossip state of %d/%d survivors", jr.KnownBy, jr.Observers)
	}
	if jr.InViewOf != jr.Observers {
		t.Fatalf("joiner in membership view of %d/%d survivors", jr.InViewOf, jr.Observers)
	}
	// The killed node is detected by everyone who coexisted with it —
	// the joiner is exempt, it was born after the corpse went cold.
	if len(res.Kills) != 1 || res.Kills[0].Observers != 10 || res.Kills[0].Detected != 10 {
		t.Fatalf("kill summary: %+v", res.Kills)
	}
	// The seeded drop hook actually ran: frames flowed and some died.
	if res.FramesSent == 0 || res.FramesDropped == 0 {
		t.Fatalf("fault hook idle: sent=%d dropped=%d", res.FramesSent, res.FramesDropped)
	}
}

// TestInProcClusterFaultDeterminism pins the seeded-loss contract: two
// runs with the same seed make identical per-link drop/delay verdicts.
// Wall-clock frame counts differ between runs, so the comparison is
// over the common prefix of each link's recorded decision bitmap —
// verdicts are a pure function of (seed, sender, dest, frame index).
func TestInProcClusterFaultDeterminism(t *testing.T) {
	spec := scenario.Spec{
		Schema:   scenario.SchemaV3,
		Name:     "det",
		N:        6,
		Horizon:  1000,
		Seeds:    scenario.SeedSpec{From: 0, To: 0},
		Protocol: scenario.ProtocolSpec{Kind: scenario.ProtocolBusy},
		Oracle:   scenario.OracleSpec{Kind: scenario.OraclePerfect, Delay: 2},
		Topology: scenario.TopologySpec{Kind: scenario.TopologyChord},
		Plan: []scenario.ActionSpec{
			{At: 0, Action: "drop", Pct: 30},
			{At: 0, Action: "delay", Bound: 2},
		},
		Live: &scenario.LiveParams{
			IntervalMs: 20,
			Estimator:  scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 400},
			WarmupMs:   300,
			SettleMs:   600,
		},
	}
	run := func() *Result {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := Run(ctx, Config{
			Scenario:              &spec,
			Spawner:               InProcSpawner{},
			Seed:                  11,
			CollectFaultDecisions: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reports != 6 {
			t.Fatalf("reports %d, want 6", res.Reports)
		}
		if res.FramesDropped == 0 {
			t.Fatal("30%% drop rate dropped nothing")
		}
		return res
	}
	a, b := run(), run()
	if a.PlanDigest == "" || a.PlanDigest != b.PlanDigest {
		t.Fatalf("plan digests diverge: %q vs %q", a.PlanDigest, b.PlanDigest)
	}
	links, drops := 0, 0
	for id, ra := range a.NodeReports {
		rb := b.NodeReports[id]
		if rb == nil {
			t.Fatalf("node %d reported in run A only", id)
		}
		for dest, da := range ra.FaultDecisions {
			db := rb.FaultDecisions[dest]
			common := len(da)
			if len(db) < common {
				common = len(db)
			}
			if common == 0 {
				t.Fatalf("link %d→%d: no common decision prefix (%d vs %d frames)", id, dest, len(da), len(db))
			}
			links++
			for i := 0; i < common; i++ {
				if da[i] != db[i] {
					t.Fatalf("link %d→%d: verdict %d diverges between runs", id, dest, i)
				}
				if da[i] {
					drops++
				}
			}
		}
	}
	if links == 0 {
		t.Fatal("no decision bitmaps collected")
	}
	if drops == 0 {
		t.Fatal("common prefixes contain no drops — determinism untested")
	}
}

func TestEstimatorFactoryKinds(t *testing.T) {
	interval := 50 * time.Millisecond
	cases := []struct {
		spec scenario.LiveEstimatorSpec
		want string
	}{
		{scenario.LiveEstimatorSpec{Kind: scenario.LiveEstFixed, TimeoutMs: 700}, "fixed(700ms)"},
		{scenario.LiveEstimatorSpec{Kind: scenario.LiveEstChen}, "chen(w=16,α=200ms)"},
		{scenario.LiveEstimatorSpec{}, "phi(w=64,Φ=8.0)"},
	}
	for _, tc := range cases {
		if got := EstimatorFactory(tc.spec, interval)().Name(); got != tc.want {
			t.Errorf("EstimatorFactory(%+v) built %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestNodeConfigValidation(t *testing.T) {
	base := NodeConfig{ID: 1, N: 4, ControlAddr: "127.0.0.1:9", IntervalMs: 10, SamplePeriodMs: 10}
	if err := base.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []NodeConfig{
		{ID: 0, N: 4, ControlAddr: "x", IntervalMs: 10, SamplePeriodMs: 10},
		{ID: 5, N: 4, ControlAddr: "x", IntervalMs: 10, SamplePeriodMs: 10},
		{ID: 1, N: 1, ControlAddr: "x", IntervalMs: 10, SamplePeriodMs: 10},
		{ID: 1, N: 4, ControlAddr: "", IntervalMs: 10, SamplePeriodMs: 10},
		{ID: 1, N: 4, ControlAddr: "x", IntervalMs: 0, SamplePeriodMs: 10},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}
