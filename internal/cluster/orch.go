package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"realisticfd/internal/qos"
	"realisticfd/internal/scenario"
	"realisticfd/internal/transport"
)

// Config parameterizes one orchestrated run. Exactly one of Spec and
// Scenario describes the run: Spec is the legacy live format whose
// schedule is compiled to the fault-plan IR on entry; Scenario is a
// /v3 spec whose plan and live parameters drive the run directly —
// both formats reach the same interpreter.
type Config struct {
	// Spec is the normalized, validated live scenario (legacy format);
	// used when Scenario is nil.
	Spec scenario.LiveSpec
	// Scenario, when non-nil, is a parsed /v3 spec: its fault plan,
	// topology and live parameters define the run.
	Scenario *scenario.Spec
	// Spawner launches the nodes (processes or goroutines).
	Spawner Spawner
	// Seed perturbs each node's fanout sampling (node i gets Seed+i)
	// and derives the per-node fault-hook lottery seeds.
	Seed int64
	// IncludePairs adds the full observer×target metric matrix to the
	// result (n·(n−1) entries — summaries only, by default).
	IncludePairs bool
	// CollectFaultDecisions ships each node's recorded per-link
	// drop-verdict prefixes in its report — the cross-run determinism
	// audit.
	CollectFaultDecisions bool
	// HelloTimeout bounds cluster assembly (default 60s).
	HelloTimeout time.Duration
	// CollectTimeout bounds report collection (default 30s): a wedged
	// node fails the run instead of hanging it.
	CollectTimeout time.Duration
	// Log receives progress lines; nil is silent.
	Log io.Writer
}

// runSpec is the resolved form both Config formats reduce to: one
// interpreter input, whichever spec vocabulary described the run.
type runSpec struct {
	name   string
	n      int
	topo   scenario.TopologySpec
	live   scenario.LiveParams
	plan   *scenario.FaultPlan
	digest string
}

// resolveRun compiles the Config's spec — either format — into the
// interpreter's input.
func resolveRun(cfg Config) (runSpec, error) {
	if cfg.Scenario != nil {
		s := *cfg.Scenario
		plan, err := s.CompilePlan()
		if err != nil {
			return runSpec{}, err
		}
		var live scenario.LiveParams
		if s.Live != nil {
			live = *s.Live
		}
		live.Normalize()
		digest, err := s.ConfigDigest()
		if err != nil {
			return runSpec{}, err
		}
		return runSpec{name: s.Name, n: s.N, topo: s.Topology, live: live, plan: plan, digest: digest}, nil
	}
	spec := cfg.Spec
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return runSpec{}, err
	}
	plan, err := spec.CompilePlan()
	if err != nil {
		return runSpec{}, err
	}
	digest, err := spec.ConfigDigest()
	if err != nil {
		return runSpec{}, err
	}
	return runSpec{name: spec.Name, n: spec.N, topo: spec.Topology, live: spec.LiveDefaults(), plan: plan, digest: digest}, nil
}

// joins returns the plan's joiner→instant index (empty when no plan).
func (rs runSpec) joins() map[int]int64 {
	if rs.plan == nil {
		return nil
	}
	return rs.plan.Joins
}

// needsFaultHook reports whether the plan ever touches the loss axes —
// only then do nodes install a transport.FaultHook, keeping legacy
// runs on the exact pre-hook send path.
func (rs runSpec) needsFaultHook() bool {
	if rs.plan == nil {
		return false
	}
	for _, a := range rs.plan.Actions {
		if a.Kind == scenario.ActDrop || a.Kind == scenario.ActDelay {
			return true
		}
	}
	return false
}

// faultSeedFor derives node id's fault-hook lottery seed from the run
// seed: distinct per node, never zero (zero means "no hook").
func faultSeedFor(seed int64, id int) int64 {
	fs := seed*1_000_003 + int64(id)
	if fs == 0 {
		fs = int64(id) + 1
	}
	return fs
}

// PairMetric is one observer's QoS verdict about one target, folded
// from its flip report — the live counterpart of one simulator E-row
// cell.
type PairMetric struct {
	Observer           int     `json:"observer"`
	Target             int     `json:"target"`
	Detected           bool    `json:"detected,omitempty"`
	DetectionMs        float64 `json:"detection_ms,omitempty"`
	Mistakes           int     `json:"mistakes,omitempty"`
	MistakeRatePerSec  float64 `json:"mistake_rate_per_sec,omitempty"`
	AvgMistakeMs       float64 `json:"avg_mistake_ms,omitempty"`
	QueryAccuracy      float64 `json:"query_accuracy"`
	SuspectedAtCollect bool    `json:"suspected_at_collect,omitempty"`
}

// KillReport aggregates detection of one killed (or departed) node
// across the surviving observers.
type KillReport struct {
	Target          int     `json:"target"`
	AtMs            int64   `json:"at_ms"`
	Observers       int     `json:"observers"`
	Detected        int     `json:"detected"`
	MeanDetectionMs float64 `json:"mean_detection_ms"`
	MaxDetectionMs  float64 `json:"max_detection_ms"`
}

// PauseReport records which observers still suspected a
// paused-then-resumed node when metrics were collected — the
// wrongly-suspected-forever check.
type PauseReport struct {
	Target           int   `json:"target"`
	SuspectedAtEndBy []int `json:"suspected_at_end_by,omitempty"`
}

// JoinReport aggregates the cluster's adoption of one mid-run joiner:
// how many survivors' gossip state carries its counters, and how many
// grew their membership view to include it.
type JoinReport struct {
	Target    int   `json:"target"`
	AtMs      int64 `json:"at_ms"`
	Observers int   `json:"observers"`
	KnownBy   int   `json:"known_by"`
	InViewOf  int   `json:"in_view_of"`
}

// NodeView is one reporting node's final membership view.
type NodeView struct {
	Node     int   `json:"node"`
	ViewID   int   `json:"view_id"`
	Excluded []int `json:"excluded,omitempty"`
}

// Result is the orchestrator's verdict on one run.
type Result struct {
	Name           string `json:"name"`
	N              int    `json:"n"`
	Topology       string `json:"topology"`
	IntervalMs     int    `json:"interval_ms"`
	SamplePeriodMs int    `json:"sample_period_ms"`
	Fanout         int    `json:"fanout,omitempty"`
	Estimator      string `json:"estimator"`
	ElapsedMs      int64  `json:"elapsed_ms"`

	// PlanDigest is the sha256 identity of the spec that produced this
	// run — the rerun/checkpoint key cmd/fdorch matches on.
	PlanDigest string `json:"plan_digest,omitempty"`

	// Reports is how many of the Expected surviving nodes reported.
	Reports  int `json:"reports"`
	Expected int `json:"expected"`

	// MaxDistinctDestinations is the largest per-node heartbeat
	// fan-out observed; OverlayDegree is the overlay's max degree —
	// the O(log n) bound the gossip layer is accountable to.
	MaxDistinctDestinations int `json:"max_distinct_destinations"`
	OverlayDegree           int `json:"overlay_degree"`

	// False-suspicion aggregate over clean targets (never killed,
	// never paused).
	FalseSuspicionMistakes int     `json:"false_suspicion_mistakes"`
	MinQueryAccuracy       float64 `json:"min_query_accuracy"`

	// FramesSent/FramesDropped total the fault hooks' per-link tallies
	// across all reporting nodes (zero when the plan never enabled the
	// loss axes).
	FramesSent    uint64 `json:"frames_sent,omitempty"`
	FramesDropped uint64 `json:"frames_dropped,omitempty"`

	Kills  []KillReport  `json:"kills,omitempty"`
	Pauses []PauseReport `json:"pauses,omitempty"`
	Joins  []JoinReport  `json:"joins,omitempty"`
	Views  []NodeView    `json:"views,omitempty"`

	// Failures are violated assertions (bound_ms) and collection
	// gaps; empty means the run passed.
	Failures []string `json:"failures,omitempty"`

	Pairs []PairMetric `json:"pairs,omitempty"`

	// NodeReports carries the raw per-node reports when the run was
	// asked to collect fault decisions — the determinism audit needs
	// the verdict prefixes, not just the folded metrics.
	NodeReports map[int]*NodeReport `json:"-"`
}

// nodeState is the orchestrator's book-keeping for one node.
type nodeState struct {
	id     int
	handle NodeHandle
	conn   net.Conn
	addr   string

	killed     bool
	killedAt   time.Time
	paused     bool
	pausedEver bool
}

// inboundMsg is one post-hello control frame (or read error) from a
// node's control connection.
type inboundMsg struct {
	id  int
	msg ctlMsg
	err error
}

// helloMsg is the first frame of a freshly connected node.
type helloMsg struct {
	conn net.Conn
	r    *bufio.Reader
	msg  ctlMsg
	err  error
}

// Run executes one live-cluster scenario end to end: assemble the
// cluster (minus the plan's mid-run joiners), wire the overlay,
// interpret the fault plan, collect reports, fold metrics. The
// context is the hard deadline — on cancellation everything spawned
// is reclaimed and an error returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	rs, err := resolveRun(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Spawner == nil {
		return nil, fmt.Errorf("cluster: orchestrator needs a spawner")
	}
	helloTimeout := cfg.HelloTimeout
	if helloTimeout <= 0 {
		helloTimeout = 60 * time.Second
	}
	collectTimeout := cfg.CollectTimeout
	if collectTimeout <= 0 {
		collectTimeout = 30 * time.Second
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	// Overlay first: if the topology is unbuildable there is nothing
	// to spawn.
	edges, err := rs.topo.Edges(rs.n)
	if err != nil {
		return nil, err
	}
	neighbors := make(map[int][]int, rs.n)
	for _, e := range edges {
		a, b := int(e.A), int(e.B)
		neighbors[a] = append(neighbors[a], b)
		neighbors[b] = append(neighbors[b], a)
	}
	degree := 0
	for _, ns := range neighbors {
		sort.Ints(ns)
		if len(ns) > degree {
			degree = len(ns)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: control listener: %w", err)
	}
	defer func() { _ = ln.Close() }()

	hellos := make(chan helloMsg, rs.n)
	inbound := make(chan inboundMsg, 4*rs.n)
	readers := make(map[int]*bufio.Reader, rs.n)
	go acceptLoop(ln, hellos, helloTimeout)

	states := make(map[int]*nodeState, rs.n)
	defer func() {
		for _, st := range states {
			if st.conn != nil {
				_ = st.conn.Close()
			}
			if st.handle != nil {
				st.handle.Shutdown()
			}
		}
	}()

	joins := rs.joins()
	needHook := rs.needsFaultHook()
	// The loss rates in effect at a node's spawn instant ride in its
	// NodeConfig: instant-0 rates for the initial fleet, the current
	// rates for joiners. A rate change over the control channel lands at
	// a wall-clock-dependent frame index, so spawn-time preloading is
	// what keeps fully seeded runs reproducible frame-by-frame.
	curDrop, curDelay := 0, int64(0)
	if rs.plan != nil {
		for _, a := range rs.plan.Actions {
			if a.At != 0 {
				continue
			}
			switch a.Kind {
			case scenario.ActDrop:
				curDrop = a.Pct
			case scenario.ActDelay:
				curDelay = a.Bound
			}
		}
	}
	nodeCfg := func(id int) NodeConfig {
		nc := NodeConfig{
			ID:              id,
			N:               rs.n,
			ControlAddr:     ln.Addr().String(),
			IntervalMs:      rs.live.IntervalMs,
			SamplePeriodMs:  rs.live.SamplePeriodMs,
			Fanout:          rs.live.Fanout,
			Estimator:       rs.live.Estimator,
			Seed:            cfg.Seed + int64(id),
			RecordDecisions: cfg.CollectFaultDecisions,
		}
		if needHook {
			nc.FaultSeed = faultSeedFor(cfg.Seed, id)
			nc.DropPct = curDrop
			nc.DelayMaxMs = curDelay
		}
		return nc
	}
	spawn := func(id int) error {
		h, err := cfg.Spawner.Spawn(nodeCfg(id))
		if err != nil {
			return fmt.Errorf("cluster: spawn node %d: %w", id, err)
		}
		states[id] = &nodeState{id: id, handle: h}
		return nil
	}
	// deferredFrom lists the joiners a node starting at plan instant
	// `at` has not yet seen: the gossip layer holds their estimators
	// (and any suspicion of them) until their counters appear.
	deferredFrom := func(self int, at int64) []int {
		var out []int
		for j, jt := range joins {
			if j != self && jt >= at {
				out = append(out, j)
			}
		}
		sort.Ints(out)
		return out
	}
	// sendTopology wires node id: addresses of its already-running
	// overlay neighbors, plus its deferred set.
	sendTopology := func(id int, startAt int64) error {
		st := states[id]
		peers := make(map[int]string, len(neighbors[id]))
		var gossipPeers []int
		for _, nb := range neighbors[id] {
			nst := states[nb]
			if nst == nil || nst.addr == "" {
				continue // a later joiner: adopted via ctlJoin at its join
			}
			peers[nb] = nst.addr
			gossipPeers = append(gossipPeers, nb)
		}
		msg := ctlMsg{Kind: ctlTopology, Peers: peers, GossipPeers: gossipPeers, Deferred: deferredFrom(id, startAt)}
		if err := transport.WriteJSON(st.conn, msg); err != nil {
			return fmt.Errorf("cluster: send topology to node %d: %w", id, err)
		}
		return nil
	}
	// awaitHellos consumes hello frames until every id in want has
	// connected.
	awaitHellos := func(want map[int]bool) error {
		deadline := time.NewTimer(helloTimeout)
		defer deadline.Stop()
		for remaining := len(want); remaining > 0; {
			select {
			case h := <-hellos:
				if h.err != nil {
					return fmt.Errorf("cluster: hello: %w", h.err)
				}
				st := states[h.msg.ID]
				if st == nil || h.msg.Kind != ctlHello || !want[h.msg.ID] {
					_ = h.conn.Close()
					return fmt.Errorf("cluster: bad hello (kind %q, id %d)", h.msg.Kind, h.msg.ID)
				}
				if st.conn != nil {
					_ = h.conn.Close()
					return fmt.Errorf("cluster: duplicate hello from node %d", h.msg.ID)
				}
				st.conn = h.conn
				st.addr = h.msg.Addr
				readers[st.id] = h.r
				remaining--
			case <-deadline.C:
				return fmt.Errorf("cluster: only %d/%d nodes said hello within %v", countConnected(states), rs.n, helloTimeout)
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}

	initial := make([]int, 0, rs.n)
	for id := 1; id <= rs.n; id++ {
		if _, joiner := joins[id]; !joiner {
			initial = append(initial, id)
		}
	}
	if len(initial) == 0 {
		return nil, fmt.Errorf("cluster: every node is a mid-run joiner; nothing to bootstrap")
	}

	logf("spawning %d/%d nodes (%d join mid-run; control %s)", len(initial), rs.n, rs.n-len(initial), ln.Addr())
	wantInitial := make(map[int]bool, len(initial))
	for _, id := range initial {
		if err := spawn(id); err != nil {
			return nil, err
		}
		wantInitial[id] = true
	}

	// Assemble: every initial node must say hello before the overlay
	// is wired.
	if err := awaitHellos(wantInitial); err != nil {
		return nil, err
	}
	logf("all %d initial nodes up; wiring %s overlay (max degree %d)", len(initial), rs.topo.Kind, degree)

	// Wire the overlay and start the per-node control readers.
	for _, id := range initial {
		if err := sendTopology(id, 0); err != nil {
			return nil, err
		}
		go readLoop(id, readers[id], inbound)
	}

	if err := sleepCtx(ctx, time.Duration(rs.live.WarmupMs)*time.Millisecond); err != nil {
		return nil, err
	}

	// The plan runs against t0 = end of warmup; action instants are
	// milliseconds after it.
	t0 := time.Now()
	it := &interp{
		states:    states,
		neighbors: neighbors,
		readers:   readers,
		inbound:   inbound,
		spawn:     spawn,
		sendTopo:  sendTopology,
		await:     awaitHellos,
		joined:    map[int]time.Time{},
		cuts:      map[[2]int]bool{},
		curDrop:   &curDrop,
		curDelay:  &curDelay,
		logf:      logf,
	}
	if rs.plan != nil {
		for _, a := range rs.plan.Actions {
			if err := sleepCtx(ctx, time.Until(t0.Add(time.Duration(a.At)*time.Millisecond))); err != nil {
				return nil, err
			}
			if err := it.exec(a); err != nil {
				return nil, err
			}
		}
	}

	if err := sleepCtx(ctx, time.Duration(rs.live.SettleMs)*time.Millisecond); err != nil {
		return nil, err
	}
	// A node still paused at collection cannot report; resume it.
	// (Spec validation forbids this whenever bound_ms asserts.)
	for _, st := range states {
		if st.paused && !st.killed {
			logf("node %d still paused at collection; resuming", st.id)
			_ = st.handle.Resume()
			st.paused = false
		}
	}

	// Collect: every survivor reports or the run fails — fast.
	var failures []string
	expected := map[int]bool{}
	for id, st := range states {
		if st.killed {
			continue
		}
		if err := transport.WriteJSON(st.conn, ctlMsg{Kind: ctlCollect}); err != nil {
			failures = append(failures, fmt.Sprintf("node %d: collect request failed: %v", id, err))
			continue
		}
		expected[id] = true
	}
	reports := make(map[int]*NodeReport, len(expected))
	collectDeadline := time.NewTimer(collectTimeout)
	defer collectDeadline.Stop()
collect:
	for len(reports) < len(expected) {
		select {
		case in := <-inbound:
			if in.err != nil {
				if st := states[in.id]; st != nil && !st.killed && expected[in.id] && reports[in.id] == nil {
					failures = append(failures, fmt.Sprintf("node %d: control channel died before reporting: %v", in.id, in.err))
					delete(expected, in.id)
				}
				continue
			}
			if in.msg.Kind == ctlReport && in.msg.Report != nil && expected[in.id] {
				reports[in.id] = in.msg.Report
			}
		case <-collectDeadline.C:
			for id := range expected {
				if reports[id] == nil {
					failures = append(failures, fmt.Sprintf("node %d: no report within %v", id, collectTimeout))
				}
			}
			break collect
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	logf("collected %d/%d reports", len(reports), len(expected))

	// Stop the survivors; the deferred cleanup reclaims everything.
	for _, st := range states {
		if !st.killed && st.conn != nil {
			_ = transport.WriteJSON(st.conn, ctlMsg{Kind: ctlStop})
		}
	}

	res := foldResult(rs, cfg, states, reports, it.joined, failures, degree, time.Since(t0))
	interval := time.Duration(rs.live.IntervalMs) * time.Millisecond
	res.Estimator = EstimatorFactory(rs.live.Estimator, interval)().Name()
	res.PlanDigest = rs.digest
	if cfg.CollectFaultDecisions {
		res.NodeReports = reports
	}
	return res, nil
}

// interp is the fault-plan interpreter's mutable state: the live
// lowering of the IR, verb by verb.
type interp struct {
	states    map[int]*nodeState
	neighbors map[int][]int
	readers   map[int]*bufio.Reader
	inbound   chan inboundMsg
	spawn     func(id int) error
	sendTopo  func(id int, startAt int64) error
	await     func(want map[int]bool) error
	joined    map[int]time.Time
	cuts      map[[2]int]bool
	curDrop   *int // shared with nodeCfg: joiners preload the current rates
	curDelay  *int64
	logf      func(string, ...any)
}

// broadcast sends one control frame to every running node.
func (it *interp) broadcast(msg ctlMsg) {
	for _, st := range it.states {
		if st.killed || st.conn == nil {
			continue
		}
		// A write to a freshly dead node's half-open socket can succeed
		// or fail; either way the node is gone — not fatal.
		_ = transport.WriteJSON(st.conn, msg)
	}
}

// exec applies one plan action.
func (it *interp) exec(a scenario.PlanAction) error {
	switch a.Kind {
	case scenario.ActKill:
		for _, id := range a.Nodes {
			st := it.states[id]
			if err := st.handle.Kill(); err != nil {
				return fmt.Errorf("cluster: kill node %d: %w", id, err)
			}
			st.killed = true
			st.killedAt = time.Now()
			it.logf("t+%dms: killed node %d", a.At, id)
		}
	case scenario.ActLeave:
		// A leave is a clean departure: the node exits on ctlStop (no
		// report), falling back to a kill if the stop cannot be sent.
		for _, id := range a.Nodes {
			st := it.states[id]
			if st.conn == nil || transport.WriteJSON(st.conn, ctlMsg{Kind: ctlStop}) != nil {
				_ = st.handle.Kill()
			}
			st.killed = true
			st.killedAt = time.Now()
			it.logf("t+%dms: node %d left", a.At, id)
		}
	case scenario.ActPause:
		for _, id := range a.Nodes {
			st := it.states[id]
			if err := st.handle.Pause(); err != nil {
				return fmt.Errorf("cluster: pause node %d: %w", id, err)
			}
			st.paused = true
			st.pausedEver = true
			it.logf("t+%dms: paused node %d", a.At, id)
		}
	case scenario.ActResume:
		for _, id := range a.Nodes {
			st := it.states[id]
			if err := st.handle.Resume(); err != nil {
				return fmt.Errorf("cluster: resume node %d: %w", id, err)
			}
			st.paused = false
			it.logf("t+%dms: resumed node %d", a.At, id)
		}
	case scenario.ActCut, scenario.ActHeal:
		cut := a.Kind == scenario.ActCut
		edges := a.Edges
		if !cut && edges == nil {
			// Bare heal: undo every active cut.
			for e := range it.cuts {
				edges = append(edges, e)
			}
		}
		targets := map[int][]int{}
		for _, e := range edges {
			x, y := e[0], e[1]
			if x > y {
				x, y = y, x
			}
			targets[x] = append(targets[x], y)
			targets[y] = append(targets[y], x)
			if cut {
				it.cuts[[2]int{x, y}] = true
			} else {
				delete(it.cuts, [2]int{x, y})
			}
		}
		kind := ctlCut
		if !cut {
			kind = ctlHeal
		}
		for id, ts := range targets {
			st := it.states[id]
			if st == nil || st.killed || st.conn == nil {
				continue
			}
			sort.Ints(ts)
			_ = transport.WriteJSON(st.conn, ctlMsg{Kind: kind, Targets: ts})
		}
		it.logf("t+%dms: %s %d edge(s)", a.At, a.Kind, len(edges))
	case scenario.ActDrop:
		*it.curDrop = a.Pct
		it.broadcast(ctlMsg{Kind: ctlDrop, Pct: a.Pct})
		it.logf("t+%dms: drop rate → %d%%", a.At, a.Pct)
	case scenario.ActDelay:
		*it.curDelay = a.Bound
		it.broadcast(ctlMsg{Kind: ctlDelay, BoundMs: a.Bound})
		it.logf("t+%dms: delay bound → %dms", a.At, a.Bound)
	case scenario.ActJoin:
		return it.join(a)
	}
	return nil
}

// join brings one batch of mid-run joiners up: spawn, hello, wire,
// replay the current loss rates, and introduce each joiner to its
// running overlay neighbors.
func (it *interp) join(a scenario.PlanAction) error {
	want := make(map[int]bool, len(a.Nodes))
	for _, id := range a.Nodes {
		if err := it.spawn(id); err != nil {
			return err
		}
		want[id] = true
	}
	if err := it.await(want); err != nil {
		return err
	}
	for _, id := range a.Nodes {
		if err := it.sendTopo(id, a.At); err != nil {
			return err
		}
		// No rate replay needed: the joiner's NodeConfig preloaded the
		// current drop/delay rates at spawn.
		go readLoop(id, it.readers[id], it.inbound)
		it.joined[id] = time.Now()
	}
	// Overlay re-resolution: each running neighbor adopts the joiner —
	// address registered, gossip peer added.
	for _, id := range a.Nodes {
		addr := it.states[id].addr
		for _, nb := range it.neighbors[id] {
			nst := it.states[nb]
			if nst == nil || nst.killed || nst.conn == nil || nb == id {
				continue
			}
			_ = transport.WriteJSON(nst.conn, ctlMsg{Kind: ctlJoin, Joiner: id, JoinerAddr: addr})
		}
		it.logf("t+%dms: node %d joined (%s)", a.At, id, addr)
	}
	return nil
}

// foldResult folds the collected flip reports through qos.FoldFlips —
// the orchestrator alone knows the ground-truth kill and join
// instants — and checks the bound_ms assertions. A joiner's fold
// window is clipped to its join epoch on both sides: as an observer
// its report starts at its own birth, and as a target the window
// opens at its join instant.
func foldResult(rs runSpec, cfg Config, states map[int]*nodeState, reports map[int]*NodeReport, joinedWall map[int]time.Time, failures []string, degree int, elapsed time.Duration) *Result {
	res := &Result{
		Name:             rs.name,
		N:                rs.n,
		Topology:         rs.topo.Kind,
		IntervalMs:       rs.live.IntervalMs,
		SamplePeriodMs:   rs.live.SamplePeriodMs,
		Fanout:           rs.live.Fanout,
		ElapsedMs:        elapsed.Milliseconds(),
		Reports:          len(reports),
		OverlayDegree:    degree,
		MinQueryAccuracy: 1,
		Failures:         failures,
	}
	for _, st := range states {
		if !st.killed {
			res.Expected++
		}
	}

	period := time.Duration(rs.live.SamplePeriodMs) * time.Millisecond
	bound := time.Duration(rs.live.BoundMs) * time.Millisecond
	type killAgg struct {
		observers, detected int
		sum, max            time.Duration
	}
	killAggs := map[int]*killAgg{}
	pauseAggs := map[int][]int{}
	type joinAgg struct {
		observers, known, inView int
	}
	joinAggs := map[int]*joinAgg{}
	for id := range joinedWall {
		joinAggs[id] = &joinAgg{}
	}

	observers := make([]int, 0, len(reports))
	for id := range reports {
		observers = append(observers, id)
	}
	sort.Ints(observers)
	for _, o := range observers {
		rep := reports[o]
		if rep.Destinations > res.MaxDistinctDestinations {
			res.MaxDistinctDestinations = rep.Destinations
		}
		res.Views = append(res.Views, NodeView{Node: o, ViewID: rep.ViewID, Excluded: rep.Excluded})
		for _, fs := range rep.FaultStats {
			res.FramesSent += fs.Frames
			res.FramesDropped += fs.Drops
		}
		known := map[int]bool{}
		for _, id := range rep.Known {
			known[id] = true
		}
		inView := map[int]bool{}
		for _, id := range rep.Members {
			inView[id] = true
		}
		start := time.Unix(0, rep.StartUnixNano)
		end := time.Unix(0, rep.EndUnixNano)
		for q := 1; q <= rs.n; q++ {
			if q == o {
				continue
			}
			st := states[q]
			if st == nil {
				continue // a joiner the run never reached
			}
			if agg := joinAggs[q]; agg != nil {
				agg.observers++
				if known[q] {
					agg.known++
				}
				if inView[q] {
					agg.inView++
				}
			}
			// A joiner target's fold window opens at its join instant:
			// verdicts about a node that did not exist yet are not
			// accuracy evidence.
			qStart := start
			if jw, ok := joinedWall[q]; ok && jw.After(qStart) {
				qStart = jw
			}
			if !qStart.Before(end) {
				continue
			}
			flips := rep.Flips[q]
			var crashAt time.Time
			if st.killed && st.killedAt.After(qStart) && st.killedAt.Before(end) {
				crashAt = st.killedAt
			}
			m := qos.FoldFlips(qStart, end, crashAt, flips, period)
			finalSuspected := len(flips) > 0 && flips[len(flips)-1].Suspected

			if st.killed {
				if crashAt.IsZero() {
					continue // the target predeceased this observer's window
				}
				agg := killAggs[q]
				if agg == nil {
					agg = &killAgg{}
					killAggs[q] = agg
				}
				agg.observers++
				if m.Detected {
					agg.detected++
					agg.sum += m.DetectionTime
					if m.DetectionTime > agg.max {
						agg.max = m.DetectionTime
					}
				}
				if rs.live.BoundMs > 0 && (!m.Detected || m.DetectionTime > bound) {
					failures = append(failures, fmt.Sprintf(
						"node %d did not suspect departed node %d within %v (detected=%v T_D=%v)",
						o, q, bound, m.Detected, m.DetectionTime))
				}
			} else if st.pausedEver {
				if finalSuspected {
					pauseAggs[q] = append(pauseAggs[q], o)
					if rs.live.BoundMs > 0 {
						failures = append(failures, fmt.Sprintf(
							"node %d still suspects resumed node %d at collection", o, q))
					}
				} else if pauseAggs[q] == nil {
					pauseAggs[q] = []int{}
				}
			} else {
				res.FalseSuspicionMistakes += m.Mistakes
				if m.QueryAccuracy < res.MinQueryAccuracy {
					res.MinQueryAccuracy = m.QueryAccuracy
				}
			}

			if cfg.IncludePairs {
				res.Pairs = append(res.Pairs, PairMetric{
					Observer:           o,
					Target:             q,
					Detected:           m.Detected,
					DetectionMs:        float64(m.DetectionTime) / float64(time.Millisecond),
					Mistakes:           m.Mistakes,
					MistakeRatePerSec:  m.MistakeRate,
					AvgMistakeMs:       float64(m.AvgMistakeDuration) / float64(time.Millisecond),
					QueryAccuracy:      m.QueryAccuracy,
					SuspectedAtCollect: finalSuspected,
				})
			}
		}
	}

	killIDs := make([]int, 0, len(killAggs))
	for q := range killAggs {
		killIDs = append(killIDs, q)
	}
	sort.Ints(killIDs)
	for _, q := range killIDs {
		agg := killAggs[q]
		kr := KillReport{
			Target:    q,
			AtMs:      departAtMs(rs.plan, q),
			Observers: agg.observers,
			Detected:  agg.detected,
		}
		if agg.detected > 0 {
			kr.MeanDetectionMs = float64(agg.sum) / float64(agg.detected) / float64(time.Millisecond)
			kr.MaxDetectionMs = float64(agg.max) / float64(time.Millisecond)
		}
		res.Kills = append(res.Kills, kr)
	}
	pauseIDs := make([]int, 0, len(pauseAggs))
	for q := range pauseAggs {
		pauseIDs = append(pauseIDs, q)
	}
	sort.Ints(pauseIDs)
	for _, q := range pauseIDs {
		res.Pauses = append(res.Pauses, PauseReport{Target: q, SuspectedAtEndBy: pauseAggs[q]})
	}
	joinIDs := make([]int, 0, len(joinAggs))
	for q := range joinAggs {
		joinIDs = append(joinIDs, q)
	}
	sort.Ints(joinIDs)
	for _, q := range joinIDs {
		agg := joinAggs[q]
		jr := JoinReport{
			Target:    q,
			AtMs:      joinAtMs(rs.plan, q),
			Observers: agg.observers,
			KnownBy:   agg.known,
			InViewOf:  agg.inView,
		}
		if rs.live.BoundMs > 0 {
			if jr.KnownBy < jr.Observers {
				failures = append(failures, fmt.Sprintf(
					"joiner %d absent from the gossip state of %d/%d survivors", q, jr.Observers-jr.KnownBy, jr.Observers))
			}
			if jr.InViewOf < jr.Observers {
				failures = append(failures, fmt.Sprintf(
					"joiner %d absent from the membership view of %d/%d survivors", q, jr.Observers-jr.InViewOf, jr.Observers))
			}
		}
		res.Joins = append(res.Joins, jr)
	}
	if len(reports) == 0 {
		res.MinQueryAccuracy = 0 // nothing observed, nothing vouched for
	}
	res.Failures = failures
	return res
}

// departAtMs finds the plan instant node q was killed or left.
func departAtMs(plan *scenario.FaultPlan, q int) int64 {
	if plan == nil {
		return 0
	}
	if at, ok := plan.Kills[q]; ok {
		return at
	}
	return plan.Leaves[q]
}

// joinAtMs finds the plan instant node q joined.
func joinAtMs(plan *scenario.FaultPlan, q int) int64 {
	if plan == nil {
		return 0
	}
	return plan.Joins[q]
}

// acceptLoop accepts node control connections and reads each one's
// hello under a deadline.
func acceptLoop(ln net.Listener, hellos chan<- helloMsg, timeout time.Duration) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: assembly is over
		}
		go func(conn net.Conn) {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
			r := bufio.NewReader(conn)
			var m ctlMsg
			if err := transport.ReadJSON(r, &m); err != nil {
				_ = conn.Close()
				hellos <- helloMsg{err: err}
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
			hellos <- helloMsg{conn: conn, r: r, msg: m}
		}(conn)
	}
}

// readLoop relays one node's post-hello control frames.
func readLoop(id int, r *bufio.Reader, inbound chan<- inboundMsg) {
	for {
		var m ctlMsg
		if err := transport.ReadJSON(r, &m); err != nil {
			inbound <- inboundMsg{id: id, err: err}
			return
		}
		inbound <- inboundMsg{id: id, msg: m}
	}
}

// countConnected counts nodes whose hello arrived.
func countConnected(states map[int]*nodeState) int {
	n := 0
	for _, st := range states {
		if st.conn != nil {
			n++
		}
	}
	return n
}

// sleepCtx sleeps for d (no-op when non-positive) unless the context
// expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
