package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"realisticfd/internal/model"
	"realisticfd/internal/qos"
	"realisticfd/internal/scenario"
	"realisticfd/internal/transport"
)

// Config parameterizes one orchestrated run.
type Config struct {
	// Spec is the normalized, validated live scenario.
	Spec scenario.LiveSpec
	// Spawner launches the nodes (processes or goroutines).
	Spawner Spawner
	// Seed perturbs each node's fanout sampling (node i gets Seed+i).
	Seed int64
	// IncludePairs adds the full observer×target metric matrix to the
	// result (n·(n−1) entries — summaries only, by default).
	IncludePairs bool
	// HelloTimeout bounds cluster assembly (default 60s).
	HelloTimeout time.Duration
	// CollectTimeout bounds report collection (default 30s): a wedged
	// node fails the run instead of hanging it.
	CollectTimeout time.Duration
	// Log receives progress lines; nil is silent.
	Log io.Writer
}

// PairMetric is one observer's QoS verdict about one target, folded
// from its flip report — the live counterpart of one simulator E-row
// cell.
type PairMetric struct {
	Observer           int     `json:"observer"`
	Target             int     `json:"target"`
	Detected           bool    `json:"detected,omitempty"`
	DetectionMs        float64 `json:"detection_ms,omitempty"`
	Mistakes           int     `json:"mistakes,omitempty"`
	MistakeRatePerSec  float64 `json:"mistake_rate_per_sec,omitempty"`
	AvgMistakeMs       float64 `json:"avg_mistake_ms,omitempty"`
	QueryAccuracy      float64 `json:"query_accuracy"`
	SuspectedAtCollect bool    `json:"suspected_at_collect,omitempty"`
}

// KillReport aggregates detection of one killed node across the
// surviving observers.
type KillReport struct {
	Target          int     `json:"target"`
	AtMs            int64   `json:"at_ms"`
	Observers       int     `json:"observers"`
	Detected        int     `json:"detected"`
	MeanDetectionMs float64 `json:"mean_detection_ms"`
	MaxDetectionMs  float64 `json:"max_detection_ms"`
}

// PauseReport records which observers still suspected a
// paused-then-resumed node when metrics were collected — the
// wrongly-suspected-forever check.
type PauseReport struct {
	Target           int   `json:"target"`
	SuspectedAtEndBy []int `json:"suspected_at_end_by,omitempty"`
}

// NodeView is one reporting node's final membership view (clusters
// within the 64-process ProcessSet bound run the membership feed).
type NodeView struct {
	Node     int   `json:"node"`
	ViewID   int   `json:"view_id"`
	Excluded []int `json:"excluded,omitempty"`
}

// Result is the orchestrator's verdict on one run.
type Result struct {
	Name           string `json:"name"`
	N              int    `json:"n"`
	Topology       string `json:"topology"`
	IntervalMs     int    `json:"interval_ms"`
	SamplePeriodMs int    `json:"sample_period_ms"`
	Fanout         int    `json:"fanout,omitempty"`
	Estimator      string `json:"estimator"`
	ElapsedMs      int64  `json:"elapsed_ms"`

	// Reports is how many of the Expected surviving nodes reported.
	Reports  int `json:"reports"`
	Expected int `json:"expected"`

	// MaxDistinctDestinations is the largest per-node heartbeat
	// fan-out observed; OverlayDegree is the overlay's max degree —
	// the O(log n) bound the gossip layer is accountable to.
	MaxDistinctDestinations int `json:"max_distinct_destinations"`
	OverlayDegree           int `json:"overlay_degree"`

	// False-suspicion aggregate over clean targets (never killed,
	// never paused).
	FalseSuspicionMistakes int     `json:"false_suspicion_mistakes"`
	MinQueryAccuracy       float64 `json:"min_query_accuracy"`

	Kills  []KillReport  `json:"kills,omitempty"`
	Pauses []PauseReport `json:"pauses,omitempty"`
	Views  []NodeView    `json:"views,omitempty"`

	// Failures are violated assertions (bound_ms) and collection
	// gaps; empty means the run passed.
	Failures []string `json:"failures,omitempty"`

	Pairs []PairMetric `json:"pairs,omitempty"`
}

// nodeState is the orchestrator's book-keeping for one node.
type nodeState struct {
	id     int
	handle NodeHandle
	conn   net.Conn
	addr   string

	killed     bool
	killedAt   time.Time
	paused     bool
	pausedEver bool
}

// inboundMsg is one post-hello control frame (or read error) from a
// node's control connection.
type inboundMsg struct {
	id  int
	msg ctlMsg
	err error
}

// helloMsg is the first frame of a freshly connected node.
type helloMsg struct {
	conn net.Conn
	r    *bufio.Reader
	msg  ctlMsg
	err  error
}

// Run executes one live-cluster scenario end to end: assemble the
// cluster, wire the overlay, run the fault schedule, collect
// reports, fold metrics. The context is the hard deadline — on
// cancellation everything spawned is reclaimed and an error returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	spec := cfg.Spec
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Spawner == nil {
		return nil, fmt.Errorf("cluster: orchestrator needs a spawner")
	}
	helloTimeout := cfg.HelloTimeout
	if helloTimeout <= 0 {
		helloTimeout = 60 * time.Second
	}
	collectTimeout := cfg.CollectTimeout
	if collectTimeout <= 0 {
		collectTimeout = 30 * time.Second
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	// Overlay first: if the topology is unbuildable there is nothing
	// to spawn.
	edges, err := spec.Topology.Edges(spec.N)
	if err != nil {
		return nil, err
	}
	neighbors := make(map[int][]int, spec.N)
	for _, e := range edges {
		a, b := int(e.A), int(e.B)
		neighbors[a] = append(neighbors[a], b)
		neighbors[b] = append(neighbors[b], a)
	}
	degree := 0
	for _, ns := range neighbors {
		sort.Ints(ns)
		if len(ns) > degree {
			degree = len(ns)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: control listener: %w", err)
	}
	defer func() { _ = ln.Close() }()

	hellos := make(chan helloMsg, spec.N)
	inbound := make(chan inboundMsg, 4*spec.N)
	readers := make(map[int]*bufio.Reader, spec.N)
	go acceptLoop(ln, hellos, helloTimeout)

	states := make(map[int]*nodeState, spec.N)
	defer func() {
		for _, st := range states {
			if st.conn != nil {
				_ = st.conn.Close()
			}
			if st.handle != nil {
				st.handle.Shutdown()
			}
		}
	}()

	logf("spawning %d nodes (control %s)", spec.N, ln.Addr())
	for id := 1; id <= spec.N; id++ {
		h, err := cfg.Spawner.Spawn(NodeConfig{
			ID:             id,
			N:              spec.N,
			ControlAddr:    ln.Addr().String(),
			IntervalMs:     spec.IntervalMs,
			SamplePeriodMs: spec.SamplePeriodMs,
			Fanout:         spec.Fanout,
			Estimator:      spec.Estimator,
			Seed:           cfg.Seed + int64(id),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: spawn node %d: %w", id, err)
		}
		states[id] = &nodeState{id: id, handle: h}
	}

	// Assemble: every node must say hello before the overlay is wired.
	deadline := time.NewTimer(helloTimeout)
	defer deadline.Stop()
	for got := 0; got < spec.N; {
		select {
		case h := <-hellos:
			if h.err != nil {
				return nil, fmt.Errorf("cluster: hello: %w", h.err)
			}
			st := states[h.msg.ID]
			if st == nil || h.msg.Kind != ctlHello {
				_ = h.conn.Close()
				return nil, fmt.Errorf("cluster: bad hello (kind %q, id %d)", h.msg.Kind, h.msg.ID)
			}
			if st.conn != nil {
				_ = h.conn.Close()
				return nil, fmt.Errorf("cluster: duplicate hello from node %d", h.msg.ID)
			}
			st.conn = h.conn
			st.addr = h.msg.Addr
			readers[st.id] = h.r
			got++
		case <-deadline.C:
			return nil, fmt.Errorf("cluster: only %d/%d nodes said hello within %v", countConnected(states), spec.N, helloTimeout)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	logf("all %d nodes up; wiring %s overlay (max degree %d)", spec.N, spec.Topology.Kind, degree)

	// Wire the overlay and start the per-node control readers.
	for id, st := range states {
		peers := make(map[int]string, len(neighbors[id]))
		for _, nb := range neighbors[id] {
			peers[nb] = states[nb].addr
		}
		msg := ctlMsg{Kind: ctlTopology, Peers: peers, GossipPeers: neighbors[id]}
		if err := transport.WriteJSON(st.conn, msg); err != nil {
			return nil, fmt.Errorf("cluster: send topology to node %d: %w", id, err)
		}
		go readLoop(id, readers[id], inbound)
	}

	if err := sleepCtx(ctx, time.Duration(spec.WarmupMs)*time.Millisecond); err != nil {
		return nil, err
	}

	// The schedule runs against t0 = end of warmup.
	t0 := time.Now()
	ordered := append([]scenario.LiveEventSpec(nil), spec.Schedule...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].AtMs < ordered[j].AtMs })
	activeCuts := map[[2]int]bool{}
	for _, ev := range ordered {
		if err := sleepCtx(ctx, time.Until(t0.Add(time.Duration(ev.AtMs)*time.Millisecond))); err != nil {
			return nil, err
		}
		if err := execEvent(spec, ev, states, activeCuts, logf); err != nil {
			return nil, err
		}
	}

	if err := sleepCtx(ctx, time.Duration(spec.SettleMs)*time.Millisecond); err != nil {
		return nil, err
	}
	// A node still paused at collection cannot report; resume it.
	// (Spec validation forbids this whenever bound_ms asserts.)
	for _, st := range states {
		if st.paused && !st.killed {
			logf("node %d still paused at collection; resuming", st.id)
			_ = st.handle.Resume()
			st.paused = false
		}
	}

	// Collect: every survivor reports or the run fails — fast.
	var failures []string
	expected := map[int]bool{}
	for id, st := range states {
		if st.killed {
			continue
		}
		if err := transport.WriteJSON(st.conn, ctlMsg{Kind: ctlCollect}); err != nil {
			failures = append(failures, fmt.Sprintf("node %d: collect request failed: %v", id, err))
			continue
		}
		expected[id] = true
	}
	reports := make(map[int]*NodeReport, len(expected))
	collectDeadline := time.NewTimer(collectTimeout)
	defer collectDeadline.Stop()
collect:
	for len(reports) < len(expected) {
		select {
		case in := <-inbound:
			if in.err != nil {
				if st := states[in.id]; st != nil && !st.killed && expected[in.id] && reports[in.id] == nil {
					failures = append(failures, fmt.Sprintf("node %d: control channel died before reporting: %v", in.id, in.err))
					delete(expected, in.id)
				}
				continue
			}
			if in.msg.Kind == ctlReport && in.msg.Report != nil && expected[in.id] {
				reports[in.id] = in.msg.Report
			}
		case <-collectDeadline.C:
			for id := range expected {
				if reports[id] == nil {
					failures = append(failures, fmt.Sprintf("node %d: no report within %v", id, collectTimeout))
				}
			}
			break collect
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	logf("collected %d/%d reports", len(reports), len(expected))

	// Stop the survivors; the deferred cleanup reclaims everything.
	for _, st := range states {
		if !st.killed && st.conn != nil {
			_ = transport.WriteJSON(st.conn, ctlMsg{Kind: ctlStop})
		}
	}

	res := foldResult(spec, cfg, states, reports, failures, degree, time.Since(t0))
	interval := time.Duration(spec.IntervalMs) * time.Millisecond
	res.Estimator = EstimatorFactory(spec.Estimator, interval)().Name()
	return res, nil
}

// execEvent applies one scheduled fault.
func execEvent(spec scenario.LiveSpec, ev scenario.LiveEventSpec, states map[int]*nodeState, activeCuts map[[2]int]bool, logf func(string, ...any)) error {
	switch ev.Action {
	case scenario.LiveKill:
		for _, id := range ev.Nodes {
			st := states[id]
			if err := st.handle.Kill(); err != nil {
				return fmt.Errorf("cluster: kill node %d: %w", id, err)
			}
			st.killed = true
			st.killedAt = time.Now()
			logf("t+%dms: killed node %d", ev.AtMs, id)
		}
	case scenario.LivePause:
		for _, id := range ev.Nodes {
			st := states[id]
			if err := st.handle.Pause(); err != nil {
				return fmt.Errorf("cluster: pause node %d: %w", id, err)
			}
			st.paused = true
			st.pausedEver = true
			logf("t+%dms: paused node %d", ev.AtMs, id)
		}
	case scenario.LiveResume:
		for _, id := range ev.Nodes {
			st := states[id]
			if err := st.handle.Resume(); err != nil {
				return fmt.Errorf("cluster: resume node %d: %w", id, err)
			}
			st.paused = false
			logf("t+%dms: resumed node %d", ev.AtMs, id)
		}
	case scenario.LivePartition, scenario.LiveHeal:
		edges, err := spec.ResolveEdges(ev)
		if err != nil {
			return err
		}
		cut := ev.Action == scenario.LivePartition
		if !cut && edges == nil {
			// Bare heal: undo every active cut.
			for e := range activeCuts {
				edges = append(edges, e)
			}
		}
		targets := map[int][]int{}
		for _, e := range edges {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			targets[a] = append(targets[a], b)
			targets[b] = append(targets[b], a)
			if cut {
				activeCuts[[2]int{a, b}] = true
			} else {
				delete(activeCuts, [2]int{a, b})
			}
		}
		kind := ctlCut
		if !cut {
			kind = ctlHeal
		}
		for id, ts := range targets {
			st := states[id]
			if st.killed || st.conn == nil {
				continue
			}
			sort.Ints(ts)
			// A write to a freshly killed node's half-open socket can
			// succeed or fail; either way the node is gone, so errors
			// here are not fatal.
			_ = transport.WriteJSON(st.conn, ctlMsg{Kind: kind, Targets: ts})
		}
		logf("t+%dms: %s %d edge(s)", ev.AtMs, ev.Action, len(edges))
	}
	return nil
}

// foldResult folds the collected flip reports through qos.FoldFlips —
// the orchestrator alone knows the ground-truth kill instants — and
// checks the bound_ms assertions.
func foldResult(spec scenario.LiveSpec, cfg Config, states map[int]*nodeState, reports map[int]*NodeReport, failures []string, degree int, elapsed time.Duration) *Result {
	res := &Result{
		Name:             spec.Name,
		N:                spec.N,
		Topology:         spec.Topology.Kind,
		IntervalMs:       spec.IntervalMs,
		SamplePeriodMs:   spec.SamplePeriodMs,
		Fanout:           spec.Fanout,
		ElapsedMs:        elapsed.Milliseconds(),
		Reports:          len(reports),
		OverlayDegree:    degree,
		MinQueryAccuracy: 1,
		Failures:         failures,
	}
	for _, st := range states {
		if !st.killed {
			res.Expected++
		}
	}

	period := time.Duration(spec.SamplePeriodMs) * time.Millisecond
	bound := time.Duration(spec.BoundMs) * time.Millisecond
	type killAgg struct {
		observers, detected int
		sum, max            time.Duration
	}
	killAggs := map[int]*killAgg{}
	pauseAggs := map[int][]int{}

	observers := make([]int, 0, len(reports))
	for id := range reports {
		observers = append(observers, id)
	}
	sort.Ints(observers)
	for _, o := range observers {
		rep := reports[o]
		if rep.Destinations > res.MaxDistinctDestinations {
			res.MaxDistinctDestinations = rep.Destinations
		}
		if spec.N <= model.MaxProcesses {
			res.Views = append(res.Views, NodeView{Node: o, ViewID: rep.ViewID, Excluded: rep.Excluded})
		}
		start := time.Unix(0, rep.StartUnixNano)
		end := time.Unix(0, rep.EndUnixNano)
		for q := 1; q <= spec.N; q++ {
			if q == o {
				continue
			}
			st := states[q]
			flips := rep.Flips[q]
			var crashAt time.Time
			if st.killed && st.killedAt.After(start) && st.killedAt.Before(end) {
				crashAt = st.killedAt
			}
			m := qos.FoldFlips(start, end, crashAt, flips, period)
			finalSuspected := len(flips) > 0 && flips[len(flips)-1].Suspected

			if st.killed {
				agg := killAggs[q]
				if agg == nil {
					agg = &killAgg{}
					killAggs[q] = agg
				}
				agg.observers++
				if m.Detected {
					agg.detected++
					agg.sum += m.DetectionTime
					if m.DetectionTime > agg.max {
						agg.max = m.DetectionTime
					}
				}
				if spec.BoundMs > 0 && (!m.Detected || m.DetectionTime > bound) {
					failures = append(failures, fmt.Sprintf(
						"node %d did not suspect killed node %d within %v (detected=%v T_D=%v)",
						o, q, bound, m.Detected, m.DetectionTime))
				}
			} else if st.pausedEver {
				if finalSuspected {
					pauseAggs[q] = append(pauseAggs[q], o)
					if spec.BoundMs > 0 {
						failures = append(failures, fmt.Sprintf(
							"node %d still suspects resumed node %d at collection", o, q))
					}
				} else if pauseAggs[q] == nil {
					pauseAggs[q] = []int{}
				}
			} else {
				res.FalseSuspicionMistakes += m.Mistakes
				if m.QueryAccuracy < res.MinQueryAccuracy {
					res.MinQueryAccuracy = m.QueryAccuracy
				}
			}

			if cfg.IncludePairs {
				res.Pairs = append(res.Pairs, PairMetric{
					Observer:           o,
					Target:             q,
					Detected:           m.Detected,
					DetectionMs:        float64(m.DetectionTime) / float64(time.Millisecond),
					Mistakes:           m.Mistakes,
					MistakeRatePerSec:  m.MistakeRate,
					AvgMistakeMs:       float64(m.AvgMistakeDuration) / float64(time.Millisecond),
					QueryAccuracy:      m.QueryAccuracy,
					SuspectedAtCollect: finalSuspected,
				})
			}
		}
	}

	killIDs := make([]int, 0, len(killAggs))
	for q := range killAggs {
		killIDs = append(killIDs, q)
	}
	sort.Ints(killIDs)
	for _, q := range killIDs {
		agg := killAggs[q]
		kr := KillReport{
			Target:    q,
			AtMs:      killAtMs(spec, q),
			Observers: agg.observers,
			Detected:  agg.detected,
		}
		if agg.detected > 0 {
			kr.MeanDetectionMs = float64(agg.sum) / float64(agg.detected) / float64(time.Millisecond)
			kr.MaxDetectionMs = float64(agg.max) / float64(time.Millisecond)
		}
		res.Kills = append(res.Kills, kr)
	}
	pauseIDs := make([]int, 0, len(pauseAggs))
	for q := range pauseAggs {
		pauseIDs = append(pauseIDs, q)
	}
	sort.Ints(pauseIDs)
	for _, q := range pauseIDs {
		res.Pauses = append(res.Pauses, PauseReport{Target: q, SuspectedAtEndBy: pauseAggs[q]})
	}
	if len(reports) == 0 {
		res.MinQueryAccuracy = 0 // nothing observed, nothing vouched for
	}
	res.Failures = failures
	return res
}

// killAtMs finds the scheduled kill time of node q.
func killAtMs(spec scenario.LiveSpec, q int) int64 {
	for _, ev := range spec.Schedule {
		if ev.Action != scenario.LiveKill {
			continue
		}
		for _, id := range ev.Nodes {
			if id == q {
				return ev.AtMs
			}
		}
	}
	return 0
}

// acceptLoop accepts node control connections and reads each one's
// hello under a deadline.
func acceptLoop(ln net.Listener, hellos chan<- helloMsg, timeout time.Duration) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: assembly is over
		}
		go func(conn net.Conn) {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
			r := bufio.NewReader(conn)
			var m ctlMsg
			if err := transport.ReadJSON(r, &m); err != nil {
				_ = conn.Close()
				hellos <- helloMsg{err: err}
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
			hellos <- helloMsg{conn: conn, r: r, msg: m}
		}(conn)
	}
}

// readLoop relays one node's post-hello control frames.
func readLoop(id int, r *bufio.Reader, inbound chan<- inboundMsg) {
	for {
		var m ctlMsg
		if err := transport.ReadJSON(r, &m); err != nil {
			inbound <- inboundMsg{id: id, err: err}
			return
		}
		inbound <- inboundMsg{id: id, msg: m}
	}
}

// countConnected counts nodes whose hello arrived.
func countConnected(states map[int]*nodeState) int {
	n := 0
	for _, st := range states {
		if st.conn != nil {
			n++
		}
	}
	return n
}

// sleepCtx sleeps for d (no-op when non-positive) unless the context
// expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
