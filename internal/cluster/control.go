// Package cluster is the live-cluster orchestration harness: it
// spawns N real node processes (cmd/fdnode — or goroutines, for
// in-process runs), wires them into a generated gossip overlay
// reusing internal/scenario's topology generators, executes a
// scripted fault schedule — SIGKILL, SIGSTOP/SIGCONT, socket-level
// partitions — and folds each node's suspicion timelines through
// internal/qos into the same Chen-Toueg-Aguilera vocabulary as the
// simulator, so live runs and E-table rows are directly comparable.
//
// The control plane is one TCP connection per node to the
// orchestrator, carrying length-prefixed JSON frames (the transport
// package's codec): hello → topology → {cut, heal}* → collect →
// report → stop. The data plane is the gossip heartbeat overlay of
// internal/heartbeat over internal/transport TCP nodes; each node
// heartbeats only its O(log n) overlay neighbors.
package cluster

import (
	"realisticfd/internal/qos"
)

// Control message kinds.
const (
	ctlHello    = "hello"    // node → orch: I'm up, data plane at Addr
	ctlTopology = "topology" // orch → node: your overlay peers; start gossiping
	ctlCut      = "cut"      // orch → node: drop frames to/from Targets
	ctlHeal     = "heal"     // orch → node: undo cuts (All or Targets)
	ctlCollect  = "collect"  // orch → node: send your report
	ctlReport   = "report"   // node → orch: suspicion timelines + stats
	ctlStop     = "stop"     // orch → node: clean exit
)

// ctlMsg is one control-channel frame; Kind selects which fields are
// meaningful.
type ctlMsg struct {
	Kind string `json:"kind"`

	// hello
	ID   int    `json:"id,omitempty"`
	Addr string `json:"addr,omitempty"`

	// topology: data-plane addresses of this node's overlay neighbors.
	Peers       map[int]string `json:"peers,omitempty"`
	GossipPeers []int          `json:"gossip_peers,omitempty"`

	// cut / heal
	Targets []int `json:"targets,omitempty"`
	All     bool  `json:"all,omitempty"`

	// report
	Report *NodeReport `json:"report,omitempty"`
}

// NodeReport is one node's collected observations: per-peer suspicion
// verdict change-points (the node samples every sample period but
// ships only the flips), plus gossip fan-out accounting and the
// membership feed state when the cluster is small enough for
// model.ProcessSet.
type NodeReport struct {
	ID            int                `json:"id"`
	StartUnixNano int64              `json:"start"`
	EndUnixNano   int64              `json:"end"`
	Samples       int                `json:"samples"`
	Flips         map[int][]qos.Flip `json:"flips,omitempty"`
	Destinations  int                `json:"destinations"`
	Rounds        uint64             `json:"rounds"`
	ViewID        int                `json:"view_id,omitempty"`
	Excluded      []int              `json:"excluded,omitempty"`
}
