// Package cluster is the live-cluster orchestration harness: it
// spawns N real node processes (cmd/fdnode — or goroutines, for
// in-process runs), wires them into a generated gossip overlay
// reusing internal/scenario's topology generators, interprets a
// compiled scenario.FaultPlan — SIGKILL, SIGSTOP/SIGCONT,
// socket-level partitions, seeded per-frame drop/delay, and mid-run
// churn (leave/join) — and folds each node's suspicion timelines
// through internal/qos into the same Chen-Toueg-Aguilera vocabulary
// as the simulator, so live runs and E-table rows are directly
// comparable. Both spec formats feed the same interpreter: a legacy
// LiveSpec schedule and a /v3 Spec plan compile to the identical IR.
//
// The control plane is one TCP connection per node to the
// orchestrator, carrying length-prefixed JSON frames (the transport
// package's codec): hello → topology → {cut, heal, drop, delay,
// join}* → collect → report → stop. The data plane is the gossip
// heartbeat overlay of internal/heartbeat over internal/transport
// TCP nodes; each node heartbeats only its O(log n) overlay
// neighbors.
package cluster

import (
	"realisticfd/internal/qos"
	"realisticfd/internal/transport"
)

// Control message kinds.
const (
	ctlHello    = "hello"    // node → orch: I'm up, data plane at Addr
	ctlTopology = "topology" // orch → node: your overlay peers; start gossiping
	ctlCut      = "cut"      // orch → node: drop frames to/from Targets
	ctlHeal     = "heal"     // orch → node: undo cuts (All or Targets)
	ctlDrop     = "drop"     // orch → node: set the fault-hook loss rate to Pct
	ctlDelay    = "delay"    // orch → node: set the fault-hook delay bound to BoundMs
	ctlJoin     = "join"     // orch → node: Joiner came up at JoinerAddr; adopt it
	ctlCollect  = "collect"  // orch → node: send your report
	ctlReport   = "report"   // node → orch: suspicion timelines + stats
	ctlStop     = "stop"     // orch → node: clean exit
)

// ctlMsg is one control-channel frame; Kind selects which fields are
// meaningful.
type ctlMsg struct {
	Kind string `json:"kind"`

	// hello
	ID   int    `json:"id,omitempty"`
	Addr string `json:"addr,omitempty"`

	// topology: data-plane addresses of this node's overlay neighbors,
	// plus the plan's not-yet-joined nodes (absent from the feed and
	// never suspected until their counters appear).
	Peers       map[int]string `json:"peers,omitempty"`
	GossipPeers []int          `json:"gossip_peers,omitempty"`
	Deferred    []int          `json:"deferred,omitempty"`

	// cut / heal
	Targets []int `json:"targets,omitempty"`
	All     bool  `json:"all,omitempty"`

	// drop / delay
	Pct     int   `json:"pct,omitempty"`
	BoundMs int64 `json:"bound_ms,omitempty"`

	// join
	Joiner     int    `json:"joiner,omitempty"`
	JoinerAddr string `json:"joiner_addr,omitempty"`

	// report
	Report *NodeReport `json:"report,omitempty"`
}

// NodeReport is one node's collected observations: per-peer suspicion
// verdict change-points (the node samples every sample period but
// ships only the flips), gossip fan-out accounting, the membership
// feed state, and — when a fault hook ran — the per-link frame/drop
// tallies and (optionally) recorded decision prefixes.
type NodeReport struct {
	ID            int                `json:"id"`
	StartUnixNano int64              `json:"start"`
	EndUnixNano   int64              `json:"end"`
	Samples       int                `json:"samples"`
	Flips         map[int][]qos.Flip `json:"flips,omitempty"`
	Destinations  int                `json:"destinations"`
	Rounds        uint64             `json:"rounds"`
	ViewID        int                `json:"view_id,omitempty"`
	Excluded      []int              `json:"excluded,omitempty"`
	// Members is the final membership view (sorted); Known is the
	// gossip layer's present set — initial nodes plus every joiner
	// whose counters were observed.
	Members []int `json:"members,omitempty"`
	Known   []int `json:"known,omitempty"`
	// FaultStats tallies the fault hook's per-destination frames and
	// drops; FaultDecisions carries the recorded verdict prefixes when
	// the orchestrator asked for them (determinism audits).
	FaultStats     map[int]transport.LinkStats `json:"fault_stats,omitempty"`
	FaultDecisions map[int][]bool              `json:"fault_decisions,omitempty"`
}
