package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"realisticfd/internal/heartbeat"
	"realisticfd/internal/membership"
	"realisticfd/internal/model"
	"realisticfd/internal/qos"
	"realisticfd/internal/scenario"
	"realisticfd/internal/transport"
)

// NodeConfig is the JSON document handed to each node — cmd/fdnode
// reads it from stdin; in-process nodes get it directly. The node
// dials ControlAddr, introduces itself, and receives its overlay
// wiring from the orchestrator; everything else is local policy.
type NodeConfig struct {
	// ID is this node's 1-based identity.
	ID int `json:"id"`
	// N is the cluster size.
	N int `json:"n"`
	// ControlAddr is the orchestrator's control listener.
	ControlAddr string `json:"control_addr"`
	// IntervalMs is the gossip round period (default 50).
	IntervalMs int `json:"interval_ms,omitempty"`
	// SamplePeriodMs is the verdict sampling period for the QoS
	// timelines (default: the gossip interval).
	SamplePeriodMs int `json:"sample_period_ms,omitempty"`
	// Fanout bounds gossip destinations per round; 0 means every
	// overlay neighbor.
	Fanout int `json:"fanout,omitempty"`
	// Estimator selects the per-peer suspicion estimator.
	Estimator scenario.LiveEstimatorSpec `json:"estimator,omitzero"`
	// Seed drives fanout sampling.
	Seed int64 `json:"seed,omitempty"`
	// FaultSeed, when non-zero, installs a transport.FaultHook seeded
	// with it — the plan interpreter's drop/delay actions then set its
	// rates over the control channel.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// DropPct and DelayMaxMs preload the fault hook with the loss rates
	// already in effect at this node's start instant. A rate change over
	// the control channel lands at a wall-clock-dependent frame index;
	// preloading keeps fully seeded runs reproducible frame-by-frame.
	DropPct    int   `json:"drop_pct,omitempty"`
	DelayMaxMs int64 `json:"delay_max_ms,omitempty"`
	// RecordDecisions ships the fault hook's per-link verdict prefixes
	// in the report (the orchestrator's determinism audit).
	RecordDecisions bool `json:"record_decisions,omitempty"`
}

func (c *NodeConfig) normalize() {
	if c.IntervalMs == 0 {
		c.IntervalMs = 50
	}
	if c.SamplePeriodMs == 0 {
		c.SamplePeriodMs = c.IntervalMs
	}
}

func (c NodeConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("cluster: node config n = %d must be ≥ 2", c.N)
	}
	if c.ID < 1 || c.ID > c.N {
		return fmt.Errorf("cluster: node id %d outside [1, %d]", c.ID, c.N)
	}
	if c.ControlAddr == "" {
		return fmt.Errorf("cluster: node config needs control_addr")
	}
	if c.IntervalMs < 1 || c.SamplePeriodMs < 1 {
		return fmt.Errorf("cluster: node periods must be ≥ 1ms")
	}
	return nil
}

// EstimatorFactory compiles a declarative estimator spec into the
// constructor the gossip layer calls per monitored peer. Defaults
// scale with the gossip interval: with relayed counters a peer's
// "heartbeat" arrives roughly once per interval, so margins are
// expressed in multiples of it.
func EstimatorFactory(spec scenario.LiveEstimatorSpec, interval time.Duration) func() heartbeat.Estimator {
	switch spec.Kind {
	case scenario.LiveEstFixed:
		timeout := time.Duration(spec.TimeoutMs) * time.Millisecond
		return func() heartbeat.Estimator {
			return &heartbeat.FixedTimeout{Timeout: timeout}
		}
	case scenario.LiveEstChen:
		window := spec.Window
		if window <= 0 {
			window = 16
		}
		alpha := time.Duration(spec.AlphaMs) * time.Millisecond
		if alpha <= 0 {
			alpha = 4 * interval
		}
		return func() heartbeat.Estimator {
			return &heartbeat.Chen{Window: window, Alpha: alpha}
		}
	default: // φ-accrual, the zero value
		window := spec.Window
		if window <= 0 {
			window = 64
		}
		phi := spec.Phi
		if phi <= 0 {
			phi = 8
		}
		minStd := time.Duration(spec.MinStdDevMs) * time.Millisecond
		if minStd <= 0 {
			minStd = interval / 4
		}
		return func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{
				Window:       window,
				Threshold:    phi,
				MinStdDev:    minStd,
				FirstTimeout: 20 * interval,
			}
		}
	}
}

// RunNode runs one cluster node to completion: dial the orchestrator,
// hello, receive the overlay, gossip until told to stop (or until the
// control connection dies — an orphaned node exits rather than
// lingering). This is cmd/fdnode's entire main.
func RunNode(cfg NodeConfig) error { return runNode(cfg, nil) }

// RunNodeStdin decodes a NodeConfig strictly from r and runs it.
func RunNodeStdin(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg NodeConfig
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	return RunNode(cfg)
}

// inprocHandle lets the in-process spawner stand in for the kernel:
// Kill closes a channel the node loop selects on, Pause/Resume mute
// the gossiper the way SIGSTOP freezes a process.
type inprocHandle struct {
	mu     sync.Mutex
	g      *heartbeat.Gossiper
	paused bool

	kill     chan struct{}
	killOnce sync.Once
	done     chan struct{}
	err      error
}

func (h *inprocHandle) register(g *heartbeat.Gossiper) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.g = g
	if h.paused {
		g.SetMuted(true)
	}
}

func (h *inprocHandle) setPaused(paused bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.paused = paused
	if h.g != nil {
		h.g.SetMuted(paused)
	}
}

func (h *inprocHandle) isPaused() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.paused
}

// Kill implements NodeHandle: abrupt death, no report, no goodbye.
func (h *inprocHandle) Kill() error {
	h.killOnce.Do(func() { close(h.kill) })
	return nil
}

// Pause implements NodeHandle.
func (h *inprocHandle) Pause() error { h.setPaused(true); return nil }

// Resume implements NodeHandle.
func (h *inprocHandle) Resume() error { h.setPaused(false); return nil }

// Shutdown implements NodeHandle: kill if still running, wait for the
// goroutine to unwind.
func (h *inprocHandle) Shutdown() {
	_ = h.Kill()
	<-h.done
}

// runNode is the node runtime shared by real processes (h == nil) and
// in-process nodes.
func runNode(cfg NodeConfig, h *inprocHandle) error {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return err
	}
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	samplePeriod := time.Duration(cfg.SamplePeriodMs) * time.Millisecond

	tr, err := transport.NewTCPNode(model.ProcessID(cfg.ID))
	if err != nil {
		return err
	}
	ctl, err := net.Dial("tcp", cfg.ControlAddr)
	if err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: dial control: %w", cfg.ID, err)
	}
	defer func() { _ = ctl.Close() }()

	ctlr := bufio.NewReader(ctl)
	if err := transport.WriteJSON(ctl, ctlMsg{Kind: ctlHello, ID: cfg.ID, Addr: tr.Addr()}); err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: hello: %w", cfg.ID, err)
	}
	var topo ctlMsg
	if err := transport.ReadJSON(ctlr, &topo); err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: await topology: %w", cfg.ID, err)
	}
	if topo.Kind != ctlTopology || len(topo.GossipPeers) == 0 {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: expected topology, got %q", cfg.ID, topo.Kind)
	}
	for id, addr := range topo.Peers {
		tr.SetPeer(model.ProcessID(id), addr)
	}
	var hook *transport.FaultHook
	if cfg.FaultSeed != 0 {
		hook = transport.NewFaultHook(model.ProcessID(cfg.ID), uint64(cfg.FaultSeed))
		if cfg.DropPct > 0 {
			hook.SetDrop(cfg.DropPct)
		}
		if cfg.DelayMaxMs > 0 {
			hook.SetDelayMax(int(cfg.DelayMaxMs))
		}
		tr.SetFaultHook(hook)
	}

	g, err := heartbeat.NewGossiper(tr, heartbeat.GossipConfig{
		Self:         cfg.ID,
		N:            cfg.N,
		Peers:        topo.GossipPeers,
		Fanout:       cfg.Fanout,
		Interval:     interval,
		NewEstimator: EstimatorFactory(cfg.Estimator, interval),
		Seed:         cfg.Seed,
		Deferred:     topo.Deferred,
	})
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer g.Close()
	if h != nil {
		h.register(g)
	}
	// Non-gossip envelopes have no consumer in a detection-only node;
	// drain them so the channel never fills.
	go func() {
		for range g.Forward() {
		}
	}()

	// The membership feed derives view sequences from the disseminated
	// suspicion state at any cluster size (the former 64-process cap is
	// gone): initial members are everyone but the plan's deferred
	// joiners, who are admitted as the gossip layer sights them.
	var feed *membership.Feed
	{
		deferred := make(map[int]bool, len(topo.Deferred))
		for _, d := range topo.Deferred {
			deferred[d] = true
		}
		members := make([]int, 0, cfg.N)
		for id := 1; id <= cfg.N; id++ {
			if !deferred[id] || id == cfg.ID {
				members = append(members, id)
			}
		}
		feed, _ = membership.NewFeedMembers(cfg.ID, members)
	}

	// Control reader: buffered well past the handful of frames an
	// orchestrator ever sends, so the goroutine cannot jam if the loop
	// exits first; the deferred ctl.Close() unblocks the read.
	ctlIn := make(chan ctlMsg, 64)
	ctlErr := make(chan error, 1)
	go func() {
		for {
			var m ctlMsg
			if err := transport.ReadJSON(ctlr, &m); err != nil {
				ctlErr <- err
				return
			}
			ctlIn <- m
		}
	}()

	start := time.Now()
	last := make([]bool, cfg.N)
	flips := map[int][]qos.Flip{}
	samples := 0
	sample := func(now time.Time) {
		if h != nil && h.isPaused() {
			return // a SIGSTOPped process samples nothing
		}
		for i, s := range g.Verdicts(now) {
			if i+1 == cfg.ID || s == last[i] {
				continue
			}
			last[i] = s
			flips[i+1] = append(flips[i+1], qos.Flip{AtUnixNano: now.UnixNano(), Suspected: s})
		}
		samples++
		if feed != nil {
			for _, id := range g.Known() {
				feed.Admit(id) // no-op for current members
			}
			feed.Update(g.CommunitySuspects())
		}
	}

	var killCh chan struct{}
	if h != nil {
		killCh = h.kill
	}
	ticker := time.NewTicker(samplePeriod)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			sample(now)
		case m := <-ctlIn:
			switch m.Kind {
			case ctlCut:
				for _, t := range m.Targets {
					tr.SetCut(model.ProcessID(t), true)
				}
			case ctlHeal:
				if m.All {
					for _, p := range tr.Cuts() {
						tr.SetCut(p, false)
					}
				} else {
					for _, t := range m.Targets {
						tr.SetCut(model.ProcessID(t), false)
					}
				}
			case ctlDrop:
				if hook != nil {
					hook.SetDrop(m.Pct)
				}
			case ctlDelay:
				if hook != nil {
					hook.SetDelayMax(int(m.BoundMs))
				}
			case ctlJoin:
				tr.SetPeer(model.ProcessID(m.Joiner), m.JoinerAddr)
				g.AddPeer(m.Joiner)
			case ctlCollect:
				now := time.Now()
				sample(now)
				rep := &NodeReport{
					ID:            cfg.ID,
					StartUnixNano: start.UnixNano(),
					EndUnixNano:   now.UnixNano(),
					Samples:       samples,
					Flips:         flips,
					Destinations:  g.DistinctDestinations(),
					Rounds:        g.Rounds(),
				}
				if feed != nil {
					v := feed.View()
					rep.ViewID = v.ID
					rep.Members = v.Members
					rep.Excluded = feed.Excluded()
				}
				rep.Known = g.Known()
				if hook != nil {
					rep.FaultStats = map[int]transport.LinkStats{}
					for to, st := range hook.Stats() {
						rep.FaultStats[int(to)] = st
					}
					if cfg.RecordDecisions {
						rep.FaultDecisions = map[int][]bool{}
						for to := range rep.FaultStats {
							rep.FaultDecisions[to] = hook.Decisions(model.ProcessID(to))
						}
					}
				}
				if err := transport.WriteJSON(ctl, ctlMsg{Kind: ctlReport, Report: rep}); err != nil {
					return fmt.Errorf("cluster: node %d: report: %w", cfg.ID, err)
				}
			case ctlStop:
				return nil
			}
		case err := <-ctlErr:
			// Orchestrator gone: an orphaned node exits instead of
			// gossiping forever.
			return fmt.Errorf("cluster: node %d: control channel: %w", cfg.ID, err)
		case <-killCh:
			return nil
		}
	}
}
