package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"realisticfd/internal/heartbeat"
	"realisticfd/internal/membership"
	"realisticfd/internal/model"
	"realisticfd/internal/qos"
	"realisticfd/internal/scenario"
	"realisticfd/internal/transport"
)

// NodeConfig is the JSON document handed to each node — cmd/fdnode
// reads it from stdin; in-process nodes get it directly. The node
// dials ControlAddr, introduces itself, and receives its overlay
// wiring from the orchestrator; everything else is local policy.
type NodeConfig struct {
	// ID is this node's 1-based identity.
	ID int `json:"id"`
	// N is the cluster size.
	N int `json:"n"`
	// ControlAddr is the orchestrator's control listener.
	ControlAddr string `json:"control_addr"`
	// IntervalMs is the gossip round period (default 50).
	IntervalMs int `json:"interval_ms,omitempty"`
	// SamplePeriodMs is the verdict sampling period for the QoS
	// timelines (default: the gossip interval).
	SamplePeriodMs int `json:"sample_period_ms,omitempty"`
	// Fanout bounds gossip destinations per round; 0 means every
	// overlay neighbor.
	Fanout int `json:"fanout,omitempty"`
	// Estimator selects the per-peer suspicion estimator.
	Estimator scenario.LiveEstimatorSpec `json:"estimator,omitzero"`
	// Seed drives fanout sampling.
	Seed int64 `json:"seed,omitempty"`
}

func (c *NodeConfig) normalize() {
	if c.IntervalMs == 0 {
		c.IntervalMs = 50
	}
	if c.SamplePeriodMs == 0 {
		c.SamplePeriodMs = c.IntervalMs
	}
}

func (c NodeConfig) validate() error {
	if c.N < 2 {
		return fmt.Errorf("cluster: node config n = %d must be ≥ 2", c.N)
	}
	if c.ID < 1 || c.ID > c.N {
		return fmt.Errorf("cluster: node id %d outside [1, %d]", c.ID, c.N)
	}
	if c.ControlAddr == "" {
		return fmt.Errorf("cluster: node config needs control_addr")
	}
	if c.IntervalMs < 1 || c.SamplePeriodMs < 1 {
		return fmt.Errorf("cluster: node periods must be ≥ 1ms")
	}
	return nil
}

// EstimatorFactory compiles a declarative estimator spec into the
// constructor the gossip layer calls per monitored peer. Defaults
// scale with the gossip interval: with relayed counters a peer's
// "heartbeat" arrives roughly once per interval, so margins are
// expressed in multiples of it.
func EstimatorFactory(spec scenario.LiveEstimatorSpec, interval time.Duration) func() heartbeat.Estimator {
	switch spec.Kind {
	case scenario.LiveEstFixed:
		timeout := time.Duration(spec.TimeoutMs) * time.Millisecond
		return func() heartbeat.Estimator {
			return &heartbeat.FixedTimeout{Timeout: timeout}
		}
	case scenario.LiveEstChen:
		window := spec.Window
		if window <= 0 {
			window = 16
		}
		alpha := time.Duration(spec.AlphaMs) * time.Millisecond
		if alpha <= 0 {
			alpha = 4 * interval
		}
		return func() heartbeat.Estimator {
			return &heartbeat.Chen{Window: window, Alpha: alpha}
		}
	default: // φ-accrual, the zero value
		window := spec.Window
		if window <= 0 {
			window = 64
		}
		phi := spec.Phi
		if phi <= 0 {
			phi = 8
		}
		minStd := time.Duration(spec.MinStdDevMs) * time.Millisecond
		if minStd <= 0 {
			minStd = interval / 4
		}
		return func() heartbeat.Estimator {
			return &heartbeat.PhiAccrual{
				Window:       window,
				Threshold:    phi,
				MinStdDev:    minStd,
				FirstTimeout: 20 * interval,
			}
		}
	}
}

// RunNode runs one cluster node to completion: dial the orchestrator,
// hello, receive the overlay, gossip until told to stop (or until the
// control connection dies — an orphaned node exits rather than
// lingering). This is cmd/fdnode's entire main.
func RunNode(cfg NodeConfig) error { return runNode(cfg, nil) }

// RunNodeStdin decodes a NodeConfig strictly from r and runs it.
func RunNodeStdin(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg NodeConfig
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("cluster: node config: %w", err)
	}
	return RunNode(cfg)
}

// inprocHandle lets the in-process spawner stand in for the kernel:
// Kill closes a channel the node loop selects on, Pause/Resume mute
// the gossiper the way SIGSTOP freezes a process.
type inprocHandle struct {
	mu     sync.Mutex
	g      *heartbeat.Gossiper
	paused bool

	kill     chan struct{}
	killOnce sync.Once
	done     chan struct{}
	err      error
}

func (h *inprocHandle) register(g *heartbeat.Gossiper) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.g = g
	if h.paused {
		g.SetMuted(true)
	}
}

func (h *inprocHandle) setPaused(paused bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.paused = paused
	if h.g != nil {
		h.g.SetMuted(paused)
	}
}

func (h *inprocHandle) isPaused() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.paused
}

// Kill implements NodeHandle: abrupt death, no report, no goodbye.
func (h *inprocHandle) Kill() error {
	h.killOnce.Do(func() { close(h.kill) })
	return nil
}

// Pause implements NodeHandle.
func (h *inprocHandle) Pause() error { h.setPaused(true); return nil }

// Resume implements NodeHandle.
func (h *inprocHandle) Resume() error { h.setPaused(false); return nil }

// Shutdown implements NodeHandle: kill if still running, wait for the
// goroutine to unwind.
func (h *inprocHandle) Shutdown() {
	_ = h.Kill()
	<-h.done
}

// runNode is the node runtime shared by real processes (h == nil) and
// in-process nodes.
func runNode(cfg NodeConfig, h *inprocHandle) error {
	cfg.normalize()
	if err := cfg.validate(); err != nil {
		return err
	}
	interval := time.Duration(cfg.IntervalMs) * time.Millisecond
	samplePeriod := time.Duration(cfg.SamplePeriodMs) * time.Millisecond

	tr, err := transport.NewTCPNode(model.ProcessID(cfg.ID))
	if err != nil {
		return err
	}
	ctl, err := net.Dial("tcp", cfg.ControlAddr)
	if err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: dial control: %w", cfg.ID, err)
	}
	defer func() { _ = ctl.Close() }()

	ctlr := bufio.NewReader(ctl)
	if err := transport.WriteJSON(ctl, ctlMsg{Kind: ctlHello, ID: cfg.ID, Addr: tr.Addr()}); err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: hello: %w", cfg.ID, err)
	}
	var topo ctlMsg
	if err := transport.ReadJSON(ctlr, &topo); err != nil {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: await topology: %w", cfg.ID, err)
	}
	if topo.Kind != ctlTopology || len(topo.GossipPeers) == 0 {
		_ = tr.Close()
		return fmt.Errorf("cluster: node %d: expected topology, got %q", cfg.ID, topo.Kind)
	}
	for id, addr := range topo.Peers {
		tr.SetPeer(model.ProcessID(id), addr)
	}

	g, err := heartbeat.NewGossiper(tr, heartbeat.GossipConfig{
		Self:         cfg.ID,
		N:            cfg.N,
		Peers:        topo.GossipPeers,
		Fanout:       cfg.Fanout,
		Interval:     interval,
		NewEstimator: EstimatorFactory(cfg.Estimator, interval),
		Seed:         cfg.Seed,
	})
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer g.Close()
	if h != nil {
		h.register(g)
	}
	// Non-gossip envelopes have no consumer in a detection-only node;
	// drain them so the channel never fills.
	go func() {
		for range g.Forward() {
		}
	}()

	// At simulator scale the membership feed derives shrink-only views
	// from the disseminated suspicion state; larger clusters run
	// detection-only (ProcessSet is a 64-bit bitmap).
	var feed *membership.Feed
	if cfg.N <= model.MaxProcesses {
		feed, _ = membership.NewFeed(model.ProcessID(cfg.ID), cfg.N)
	}

	// Control reader: buffered well past the handful of frames an
	// orchestrator ever sends, so the goroutine cannot jam if the loop
	// exits first; the deferred ctl.Close() unblocks the read.
	ctlIn := make(chan ctlMsg, 64)
	ctlErr := make(chan error, 1)
	go func() {
		for {
			var m ctlMsg
			if err := transport.ReadJSON(ctlr, &m); err != nil {
				ctlErr <- err
				return
			}
			ctlIn <- m
		}
	}()

	start := time.Now()
	last := make([]bool, cfg.N)
	flips := map[int][]qos.Flip{}
	samples := 0
	sample := func(now time.Time) {
		if h != nil && h.isPaused() {
			return // a SIGSTOPped process samples nothing
		}
		for i, s := range g.Verdicts(now) {
			if i+1 == cfg.ID || s == last[i] {
				continue
			}
			last[i] = s
			flips[i+1] = append(flips[i+1], qos.Flip{AtUnixNano: now.UnixNano(), Suspected: s})
		}
		samples++
		if feed != nil {
			set := model.NewProcessSet()
			for _, q := range g.CommunitySuspects() {
				set = set.Add(model.ProcessID(q))
			}
			feed.Update(set)
		}
	}

	var killCh chan struct{}
	if h != nil {
		killCh = h.kill
	}
	ticker := time.NewTicker(samplePeriod)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			sample(now)
		case m := <-ctlIn:
			switch m.Kind {
			case ctlCut:
				for _, t := range m.Targets {
					tr.SetCut(model.ProcessID(t), true)
				}
			case ctlHeal:
				if m.All {
					for _, p := range tr.Cuts() {
						tr.SetCut(p, false)
					}
				} else {
					for _, t := range m.Targets {
						tr.SetCut(model.ProcessID(t), false)
					}
				}
			case ctlCollect:
				now := time.Now()
				sample(now)
				rep := &NodeReport{
					ID:            cfg.ID,
					StartUnixNano: start.UnixNano(),
					EndUnixNano:   now.UnixNano(),
					Samples:       samples,
					Flips:         flips,
					Destinations:  g.DistinctDestinations(),
					Rounds:        g.Rounds(),
				}
				if feed != nil {
					rep.ViewID = feed.View().ID
					for _, p := range feed.Excluded().Slice() {
						rep.Excluded = append(rep.Excluded, int(p))
					}
				}
				if err := transport.WriteJSON(ctl, ctlMsg{Kind: ctlReport, Report: rep}); err != nil {
					return fmt.Errorf("cluster: node %d: report: %w", cfg.ID, err)
				}
			case ctlStop:
				return nil
			}
		case err := <-ctlErr:
			// Orchestrator gone: an orphaned node exits instead of
			// gossiping forever.
			return fmt.Errorf("cluster: node %d: control channel: %w", cfg.ID, err)
		case <-killCh:
			return nil
		}
	}
}
