package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// NodeHandle is the orchestrator's grip on one spawned node: the
// fault schedule speaks these verbs, whatever is underneath — an OS
// process (signals) or a goroutine (muting).
type NodeHandle interface {
	// Kill terminates the node abruptly (SIGKILL): no cleanup, no
	// goodbye, peers find out by silence.
	Kill() error
	// Pause freezes the node (SIGSTOP): it stops emitting, stops
	// reading, and — crucially — stays "alive" for QoS accounting.
	Pause() error
	// Resume unfreezes a paused node (SIGCONT).
	Resume() error
	// Shutdown reclaims whatever is left at the end of the run,
	// blocking until the node is gone.
	Shutdown()
}

// Spawner launches nodes. ProcSpawner execs real OS processes;
// InProcSpawner runs goroutines in this process.
type Spawner interface {
	Spawn(cfg NodeConfig) (NodeHandle, error)
}

// ProcSpawner launches each node as a real OS process running
// Command (cmd/fdnode), handing it the NodeConfig as JSON on stdin.
// Faults are delivered as signals, which is the point of the live
// harness: SIGKILL is a real crash-stop, SIGSTOP a real freeze — no
// cooperation from the victim required or possible.
type ProcSpawner struct {
	// Command is the argv of the node binary.
	Command []string
	// Env entries are appended to the inherited environment.
	Env []string
	// Stderr receives the nodes' stderr; nil discards it.
	Stderr io.Writer
}

// Spawn implements Spawner.
func (s *ProcSpawner) Spawn(cfg NodeConfig) (NodeHandle, error) {
	if len(s.Command) == 0 {
		return nil, errors.New("cluster: ProcSpawner needs a command")
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal node config: %w", err)
	}
	cmd := exec.Command(s.Command[0], s.Command[1:]...)
	cmd.Stdin = bytes.NewReader(b)
	cmd.Stdout = io.Discard
	cmd.Stderr = s.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = io.Discard
	}
	if len(s.Env) > 0 {
		cmd.Env = append(os.Environ(), s.Env...)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: start node %d: %w", cfg.ID, err)
	}
	h := &procHandle{cmd: cmd, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait() // reap; a SIGKILLed child must not linger as a zombie
		close(h.done)
	}()
	return h, nil
}

// procHandle drives one OS process with signals.
type procHandle struct {
	cmd  *exec.Cmd
	done chan struct{}
}

func (h *procHandle) signal(sig syscall.Signal) error {
	select {
	case <-h.done:
		return nil // already exited; signalling a corpse is a no-op
	default:
	}
	if err := h.cmd.Process.Signal(sig); err != nil && !errors.Is(err, os.ErrProcessDone) {
		return err
	}
	return nil
}

// Kill implements NodeHandle.
func (h *procHandle) Kill() error { return h.signal(syscall.SIGKILL) }

// Pause implements NodeHandle.
func (h *procHandle) Pause() error { return h.signal(syscall.SIGSTOP) }

// Resume implements NodeHandle.
func (h *procHandle) Resume() error { return h.signal(syscall.SIGCONT) }

// Shutdown implements NodeHandle: SIGCONT (a stopped process should
// not outlive the run), SIGKILL, and a bounded wait for the reaper.
func (h *procHandle) Shutdown() {
	_ = h.signal(syscall.SIGCONT)
	_ = h.signal(syscall.SIGKILL)
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
	}
}

// InProcSpawner runs each node as a goroutine in this process: the
// same runtime as cmd/fdnode, with channel-close for SIGKILL and
// gossip muting for SIGSTOP/SIGCONT. This is what cmd/fdlive and the
// -race smoke tests use — one address space, full data-race coverage.
type InProcSpawner struct{}

// Spawn implements Spawner.
func (InProcSpawner) Spawn(cfg NodeConfig) (NodeHandle, error) {
	h := &inprocHandle{kill: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = runNode(cfg, h)
	}()
	return h, nil
}
